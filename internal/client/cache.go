package client

import (
	"sync"
	"time"

	"locofs/internal/layout"
)

// dirCache is the client directory metadata cache (§3.2.2): it holds only
// directory inodes (never file inodes or dirents), each valid for a lease
// period (30 s by default). A hit saves the DMS round trip on every file
// operation in a cached directory.
type dirCache struct {
	mu      sync.RWMutex
	lease   time.Duration
	entries map[string]cacheEntry
	now     func() time.Time

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	inode   layout.DirInode
	expires time.Time
}

// DefaultLease is the paper's default client-cache lease.
const DefaultLease = 30 * time.Second

func newDirCache(lease time.Duration, now func() time.Time) *dirCache {
	if lease <= 0 {
		lease = DefaultLease
	}
	if now == nil {
		now = time.Now
	}
	return &dirCache{lease: lease, entries: make(map[string]cacheEntry), now: now}
}

// get returns the cached inode for path if its lease is still valid.
func (c *dirCache) get(path string) (layout.DirInode, bool) {
	c.mu.RLock()
	e, ok := c.entries[path]
	c.mu.RUnlock()
	if !ok || c.now().After(e.expires) {
		c.mu.Lock()
		c.misses++
		if ok { // expired: evict
			delete(c.entries, path)
		}
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	return e.inode, true
}

// put caches an inode under path with a fresh lease.
func (c *dirCache) put(path string, inode layout.DirInode) {
	c.mu.Lock()
	c.entries[path] = cacheEntry{inode: inode.Clone(), expires: c.now().Add(c.lease)}
	c.mu.Unlock()
}

// invalidate drops path from the cache.
func (c *dirCache) invalidate(path string) {
	c.mu.Lock()
	delete(c.entries, path)
	c.mu.Unlock()
}

// invalidateSubtree drops path and everything beneath it (after a directory
// rename or removal).
func (c *dirCache) invalidateSubtree(path string) {
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	c.mu.Lock()
	for p := range c.entries {
		if p == path || (len(p) >= len(prefix) && p[:len(prefix)] == prefix) {
			delete(c.entries, p)
		}
	}
	c.mu.Unlock()
}

// stats returns hit/miss counts.
func (c *dirCache) stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// size returns the number of cached entries.
func (c *dirCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
