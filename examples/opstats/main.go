// opstats makes the paper's central claim observable: in LocoFS every
// important metadata operation costs one or two network round trips. It
// runs each operation against a live cluster, counts the exact round trips
// via the client's trip counter, and prints the per-operation budget next
// to the paper's Table 1 access pattern — then dumps the per-RPC latency
// breakdown recorded by the client's telemetry histograms.
package main

import (
	"fmt"
	"log"
	"time"

	"locofs"
)

func main() {
	const fmsCount = 4
	cluster, err := locofs.Start(locofs.Options{FMSCount: fmsCount, Link: locofs.Paper1GbE})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.NewClient(locofs.ClientConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	// Fixture so every probed op succeeds, and so the directory cache is
	// warm (the steady state the paper's LocoFS-C measures).
	must(fs.Mkdir("/app", 0o755))
	must(fs.Create("/app/warm", 0o644))

	type probe struct {
		op   string
		note string
		run  func() error
	}
	probes := []probe{
		{"mkdir", "1 RPC to the DMS (ancestor ACL check is server-local)", func() error {
			return fs.Mkdir("/app/sub", 0o755)
		}},
		{"create", "1 RPC to the owning FMS (parent d-inode cached)", func() error {
			return fs.Create("/app/data.bin", 0o644)
		}},
		{"file-stat", "1 RPC to the owning FMS", func() error {
			_, err := fs.StatFile("/app/data.bin")
			return err
		}},
		{"dir-stat", "0 RPCs on a cache hit, 1 on a miss", func() error {
			_, err := fs.StatDir("/app")
			return err
		}},
		{"chmod", "1 RPC; a 12-byte in-place patch of the access part", func() error {
			return fs.Chmod("/app/data.bin", 0o600)
		}},
		{"utimens", "1 RPC; patches the content part only", func() error {
			return fs.Utimens("/app/data.bin", 1, 2)
		}},
		{"truncate", "1 RPC to the FMS (+ block GC on the object stores)", func() error {
			return fs.Truncate("/app/data.bin", 0)
		}},
		{"readdir", fmt.Sprintf("1 DMS + %d FMS RPCs (dirents live with their owners)", fmsCount), func() error {
			_, err := fs.Readdir("/app")
			return err
		}},
		{"rename-file", "3 RPCs: read meta, insert at new key, delete old", func() error {
			return fs.RenameFile("/app/data.bin", "/app/data2.bin")
		}},
		{"rename-dir", "1 RPC: a prefix move inside the DMS's B+ tree", func() error {
			_, err := fs.RenameDir("/app/sub", "/app/sub2")
			return err
		}},
		{"remove", "1 FMS RPC + object-store block GC", func() error {
			return fs.Remove("/app/data2.bin")
		}},
		{"rmdir", fmt.Sprintf("%d FMS emptiness probes + 1 DMS RPC", fmsCount), func() error {
			return fs.Rmdir("/app/sub2")
		}},
	}

	fmt.Printf("%-12s %6s  %s\n", "operation", "trips", "why")
	fmt.Printf("%-12s %6s  %s\n", "---------", "-----", "---")
	for _, p := range probes {
		before := fs.Trips()
		if err := p.run(); err != nil {
			log.Fatalf("%s: %v", p.op, err)
		}
		fmt.Printf("%-12s %6d  %s\n", p.op, fs.Trips()-before, p.note)
	}
	fmt.Println("\nEvery hot-path operation touches one or two servers — the")
	fmt.Println("loosely-coupled design the paper builds (§3.1).")

	// Per-RPC latency breakdown from the client's telemetry histograms:
	// every round trip above was recorded per wire op (measured wall-clock
	// over the in-process fabric — what a deployment's /metrics exposes).
	fmt.Println("\nPer-RPC round-trip latency (client telemetry):")
	fmt.Printf("%-16s %6s %9s %9s %9s %9s\n", "rpc op", "count", "mean", "p50", "p99", "max")
	us := func(d time.Duration) string {
		return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
	}
	for _, r := range fs.Metrics().Snapshot().OpTable("locofs_client_rtt_seconds") {
		fmt.Printf("%-16s %6d %9s %9s %9s %9s\n",
			r.Op, r.Count, us(r.Mean), us(r.P50), us(r.P99), us(r.Max))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
