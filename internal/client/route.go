package client

// DMS partition routing (DESIGN.md §16). A sharded DMS splits the directory
// namespace into subtree range partitions, each a replicated group whose
// leader serves that range's operations. The client holds the versioned
// partition map (wire.PartMap) and routes every DMS request before dialing:
// path → partition (deepest-cut match) → leader endpoint. Against an
// unsharded DMS the map is nil and every request goes to the bootstrap
// endpoint, byte-for-byte the pre-sharding behavior.
//
// Map staleness is learned two ways, mirroring the FMS membership epoch
// protocol (view.go): passively, from the partition-map version stamped on
// every response header (wire.Msg.PMap → observePMap → async refresh), and
// actively, when a request trips over the change — an explicit EWRONGPART
// from a node that does not own the path under its installed map, or a
// transport error from a leader that died. Both trigger a synchronous
// refetch (OpGetPartMap, answered by any replica) and a bounded retry.
// Mutations retried across a failover carry the same dedup request id, so a
// mutation that committed before the crash replays its recorded response
// from the new leader's replicated applied table instead of executing
// twice.

import (
	"fmt"
	"time"

	"locofs/internal/wire"
)

// dmsRouteAttempts bounds the route-refresh-retry loop: first try, plus
// retries after map refreshes triggered by EWRONGPART or a dead leader.
const dmsRouteAttempts = 4

// partMap returns the installed partition map, nil when unsharded.
func (c *Client) partMap() *wire.PartMap { return c.pmap.Load() }

// observePMap receives the partition-map version stamped on every response
// header. It keeps maxPVer at the highest version seen and kicks off one
// asynchronous map refresh when the installed map has fallen behind — the
// passive path by which clients notice a failover within about one round
// trip. A client of an unsharded cluster never sees a non-zero version and
// never pays anything here.
func (c *Client) observePMap(ver uint64) {
	for {
		cur := c.maxPVer.Load()
		if ver <= cur {
			break
		}
		if c.maxPVer.CompareAndSwap(cur, ver) {
			break
		}
	}
	pm := c.pmap.Load()
	if (pm == nil || ver > pm.Ver) && c.pmRefreshing.CompareAndSwap(false, true) {
		go func() {
			defer c.pmRefreshing.Store(false)
			c.refreshPartMap(opCtx{}, "")
		}()
	}
}

// MetricPMapSuppressed counts partition-map fetches coalesced into a
// concurrent one: callers that queued behind an in-flight fetch and reused
// its result instead of issuing their own (single-flight, mirroring the
// membership epoch refresh).
const MetricPMapSuppressed = "locofs_client_pmap_refresh_suppressed_total"

// refreshPartMap fetches the partition map and installs it if newer than
// the installed one. Fetches are single-flight: concurrent callers — a
// failover trips every in-flight request at once with EWRONGPART or a
// dead-leader transport error — queue behind the running fetch and return
// when it completes, reusing its freshly installed map instead of each
// issuing their own OpGetPartMap storm. Candidates are tried in order:
// every replica of the installed map (leaders first — they are
// known-recent), then the bootstrap endpoint; avoid (a just-failed leader
// address) is demoted to last. The first decodable map wins. Finding no
// map anywhere leaves the client in its current mode.
func (c *Client) refreshPartMap(oc opCtx, avoid string) error {
	gen := c.pmFetchGen.Load()
	c.pmapFetchMu.Lock()
	defer c.pmapFetchMu.Unlock()
	if c.pmFetchGen.Load() != gen {
		// A fetch completed while this caller queued for the lock: its
		// installed result is as fresh as a new fetch would be.
		c.telem.reg.Counter(MetricPMapSuppressed).Inc()
		return nil
	}
	defer c.pmFetchGen.Add(1)
	type cand struct {
		addr string
		pid  uint32
	}
	var cands []cand
	seen := map[string]bool{}
	add := func(addr string, pid uint32) {
		if addr != "" && !seen[addr] {
			seen[addr] = true
			cands = append(cands, cand{addr, pid})
		}
	}
	if pm := c.pmap.Load(); pm != nil {
		for pid, g := range pm.Groups {
			if len(g) > 0 {
				add(g[0], uint32(pid))
			}
		}
		for pid, g := range pm.Groups {
			for _, a := range g[min(1, len(g)):] {
				add(a, uint32(pid))
			}
		}
	}
	add(c.dmsAddr, 0)
	// Demote the failed address: it stays a candidate (it may be the only
	// one) but everything else is asked first.
	for i, cd := range cands {
		if cd.addr == avoid && len(cands) > 1 {
			cands = append(append(cands[:i:i], cands[i+1:]...), cd)
			break
		}
	}
	var lastErr error
	for _, cd := range cands {
		e, err := c.dmsEndpointAt(cd.addr, cd.pid)
		if err != nil {
			lastErr = err
			continue
		}
		st, resp, err := e.CallT(oc, wire.OpGetPartMap, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if st != wire.StatusOK {
			// ENOENT/EINVAL: the node has no map (or is a legacy DMS that
			// does not speak the op). Not an error — try the next candidate.
			lastErr = st.Err()
			continue
		}
		pm, err := wire.DecodePartMap(resp)
		if err != nil {
			lastErr = err
			continue
		}
		c.installPartMap(pm)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: no partition map source")
	}
	return lastErr
}

// installPartMap swaps in pm unless an equal-or-newer map is installed.
func (c *Client) installPartMap(pm *wire.PartMap) {
	if len(pm.Groups) == 0 {
		return
	}
	c.pmapMu.Lock()
	defer c.pmapMu.Unlock()
	if cur := c.pmap.Load(); cur != nil && pm.Ver <= cur.Ver {
		return
	}
	c.pmap.Store(pm)
	for {
		cur := c.maxPVer.Load()
		if pm.Ver <= cur || c.maxPVer.CompareAndSwap(cur, pm.Ver) {
			break
		}
	}
}

// dmsEndpointAt returns the connection to the DMS replica at addr, dialing
// it on first use. pid binds the endpoint's OnLease hook to the partition's
// recall-sequence source; an address serves one partition for its lifetime
// (failovers promote within a group, they never move an address across
// groups), so the binding is stable.
func (c *Client) dmsEndpointAt(addr string, pid uint32) (*endpoint, error) {
	c.dmsEpMu.Lock()
	defer c.dmsEpMu.Unlock()
	if e, ok := c.dmsEps[addr]; ok {
		return e, nil
	}
	e, err := c.dialDMSPart(addr, pid)
	if err != nil {
		return nil, err
	}
	c.dmsEps[addr] = e
	return e, nil
}

// dmsEndpoints snapshots every DMS connection ever dialed (for Close,
// Trips, Cost). The bootstrap endpoint is seeded into the registry at Dial,
// so it appears exactly once.
func (c *Client) dmsEndpoints() []*endpoint {
	c.dmsEpMu.Lock()
	defer c.dmsEpMu.Unlock()
	out := make([]*endpoint, 0, len(c.dmsEps))
	for _, e := range c.dmsEps {
		out = append(out, e)
	}
	return out
}

// routeDMS resolves the DMS endpoint and recall source for a cleaned path:
// the leader of the partition owning the path's metadata — or, with list
// set, the path's subdir listing (a cut directory's inode and listing live
// on different partitions, see wire.PartMap.LocateList). Unsharded clients
// route everything to the bootstrap endpoint as source 0.
func (c *Client) routeDMS(path string, list bool) (*endpoint, uint32, error) {
	pm := c.pmap.Load()
	if pm == nil {
		return c.dms, 0, nil
	}
	var pid uint32
	if list {
		pid = pm.LocateList(path)
	} else {
		pid = pm.Locate(path)
	}
	addr := pm.Leader(pid)
	if addr == "" {
		return nil, pid, wire.StatusUnavailable.Err()
	}
	e, err := c.dmsEndpointAt(addr, pid)
	if err != nil {
		return nil, pid, err
	}
	return e, pid, nil
}

// dmsCall issues one DMS request routed by path, retrying through map
// refreshes on EWRONGPART (stale routing) and on transport errors (dead
// leader) up to dmsRouteAttempts times. Non-idempotent requests carry one
// dedup id across every attempt and every endpoint, so a mutation is
// executed at most once cluster-wide no matter where the retries land. The
// returned source is the partition that served the final attempt — the key
// for the caller's cache accounting.
func (c *Client) dmsCall(oc opCtx, path string, list bool, op wire.Op, body []byte) (wire.Status, []byte, uint32, error) {
	st, resp, _, _, src, err := c.dmsCallV(oc, path, list, op, body)
	return st, resp, src, err
}

// dmsCallV is dmsCall returning the call's modeled time and the endpoint
// that served it (for follow-up calls that must stick to one server, e.g.
// listing pagination).
func (c *Client) dmsCallV(oc opCtx, path string, list bool, op wire.Op, body []byte) (wire.Status, []byte, time.Duration, *endpoint, uint32, error) {
	var req uint64
	if !op.Idempotent() {
		req = c.res.nextReq()
	}
	var (
		st   wire.Status
		resp []byte
		virt time.Duration
		e    *endpoint
		src  uint32
		err  error
	)
	for attempt := 0; attempt < dmsRouteAttempts; attempt++ {
		var rerr error
		e, src, rerr = c.routeDMS(path, list)
		if rerr != nil {
			c.refreshPartMap(oc, "")
			err = rerr
			continue
		}
		st, resp, virt, err = e.callV(oc, op, body, req)
		if err != nil {
			if c.pmap.Load() == nil {
				return st, resp, virt, e, src, err
			}
			c.refreshPartMap(oc, e.addr)
			continue
		}
		if st == wire.StatusWrongPartition {
			c.refreshPartMap(oc, "")
			continue
		}
		return st, resp, virt, e, src, nil
	}
	return st, resp, virt, e, src, err
}

// dmsBatch issues one batched DMS request routed by path, with the same
// refresh-and-retry loop as dmsCall (batches carry only idempotent
// sub-requests, so whole-batch retries are safe). A batch any of whose
// sub-responses reports EWRONGPART is retried wholesale after a refresh.
func (c *Client) dmsBatch(oc opCtx, path string, list bool, subs []wire.SubReq) ([]wire.SubResp, uint32, error) {
	var (
		resps []wire.SubResp
		src   uint32
		err   error
	)
	for attempt := 0; attempt < dmsRouteAttempts; attempt++ {
		var e *endpoint
		var rerr error
		e, src, rerr = c.routeDMS(path, list)
		if rerr != nil {
			c.refreshPartMap(oc, "")
			err = rerr
			continue
		}
		resps, _, err = e.CallBatch(oc, subs)
		if err != nil {
			if c.pmap.Load() == nil {
				return resps, src, err
			}
			c.refreshPartMap(oc, e.addr)
			continue
		}
		wrong := false
		for _, r := range resps {
			if r.Status == wire.StatusWrongPartition {
				wrong = true
				break
			}
		}
		if !wrong {
			return resps, src, nil
		}
		c.refreshPartMap(oc, "")
	}
	if err == nil {
		err = wire.StatusWrongPartition.Err()
	}
	return resps, src, err
}
