package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestFigDMSShardShape runs the sharding experiment at Quick scale and
// asserts its headline claims: the DMS capacity bound scales going from 1
// to 4 partitions, and a cross-partition rename costs measurably more DMS
// service than one staying inside a partition (the two-partition commit's
// extra log entries and replication).
func TestFigDMSShardShape(t *testing.T) {
	tbl, err := FigDMSShard(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (3 partition counts + 2 rename rows)", len(tbl.Rows))
	}
	mkdirCol := col(t, tbl, "mkdir")
	p1 := kiops(t, tbl.Rows[0][mkdirCol])
	p4 := kiops(t, tbl.Rows[2][mkdirCol])
	if p4 < 2*p1 {
		t.Errorf("mkdir capacity at 4 partitions = %.1fK, want at least 2x the 1-partition %.1fK", p4, p1)
	}
	costCol := col(t, tbl, "rename-dms-cost")
	same := us(t, tbl.Rows[3][costCol])
	cross := us(t, tbl.Rows[4][costCol])
	if cross < 1.2*same {
		t.Errorf("cross-partition rename DMS cost %.1fus not measurably above same-partition %.1fus", cross, same)
	}
}

// kiops parses a fmtKIOPS cell ("135.9K") back to thousands of ops/s.
func kiops(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "K"), 64)
	if err != nil {
		t.Fatalf("bad kIOPS cell %q: %v", cell, err)
	}
	return v
}

// us parses a fmtUS cell ("305.0us") back to microseconds.
func us(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "us"), 64)
	if err != nil {
		t.Fatalf("bad latency cell %q: %v", cell, err)
	}
	return v
}
