// Package uuid implements the universally unique identifiers LocoFS assigns
// to every directory and file.
//
// Following the paper (§3.3.2), a UUID is composed of a server ID (sid) —
// the metadata server on which the object was first created — and a file ID
// (fid) — a monotonically increasing counter local to that server. The pair
// identifies an object for the lifetime of the file system and, crucially,
// never changes on rename: everything indexed through a UUID (data blocks,
// children dirents) stays put when the object's name changes.
package uuid

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync/atomic"
)

// Size is the encoded size of a UUID in bytes.
const Size = 16

// UUID identifies a directory or file. The zero UUID is reserved as "no
// object" and is never allocated; the root directory uses Root.
type UUID [Size]byte

// Nil is the zero UUID, used as "absent".
var Nil UUID

// Root is the fixed UUID of the file system root directory.
var Root = UUID{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}

// New composes a UUID from a server ID and a per-server file ID.
func New(sid uint32, fid uint64) UUID {
	var u UUID
	binary.BigEndian.PutUint32(u[0:4], sid)
	binary.BigEndian.PutUint64(u[4:12], fid)
	return u
}

// SID returns the server-ID component.
func (u UUID) SID() uint32 { return binary.BigEndian.Uint32(u[0:4]) }

// FID returns the per-server file-ID component.
func (u UUID) FID() uint64 { return binary.BigEndian.Uint64(u[4:12]) }

// IsNil reports whether u is the zero UUID.
func (u UUID) IsNil() bool { return u == Nil }

// String returns the canonical lower-case hex form (32 characters).
func (u UUID) String() string { return hex.EncodeToString(u[:]) }

// Bytes returns the UUID as a fresh 16-byte slice.
func (u UUID) Bytes() []byte {
	b := make([]byte, Size)
	copy(b, u[:])
	return b
}

// AppendTo appends the binary form of u to dst and returns the extended slice.
func (u UUID) AppendTo(dst []byte) []byte { return append(dst, u[:]...) }

// ErrBadUUID is returned by FromBytes when the input is not Size bytes long.
var ErrBadUUID = errors.New("uuid: invalid encoded length")

// FromBytes decodes a UUID from a 16-byte slice.
func FromBytes(b []byte) (UUID, error) {
	var u UUID
	if len(b) != Size {
		return u, ErrBadUUID
	}
	copy(u[:], b)
	return u, nil
}

// MustFromBytes is like FromBytes but panics on malformed input. It is meant
// for decoding values that were produced by this package and whose length is
// structurally guaranteed.
func MustFromBytes(b []byte) UUID {
	u, err := FromBytes(b)
	if err != nil {
		panic(err)
	}
	return u
}

// Generator allocates UUIDs for one metadata server. It is safe for
// concurrent use.
type Generator struct {
	sid  uint32
	next atomic.Uint64
}

// NewGenerator returns a Generator producing UUIDs tagged with sid.
// The fid sequence starts at 1 so that the zero UUID is never produced.
func NewGenerator(sid uint32) *Generator {
	return &Generator{sid: sid}
}

// Next returns a fresh, never-before-returned UUID.
func (g *Generator) Next() UUID {
	return New(g.sid, g.next.Add(1))
}

// SID returns the server ID this generator stamps onto UUIDs.
func (g *Generator) SID() uint32 { return g.sid }

// Restore advances the generator past fid, for recovery after restart. It
// never moves the sequence backwards.
func (g *Generator) Restore(fid uint64) {
	for {
		cur := g.next.Load()
		if cur >= fid {
			return
		}
		if g.next.CompareAndSwap(cur, fid) {
			return
		}
	}
}
