package dms

import (
	"fmt"
	"testing"
	"time"

	"locofs/internal/wire"
)

// newTestTable returns a lease table on a manually-advanced clock.
func newTestTable(dur time.Duration) (*leaseTable, *int64) {
	var now int64
	return newLeaseTable(dur, func() int64 { return now }), &now
}

func TestLeaseSuppressionWithoutGrants(t *testing.T) {
	lt, _ := newTestTable(time.Second)
	if pub := lt.bumpCreated("/a", "/"); pub != (pubResult{}) {
		t.Errorf("create without grants published %+v", pub)
	}
	if pub := lt.bumpRemoved("/a", "/"); pub != (pubResult{}) {
		t.Errorf("remove without grants published %+v", pub)
	}
	if pub := lt.bumpPatched("/a"); pub != (pubResult{}) {
		t.Errorf("patch without grants published %+v", pub)
	}
	if got := lt.Seq(); got != 0 {
		t.Errorf("seq = %d after suppressed mutations, want 0", got)
	}
	if got := lt.Suppressed(); got != 3 {
		t.Errorf("suppressed = %d, want 3", got)
	}
}

func TestLeasePublishOnLiveGrant(t *testing.T) {
	lt, _ := newTestTable(time.Second)

	// An inode grant makes patch and remove of that path publish, but not
	// create (a negative entry is what a create invalidates).
	lt.grantChain([]PathInode{{Path: "/a"}})
	if pub := lt.bumpPatched("/a"); pub.N != 1 || pub.Last != 1 {
		t.Errorf("patch with live inode grant: %+v", pub)
	}
	if pub := lt.bumpRemoved("/a", "/"); pub.N != 1 || pub.Last != 2 {
		t.Errorf("remove with live inode grant: %+v", pub)
	}
	if pub := lt.bumpCreated("/a", "/"); pub.N != 0 {
		t.Errorf("create with only an inode grant published %+v", pub)
	}

	// A negative grant makes exactly the matching create publish.
	lt.grantNeg("/b")
	if pub := lt.bumpCreated("/b", "/"); pub.N != 1 {
		t.Errorf("create with live negative grant: %+v", pub)
	}
	if pub := lt.bumpCreated("/c", "/"); pub.N != 0 {
		t.Errorf("create of a sibling published %+v", pub)
	}

	// A listing grant on the parent makes creates and removes under it
	// publish.
	lt.grantList("/p")
	if pub := lt.bumpCreated("/p/x", "/p"); pub.N != 1 {
		t.Errorf("create under live listing: %+v", pub)
	}
	if pub := lt.bumpRemoved("/p/x", "/p"); pub.N != 1 {
		t.Errorf("remove under live listing: %+v", pub)
	}
}

func TestLeaseGrantExpiryRestoresSuppression(t *testing.T) {
	lt, now := newTestTable(time.Second)
	lt.grantChain([]PathInode{{Path: "/a"}})
	*now += int64(lt.horizon) + 1
	if pub := lt.bumpPatched("/a"); pub.N != 0 {
		t.Errorf("patch after grant horizon published %+v", pub)
	}
}

func TestLeaseRenameAlwaysPublishesBothSides(t *testing.T) {
	lt, _ := newTestTable(time.Second)
	pub := lt.bumpRenamed("/old", "/new")
	if pub.N != 2 || pub.Last != 2 {
		t.Fatalf("rename published %+v, want N=2 Last=2", pub)
	}
	_, reset, ents := lt.entriesSince(0)
	if reset || len(ents) != 2 {
		t.Fatalf("entriesSince(0) = reset=%v %v", reset, ents)
	}
	if ents[0].Kind != wire.RecallRemoved || ents[0].Path != "/old" {
		t.Errorf("first rename recall = %+v", ents[0])
	}
	if ents[1].Kind != wire.RecallCreated || ents[1].Path != "/new" {
		t.Errorf("second rename recall = %+v", ents[1])
	}
}

func TestLeaseEntriesSince(t *testing.T) {
	lt, _ := newTestTable(time.Second)
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/d%d", i)
		lt.grantChain([]PathInode{{Path: p}})
		lt.bumpPatched(p)
	}
	cur, reset, ents := lt.entriesSince(2)
	if cur != 5 || reset || len(ents) != 3 {
		t.Fatalf("entriesSince(2) = %d reset=%v %d entries", cur, reset, len(ents))
	}
	for i, e := range ents {
		if e.Seq != uint64(3+i) {
			t.Errorf("entry %d seq = %d, want %d", i, e.Seq, 3+i)
		}
	}
	// Up to date: nothing to fetch.
	if cur, reset, ents := lt.entriesSince(5); cur != 5 || reset || ents != nil {
		t.Errorf("entriesSince(cur) = %d %v %v", cur, reset, ents)
	}
	if cur, reset, ents := lt.entriesSince(9); cur != 5 || reset || ents != nil {
		t.Errorf("entriesSince(ahead) = %d %v %v", cur, reset, ents)
	}
}

func TestLeaseLogBoundForcesReset(t *testing.T) {
	lt, _ := newTestTable(time.Second)
	lt.logCap = 4
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("/d%d", i)
		lt.grantChain([]PathInode{{Path: p}})
		lt.bumpPatched(p)
	}
	// The log retains seqs 7..10; a client at 2 is past retention.
	cur, reset, ents := lt.entriesSince(2)
	if cur != 10 || !reset || ents != nil {
		t.Fatalf("entriesSince past retention = %d reset=%v %v", cur, reset, ents)
	}
	// A client inside retention still gets a diff.
	if _, reset, ents := lt.entriesSince(7); reset || len(ents) != 3 {
		t.Errorf("entriesSince(7) = reset=%v %d entries", reset, len(ents))
	}
}

func TestLeaseOverflowPublishesEverything(t *testing.T) {
	lt, now := newTestTable(time.Second)
	lt.maxGrants = 2
	lt.grantChain([]PathInode{{Path: "/a"}, {Path: "/b"}})
	// Third distinct path exceeds the bound with nothing expired: the
	// table drops per-path tracking and enters overflow mode.
	lt.grantChain([]PathInode{{Path: "/c"}})
	if pub := lt.bumpCreated("/never-granted", "/"); pub.N != 1 {
		t.Fatalf("overflow mode suppressed a mutation: %+v", pub)
	}
	if lt.Suppressed() != 0 {
		t.Errorf("suppressed = %d in overflow mode", lt.Suppressed())
	}
	// After a full horizon with no new grants, suppression resumes.
	*now += int64(lt.horizon) + 1
	if pub := lt.bumpCreated("/other", "/"); pub.N != 0 {
		t.Errorf("mutation after overflow window published %+v", pub)
	}
}

func TestLeaseOverflowSweepRecovers(t *testing.T) {
	lt, now := newTestTable(time.Second)
	lt.maxGrants = 2
	lt.grantChain([]PathInode{{Path: "/a"}, {Path: "/b"}})
	// Both records expire; a new grant sweeps them and stays tracked.
	*now += int64(lt.horizon) + 1
	lt.grantChain([]PathInode{{Path: "/c"}})
	if lt.overflowUntil > *now {
		t.Fatal("sweepable table still entered overflow mode")
	}
	if pub := lt.bumpPatched("/c"); pub.N != 1 {
		t.Errorf("patch of tracked path: %+v", pub)
	}
}

// TestServerMutationsReturnPubResult exercises the server-level plumbing:
// mutations report exactly what they published, and the stamped sequence
// only advances when a recall was published.
func TestServerMutationsReturnPubResult(t *testing.T) {
	s := newDMS(t, Options{})
	if _, pub, st := s.mkdirPub("/a", 0o755, 1, 1); st != wire.StatusOK || pub.N != 0 {
		t.Fatalf("mkdir on silent table: %v %+v", st, pub)
	}
	if s.LeaseSeq() != 0 {
		t.Fatalf("seq = %d after suppressed mkdir", s.LeaseSeq())
	}
	// A leased lookup takes a grant; the next patch publishes.
	chain, g, st := s.lookupLeased("/a", 1, 1)
	if st != wire.StatusOK || !g.Valid() {
		t.Fatalf("lookup = %v, grant %+v", st, g)
	}
	if len(chain) != 2 {
		t.Fatalf("chain length %d", len(chain))
	}
	pub, st := s.chmodPub("/a", 0o700, 1, 1)
	if st != wire.StatusOK || pub.N != 1 || pub.Last != 1 {
		t.Fatalf("chmod with live grant: %v %+v", st, pub)
	}
	if s.LeaseSeq() != 1 {
		t.Errorf("seq = %d after published chmod", s.LeaseSeq())
	}
	if s.RecallsSuppressed() != 1 {
		t.Errorf("suppressed = %d", s.RecallsSuppressed())
	}
}
