package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"

	"locofs/internal/uuid"
)

// Enc builds a request/response body from typed fields. Fields are written
// in a fixed order agreed between client and server for each op.
type Enc struct {
	b []byte
}

// NewEnc returns an encoder with a small preallocated buffer.
func NewEnc() *Enc { return &Enc{b: make([]byte, 0, 64)} }

// encPool recycles encoders between RPCs so the hot path stops allocating a
// fresh buffer per request. See GetEnc/Free.
var encPool = sync.Pool{New: func() any { return &Enc{b: make([]byte, 0, 64)} }}

// maxPooledCap bounds the buffers the pool retains: encoders that grew past
// it (huge write bodies) are dropped rather than pinned forever.
const maxPooledCap = 64 << 10

// GetEnc returns a pooled encoder. Callers that know the encoded body's
// lifetime is over — the RPC completed, so both transports have consumed
// the bytes — hand it back with Free; callers that cannot tell just drop it
// and the GC reclaims it like a NewEnc one.
func GetEnc() *Enc {
	e := encPool.Get().(*Enc)
	e.b = e.b[:0]
	return e
}

// Free recycles the encoder (and the buffer behind its last Bytes result)
// into the pool. The caller must not touch the encoder or any slice
// returned by Bytes afterwards.
func (e *Enc) Free() {
	if cap(e.b) > maxPooledCap {
		return
	}
	encPool.Put(e)
}

// U8 appends a byte.
func (e *Enc) U8(v uint8) *Enc { e.b = append(e.b, v); return e }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) *Enc {
	if v {
		return e.U8(1)
	}
	return e.U8(0)
}

// U32 appends a fixed 32-bit value.
func (e *Enc) U32(v uint32) *Enc {
	e.b = binary.BigEndian.AppendUint32(e.b, v)
	return e
}

// U64 appends a fixed 64-bit value.
func (e *Enc) U64(v uint64) *Enc {
	e.b = binary.BigEndian.AppendUint64(e.b, v)
	return e
}

// I64 appends a signed 64-bit value.
func (e *Enc) I64(v int64) *Enc { return e.U64(uint64(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) *Enc {
	if len(s) > math.MaxUint32 {
		panic("wire: string too long")
	}
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
	return e
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) *Enc {
	e.U32(uint32(len(b)))
	e.b = append(e.b, b...)
	return e
}

// UUID appends a fixed 16-byte UUID.
func (e *Enc) UUID(u uuid.UUID) *Enc {
	e.b = append(e.b, u[:]...)
	return e
}

// Bytes returns the encoded body.
func (e *Enc) Bytes() []byte { return e.b }

// ErrTruncatedBody reports a body shorter than its declared fields.
var ErrTruncatedBody = errors.New("wire: truncated body")

// Dec reads typed fields from a body in order. The first decoding error
// sticks; check Err once after reading every field.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over body.
func NewDec(body []byte) *Dec { return &Dec{b: body} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = ErrTruncatedBody
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a boolean.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a fixed 32-bit value.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a fixed 64-bit value.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a signed 64-bit value.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.U32()
	b := d.take(int(n))
	return string(b)
}

// Blob reads a length-prefixed byte slice (copied).
func (d *Dec) Blob() []byte {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// UUID reads a fixed 16-byte UUID.
func (d *Dec) UUID() uuid.UUID {
	b := d.take(uuid.Size)
	if b == nil {
		return uuid.UUID{}
	}
	return uuid.MustFromBytes(b)
}

// Remaining returns the unread byte count.
func (d *Dec) Remaining() int { return len(d.b) }
