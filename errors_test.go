package locofs_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"locofs"
	"locofs/internal/fsapi"
	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// TestSentinelErrors checks that every failure class coming out of a Client
// is matchable with errors.Is against the package-level sentinels.
func TestSentinelErrors(t *testing.T) {
	cluster, err := locofs.Start(locofs.Options{FMSCount: 2, CheckPermissions: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.NewClient(locofs.ClientConfig{UID: 1000, GID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	if err := fs.Mkdir("/s", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/s/t", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/s/f", 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := fs.StatFile("/s/missing"); !errors.Is(err, locofs.ErrNotFound) {
		t.Errorf("stat of missing file: %v, want ErrNotFound", err)
	}
	if err := fs.Create("/s/f", 0o644); !errors.Is(err, locofs.ErrExist) {
		t.Errorf("duplicate create: %v, want ErrExist", err)
	}
	if err := fs.Rmdir("/s"); !errors.Is(err, locofs.ErrNotEmpty) {
		t.Errorf("rmdir of non-empty dir: %v, want ErrNotEmpty", err)
	}
	// A different user without permission.
	other, err := cluster.NewClient(locofs.ClientConfig{UID: 2000, GID: 2000})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	// /s is 0700: user 2000 cannot traverse it to reach /s/t.
	if err := other.Create("/s/t/g", 0o644); !errors.Is(err, locofs.ErrPerm) {
		t.Errorf("create without permission: %v, want ErrPerm", err)
	}
	// Sentinels are distinct from each other.
	if _, err := fs.StatFile("/s/missing"); errors.Is(err, locofs.ErrExist) {
		t.Errorf("ENOENT matched ErrExist")
	}
}

// TestDeadlineAndUnavailableSentinels drives the fault-tolerance errors
// through the public Dial options: a blackholed FMS yields
// ErrDeadlineExceeded (also matching context.DeadlineExceeded), and a
// tripped breaker yields ErrUnavailable; fsapi.Unavailable covers both.
func TestDeadlineAndUnavailableSentinels(t *testing.T) {
	cluster, err := locofs.Start(locofs.Options{FMSCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	seed, err := cluster.NewClient(locofs.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := seed.Create("/d/f", 0o644); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	fs, err := cluster.NewClient(locofs.ClientConfig{
		OpTimeout: 30 * time.Millisecond,
		Retry:     locofs.RetryPolicy{Max: -1},
		Breaker:   locofs.BreakerConfig{Threshold: 1, Cooldown: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.StatDir("/d"); err != nil {
		t.Fatal(err)
	}
	cluster.Network().SetFault("fms-0", netsim.FaultConfig{Blackhole: true})

	_, err = fs.StatFile("/d/f")
	if !errors.Is(err, locofs.ErrDeadlineExceeded) {
		t.Errorf("blackholed stat: %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline error does not match context.DeadlineExceeded: %v", err)
	}
	if !fsapi.Unavailable(err) {
		t.Errorf("fsapi.Unavailable(%v) = false", err)
	}

	// The breaker is open now: the next call fails fast with EUNAVAIL.
	_, err = fs.StatFile("/d/f")
	if !errors.Is(err, locofs.ErrUnavailable) {
		t.Errorf("fast-failed stat: %v, want ErrUnavailable", err)
	}
	if !fsapi.Unavailable(err) {
		t.Errorf("fsapi.Unavailable(%v) = false", err)
	}
	// Application errors are NOT "unavailable".
	cluster.Network().ClearFault("fms-0")
	if fsapi.Unavailable(locofs.ErrNotFound) {
		t.Error("fsapi.Unavailable(ErrNotFound) = true")
	}
	if fsapi.Unavailable(nil) {
		t.Error("fsapi.Unavailable(nil) = true")
	}
}

// TestDialOptionsOverTCP exercises the functional options through the
// public Dial against a real TCP server stack.
func TestDialOptionsOverTCP(t *testing.T) {
	newServer := func(attach func(*locofs.RPCServer)) string {
		rs := locofs.NewRPCServer()
		attach(rs)
		l, err := locofs.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go rs.Serve(l)
		t.Cleanup(rs.Shutdown)
		return l.Addr()
	}
	dmsAddr := newServer(locofs.NewDMS(locofs.DMSOptions{}).Attach)
	fmsAddr := newServer(locofs.NewFMS(locofs.FMSOptions{ServerID: 1}).Attach)
	ossAddr := newServer(func(rs *locofs.RPCServer) { locofs.NewObjectStore().Attach(rs) })

	fs, err := locofs.Dial(locofs.DialConfig{
		Dialer:   locofs.TCPDialer{},
		DMSAddr:  dmsAddr,
		FMSAddrs: []string{fmsAddr},
		OSSAddrs: []string{ossAddr},
	},
		locofs.WithOpTimeout(2*time.Second),
		locofs.WithRetry(locofs.RetryPolicy{Max: 2, Base: time.Millisecond}),
		locofs.WithBreaker(locofs.BreakerConfig{Threshold: 5}))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.Mkdir("/tcp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/tcp/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StatFile("/tcp/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StatFile("/tcp/missing"); !errors.Is(err, locofs.ErrNotFound) {
		t.Errorf("TCP stat of missing file: %v, want ErrNotFound", err)
	}
}

// TestErrStaleSentinel: both staleness classes the servers raise — the FMS
// ownership guard's ESTALE and the sharded DMS's EWRONGPART — match the one
// public ErrStale sentinel.
func TestErrStaleSentinel(t *testing.T) {
	if !errors.Is(wire.StatusStale.Err(), locofs.ErrStale) {
		t.Error("ESTALE does not match ErrStale")
	}
	if !errors.Is(wire.StatusWrongPartition.Err(), locofs.ErrStale) {
		t.Error("EWRONGPART does not match ErrStale")
	}
	// Distinct from the other sentinels.
	if errors.Is(wire.StatusWrongPartition.Err(), locofs.ErrNotFound) {
		t.Error("EWRONGPART matched ErrNotFound")
	}
	if errors.Is(locofs.ErrNotFound, locofs.ErrStale) {
		t.Error("ErrNotFound matched ErrStale")
	}
}
