package acl

import "testing"

func TestOwnerBits(t *testing.T) {
	// mode 0o640, owner 10, group 20
	if !CanRead(0o640, 10, 20, 10, 99) {
		t.Error("owner cannot read 0640")
	}
	if !CanWrite(0o640, 10, 20, 10, 99) {
		t.Error("owner cannot write 0640")
	}
	if CanExec(0o640, 10, 20, 10, 99) {
		t.Error("owner can exec 0640")
	}
}

func TestGroupBits(t *testing.T) {
	if !CanRead(0o640, 10, 20, 11, 20) {
		t.Error("group member cannot read 0640")
	}
	if CanWrite(0o640, 10, 20, 11, 20) {
		t.Error("group member can write 0640")
	}
}

func TestOtherBits(t *testing.T) {
	if CanRead(0o640, 10, 20, 11, 21) {
		t.Error("other can read 0640")
	}
	if !CanRead(0o644, 10, 20, 11, 21) {
		t.Error("other cannot read 0644")
	}
	if !CanExec(0o641, 10, 20, 11, 21) {
		t.Error("other cannot exec 0641")
	}
}

func TestRootBypasses(t *testing.T) {
	if !CanWrite(0o000, 10, 20, 0, 0) {
		t.Error("root cannot write 0000")
	}
	if !CanExec(0o000, 10, 20, 0, 99) {
		t.Error("root cannot exec 0000")
	}
}

func TestOwnerClassShadowsGroup(t *testing.T) {
	// Owner matches: owner bits apply even if group bits are wider.
	if CanWrite(0o060, 10, 20, 10, 20) {
		t.Error("owner got group's write bit")
	}
}

func TestIsOwner(t *testing.T) {
	if !IsOwner(10, 10) || !IsOwner(10, 0) || IsOwner(10, 11) {
		t.Error("IsOwner misbehaves")
	}
}
