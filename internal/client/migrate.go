package client

// Online FMS membership change: the coordinator side of elasticity. A
// membership change runs entirely through public wire ops, so any client
// (including the locofsd admin CLI) can drive one against a live cluster:
//
//  1. Install the intermediate membership (epoch E+1) on every server:
//     the new FMS set with the outgoing set in Prev. From this moment the
//     migration window is open — servers stamp the new epoch on every
//     response, clients notice and switch to dual-read routing, and the
//     FMS create-guard refuses creates for keys it no longer owns.
//  2. Drain each outgoing-set server: scan for files the new ring places
//     elsewhere (OpMigrateScan), install them at their new owners
//     (OpMigrateInstall, batched per destination over wire.OpBatch), then
//     conditionally delete the source copies (OpMigrateDelete, batched).
//     A source copy mutated after its export is left in place and picked
//     up by the next scan pass; the loop runs until a scan comes back
//     clean, so no concurrent update is ever lost.
//  3. Install the final membership (epoch E+2) with an empty Prev,
//     closing the window.
//
// Only ~1/n of the keyspace moves on a grow (consistent hashing); the
// namespace stays fully readable throughout because reads fall back to
// the previous owner until the key has landed.

import (
	"fmt"

	"locofs/internal/chash"
	"locofs/internal/flight"
	"locofs/internal/fms"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// migrateScanLimit bounds one OpMigrateScan response (files per page), so
// a drain of a large server streams in bounded chunks instead of one huge
// response.
const migrateScanLimit = 512

// MetricMigratedKeys counts files this client has relocated as a
// membership-change coordinator.
const MetricMigratedKeys = "locofs_client_migrated_keys_total"

// RebalanceReport summarizes one membership change.
type RebalanceReport struct {
	FromEpoch uint64 // membership epoch before the change
	ToEpoch   uint64 // final epoch (FromEpoch + 2)
	Total     int    // files held by the outgoing set before the change
	Moved     int    // files relocated (installs at new owners)
	Passes    int    // scan passes across all sources until clean
}

// ClusterMembership fetches the installed membership from the DMS, or nil
// when the cluster runs a static topology (none was ever installed).
func (c *Client) ClusterMembership() (*wire.Membership, error) {
	st, resp, err := c.dms.CallT(opCtx{}, wire.OpGetMembership, nil)
	if err != nil {
		return nil, err
	}
	if st == wire.StatusNotFound {
		return nil, nil
	}
	if st != wire.StatusOK {
		return nil, st.Err()
	}
	return wire.DecodeMembership(resp)
}

// currentMembership returns the cluster membership to base a change on:
// the DMS's installed one, or — bootstrapping a cluster that never ran
// the protocol — a synthetic epoch-0 membership from this client's static
// configuration.
func (c *Client) currentMembership() (*wire.Membership, error) {
	m, err := c.ClusterMembership()
	if err != nil || m != nil {
		return m, err
	}
	v := c.view.Load()
	m = &wire.Membership{}
	for _, mm := range v.cur {
		m.FMS = append(m.FMS, wire.Member{ID: mm.id, Addr: mm.ep.addr})
	}
	return m, nil
}

// AddFMS grows the FMS set by one server (ring ID id, reachable at addr)
// and migrates the ~1/n of keys the grown ring places on it. The ID must
// be new — ring IDs are stable for the life of the cluster and never
// reused.
func (c *Client) AddFMS(id int32, addr string) (*RebalanceReport, error) {
	cur, err := c.currentMembership()
	if err != nil {
		return nil, err
	}
	for _, m := range cur.FMS {
		if m.ID == id {
			return nil, fmt.Errorf("client: ring ID %d already in use by %s", id, m.Addr)
		}
	}
	next := append(append([]wire.Member{}, cur.FMS...), wire.Member{ID: id, Addr: addr})
	return c.changeFMS(cur, next)
}

// RemoveFMS shrinks the FMS set by the server with ring ID id, first
// draining every file it holds to the survivors. The server itself keeps
// running (it serves dual-reads until the window closes); shutting it down
// is the operator's call once the change reports success.
func (c *Client) RemoveFMS(id int32) (*RebalanceReport, error) {
	cur, err := c.currentMembership()
	if err != nil {
		return nil, err
	}
	next := make([]wire.Member, 0, len(cur.FMS))
	for _, m := range cur.FMS {
		if m.ID != id {
			next = append(next, m)
		}
	}
	if len(next) == len(cur.FMS) {
		return nil, fmt.Errorf("client: no FMS with ring ID %d", id)
	}
	if len(next) == 0 {
		return nil, fmt.Errorf("client: cannot remove the last FMS")
	}
	return c.changeFMS(cur, next)
}

// changeFMS runs the three-step membership change from cur to the next
// FMS set.
func (c *Client) changeFMS(cur *wire.Membership, next []wire.Member) (rep *RebalanceReport, err error) {
	oc := c.startOp("ChangeFMS")
	defer func() { oc.finish(err) }()
	rep = &RebalanceReport{FromEpoch: cur.Epoch, ToEpoch: cur.Epoch + 2}

	// Step 1: open the migration window.
	open := &wire.Membership{Epoch: cur.Epoch + 1, FMS: next, Prev: cur.FMS}
	if err := c.pushMembership(oc, open); err != nil {
		return rep, fmt.Errorf("client: install epoch %d: %w", open.Epoch, err)
	}

	// The next ring, for grouping moved files by destination.
	ids := make([]int, len(next))
	addrByID := make(map[int]string, len(next))
	for i, m := range next {
		ids[i] = int(m.ID)
		addrByID[int(m.ID)] = m.Addr
	}
	ring := chash.NewRing(0, ids...)

	// Pre-pass: record how many files the outgoing set holds before any
	// migration, so Moved/Total measures the migrated fraction cleanly.
	for _, src := range cur.FMS {
		_, total, _, err := c.migrateScan(oc, src, ids, 1)
		if err != nil {
			return rep, err
		}
		rep.Total += total
	}

	// Step 2: drain every source until a scan comes back clean.
	migrated := c.telem.reg.Counter(MetricMigratedKeys)
	for _, src := range cur.FMS {
		for {
			rep.Passes++
			moved, _, more, err := c.migrateScan(oc, src, ids, migrateScanLimit)
			if err != nil {
				return rep, err
			}
			if len(moved) == 0 && !more {
				break
			}
			byDest := make(map[string][]movedFile)
			for _, f := range moved {
				dest := addrByID[ring.Locate(fms.FileKey(f.dir, f.name))]
				byDest[dest] = append(byDest[dest], f)
			}
			for dest, files := range byDest {
				if err := c.migrateApply(oc, dest, wire.OpMigrateInstall, files); err != nil {
					return rep, fmt.Errorf("client: install at %s: %w", dest, err)
				}
			}
			if err := c.migrateApply(oc, src.Addr, wire.OpMigrateDelete, moved); err != nil {
				return rep, fmt.Errorf("client: retire at %s: %w", src.Addr, err)
			}
			rep.Moved += len(moved)
			migrated.Add(uint64(len(moved)))
			c.telem.fl.Emit(flight.KindMigration, "client", "drain", oc.tid, int64(len(moved)), src.Addr)
		}
	}

	// Step 3: close the window.
	closed := &wire.Membership{Epoch: cur.Epoch + 2, FMS: next}
	if err := c.pushMembership(oc, closed); err != nil {
		return rep, fmt.Errorf("client: install epoch %d: %w", closed.Epoch, err)
	}
	c.installView(closed)
	return rep, nil
}

// pushMembership installs m on every server: the DMS first (it is where
// clients refresh from), then every FMS in the union of m's current and
// previous sets (each told its own ring ID), then the object stores
// (epoch tracking only).
func (c *Client) pushMembership(oc opCtx, m *wire.Membership) error {
	push := func(e *endpoint, self int) error {
		st, _, err := e.CallT(oc, wire.OpSetMembership, wire.EncodeSetMembership(m, self))
		if err != nil {
			return err
		}
		// ESTALE means a newer epoch is already installed — another
		// coordinator won the race; this change must not proceed.
		return st.Err()
	}
	if err := push(c.dms, -1); err != nil {
		return fmt.Errorf("dms: %w", err)
	}
	pushed := make(map[string]bool, len(m.FMS)+len(m.Prev))
	for _, set := range [][]wire.Member{m.FMS, m.Prev} {
		for _, mm := range set {
			if pushed[mm.Addr] {
				continue
			}
			pushed[mm.Addr] = true
			e, err := c.fmsEndpoint(mm.Addr)
			if err != nil {
				return fmt.Errorf("fms %s: %w", mm.Addr, err)
			}
			if err := push(e, int(mm.ID)); err != nil {
				return fmt.Errorf("fms %s: %w", mm.Addr, err)
			}
		}
	}
	for _, e := range c.oss {
		if err := push(e, -1); err != nil {
			return fmt.Errorf("oss %s: %w", e.addr, err)
		}
	}
	return nil
}

// movedFile is one exported file in coordinator hands: its placement key
// plus the exported metadata bytes, which install at the destination and
// guard the conditional delete at the source.
type movedFile struct {
	dir     uuid.UUID
	name    string
	access  []byte
	content []byte
}

// migrateScan asks src which of its files the next ring (ids) places
// elsewhere, up to limit per call.
func (c *Client) migrateScan(oc opCtx, src wire.Member, ids []int, limit int) (moved []movedFile, total int, more bool, err error) {
	e, err := c.fmsEndpoint(src.Addr)
	if err != nil {
		return nil, 0, false, err
	}
	enc := wire.NewEnc().I64(int64(src.ID)).U32(0).U32(uint32(len(ids)))
	for _, id := range ids {
		enc.I64(int64(id))
	}
	body := enc.U32(uint32(limit)).Bytes()
	st, resp, err := e.CallT(oc, wire.OpMigrateScan, body)
	if err != nil {
		return nil, 0, false, err
	}
	if st != wire.StatusOK {
		return nil, 0, false, st.Err()
	}
	d := wire.NewDec(resp)
	total = int(d.U32())
	n := int(d.U32())
	moved = make([]movedFile, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		moved = append(moved, movedFile{dir: d.UUID(), name: d.Str(), access: d.Blob(), content: d.Blob()})
	}
	more = d.Bool()
	if d.Err() != nil {
		return nil, 0, false, d.Err()
	}
	return moved, total, more, nil
}

// migrateApply sends one install or delete per file to addr, packed into a
// single wire.OpBatch message (or serially with batching disabled).
func (c *Client) migrateApply(oc opCtx, addr string, op wire.Op, files []movedFile) error {
	e, err := c.fmsEndpoint(addr)
	if err != nil {
		return err
	}
	mkBody := func(f movedFile) []byte {
		return wire.NewEnc().UUID(f.dir).Str(f.name).Blob(f.access).Blob(f.content).Bytes()
	}
	if c.disableBatch || len(files) == 1 {
		for _, f := range files {
			st, _, err := e.CallT(oc, op, mkBody(f))
			if err != nil {
				return err
			}
			if st != wire.StatusOK {
				return st.Err()
			}
		}
		return nil
	}
	subs := make([]wire.SubReq, len(files))
	for i, f := range files {
		subs[i] = wire.SubReq{Op: op, Body: mkBody(f)}
	}
	resps, _, err := e.CallBatch(oc, subs)
	if err != nil {
		return err
	}
	for _, r := range resps {
		if r.Status != wire.StatusOK {
			return r.Status.Err()
		}
	}
	return nil
}
