package bench

import (
	"fmt"
	"time"

	"locofs/internal/core"
	"locofs/internal/dms"
	"locofs/internal/kv"
	"locofs/internal/mdtest"
)

// Fig13 reproduces "Sensitivity to the Directory Depth": file-create
// throughput as the working directory moves deeper (1..32 levels), with the
// client cache enabled (LocoFS-C) and disabled (LocoFS-NC), on 2 and 4
// metadata servers.
//
// Paper shape: LocoFS-NC drops steeply with depth (every create pays the
// DMS ancestor ACL walk, which grows with depth); LocoFS-C degrades far
// less (ancestors come from the client cache).
func Fig13(env Env) (*Table, error) {
	t := &Table{
		Title:   "Figure 13: create throughput vs directory depth (modeled IOPS)",
		Note:    "C = client cache enabled, NC = disabled; number = metadata servers",
		Headers: []string{"depth", "LocoFS-C 2", "LocoFS-C 4", "LocoFS-NC 2", "LocoFS-NC 4"},
	}
	configs := []struct {
		sys     string
		servers int
	}{
		{SysLocoC, 2}, {SysLocoC, 4}, {SysLocoNC, 2}, {SysLocoNC, 4},
	}
	for _, depth := range env.Depths {
		row := []string{fmt.Sprint(depth)}
		for _, cfg := range configs {
			sut, err := StartSystem(cfg.sys, cfg.servers, env.Link)
			if err != nil {
				return nil, err
			}
			tp, _, err := throughputs(sut, env.Clients(cfg.sys, cfg.servers), env.TputItems,
				depth, []string{mdtest.PhaseTouch})
			sut.Close()
			if err != nil {
				return nil, err
			}
			row = append(row, fmtKIOPS(tp[mdtest.PhaseTouch]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig14 reproduces "Rename Overhead": the time to rename a directory with N
// renamed subdirectories under four DMS configurations — B+-tree vs hash
// store, on SSD vs HDD device models. The store is pre-populated with 10x
// the largest rename count (the paper pre-creates 10 M directories).
//
// Paper shape: the tree store renames in seconds (the subtree is one
// contiguous key range); the hash store must scan every record, costing
// ~100 s at full scale; HDD and SSD barely differ (writes are buffered).
func Fig14(env Env) (*Table, error) {
	t := &Table{
		Title:   "Figure 14: directory rename overhead (modeled seconds)",
		Note:    "DMS-local experiment; store pre-populated with 10x the largest rename count",
		Headers: []string{"renamed dirs", "btree-SSD", "btree-HDD", "hash-SSD", "hash-HDD"},
	}
	total := env.RenameCounts[len(env.RenameCounts)-1] * 10
	type cfg struct {
		name    string
		ordered bool
		model   kv.DeviceModel
	}
	configs := []cfg{
		{"btree-SSD", true, kv.SSD},
		{"btree-HDD", true, kv.HDD},
		{"hash-SSD", false, kv.SSD},
		{"hash-HDD", false, kv.HDD},
	}
	cost := core.PaperKVCost
	for _, count := range env.RenameCounts {
		row := []string{fmt.Sprint(count)}
		for _, c := range configs {
			var base kv.Store
			if c.ordered {
				base = kv.NewBTreeStore()
			} else {
				base = kv.NewHashStore()
			}
			inst := kv.Instrument(base, c.model)
			server := dms.New(dms.Options{Store: inst})
			// Populate: `count` dirs under the victim, the rest elsewhere.
			// Directories are bucketed (<= 1000 siblings) so population
			// stays linear — appending to one directory's concatenated
			// dirent value is O(list size) per insert.
			mkTree := func(root string, n int) error {
				if _, st := server.Mkdir(root, 0o755, 0, 0); st.Err() != nil {
					return st.Err()
				}
				const bucketSize = 1000
				created, b := 0, 0
				for created < n {
					bucket := fmt.Sprintf("%s/b%05d", root, b)
					b++
					if _, st := server.Mkdir(bucket, 0o755, 0, 0); st.Err() != nil {
						return st.Err()
					}
					created++
					for i := 0; created < n && i < bucketSize; i++ {
						if _, st := server.Mkdir(fmt.Sprintf("%s/d%d", bucket, i), 0o755, 0, 0); st.Err() != nil {
							return st.Err()
						}
						created++
					}
				}
				return nil
			}
			if err := mkTree("/victim", count); err != nil {
				return nil, err
			}
			if err := mkTree("/other", total-count); err != nil {
				return nil, err
			}
			inst.ResetVirtualTime()
			cnt := inst.Counters()
			r0 := cnt.Gets.Load()
			w0 := cnt.Puts.Load() + cnt.Deletes.Load() + cnt.Patches.Load() + cnt.Appends.Load()
			s0 := cnt.Scans.Load()
			b0 := cnt.BytesRead.Load() + cnt.BytesWritten.Load()
			_ = r0
			moved, st := server.Rename("/victim", "/renamed", 0, 0)
			if st.Err() != nil {
				return nil, st.Err()
			}
			if moved != count+1 {
				return nil, fmt.Errorf("bench: fig14 moved %d, want %d", moved, count+1)
			}
			r1 := cnt.Gets.Load()
			w1 := cnt.Puts.Load() + cnt.Deletes.Load() + cnt.Patches.Load() + cnt.Appends.Load()
			s1 := cnt.Scans.Load()
			b1 := cnt.BytesRead.Load() + cnt.BytesWritten.Load()
			// Total modeled time: device time (seeks/scans on the medium)
			// plus CPU-side KV work. A bulk subtree move re-emits records
			// sequentially, so its writes are priced as scanned records,
			// not random point writes.
			cpu := cost.Price(r1-r0, 0, 0, (s1-s0)+(w1-w0), b1-b0) - cost.Fixed
			totalTime := inst.VirtualTime() + cpu
			row = append(row, fmt.Sprintf("%.3fs", totalTime.Seconds()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig14Durations returns the raw modeled durations of the largest rename
// count for each configuration, for shape assertions in tests.
func Fig14Durations(env Env) (btreeSSD, btreeHDD, hashSSD, hashHDD time.Duration, err error) {
	tbl, err := Fig14(env)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	last := len(tbl.Rows) - 1
	parse := func(col int) time.Duration {
		var secs float64
		fmt.Sscanf(tbl.Rows[last][col], "%fs", &secs)
		return time.Duration(secs * float64(time.Second))
	}
	return parse(1), parse(2), parse(3), parse(4), nil
}
