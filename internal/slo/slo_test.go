package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"locofs/internal/telemetry"
)

// record feeds n observations of d into the windowed service histogram for
// op on reg.
func record(reg *telemetry.Registry, metric, op string, n int, d time.Duration) {
	w := reg.Windowed(metric, telemetry.L("op", op))
	for i := 0; i < n; i++ {
		w.Record(d)
	}
}

func TestClassOf(t *testing.T) {
	cases := map[string]string{
		"StatDir":    ClassMDRead,
		"AccessFile": ClassMDRead,
		"Mkdir":      ClassMDMutate,
		"RenameFile": ClassMDMutate,
		"PutBlock":   ClassData,
		"Ping":       classOther,
		"Batch":      classOther,
		"Migrate":    classOther,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestTrackerEvalBurnAndBudget(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.L("server", "fms-0"))
	// md_read: 990 fast + 10 slow events → bad fraction 1% = exactly at a
	// 1% budget (burn 1.0, met). md_mutate: 90 fast + 10 slow → 10% bad,
	// burn 10 with a 1% budget, objective missed.
	record(reg, MetricService, "StatDir", 990, 100*time.Microsecond)
	record(reg, MetricService, "StatDir", 10, 50*time.Millisecond)
	record(reg, MetricService, "Mkdir", 90, 200*time.Microsecond)
	record(reg, MetricService, "Mkdir", 10, 80*time.Millisecond)

	tr := NewTracker(reg, nil) // defaults to ServerObjectives
	byClass := map[string]ClassStatus{}
	for _, cs := range tr.Eval() {
		byClass[cs.Class] = cs
	}

	read := byClass[ClassMDRead]
	if read.WindowCount != 1000 {
		t.Fatalf("md_read window count = %d, want 1000", read.WindowCount)
	}
	if read.WindowBad != 10 {
		t.Fatalf("md_read bad = %d, want 10", read.WindowBad)
	}
	if read.BurnRate < 0.9 || read.BurnRate > 1.1 {
		t.Errorf("md_read burn = %.3f, want ~1.0", read.BurnRate)
	}
	if !read.Met {
		t.Error("md_read at exactly budget must still be met")
	}
	if read.BudgetRemaining > 0.15 || read.BudgetRemaining < -0.15 {
		t.Errorf("md_read budget remaining = %.3f, want ~0", read.BudgetRemaining)
	}

	mut := byClass[ClassMDMutate]
	if mut.WindowCount != 100 || mut.WindowBad != 10 {
		t.Fatalf("md_mutate count/bad = %d/%d, want 100/10", mut.WindowCount, mut.WindowBad)
	}
	if mut.Met {
		t.Error("md_mutate at 10x budget reported as met")
	}
	if mut.BurnRate < 5 {
		t.Errorf("md_mutate burn = %.2f, want ~10", mut.BurnRate)
	}
	if mut.BudgetRemaining >= 0 {
		t.Errorf("md_mutate budget remaining = %.2f, want negative (overspent)", mut.BudgetRemaining)
	}

	data := byClass[ClassData]
	if data.WindowCount != 0 || !data.Met || data.BudgetRemaining != 1 {
		t.Errorf("idle data class = %+v, want empty/met/full budget", data)
	}
}

func TestTrackerExportGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	record(reg, MetricService, "Mkdir", 10, 50*time.Millisecond) // all bad
	tr := NewTracker(reg, nil)
	tr.Export(reg)
	var sb strings.Builder
	reg.Snapshot().WriteProm(&sb)
	out := sb.String()
	if !strings.Contains(out, `locofs_slo_burn_rate{class="md_mutate"} 100`) {
		t.Errorf("burn gauge missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, `locofs_slo_budget_remaining{class="md_read"} 1`) {
		t.Errorf("idle class budget gauge missing:\n%s", out)
	}
	if !strings.Contains(out, `locofs_slo_window_p_seconds{class="md_mutate"}`) {
		t.Errorf("window percentile gauge missing:\n%s", out)
	}
}

func TestCollectAndServerStatusJSON(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.L("server", "dms"))
	record(reg, MetricService, "Mkdir", 100, time.Millisecond)
	record(reg, MetricQueue, "Mkdir", 100, 10*time.Microsecond)
	reg.Counter("locofs_rpc_requests_total", telemetry.L("op", "Mkdir")).Add(100)

	st := Collect(reg, CollectOptions{Epoch: 7, Hot: []HotEntry{{Source: "dms", Key: "/a", Count: 5}}})
	if st.Server != "dms" {
		t.Errorf("server = %q, want dms (from base label)", st.Server)
	}
	if st.Epoch != 7 {
		t.Errorf("epoch = %d, want 7", st.Epoch)
	}
	if st.GoVersion == "" || st.Version == "" || st.UptimeSec <= 0 {
		t.Errorf("identity incomplete: %+v", st)
	}
	if len(st.Service) != 1 || st.Service[0].Op != "Mkdir" || st.Service[0].Count != 100 {
		t.Fatalf("service windows = %+v", st.Service)
	}
	if len(st.Queue) != 1 || len(st.RTT) != 0 {
		t.Fatalf("queue/rtt split wrong: %d/%d", len(st.Queue), len(st.RTT))
	}
	if len(st.Service[0].Buckets) == 0 {
		t.Error("service window carries no buckets — cluster merge would be lossy")
	}
	found := false
	for k, v := range st.Counters {
		if strings.HasPrefix(k, "locofs_rpc_requests_total") && v == 100 {
			found = true
		}
		if strings.Contains(k, "_window") {
			t.Errorf("synthetic window gauge leaked into counters: %s", k)
		}
	}
	if !found {
		t.Errorf("requests counter missing from %v", st.Counters)
	}

	// The wire form must round-trip: quantiles recomputed from decoded
	// buckets match the source within log-bucket resolution.
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back ServerStatus
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	h := HistFromBuckets(back.Service[0].Buckets, back.Service[0].SumSec, back.Service[0].MaxSec)
	if h.Count != 100 {
		t.Errorf("round-tripped bucket count = %d, want 100", h.Count)
	}
	got := h.Quantile(0.95).Seconds()
	if got < st.Service[0].P95Sec/2 || got > st.Service[0].P95Sec*2 {
		t.Errorf("round-tripped p95 = %v, want ~%v", got, st.Service[0].P95Sec)
	}
}

func TestMergeClusterQuantilesAndEpochs(t *testing.T) {
	// Two servers with very different latency mixes: the cluster p95 must
	// come from the summed distribution, not an average of per-server p95s.
	regA := telemetry.NewRegistry(telemetry.L("server", "fms-0"))
	record(regA, MetricService, "StatFile", 940, 100*time.Microsecond)
	regB := telemetry.NewRegistry(telemetry.L("server", "fms-1"))
	record(regB, MetricService, "StatFile", 60, 40*time.Millisecond)

	a := Collect(regA, CollectOptions{Epoch: 3})
	b := Collect(regB, CollectOptions{Epoch: 3})
	cs := MergeCluster([]*ServerStatus{b, a}, []string{"fms-2"})

	if cs.Epoch != 3 || !cs.EpochAgreement {
		t.Errorf("epoch/agreement = %d/%v, want 3/true", cs.Epoch, cs.EpochAgreement)
	}
	if len(cs.Servers) != 2 || cs.Servers[0].Server != "fms-0" {
		t.Fatalf("servers not sorted: %v, %v", cs.Servers[0].Server, cs.Servers[1].Server)
	}
	if len(cs.Unreachable) != 1 || cs.Unreachable[0] != "fms-2" {
		t.Errorf("unreachable = %v", cs.Unreachable)
	}
	if len(cs.Service) != 1 || cs.Service[0].Count != 1000 {
		t.Fatalf("merged service = %+v", cs.Service)
	}
	// 6% of the merged population sits at 40ms; the cluster p95 must land
	// near the slow mode's lower bucket edge, far above fms-0's local p95
	// (~100µs) — an averaged p95 would sit near 2ms.
	p95 := cs.Service[0].P95Sec
	if p95 < 0.010 {
		t.Errorf("cluster p95 = %v s, want >= 10ms (summed-bucket merge)", p95)
	}
	// SLO classes merge the same way: 60/1000 = 6% bad on a 1% budget.
	var read ClassStatus
	for _, c := range cs.SLO {
		if c.Class == ClassMDRead {
			read = c
		}
	}
	if read.WindowCount != 1000 || read.Met {
		t.Errorf("merged md_read = %+v, want 1000 events and missed", read)
	}
	if read.BurnRate < 3 {
		t.Errorf("merged burn = %.2f, want ~6", read.BurnRate)
	}

	// Epoch disagreement must be flagged.
	b2 := Collect(regB, CollectOptions{Epoch: 4})
	cs2 := MergeCluster([]*ServerStatus{a, b2}, nil)
	if cs2.EpochAgreement || cs2.Epoch != 4 {
		t.Errorf("disagreement: epoch=%d agreement=%v, want 4/false", cs2.Epoch, cs2.EpochAgreement)
	}
}

func TestStatusHandlerAndFetch(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.L("server", "oss-0"))
	record(reg, MetricService, "PutBlock", 10, time.Millisecond)
	srv := httptest.NewServer(StatusHandler(func() any {
		return Collect(reg, CollectOptions{Epoch: 2})
	}))
	defer srv.Close()

	st, err := FetchStatus(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server != "oss-0" || st.Epoch != 2 || len(st.Service) != 1 {
		t.Fatalf("fetched status = %+v", st)
	}

	if _, err := FetchStatus(nil, "http://127.0.0.1:1/debug/slo"); err == nil {
		t.Error("fetch from dead endpoint did not error")
	}
}

func TestFormatTable(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.L("server", "dms"))
	record(reg, MetricService, "Mkdir", 100, time.Millisecond)
	cs := MergeCluster([]*ServerStatus{Collect(reg, CollectOptions{Epoch: 1, Hot: []HotEntry{{Source: "dms", Key: "/hot", Count: 9}}})}, []string{"fms-9"})
	var sb strings.Builder
	cs.Format(&sb)
	out := sb.String()
	for _, want := range []string{"epoch 1", "unreachable: fms-9", "dms", "md_mutate", "Mkdir", "/hot"} {
		if !strings.Contains(out, want) {
			t.Errorf("status table missing %q:\n%s", want, out)
		}
	}
}
