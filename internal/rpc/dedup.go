package rpc

import (
	"sync"
	"sync/atomic"

	"locofs/internal/wire"
)

// DedupWindow is how many recently-executed request ids a server remembers
// for at-most-once replay. A retried mutation whose first delivery executed
// is answered from this window instead of executing twice; a duplicate
// arriving after its entry was evicted re-executes (and then typically
// observes its own first execution as EEXIST/ENOENT — the same outcome the
// pre-dedup client always risked). The window only needs to outlive one
// client's retry horizon, not the full request history.
const DedupWindow = 1024

// dedupEntry records one request's outcome. done is closed once the first
// execution completes, releasing any duplicate deliveries waiting to replay
// the response.
type dedupEntry struct {
	done      chan struct{}
	completed atomic.Bool // set just before done is closed; eviction guard
	status    wire.Status
	body      []byte
	service   uint64
}

// dedupWindow is a bounded FIFO map of request id → outcome. The zero value
// is ready to use.
type dedupWindow struct {
	mu   sync.Mutex
	m    map[uint64]*dedupEntry
	fifo []uint64
	// inflightSkips counts entries that reached the head of the eviction
	// queue while their request was still executing and were spared —
	// evicting them would let a concurrent retry re-execute the mutation,
	// breaking at-most-once. Exported as
	// locofs_rpc_dedup_inflight_skips_total.
	inflightSkips atomic.Uint64
}

// begin registers req. When req is new it returns (entry, false) and the
// caller must execute the request and complete the entry; when req was
// already seen it returns (entry, true) and the caller must wait on
// entry.done and replay the recorded response.
func (w *dedupWindow) begin(req uint64) (*dedupEntry, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.m == nil {
		w.m = make(map[uint64]*dedupEntry)
	}
	if e, ok := w.m[req]; ok {
		return e, true
	}
	e := &dedupEntry{done: make(chan struct{})}
	w.m[req] = e
	w.fifo = append(w.fifo, req)
	if len(w.fifo) > DedupWindow {
		// Evict the oldest *completed* entry. In-flight entries must stay:
		// their first delivery is still executing, so evicting them would
		// let a retry slip past the window and run the mutation twice. If
		// every entry is in-flight (a pathological burst) the window
		// temporarily overflows rather than giving up the guarantee.
		for i, id := range w.fifo {
			ent := w.m[id]
			if ent != nil && !ent.completed.Load() {
				w.inflightSkips.Add(1)
				continue
			}
			delete(w.m, id)
			w.fifo = append(w.fifo[:i], w.fifo[i+1:]...)
			break
		}
	}
	return e, false
}

// InflightSkips returns how many evictions were skipped because the entry's
// request was still executing.
func (w *dedupWindow) InflightSkips() uint64 { return w.inflightSkips.Load() }

// size returns the current number of remembered request ids.
func (w *dedupWindow) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.fifo)
}

// complete records the first execution's outcome and releases duplicates.
func (e *dedupEntry) complete(status wire.Status, body []byte, service uint64) {
	e.status = status
	e.body = body
	e.service = service
	e.completed.Store(true)
	close(e.done)
}
