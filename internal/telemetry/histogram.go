// Package telemetry is the observability layer of the reproduction: a
// lock-cheap latency histogram, a counter/gauge/histogram registry with
// stable point-in-time snapshots, and an HTTP admin surface (Prometheus
// text /metrics, expvar, pprof). Every server and client records per-op
// latency distributions here, which is what lets the experiments attribute
// a regression to the DMS, an FMS, the KV store, or the transport.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of log-spaced histogram buckets. Bucket i holds
// durations d (in nanoseconds) with bits.Len64(d) == i, i.e. the half-open
// range [2^(i-1), 2^i); bucket 0 holds zero. 64 buckets cover every
// possible time.Duration.
const NumBuckets = 64

// Histogram is a log-bucketed latency histogram safe for concurrent use.
// Recording is two atomic adds plus a CAS loop for the max — cheap enough
// to sit on every RPC hot path.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf returns the bucket index for a duration.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// BucketUpper returns the exclusive upper bound of bucket i.
func BucketUpper(i int) time.Duration {
	if i <= 0 {
		return 1 // bucket 0 is [0,1) ns
	}
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(i))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(d))
	for {
		cur := h.maxNS.Load()
		if uint64(d) <= cur || h.maxNS.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the distribution. Buckets are
// read without a global lock, so under concurrent recording the copy may be
// off by in-flight observations — each bucket is individually consistent,
// which is all quantile estimation needs.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sumNS.Load())
	s.Max = time.Duration(h.maxNS.Load())
	var n uint64
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		n += s.Buckets[i]
	}
	// Under concurrent recording the bucket sum may lag or lead the count;
	// quantiles are computed against the buckets actually seen.
	s.Count = n
	return s
}

// HistSnapshot is an immutable copy of a Histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	Buckets [NumBuckets]uint64
}

// Mean returns the average observation (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// CountAtMost estimates how many observations were <= d: full buckets below
// d's bucket plus a linear fraction of the containing bucket. This is the
// good-event counter behind SLO tracking (events within the latency
// objective), with the same log-bucket resolution as Quantile.
func (s HistSnapshot) CountAtMost(d time.Duration) uint64 {
	if d < 0 {
		return 0
	}
	b := bucketOf(d)
	var n uint64
	for i := 0; i < b && i < NumBuckets; i++ {
		n += s.Buckets[i]
	}
	if b < NumBuckets && s.Buckets[b] > 0 {
		lo := float64(BucketUpper(b)) / 2
		if b == 0 {
			lo = 0
		}
		hi := float64(BucketUpper(b))
		frac := (float64(d) - lo) / (hi - lo)
		if frac > 1 {
			frac = 1
		}
		if frac > 0 {
			n += uint64(frac * float64(s.Buckets[b]))
		}
	}
	if n > s.Count {
		n = s.Count
	}
	return n
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the containing log bucket, clamped to the observed max.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := float64(BucketUpper(i)) / 2
			if i == 0 {
				lo = 0
			}
			hi := float64(BucketUpper(i))
			frac := (rank - float64(cum)) / float64(c)
			est := time.Duration(lo + (hi-lo)*frac)
			if est > s.Max && s.Max > 0 {
				est = s.Max
			}
			return est
		}
		cum += c
	}
	return s.Max
}
