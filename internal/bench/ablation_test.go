package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestAblationRenameRatio asserts the §3.4.1 claim: realistic rename ratios
// leave the overall metadata cost essentially unchanged.
func TestAblationRenameRatio(t *testing.T) {
	env := Quick()
	tbl, err := AblationRenameRatio(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// At 1e-4 and 1e-3 the relative change must be small.
	for _, row := range tbl.Rows[1:3] {
		rel := strings.TrimSuffix(strings.TrimPrefix(row[2], "+"), "%")
		v, err := strconv.ParseFloat(rel, 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if v > 10 || v < -10 {
			t.Errorf("rename ratio %s changed mean cost by %s — should be negligible", row[0], row[2])
		}
	}
}

// TestAblationCacheLease asserts the lease sweep spans the NC..C spectrum.
func TestAblationCacheLease(t *testing.T) {
	env := Quick()
	tbl, err := AblationCacheLease(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	trips := func(row int) float64 {
		v, err := strconv.ParseFloat(tbl.Cell(row, 2), 64)
		if err != nil {
			t.Fatalf("bad cell %q", tbl.Cell(row, 2))
		}
		return v
	}
	disabled := trips(0)
	long := trips(len(tbl.Rows) - 1)
	if disabled < 1.9 {
		t.Errorf("disabled-cache creates took %.2f trips/op, want ~2", disabled)
	}
	if long > 1.1 {
		t.Errorf("30s-lease creates took %.2f trips/op, want ~1", long)
	}
}

// TestAblationDirentGranularity asserts concatenation wins and its edge
// grows with directory size.
func TestAblationDirentGranularity(t *testing.T) {
	tbl, err := AblationDirentGranularity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	parseUS := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "us"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	var prevRatio float64
	for i, row := range tbl.Rows {
		concat := parseUS(row[1])
		per := parseUS(row[2])
		if concat >= per {
			t.Errorf("entries %s: concatenated (%v) not cheaper than per-entry (%v)", row[0], concat, per)
		}
		ratio := per / concat
		if i > 0 && ratio <= prevRatio {
			t.Errorf("advantage did not grow with directory size: %.1f then %.1f", prevRatio, ratio)
		}
		prevRatio = ratio
	}
}
