package lsm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// walRecord is one logged mutation.
type walRecord struct {
	key  []byte
	val  []byte
	tomb bool
}

// walWriter appends mutation records to a log file so that a crashed store
// can rebuild its memtable on restart. A flush makes the log obsolete, at
// which point rotate truncates it.
type walWriter struct {
	dir string
	f   *os.File
	w   *bufio.Writer
}

const walName = "lsm.wal"

// openWAL opens (creating if needed) the WAL in dir and returns the records
// currently in it, in append order.
func openWAL(dir string) (*walWriter, []walRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("lsm: create wal dir: %w", err)
	}
	path := filepath.Join(dir, walName)
	var records []walRecord
	if data, err := os.ReadFile(path); err == nil {
		records = decodeWAL(data)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("lsm: open wal: %w", err)
	}
	return &walWriter{dir: dir, f: f, w: bufio.NewWriter(f)}, records, nil
}

// decodeWAL parses as many complete records as the buffer holds; a torn
// trailing record (partial write at crash) is ignored.
func decodeWAL(data []byte) []walRecord {
	var out []walRecord
	for len(data) > 0 {
		kl, n := binary.Uvarint(data)
		if n <= 0 {
			return out
		}
		data = data[n:]
		vl, n := binary.Uvarint(data)
		if n <= 0 {
			return out
		}
		data = data[n:]
		if len(data) < 1 {
			return out
		}
		tomb := data[0] == 1
		data = data[1:]
		if uint64(len(data)) < kl+vl {
			return out
		}
		rec := walRecord{
			key:  append([]byte(nil), data[:kl]...),
			tomb: tomb,
		}
		data = data[kl:]
		rec.val = append([]byte(nil), data[:vl]...)
		data = data[vl:]
		out = append(out, rec)
	}
	return out
}

// append logs one mutation. Errors are surfaced lazily on close; the store
// treats the WAL as best-effort durability.
func (w *walWriter) append(key, val []byte, tomb bool) {
	var hdr [2*binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	if tomb {
		hdr[n] = 1
	}
	n++
	w.w.Write(hdr[:n])
	w.w.Write(key)
	w.w.Write(val)
	w.w.Flush()
}

// rotate truncates the log after a memtable flush made it obsolete.
func (w *walWriter) rotate() {
	w.w.Flush()
	w.f.Truncate(0)
	w.f.Seek(0, io.SeekStart)
	w.w.Reset(w.f)
}

func (w *walWriter) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
