package rpc

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"testing"
	"time"

	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// startBatchServer builds a server (workers = concurrency cap, 0 unlimited)
// with an echo op and an op that fails with ENOENT.
func startBatchServer(t *testing.T, workers int) (*netsim.Network, *Server) {
	t.Helper()
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	s := NewServerWithWorkers(workers)
	s.Handle(wire.Op(0x0F00), func(body []byte) (wire.Status, []byte) {
		return wire.StatusOK, append([]byte("echo:"), body...)
	})
	s.Handle(wire.Op(0x0F01), func(body []byte) (wire.Status, []byte) {
		return wire.StatusNotFound, nil
	})
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(s.Shutdown)
	return n, s
}

func callBatch(t *testing.T, c *Client, subs []wire.SubReq) []wire.SubResp {
	t.Helper()
	body, err := wire.EncodeBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	st, resp, err := c.Call(wire.OpBatch, body)
	if err != nil {
		t.Fatal(err)
	}
	if st != wire.StatusOK {
		t.Fatalf("batch envelope status = %v", st)
	}
	resps, err := wire.DecodeBatchResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	return resps
}

// TestBatchPreservesOrder: sub-responses must line up with sub-requests even
// though the server dispatches them concurrently.
func TestBatchPreservesOrder(t *testing.T) {
	n, _ := startBatchServer(t, 0)
	c, _ := Dial(n, "srv")
	defer c.Close()
	const k = 64
	subs := make([]wire.SubReq, k)
	for i := range subs {
		subs[i] = wire.SubReq{Op: wire.Op(0x0F00), Body: []byte(fmt.Sprintf("sub-%02d", i))}
	}
	resps := callBatch(t, c, subs)
	if len(resps) != k {
		t.Fatalf("got %d sub-responses, want %d", len(resps), k)
	}
	for i, r := range resps {
		want := fmt.Sprintf("echo:sub-%02d", i)
		if r.Status != wire.StatusOK || string(r.Body) != want {
			t.Errorf("sub %d = %v %q, want OK %q", i, r.Status, r.Body, want)
		}
	}
	if c.Trips() != 1 {
		t.Errorf("batch of %d cost %d trips, want 1", k, c.Trips())
	}
}

// TestBatchIsolatesErrors: a failing sub-request must not disturb its
// siblings, and unknown ops (including a nested OpBatch) fail only their own
// slot.
func TestBatchIsolatesErrors(t *testing.T) {
	n, _ := startBatchServer(t, 0)
	c, _ := Dial(n, "srv")
	defer c.Close()
	nested, _ := wire.EncodeBatch([]wire.SubReq{{Op: wire.Op(0x0F00), Body: []byte("x")}})
	resps := callBatch(t, c, []wire.SubReq{
		{Op: wire.Op(0x0F00), Body: []byte("ok1")},
		{Op: wire.Op(0x0F01)},            // handler fails: ENOENT
		{Op: wire.Op(0x7777)},            // unregistered op
		{Op: wire.OpBatch, Body: nested}, // nesting is rejected
		{Op: wire.Op(0x0F00), Body: []byte("ok2")},
	})
	wantStatus := []wire.Status{wire.StatusOK, wire.StatusNotFound,
		wire.StatusInval, wire.StatusInval, wire.StatusOK}
	for i, want := range wantStatus {
		if resps[i].Status != want {
			t.Errorf("sub %d status = %v, want %v", i, resps[i].Status, want)
		}
	}
	if got := string(resps[0].Body); got != "echo:ok1" {
		t.Errorf("sub 0 body = %q", got)
	}
	if got := string(resps[4].Body); got != "echo:ok2" {
		t.Errorf("sub 4 body = %q", got)
	}
}

// TestBatchSingleWorkerNoDeadlock: the envelope must not hold a worker slot
// while its sub-requests wait for one.
func TestBatchSingleWorkerNoDeadlock(t *testing.T) {
	n, _ := startBatchServer(t, 1)
	c, _ := Dial(n, "srv")
	defer c.Close()
	subs := make([]wire.SubReq, 16)
	for i := range subs {
		subs[i] = wire.SubReq{Op: wire.Op(0x0F00), Body: []byte{byte(i)}}
	}
	done := make(chan []wire.SubResp, 1)
	go func() { done <- callBatch(t, c, subs) }()
	select {
	case resps := <-done:
		if len(resps) != len(subs) {
			t.Fatalf("got %d sub-responses, want %d", len(resps), len(subs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch on a 1-worker server deadlocked")
	}
}

// TestBatchMalformedEnvelope: an undecodable batch body fails the envelope
// itself with EINVAL.
func TestBatchMalformedEnvelope(t *testing.T) {
	n, _ := startBatchServer(t, 0)
	c, _ := Dial(n, "srv")
	defer c.Close()
	st, _, err := c.Call(wire.OpBatch, []byte{0xde, 0xad})
	if err != nil {
		t.Fatal(err)
	}
	if st != wire.StatusInval {
		t.Errorf("malformed batch envelope status = %v, want EINVAL", st)
	}
}

// TestBatchServiceSummed: the envelope's ServiceNS must be the sum of its
// sub-requests' modeled service times (the server CPU serializes the work
// even though one message carried it).
func TestBatchServiceSummed(t *testing.T) {
	n, s := startBatchServer(t, 0)
	s.SetVirtualCost(wire.Op(0x0F00), 3*time.Millisecond)
	c, _ := Dial(n, "srv")
	defer c.Close()
	c.SetLink(netsim.LinkConfig{}) // zero link: virt = ServiceNS only
	subs := make([]wire.SubReq, 5)
	for i := range subs {
		subs[i] = wire.SubReq{Op: wire.Op(0x0F00)}
	}
	body, _ := wire.EncodeBatch(subs)
	_, _, virt, err := c.CallTracedV(wire.OpBatch, body, 0)
	if err != nil {
		t.Fatal(err)
	}
	if virt < 15*time.Millisecond {
		t.Errorf("batch virt = %v, want >= 15ms (5 subs x 3ms)", virt)
	}
}

// TestBatchTracePropagates: batched sub-ops must appear in server slow logs
// under the parent request's trace id.
func TestBatchTracePropagates(t *testing.T) {
	n, s := startBatchServer(t, 0)
	s.SetVirtualCost(wire.Op(0x0F00), time.Second)
	s.SetSlowThreshold(time.Millisecond)
	c, _ := Dial(n, "srv")
	defer c.Close()

	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	const trace = 0xabc123
	body, _ := wire.EncodeBatch([]wire.SubReq{{Op: wire.Op(0x0F00), Body: []byte("x")}})
	if _, _, err := c.CallTraced(wire.OpBatch, body, trace); err != nil {
		t.Fatal(err)
	}
	logged := buf.String()
	if !strings.Contains(logged, fmt.Sprintf("trace=%#x", uint64(trace))) {
		t.Errorf("slow log missing parent trace id: %q", logged)
	}
	if !strings.Contains(logged, "op(0x0f00)") {
		t.Errorf("slow log missing sub-op: %q", logged)
	}
}

// TestBatchOverTCP: the batch must round-trip through a real TCP socket with
// per-sub-request statuses intact (acceptance criterion).
func TestBatchOverTCP(t *testing.T) {
	l, err := netsim.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	s.Handle(wire.Op(0x0F00), func(body []byte) (wire.Status, []byte) {
		return wire.StatusOK, append([]byte("echo:"), body...)
	})
	s.Handle(wire.Op(0x0F01), func(body []byte) (wire.Status, []byte) {
		return wire.StatusNotFound, nil
	})
	go s.Serve(l)
	defer s.Shutdown()
	c, err := Dial(netsim.TCPDialer{}, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resps := callBatch(t, c, []wire.SubReq{
		{Op: wire.Op(0x0F00), Body: []byte("over-tcp")},
		{Op: wire.Op(0x0F01)},
		{Op: wire.Op(0x0F00), Body: []byte("again")},
	})
	if resps[0].Status != wire.StatusOK || string(resps[0].Body) != "echo:over-tcp" {
		t.Errorf("sub 0 = %v %q", resps[0].Status, resps[0].Body)
	}
	if resps[1].Status != wire.StatusNotFound {
		t.Errorf("sub 1 status = %v, want ENOENT", resps[1].Status)
	}
	if resps[2].Status != wire.StatusOK || string(resps[2].Body) != "echo:again" {
		t.Errorf("sub 2 = %v %q", resps[2].Status, resps[2].Body)
	}
}
