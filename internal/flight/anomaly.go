package flight

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"locofs/internal/slo"
)

// RuleKind selects an anomaly rule's evaluation strategy.
type RuleKind string

// Rule kinds.
const (
	// RuleEventRate fires when at least Count journal events of kind Event
	// were appended within the trailing Window.
	RuleEventRate RuleKind = "event-rate"
	// RuleBurnRate fires when an SLO class's windowed burn rate reaches
	// Threshold (1.0 = burning exactly at budget).
	RuleBurnRate RuleKind = "burn-rate"
	// RuleP99Step fires when an SLO class's windowed headline percentile
	// jumps to Factor times its recent baseline (median of the engine's own
	// poll history) — a step change rather than an absolute threshold.
	RuleP99Step RuleKind = "p99-step"
)

// Rule is one declarative anomaly condition.
type Rule struct {
	Name string   `json:"name"`
	Kind RuleKind `json:"kind"`

	// Event-rate rules.
	Event  Kind          `json:"-"`
	Count  int           `json:"count,omitempty"`
	Window time.Duration `json:"window_ns,omitempty"`

	// SLO rules. Class restricts to one op class ("" = any).
	Class     string  `json:"class,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
	MinCount  uint64  `json:"min_count,omitempty"`

	// Cooldown suppresses refiring for this long after a trigger
	// (<= 0 means DefaultCooldown).
	Cooldown time.Duration `json:"cooldown_ns,omitempty"`
}

// Default rule tuning.
const (
	DefaultCooldown   = 30 * time.Second
	defaultRateWindow = 10 * time.Second
)

// DefaultRules is the stock rule set: breaker flap, lease-recall storm,
// SLO burn-rate spike, and a p99 step change.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "breaker-flap", Kind: RuleEventRate, Event: KindBreaker, Count: 3, Window: defaultRateWindow},
		{Name: "recall-storm", Kind: RuleEventRate, Event: KindLeaseRecall, Count: 256, Window: defaultRateWindow},
		{Name: "burn-spike", Kind: RuleBurnRate, Threshold: 2, MinCount: 20},
		{Name: "p99-step", Kind: RuleP99Step, Factor: 4, MinCount: 50, Cooldown: time.Minute},
	}
}

// Anomaly is one rule firing.
type Anomaly struct {
	Rule   string `json:"rule"`
	AtNS   int64  `json:"at_ns"`
	Seq    uint64 `json:"seq"` // journal seq at trigger (correlates events)
	Detail string `json:"detail,omitempty"`
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// Journal supplies event rates and receives KindAnomaly events.
	Journal *Journal
	// Rules evaluated each Poll (nil = DefaultRules).
	Rules []Rule
	// Source stamps the engine's own journal events and anomaly state.
	Source string
	// SLO supplies the current windowed class statuses for burn-rate and
	// p99-step rules (nil disables those rules).
	SLO func() []slo.ClassStatus
	// Now is the engine clock (nil = time.Now).
	Now func() time.Time
	// OnTrigger runs once per firing, outside the engine lock — the hook
	// the Recorder uses to capture a bundle.
	OnTrigger func(Anomaly)
}

// ruleState is one rule's firing history.
type ruleState struct {
	count  uint64
	last   time.Time
	detail string
}

// Engine evaluates anomaly rules on demand (Poll) or on a timer (Run).
type Engine struct {
	j         *Journal
	rules     []Rule
	source    string
	sloFn     func() []slo.ClassStatus
	now       func() time.Time
	onTrigger func(Anomaly)

	mu     sync.Mutex
	state  map[string]*ruleState
	hist   map[string][]float64 // per-class p99 poll history (baseline)
	recent []Anomaly            // newest last, bounded
	total  uint64
}

const (
	maxRecentAnomalies = 64
	p99HistoryLen      = 16
	p99BaselineMin     = 4 // polls of history before a step can fire
)

// NewEngine builds an engine from cfg.
func NewEngine(cfg EngineConfig) *Engine {
	e := &Engine{
		j:         cfg.Journal,
		rules:     cfg.Rules,
		source:    cfg.Source,
		sloFn:     cfg.SLO,
		now:       cfg.Now,
		onTrigger: cfg.OnTrigger,
		state:     make(map[string]*ruleState),
		hist:      make(map[string][]float64),
	}
	if e.rules == nil {
		e.rules = DefaultRules()
	}
	if e.now == nil {
		e.now = time.Now
	}
	return e
}

// Rules returns the evaluated rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// Total returns the lifetime number of rule firings.
func (e *Engine) Total() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}

// Poll evaluates every rule once and returns the anomalies that fired this
// poll (cooldown-suppressed triggers fire nothing). Firings are journaled
// as KindAnomaly events and handed to OnTrigger.
func (e *Engine) Poll() []Anomaly {
	now := e.now()
	var statuses []slo.ClassStatus
	if e.sloFn != nil {
		for _, r := range e.rules {
			if r.Kind == RuleBurnRate || r.Kind == RuleP99Step {
				statuses = e.sloFn()
				break
			}
		}
	}

	type trigger struct {
		rule   Rule
		detail string
	}
	var trigs []trigger
	for _, r := range e.rules {
		if det, ok := e.eval(r, now, statuses); ok {
			trigs = append(trigs, trigger{r, det})
		}
	}
	// p99 baselines advance every poll, fired or not.
	e.pushBaselines(statuses)

	var fired []Anomaly
	e.mu.Lock()
	for _, t := range trigs {
		cd := t.rule.Cooldown
		if cd <= 0 {
			cd = DefaultCooldown
		}
		st := e.state[t.rule.Name]
		if st == nil {
			st = &ruleState{}
			e.state[t.rule.Name] = st
		}
		if !st.last.IsZero() && now.Sub(st.last) < cd {
			continue
		}
		st.count++
		st.last = now
		st.detail = t.detail
		e.total++
		a := Anomaly{Rule: t.rule.Name, AtNS: now.UnixNano(), Seq: e.j.Seq(), Detail: t.detail}
		e.recent = append(e.recent, a)
		if len(e.recent) > maxRecentAnomalies {
			e.recent = append(e.recent[:0], e.recent[len(e.recent)-maxRecentAnomalies:]...)
		}
		fired = append(fired, a)
	}
	e.mu.Unlock()

	for _, a := range fired {
		e.j.Emit(KindAnomaly, e.source, "", 0, int64(a.Seq), a.Rule)
		if e.onTrigger != nil {
			e.onTrigger(a)
		}
	}
	return fired
}

// eval checks one rule (no engine state mutated except reading baselines).
func (e *Engine) eval(r Rule, now time.Time, statuses []slo.ClassStatus) (string, bool) {
	switch r.Kind {
	case RuleEventRate:
		w := r.Window
		if w <= 0 {
			w = defaultRateWindow
		}
		n := e.j.CountKindSince(r.Event, now.Add(-w).UnixNano())
		if r.Count > 0 && n >= r.Count {
			return fmt.Sprintf("%d %s events in %s", n, r.Event, w), true
		}
	case RuleBurnRate:
		for _, cs := range statuses {
			if r.Class != "" && cs.Class != r.Class {
				continue
			}
			if cs.WindowCount >= r.MinCount && r.Threshold > 0 && cs.BurnRate >= r.Threshold {
				return fmt.Sprintf("class %s burn rate %.2f (threshold %.2f)", cs.Class, cs.BurnRate, r.Threshold), true
			}
		}
	case RuleP99Step:
		e.mu.Lock()
		defer e.mu.Unlock()
		for _, cs := range statuses {
			if r.Class != "" && cs.Class != r.Class {
				continue
			}
			if cs.WindowCount < r.MinCount || cs.WindowPSec <= 0 {
				continue
			}
			base := median(e.hist[cs.Metric+"/"+cs.Class])
			if base > 0 && r.Factor > 0 && cs.WindowPSec >= r.Factor*base {
				return fmt.Sprintf("class %s p%.0f %.4fs is %.1fx baseline %.4fs",
					cs.Class, cs.Percentile*100, cs.WindowPSec, cs.WindowPSec/base, base), true
			}
		}
	}
	return "", false
}

// pushBaselines records this poll's headline percentiles into the step-rule
// history (only classes with traffic, so idle polls don't dilute the
// baseline toward zero).
func (e *Engine) pushBaselines(statuses []slo.ClassStatus) {
	if len(statuses) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, cs := range statuses {
		if cs.WindowCount == 0 || cs.WindowPSec <= 0 {
			continue
		}
		k := cs.Metric + "/" + cs.Class
		h := append(e.hist[k], cs.WindowPSec)
		if len(h) > p99HistoryLen {
			h = h[len(h)-p99HistoryLen:]
		}
		e.hist[k] = h
	}
}

// median of a baseline history; 0 until p99BaselineMin polls accumulated.
func median(h []float64) float64 {
	if len(h) < p99BaselineMin {
		return 0
	}
	s := append([]float64(nil), h...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Recent returns the engine's bounded firing history, oldest first.
func (e *Engine) Recent() []Anomaly {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Anomaly(nil), e.recent...)
}

// State summarizes per-rule firing history as the AnomalyState entries a
// ServerStatus carries (rules that never fired are omitted), sorted by rule
// name.
func (e *Engine) State() []slo.AnomalyState {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]slo.AnomalyState, 0, len(e.state))
	for name, st := range e.state {
		out = append(out, slo.AnomalyState{
			Source: e.source,
			Rule:   name,
			Count:  st.count,
			LastNS: st.last.UnixNano(),
			Detail: st.detail,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// Run polls every interval (<= 0 means DefaultPollInterval) until stop
// closes. Blocking; callers run it in a goroutine.
func (e *Engine) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.Poll()
		}
	}
}

// DefaultPollInterval is the engine's default evaluation cadence.
const DefaultPollInterval = 2 * time.Second
