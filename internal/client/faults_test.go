package client

import (
	"errors"
	"testing"
	"time"

	"locofs/internal/netsim"
	"locofs/internal/telemetry"
	"locofs/internal/wire"
)

// TestReaddirBoundedByDeadlineUnderBlackhole is the resilience layer's
// acceptance bound: with one of three FMSes blackholed mid-run, a fanned-out
// readdir must come back within the configured per-attempt deadline budget
// (here: one attempt, no retries) instead of hanging forever.
func TestReaddirBoundedByDeadlineUnderBlackhole(t *testing.T) {
	n, cfg := testCluster(t, 3)
	seed := dialTest(t, cfg)
	if err := seed.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"a", "b", "c", "d", "e", "f"} {
		if err := seed.Create("/d/"+f, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Healthy baseline.
	if ents, err := seed.Readdir("/d"); err != nil || len(ents) != 6 {
		t.Fatalf("healthy readdir = %d entries, %v", len(ents), err)
	}

	const deadline = 60 * time.Millisecond
	c := dialTest(t, cfg, WithOpTimeout(deadline), WithRetry(RetryPolicy{Max: -1}))
	if _, err := c.StatDir("/d"); err != nil { // warm the dir cache
		t.Fatal(err)
	}
	n.SetFault("fms-1", netsim.FaultConfig{Blackhole: true})
	t0 := time.Now()
	_, err := c.Readdir("/d")
	wall := time.Since(t0)
	if err == nil {
		t.Fatal("readdir with a blackholed FMS succeeded")
	}
	if wire.StatusOf(err) != wire.StatusDeadline {
		t.Errorf("readdir err = %v, want deadline", err)
	}
	if !errors.Is(err, wire.StatusDeadline.Err()) {
		t.Errorf("errors.Is(err, deadline sentinel) = false for %v", err)
	}
	if wall > 10*deadline {
		t.Errorf("readdir took %v with a %v deadline — not bounded", wall, deadline)
	}
	// Recovery: clearing the fault makes the same client whole again.
	n.ClearFault("fms-1")
	if ents, err := c.Readdir("/d"); err != nil || len(ents) != 6 {
		t.Errorf("readdir after recovery = %d entries, %v", len(ents), err)
	}
}

// TestIdempotentRetrySurvivesDrop: a dropped request message costs one
// deadline expiry; the automatic retry re-sends and the read succeeds.
func TestIdempotentRetrySurvivesDrop(t *testing.T) {
	n, cfg := testCluster(t, 1)
	seed := dialTest(t, cfg)
	if err := seed.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := seed.Create("/d/f", 0o644); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	c := dialTest(t, cfg,
		WithOpTimeout(40*time.Millisecond),
		WithRetry(RetryPolicy{Max: 2, Base: time.Millisecond}))
	if _, err := c.StatDir("/d"); err != nil { // warm the dir cache
		t.Fatal(err)
	}
	n.SetFault("fms-0", netsim.FaultConfig{DropRequests: 1})
	if _, err := c.StatFile("/d/f"); err != nil {
		t.Fatalf("stat with one dropped request: %v", err)
	}
	if got := testCounter(reg, MetricRetries); got < 1 {
		t.Errorf("retries counter = %d, want >= 1", got)
	}
	if got := testCounter(reg, MetricDeadlines); got < 1 {
		t.Errorf("deadline counter = %d, want >= 1", got)
	}
}

// TestCreateRetryIsAtMostOnce is the dedup acceptance check: the response
// to a Create is dropped, the client retries under the same request id, the
// server's dedup window replays the first execution — the retried call
// succeeds and exactly one file exists.
func TestCreateRetryIsAtMostOnce(t *testing.T) {
	n, cfg := testCluster(t, 1)
	c := dialTest(t, cfg,
		WithOpTimeout(40*time.Millisecond),
		WithRetry(RetryPolicy{Max: 2, Base: time.Millisecond}))
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StatDir("/d"); err != nil { // warm the dir cache
		t.Fatal(err)
	}
	n.SetFault("fms-0", netsim.FaultConfig{DropResponses: 1})
	if err := c.Create("/d/f", 0o644); err != nil {
		t.Fatalf("retried create failed: %v (without dedup this would be EEXIST)", err)
	}
	n.ClearFault("fms-0")
	ents, err := c.Readdir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "f" {
		t.Fatalf("directory after retried create = %v, want exactly [f]", ents)
	}
}

// TestBreakerFastFailAndHalfOpenRecovery: after the deadline trips the
// breaker, calls fail fast with EUNAVAIL instead of burning the deadline;
// once the cooldown elapses and the server is healthy again, the half-open
// probe closes the circuit and traffic resumes.
func TestBreakerFastFailAndHalfOpenRecovery(t *testing.T) {
	n, cfg := testCluster(t, 1)
	seed := dialTest(t, cfg)
	if err := seed.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := seed.Create("/d/f", 0o644); err != nil {
		t.Fatal(err)
	}

	const deadline = 25 * time.Millisecond
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	c := dialTest(t, cfg,
		WithOpTimeout(deadline),
		WithRetry(RetryPolicy{Max: -1}),
		WithBreaker(BreakerConfig{Threshold: 1, Cooldown: 80 * time.Millisecond}))
	if _, err := c.StatDir("/d"); err != nil { // warm the dir cache
		t.Fatal(err)
	}
	n.SetFault("fms-0", netsim.FaultConfig{Blackhole: true})

	// First call burns the deadline and trips the breaker.
	if _, err := c.StatFile("/d/f"); wire.StatusOf(err) != wire.StatusDeadline {
		t.Fatalf("first stat err = %v, want deadline", err)
	}
	// Subsequent calls fail fast — EUNAVAIL well inside the deadline.
	t0 := time.Now()
	_, err := c.StatFile("/d/f")
	if wall := time.Since(t0); wall > deadline {
		t.Errorf("fast-fail took %v, want < %v", wall, deadline)
	}
	if !errors.Is(err, wire.StatusUnavailable.Err()) {
		t.Errorf("fast-fail err = %v, want EUNAVAIL", err)
	}
	if got := testCounter(reg, MetricFastFails); got < 1 {
		t.Errorf("fastfail counter = %d, want >= 1", got)
	}

	// Server heals; after the cooldown the half-open probe recovers.
	n.ClearFault("fms-0")
	time.Sleep(120 * time.Millisecond)
	if _, err := c.StatFile("/d/f"); err != nil {
		t.Fatalf("stat after recovery: %v", err)
	}
	// And the circuit stays closed.
	if _, err := c.StatFile("/d/f"); err != nil {
		t.Fatalf("stat after probe closed the circuit: %v", err)
	}
}

// TestDisconnectMidCallIsTransparent: an injected connection reset during a
// call is absorbed by the default policy's transparent reconnect-retry.
func TestDisconnectMidCallIsTransparent(t *testing.T) {
	n, cfg := testCluster(t, 1)
	c := dialTest(t, cfg)
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/d/f", 0o644); err != nil {
		t.Fatal(err)
	}
	n.SetFault("fms-0", netsim.FaultConfig{DisconnectAfter: 1})
	if _, err := c.StatFile("/d/f"); err != nil {
		t.Fatalf("stat across injected disconnect: %v", err)
	}
}

// testCounter sums one client counter metric across its op labels.
func testCounter(reg *telemetry.Registry, name string) uint64 {
	var n uint64
	for _, m := range reg.Snapshot().Metrics {
		if m.Kind == telemetry.KindCounter && m.Name == name {
			n += uint64(m.Value)
		}
	}
	return n
}
