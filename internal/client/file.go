package client

import (
	"context"
	"sync"

	"locofs/internal/fms"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// File is an open file handle. Data is addressed directly on the object
// store by uuid + blk_num — the client computes block numbers from offsets
// (§3.3.2), so no metadata round trip is needed per data access.
type File struct {
	c    *Client
	dir  uuid.UUID
	name string

	mu        sync.Mutex
	uuid      uuid.UUID
	size      uint64
	blockSize uint32
	writable  bool
	closed    bool
}

// Open opens a file for reading (write=false) or reading+writing.
func (c *Client) Open(path string, write bool) (*File, error) {
	return c.OpenContext(context.Background(), path, write)
}

// OpenContext is Open under ctx. The context bounds only the open itself;
// the returned handle's reads and writes are not tied to it.
func (c *Client) OpenContext(ctx context.Context, path string, write bool) (f *File, err error) {
	oc := c.startOpCtx(ctx, "Open")
	defer func() { oc.finish(err) }()
	parent, _, name, err := c.splitPath(path, oc)
	if err != nil {
		return nil, err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).
		U32(c.uid).U32(c.gid).Bool(write).Bytes()
	st, resp, err := c.fmsCall(oc, parent.UUID(), name, wire.OpOpenFile, body)
	if err != nil {
		return nil, err
	}
	if st != wire.StatusOK {
		return nil, st.Err()
	}
	d := wire.NewDec(resp)
	_, ct := d.Blob(), d.Blob()
	if d.Err() != nil {
		return nil, d.Err()
	}
	var m fms.FileMeta
	m.Content = ct
	if !m.Content.Valid() {
		return nil, wire.StatusIO.Err()
	}
	return &File{
		c:         c,
		dir:       parent.UUID(),
		name:      name,
		uuid:      m.Content.UUID(),
		size:      m.Content.Size(),
		blockSize: m.Content.BlockSize(),
		writable:  write,
	}, nil
}

// UUID returns the file's stable identifier.
func (f *File) UUID() uuid.UUID { return f.uuid }

// Size returns the file size as known by this handle.
func (f *File) Size() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// WriteAt writes p at byte offset off, spanning blocks as needed, then
// pushes the new size to the FMS (a content-part patch, Table 1's "write").
func (f *File) WriteAt(p []byte, off uint64) (n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, wire.StatusInval.Err()
	}
	if !f.writable {
		return 0, wire.StatusPerm.Err()
	}
	if len(p) == 0 {
		return 0, nil
	}
	oc := f.c.startOp("WriteAt")
	defer func() { oc.finish(err) }()
	bs := uint64(f.blockSize)
	written := 0
	for written < len(p) {
		pos := off + uint64(written)
		blk := pos / bs
		bo := uint32(pos % bs)
		n := int(bs - uint64(bo))
		if n > len(p)-written {
			n = len(p) - written
		}
		enc := wire.GetEnc()
		body := enc.UUID(f.uuid).U64(blk).U32(bo).U32(f.blockSize).
			Blob(p[written : written+n]).Bytes()
		st, _, err := f.c.ossFor(f.uuid, blk).CallT(oc, wire.OpPutBlock, body)
		enc.Free()
		if err != nil {
			return written, err
		}
		if st != wire.StatusOK {
			return written, st.Err()
		}
		written += n
	}
	end := off + uint64(len(p))
	if end > f.size {
		f.size = end
	}
	body := wire.NewEnc().UUID(f.dir).Str(f.name).U64(end).Bytes()
	st, _, err := f.c.fmsCall(oc, f.dir, f.name, wire.OpUpdateSize, body)
	if err != nil {
		return written, err
	}
	if st != wire.StatusOK {
		return written, st.Err()
	}
	return written, nil
}

// ReadAt reads len(p) bytes at offset off, returning the count actually
// read (short at end of file). Unwritten holes read as zeros.
func (f *File) ReadAt(p []byte, off uint64) (n int, err error) {
	f.mu.Lock()
	size := f.size
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return 0, wire.StatusInval.Err()
	}
	if off >= size {
		return 0, nil
	}
	want := uint64(len(p))
	if off+want > size {
		want = size - off
	}
	oc := f.c.startOp("ReadAt")
	defer func() { oc.finish(err) }()
	bs := uint64(f.blockSize)
	read := uint64(0)
	for read < want {
		pos := off + read
		blk := pos / bs
		bo := uint32(pos % bs)
		n := bs - uint64(bo)
		if n > want-read {
			n = want - read
		}
		enc := wire.GetEnc()
		body := enc.UUID(f.uuid).U64(blk).U32(bo).U32(uint32(n)).Bytes()
		st, resp, err := f.c.ossFor(f.uuid, blk).CallT(oc, wire.OpGetBlock, body)
		enc.Free()
		if err != nil {
			return int(read), err
		}
		if st != wire.StatusOK {
			return int(read), st.Err()
		}
		data := wire.NewDec(resp).Blob()
		// Holes: the block may be short or absent; the missing tail is zeros.
		copy(p[read:read+n], data)
		for i := uint64(len(data)); i < n; i++ {
			p[read+i] = 0
		}
		read += n
	}
	return int(read), nil
}

// Close releases the handle. LocoFS keeps no server-side open state, so
// close is local (the paper routes open/close to the FMS only for metadata;
// our open already fetched it).
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}
