package fms

import (
	"fmt"
	"testing"

	"locofs/internal/kv"
	"locofs/internal/layout"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

var dirA = uuid.New(0, 100)
var dirB = uuid.New(0, 200)

func both(t *testing.T, fn func(t *testing.T, s *Server)) {
	t.Helper()
	for _, coupled := range []bool{false, true} {
		name := "decoupled"
		if coupled {
			name = "coupled"
		}
		t.Run(name, func(t *testing.T) {
			var tick int64
			s := New(Options{
				ServerID: 1,
				Coupled:  coupled,
				Now:      func() int64 { tick++; return tick },
			})
			fn(t, s)
		})
	}
}

func TestCreateGetattr(t *testing.T) {
	both(t, func(t *testing.T, s *Server) {
		u, st := s.Create(dirA, "f", 0o640, 10, 20)
		if st != wire.StatusOK || u.IsNil() {
			t.Fatalf("Create = %v, %v", u, st)
		}
		m, st := s.Getattr(dirA, "f")
		if st != wire.StatusOK {
			t.Fatal(st)
		}
		if m.Access.Mode()&layout.PermMask != 0o640 || m.Access.UID() != 10 || m.Access.GID() != 20 {
			t.Errorf("access = mode %o uid %d gid %d", m.Access.Mode(), m.Access.UID(), m.Access.GID())
		}
		if m.UUID() != u {
			t.Errorf("uuid mismatch: %v vs %v", m.UUID(), u)
		}
		if m.Content.Size() != 0 || m.Content.BlockSize() != DefaultBlockSize {
			t.Errorf("content = size %d bsize %d", m.Content.Size(), m.Content.BlockSize())
		}
	})
}

func TestCreateStatuses(t *testing.T) {
	both(t, func(t *testing.T, s *Server) {
		s.Create(dirA, "f", 0o644, 1, 1)
		if _, st := s.Create(dirA, "f", 0o644, 1, 1); st != wire.StatusExist {
			t.Errorf("dup create = %v", st)
		}
		if _, st := s.Create(dirA, "", 0o644, 1, 1); st != wire.StatusInval {
			t.Errorf("empty name = %v", st)
		}
		if _, st := s.Create(uuid.Nil, "g", 0o644, 1, 1); st != wire.StatusInval {
			t.Errorf("nil dir = %v", st)
		}
		if _, st := s.Getattr(dirA, "missing"); st != wire.StatusNotFound {
			t.Errorf("stat missing = %v", st)
		}
		// Same name in a different directory is a different file.
		if _, st := s.Create(dirB, "f", 0o644, 1, 1); st != wire.StatusOK {
			t.Errorf("same name, other dir = %v", st)
		}
	})
}

func TestChmodPatchesAccessOnly(t *testing.T) {
	both(t, func(t *testing.T, s *Server) {
		s.Create(dirA, "f", 0o644, 1, 1)
		before, _ := s.Getattr(dirA, "f")
		if st := s.Chmod(dirA, "f", 0o600, 1); st != wire.StatusOK {
			t.Fatal(st)
		}
		after, _ := s.Getattr(dirA, "f")
		if after.Access.Mode()&layout.PermMask != 0o600 {
			t.Errorf("mode = %o", after.Access.Mode())
		}
		if after.Access.Mode()&layout.ModeFile == 0 {
			t.Error("chmod dropped file type bit")
		}
		if after.Access.CTime() == before.Access.CTime() {
			t.Error("chmod did not bump ctime")
		}
		if after.Content.MTime() != before.Content.MTime() {
			t.Error("chmod touched the content part")
		}
		if st := s.Chmod(dirA, "missing", 0o600, 1); st != wire.StatusNotFound {
			t.Errorf("chmod missing = %v", st)
		}
	})
}

func TestChmodPermission(t *testing.T) {
	var tick int64
	s := New(Options{ServerID: 1, CheckPermissions: true, Now: func() int64 { tick++; return tick }})
	s.Create(dirA, "f", 0o644, 10, 10)
	if st := s.Chmod(dirA, "f", 0o600, 20); st != wire.StatusPerm {
		t.Errorf("chmod by non-owner = %v", st)
	}
	if st := s.Chmod(dirA, "f", 0o600, 0); st != wire.StatusOK {
		t.Errorf("chmod by root = %v", st)
	}
}

func TestChownUtimens(t *testing.T) {
	both(t, func(t *testing.T, s *Server) {
		s.Create(dirA, "f", 0o644, 1, 1)
		if st := s.Chown(dirA, "f", 7, 8, 0); st != wire.StatusOK {
			t.Fatal(st)
		}
		if st := s.Utimens(dirA, "f", 100, 200); st != wire.StatusOK {
			t.Fatal(st)
		}
		m, _ := s.Getattr(dirA, "f")
		if m.Access.UID() != 7 || m.Access.GID() != 8 {
			t.Errorf("owner = %d/%d", m.Access.UID(), m.Access.GID())
		}
		if m.Content.ATime() != 100 || m.Content.MTime() != 200 {
			t.Errorf("times = %d/%d", m.Content.ATime(), m.Content.MTime())
		}
	})
}

func TestTruncateAndUpdateSize(t *testing.T) {
	both(t, func(t *testing.T, s *Server) {
		u, _ := s.Create(dirA, "f", 0o644, 1, 1)
		gotU, old, bs, st := s.Truncate(dirA, "f", 5000)
		if st != wire.StatusOK || gotU != u || old != 0 || bs != DefaultBlockSize {
			t.Fatalf("Truncate = %v %d %d %v", gotU, old, bs, st)
		}
		// UpdateSize only grows.
		if st := s.UpdateSize(dirA, "f", 3000); st != wire.StatusOK {
			t.Fatal(st)
		}
		m, _ := s.Getattr(dirA, "f")
		if m.Content.Size() != 5000 {
			t.Errorf("size shrank via UpdateSize: %d", m.Content.Size())
		}
		if st := s.UpdateSize(dirA, "f", 9000); st != wire.StatusOK {
			t.Fatal(st)
		}
		m, _ = s.Getattr(dirA, "f")
		if m.Content.Size() != 9000 {
			t.Errorf("size = %d, want 9000", m.Content.Size())
		}
		// Truncate may shrink.
		_, old, _, _ = s.Truncate(dirA, "f", 100)
		if old != 9000 {
			t.Errorf("old size = %d", old)
		}
		m, _ = s.Getattr(dirA, "f")
		if m.Content.Size() != 100 {
			t.Errorf("size = %d, want 100", m.Content.Size())
		}
	})
}

func TestOpenAndAccess(t *testing.T) {
	var tick int64
	s := New(Options{ServerID: 1, CheckPermissions: true, Now: func() int64 { tick++; return tick }})
	s.Create(dirA, "f", 0o640, 10, 20)
	if _, st := s.Open(dirA, "f", 10, 99, true); st != wire.StatusOK {
		t.Errorf("owner open rw = %v", st)
	}
	if _, st := s.Open(dirA, "f", 99, 20, false); st != wire.StatusOK {
		t.Errorf("group open ro = %v", st)
	}
	if _, st := s.Open(dirA, "f", 99, 20, true); st != wire.StatusPerm {
		t.Errorf("group open rw on 0640 = %v", st)
	}
	if _, st := s.Open(dirA, "f", 99, 99, false); st != wire.StatusPerm {
		t.Errorf("other open ro on 0640 = %v", st)
	}
	if st := s.Access(dirA, "f", 10, 20, false); st != wire.StatusOK {
		t.Errorf("owner access = %v", st)
	}
	if st := s.Access(dirA, "f", 99, 99, false); st != wire.StatusPerm {
		t.Errorf("other access = %v", st)
	}
	if st := s.Access(dirA, "zz", 10, 20, false); st != wire.StatusNotFound {
		t.Errorf("access missing = %v", st)
	}
}

func TestRemoveAndDirents(t *testing.T) {
	both(t, func(t *testing.T, s *Server) {
		for i := 0; i < 5; i++ {
			s.Create(dirA, fmt.Sprintf("f%d", i), 0o644, 1, 1)
		}
		if !s.DirHasFiles(dirA) {
			t.Fatal("DirHasFiles = false with 5 files")
		}
		ents, more, st := s.ReaddirFiles(dirA, "", 0)
		if st != wire.StatusOK || len(ents) != 5 || more {
			t.Fatalf("readdir = %d entries (more=%v), %v", len(ents), more, st)
		}
		u, st := s.Remove(dirA, "f2", 1, 1)
		if st != wire.StatusOK || u.IsNil() {
			t.Fatalf("Remove = %v, %v", u, st)
		}
		ents, _, _ = s.ReaddirFiles(dirA, "", 0)
		if len(ents) != 4 {
			t.Errorf("dirents after remove = %d", len(ents))
		}
		for _, e := range ents {
			if e.Name == "f2" {
				t.Error("removed file still in dirents")
			}
		}
		if _, st := s.Remove(dirA, "f2", 1, 1); st != wire.StatusNotFound {
			t.Errorf("double remove = %v", st)
		}
		// Remove all; DirHasFiles must flip off and the dirent key vanish.
		for _, n := range []string{"f0", "f1", "f3", "f4"} {
			s.Remove(dirA, n, 1, 1)
		}
		if s.DirHasFiles(dirA) {
			t.Error("DirHasFiles = true after removing everything")
		}
		if s.FileCount() != 0 {
			t.Errorf("FileCount = %d", s.FileCount())
		}
	})
}

func TestRemoveDirFiles(t *testing.T) {
	both(t, func(t *testing.T, s *Server) {
		for i := 0; i < 7; i++ {
			s.Create(dirA, fmt.Sprintf("f%d", i), 0o644, 1, 1)
		}
		s.Create(dirB, "other", 0o644, 1, 1)
		removed := s.RemoveDirFiles(dirA)
		if len(removed) != 7 {
			t.Fatalf("removed %d, want 7", len(removed))
		}
		if s.DirHasFiles(dirA) {
			t.Error("dirA still has files")
		}
		if !s.DirHasFiles(dirB) {
			t.Error("dirB lost its file")
		}
		if got := s.RemoveDirFiles(dirA); got != nil {
			t.Errorf("second RemoveDirFiles = %v", got)
		}
	})
}

func TestCreateWithMetaPreservesUUID(t *testing.T) {
	both(t, func(t *testing.T, s *Server) {
		u, _ := s.Create(dirA, "orig", 0o640, 10, 20)
		m, _ := s.Getattr(dirA, "orig")
		if st := s.CreateWithMeta(dirB, "moved", m); st != wire.StatusOK {
			t.Fatal(st)
		}
		m2, st := s.Getattr(dirB, "moved")
		if st != wire.StatusOK {
			t.Fatal(st)
		}
		if m2.UUID() != u {
			t.Error("CreateWithMeta changed the uuid")
		}
		if m2.Access.Mode() != m.Access.Mode() || m2.Access.UID() != 10 {
			t.Error("metadata not preserved")
		}
		if st := s.CreateWithMeta(dirB, "moved", m); st != wire.StatusExist {
			t.Errorf("dup CreateWithMeta = %v", st)
		}
		bad := &FileMeta{Access: layout.FileAccess{1}, Content: m.Content}
		if st := s.CreateWithMeta(dirB, "bad", bad); st != wire.StatusInval {
			t.Errorf("invalid meta = %v", st)
		}
	})
}

func TestDecoupledPatchFootprint(t *testing.T) {
	// Decoupled chmod writes ~12 bytes; coupled chmod rewrites the whole
	// value. This byte-count asymmetry is the mechanism behind Fig 11.
	dfStore := kv.Instrument(kv.NewHashStore(), kv.RAM)
	cfStore := kv.Instrument(kv.NewHashStore(), kv.RAM)
	var tick int64
	now := func() int64 { tick++; return tick }
	df := New(Options{Store: dfStore, ServerID: 1, Now: now})
	cf := New(Options{Store: cfStore, ServerID: 1, Coupled: true, Now: now})
	df.Create(dirA, "f", 0o644, 1, 1)
	cf.Create(dirA, "f", 0o644, 1, 1)
	// Give the coupled file a block index to carry (size 1 MiB).
	df.UpdateSize(dirA, "f", 1<<20)
	cf.UpdateSize(dirA, "f", 1<<20)

	dfW0 := dfStore.Counters().BytesWritten.Load()
	cfW0 := cfStore.Counters().BytesWritten.Load()
	for i := 0; i < 100; i++ {
		df.Chmod(dirA, "f", 0o600, 1)
		cf.Chmod(dirA, "f", 0o600, 1)
	}
	dfBytes := dfStore.Counters().BytesWritten.Load() - dfW0
	cfBytes := cfStore.Counters().BytesWritten.Load() - cfW0
	if dfBytes*10 > cfBytes {
		t.Errorf("decoupled chmod wrote %d bytes vs coupled %d — expected >10x gap", dfBytes, cfBytes)
	}
}

func TestUUIDsTaggedWithServerID(t *testing.T) {
	s := New(Options{ServerID: 9})
	u, _ := s.Create(dirA, "f", 0o644, 1, 1)
	if u.SID() != 9 {
		t.Errorf("uuid sid = %d, want 9", u.SID())
	}
}
