package core

import (
	"math/rand"
	"testing"

	"locofs/internal/rpc"
	"locofs/internal/wire"
)

// TestServersSurviveMalformedBodies throws random garbage at every
// registered operation of every server type. Servers must keep answering
// (no panic, no hang) and reject undecodable requests with EINVAL.
func TestServersSurviveMalformedBodies(t *testing.T) {
	cluster, err := Start(Options{FMSCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	dmsOps := []wire.Op{
		wire.OpMkdir, wire.OpRmdir, wire.OpStatDir, wire.OpReaddirSubdirs,
		wire.OpLookupDir, wire.OpRenameDir, wire.OpChmodDir, wire.OpChownDir,
	}
	fmsOps := []wire.Op{
		wire.OpCreateFile, wire.OpRemoveFile, wire.OpStatFile, wire.OpOpenFile,
		wire.OpChmodFile, wire.OpChownFile, wire.OpAccessFile, wire.OpUtimensFile,
		wire.OpTruncateFile, wire.OpUpdateSize, wire.OpReaddirFiles,
		wire.OpDirHasFiles, wire.OpRemoveDirFiles,
	}
	ossOps := []wire.Op{wire.OpPutBlock, wire.OpGetBlock, wire.OpDeleteBlocks}

	rng := rand.New(rand.NewSource(99))
	garbage := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}

	attack := func(addr string, ops []wire.Op) {
		conn, err := netClient(cluster, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for _, op := range ops {
			for _, size := range []int{0, 1, 3, 17, 200} {
				st, _, err := conn.Call(op, garbage(size))
				if err != nil {
					t.Fatalf("op %#x size %d: transport error %v (server died?)", uint16(op), size, err)
				}
				_ = st // any status is acceptable; surviving is the property
			}
		}
		// The server must still answer a well-formed request afterwards.
		if st, _, err := conn.Call(wire.OpPing, []byte("alive")); err != nil || st != wire.StatusOK {
			t.Fatalf("server at %s unhealthy after fuzzing: %v %v", addr, st, err)
		}
	}
	attack("dms", dmsOps)
	attack("fms-0", fmsOps)
	attack("oss-0", ossOps)

	// The cluster still works end to end.
	cl, err := cluster.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Mkdir("/ok", 0o755); err != nil {
		t.Fatalf("cluster broken after fuzzing: %v", err)
	}
	if err := cl.Create("/ok/f", 0o644); err != nil {
		t.Fatalf("cluster broken after fuzzing: %v", err)
	}
}

// netClient dials a raw rpc client into the cluster fabric.
func netClient(c *Cluster, addr string) (*rpc.Client, error) {
	return rpc.Dial(c.net, addr)
}
