// Package partition turns a set of dms.Server instances into a sharded,
// replicated directory metadata service (DESIGN.md §16).
//
// The namespace is split into subtree range partitions by a versioned
// wire.PartMap. Each partition is a replica group of Nodes wrapping one
// dms.Server each; replica 0 is the leader. Mutations reach the leader,
// which appends them to a replicated op log under the partition lock, then
// fans the entry out to every live follower through per-follower ordered
// replicators *outside* the lock (a slow follower costs one replication
// timeout, not a partition-wide stall). All live followers must ack before
// the leader replies — an acked mutation is on every non-excluded replica,
// so promoting any follower loses nothing. A follower that cannot ack is
// excluded from the live set and re-admitted by the catch-up protocol
// (catchup.go): it replays the missed log range via OpLogFetch and rejoins
// at the tip. The log itself is bounded: followers report applied
// watermarks on every ack, and entries below the group-wide minimum are
// truncated together with their dedup-replay records (see
// maybePruneLocked).
//
// Followers apply entries in log order through the same dms.Dispatch,
// producing byte-identical state, and serve leased reads locally.
//
// A directory rename that crosses a partition boundary runs a two-
// partition commit: the source leader (coordinator) logs an intent marker
// and freezes the subtree, ships the re-keyed records to the destination
// leader (which validates, logs the prepare on its own group, and freezes
// the target), then logs the commit decision — the transaction's point of
// no return — applies the source-side delete, and drives the destination
// commit. Every decision is in both groups' logs before it takes effect,
// so a promoted leader on either side can finish or abort the transaction
// (Recover): an intent without a logged decision is presumed aborted; a
// logged decision is re-pushed to the destination, where commit/abort are
// idempotent by transaction id.
package partition

import (
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/dms"
	"locofs/internal/flight"
	"locofs/internal/fspath"
	"locofs/internal/netsim"
	"locofs/internal/rpc"
	"locofs/internal/wire"
)

// Replication-plane defaults (overridable per Config).
const (
	// DefaultLogCap bounds the retained op-log suffix (and, through it, the
	// dedup-replay table) when Config.LogCap is zero.
	DefaultLogCap = 4096
	// DefaultRepTimeout bounds each replication RPC when Config.RepTimeout
	// is zero. A follower that cannot ack within it is excluded from the
	// live fan-out set (catch-up re-admits it).
	DefaultRepTimeout = 2 * time.Second
	// catchupBatch is the per-OpLogFetch entry limit.
	catchupBatch = 512
	// catchupGrace is how long an idle catch-up session may hold truncation
	// before the leader declares it abandoned.
	catchupGrace = 30 * time.Second
)

// Config assembles one partition replica.
type Config struct {
	// PID is the partition this node belongs to; Index its replica slot in
	// the partition's group (0 = leader). Self is this node's own fabric
	// address (so it can exclude itself from replication fan-out).
	PID   uint32
	Index int
	Self  string
	// Map is the initial partition map.
	Map *wire.PartMap
	// DMS is the node's local directory metadata server.
	DMS *dms.Server
	// Dialer reaches peer nodes (followers, other partition leaders).
	Dialer netsim.Dialer
	// Journal, when non-nil, receives partition events (failovers,
	// follower exclusions, catch-up progress, 2PC recovery actions)
	// stamped Source.
	Journal *flight.Journal
	Source  string
	// Now supplies the leader-pinned log-entry timestamps. Default:
	// time.Now().UnixNano via the wire clock of the DMS is NOT used —
	// the node needs its own reading before dispatch.
	Now func() int64
	// LogCap bounds the retained op log: once more entries than this are
	// held, the leader prunes down toward the cap, limited by the
	// group-wide applied watermark and any active catch-up session.
	// 0 = DefaultLogCap.
	LogCap int
	// RepTimeout bounds each replication/catch-up RPC (0 = DefaultRepTimeout).
	RepTimeout time.Duration
	// CatchupEvery, when positive, runs a background probe on follower
	// replicas: every interval the node asks its leader for entries past
	// its own tip, so a replica that was excluded while unreachable (and
	// therefore receives no more appends to trip over) rejoins on its own.
	// Zero leaves catch-up on-demand (append gaps, map installs, CatchUp).
	CatchupEvery time.Duration
}

type appliedRes struct {
	status wire.Status
	body   []byte
}

type srcTx struct {
	sp        *wire.SrcPrepare
	committed bool
}

// reqIndex remembers which log index recorded which dedup id, so pruning
// the log prefix prunes exactly the matching applied-table entries.
type reqIndex struct {
	idx uint64
	req uint64
}

// catchSession tracks one follower's active catch-up on the leader: the
// oldest index it still needs (truncation must not pass it) and the time of
// its last fetch (sessions idle past catchupGrace are abandoned).
type catchSession struct {
	from uint64
	at   int64
}

// Node is one replica of one DMS partition.
type Node struct {
	dms    *dms.Server
	pid    uint32
	self   string
	dialer netsim.Dialer
	j      *flight.Journal
	source string
	now    func() int64

	logCap     int
	repTimeout time.Duration

	pm  atomic.Pointer[wire.PartMap]
	idx atomic.Int32 // replica index; 0 = leader

	// txSeq generates fallback transaction ids for cross-partition renames
	// issued without a client dedup id (see mintTxID). It restarts at zero
	// on every process, so minted ids are disambiguated by the map version
	// folded in — not by the sequence alone.
	txSeq atomic.Uint64

	// catching collapses concurrent catch-up passes into one.
	catching atomic.Bool

	closed    chan struct{}
	closeOnce sync.Once

	// CrashAfterPrepare / CrashAfterCommit are test hooks: when set, the
	// coordinator abandons a cross-partition rename at that protocol point
	// (as if the process died) and returns StatusIO. The crash-recovery
	// tests drive failover through them deterministically.
	CrashAfterPrepare atomic.Bool
	CrashAfterCommit  atomic.Bool

	// mu serializes log append and apply bookkeeping. It is never held
	// across an RPC: replication to this partition's own followers runs in
	// per-follower replicator goroutines outside the lock, and RPCs to
	// other partitions were always lock-free (deadlock with opposite-
	// direction traffic).
	mu sync.Mutex
	// applyC signals appliedIdx advancing: appenders wait on it until the
	// log prefix before their entry has applied, keeping applies in strict
	// index order even though fan-outs complete out of order.
	applyC *sync.Cond
	// log holds the retained entries [firstIndex, nextIndex); the prefix
	// below firstIndex has been truncated (see maybePruneLocked).
	log        []*wire.LogEntry
	firstIndex uint64
	nextIndex  uint64
	// appliedIdx is the next index to apply; every entry below it has been
	// applied to the local DMS.
	appliedIdx uint64
	// preApplied holds results of entries applied eagerly at append time
	// (2PC freeze markers — their guard effects must be visible to the
	// next mutation's checks immediately, see coordRename). The in-order
	// pass skips them and returns the recorded result.
	preApplied map[uint64]appliedRes
	// applied maps a client dedup id to its mutation's outcome. It is
	// rebuilt identically on every replica from the log, so a retry that
	// lands on a freshly promoted leader replays the original response
	// instead of re-executing (the rpc-layer dedup window died with the
	// old leader). It is pruned in lockstep with the log: dropping entry i
	// drops the record it created (reqAt), and reqFloor remembers the
	// highest pruned per-client sequence so an ancient retry is refused
	// (EEXPIRED) instead of silently re-executed.
	applied  map[uint64]appliedRes
	reqAt    []reqIndex
	reqFloor map[uint64]uint64
	// pendingReq maps a dedup id to its log index between append and
	// apply: a duplicate arriving in that window waits for the apply and
	// replays the recorded outcome instead of appending twice.
	pendingReq map[uint64]uint64
	// excluded holds follower addresses dropped from the live fan-out set
	// after a failed or timed-out append. Exclusion is no longer permanent:
	// the follower replays the missed range via OpLogFetch (catchup.go) and
	// is re-admitted once it reaches the tip, and installing a map whose
	// group no longer lists an address clears its entry. Keeping the
	// invariant "acked ⇒ on every non-excluded replica" is what makes any
	// surviving follower promotable.
	excluded map[string]bool
	// ackMark is each live follower's applied watermark, reported on every
	// append ack; the group-wide minimum bounds truncation.
	ackMark map[string]uint64
	// catch tracks active catch-up sessions by follower address (leader
	// side); an active session holds truncation at its oldest needed index.
	catch map[string]catchSession
	// reps holds the live per-follower replicators (leader side).
	reps map[string]*replicator

	frozen map[string]int                 // subtree roots locked by in-flight 2PC
	dtx    map[uint64]*wire.RenamePrepare // destination-side prepared txs
	stx    map[uint64]*srcTx              // coordinator-side txs

	peerMu sync.Mutex
	peers  map[string]*rpc.Client

	// seedMu serializes seed pushes (read-state + push) so two back-to-back
	// mutations of one path cannot reorder their absolute-state updates on
	// the target partition. It is never held together with mu.
	seedMu sync.Mutex
}

// New builds a Node. Call Attach to wire it to the replica's rpc.Server.
func New(cfg Config) *Node {
	n := &Node{
		dms:        cfg.DMS,
		pid:        cfg.PID,
		self:       cfg.Self,
		dialer:     cfg.Dialer,
		j:          cfg.Journal,
		source:     cfg.Source,
		now:        cfg.Now,
		logCap:     cfg.LogCap,
		repTimeout: cfg.RepTimeout,
		closed:     make(chan struct{}),
		preApplied: make(map[uint64]appliedRes),
		applied:    make(map[uint64]appliedRes),
		reqFloor:   make(map[uint64]uint64),
		pendingReq: make(map[uint64]uint64),
		excluded:   make(map[string]bool),
		ackMark:    make(map[string]uint64),
		catch:      make(map[string]catchSession),
		reps:       make(map[string]*replicator),
		frozen:     make(map[string]int),
		dtx:        make(map[uint64]*wire.RenamePrepare),
		stx:        make(map[uint64]*srcTx),
		peers:      make(map[string]*rpc.Client),
	}
	n.applyC = sync.NewCond(&n.mu)
	n.pm.Store(cfg.Map)
	n.idx.Store(int32(cfg.Index))
	if n.now == nil {
		n.now = defaultNow
	}
	if n.logCap <= 0 {
		n.logCap = DefaultLogCap
	}
	if n.repTimeout <= 0 {
		n.repTimeout = DefaultRepTimeout
	}
	if cfg.CatchupEvery > 0 {
		go n.catchupLoop(cfg.CatchupEvery)
	}
	return n
}

func defaultNow() int64 { return time.Now().UnixNano() }

// DMS returns the node's local directory metadata server.
func (n *Node) DMS() *dms.Server { return n.dms }

// Map returns the node's installed partition map.
func (n *Node) Map() *wire.PartMap { return n.pm.Load() }

// IsLeader reports whether this node currently leads its partition.
func (n *Node) IsLeader() bool { return n.idx.Load() == 0 }

// LogLen returns the replicated op log's length — total entries ever
// appended, including the truncated prefix (tests assert replica
// convergence with it).
func (n *Node) LogLen() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nextIndex
}

// LogRetained returns the number of op-log entries currently held in
// memory: LogLen minus the truncated prefix. Bounded near Config.LogCap
// under sustained load (catch-up sessions may hold it higher temporarily).
func (n *Node) LogRetained() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.log)
}

// DedupLen returns the size of the dedup-replay table, pruned in lockstep
// with the log.
func (n *Node) DedupLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.applied)
}

// Excluded snapshots the follower addresses currently excluded from the
// live fan-out set (catch-up re-admits them).
func (n *Node) Excluded() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.excluded))
	for a := range n.excluded {
		out = append(out, a)
	}
	return out
}

func (n *Node) emit(op string, value int64, detail string) {
	if n.j != nil {
		n.j.Emit(flight.KindPartition, n.source, op, 0, value, detail)
	}
}

// Attach registers the partition-aware handler set on rs: the full DMS op
// set wrapped with the range guard and replication, the replication ops
// (OpLogAppend, OpLogFetch, OpSeedUpdate), the 2PC destination ops, and the
// partition-map admin ops. It replaces dms.Server.Attach for sharded
// deployments.
func (n *Node) Attach(rs *rpc.Server) {
	rs.SetLeaseFunc(n.dms.LeaseSeq)
	rs.SetPMapFunc(func() uint64 {
		if pm := n.pm.Load(); pm != nil {
			return pm.Ver
		}
		return 0
	})
	for _, op := range dms.Ops {
		op := op
		if dms.MutationOp(op) {
			rs.HandleMsg(op, func(req uint64, body []byte) (wire.Status, []byte) {
				return n.serveMutation(op, req, body)
			})
		} else {
			rs.Handle(op, func(body []byte) (wire.Status, []byte) {
				return n.serveRead(op, body)
			})
		}
	}
	rs.Handle(wire.OpLogAppend, n.serveLogAppend)
	rs.Handle(wire.OpLogFetch, n.serveLogFetch)
	rs.Handle(wire.OpSeedUpdate, n.serveSeedUpdate)
	rs.Handle(wire.OpRenamePrepare, n.serveRenamePrepare)
	rs.Handle(wire.OpRenameCommit, n.serveRenameDecision(wire.OpRenameCommit))
	rs.Handle(wire.OpRenameAbort, n.serveRenameDecision(wire.OpRenameAbort))
	rs.Handle(wire.OpGetPartMap, func([]byte) (wire.Status, []byte) {
		pm := n.pm.Load()
		if pm == nil {
			return wire.StatusNotFound, nil
		}
		return wire.StatusOK, wire.EncodePartMap(pm)
	})
	rs.Handle(wire.OpSetPartMap, n.serveSetPartMap)
}

// ---- reads ----

func (n *Node) serveRead(op wire.Op, body []byte) (wire.Status, []byte) {
	p1, _, hasPath, err := dms.RequestPaths(op, body)
	if err != nil {
		return wire.StatusInval, nil
	}
	if hasPath {
		pm := n.pm.Load()
		owner := pm.Locate(p1)
		if op == wire.OpReaddirSubdirs {
			owner = pm.LocateList(p1)
		}
		if owner != n.pid {
			return wire.StatusWrongPartition, nil
		}
	}
	return n.dms.Dispatch(op, body)
}

// ---- mutations ----

func (n *Node) serveMutation(op wire.Op, req uint64, body []byte) (wire.Status, []byte) {
	p1, p2, _, err := dms.RequestPaths(op, body)
	if err != nil {
		return wire.StatusInval, nil
	}
	pm := n.pm.Load()
	if op == wire.OpRenameDir {
		if pm.CutWithin(p1) || pm.CutWithin(p2) {
			return wire.StatusInval, []byte("rename source or target subtree straddles a partition cut")
		}
		if pm.Locate(p1) != n.pid || !n.IsLeader() {
			return wire.StatusWrongPartition, nil
		}
		if dst := pm.Locate(p2); dst != n.pid {
			return n.coordRename(req, p1, p2, body, dst, pm)
		}
		return n.replicate(op, req, body, p1, p2)
	}
	if op == wire.OpRmdir && isCutDir(pm, p1) {
		// A cut directory is a mount-point-like fixture: its (empty or not)
		// listing lives on another partition and removing it would orphan
		// the cut. EBUSY analog.
		return wire.StatusInval, []byte("directory is a partition cut point")
	}
	if pm.Locate(p1) != n.pid || !n.IsLeader() {
		return wire.StatusWrongPartition, nil
	}
	st, respBody := n.replicate(op, req, body, p1, "")
	if st == wire.StatusOK {
		n.pushSeeds(p1, pm)
	}
	return st, respBody
}

func isCutDir(pm *wire.PartMap, p string) bool {
	for _, c := range pm.Cuts {
		if c.Dir == p {
			return true
		}
	}
	return false
}

// replicate runs one mutation through the replicated op log: dedup check
// (including the in-flight window and the pruned-watermark guard), freeze
// check, append under the lock, follower fan-out outside it, in-order local
// apply.
func (n *Node) replicate(op wire.Op, req uint64, body []byte, p1, p2 string) (wire.Status, []byte) {
	n.mu.Lock()
	if req != 0 {
		if r, ok := n.applied[req]; ok {
			n.mu.Unlock()
			return r.status, r.body
		}
		if idx, ok := n.pendingReq[req]; ok {
			// The same request is mid-replication (it slipped past the
			// rpc-layer dedup window): wait for its apply and replay the
			// recorded outcome rather than appending it twice.
			for n.appliedIdx <= idx {
				n.applyC.Wait()
			}
			r := n.applied[req]
			n.mu.Unlock()
			return r.status, r.body
		}
		if n.reqExpiredLocked(req) {
			n.mu.Unlock()
			return wire.StatusExpired, []byte("request predates the pruned dedup watermark")
		}
	}
	for _, p := range [2]string{p1, p2} {
		if p != "" && n.frozenConflictLocked(p) {
			n.mu.Unlock()
			return wire.StatusUnavailable, []byte("subtree locked by an in-flight cross-partition rename")
		}
	}
	f := n.appendLocked(&wire.LogEntry{Req: req, TS: n.now(), Op: op, Body: body}, false)
	n.mu.Unlock()
	if f == nil {
		// Deposed between the routing check and the append: nothing was
		// logged; the client re-routes off the successor map.
		return wire.StatusWrongPartition, nil
	}
	return n.finishAppend(f)
}

// fanout is the ticket of one append's replication round: finishAppend
// waits for every live follower's replicator to ack (or exclude itself),
// then applies the entry in log order.
type fanout struct {
	le *wire.LogEntry
	wg sync.WaitGroup
}

// appendLocked assigns the next index to le, appends it to the log, and
// enqueues it on every live follower's replicator (ordered per follower;
// the actual sends run outside n.mu). It returns nil — appending nothing —
// when this node is not, or no longer, the partition leader: the check runs
// under n.mu, the same lock serveSetPartMap installs maps under, so a
// deposed leader cannot slip an entry in after its successor took over.
//
// Every non-nil return must be finished with exactly one finishAppend (or
// appendLocked's caller must otherwise call applyInOrderLocked), or
// appliedIdx stalls and every later apply waits forever.
//
// With eager set, the entry's effects are also applied immediately, under
// this same lock, and the in-order pass later skips it: used for the 2PC
// freeze markers, whose guard effects must be visible to the next
// mutation's freeze check the moment the marker is in the log — waiting
// for the fan-out round would let a mutation slip into a subtree whose
// export is already on its way to the destination. Only entries whose
// apply touches pure bookkeeping (no store state) may be eager; freezing
// early is conservative, the symmetric unfreeze stays strictly in order.
func (n *Node) appendLocked(le *wire.LogEntry, eager bool) *fanout {
	if n.idx.Load() != 0 {
		return nil
	}
	le.Index = n.nextIndex
	n.log = append(n.log, le)
	n.nextIndex++
	if le.Req != 0 {
		n.pendingReq[le.Req] = le.Index
	}
	f := &fanout{le: le}
	if flw := n.followersLocked(); len(flw) > 0 {
		enc := wire.EncodeLogAppend(n.firstIndex, le)
		for _, addr := range flw {
			r := n.reps[addr]
			if r == nil {
				r = newReplicator(n, addr)
				n.reps[addr] = r
			}
			f.wg.Add(1)
			r.enqueue(enc, le.Index, &f.wg)
		}
	}
	if eager {
		st, body := n.applyLocked(le)
		n.preApplied[le.Index] = appliedRes{status: st, body: body}
	}
	return f
}

// finishAppend completes one append outside n.mu: wait for the fan-out
// round (every live follower acked, or was excluded trying — exclusion
// happens before the ticket releases, so the acked-everywhere invariant
// holds at reply time), then apply in log order and prune.
func (n *Node) finishAppend(f *fanout) (wire.Status, []byte) {
	f.wg.Wait()
	n.mu.Lock()
	st, body := n.applyInOrderLocked(f.le)
	n.maybePruneLocked()
	n.mu.Unlock()
	return st, body
}

// finishInternal completes an internal (2PC marker / seed) append,
// surfacing failure instead of proceeding as if the entry were durable: a
// nil fanout means the node was deposed before appending — the entry is
// not in any log — and a non-OK apply means the marker itself was broken.
// Both are journaled and returned as EIO.
func (n *Node) finishInternal(f *fanout, what, detail string) wire.Status {
	if f == nil {
		n.emit("append_failed", 0, what+" refused, not leader: "+detail)
		return wire.StatusIO
	}
	st, _ := n.finishAppend(f)
	if st != wire.StatusOK {
		n.emit("append_failed", int64(f.le.Index), what+": "+st.String())
		return wire.StatusIO
	}
	return wire.StatusOK
}

// applyInOrderLocked applies le once every entry before it has applied,
// waiting on applyC if fan-out rounds completed out of order. Eagerly
// applied entries (preApplied) only advance the watermark and replay their
// recorded result. Caller holds n.mu.
func (n *Node) applyInOrderLocked(le *wire.LogEntry) (wire.Status, []byte) {
	for n.appliedIdx != le.Index {
		n.applyC.Wait()
	}
	var st wire.Status
	var body []byte
	if r, ok := n.preApplied[le.Index]; ok {
		delete(n.preApplied, le.Index)
		st, body = r.status, r.body
	} else {
		st, body = n.applyLocked(le)
	}
	n.appliedIdx++
	if le.Req != 0 {
		delete(n.pendingReq, le.Req)
		if _, ok := n.applied[le.Req]; ok {
			n.reqAt = append(n.reqAt, reqIndex{idx: le.Index, req: le.Req})
		}
	}
	n.applyC.Broadcast()
	return st, body
}

// followersLocked lists the live replication targets: the group minus this
// node and minus excluded replicas.
func (n *Node) followersLocked() []string {
	pm := n.pm.Load()
	if pm == nil || int(n.pid) >= len(pm.Groups) {
		return nil
	}
	var out []string
	for _, addr := range pm.Groups[n.pid] {
		if addr != n.self && !n.excluded[addr] {
			out = append(out, addr)
		}
	}
	return out
}

// inGroupLocked reports whether addr is a member of this partition's group
// under the installed map.
func (n *Node) inGroupLocked(addr string) bool {
	pm := n.pm.Load()
	if pm == nil || int(n.pid) >= len(pm.Groups) {
		return false
	}
	for _, a := range pm.Groups[n.pid] {
		if a == addr {
			return true
		}
	}
	return false
}

// excludeFollower drops addr from the live fan-out set: its replicator is
// detached (the caller — the replicator itself — stops on its own) and its
// ack watermark forgotten. Exclusion happens before the failing append's
// ticket is released, so the leader never acks a mutation a non-excluded
// replica is missing. Catch-up re-admits the follower (serveLogFetch).
func (n *Node) excludeFollower(addr string, idx uint64, detail string) {
	n.mu.Lock()
	if !n.excluded[addr] {
		n.excluded[addr] = true
		n.emit("follower_excluded", int64(idx), detail)
	}
	delete(n.reps, addr)
	delete(n.ackMark, addr)
	n.mu.Unlock()
}

// noteAck records a follower's applied watermark from an append ack.
func (n *Node) noteAck(addr string, mark uint64) {
	n.mu.Lock()
	if !n.excluded[addr] && mark > n.ackMark[addr] {
		n.ackMark[addr] = mark
	}
	n.mu.Unlock()
}

// applyLocked applies one log entry to local state. It runs identically on
// the leader (in log order, after fan-out) and on followers (from
// OpLogAppend or catch-up), producing byte-identical stores and the same
// applied-response table everywhere.
func (n *Node) applyLocked(le *wire.LogEntry) (wire.Status, []byte) {
	switch le.Op {
	case wire.OpSeedUpdate:
		path, present, inode, err := wire.DecodeSeedUpdate(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		return n.dms.InstallSeed(path, present, inode), nil

	case wire.OpRenamePrepare:
		rp, err := wire.DecodeRenamePrepare(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		n.dtx[rp.TxID] = rp
		n.freezeLocked(rp.NewPath)
		return wire.StatusOK, nil

	case wire.OpRenameCommit:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		rp, ok := n.dtx[txid]
		if !ok {
			return wire.StatusOK, nil // replayed decision
		}
		st := n.dms.ApplyRenameDestCommit(rp.NewPath, rp.Recs)
		n.unfreezeLocked(rp.NewPath)
		delete(n.dtx, txid)
		return st, nil

	case wire.OpRenameAbort:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		if rp, ok := n.dtx[txid]; ok {
			n.unfreezeLocked(rp.NewPath)
			delete(n.dtx, txid)
		}
		return wire.StatusOK, nil

	case wire.OpRenameSrcPrepare:
		sp, err := wire.DecodeSrcPrepare(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		n.stx[sp.TxID] = &srcTx{sp: sp}
		n.freezeLocked(sp.OldPath)
		return wire.StatusOK, nil

	case wire.OpRenameSrcCommit:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		tx, ok := n.stx[txid]
		if !ok || tx.committed {
			return wire.StatusOK, nil
		}
		body, st := n.dms.ApplyRenameSrcCommit(tx.sp.OldPath)
		tx.committed = true
		n.unfreezeLocked(tx.sp.OldPath)
		if st == wire.StatusOK && txid != 0 {
			n.applied[txid] = appliedRes{status: st, body: body}
		}
		return st, body

	case wire.OpRenameSrcComplete:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		delete(n.stx, txid)
		return wire.StatusOK, nil

	case wire.OpRenameSrcAbort:
		txid, err := wire.DecodeRenameDecision(le.Body)
		if err != nil {
			return wire.StatusInval, nil
		}
		if tx, ok := n.stx[txid]; ok {
			n.unfreezeLocked(tx.sp.OldPath)
			delete(n.stx, txid)
		}
		return wire.StatusOK, nil

	default:
		// Ordinary DMS mutation: dispatch under the leader-pinned clock so
		// every replica stamps the same ctime and generates the same UUIDs
		// (replicas share the DMS ServerID and apply in log order).
		n.dms.PinClock(le.TS)
		st, body := n.dms.Dispatch(le.Op, le.Body)
		n.dms.UnpinClock()
		if le.Req != 0 {
			n.applied[le.Req] = appliedRes{status: st, body: body}
		}
		return st, body
	}
}

// ---- dedup-horizon bookkeeping ----

// splitReq splits a dedup id into its per-client base and 24-bit sequence
// (the client layout: identity bits above a 24-bit per-client counter —
// see the client resilience layer's request ids). Coordinator-minted txids
// (mintTxID) split mechanically the same way; their base carries the top
// bit and the map version, so they never share a floor with a real client.
func splitReq(req uint64) (base, seq uint64) {
	return req &^ (1<<24 - 1), req & (1<<24 - 1)
}

// reqExpiredLocked reports whether req lies below its client's pruned dedup
// watermark: a *later* request from the same client has already been pruned
// from the applied table, so if req had executed, its record is long gone —
// the node can no longer tell the retry from a fresh request, and refusing
// (EEXPIRED) is the safe side of at-most-once. The 24-bit client sequence
// wraps at 16M mutations per client; retrying across a full wrap is out of
// scope at this scale. reqFloor grows one entry per client base ever pruned
// — O(clients), not O(mutations).
func (n *Node) reqExpiredLocked(req uint64) bool {
	base, seq := splitReq(req)
	f, ok := n.reqFloor[base]
	return ok && seq <= f
}

// ---- truncation ----

// maybePruneLocked trims the op log toward LogCap when every retention
// constraint allows. The prune target is the minimum of: the cap overflow
// point, the leader's own applied tip (never truncate the unapplied
// suffix), every live follower's acked watermark (an entry below the
// group-wide minimum is applied everywhere, so no promotable replica can
// ever need it again — the truncation safety argument), and the floor of
// every active catch-up session (a catching-up replica still needs the
// range it is replaying; sessions idle past catchupGrace stop counting).
// Followers mirror the leader's floor from the value piggybacked on every
// append, so the whole group truncates identically.
func (n *Node) maybePruneLocked() {
	if n.idx.Load() != 0 || int(n.nextIndex-n.firstIndex) <= n.logCap {
		return
	}
	target := n.nextIndex - uint64(n.logCap)
	if target > n.appliedIdx {
		target = n.appliedIdx
	}
	for _, addr := range n.followersLocked() {
		if m := n.ackMark[addr]; m < target {
			target = m
		}
	}
	nowTS := n.now()
	for addr, cs := range n.catch {
		if nowTS-cs.at > int64(catchupGrace) {
			delete(n.catch, addr) // abandoned session: stop holding truncation
			continue
		}
		if cs.from < target {
			target = cs.from
		}
	}
	n.pruneToLocked(target)
}

// pruneToLocked drops log entries below target (clamped to the applied
// prefix), releasing their dedup-replay records and advancing the
// per-client floors the EEXPIRED guard checks. Caller holds n.mu.
func (n *Node) pruneToLocked(target uint64) {
	if target > n.appliedIdx {
		target = n.appliedIdx
	}
	if target <= n.firstIndex {
		return
	}
	drop := int(target - n.firstIndex)
	if drop > len(n.log) {
		drop = len(n.log)
	}
	rest := n.log[drop:]
	// Copy so the dropped prefix's backing array is actually released.
	n.log = append(make([]*wire.LogEntry, 0, len(rest)), rest...)
	n.firstIndex = target
	for len(n.reqAt) > 0 && n.reqAt[0].idx < target {
		ra := n.reqAt[0]
		n.reqAt = n.reqAt[1:]
		delete(n.applied, ra.req)
		base, seq := splitReq(ra.req)
		if f, ok := n.reqFloor[base]; !ok || seq > f {
			n.reqFloor[base] = seq
		}
	}
	if len(n.reqAt) == 0 {
		n.reqAt = nil // release the sliced-away backing array
	}
}

// ---- freeze bookkeeping ----

func (n *Node) freezeLocked(root string) { n.frozen[root]++ }
func (n *Node) unfreezeLocked(root string) {
	if n.frozen[root] <= 1 {
		delete(n.frozen, root)
	} else {
		n.frozen[root]--
	}
}

// frozenConflictLocked reports whether p overlaps a frozen subtree: p is a
// frozen root, inside one, or an ancestor of one (an ancestor rename or
// rmdir would move or check state the transaction owns).
func (n *Node) frozenConflictLocked(p string) bool {
	for f := range n.frozen {
		if p == f || fspath.IsAncestorOf(f, p) || fspath.IsAncestorOf(p, f) {
			return true
		}
	}
	return false
}

// ---- seed pushes ----

// pushSeeds propagates p's post-mutation inode state to every partition
// holding p as a seeded ancestor. Runs after the local commit, outside
// n.mu (cross-partition call), serialized per node so back-to-back
// mutations of one path cannot reorder their absolute-state updates.
// A push failure only degrades that partition's seed freshness (flight
// event); the local mutation is already acked and must stand.
func (n *Node) pushSeeds(p string, pm *wire.PartMap) {
	targets := pm.SeedTargets(p, n.pid)
	if len(targets) == 0 {
		return
	}
	n.seedMu.Lock()
	defer n.seedMu.Unlock()
	ino, ok := n.dms.CurrentInode(p)
	body := wire.EncodeSeedUpdate(p, ok, ino)
	for _, pid := range targets {
		addr := pm.Leader(pid)
		if addr == "" {
			continue
		}
		st, _, err := n.callPeer(addr, wire.OpSeedUpdate, body)
		if err != nil || st != wire.StatusOK {
			n.emit("seed_push_failed", int64(pid), p)
		}
	}
}

func (n *Node) serveSeedUpdate(body []byte) (wire.Status, []byte) {
	path, _, _, err := wire.DecodeSeedUpdate(body)
	if err != nil {
		return wire.StatusInval, nil
	}
	if !n.IsLeader() {
		return wire.StatusWrongPartition, nil
	}
	n.mu.Lock()
	f := n.appendLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpSeedUpdate, Body: body}, false)
	n.mu.Unlock()
	// A refused or failed append means the seed is NOT in the replicated
	// log — returning OK would let the pusher believe this partition's
	// replicas hold the fresh ancestor state when a promoted follower would
	// not. Surface EIO so the pusher journals the degraded freshness.
	return n.finishInternal(f, "seed_update", path), nil
}

// ---- replication (follower side) ----

func (n *Node) serveLogAppend(body []byte) (wire.Status, []byte) {
	floor, le, err := wire.DecodeLogAppend(body)
	if err != nil {
		return wire.StatusInval, nil
	}
	n.mu.Lock()
	if le.Index < n.nextIndex {
		mark := n.appliedIdx
		n.mu.Unlock()
		return wire.StatusOK, wire.EncodeLogAck(mark) // duplicate append (leader retry)
	}
	if le.Index > n.nextIndex {
		n.mu.Unlock()
		// A gap means this replica missed an entry — it must not ack, or
		// the acked-everywhere invariant breaks. The leader excludes it;
		// the catch-up pass kicked here replays the gap and rejoins.
		n.startCatchUp("append-gap")
		return wire.StatusInval, []byte("op-log gap")
	}
	n.log = append(n.log, le)
	n.nextIndex++
	// The apply outcome is recorded in n.applied for client-retry replay;
	// the append itself succeeded regardless of the mutation's own status
	// (the leader returns that status to the client). The ack carries this
	// replica's applied watermark; the piggybacked floor mirrors the
	// leader's truncation.
	n.applyInOrderLocked(le)
	n.pruneToLocked(floor)
	mark := n.appliedIdx
	n.mu.Unlock()
	return wire.StatusOK, wire.EncodeLogAck(mark)
}

// ---- two-partition rename (coordinator = source leader) ----

// mintTxID builds a coordinator-generated transaction id for a cross-
// partition rename issued without a client dedup id. The top bit marks it
// coordinator-minted; the installed map's version is folded in so ids
// minted by successive leaders — each restarting txSeq at zero after a
// promotion — cannot collide with a failed leader's transactions still
// live in dtx/applied: every failover bumps the map version, and a given
// version's ids are minted by exactly one leader. 22 version bits wrap
// after 4M map pushes; 41 sequence bits never wrap in practice. (Collision
// with a client-supplied id is probabilistic either way: client bases are
// random and may carry the top bit too.)
func (n *Node) mintTxID(ver uint64) uint64 {
	return 1<<63 | (ver&(1<<22-1))<<41 | (n.txSeq.Add(1) & (1<<41 - 1))
}

func (n *Node) coordRename(req uint64, oldC, newC string, body []byte, dstPID uint32, pm *wire.PartMap) (wire.Status, []byte) {
	dest := pm.Leader(dstPID)
	if dest == "" {
		return wire.StatusUnavailable, nil
	}
	d := wire.NewDec(body)
	_, _ = d.Str(), d.Str()
	uid, gid := d.U32(), d.U32()
	if d.Err() != nil {
		return wire.StatusInval, nil
	}
	txid := req
	if txid == 0 {
		txid = n.mintTxID(pm.Ver)
	}

	// Intent: validate the source half, export the subtree, log the
	// prepare marker (replicated — any promoted source replica knows the
	// transaction exists), freeze the subtree. The marker is applied
	// eagerly under the same lock hold: the freeze must guard the subtree
	// from the instant the export is taken, not an in-order apply later.
	n.mu.Lock()
	if r, ok := n.applied[txid]; ok {
		n.mu.Unlock()
		return r.status, r.body
	}
	if n.reqExpiredLocked(txid) {
		n.mu.Unlock()
		return wire.StatusExpired, []byte("request predates the pruned dedup watermark")
	}
	if n.frozenConflictLocked(oldC) || n.frozenConflictLocked(newC) {
		n.mu.Unlock()
		return wire.StatusUnavailable, []byte("subtree locked by an in-flight cross-partition rename")
	}
	if st := n.dms.ValidateRenameSource(oldC, uid, gid); st != wire.StatusOK {
		n.mu.Unlock()
		return st, nil
	}
	recs, st := n.dms.ExportRename(oldC, newC)
	if st != wire.StatusOK {
		n.mu.Unlock()
		return st, nil
	}
	sp := &wire.SrcPrepare{TxID: txid, OldPath: oldC, NewPath: newC, UID: uid, GID: gid, DestPID: dstPID}
	fPrep := n.appendLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenameSrcPrepare, Body: wire.EncodeSrcPrepare(sp)}, true)
	n.mu.Unlock()
	if st := n.finishInternal(fPrep, "rename_intent", oldC); st != wire.StatusOK {
		// The intent never made the replicated log (deposed mid-request):
		// nothing is frozen anywhere durable; the client re-routes and
		// retries against the new leader.
		return st, nil
	}

	// Phase 1: prepare at the destination leader (validates, logs on its
	// group, freezes the target). Never called under n.mu.
	prep := &wire.RenamePrepare{TxID: txid, OldPath: oldC, NewPath: newC, UID: uid, GID: gid, Recs: recs}
	pst, _, perr := n.callPeer(dest, wire.OpRenamePrepare, wire.EncodeRenamePrepare(prep))
	if n.CrashAfterPrepare.Load() {
		// Test hook: the coordinator dies here — intent logged on both
		// sides, no decision anywhere. Recovery presumes abort.
		return wire.StatusIO, nil
	}
	if perr != nil || pst != wire.StatusOK {
		n.abortTx(txid, dest)
		if perr != nil {
			return wire.StatusUnavailable, nil
		}
		return pst, nil
	}

	// Decision: the commit marker in the source log is the point of no
	// return. Applying it deletes the source subtree and records the
	// client response on every source replica.
	n.mu.Lock()
	fCommit := n.appendLocked(&wire.LogEntry{Req: txid, TS: n.now(), Op: wire.OpRenameSrcCommit, Body: wire.EncodeRenameDecision(txid)}, false)
	n.mu.Unlock()
	if fCommit == nil {
		// Deposed between intent and decision: no commit was logged, so the
		// successor's recovery presumes abort and tells the destination.
		// EIO (not OK) — the rename did not happen here.
		n.emit("append_failed", 0, "rename_decision refused, not leader: "+oldC)
		return wire.StatusIO, nil
	}
	cst, respBody := n.finishAppend(fCommit)
	if n.CrashAfterCommit.Load() {
		// Test hook: the coordinator dies after deciding commit but before
		// telling the destination. Recovery re-drives the commit.
		return wire.StatusIO, nil
	}

	// Phase 2: drive the destination commit, then retire the transaction.
	dst2, _, derr := n.callPeer(dest, wire.OpRenameCommit, wire.EncodeRenameDecision(txid))
	if derr != nil || dst2 != wire.StatusOK {
		// The rename is committed; the destination will converge when a
		// promoted source leader re-drives it (the tx stays in stx).
		n.emit("2pc_commit_push_failed", int64(dstPID), newC)
		return cst, respBody
	}
	n.mu.Lock()
	fDone := n.appendLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenameSrcComplete, Body: wire.EncodeRenameDecision(txid)}, false)
	n.mu.Unlock()
	if fDone != nil {
		n.finishAppend(fDone)
	}
	return cst, respBody
}

// abortTx logs the abort decision locally (unfreezing the subtree on every
// source replica) and best-effort tells the destination.
func (n *Node) abortTx(txid uint64, dest string) {
	n.mu.Lock()
	f := n.appendLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenameSrcAbort, Body: wire.EncodeRenameDecision(txid)}, false)
	n.mu.Unlock()
	if f != nil {
		n.finishAppend(f)
	}
	n.callPeer(dest, wire.OpRenameAbort, wire.EncodeRenameDecision(txid))
}

// ---- two-partition rename (destination side) ----

func (n *Node) serveRenamePrepare(body []byte) (wire.Status, []byte) {
	rp, err := wire.DecodeRenamePrepare(body)
	if err != nil {
		return wire.StatusInval, nil
	}
	if !n.IsLeader() {
		return wire.StatusWrongPartition, nil
	}
	n.mu.Lock()
	if _, ok := n.dtx[rp.TxID]; ok {
		n.mu.Unlock()
		return wire.StatusOK, nil // duplicate prepare (coordinator retry)
	}
	if n.frozenConflictLocked(rp.NewPath) {
		n.mu.Unlock()
		return wire.StatusUnavailable, []byte("target subtree locked by another cross-partition rename")
	}
	if st := n.dms.ValidateRenameDest(rp.NewPath, rp.UID, rp.GID); st != wire.StatusOK {
		n.mu.Unlock()
		return st, nil
	}
	// Eager, like the source intent: the destination freeze must hold from
	// the moment the prepare is logged.
	f := n.appendLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenamePrepare, Body: body}, true)
	n.mu.Unlock()
	return n.finishInternal(f, "rename_prepare", rp.NewPath), nil
}

func (n *Node) serveRenameDecision(op wire.Op) rpc.HandlerFunc {
	return func(body []byte) (wire.Status, []byte) {
		txid, err := wire.DecodeRenameDecision(body)
		if err != nil {
			return wire.StatusInval, nil
		}
		if !n.IsLeader() {
			return wire.StatusWrongPartition, nil
		}
		n.mu.Lock()
		if _, ok := n.dtx[txid]; !ok {
			n.mu.Unlock()
			// Unknown transaction: already decided and retired here, or
			// never prepared (presumed abort). Either way the decision is
			// idempotent.
			return wire.StatusOK, nil
		}
		f := n.appendLocked(&wire.LogEntry{TS: n.now(), Op: op, Body: body}, false)
		n.mu.Unlock()
		if f == nil {
			return wire.StatusWrongPartition, nil
		}
		st, _ := n.finishAppend(f)
		return st, nil
	}
}

// ---- partition map administration / failover ----

func (n *Node) serveSetPartMap(body []byte) (wire.Status, []byte) {
	pm, pid, idx, err := wire.DecodeSetPartMap(body)
	if err != nil {
		return wire.StatusInval, []byte(err.Error())
	}
	if pid != n.pid {
		return wire.StatusInval, []byte("partition id mismatch")
	}
	n.mu.Lock()
	cur := n.pm.Load()
	if cur != nil && pm.Ver <= cur.Ver {
		n.mu.Unlock()
		return wire.StatusStale, nil
	}
	wasLeader := n.idx.Load() == 0
	n.pm.Store(pm)
	n.idx.Store(int32(idx))
	// Reconcile replication bookkeeping with the new group: the exclusion,
	// ack watermark, and catch-up session of an address the group no longer
	// lists die with the map install — a replaced replica must not stay
	// excluded, hold truncation back, or count toward the group watermark
	// under a map that no longer knows it.
	group := make(map[string]bool)
	if int(n.pid) < len(pm.Groups) {
		for _, a := range pm.Groups[n.pid] {
			group[a] = true
		}
	}
	for a := range n.excluded {
		if !group[a] {
			delete(n.excluded, a)
			n.emit("exclusion_dropped", int64(pm.Ver), a)
		}
	}
	for a := range n.ackMark {
		if !group[a] {
			delete(n.ackMark, a)
		}
	}
	for a := range n.catch {
		if !group[a] {
			delete(n.catch, a)
		}
	}
	var stopped []*replicator
	for a, r := range n.reps {
		if idx != 0 || !group[a] {
			delete(n.reps, a)
			stopped = append(stopped, r)
		}
	}
	n.mu.Unlock()
	for _, r := range stopped {
		r.stop()
	}
	n.emit("map_installed", int64(pm.Ver), n.self)
	if idx == 0 && !wasLeader {
		n.emit("promoted", int64(pm.Ver), n.self)
		n.Recover()
	}
	if idx != 0 {
		// A (re-)added or demoted replica pulls itself to the leader's tip
		// and rejoins the live fan-out set; an already-current one gets a
		// cheap at-tip ack. Asynchronous — the map push must not block on
		// a leader that is itself mid-recovery.
		n.startCatchUp("map-install")
	}
	return wire.StatusOK, nil
}

// Recover finishes or aborts cross-partition renames left open by the
// failed leader, using only replicated state. An intent without a logged
// decision is presumed aborted (the destination may hold a prepare — the
// abort is pushed there, where an unknown transaction id is a no-op). A
// logged commit without a completion marker is re-driven: the destination
// commit is idempotent by transaction id. Called on promotion; exported
// for tests.
func (n *Node) Recover() {
	type action struct {
		txid    uint64
		commit  bool
		destPID uint32
	}
	var acts []action
	n.mu.Lock()
	for txid, tx := range n.stx {
		acts = append(acts, action{txid: txid, commit: tx.committed, destPID: tx.sp.DestPID})
	}
	pm := n.pm.Load()
	n.mu.Unlock()

	for _, a := range acts {
		dest := pm.Leader(a.destPID)
		if a.commit {
			n.emit("2pc_recover_commit", int64(a.destPID), "")
			st, _, err := n.callPeer(dest, wire.OpRenameCommit, wire.EncodeRenameDecision(a.txid))
			if err == nil && st == wire.StatusOK {
				n.mu.Lock()
				f := n.appendLocked(&wire.LogEntry{TS: n.now(), Op: wire.OpRenameSrcComplete, Body: wire.EncodeRenameDecision(a.txid)}, false)
				n.mu.Unlock()
				if f != nil {
					n.finishAppend(f)
				}
			}
		} else {
			n.emit("2pc_recover_abort", int64(a.destPID), "")
			n.abortTx(a.txid, dest)
		}
	}
}

// ---- peers ----

func (n *Node) peer(addr string) (*rpc.Client, error) {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	if cl, ok := n.peers[addr]; ok {
		return cl, nil
	}
	cl, err := rpc.Dial(n.dialer, addr)
	if err != nil {
		return nil, err
	}
	n.peers[addr] = cl
	return cl, nil
}

func (n *Node) callPeer(addr string, op wire.Op, body []byte) (wire.Status, []byte, error) {
	cl, err := n.peer(addr)
	if err != nil {
		return wire.StatusIO, nil, err
	}
	st, respBody, err := cl.Call(op, body)
	if err != nil {
		n.dropPeer(addr, cl)
	}
	return st, respBody, err
}

// callPeerT is callPeer with a per-attempt deadline, used on the
// replication plane (append fan-out, catch-up fetches) where a blackholed
// peer must cost one bounded timeout, never a hang: netsim faults swallow
// messages without closing the connection, so only a deadline detects them.
func (n *Node) callPeerT(addr string, op wire.Op, body []byte, timeout time.Duration) (wire.Status, []byte, error) {
	cl, err := n.peer(addr)
	if err != nil {
		return wire.StatusIO, nil, err
	}
	st, respBody, _, err := cl.Do(rpc.CallSpec{Op: op, Body: body, Timeout: timeout})
	if err != nil {
		n.dropPeer(addr, cl)
	}
	return st, respBody, err
}

// dropPeer discards a broken connection; the next call re-dials.
func (n *Node) dropPeer(addr string, cl *rpc.Client) {
	n.peerMu.Lock()
	if n.peers[addr] == cl {
		delete(n.peers, addr)
	}
	n.peerMu.Unlock()
	cl.Close()
}

// Close stops the node's replicators and background catch-up and releases
// its peer connections.
func (n *Node) Close() {
	n.closeOnce.Do(func() { close(n.closed) })
	n.mu.Lock()
	reps := n.reps
	n.reps = make(map[string]*replicator)
	n.mu.Unlock()
	for _, r := range reps {
		r.stop()
	}
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	for addr, cl := range n.peers {
		cl.Close()
		delete(n.peers, addr)
	}
}
