package bench

import (
	"strconv"
	"strings"
	"testing"
)

// parseUS parses a "123.4us" cell into a float of microseconds.
func parseUS(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "us"), 64)
	if err != nil {
		t.Fatalf("bad latency cell %q: %v", cell, err)
	}
	return v
}

// fanOutRow returns the sweep row for n FMSes.
func fanOutRow(t *testing.T, tbl *Table, n string) []string {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] == n {
			return row
		}
	}
	t.Fatalf("no row for %s FMSes in %v", n, tbl.Rows)
	return nil
}

// TestFanOutShape asserts the acceptance shape of the fan-out experiment:
// parallel readdir/rmdir are at least 2x faster than serial at 8 FMSes,
// batching never loses to plain parallel, and the parallel latency scales
// sublinearly in FMS count (it tracks the slowest server, not the sum).
func TestFanOutShape(t *testing.T) {
	env := Quick()
	tbl, err := FigFanOut(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)

	rdSerial := col(t, tbl, "readdir "+modeSerial)
	rdPar := col(t, tbl, "readdir "+modeParallel)
	rdBatch := col(t, tbl, "readdir "+modeBatched)
	rmSerial := col(t, tbl, "rmdir "+modeSerial)
	rmPar := col(t, tbl, "rmdir "+modeParallel)

	at8 := fanOutRow(t, tbl, "8")
	if s, p := parseUS(t, at8[rdSerial]), parseUS(t, at8[rdPar]); p*2 > s {
		t.Errorf("readdir at 8 FMSes: parallel %.1fus not 2x faster than serial %.1fus", p, s)
	}
	if s, p := parseUS(t, at8[rmSerial]), parseUS(t, at8[rmPar]); p*2 > s {
		t.Errorf("rmdir at 8 FMSes: parallel %.1fus not 2x faster than serial %.1fus", p, s)
	}
	// Batched paging must not cost more virtual time than page-per-RPC.
	if p, b := parseUS(t, at8[rdPar]), parseUS(t, at8[rdBatch]); b > p*1.05 {
		t.Errorf("readdir at 8 FMSes: batched %.1fus slower than parallel %.1fus", b, p)
	}

	// At 1 FMS the whole listing sits on one server as several pages, so
	// batched paging (several pages per round trip) must beat one RPC per
	// page.
	at1 := fanOutRow(t, tbl, "1")
	if p, b := parseUS(t, at1[rdPar]), parseUS(t, at1[rdBatch]); b >= p {
		t.Errorf("readdir at 1 FMS: batched %.1fus not faster than page-per-RPC %.1fus", b, p)
	}

	// Sublinear scaling: from 1 FMS to 8 FMSes serial readdir multiplies
	// its round trips ~(1+n), while parallel overlaps them — its growth
	// factor must stay well under the server-count growth factor.
	serialGrowth := parseUS(t, at8[rdSerial]) / parseUS(t, at1[rdSerial])
	parGrowth := parseUS(t, at8[rdPar]) / parseUS(t, at1[rdPar])
	if parGrowth >= serialGrowth/2 {
		t.Errorf("parallel readdir growth 1->8 FMSes = %.2fx, serial = %.2fx; want parallel under half of serial",
			parGrowth, serialGrowth)
	}
	if parGrowth >= 8 {
		t.Errorf("parallel readdir latency grew %.2fx over 8x servers — not sublinear", parGrowth)
	}
}
