package flight

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func get(t *testing.T, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

type eventsPage struct {
	Cur    uint64  `json:"cur"`
	Next   uint64  `json:"next"`
	Reset  bool    `json:"reset"`
	Events []Event `json:"events"`
}

func TestEventsHandlerPaging(t *testing.T) {
	j := NewJournal(32)
	for i := 0; i < 10; i++ {
		j.Emit(KindRetry, "client", "stat", uint64(i+1), int64(i), "fms-0")
	}
	h := EventsHandler(j)

	rec := get(t, h, "/debug/events?max=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var page eventsPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Cur != 10 || page.Next != 4 || len(page.Events) != 4 || page.Reset {
		t.Fatalf("first page = cur %d next %d n %d reset %v", page.Cur, page.Next, len(page.Events), page.Reset)
	}
	if page.Events[0].Seq != 1 || page.Events[0].Kind != KindRetry || page.Events[0].Trace != 1 {
		t.Fatalf("first event did not round-trip: %+v", page.Events[0])
	}

	// Resume from the returned cursor.
	rec = get(t, h, "/debug/events?since=4&max=100")
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 6 || page.Events[0].Seq != 5 || page.Next != 10 {
		t.Fatalf("second page = n %d first %d next %d", len(page.Events), page.Events[0].Seq, page.Next)
	}

	// Caught up: empty page, same cursor, still a JSON array (not null).
	rec = get(t, h, "/debug/events?since=10")
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 0 || page.Next != 10 {
		t.Fatalf("caught-up page = n %d next %d", len(page.Events), page.Next)
	}
}

func TestEventsHandlerReportsReset(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Emit(KindRetry, "client", "", 0, 0, "")
	}
	rec := get(t, EventsHandler(j), "/debug/events?since=1")
	var page eventsPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if !page.Reset {
		t.Fatal("overwritten range not flagged reset")
	}
}

func TestEventsHandlerRejectsBadParams(t *testing.T) {
	h := EventsHandler(NewJournal(4))
	for _, target := range []string{
		"/debug/events?since=banana",
		"/debug/events?max=banana",
		"/debug/events?max=-1",
		"/debug/events?max=0",
	} {
		rec := get(t, h, target)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", target, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: error Content-Type = %q", target, ct)
		}
	}
}

func TestEventsHandlerRejectsNonGET(t *testing.T) {
	h := EventsHandler(NewJournal(4))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/events", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow == "" {
		t.Fatal("405 response missing Allow header")
	}
}

func TestBundleHandler(t *testing.T) {
	j := NewJournal(16)
	r := New(Config{Server: "test", Journal: j})
	h := BundleHandler(r)

	// No bundle yet: ?last=1 is a JSON 404.
	rec := get(t, h, "/debug/bundle?last=1")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("last with no bundle: status = %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("404 Content-Type = %q", ct)
	}

	// Plain GET captures a fresh manual bundle.
	j.Emit(KindEpoch, "dms", "", 0, 3, "")
	rec = get(t, h, "/debug/bundle")
	if rec.Code != http.StatusOK {
		t.Fatalf("capture status = %d", rec.Code)
	}
	var b Bundle
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.Reason != "manual" || len(b.EventsOfKind(KindEpoch)) != 1 {
		t.Fatalf("captured bundle = reason %q, epoch events %d", b.Reason, len(b.EventsOfKind(KindEpoch)))
	}
	if r.Captures() != 1 {
		t.Fatalf("Captures = %d, want 1", r.Captures())
	}

	// ?last=1 now returns it without capturing another.
	rec = get(t, h, "/debug/bundle?last=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("last status = %d", rec.Code)
	}
	if r.Captures() != 1 {
		t.Fatalf("last=1 captured a new bundle: Captures = %d", r.Captures())
	}

	// Bad query param.
	rec = get(t, h, "/debug/bundle?last=banana")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad last: status = %d, want 400", rec.Code)
	}

	// Method check.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/debug/bundle", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status = %d, want 405", rec.Code)
	}
}

func TestRoutesExposeBothEndpoints(t *testing.T) {
	r := New(Config{Server: "test"})
	routes := r.Routes()
	for _, p := range []string{"/debug/events", "/debug/bundle"} {
		if routes[p] == nil {
			t.Errorf("route %s missing", p)
		}
	}
}
