package common

import (
	"sync"
	"time"
)

// LeaseCache is a string-keyed presence/value cache with per-entry leases,
// used by baseline clients for lookup caching (IndexFS's stateless dir
// cache, CephFS's client inode cache).
type LeaseCache struct {
	mu      sync.RWMutex
	lease   time.Duration
	entries map[string]leaseEntry
	now     func() time.Time
}

type leaseEntry struct {
	val     []byte
	expires time.Time
}

// NewLeaseCache returns a cache with the given lease duration.
func NewLeaseCache(lease time.Duration) *LeaseCache {
	return &LeaseCache{lease: lease, entries: make(map[string]leaseEntry), now: time.Now}
}

// Has reports whether key is cached with a live lease.
func (c *LeaseCache) Has(key string) bool {
	_, ok := c.Get(key)
	return ok
}

// Get returns the cached value if its lease is live.
func (c *LeaseCache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	e, ok := c.entries[key]
	c.mu.RUnlock()
	if !ok || c.now().After(e.expires) {
		return nil, false
	}
	return e.val, true
}

// Put caches key (with an optional value) under a fresh lease.
func (c *LeaseCache) Put(key string, val []byte) {
	c.mu.Lock()
	c.entries[key] = leaseEntry{val: val, expires: c.now().Add(c.lease)}
	c.mu.Unlock()
}

// Drop removes key.
func (c *LeaseCache) Drop(key string) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// Len returns the number of entries (including expired, until touched).
func (c *LeaseCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
