package client

import (
	"time"

	"locofs/internal/wire"
)

// Lease coherence, client side (DESIGN.md §14). Every DMS response header
// carries the server's recall sequence (wire.Msg.Lease); observeLease feeds
// it into the cache's maxSeq watermark. When the watermark runs ahead of
// what the cache has applied, cached entries stop being served (they might
// be stale) and the next DMS round trip piggybacks an OpLeaseRecall fetch —
// so catching up costs zero extra trips. Mutation responses additionally
// carry a publication trailer (decodePub) letting the mutating client
// account for its own recalls without any fetch.

// DefaultHotRefreshInterval is the hot-tier refresher period when
// Config.HotRefreshInterval is zero.
const DefaultHotRefreshInterval = 5 * time.Second

// observeLease receives the recall sequence stamped on every response
// header (rpc.CallSpec.OnLease). TTL-only caches ignore it: they trust
// entries for the configured lease regardless of server-side mutations.
func (c *Client) observeLease(seq uint64) {
	if ca := c.cache; ca != nil && ca.coherent {
		ca.observe(seq)
	}
}

// cacheBehind reports whether the cache must fetch missed recalls, and the
// applied watermark to fetch from.
func (c *Client) cacheBehind() (since uint64, ok bool) {
	if c.cache == nil {
		return 0, false
	}
	return c.cache.behind()
}

// applyRecallResp decodes an OpLeaseRecall response body and applies it.
func (c *Client) applyRecallResp(body []byte) {
	if c.cache == nil {
		return
	}
	cur, reset, entries, err := wire.DecodeRecallResp(body)
	if err != nil {
		return
	}
	c.cache.applyRecalls(cur, reset, entries)
}

// decodePub reads the publication trailer (last recall sequence, entry
// count) a successful DMS mutation response ends with. A body too short to
// hold the trailer reads as zero, which selfApply treats as "drop
// unconditionally" — defense-in-depth only: any server speaking the
// current 61-byte wire header also writes the trailer (the header growth
// was a flag-day protocol break, see DESIGN.md §14), so a short body here
// means a malformed response, not an older server.
func decodePub(d *wire.Dec) (last uint64, n uint32) {
	if d.Remaining() >= 12 {
		last = d.U64()
		n = d.U32()
	}
	return last, n
}

// hotRefreshPoll paces the wall-clock polls of an injected clock: fast
// enough to track a virtual clock running well ahead of real time, cheap
// enough to idle (one channel receive per tick).
const hotRefreshPoll = time.Millisecond

// hotRefreshLoop periodically promotes the client's most-resolved
// directories into the hot tier and refreshes their leases. clk is the
// injected clock (Config.Now), or nil for real time. With an injected
// clock the refresh cadence follows *that* clock — a real ticker only
// paces the polls — so virtual-time tests and benchmarks model the hot
// tier consistently instead of refreshing on wall time.
func (c *Client) hotRefreshLoop(n int, interval time.Duration, clk func() time.Time) {
	defer close(c.hotDone)
	if clk == nil {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.hotStop:
				return
			case <-t.C:
				c.refreshHot(n)
			}
		}
	}
	t := time.NewTicker(hotRefreshPoll)
	defer t.Stop()
	last := clk()
	for {
		select {
		case <-c.hotStop:
			return
		case <-t.C:
			if now := clk(); now.Sub(last) >= interval {
				last = now
				c.refreshHot(n)
			}
		}
	}
}

// refreshHot ranks the top n resolved directories, installs them as the hot
// set (so subsequent puts stretch their leases), and re-resolves them — in
// one batched DMS round trip when batching is enabled — so hot entries are
// renewed in the background instead of expiring under foreground traffic.
func (c *Client) refreshHot(n int) {
	ca := c.cache
	if ca == nil || ca.hot == nil {
		return
	}
	top := ca.hot.Top(n)
	if len(top) == 0 {
		return
	}
	set := make(map[string]struct{}, len(top))
	paths := make([]string, 0, len(top))
	for _, h := range top {
		set[h.Key] = struct{}{}
		paths = append(paths, h.Key)
	}
	ca.setHot(set)
	oc := c.startOp("HotRefresh")
	var err error
	defer func() { oc.finish(err) }()
	if c.disableBatch {
		for _, p := range paths {
			body := wire.NewEnc().Str(p).U32(c.uid).U32(c.gid).Bytes()
			st, resp, cerr := c.dms.CallT(oc, wire.OpLookupDir, body)
			if cerr != nil {
				err = cerr
				return
			}
			if st == wire.StatusOK {
				c.cacheLookupChain(p, resp)
			}
		}
		if since, behind := c.cacheBehind(); behind {
			// No batch to piggyback on: fetch missed recalls standalone so
			// the refreshed entries become servable (see resolveDir).
			st, resp, cerr := c.dms.CallT(oc, wire.OpLeaseRecall, wire.EncodeRecallReq(since))
			if cerr == nil && st == wire.StatusOK {
				c.applyRecallResp(resp)
			}
		}
		return
	}
	subs := make([]wire.SubReq, 0, len(paths)+1)
	for _, p := range paths {
		subs = append(subs, wire.SubReq{
			Op:   wire.OpLookupDir,
			Body: wire.NewEnc().Str(p).U32(c.uid).U32(c.gid).Bytes(),
		})
	}
	recallAt := -1
	if since, behind := c.cacheBehind(); behind {
		recallAt = len(subs)
		subs = append(subs, wire.SubReq{Op: wire.OpLeaseRecall, Body: wire.EncodeRecallReq(since)})
	}
	resps, _, err := c.dms.CallBatch(oc, subs)
	if err != nil {
		return
	}
	for i, p := range paths {
		if resps[i].Status == wire.StatusOK {
			c.cacheLookupChain(p, resps[i].Body)
		}
	}
	if recallAt >= 0 && resps[recallAt].Status == wire.StatusOK {
		c.applyRecallResp(resps[recallAt].Body)
	}
}
