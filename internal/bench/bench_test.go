package bench

import (
	"strconv"
	"strings"
	"testing"

	"locofs/internal/mdtest"
	"locofs/internal/netsim"
)

// parseRTT parses a "1.3x" cell into its float.
func parseRTT(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad RTT cell %q: %v", cell, err)
	}
	return v
}

// parseKIOPS parses a "123.4K" cell into ops/sec.
func parseKIOPS(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "K"), 64)
	if err != nil {
		t.Fatalf("bad KIOPS cell %q: %v", cell, err)
	}
	return v * 1e3
}

// col returns the column index of header h.
func col(t *testing.T, tbl *Table, h string) int {
	t.Helper()
	for i, c := range tbl.Headers {
		if c == h {
			return i
		}
	}
	t.Fatalf("no column %q in %v", h, tbl.Headers)
	return -1
}

// TestFig6Shape asserts the paper's Figure 6 orderings: LocoFS-C touch is a
// small number of RTTs and every baseline is slower; Gluster's mkdir
// latency grows with server count.
func TestFig6Shape(t *testing.T) {
	env := Quick()
	tbl, err := Fig6(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	locoCol := col(t, tbl, SysLocoC)
	ncCol := col(t, tbl, SysLocoNC)
	cephCol := col(t, tbl, SysCephFS)
	lustreCol := col(t, tbl, SysLustreD1)
	glusterCol := col(t, tbl, SysGluster)

	var glusterMkdir []float64
	for _, row := range tbl.Rows {
		op := row[1]
		loco := parseRTT(t, row[locoCol])
		if op == "touch" {
			if loco > 3 {
				t.Errorf("LocoFS-C touch = %.1f RTT, want <= 3 (paper: 1.3-3.2)", loco)
			}
			if nc := parseRTT(t, row[ncCol]); nc <= loco {
				t.Errorf("LocoFS-NC touch (%.1f) not slower than LocoFS-C (%.1f)", nc, loco)
			}
		}
		if op == "mkdir" && loco > 2 {
			t.Errorf("LocoFS mkdir = %.1f RTT, want <= 2 (paper: 1.1)", loco)
		}
		for name, c := range map[string]int{"CephFS": cephCol, "Lustre": lustreCol, "Gluster": glusterCol} {
			if v := parseRTT(t, row[c]); op == "touch" && v <= loco {
				t.Errorf("%s touch (%.1f RTT) not slower than LocoFS-C (%.1f)", name, v, loco)
			}
		}
		if op == "mkdir" {
			glusterMkdir = append(glusterMkdir, parseRTT(t, row[glusterCol]))
		}
	}
	// Gluster mkdir broadcast: latency grows with server count.
	if len(glusterMkdir) >= 2 && glusterMkdir[len(glusterMkdir)-1] <= glusterMkdir[0] {
		t.Errorf("Gluster mkdir latency did not grow with servers: %v", glusterMkdir)
	}
}

// TestFig7Shape asserts Figure 7's orderings at the maximum server count.
func TestFig7Shape(t *testing.T) {
	tbl, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	lustreCol := col(t, tbl, SysLustreD1)
	glusterCol := col(t, tbl, SysGluster)
	cephCol := col(t, tbl, SysCephFS)
	for _, row := range tbl.Rows {
		op := row[0]
		switch op {
		case mdtest.PhaseRemove:
			// LocoFS rm beats Lustre and Gluster (values are normalized to
			// LocoFS-C, so > 1 means slower than LocoFS).
			if v, _ := strconv.ParseFloat(row[lustreCol], 64); v <= 1 {
				t.Errorf("Lustre rm ratio = %v, want > 1", v)
			}
			if v, _ := strconv.ParseFloat(row[glusterCol], 64); v <= 1 {
				t.Errorf("Gluster rm ratio = %v, want > 1", v)
			}
		case mdtest.PhaseFileStat, mdtest.PhaseDirStat:
			// CephFS's client inode cache gives it the lowest stats.
			if v, _ := strconv.ParseFloat(row[cephCol], 64); v >= 1 {
				t.Errorf("CephFS %s ratio = %v, want < 1 (client cache)", op, v)
			}
		}
	}
}

// TestFig8Shape asserts the throughput orderings of Figure 8.
func TestFig8Shape(t *testing.T) {
	env := Quick()
	tbl, err := Fig8(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	locoCol := col(t, tbl, SysLocoC)
	cephCol := col(t, tbl, SysCephFS)
	lustreCol := col(t, tbl, SysLustreD1)

	var locoMkdir, lustreMkdir, locoTouch []float64
	for _, row := range tbl.Rows {
		op := row[1]
		loco := parseKIOPS(t, row[locoCol])
		switch op {
		case mdtest.PhaseMkdir:
			locoMkdir = append(locoMkdir, loco)
			lustreMkdir = append(lustreMkdir, parseKIOPS(t, row[lustreCol]))
			if row[0] == "1" {
				// Paper: ~100K creates with one metadata server, 67x CephFS.
				if loco < 60e3 || loco > 250e3 {
					t.Errorf("LocoFS 1-server mkdir = %.0f, want ~100K", loco)
				}
				if ceph := parseKIOPS(t, row[cephCol]); loco < 20*ceph {
					t.Errorf("LocoFS mkdir (%.0f) < 20x CephFS (%.0f); paper reports 67x", loco, ceph)
				}
			}
		case mdtest.PhaseTouch:
			locoTouch = append(locoTouch, loco)
		}
	}
	// touch scales with FMS count; mkdir (single DMS) must scale much less.
	last := len(locoTouch) - 1
	if locoTouch[last] < locoTouch[0]*1.5 {
		t.Errorf("LocoFS touch did not scale with servers: %v", locoTouch)
	}
	mkdirGrowth := locoMkdir[last] / locoMkdir[0]
	touchGrowth := locoTouch[last] / locoTouch[0]
	if mkdirGrowth > touchGrowth {
		t.Errorf("mkdir growth (%.2f) exceeds touch growth (%.2f); DMS is singular", mkdirGrowth, touchGrowth)
	}
	// Lustre's mkdir scales better than LocoFS's (paper §4.2.2 obs 3).
	lustreGrowth := lustreMkdir[last] / lustreMkdir[0]
	if lustreGrowth < mkdirGrowth {
		t.Errorf("Lustre mkdir growth (%.2f) < LocoFS (%.2f); paper says Lustre scales mkdir better", lustreGrowth, mkdirGrowth)
	}
}

// TestFig9Shape asserts the gap-bridging result: one LocoFS server delivers
// a large fraction of the raw KV store (paper: 38%), and the largest
// configuration matches or exceeds it (paper: 16 servers ≈ 1.08x).
func TestFig9Shape(t *testing.T) {
	tbl, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	frac0, err := strconv.ParseFloat(tbl.Rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if frac0 < 0.2 || frac0 > 0.8 {
		t.Errorf("1-server fraction of KV = %.2f, want ~0.38", frac0)
	}
	fracN, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][3], 64)
	if fracN < 0.9 {
		t.Errorf("max-server fraction of KV = %.2f, want >= ~1 (paper: LocoFS reaches single-node KV)", fracN)
	}
}

// TestFig1Shape asserts the conventional systems sit far below the KV store
// while LocoFS closes most of the gap.
func TestFig1Shape(t *testing.T) {
	tbl, err := Fig1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	idxCol := col(t, tbl, SysIndexFS)
	cephCol := col(t, tbl, SysCephFS)
	locoCol := col(t, tbl, SysLocoC)
	row0 := tbl.Rows[0] // one server
	idx, _ := strconv.ParseFloat(row0[idxCol], 64)
	ceph, _ := strconv.ParseFloat(row0[cephCol], 64)
	loco, _ := strconv.ParseFloat(row0[locoCol], 64)
	if idx > 0.10 {
		t.Errorf("IndexFS 1-server fraction = %.2f, want ~0.02 (paper: 1.6%%)", idx)
	}
	if ceph > 0.05 {
		t.Errorf("CephFS 1-server fraction = %.2f, want ~0.01", ceph)
	}
	if loco < 5*idx {
		t.Errorf("LocoFS fraction (%.2f) < 5x IndexFS (%.2f)", loco, idx)
	}
}

// TestFig10Shape asserts the co-located (software-only) latency ordering:
// LocoFS < IndexFS < CephFS, with the LocoFS/CephFS gap near the paper's
// 1/27.
func TestFig10Shape(t *testing.T) {
	tbl, err := Fig10(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	parseUS := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "us"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	locoCol := col(t, tbl, SysLocoC)
	idxCol := col(t, tbl, SysIndexFS)
	cephCol := col(t, tbl, SysCephFS)
	for _, row := range tbl.Rows {
		op := row[0]
		loco, idx, ceph := parseUS(row[locoCol]), parseUS(row[idxCol]), parseUS(row[cephCol])
		if loco >= idx {
			t.Errorf("%s: LocoFS (%v) not faster than IndexFS (%v) co-located", op, loco, idx)
		}
		if idx >= ceph {
			t.Errorf("%s: IndexFS (%v) not faster than CephFS (%v) co-located", op, idx, ceph)
		}
		if op == mdtest.PhaseTouch {
			ratio := ceph / loco
			if ratio < 10 || ratio > 80 {
				t.Errorf("touch CephFS/LocoFS co-located ratio = %.0f, want ~27", ratio)
			}
		}
	}
}

// TestFig11Shape asserts decoupled file metadata beats the coupled ablation
// on single-part operations.
func TestFig11Shape(t *testing.T) {
	tbl, err := Fig11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	dfCol := col(t, tbl, SysLocoDF)
	cfCol := col(t, tbl, SysLocoCF)
	idxCol := col(t, tbl, SysIndexFS)
	for _, row := range tbl.Rows {
		op := row[0]
		if op == mdtest.PhaseAccess {
			continue // reads of one small part: DF and CF are close
		}
		df := parseKIOPS(t, row[dfCol])
		cf := parseKIOPS(t, row[cfCol])
		if df <= cf {
			t.Errorf("%s: DF (%.0f) not above CF (%.0f)", op, df, cf)
		}
		if idx := parseKIOPS(t, row[idxCol]); cf <= idx {
			t.Errorf("%s: LocoFS-CF (%.0f) not above IndexFS (%.0f)", op, cf, idx)
		}
	}
}

// TestFig12Shape asserts the full-system result: LocoFS wins clearly at
// small I/O; by the largest size the systems converge (data dominates).
func TestFig12Shape(t *testing.T) {
	tbl, err := Fig12(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	parseUS := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "us"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	locoCol := col(t, tbl, SysLocoC)
	cephCol := col(t, tbl, SysCephFS)
	var smallRatio, largeRatio float64
	for _, row := range tbl.Rows {
		if row[1] != "write" {
			continue
		}
		ratio := parseUS(row[cephCol]) / parseUS(row[locoCol])
		switch row[0] {
		case "512B":
			smallRatio = ratio
		case "1MB":
			largeRatio = ratio
		}
	}
	if smallRatio < 2 {
		t.Errorf("512B write CephFS/LocoFS = %.1f, want >= 2 (paper: ~5)", smallRatio)
	}
	// At large I/O the data transfer dominates and the ratio collapses
	// toward 1 (paper: the benefit "lasts before the write size exceeds
	// 1MB").
	if largeRatio > 1.5 {
		t.Errorf("1MB write ratio = %.1f, want near 1 (converged)", largeRatio)
	}
	if largeRatio >= smallRatio {
		t.Errorf("ratio did not shrink with I/O size: 512B %.1f vs 1MB %.1f", smallRatio, largeRatio)
	}
}

// TestFig13Shape asserts the cache flattens the depth sensitivity.
func TestFig13Shape(t *testing.T) {
	tbl, err := Fig13(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	first := tbl.Rows[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	cDrop := parseKIOPS(t, last[2]) / parseKIOPS(t, first[2])  // LocoFS-C 4
	ncDrop := parseKIOPS(t, last[4]) / parseKIOPS(t, first[4]) // LocoFS-NC 4
	if ncDrop >= 0.85 {
		t.Errorf("LocoFS-NC retained %.2f of shallow throughput at max depth; paper shows a steep drop", ncDrop)
	}
	if cDrop <= ncDrop {
		t.Errorf("cache did not flatten depth sensitivity: C retained %.2f, NC %.2f", cDrop, ncDrop)
	}
}

// TestFig14Shape asserts the rename-overhead orderings: tree-store rename
// is far cheaper than hash-store rename, and the device matters little.
func TestFig14Shape(t *testing.T) {
	btreeSSD, btreeHDD, hashSSD, hashHDD, err := Fig14Durations(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("btree SSD/HDD = %v/%v, hash SSD/HDD = %v/%v", btreeSSD, btreeHDD, hashSSD, hashHDD)
	if btreeSSD <= 0 || hashSSD <= 0 {
		t.Fatal("zero durations")
	}
	if hashSSD < 2*btreeSSD {
		t.Errorf("hash rename (%v) not clearly above btree (%v)", hashSSD, btreeSSD)
	}
	if btreeHDD > 5*btreeSSD {
		t.Errorf("HDD btree rename (%v) >> SSD (%v); paper: no big difference", btreeHDD, btreeSSD)
	}
	if hashHDD > 5*hashSSD {
		t.Errorf("HDD hash rename (%v) >> SSD (%v); paper: no big difference", hashHDD, hashSSD)
	}
}

// TestTable1MatchesPaper verifies the live probe reproduces the paper's
// Table 1 access matrix exactly.
func TestTable1MatchesPaper(t *testing.T) {
	tbl, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	// expected: op -> [dir-inode, subdir-dirent, file-access, file-content, file-dirent]
	expected := map[string][5]string{
		"mkdir":    {"RW", "W", "-", "-", "-"},
		"readdir":  {"R", "R", "-", "-", "R"},
		"rmdir":    {"RW", "RW", "-", "-", "R"},
		"create":   {"-", "-", "RW", "W", "W"},
		"getattr":  {"-", "-", "R", "R", "-"},
		"open":     {"-", "-", "R", "R", "-"},
		"chmod":    {"-", "-", "W", "-", "-"},
		"chown":    {"-", "-", "W", "-", "-"},
		"write":    {"-", "-", "-", "RW", "-"},
		"truncate": {"-", "-", "-", "RW", "-"},
		"remove":   {"-", "-", "RW", "RW", "W"},
	}
	seen := map[string]bool{}
	for _, row := range tbl.Rows {
		want, ok := expected[row[0]]
		if !ok {
			continue
		}
		seen[row[0]] = true
		for i := 0; i < 5; i++ {
			if row[i+1] != want[i] {
				t.Errorf("%s region %s: got %q, want %q (Table 1)", row[0], tbl.Headers[i+1], row[i+1], want[i])
			}
		}
	}
	for op := range expected {
		if !seen[op] {
			t.Errorf("probe missing op %s", op)
		}
	}
}

// TestTable3Produces asserts Table 3 yields sane saturation client counts.
func TestTable3Produces(t *testing.T) {
	tbl, err := Table3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	if len(tbl.Rows) != len(Fig6Systems) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(Fig6Systems))
	}
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			if cell == "-" {
				continue
			}
			n, err := strconv.Atoi(cell)
			if err != nil || n < 1 || n > 10000 {
				t.Errorf("%s: implausible saturation count %q", row[0], cell)
			}
		}
	}
}

// TestRawKVThroughput sanity-checks the modeled KV baseline against the
// paper's cited numbers (LevelDB 128-190K, Kyoto Cabinet ~260K).
func TestRawKVThroughput(t *testing.T) {
	put, get := RawKVThroughput()
	if put < 100e3 || put > 500e3 {
		t.Errorf("modeled KV put = %.0f, want 100K-500K (paper cites 128-260K)", put)
	}
	if get < 100e3 || get > 500e3 {
		t.Errorf("modeled KV get = %.0f, want 100K-500K (paper: 4us/get = 250K)", get)
	}
}

// TestTableFormatting covers the table renderer.
func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Note:    "n",
		Headers: []string{"a", "long-header"},
	}
	tbl.AddRow("x", "1")
	tbl.AddRow("longer-cell", "2")
	s := tbl.String()
	for _, want := range []string{"=== T ===", "long-header", "longer-cell"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	if tbl.Cell(0, 1) != "1" || tbl.Cell(9, 9) != "" {
		t.Error("Cell accessor misbehaves")
	}
}

// TestEnvHelpers covers Env utilities.
func TestEnvHelpers(t *testing.T) {
	env := Quick()
	if env.MaxServers() != 4 {
		t.Errorf("MaxServers = %d", env.MaxServers())
	}
	if PaperClients(SysLocoC, 1) != 30 || PaperClients(SysLocoC, 16) != 144 {
		t.Error("PaperClients table wrong for LocoFS")
	}
	if PaperClients(SysCephFS, 4) != 50 || PaperClients(SysLustreD1, 2) != 60 {
		t.Error("PaperClients table wrong for baselines")
	}
	env.ClientScale = 0.001
	if env.Clients(SysLocoC, 1) != 1 {
		t.Error("Clients floor not applied")
	}
}

// TestStartSystemUnknown covers the error path.
func TestStartSystemUnknown(t *testing.T) {
	if _, err := StartSystem("nope", 1, netsim.Loopback); err == nil {
		t.Error("unknown system accepted")
	}
}

// TestLatenciesSingleClient covers the latency helper against LocoFS.
func TestLatenciesSingleClient(t *testing.T) {
	sut, err := StartSystem(SysLocoC, 2, netsim.Paper1GbE)
	if err != nil {
		t.Fatal(err)
	}
	defer sut.Close()
	lat, err := latencies(sut, 20, 1, []string{mdtest.PhaseMkdir, mdtest.PhaseTouch})
	if err != nil {
		t.Fatal(err)
	}
	rtt := netsim.Paper1GbE.RTT
	if lat[mdtest.PhaseMkdir] < rtt || lat[mdtest.PhaseMkdir] > 3*rtt {
		t.Errorf("mkdir latency = %v, want ~1.3 RTT", lat[mdtest.PhaseMkdir])
	}
}

// TestThroughputBounds verifies both bounds of the throughput model are
// exercised: few clients → client-bound; many → capped by server capacity.
func TestThroughputBounds(t *testing.T) {
	mk := func() *SUT {
		sut, err := StartSystem(SysLocoC, 1, netsim.Paper1GbE)
		if err != nil {
			t.Fatal(err)
		}
		return sut
	}
	sut := mk()
	few, _, err := throughputs(sut, 2, 40, 1, []string{mdtest.PhaseTouch})
	sut.Close()
	if err != nil {
		t.Fatal(err)
	}
	sut = mk()
	many, cap2, err := throughputs(sut, 60, 40, 1, []string{mdtest.PhaseTouch})
	sut.Close()
	if err != nil {
		t.Fatal(err)
	}
	if many[mdtest.PhaseTouch] <= few[mdtest.PhaseTouch] {
		t.Errorf("more clients did not increase throughput: %v vs %v", many, few)
	}
	// With 60 clients a single server must be at/near its capacity.
	if many[mdtest.PhaseTouch] > cap2[mdtest.PhaseTouch]*1.01 {
		t.Errorf("achieved (%v) exceeds capacity (%v)", many[mdtest.PhaseTouch], cap2[mdtest.PhaseTouch])
	}
}

// TestTable2Environment checks the environment table carries the key model
// constants.
func TestTable2Environment(t *testing.T) {
	tbl, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, want := range []string{"174µs", "4µs", "Kyoto"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	if len(tbl.Rows) < 10 {
		t.Errorf("Table 2 has only %d rows", len(tbl.Rows))
	}
}
