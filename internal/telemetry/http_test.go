package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// scrape GETs path from the handler and returns the body.
func scrape(t *testing.T, h http.Handler, path string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d", path, rec.Code)
	}
	b, _ := io.ReadAll(rec.Body)
	return string(b)
}

// TestMetricsEndpoint: /metrics renders counters, gauges and histograms from
// every registry in the Prometheus text format, with base labels stamped.
func TestMetricsEndpoint(t *testing.T) {
	r1 := NewRegistry(L("server", "dms"))
	r1.Counter("locofs_test_calls", L("op", "Mkdir")).Add(3)
	r1.Histogram("locofs_test_latency", L("op", "Mkdir")).Record(2 * time.Millisecond)
	r2 := NewRegistry()
	r2.GaugeFunc("locofs_test_depth", func() float64 { return 7 }, L("q", "rx"))

	body := scrape(t, Handler(r1, r2), "/metrics")
	for _, want := range []string{
		"# TYPE locofs_test_calls counter",
		`locofs_test_calls{op="Mkdir",server="dms"} 3`,
		"# TYPE locofs_test_depth gauge",
		`locofs_test_depth{q="rx"} 7`,
		"# TYPE locofs_test_latency histogram",
		`locofs_test_latency_count{op="Mkdir",server="dms"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "locofs_test_latency_bucket") {
		t.Errorf("/metrics has no le buckets:\n%s", body)
	}
}

// TestDebugVarsAndIndex: /debug/vars serves expvar JSON and the index page
// lists the built-in routes.
func TestDebugVarsAndIndex(t *testing.T) {
	h := Handler(NewRegistry())
	if body := scrape(t, h, "/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars missing memstats: %.120s", body)
	}
	if body := scrape(t, h, "/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index missing /metrics: %q", body)
	}
}

// TestHandlerWithExtraRoutes: extra handlers are mounted and advertised on
// the index line.
func TestHandlerWithExtraRoutes(t *testing.T) {
	extra := map[string]http.Handler{
		"/debug/hot": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "hot!")
		}),
		"/debug/traces/": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "traces:"+r.URL.Path)
		}),
	}
	h := HandlerWith(extra, NewRegistry())
	if body := scrape(t, h, "/debug/hot"); body != "hot!" {
		t.Errorf("/debug/hot = %q", body)
	}
	if body := scrape(t, h, "/debug/traces/abc"); body != "traces:/debug/traces/abc" {
		t.Errorf("subtree route = %q", body)
	}
	index := scrape(t, h, "/")
	if !strings.Contains(index, "/debug/hot") || !strings.Contains(index, "/debug/traces") {
		t.Errorf("index does not advertise extra routes: %q", index)
	}
}

// TestUnregisterStopsLabelLeak: a gauge unregistered after its owner shuts
// down must disappear from subsequent snapshots, while other kinds under
// different keys stay.
func TestUnregisterStopsLabelLeak(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", func() float64 { return 1 }, L("client", "1"))
	r.GaugeFunc("g", func() float64 { return 2 }, L("client", "2"))
	r.Counter("c").Inc()
	if !r.Unregister("g", L("client", "1")) {
		t.Fatal("Unregister reported nothing removed")
	}
	if r.Unregister("g", L("client", "1")) {
		t.Fatal("second Unregister reported a removal")
	}
	s := r.Snapshot()
	if len(s.Metrics) != 2 {
		t.Fatalf("snapshot = %+v, want g{client=2} and c only", s.Metrics)
	}
	for _, m := range s.Metrics {
		if m.Name == "g" && strings.Contains(m.Labels, `"1"`) {
			t.Errorf("unregistered gauge still present: %+v", m)
		}
	}
}

// TestUnregisterAllKinds: Unregister removes counters and histograms too.
func TestUnregisterAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Histogram("x").Record(time.Millisecond)
	if !r.Unregister("x") {
		t.Fatal("Unregister(x) removed nothing")
	}
	if n := len(r.Snapshot().Metrics); n != 0 {
		t.Fatalf("%d metrics left after Unregister", n)
	}
}

// TestReset: Reset returns the registry to empty while keeping base labels
// on metrics registered afterwards.
func TestReset(t *testing.T) {
	r := NewRegistry(L("server", "fms-0"))
	r.Counter("a").Inc()
	r.Histogram("b").Record(time.Second)
	r.GaugeFunc("c", func() float64 { return 1 })
	r.Reset()
	if n := len(r.Snapshot().Metrics); n != 0 {
		t.Fatalf("%d metrics left after Reset", n)
	}
	r.Counter("a").Add(5)
	s := r.Snapshot()
	if len(s.Metrics) != 1 || s.Metrics[0].Value != 5 ||
		!strings.Contains(s.Metrics[0].Labels, `server="fms-0"`) {
		t.Fatalf("post-Reset counter = %+v, want fresh a=5 with base label", s.Metrics)
	}
}
