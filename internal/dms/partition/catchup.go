package partition

import (
	"errors"
	"time"

	"locofs/internal/wire"
)

// Catch-up: how an excluded or newly added replica rejoins the live set.
//
// The follower drives it. Starting from its own log tip (nextIndex), it
// fetches batches of missed entries from the leader (OpLogFetch), applies
// them in order through the same applyLocked the live path uses, and
// repeats until a fetch finds it at the leader's tip — at which point the
// leader atomically clears the follower's exclusion, seeds its ack
// watermark, and resumes live fan-out to it. The rejoin decision is the
// leader's, made under its own lock against its own log: between "follower
// is at index i" and "rejoined", no append can slip by unreplicated,
// because appends take the same lock.
//
// While a catch-up session is active the leader pins truncation at the
// session's oldest needed index (catchSession), so the range being
// replayed cannot be pruned out from under it; a session idle past
// catchupGrace stops counting (the follower can restart one later — if
// the range is gone by then, the fetch fails EEXPIRED and the replica
// must be reseeded from a fresh store, which at this layer means
// replacing it in the map).

// CatchUp runs one synchronous catch-up pass against the partition leader:
// fetch missed entries from this node's tip until the leader reports the
// tip reached and readmits this replica to the live fan-out set. No-op on
// leaders and when a pass is already running. Exported for tests and for
// operational prodding; the node also starts passes on its own when it
// sees an append gap or installs a map as a follower.
func (n *Node) CatchUp() error { return n.catchUp("manual") }

// startCatchUp launches an asynchronous catch-up pass unless one is
// already running.
func (n *Node) startCatchUp(why string) {
	if n.catching.Load() {
		return
	}
	go n.catchUp(why)
}

func (n *Node) catchUp(why string) error {
	if !n.catching.CompareAndSwap(false, true) {
		return nil
	}
	defer n.catching.Store(false)

	pm := n.pm.Load()
	if pm == nil || n.IsLeader() {
		return nil
	}
	leader := pm.Leader(n.pid)
	if leader == "" || leader == n.self {
		return nil
	}
	// The started/caught_up pair is only journaled once the pass finds
	// actual work: the periodic probe resolves to an at-tip no-op every
	// cycle in steady state, and journaling that would drown the ring.
	started := false

	for {
		select {
		case <-n.closed:
			return nil
		default:
		}
		n.mu.Lock()
		from := n.nextIndex
		n.mu.Unlock()

		st, resp, err := n.callPeerT(leader, wire.OpLogFetch,
			wire.EncodeLogFetch(n.self, from, catchupBatch), n.repTimeout)
		if err != nil {
			n.emit("catchup_failed", int64(from), err.Error())
			return err
		}
		if st != wire.StatusOK {
			// EEXPIRED: the needed range was truncated — this replica can
			// no longer be repaired from the log and must be replaced.
			// EWRONGPART: the leader moved; the next map install retries.
			n.emit("catchup_failed", int64(from), st.String())
			return errors.New("catch-up refused: " + st.String())
		}
		fr, err := wire.DecodeLogFetchResp(resp)
		if err != nil {
			n.emit("catchup_failed", int64(from), "bad fetch response")
			return err
		}

		if len(fr.Entries) > 0 && !started {
			started = true
			n.emit("catchup_started", int64(from), why)
		}
		n.mu.Lock()
		for _, le := range fr.Entries {
			if le.Index != n.nextIndex {
				// Raced with a live append that already delivered this
				// index (possible right around rejoin); anything else is
				// a stale batch — either way, skip.
				continue
			}
			n.log = append(n.log, le)
			n.nextIndex++
			n.applyInOrderLocked(le)
		}
		n.pruneToLocked(fr.Floor)
		tip := n.nextIndex
		n.mu.Unlock()

		if fr.Rejoined {
			if started {
				n.emit("caught_up", int64(tip), why)
			}
			return nil
		}
		if len(fr.Entries) == 0 {
			// Not rejoined yet made no progress: the leader's tip moved
			// between our fetch and its response assembly, or the response
			// was empty for another reason. Avoid a hot loop.
			n.emit("catchup_failed", int64(from), "no progress")
			return errors.New("catch-up made no progress")
		}
	}
}

// serveLogFetch is the leader side of catch-up: serve the requested log
// range, or — when the requester is already at the tip — readmit it to the
// live fan-out set in the same locked step that proves no append is in
// flight past it.
func (n *Node) serveLogFetch(body []byte) (wire.Status, []byte) {
	self, from, max, err := wire.DecodeLogFetch(body)
	if err != nil {
		return wire.StatusInval, nil
	}
	if !n.IsLeader() {
		return wire.StatusWrongPartition, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.inGroupLocked(self) {
		// A stray fetcher (stale map, replaced replica) must not be
		// readmitted or allowed to pin truncation.
		return wire.StatusInval, []byte("not a member of this partition's group")
	}
	if from >= n.nextIndex {
		// At the tip: rejoin. From this locked instant every new append
		// fans out to the follower again, so the acked-everywhere
		// invariant covers it from index `from` on.
		if n.excluded[self] {
			delete(n.excluded, self)
			n.emit("follower_rejoined", int64(from), self)
		}
		if from > 0 && from-1 > n.ackMark[self] {
			n.ackMark[self] = from // it has applied everything below from
		}
		delete(n.catch, self)
		return wire.StatusOK, wire.EncodeLogFetchResp(&wire.LogFetchResp{
			Tip: n.nextIndex, Floor: n.firstIndex, Rejoined: true,
		})
	}
	if from < n.firstIndex {
		// The range the replica needs is already truncated: it cannot be
		// repaired from the log. The operator replaces it via a map push
		// (serveSetPartMap reconciles the old identity away).
		n.emit("catchup_impossible", int64(from), self)
		return wire.StatusExpired, []byte("op log truncated past requested index")
	}
	n.catch[self] = catchSession{from: from, at: n.now()}
	end := from + uint64(max)
	if max == 0 || end > n.nextIndex {
		end = n.nextIndex
	}
	resp := &wire.LogFetchResp{Tip: n.nextIndex, Floor: n.firstIndex}
	resp.Entries = append(resp.Entries, n.log[from-n.firstIndex:end-n.firstIndex]...)
	return wire.StatusOK, wire.EncodeLogFetchResp(resp)
}

// catchupLoop periodically nudges a follower replica toward its leader's
// tip. The common case — replica current, nothing missed — costs one
// OpLogFetch that immediately reports Rejoined; the interesting case is a
// replica that was excluded while partitioned away and would otherwise
// never hear another append to trip catch-up on.
func (n *Node) catchupLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-t.C:
			if !n.IsLeader() {
				n.catchUp("periodic")
			}
		}
	}
}
