package netsim

import (
	"testing"
	"time"

	"locofs/internal/wire"
)

// faultEnd wraps one pipe end with a single persistent receiver goroutine,
// so a timed-out wait does not leak a Recv that would steal the next
// message.
type faultEnd struct {
	Conn
	in chan *wire.Msg
}

func newFaultEnd(c Conn) *faultEnd {
	e := &faultEnd{Conn: c, in: make(chan *wire.Msg, 64)}
	go func() {
		for {
			m, err := c.Recv()
			if err != nil {
				close(e.in)
				return
			}
			e.in <- m
		}
	}()
	return e
}

// recvOrTimeout reports whether a message arrives within d.
func (e *faultEnd) recvOrTimeout(d time.Duration) (*wire.Msg, bool) {
	select {
	case m, ok := <-e.in:
		return m, ok && m != nil
	case <-time.After(d):
		return nil, false
	}
}

// faultPair dials one client↔server pipe on a fresh network, returning the
// network (for SetFault) and both ends.
func faultPair(t *testing.T) (*Network, *faultEnd, *faultEnd) {
	t.Helper()
	n := NewNetwork(Loopback)
	t.Cleanup(func() { n.Close() })
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := n.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	return n, newFaultEnd(client), newFaultEnd(<-accepted)
}

func TestFaultBlackholeEatsBothDirections(t *testing.T) {
	n, client, server := faultPair(t)
	n.SetFault("srv", FaultConfig{Blackhole: true})
	// Sends report success — like a real network whose far end went dark.
	if err := client.Send(&wire.Msg{ID: 1}); err != nil {
		t.Fatalf("blackholed send failed: %v", err)
	}
	if err := server.Send(&wire.Msg{ID: 2}); err != nil {
		t.Fatalf("blackholed send failed: %v", err)
	}
	if _, ok := server.recvOrTimeout(50*time.Millisecond); ok {
		t.Error("server received a blackholed message")
	}
	if _, ok := client.recvOrTimeout(50*time.Millisecond); ok {
		t.Error("client received a blackholed message")
	}
	// Clearing the fault restores delivery on the same connection.
	n.ClearFault("srv")
	if err := client.Send(&wire.Msg{ID: 3}); err != nil {
		t.Fatal(err)
	}
	m, ok := server.recvOrTimeout(time.Second)
	if !ok || m.ID != 3 {
		t.Fatalf("delivery after ClearFault: got %v, %v", m, ok)
	}
}

func TestFaultDropsAreDirectionalAndCounted(t *testing.T) {
	n, client, server := faultPair(t)
	n.SetFault("srv", FaultConfig{DropRequests: 1})
	if err := client.Send(&wire.Msg{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := server.recvOrTimeout(50*time.Millisecond); ok {
		t.Error("first request should have been dropped")
	}
	// The countdown is spent: the second request gets through.
	if err := client.Send(&wire.Msg{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if m, ok := server.recvOrTimeout(time.Second); !ok || m.ID != 2 {
		t.Fatalf("second request: got %v, %v", m, ok)
	}
	// Responses were never affected.
	if err := server.Send(&wire.Msg{ID: 9}); err != nil {
		t.Fatal(err)
	}
	if m, ok := client.recvOrTimeout(time.Second); !ok || m.ID != 9 {
		t.Fatalf("response: got %v, %v", m, ok)
	}
}

func TestFaultExtraDelay(t *testing.T) {
	n, client, server := faultPair(t)
	const extra = 30 * time.Millisecond
	n.SetFault("srv", FaultConfig{ExtraDelay: extra})
	t0 := time.Now()
	if err := client.Send(&wire.Msg{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := server.recvOrTimeout(time.Second); !ok {
		t.Fatal("delayed message never arrived")
	}
	if d := time.Since(t0); d < extra {
		t.Errorf("message arrived after %v, want >= %v", d, extra)
	}
}

func TestFaultDisconnectAfter(t *testing.T) {
	n, client, server := faultPair(t)
	n.SetFault("srv", FaultConfig{DisconnectAfter: 2})
	if err := client.Send(&wire.Msg{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if m, ok := server.recvOrTimeout(time.Second); !ok || m.ID != 1 {
		t.Fatalf("pre-disconnect message: got %v, %v", m, ok)
	}
	// The second accepted message fires the reset: both ends observe close.
	if err := client.Send(&wire.Msg{ID: 2}); err != ErrClosed {
		t.Fatalf("disconnecting send err = %v, want ErrClosed", err)
	}
	if err := client.Send(&wire.Msg{ID: 3}); err != ErrClosed {
		t.Fatalf("send after disconnect err = %v, want ErrClosed", err)
	}
	if err := server.Send(&wire.Msg{ID: 4}); err != ErrClosed {
		t.Fatalf("server send after disconnect err = %v, want ErrClosed", err)
	}
	// New connections to the same address work (the countdown fired once).
	c2, err := n.Dial("srv")
	if err != nil {
		t.Fatalf("redial after disconnect: %v", err)
	}
	c2.Close()
}

func TestFaultDropEveryN(t *testing.T) {
	n, client, server := faultPair(t)
	n.SetFault("srv", FaultConfig{DropEveryN: 3})
	got := 0
	for i := 1; i <= 9; i++ {
		if err := client.Send(&wire.Msg{ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		if _, ok := server.recvOrTimeout(100*time.Millisecond); !ok {
			break
		}
		got++
	}
	if got != 6 {
		t.Errorf("delivered %d of 9 messages with DropEveryN=3, want 6", got)
	}
}
