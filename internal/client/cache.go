package client

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/fspath"
	"locofs/internal/layout"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
	"locofs/internal/wire"
)

// dirCache is the client directory metadata cache (§3.2.2, DESIGN.md §14).
// It holds directory inodes, negative entries (paths known absent) and
// complete DMS subdirectory listings. A hit saves the DMS round trip on
// every file operation in a cached directory; a negative hit saves the
// round trip of a lookup that would only return ENOENT.
//
// In coherent mode (the default) every entry carries the DMS recall
// sequence it was granted at, and the cache tracks two watermarks: maxSeq,
// the highest sequence seen stamped on any response header, and appliedSeq,
// the highest sequence whose recall entries have been applied. An entry is
// served only while it is provably unaffected by unseen recalls —
// grantSeq >= maxSeq (granted after every observed mutation) or
// appliedSeq >= maxSeq (every observed recall already applied). Otherwise
// the entry is kept but the access degrades to a miss; the next DMS round
// trip piggybacks an OpLeaseRecall fetch and drops exactly the directories
// that changed. TTL-only mode (DisableLeaseCoherence) skips all of it and
// trusts entries for the configured lease, the paper's original semantics.
//
// The cache is bounded: at most max entries (of all three kinds) live at
// once, and on overflow the oldest are evicted first. Because entries of
// one kind get the same lease, insertion order approximates expiry order,
// so a simple FIFO of insertion records doubles as an eviction queue — no
// heap needed. Records whose entry was re-put or invalidated since are
// stale and skipped lazily.
type dirCache struct {
	mu    sync.RWMutex
	lease time.Duration
	now   func() time.Time

	coherent  bool // lease-coherent mode (grants, recalls, watermarks)
	negatives bool // cache ENOENT results (coherent mode only)

	entries map[string]cacheEntry
	negs    map[string]negEntry
	lists   map[string]listEntry

	max  int       // total entry cap; <= 0 means unbounded
	fifo []fifoRec // insertion order; stale records skipped lazily
	seq  uint64    // ties entries to their live fifo record

	// srcs holds one watermark pair per recall source. Against a single
	// (unsharded) DMS every sequence comes from source 0; against a
	// partitioned DMS each partition runs its own lease table with its own
	// recall log, so the sequences are comparable only within one partition
	// and the cache keys its watermarks by partition id. Entries carry the
	// source they were granted by, and freshness is judged against that
	// source's watermarks alone — sound because the partition cut rules
	// guarantee every mutation that can invalidate a path's cached state is
	// published by the partition that granted it (seed updates republish
	// ancestor changes locally; straddling renames are refused).
	//
	// Per source: maxSeq is the highest recall sequence observed on any
	// response header, appliedSeq the highest sequence fully applied to this
	// cache. appliedSeq <= maxSeq always; they are equal when the cache is
	// provably coherent with that source.
	srcMu sync.RWMutex
	srcs  map[uint32]*srcMarks

	hits        atomic.Uint64
	negHits     atomic.Uint64
	listHits    atomic.Uint64
	misses      atomic.Uint64
	staleMisses atomic.Uint64
	evictions   atomic.Uint64
	recalls     atomic.Uint64

	met *cacheMetrics // nil in direct-constructed tests

	// Hot-entry tier (optional): hot ranks the client's most-resolved
	// directories; paths in hotSet get their lease stretched hotFactor×,
	// and the client's background refresher re-resolves them before expiry.
	hot       *trace.TopK
	hotFactor int
	hotSet    atomic.Pointer[map[string]struct{}]
}

// srcMarks is one recall source's watermark pair (see dirCache.srcs).
type srcMarks struct {
	maxSeq     atomic.Uint64
	appliedSeq atomic.Uint64
}

// srcAny is the source wildcard for unconditional drops: invalidations that
// must hit entries regardless of which partition granted them.
const srcAny = ^uint32(0)

type cacheEntry struct {
	inode    layout.DirInode
	expires  time.Time
	seq      uint64
	grantSeq uint64
	src      uint32
}

type negEntry struct {
	expires  time.Time
	seq      uint64
	grantSeq uint64
	src      uint32
}

type listEntry struct {
	ents     []DirEntry
	expires  time.Time
	seq      uint64
	grantSeq uint64
	src      uint32
}

// fifoRec kinds: which map the record's entry lives in.
const (
	recInode = iota
	recNeg
	recList
)

type fifoRec struct {
	path string
	seq  uint64
	kind uint8
}

// DefaultLease is the paper's default client-cache lease.
const DefaultLease = 30 * time.Second

// DefaultCacheEntries bounds the directory cache when the configuration
// leaves the cap zero: enough for a wide working set, small enough that a
// metadata-heavy client cannot grow without limit.
const DefaultCacheEntries = 64 << 10

// maxHotLeaseFactor bounds the hot-tier lease stretch. It must not exceed
// the DMS grant horizon factor (dms.maxHotFactor): the server keeps
// suppression records for dur×(factor+1), so a client stretching further
// could hold an entry the server no longer publishes recalls for.
const maxHotLeaseFactor = 8

// DefaultHotLeaseFactor is the lease stretch applied to hot entries when
// Config.HotLeaseFactor is zero.
const DefaultHotLeaseFactor = 4

// MetricDirCacheSize is the gauge reporting a client's live directory-cache
// entry count (inodes + negative entries + listings).
const MetricDirCacheSize = "locofs_client_dircache_entries"

// Directory-cache counters, labeled client=<id> like every client series.
const (
	MetricDirCacheHits      = "locofs_client_dircache_hits_total"
	MetricDirCacheMisses    = "locofs_client_dircache_misses_total"
	MetricDirCacheEvictions = "locofs_client_dircache_evictions_total"
	MetricDirCacheNegHits   = "locofs_client_dircache_neg_hits_total"
	MetricDirCacheListHits  = "locofs_client_dircache_list_hits_total"
	MetricDirCacheStale     = "locofs_client_dircache_stale_total"
	MetricDirCacheRecalls   = "locofs_client_dircache_recalls_total"
)

// cacheMetrics holds the cache's counter handles; nil-receiver-safe so the
// cache can run without a registry in unit tests.
type cacheMetrics struct {
	hits, misses, evictions *telemetry.Counter
	negHits, listHits       *telemetry.Counter
	stale, recalls          *telemetry.Counter
}

func newCacheMetrics(reg *telemetry.Registry, label telemetry.Label) *cacheMetrics {
	return &cacheMetrics{
		hits:      reg.Counter(MetricDirCacheHits, label),
		misses:    reg.Counter(MetricDirCacheMisses, label),
		evictions: reg.Counter(MetricDirCacheEvictions, label),
		negHits:   reg.Counter(MetricDirCacheNegHits, label),
		listHits:  reg.Counter(MetricDirCacheListHits, label),
		stale:     reg.Counter(MetricDirCacheStale, label),
		recalls:   reg.Counter(MetricDirCacheRecalls, label),
	}
}

// unregister removes the counters from reg so shared registries don't
// accumulate dead per-client series.
func (m *cacheMetrics) unregister(reg *telemetry.Registry, label telemetry.Label) {
	if m == nil {
		return
	}
	for _, name := range []string{
		MetricDirCacheHits, MetricDirCacheMisses, MetricDirCacheEvictions,
		MetricDirCacheNegHits, MetricDirCacheListHits,
		MetricDirCacheStale, MetricDirCacheRecalls,
	} {
		reg.Unregister(name, label)
	}
}

func newDirCache(lease time.Duration, now func() time.Time, maxEntries int, coherent, negatives bool, met *cacheMetrics) *dirCache {
	if lease <= 0 {
		lease = DefaultLease
	}
	if now == nil {
		now = time.Now
	}
	if maxEntries == 0 {
		maxEntries = DefaultCacheEntries
	}
	return &dirCache{
		lease:     lease,
		now:       now,
		coherent:  coherent,
		negatives: coherent && negatives,
		entries:   make(map[string]cacheEntry),
		negs:      make(map[string]negEntry),
		lists:     make(map[string]listEntry),
		srcs:      make(map[uint32]*srcMarks),
		max:       maxEntries,
		met:       met,
	}
}

// enableHot turns the hot-entry tier on: track the top `entries` resolved
// directories and stretch their leases factor× (clamped to the server's
// grant horizon).
func (c *dirCache) enableHot(entries, factor int) {
	if factor <= 0 {
		factor = DefaultHotLeaseFactor
	}
	if factor > maxHotLeaseFactor {
		factor = maxHotLeaseFactor
	}
	c.hot = trace.NewTopK(4 * entries)
	c.hotFactor = factor
}

// setHot installs the current hot-path set (from the refresher).
func (c *dirCache) setHot(set map[string]struct{}) { c.hotSet.Store(&set) }

func (c *dirCache) isHot(path string) bool {
	hs := c.hotSet.Load()
	if hs == nil {
		return false
	}
	_, ok := (*hs)[path]
	return ok
}

// marks returns source src's watermark pair, creating it on first use.
func (c *dirCache) marks(src uint32) *srcMarks {
	c.srcMu.RLock()
	m := c.srcs[src]
	c.srcMu.RUnlock()
	if m != nil {
		return m
	}
	c.srcMu.Lock()
	if m = c.srcs[src]; m == nil {
		m = &srcMarks{}
		c.srcs[src] = m
	}
	c.srcMu.Unlock()
	return m
}

// marksIfAny returns src's watermark pair without creating it.
func (c *dirCache) marksIfAny(src uint32) *srcMarks {
	c.srcMu.RLock()
	m := c.srcs[src]
	c.srcMu.RUnlock()
	return m
}

// observe records a recall sequence seen on a response header from the
// single legacy source. Monotonic.
func (c *dirCache) observe(seq uint64) { c.observeFrom(0, seq) }

// observeFrom records a recall sequence seen on a response header from
// source src. Monotonic per source.
func (c *dirCache) observeFrom(src uint32, seq uint64) {
	m := c.marks(src)
	for {
		cur := m.maxSeq.Load()
		if seq <= cur || m.maxSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// behind reports whether the cache has observed legacy-source recalls it has
// not applied, returning the applied watermark to fetch from.
func (c *dirCache) behind() (since uint64, ok bool) { return c.behindFrom(0) }

// behindFrom reports whether the cache has observed recalls from source src
// it has not applied, returning that source's applied watermark.
func (c *dirCache) behindFrom(src uint32) (since uint64, ok bool) {
	if !c.coherent {
		return 0, false
	}
	m := c.marksIfAny(src)
	if m == nil {
		return 0, false
	}
	applied := m.appliedSeq.Load()
	return applied, applied < m.maxSeq.Load()
}

// fresh reports whether an entry granted by src at gseq may be served:
// either it postdates every mutation observed from that source, or the
// cache has applied every recall observed from it (so the entry surviving
// proves it untouched).
func (c *dirCache) fresh(src uint32, gseq uint64) bool {
	if !c.coherent {
		return true
	}
	m := c.marksIfAny(src)
	if m == nil {
		return true
	}
	max := m.maxSeq.Load()
	return gseq >= max || m.appliedSeq.Load() >= max
}

// get returns the cached inode for path if its lease is valid and it is
// coherent with every observed recall.
func (c *dirCache) get(path string) (layout.DirInode, bool) {
	if c.hot != nil {
		c.hot.Touch(path)
	}
	c.mu.RLock()
	e, ok := c.entries[path]
	c.mu.RUnlock()
	if ok && !c.now().After(e.expires) && c.fresh(e.src, e.grantSeq) {
		c.hits.Add(1)
		if c.met != nil {
			c.met.hits.Inc()
		}
		return e.inode, true
	}
	if ok && c.now().After(e.expires) {
		// Expired: evict — but only the entry we actually saw. Between
		// dropping the read lock and taking the write lock a concurrent put
		// may have installed a fresh entry under the same path; deleting
		// blindly would evict it and turn a valid lease into a spurious
		// miss for every subsequent get. The seq check deletes only the
		// exact expired entry.
		c.mu.Lock()
		if cur, still := c.entries[path]; still && cur.seq == e.seq {
			delete(c.entries, path)
		}
		c.mu.Unlock()
	} else if ok {
		// Unexpired but possibly invalidated by a recall not yet applied:
		// degrade to a miss, keep the entry — it may prove untouched once
		// the recalls are fetched and applied.
		c.staleMisses.Add(1)
		if c.met != nil {
			c.met.stale.Inc()
		}
	}
	c.misses.Add(1)
	if c.met != nil {
		c.met.misses.Inc()
	}
	return nil, false
}

// negHit reports whether path is cached as known-absent. Callers count the
// preceding get() as the miss; negHit only ever adds a negative hit.
func (c *dirCache) negHit(path string) bool {
	if !c.negatives {
		return false
	}
	c.mu.RLock()
	e, ok := c.negs[path]
	c.mu.RUnlock()
	if !ok {
		return false
	}
	if c.now().After(e.expires) {
		c.mu.Lock()
		if cur, still := c.negs[path]; still && cur.seq == e.seq {
			delete(c.negs, path)
		}
		c.mu.Unlock()
		return false
	}
	if !c.fresh(e.src, e.grantSeq) {
		c.staleMisses.Add(1)
		if c.met != nil {
			c.met.stale.Inc()
		}
		return false
	}
	c.negHits.Add(1)
	if c.met != nil {
		c.met.negHits.Inc()
	}
	return true
}

// getList returns the cached complete subdirectory listing for path. The
// returned slice is shared; callers must not mutate it.
func (c *dirCache) getList(path string) ([]DirEntry, bool) {
	if !c.coherent {
		return nil, false
	}
	c.mu.RLock()
	e, ok := c.lists[path]
	c.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if c.now().After(e.expires) {
		c.mu.Lock()
		if cur, still := c.lists[path]; still && cur.seq == e.seq {
			delete(c.lists, path)
		}
		c.mu.Unlock()
		return nil, false
	}
	if !c.fresh(e.src, e.grantSeq) {
		c.staleMisses.Add(1)
		if c.met != nil {
			c.met.stale.Inc()
		}
		return nil, false
	}
	c.listHits.Add(1)
	if c.met != nil {
		c.met.listHits.Inc()
	}
	return e.ents, true
}

// leaseFor returns the entry lifetime and grant sequence for a server grant
// (hot paths get the stretched lease).
func (c *dirCache) leaseFor(path string, g wire.LeaseGrant) (time.Duration, uint64) {
	if !c.coherent || !g.Valid() {
		return c.lease, 0
	}
	dur := time.Duration(g.DurMS) * time.Millisecond
	if c.hotFactor > 1 && c.isHot(path) {
		dur *= time.Duration(c.hotFactor)
	}
	return dur, g.Seq
}

// put caches an inode under path, evicting the oldest entries if the cap is
// exceeded. In coherent mode an invalid grant is not cached at all: a
// sequence-less entry cannot be matched against recalls, and stamping it
// grantSeq 0 would get it silently rejected below as soon as any recall
// had been applied — a coherent client requires a lease-granting server on
// every OK lookup (TTL-only mode caches under the configured lease as
// before).
func (c *dirCache) put(path string, inode layout.DirInode, g wire.LeaseGrant) {
	c.putFrom(0, path, inode, g)
}

// putFrom is put for an entry granted by recall source src.
func (c *dirCache) putFrom(src uint32, path string, inode layout.DirInode, g wire.LeaseGrant) {
	if c.coherent && !g.Valid() {
		return
	}
	dur, gseq := c.leaseFor(path, g)
	expires := c.now().Add(dur)
	var m *srcMarks
	if c.coherent {
		m = c.marks(src)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m != nil && gseq < m.appliedSeq.Load() {
		// A recall newer than this grant has already been applied; caching
		// the value could resurrect an entry that recall dropped.
		return
	}
	c.seq++
	c.entries[path] = cacheEntry{inode: inode.Clone(), expires: expires, seq: c.seq, grantSeq: gseq, src: src}
	c.fifo = append(c.fifo, fifoRec{path: path, seq: c.seq, kind: recInode})
	c.evictLocked()
	c.compactLocked()
}

// putNeg caches an ENOENT result under the server's negative-entry grant.
func (c *dirCache) putNeg(path string, g wire.LeaseGrant) { c.putNegFrom(0, path, g) }

func (c *dirCache) putNegFrom(src uint32, path string, g wire.LeaseGrant) {
	if !c.negatives || !g.Valid() {
		return
	}
	dur, gseq := c.leaseFor(path, g)
	expires := c.now().Add(dur)
	m := c.marks(src)
	c.mu.Lock()
	defer c.mu.Unlock()
	if gseq < m.appliedSeq.Load() {
		return
	}
	c.seq++
	c.negs[path] = negEntry{expires: expires, seq: c.seq, grantSeq: gseq, src: src}
	c.fifo = append(c.fifo, fifoRec{path: path, seq: c.seq, kind: recNeg})
	c.evictLocked()
	c.compactLocked()
}

// putList caches a complete subdirectory listing under the server's listing
// grant.
func (c *dirCache) putList(path string, ents []DirEntry, g wire.LeaseGrant) {
	c.putListFrom(0, path, ents, g)
}

func (c *dirCache) putListFrom(src uint32, path string, ents []DirEntry, g wire.LeaseGrant) {
	if !c.coherent || !g.Valid() {
		return
	}
	dur, gseq := c.leaseFor(path, g)
	expires := c.now().Add(dur)
	m := c.marks(src)
	c.mu.Lock()
	defer c.mu.Unlock()
	if gseq < m.appliedSeq.Load() {
		return
	}
	c.seq++
	c.lists[path] = listEntry{ents: ents, expires: expires, seq: c.seq, grantSeq: gseq, src: src}
	c.fifo = append(c.fifo, fifoRec{path: path, seq: c.seq, kind: recList})
	c.evictLocked()
	c.compactLocked()
}

func (c *dirCache) liveLocked() int { return len(c.entries) + len(c.negs) + len(c.lists) }

// evictLocked enforces the entry cap, oldest-first. Caller holds c.mu.
func (c *dirCache) evictLocked() {
	if c.max <= 0 {
		return
	}
	for c.liveLocked() > c.max && len(c.fifo) > 0 {
		rec := c.fifo[0]
		c.fifo = c.fifo[1:]
		if c.dropRecLocked(rec) {
			c.evictions.Add(1)
			if c.met != nil {
				c.met.evictions.Inc()
			}
		}
	}
}

// dropRecLocked deletes the entry a fifo record points at, if the record is
// still live (the entry was not re-put or invalidated since).
func (c *dirCache) dropRecLocked(rec fifoRec) bool {
	switch rec.kind {
	case recInode:
		if e, ok := c.entries[rec.path]; ok && e.seq == rec.seq {
			delete(c.entries, rec.path)
			return true
		}
	case recNeg:
		if e, ok := c.negs[rec.path]; ok && e.seq == rec.seq {
			delete(c.negs, rec.path)
			return true
		}
	case recList:
		if e, ok := c.lists[rec.path]; ok && e.seq == rec.seq {
			delete(c.lists, rec.path)
			return true
		}
	}
	return false
}

func (c *dirCache) recLiveLocked(rec fifoRec) bool {
	switch rec.kind {
	case recInode:
		e, ok := c.entries[rec.path]
		return ok && e.seq == rec.seq
	case recNeg:
		e, ok := c.negs[rec.path]
		return ok && e.seq == rec.seq
	case recList:
		e, ok := c.lists[rec.path]
		return ok && e.seq == rec.seq
	}
	return false
}

// compactLocked trims the fifo: re-puts and invalidations strand stale
// records; compact once they dominate, so the queue stays proportional to
// the live set. Caller holds c.mu.
func (c *dirCache) compactLocked() {
	if len(c.fifo) > 2*c.liveLocked()+16 {
		live := c.fifo[:0]
		for _, rec := range c.fifo {
			if c.recLiveLocked(rec) {
				live = append(live, rec)
			}
		}
		c.fifo = live
	}
}

// applyRecalls applies a fetched recall log segment: every entry drops
// exactly the cached state its mutation could have invalidated, skipping
// entries granted at or after the recall (they postdate the mutation). A
// reset — the client fell behind the server's bounded log — drops
// everything. The applied watermark advances to cur.
func (c *dirCache) applyRecalls(cur uint64, reset bool, entries []wire.Recall) {
	c.applyRecallsFrom(0, cur, reset, entries)
}

// applyRecallsFrom is applyRecalls for a segment fetched from source src.
// Drops are scoped to entries granted by that source: a partition's recall
// log describes exactly the mutations of its own key range (including seed
// updates republished locally), so entries granted elsewhere are untouched
// — and their grant sequences would not be comparable anyway.
func (c *dirCache) applyRecallsFrom(src uint32, cur uint64, reset bool, entries []wire.Recall) {
	if !c.coherent {
		return
	}
	c.observeFrom(src, cur)
	m := c.marks(src)
	c.mu.Lock()
	if reset {
		clear(c.entries)
		clear(c.negs)
		clear(c.lists)
		c.fifo = c.fifo[:0]
		c.recalls.Add(1)
		if c.met != nil {
			c.met.recalls.Inc()
		}
	} else {
		for _, r := range entries {
			c.applyOneLocked(src, r.Seq, r.Kind, r.Path)
		}
		c.recalls.Add(uint64(len(entries)))
		if c.met != nil {
			c.met.recalls.Add(uint64(len(entries)))
		}
	}
	// Advance the applied watermark while still holding c.mu: put/putNeg/
	// putList validate gseq < appliedSeq under the same lock, so a delayed
	// lookup response granted before these recalls cannot slip in between
	// the drops above and the watermark advance and then be served as fresh.
	for {
		a := m.appliedSeq.Load()
		if cur <= a || m.appliedSeq.CompareAndSwap(a, cur) {
			break
		}
	}
	c.mu.Unlock()
}

// applyOneLocked performs one recall's drops. Entries granted at or after
// seq by the same source survive: their grant postdates the mutation.
// src == srcAny drops regardless of granting source. Caller holds c.mu.
func (c *dirCache) applyOneLocked(src uint32, seq uint64, kind wire.RecallKind, path string) {
	switch kind {
	case wire.RecallPatched:
		// In-place attribute change: only the exact inode entry is stale.
		if e, ok := c.entries[path]; ok && e.grantSeq < seq && (src == srcAny || e.src == src) {
			delete(c.entries, path)
		}
	case wire.RecallCreated:
		// The path now exists: negative entries at/under it are wrong (a
		// rename can materialize a whole subtree), and listings of it and
		// of its parent gained an entry.
		c.dropTreeLocked(src, path, seq, false, true, true)
		c.dropParentListLocked(src, path, seq)
	case wire.RecallRemoved:
		// The subtree is gone: inodes and listings at/under it are stale,
		// and the parent's listing lost an entry. Negative entries are
		// dropped too (over-broad but cheap and safe).
		c.dropTreeLocked(src, path, seq, true, true, true)
		c.dropParentListLocked(src, path, seq)
	}
}

// dropTreeLocked drops cached state at and under path from the selected
// maps, honoring the grant-sequence guard and the source scope. Caller
// holds c.mu.
func (c *dirCache) dropTreeLocked(src uint32, path string, seq uint64, inodes, negs, lists bool) {
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	at := func(p string) bool {
		return p == path || strings.HasPrefix(p, prefix)
	}
	if inodes {
		for p, e := range c.entries {
			if e.grantSeq < seq && (src == srcAny || e.src == src) && at(p) {
				delete(c.entries, p)
			}
		}
	}
	if negs {
		for p, e := range c.negs {
			if e.grantSeq < seq && (src == srcAny || e.src == src) && at(p) {
				delete(c.negs, p)
			}
		}
	}
	if lists {
		for p, e := range c.lists {
			if e.grantSeq < seq && (src == srcAny || e.src == src) && at(p) {
				delete(c.lists, p)
			}
		}
	}
}

func (c *dirCache) dropParentListLocked(src uint32, path string, seq uint64) {
	if path == "/" {
		return
	}
	parent, _ := fspath.Split(path)
	if e, ok := c.lists[parent]; ok && e.grantSeq < seq && (src == srcAny || e.src == src) {
		delete(c.lists, parent)
	}
}

// selfOp is one drop of a client's own mutation (see selfApply).
type selfOp struct {
	kind wire.RecallKind
	path string
}

// selfApply applies the client's own mutation to its cache using the same
// drop rules a recall would, and — when the mutation's response carried a
// publication trailer (last, n) — accounts the recalls as applied, so the
// mutating client never pays a recall fetch for its own writes. last == 0
// (TTL mode, or a fully suppressed mutation) drops unconditionally.
func (c *dirCache) selfApply(src uint32, last uint64, n uint32, ops ...selfOp) {
	guard := last
	guardSrc := src
	if guard == 0 {
		guard = ^uint64(0)
		guardSrc = srcAny
	}
	if last > 0 {
		c.observeFrom(src, last)
	}
	m := c.marks(src)
	c.mu.Lock()
	for _, op := range ops {
		c.applyOneLocked(guardSrc, guard, op.kind, op.path)
	}
	if last > 0 && n > 0 {
		// The published seqs last-n+1..last are exactly this mutation's;
		// if everything before them was applied, they now are too. Advanced
		// under c.mu for the same reason as applyRecalls: the put-side
		// gseq < appliedSeq guard must be atomic with the drops above.
		m.appliedSeq.CompareAndSwap(last-uint64(n), last)
	}
	c.mu.Unlock()
}

func (c *dirCache) selfCreated(path string, last uint64, n uint32) {
	c.selfCreatedFrom(0, path, last, n)
}

func (c *dirCache) selfCreatedFrom(src uint32, path string, last uint64, n uint32) {
	c.selfApply(src, last, n, selfOp{wire.RecallCreated, path})
}

func (c *dirCache) selfRemoved(path string, last uint64, n uint32) {
	c.selfRemovedFrom(0, path, last, n)
}

func (c *dirCache) selfRemovedFrom(src uint32, path string, last uint64, n uint32) {
	c.selfApply(src, last, n, selfOp{wire.RecallRemoved, path})
}

func (c *dirCache) selfPatched(path string, last uint64, n uint32) {
	c.selfPatchedFrom(0, path, last, n)
}

func (c *dirCache) selfPatchedFrom(src uint32, path string, last uint64, n uint32) {
	c.selfApply(src, last, n, selfOp{wire.RecallPatched, path})
}

func (c *dirCache) selfRenamed(oldPath, newPath string, last uint64, n uint32) {
	c.selfRenamedFrom(0, oldPath, newPath, last, n)
}

func (c *dirCache) selfRenamedFrom(src uint32, oldPath, newPath string, last uint64, n uint32) {
	// Mirror the published removed(old)+created(new), plus an entry drop
	// under the new path (matches the legacy invalidateSubtree there).
	c.selfApply(src, last, n,
		selfOp{wire.RecallRemoved, oldPath},
		selfOp{wire.RecallRemoved, newPath},
		selfOp{wire.RecallCreated, newPath})
}

// accountPub folds a mutation's publication trailer into source src's
// watermarks without performing any drops — used when the caller already
// invalidated the affected paths unconditionally (cross-partition renames,
// whose destination-side recalls are published by a different source).
func (c *dirCache) accountPub(src uint32, last uint64, n uint32) {
	if !c.coherent || last == 0 {
		return
	}
	c.observeFrom(src, last)
	m := c.marks(src)
	c.mu.Lock()
	if n > 0 {
		m.appliedSeq.CompareAndSwap(last-uint64(n), last)
	}
	c.mu.Unlock()
}

// invalidate drops path from the cache (every kind, unconditionally).
func (c *dirCache) invalidate(path string) {
	c.mu.Lock()
	delete(c.entries, path)
	delete(c.negs, path)
	delete(c.lists, path)
	c.mu.Unlock()
}

// invalidateSubtree drops path and everything beneath it, unconditionally.
func (c *dirCache) invalidateSubtree(path string) {
	c.mu.Lock()
	c.dropTreeLocked(srcAny, path, ^uint64(0), true, true, true)
	c.mu.Unlock()
}

// stats returns inode hit/miss counts.
func (c *dirCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// evicted returns the number of entries dropped by the size cap.
func (c *dirCache) evicted() uint64 { return c.evictions.Load() }

// size returns the number of cached entries of all kinds.
func (c *dirCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.liveLocked()
}

// CacheDetail is a point-in-time snapshot of the directory cache's
// counters, occupancy and coherence watermarks.
type CacheDetail struct {
	Hits, NegHits, ListHits      uint64
	Misses, StaleMisses          uint64
	Evictions, RecallsApplied    uint64
	Entries, Negatives, Listings int
	MaxSeq, AppliedSeq           uint64
}

func (c *dirCache) detail() CacheDetail {
	c.mu.RLock()
	entries, negs, lists := len(c.entries), len(c.negs), len(c.lists)
	c.mu.RUnlock()
	var maxSeq, appliedSeq uint64
	if m := c.marksIfAny(0); m != nil {
		maxSeq, appliedSeq = m.maxSeq.Load(), m.appliedSeq.Load()
	}
	return CacheDetail{
		Hits:           c.hits.Load(),
		NegHits:        c.negHits.Load(),
		ListHits:       c.listHits.Load(),
		Misses:         c.misses.Load(),
		StaleMisses:    c.staleMisses.Load(),
		Evictions:      c.evictions.Load(),
		RecallsApplied: c.recalls.Load(),
		Entries:        entries,
		Negatives:      negs,
		Listings:       lists,
		MaxSeq:         maxSeq,
		AppliedSeq:     appliedSeq,
	}
}
