// Package dms implements the LocoFS Directory Metadata Server.
//
// The DMS is the single server that owns every directory inode (§3.1). A
// d-inode is stored as a key-value pair whose key is the directory's full
// path and whose value is a fixed 256-byte inode; the dirents of a
// directory's *subdirectories* are concatenated into one value keyed by the
// directory's UUID (§3.2.1). Running on an ordered (B+-tree) store keeps all
// paths under one directory adjacent, so directory rename is a prefix-range
// move (§3.4.3); the hash-store mode — kept for the paper's Fig 14
// comparison — must scan every record instead.
//
// Because all ancestors are local, a full ancestor existence + ACL check is
// a handful of local KV gets inside one request, never a cross-server walk.
package dms

import (
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/acl"
	"locofs/internal/flight"
	"locofs/internal/fspath"
	"locofs/internal/kv"
	"locofs/internal/layout"
	"locofs/internal/rpc"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// Key prefixes inside the DMS store. Directory inodes use "P:" + full path
// so the tree engine clusters a directory's subtree; subdir dirent lists use
// "S:" + uuid so rename (which changes paths, never UUIDs) leaves them
// untouched.
const (
	prefixPath    = "P:"
	prefixSubdirs = "S:"
)

// Options configures a DMS.
type Options struct {
	// Store is the backing KV store. Default: a fresh kv.BTreeStore.
	Store kv.Store
	// ServerID stamps generated UUIDs. Default 0.
	ServerID uint32
	// CheckPermissions enables ancestor ACL enforcement. Most experiments
	// run with it on (it is the work Fig 13 measures).
	CheckPermissions bool
	// Now supplies timestamps; defaults to time.Now().UnixNano.
	Now func() int64
	// LeaseDur is the read-lease duration granted to clients on lookup and
	// readdir responses (see lease.go). Default DefaultLeaseDur (30 s).
	LeaseDur time.Duration
}

// PathInode pairs a directory path with its inode, for lookup responses that
// return the whole ancestor chain (the client caches every link, §3.2.2).
type PathInode struct {
	Path  string
	Inode layout.DirInode
}

// Server is the directory metadata server. Its exported metadata methods are
// the service logic; Attach wires them to an rpc.Server.
type Server struct {
	mu        sync.RWMutex
	store     kv.Store
	ordered   kv.Ordered // nil when running on a hash store
	gen       *uuid.Generator
	checkPerm bool
	now       func() int64
	tombs     uint64 // dirent tombstones logged, for amortized compaction
	leases    *leaseTable

	// pin, when pinOn is set, overrides the clock: every replica of a
	// sharded partition applies a replicated op-log entry under the
	// leader-pinned timestamp the entry carries, so all replicas produce
	// byte-identical inodes (see PinClock).
	pin   atomic.Int64
	pinOn atomic.Bool

	// hot ranks the directories the RPC handlers touch most (space-saving
	// top-K; always on — a Touch is a few atomic-free map operations under
	// the sketch's own lock). Served by the admin plane's /debug/hot.
	hot *trace.TopK
}

// New returns a DMS with the root directory ("/") created.
func New(opts Options) *Server {
	st := opts.Store
	if st == nil {
		st = kv.NewBTreeStore()
	}
	s := &Server{
		store:     st,
		gen:       uuid.NewGenerator(opts.ServerID),
		checkPerm: opts.CheckPermissions,
		hot:       trace.NewTopK(trace.DefaultTopKCapacity),
	}
	if o, ok := st.(kv.Ordered); ok {
		s.ordered = o
	}
	if inst, ok := st.(*kv.Instrumented); ok && !inst.IsOrdered() {
		s.ordered = nil
	}
	userNow := opts.Now
	if userNow == nil {
		userNow = func() int64 { return time.Now().UnixNano() }
	}
	s.now = func() int64 {
		if s.pinOn.Load() {
			return s.pin.Load()
		}
		return userNow()
	}
	s.leases = newLeaseTable(opts.LeaseDur, s.now)
	if _, ok := st.Get(pathKey("/")); !ok {
		root := layout.NewDirInode()
		root.SetUUID(uuid.Root)
		root.SetCTime(s.now())
		root.SetMode(layout.ModeDir | 0o777)
		st.Put(pathKey("/"), root)
	}
	s.restoreGenerator()
	return s
}

// restoreGenerator advances the UUID sequence past every identifier already
// in the store, so a server restarted on persistent state never re-issues a
// UUID.
func (s *Server) restoreGenerator() {
	sid := s.gen.SID()
	var maxFid uint64
	s.store.ForEach(func(k, v []byte) bool {
		if len(k) < 2 || string(k[:2]) != prefixPath || len(v) != layout.DirInodeSize {
			return true
		}
		u := layout.DirInode(v).UUID()
		if u.SID() == sid && u.FID() > maxFid {
			maxFid = u.FID()
		}
		return true
	})
	if maxFid > 0 {
		s.gen.Restore(maxFid)
	}
}

func pathKey(path string) []byte {
	return append([]byte(prefixPath), path...)
}

func subdirsKey(u uuid.UUID) []byte {
	return append([]byte(prefixSubdirs), u[:]...)
}

// Ordered reports whether the DMS runs on an ordered (tree) store.
func (s *Server) Ordered() bool { return s.ordered != nil }

// getInode fetches a directory inode by cleaned path. Caller holds s.mu.
func (s *Server) getInode(path string) (layout.DirInode, bool) {
	v, ok := s.store.Get(pathKey(path))
	if !ok || len(v) != layout.DirInodeSize {
		return nil, false
	}
	return layout.DirInode(v), true
}

// checkAncestors verifies that every proper ancestor of path exists and is
// traversable by (uid, gid). It returns the ancestor chain on success. This
// is the paper's single-server ACL walk: N local gets, zero network hops.
func (s *Server) checkAncestors(path string, uid, gid uint32) ([]PathInode, wire.Status) {
	ancestors := fspath.Ancestors(path)
	chain := make([]PathInode, 0, len(ancestors)+1)
	for _, a := range ancestors {
		ino, ok := s.getInode(a)
		if !ok {
			return nil, wire.StatusNotFound
		}
		if s.checkPerm && !acl.CanExec(ino.Mode(), ino.UID(), ino.GID(), uid, gid) {
			return nil, wire.StatusPerm
		}
		chain = append(chain, PathInode{Path: a, Inode: ino})
	}
	return chain, wire.StatusOK
}

// Mkdir creates a directory. It returns the new directory's UUID.
func (s *Server) Mkdir(path string, mode, uid, gid uint32) (uuid.UUID, wire.Status) {
	u, _, st := s.mkdirPub(path, mode, uid, gid)
	return u, st
}

// mkdirPub is Mkdir plus the lease recall the creation published (if any),
// which the RPC handler returns to the mutating client (see lease.go).
func (s *Server) mkdirPub(path string, mode, uid, gid uint32) (uuid.UUID, pubResult, wire.Status) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return uuid.Nil, pubResult{}, wire.StatusInval
	}
	if cleaned == "/" {
		return uuid.Nil, pubResult{}, wire.StatusExist
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	chain, st := s.checkAncestors(cleaned, uid, gid)
	if st != wire.StatusOK {
		return uuid.Nil, pubResult{}, st
	}
	parent := chain[len(chain)-1].Inode
	if s.checkPerm && !acl.CanWrite(parent.Mode(), parent.UID(), parent.GID(), uid, gid) {
		return uuid.Nil, pubResult{}, wire.StatusPerm
	}
	if _, ok := s.getInode(cleaned); ok {
		return uuid.Nil, pubResult{}, wire.StatusExist
	}
	ino := layout.NewDirInode()
	u := s.gen.Next()
	ino.SetUUID(u)
	ino.SetCTime(s.now())
	ino.SetMode(layout.ModeDir | (mode & layout.PermMask))
	ino.SetUID(uid)
	ino.SetGID(gid)
	s.store.Put(pathKey(cleaned), ino)
	parentPath, name := fspath.Split(cleaned)
	ent := layout.AppendDirent(nil, layout.Dirent{Name: name, UUID: u})
	s.store.AppendValue(subdirsKey(parent.UUID()), ent)
	return u, s.leases.bumpCreated(cleaned, parentPath), wire.StatusOK
}

// Lookup resolves path, enforcing the ancestor ACL walk, and returns the
// full chain of (ancestor..., target) inodes so clients can warm their
// directory cache from one round trip.
func (s *Server) Lookup(path string, uid, gid uint32) ([]PathInode, wire.Status) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, wire.StatusInval
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lookupLocked(cleaned, uid, gid)
}

// lookupLocked is Lookup past path cleaning. Caller holds s.mu (read).
func (s *Server) lookupLocked(cleaned string, uid, gid uint32) ([]PathInode, wire.Status) {
	chain, st := s.checkAncestors(cleaned, uid, gid)
	if st != wire.StatusOK {
		return nil, st
	}
	ino, ok := s.getInode(cleaned)
	if !ok {
		return nil, wire.StatusNotFound
	}
	return append(chain, PathInode{Path: cleaned, Inode: ino}), wire.StatusOK
}

// lookupLeased is the RPC handler's lookup: it additionally records lease
// grants for every inode in the returned chain — or a negative-entry grant
// when the path resolves ENOENT — while still under the read lock, so a
// grant can never be recorded for state a concurrent mutation already
// changed. The returned grant rides as a response-body trailer.
func (s *Server) lookupLeased(path string, uid, gid uint32) ([]PathInode, wire.LeaseGrant, wire.Status) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, wire.LeaseGrant{}, wire.StatusInval
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain, st := s.lookupLocked(cleaned, uid, gid)
	switch st {
	case wire.StatusOK:
		return chain, s.leases.grantChain(chain), st
	case wire.StatusNotFound:
		return nil, s.leases.grantNeg(cleaned), st
	}
	return nil, wire.LeaseGrant{}, st
}

// Stat returns the inode of one directory (no chain).
func (s *Server) Stat(path string, uid, gid uint32) (layout.DirInode, wire.Status) {
	chain, st := s.Lookup(path, uid, gid)
	if st != wire.StatusOK {
		return nil, st
	}
	return chain[len(chain)-1].Inode, wire.StatusOK
}

// ReaddirSubdirs returns one page of path's subdirectory entries, in name
// order, starting strictly after cursor (empty cursor = from the start).
// more reports whether further pages exist. File entries live on the FMSs;
// the client merges. Paging bounds response size for huge directories.
func (s *Server) ReaddirSubdirs(path string, uid, gid uint32, cursor string, limit int) (ents []layout.Dirent, more bool, st wire.Status) {
	ents, remaining, st := s.ReaddirSubdirsAt(path, uid, gid, cursor, 0, limit)
	return ents, remaining > 0, st
}

// ReaddirSubdirsAt is ReaddirSubdirs with a page offset: it returns the
// skip-th page after cursor, letting a client prefetch several consecutive
// pages of one listing in a single batched round trip. remaining is the
// exact entry count beyond the returned page.
func (s *Server) ReaddirSubdirsAt(path string, uid, gid uint32, cursor string, skip, limit int) (ents []layout.Dirent, remaining int, st wire.Status) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, 0, wire.StatusInval
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.readdirLocked(cleaned, uid, gid, cursor, skip, limit)
}

// readdirLocked is ReaddirSubdirsAt past path cleaning. Caller holds s.mu
// (read).
func (s *Server) readdirLocked(cleaned string, uid, gid uint32, cursor string, skip, limit int) (ents []layout.Dirent, remaining int, st wire.Status) {
	if _, st := s.checkAncestors(cleaned, uid, gid); st != wire.StatusOK {
		return nil, 0, st
	}
	ino, ok := s.getInode(cleaned)
	if !ok {
		return nil, 0, wire.StatusNotFound
	}
	if s.checkPerm && !acl.CanRead(ino.Mode(), ino.UID(), ino.GID(), uid, gid) {
		return nil, 0, wire.StatusPerm
	}
	list, _ := s.store.Get(subdirsKey(ino.UUID()))
	ents, remaining, err := layout.DirentPageAt(list, cursor, skip, limit)
	if err != nil {
		return nil, 0, wire.StatusIO
	}
	return ents, remaining, wire.StatusOK
}

// readdirLeased is the RPC handler's readdir: when the response is the
// complete listing (first page, nothing remaining) it additionally records
// a listing lease grant under the same read lock, so clients can serve
// whole-directory readdirs from cache until the listing changes. Partial
// pages return the zero grant — not cacheable.
func (s *Server) readdirLeased(path string, uid, gid uint32, cursor string, skip, limit int) (ents []layout.Dirent, remaining int, g wire.LeaseGrant, st wire.Status) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, 0, wire.LeaseGrant{}, wire.StatusInval
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ents, remaining, st = s.readdirLocked(cleaned, uid, gid, cursor, skip, limit)
	if st == wire.StatusOK && cursor == "" && skip == 0 && remaining == 0 {
		g = s.leases.grantList(cleaned)
	}
	return ents, remaining, g, st
}

// Rmdir removes an empty directory. "Empty" here means no subdirectories;
// the client is responsible for first confirming with every FMS that the
// directory holds no files (§4.2.1 — the readdir/rmdir fan-out cost).
func (s *Server) Rmdir(path string, uid, gid uint32) wire.Status {
	_, st := s.rmdirPub(path, uid, gid)
	return st
}

// rmdirPub is Rmdir plus the lease recall the removal published (if any).
func (s *Server) rmdirPub(path string, uid, gid uint32) (pubResult, wire.Status) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return pubResult{}, wire.StatusInval
	}
	if cleaned == "/" {
		return pubResult{}, wire.StatusPerm
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	chain, st := s.checkAncestors(cleaned, uid, gid)
	if st != wire.StatusOK {
		return pubResult{}, st
	}
	parent := chain[len(chain)-1].Inode
	if s.checkPerm && !acl.CanWrite(parent.Mode(), parent.UID(), parent.GID(), uid, gid) {
		return pubResult{}, wire.StatusPerm
	}
	ino, ok := s.getInode(cleaned)
	if !ok {
		return pubResult{}, wire.StatusNotFound
	}
	if list, ok := s.store.Get(subdirsKey(ino.UUID())); ok {
		n, err := layout.CountDirents(list)
		if err != nil {
			return pubResult{}, wire.StatusIO
		}
		if n > 0 {
			return pubResult{}, wire.StatusNotEmpty
		}
	}
	s.store.Delete(pathKey(cleaned))
	s.store.Delete(subdirsKey(ino.UUID()))
	s.removeParentDirent(parent.UUID(), cleaned)
	parentPath, _ := fspath.Split(cleaned)
	return s.leases.bumpRemoved(cleaned, parentPath), wire.StatusOK
}

// removeParentDirent logs a tombstone for cleaned in its parent's subdir
// list — O(appended bytes) — with amortized compaction. Caller holds s.mu.
func (s *Server) removeParentDirent(parentUUID uuid.UUID, cleaned string) {
	_, name := fspath.Split(cleaned)
	key := subdirsKey(parentUUID)
	s.store.AppendValue(key, layout.AppendDirentTombstone(nil, name))
	s.tombs++
	if s.tombs%compactEvery == 0 {
		if list, ok := s.store.Get(key); ok {
			if out, live, err := layout.CompactDirents(list); err == nil {
				if live == 0 {
					s.store.Delete(key)
				} else {
					s.store.Put(key, out)
				}
			}
		}
	}
}

// compactEvery bounds dirent-tombstone garbage: one compaction per this
// many removals.
const compactEvery = 64

// Chmod updates a directory's permission bits in place (no value rewrite).
func (s *Server) Chmod(path string, mode, uid, gid uint32) wire.Status {
	_, st := s.chmodPub(path, mode, uid, gid)
	return st
}

func (s *Server) chmodPub(path string, mode, uid, gid uint32) (pubResult, wire.Status) {
	return s.patchInode(path, uid, gid, func(ino layout.DirInode) ([]layout.FieldPatch, wire.Status) {
		if s.checkPerm && !acl.IsOwner(ino.UID(), uid) {
			return nil, wire.StatusPerm
		}
		newMode := layout.ModeDir | (mode & layout.PermMask)
		return layout.PatchDirMode(newMode, s.now()), wire.StatusOK
	})
}

// Chown updates a directory's owner in place.
func (s *Server) Chown(path string, newUID, newGID, uid, gid uint32) wire.Status {
	_, st := s.chownPub(path, newUID, newGID, uid, gid)
	return st
}

func (s *Server) chownPub(path string, newUID, newGID, uid, gid uint32) (pubResult, wire.Status) {
	return s.patchInode(path, uid, gid, func(ino layout.DirInode) ([]layout.FieldPatch, wire.Status) {
		if s.checkPerm && uid != 0 {
			return nil, wire.StatusPerm // only root may chown
		}
		return layout.PatchDirOwner(newUID, newGID, s.now()), wire.StatusOK
	})
}

func (s *Server) patchInode(path string, uid, gid uint32, fn func(layout.DirInode) ([]layout.FieldPatch, wire.Status)) (pubResult, wire.Status) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return pubResult{}, wire.StatusInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, st := s.checkAncestors(cleaned, uid, gid); st != wire.StatusOK {
		return pubResult{}, st
	}
	ino, ok := s.getInode(cleaned)
	if !ok {
		return pubResult{}, wire.StatusNotFound
	}
	patches, st := fn(ino)
	if st != wire.StatusOK {
		return pubResult{}, st
	}
	for _, p := range patches {
		if !s.store.PatchInPlace(pathKey(cleaned), p.Off, p.Data) {
			return pubResult{}, wire.StatusIO
		}
	}
	return s.leases.bumpPatched(cleaned), wire.StatusOK
}

// Rename moves a directory (and its whole subtree of directory inodes) from
// oldPath to newPath. On the tree store this is a contiguous prefix move;
// on a hash store it degenerates to a full scan (Fig 14). Files and subdir
// dirent lists are indexed by UUID and never move (§3.4.2). It returns the
// number of relocated directory inodes (including the directory itself).
func (s *Server) Rename(oldPath, newPath string, uid, gid uint32) (int, wire.Status) {
	moved, _, st := s.renamePub(oldPath, newPath, uid, gid)
	return moved, st
}

// renamePub is Rename plus the lease recalls the move published.
func (s *Server) renamePub(oldPath, newPath string, uid, gid uint32) (int, pubResult, wire.Status) {
	oldC, err := fspath.Clean(oldPath)
	if err != nil {
		return 0, pubResult{}, wire.StatusInval
	}
	newC, err := fspath.Clean(newPath)
	if err != nil {
		return 0, pubResult{}, wire.StatusInval
	}
	if oldC == "/" || newC == "/" || oldC == newC {
		return 0, pubResult{}, wire.StatusInval
	}
	if fspath.IsAncestorOf(oldC, newC) {
		return 0, pubResult{}, wire.StatusInval // cannot move a directory under itself
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	oldChain, st := s.checkAncestors(oldC, uid, gid)
	if st != wire.StatusOK {
		return 0, pubResult{}, st
	}
	newChain, st := s.checkAncestors(newC, uid, gid)
	if st != wire.StatusOK {
		return 0, pubResult{}, st
	}
	ino, ok := s.getInode(oldC)
	if !ok {
		return 0, pubResult{}, wire.StatusNotFound
	}
	if _, exists := s.getInode(newC); exists {
		return 0, pubResult{}, wire.StatusExist
	}
	oldParent := oldChain[len(oldChain)-1].Inode
	newParent := newChain[len(newChain)-1].Inode
	if s.checkPerm {
		if !acl.CanWrite(oldParent.Mode(), oldParent.UID(), oldParent.GID(), uid, gid) ||
			!acl.CanWrite(newParent.Mode(), newParent.UID(), newParent.GID(), uid, gid) {
			return 0, pubResult{}, wire.StatusPerm
		}
	}

	moved := 1
	// Move the directory's own inode.
	s.store.Delete(pathKey(oldC))
	s.store.Put(pathKey(newC), ino)
	// Move the subtree.
	oldPrefix := pathKey(oldC + "/")
	newPrefix := pathKey(newC + "/")
	if s.ordered != nil {
		moved += s.ordered.MovePrefix(oldPrefix, newPrefix)
	} else {
		moved += s.movePrefixByScan(oldPrefix, newPrefix)
	}
	// Fix parent dirent lists. The moved directory keeps its UUID, so its
	// own subdir list and every file indexed by it are untouched.
	s.removeParentDirent(oldParent.UUID(), oldC)
	_, newName := fspath.Split(newC)
	ent := layout.AppendDirent(nil, layout.Dirent{Name: newName, UUID: ino.UUID()})
	s.store.AppendValue(subdirsKey(newParent.UUID()), ent)
	return moved, s.leases.bumpRenamed(oldC, newC), wire.StatusOK
}

// movePrefixByScan is the hash-store rename path: every record in the store
// must be visited to find the subtree (the paper's Fig 14 "hash" series).
func (s *Server) movePrefixByScan(oldPrefix, newPrefix []byte) int {
	type rec struct{ k, v []byte }
	var hits []rec
	s.store.ForEach(func(k, v []byte) bool {
		if len(k) >= len(oldPrefix) && string(k[:len(oldPrefix)]) == string(oldPrefix) {
			nk := append(append([]byte(nil), newPrefix...), k[len(oldPrefix):]...)
			hits = append(hits, rec{k: nk, v: append([]byte(nil), v...)})
		}
		return true
	})
	for _, r := range hits {
		ok := append(append([]byte(nil), oldPrefix...), r.k[len(newPrefix):]...)
		s.store.Delete(ok)
	}
	for _, r := range hits {
		s.store.Put(r.k, r.v)
	}
	return len(hits)
}

// DirCount returns the number of directories (for tests and experiments).
func (s *Server) DirCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	s.store.ForEach(func(k, v []byte) bool {
		if len(k) >= 2 && string(k[:2]) == prefixPath {
			n++
		}
		return true
	})
	return n
}

// HotKeys returns the server's hot-directory sketch: the top-K paths its
// RPC handlers touch, ranked by touch count (see /debug/hot).
func (s *Server) HotKeys() *trace.TopK { return s.hot }

// LeaseSeq returns the published lease-recall sequence (see lease.go).
func (s *Server) LeaseSeq() uint64 { return s.leases.Seq() }

// RecallsSuppressed returns how many mutations published no recall because
// no live lease grant covered the touched paths.
func (s *Server) RecallsSuppressed() uint64 { return s.leases.Suppressed() }

// LeaseGrants returns how many lease grants have been recorded on responses.
func (s *Server) LeaseGrants() uint64 { return s.leases.Granted() }

// SetFlight installs the flight journal the lease table emits recall and
// overflow events to (nil disables emission); source names this server in
// the events.
func (s *Server) SetFlight(j *flight.Journal, source string) { s.leases.setFlight(j, source) }

// Lease-coherence gauge names exported by RegisterMetrics. The cluster
// status merge (slo.MergeCluster + Format) sums these by name, so they must
// stay stable.
const (
	MetricLeaseSeq        = "locofs_dms_lease_seq"
	MetricLeaseGrants     = "locofs_dms_lease_grants_total"
	MetricLeaseRecalls    = "locofs_dms_lease_recalls_total"
	MetricLeaseSuppressed = "locofs_dms_lease_recalls_suppressed_total"
)

// RegisterMetrics exports the lease table's coherence counters as gauges:
// the published recall sequence, grants recorded, recalls published (the
// sequence is bumped exactly once per published entry) and mutations whose
// recall was suppressed.
func (s *Server) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc(MetricLeaseSeq, func() float64 { return float64(s.leases.Seq()) })
	reg.GaugeFunc(MetricLeaseGrants, func() float64 { return float64(s.leases.Granted()) })
	reg.GaugeFunc(MetricLeaseRecalls, func() float64 { return float64(s.leases.Seq()) })
	reg.GaugeFunc(MetricLeaseSuppressed, func() float64 { return float64(s.leases.Suppressed()) })
}

// appendPub appends a mutation response's recall trailer: the last recall
// sequence the mutation published and how many entries (0 = suppressed).
// The mutating client uses it to account for its own recalls — it already
// drops the affected entries locally — without an OpLeaseRecall fetch.
func appendPub(e *wire.Enc, pr pubResult) *wire.Enc {
	return e.U64(pr.Last).U32(pr.N)
}

// Ops lists every client-facing operation the DMS serves. Attach registers
// a handler per op; the sharded-DMS partition node wraps the same set with
// its range guard and replication (see internal/dms/partition).
var Ops = []wire.Op{
	wire.OpMkdir, wire.OpLookupDir, wire.OpLeaseRecall, wire.OpStatDir,
	wire.OpReaddirSubdirs, wire.OpRmdir, wire.OpChmodDir, wire.OpChownDir,
	wire.OpRenameDir,
}

// MutationOp reports whether op changes DMS state (and therefore must go
// through a partition's replicated op log when the DMS is sharded).
func MutationOp(op wire.Op) bool {
	switch op {
	case wire.OpMkdir, wire.OpRmdir, wire.OpChmodDir, wire.OpChownDir, wire.OpRenameDir:
		return true
	}
	return false
}

// Dispatch executes one DMS operation against local state and returns the
// wire response. It is the single entry point shared by the RPC handlers
// (Attach) and the sharded DMS's log-apply path — a follower replaying a
// replicated op-log entry produces byte-identical state and responses by
// dispatching the entry's opcode and body here under a pinned clock.
func (s *Server) Dispatch(op wire.Op, body []byte) (wire.Status, []byte) {
	switch op {
	case wire.OpMkdir:
		d := wire.NewDec(body)
		path, mode, uid, gid := d.Str(), d.U32(), d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(path)
		u, pr, st := s.mkdirPub(path, mode, uid, gid)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, appendPub(wire.NewEnc().UUID(u), pr).Bytes()
	case wire.OpLookupDir:
		d := wire.NewDec(body)
		path, uid, gid := d.Str(), d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(path)
		chain, g, st := s.lookupLeased(path, uid, gid)
		if st == wire.StatusNotFound && g.Valid() {
			// ENOENT with a negative-entry grant: the client may cache the
			// absence until the grant expires or a creation recalls it.
			e := wire.NewEnc()
			wire.AppendLeaseGrant(e, g)
			return st, e.Bytes()
		}
		if st != wire.StatusOK {
			return st, nil
		}
		e := wire.NewEnc().U32(uint32(len(chain)))
		for _, pi := range chain {
			e.Str(pi.Path).Blob(pi.Inode)
		}
		wire.AppendLeaseGrant(e, g)
		return wire.StatusOK, e.Bytes()
	case wire.OpLeaseRecall:
		since, err := wire.DecodeRecallReq(body)
		if err != nil {
			return wire.StatusInval, nil
		}
		cur, reset, entries := s.leases.entriesSince(since)
		return wire.StatusOK, wire.EncodeRecallResp(cur, reset, entries)
	case wire.OpStatDir:
		d := wire.NewDec(body)
		path, uid, gid := d.Str(), d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(path)
		ino, st := s.Stat(path, uid, gid)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, wire.NewEnc().Blob(ino).Bytes()
	case wire.OpReaddirSubdirs:
		d := wire.NewDec(body)
		path, uid, gid := d.Str(), d.U32(), d.U32()
		cursor := d.Str()
		limit := d.U32()
		var skip uint32
		if d.Remaining() > 0 { // optional trailing page offset (batched paging)
			skip = d.U32()
		}
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(path)
		ents, remaining, g, st := s.readdirLeased(path, uid, gid, cursor, int(skip), int(limit))
		if st != wire.StatusOK {
			return st, nil
		}
		e := wire.NewEnc().U32(uint32(len(ents))).Bool(remaining > 0)
		for _, ent := range ents {
			e.Str(ent.Name).UUID(ent.UUID)
		}
		// Trailing exact remaining count (newer clients size prefetch
		// batches from it; older ones ignore it).
		e.U32(uint32(remaining))
		// Trailing listing lease grant, present only when this response is
		// the complete listing (first page, nothing remaining).
		if g.Valid() {
			wire.AppendLeaseGrant(e, g)
		}
		return wire.StatusOK, e.Bytes()
	case wire.OpRmdir:
		d := wire.NewDec(body)
		path, uid, gid := d.Str(), d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(path)
		pr, st := s.rmdirPub(path, uid, gid)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, appendPub(wire.NewEnc(), pr).Bytes()
	case wire.OpChmodDir:
		d := wire.NewDec(body)
		path, mode, uid, gid := d.Str(), d.U32(), d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(path)
		pr, st := s.chmodPub(path, mode, uid, gid)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, appendPub(wire.NewEnc(), pr).Bytes()
	case wire.OpChownDir:
		d := wire.NewDec(body)
		path, newUID, newGID, uid, gid := d.Str(), d.U32(), d.U32(), d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(path)
		pr, st := s.chownPub(path, newUID, newGID, uid, gid)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, appendPub(wire.NewEnc(), pr).Bytes()
	case wire.OpRenameDir:
		d := wire.NewDec(body)
		oldPath, newPath, uid, gid := d.Str(), d.Str(), d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		s.hot.Touch(oldPath)
		moved, pr, st := s.renamePub(oldPath, newPath, uid, gid)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, appendPub(wire.NewEnc().U64(uint64(moved)), pr).Bytes()
	}
	return wire.StatusInval, nil
}

// Attach registers the DMS request handlers on an rpc.Server. Every handler
// feeds the path it operates on into the hot-directory sketch; lookups and
// readdirs additionally grant lease trailers, mutations publish recalls,
// and the server stamps the recall sequence on every response header.
func (s *Server) Attach(rs *rpc.Server) {
	rs.SetLeaseFunc(s.leases.Seq)
	for _, op := range Ops {
		op := op
		rs.Handle(op, func(body []byte) (wire.Status, []byte) {
			return s.Dispatch(op, body)
		})
	}
}
