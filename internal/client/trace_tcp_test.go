package client

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"locofs/internal/dms"
	"locofs/internal/fms"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/rpc"
	"locofs/internal/trace"
)

// TestTracePropagationOverTCP proves span context crosses real process
// boundaries: client and servers record into *separate* rings (as separate
// locofsd processes would), linked only by the trace and parent-span IDs on
// the wire. A traced Readdir over two FMS must yield one joined tree — the
// client root, an rpc child per server call, server-side handler spans
// parented on those rpc spans, and per-sub-op spans under the DMS OpBatch
// envelope — retrievable as JSON from /debug/traces/<id>.
func TestTracePropagationOverTCP(t *testing.T) {
	srvTracer := trace.New(trace.Config{Sample: 1, Slow: -1})
	cliTracer := trace.New(trace.Config{Sample: 1, Slow: -1})

	listen := func(name string, attach func(*rpc.Server)) string {
		l, err := netsim.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rs := rpc.NewServer()
		rs.SetTracer(srvTracer, name)
		attach(rs)
		go rs.Serve(l)
		t.Cleanup(rs.Shutdown)
		return l.Addr()
	}
	dmsAddr := listen("dms", dms.New(dms.Options{}).Attach)
	fms1 := listen("fms-0", fms.New(fms.Options{ServerID: 1}).Attach)
	fms2 := listen("fms-1", fms.New(fms.Options{ServerID: 2}).Attach)
	ossAddr := listen("oss", objstore.New(nil).Attach)

	c, err := Dial(Config{
		Dialer:   netsim.TCPDialer{},
		DMSAddr:  dmsAddr,
		FMSAddrs: []string{fms1, fms2},
		OSSAddrs: []string{ossAddr},
		Tracer:   cliTracer,
		// No cache: the Readdir resolve must go to the DMS, as a batched
		// LookupDir + ReaddirSubdirs — the OpBatch linkage under test.
		DisableCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Mkdir("/traced", 0o755); err != nil {
		t.Fatal(err)
	}
	// Enough files that consistent hashing lands some on each FMS.
	for i := 0; i < 24; i++ {
		if err := c.Create(fmt.Sprintf("/traced/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Readdir("/traced"); err != nil {
		t.Fatal(err)
	}

	// The client ring has the Readdir root; take the newest one.
	var root *trace.Span
	for _, sp := range cliTracer.Spans() {
		if sp.Name == "Readdir" && sp.Parent == 0 {
			root = sp
		}
	}
	if root == nil {
		t.Fatal("no client root span for Readdir")
	}
	tid := root.TraceID

	clientSpans := cliTracer.Trace(tid)
	serverSpans := srvTracer.Trace(tid)
	if len(serverSpans) == 0 {
		t.Fatal("server ring has no spans for the client's trace ID")
	}
	clientByID := make(map[uint64]*trace.Span)
	for _, sp := range clientSpans {
		clientByID[sp.SpanID] = sp
	}

	// Every server-side request span must hang off a client rpc span; both
	// FMSes must appear, and the DMS Batch envelope must carry sub-op spans.
	servers := map[string]bool{}
	var batchEnvelope *trace.Span
	for _, sp := range serverSpans {
		servers[sp.Server] = true
		if sp.Name == "Batch" {
			batchEnvelope = sp
		}
	}
	for _, want := range []string{"dms", "fms-0", "fms-1"} {
		if !servers[want] {
			t.Errorf("no server span from %s in trace (got %v)", want, servers)
		}
	}
	// NB: span IDs are process-local, so a server span's Parent only means
	// "client span" when resolved against the client ring.
	rootLevel := 0
	for _, sp := range serverSpans {
		if sp.Server == "" || sp.Parent == 0 {
			t.Errorf("server span %s@%s missing server or parent", sp.Name, sp.Server)
		}
		if parent, ok := clientByID[sp.Parent]; ok {
			rootLevel++
			if !strings.HasPrefix(parent.Name, "rpc:") {
				t.Errorf("server span %s@%s parented on client span %q, want rpc:*",
					sp.Name, sp.Server, parent.Name)
			}
		}
	}
	if rootLevel == 0 {
		t.Error("no server span is parented on a client rpc span")
	}
	if batchEnvelope == nil {
		t.Fatal("no DMS Batch envelope span (uncached Readdir resolve should batch)")
	}
	subOps := 0
	for _, sp := range serverSpans {
		if sp.Parent == batchEnvelope.SpanID {
			subOps++
			if sp.Sub < 0 {
				t.Errorf("batch sub-op span %s has no sub index", sp.Name)
			}
		}
	}
	if subOps < 2 {
		t.Errorf("Batch envelope has %d sub-op spans, want >= 2 (LookupDir + ReaddirSubdirs)", subOps)
	}

	// The merged admin endpoint returns the joined tree as JSON.
	h := trace.TracesHandler(cliTracer, srvTracer)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/debug/traces/%#x", tid), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces/%#x = %d: %s", tid, rec.Code, rec.Body)
	}
	var out struct {
		Trace string `json:"trace"`
		Spans int    `json:"spans"`
		Tree  []struct {
			Name     string          `json:"name"`
			Server   string          `json:"server"`
			Children json.RawMessage `json:"children"`
		} `json:"tree"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON from /debug/traces: %v", err)
	}
	if out.Spans != len(clientSpans)+len(serverSpans) {
		t.Errorf("JSON reports %d spans, rings hold %d", out.Spans, len(clientSpans)+len(serverSpans))
	}
	if len(out.Tree) != 1 || out.Tree[0].Name != "Readdir" || out.Tree[0].Server != "client" {
		t.Fatalf("joined tree root = %+v, want single Readdir@client root", out.Tree)
	}
	body := rec.Body.String()
	for _, want := range []string{`"fms-0"`, `"fms-1"`, `"dms"`, "ReaddirFiles"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/traces JSON missing %s", want)
		}
	}
}

// TestHotKeysRankSkewedWorkload: after a skewed workload the DMS hot-key
// sketch — and the /debug/hot endpoint reading it — rank the hot directory
// first.
func TestHotKeysRankSkewedWorkload(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	serve := func(addr string, attach func(*rpc.Server)) {
		rs := rpc.NewServer()
		attach(rs)
		l, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		go rs.Serve(l)
		t.Cleanup(rs.Shutdown)
	}
	d := dms.New(dms.Options{})
	f := fms.New(fms.Options{ServerID: 1})
	serve("dms", d.Attach)
	serve("fms-0", f.Attach)
	serve("oss", objstore.New(nil).Attach)

	c, err := Dial(Config{
		Dialer:       n,
		DMSAddr:      "dms",
		FMSAddrs:     []string{"fms-0"},
		OSSAddrs:     []string{"oss"},
		DisableCache: true, // every lookup must reach the DMS sketch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, dir := range []string{"/hot", "/cold1", "/cold2", "/cold3"} {
		if err := c.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := c.StatDir("/hot"); err != nil {
			t.Fatal(err)
		}
	}
	for _, dir := range []string{"/cold1", "/cold2", "/cold3"} {
		if _, err := c.StatDir(dir); err != nil {
			t.Fatal(err)
		}
	}

	top := d.HotKeys().Top(1)
	if len(top) == 0 || top[0].Key != "/hot" {
		t.Fatalf("DMS top key = %+v, want /hot first", top)
	}
	if top[0].Count < 50 {
		t.Errorf("hot key count = %d, want >= 50", top[0].Count)
	}

	rec := httptest.NewRecorder()
	trace.HotHandler(map[string]*trace.TopK{"dms": d.HotKeys(), "fms-0": f.HotKeys()}).
		ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hot?n=3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/hot = %d", rec.Code)
	}
	var sources []struct {
		Source string `json:"source"`
		Total  uint64 `json:"total"`
		Top    []struct {
			Key   string `json:"key"`
			Count uint64 `json:"count"`
		} `json:"top"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sources); err != nil {
		t.Fatalf("bad JSON from /debug/hot: %v", err)
	}
	if len(sources) != 2 || sources[0].Source != "dms" {
		t.Fatalf("/debug/hot sources = %+v, want dms first", sources)
	}
	if len(sources[0].Top) == 0 || sources[0].Top[0].Key != "/hot" {
		t.Errorf("/debug/hot dms ranking = %+v, want /hot first", sources[0].Top)
	}
}
