package lsm

import "hash/fnv"

// bloom is a fixed-parameter Bloom filter attached to each sorted run, the
// LevelDB technique that lets a point read skip runs that certainly do not
// contain the key — without it, every Get probes every level. Roughly 10
// bits per key with 4 hash functions gives ~2% false positives.
type bloom struct {
	bits  []uint64
	nbits uint64
}

const (
	bloomBitsPerKey = 10
	bloomHashes     = 4
)

// newBloom builds a filter sized for n keys.
func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := uint64(n * bloomBitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	return &bloom{bits: make([]uint64, (nbits+63)/64), nbits: nbits}
}

// hash2 derives two independent hash values for double hashing.
func hash2(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	// A second, decorrelated value via the splitmix64 finalizer.
	h2 := h1
	h2 ^= h2 >> 30
	h2 *= 0xbf58476d1ce4e5b9
	h2 ^= h2 >> 27
	h2 *= 0x94d049bb133111eb
	h2 ^= h2 >> 31
	if h2 == 0 {
		h2 = 1
	}
	return h1, h2
}

// add inserts key into the filter.
func (b *bloom) add(key []byte) {
	h1, h2 := hash2(key)
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % b.nbits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mayContain reports whether key could be present (false = definitely not).
func (b *bloom) mayContain(key []byte) bool {
	h1, h2 := hash2(key)
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % b.nbits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
