package client

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locofs/internal/telemetry"
	"locofs/internal/wire"
)

// newCoherentCache returns a lease-coherent cache (negatives on) on a
// manually-advanced clock.
func newCoherentCache(maxEntries int) (*dirCache, *atomic.Int64) {
	var ns atomic.Int64
	base := time.Unix(1000, 0)
	clock := func() time.Time { return base.Add(time.Duration(ns.Load())) }
	return newDirCache(0, clock, maxEntries, true, true, nil), &ns
}

func grant(seq uint64) wire.LeaseGrant {
	return wire.LeaseGrant{Seq: seq, DurMS: 30_000}
}

// TestCoherentFreshnessGate: an entry is served while it provably postdates
// or survived every observed mutation; once a newer sequence is observed it
// degrades to a conservative miss but is kept, and serving resumes after
// the recalls are applied and prove it untouched.
func TestCoherentFreshnessGate(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.put("/a", freshInode(1), grant(5))
	c.observe(5)
	if _, ok := c.get("/a"); !ok {
		t.Fatal("entry at the observed watermark missed")
	}

	// A mutation happened somewhere: stamped sequence moves to 7.
	c.observe(7)
	if _, ok := c.get("/a"); ok {
		t.Fatal("entry served despite unapplied recalls")
	}
	if d := c.detail(); d.StaleMisses != 1 || d.Entries != 1 {
		t.Fatalf("stale access should keep the entry: %+v", d)
	}

	// The recalls turn out to be about someone else: the entry survives
	// application and is servable again.
	c.applyRecalls(7, false, []wire.Recall{{Seq: 6, Kind: wire.RecallPatched, Path: "/other"}, {Seq: 7, Kind: wire.RecallPatched, Path: "/other2"}})
	if _, ok := c.get("/a"); !ok {
		t.Fatal("entry not served after recalls proved it untouched")
	}
	if d := c.detail(); d.AppliedSeq != 7 || d.MaxSeq != 7 {
		t.Fatalf("watermarks = %+v", d)
	}
}

// TestRecallSeqGuard: a recall drops only entries granted before it;
// entries granted at or after the recall's sequence postdate the mutation
// and survive.
func TestRecallSeqGuard(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.put("/old", freshInode(1), grant(3))
	c.put("/new", freshInode(2), grant(9))
	c.applyRecalls(9, false, []wire.Recall{
		{Seq: 8, Kind: wire.RecallPatched, Path: "/old"},
		{Seq: 8, Kind: wire.RecallPatched, Path: "/new"},
	})
	if _, ok := c.get("/old"); ok {
		t.Error("entry granted before the recall survived it")
	}
	if _, ok := c.get("/new"); !ok {
		t.Error("entry granted after the recall was dropped")
	}
}

// TestNegativeDroppedOnCreateRecall: a created-recall kills negative
// entries at and under the created path, and the parent's listing.
func TestNegativeDroppedOnCreateRecall(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.putNeg("/p/x", grant(1))
	c.putNeg("/p/x/deep", grant(1))
	c.putNeg("/p/other", grant(1))
	c.putList("/p", []DirEntry{{Name: "s"}}, grant(1))
	c.putList("/q", []DirEntry{{Name: "s"}}, grant(1))

	c.applyRecalls(2, false, []wire.Recall{{Seq: 2, Kind: wire.RecallCreated, Path: "/p/x"}})
	if c.negHit("/p/x") {
		t.Error("negative entry for created path survived")
	}
	if c.negHit("/p/x/deep") {
		t.Error("negative entry under created path survived")
	}
	if !c.negHit("/p/other") {
		t.Error("unrelated negative entry dropped")
	}
	if _, ok := c.getList("/p"); ok {
		t.Error("parent listing survived a create under it")
	}
	if _, ok := c.getList("/q"); !ok {
		t.Error("unrelated listing dropped")
	}
}

// TestRemovedRecallDropsSubtree: a removed-recall drops inodes, negatives
// and listings at/under the path plus the parent's listing.
func TestRemovedRecallDropsSubtree(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.put("/p/x", freshInode(1), grant(1))
	c.put("/p/x/sub", freshInode(2), grant(1))
	c.put("/p/xx", freshInode(3), grant(1))
	c.putList("/p/x", nil, grant(1))
	c.putList("/p", []DirEntry{{Name: "x"}}, grant(1))

	c.applyRecalls(2, false, []wire.Recall{{Seq: 2, Kind: wire.RecallRemoved, Path: "/p/x"}})
	if _, ok := c.get("/p/x"); ok {
		t.Error("removed inode served")
	}
	if _, ok := c.get("/p/x/sub"); ok {
		t.Error("inode under removed path served")
	}
	if _, ok := c.get("/p/xx"); !ok {
		t.Error("sibling with shared name prefix dropped")
	}
	if _, ok := c.getList("/p/x"); ok {
		t.Error("listing of removed path served")
	}
	if _, ok := c.getList("/p"); ok {
		t.Error("parent listing survived a remove under it")
	}
}

// TestPutGuardAfterAppliedRecall: a response that was in flight while a
// newer recall was fetched and applied must not reinstall the entry that
// recall dropped.
func TestPutGuardAfterAppliedRecall(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.applyRecalls(10, false, nil) // applied watermark: 10
	c.put("/a", freshInode(1), grant(5))
	if _, ok := c.get("/a"); ok {
		t.Error("put with a pre-recall grant resurrected a dropped entry")
	}
	c.putNeg("/n", grant(5))
	if c.negHit("/n") {
		t.Error("putNeg with a pre-recall grant cached")
	}
	c.putList("/l", nil, grant(5))
	if _, ok := c.getList("/l"); ok {
		t.Error("putList with a pre-recall grant cached")
	}
	c.put("/a", freshInode(2), grant(10))
	if _, ok := c.get("/a"); !ok {
		t.Error("put at the applied watermark rejected")
	}
}

// TestCoherentPutInvalidGrantSkipped: in coherent mode an invalid grant is
// not cached at all — stamping it grantSeq 0 would get every such put
// silently rejected once any recall had been applied, making the path
// permanently uncacheable against a server that ever stops granting.
func TestCoherentPutInvalidGrantSkipped(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.put("/a", freshInode(1), wire.LeaseGrant{})
	if _, ok := c.get("/a"); ok {
		t.Error("coherent put with an invalid grant cached")
	}
	if c.size() != 0 {
		t.Errorf("size = %d after skipped put", c.size())
	}
	c.put("/a", freshInode(1), grant(1))
	if _, ok := c.get("/a"); !ok {
		t.Error("valid grant rejected")
	}
}

// TestPutRecallWatermarkAtomic: the applied watermark must advance while
// the recall's drops still hold c.mu, so a delayed lookup response granted
// before the recall cannot slip in between the drops and the advance and
// then be served as fresh. Pre-fix, the put could land in the
// unlock-to-CAS window and survive both the drop pass and the put guard.
func TestPutRecallWatermarkAtomic(t *testing.T) {
	for i := 0; i < 2000; i++ {
		c, _ := newCoherentCache(0)
		seq := uint64(i + 2)
		c.observe(seq)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			c.applyRecalls(seq, false, []wire.Recall{{Seq: seq, Kind: wire.RecallRemoved, Path: "/r"}})
		}()
		go func() {
			defer wg.Done()
			c.put("/r", freshInode(1), grant(seq-1))
		}()
		wg.Wait()
		// appliedSeq == maxSeq now, so fresh() passes for any entry: the
		// pre-recall grant must have been dropped or rejected, never kept.
		if _, ok := c.get("/r"); ok {
			t.Fatalf("iter %d: entry granted before an applied recall served as fresh", i)
		}
	}
}

// TestSelfApplyWatermarkAtomic is the selfApply counterpart of
// TestPutRecallWatermarkAtomic: a racing put granted before the client's
// own published mutation must never survive the self-apply as servable.
func TestSelfApplyWatermarkAtomic(t *testing.T) {
	for i := 0; i < 2000; i++ {
		c, _ := newCoherentCache(0)
		seq := uint64(i + 2)
		c.applyRecalls(seq-1, false, nil) // caught up through seq-1
		c.observe(seq)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			c.selfRemoved("/r", seq, 1)
		}()
		go func() {
			defer wg.Done()
			c.put("/r", freshInode(1), grant(seq-1))
		}()
		wg.Wait()
		if _, ok := c.get("/r"); ok {
			t.Fatalf("iter %d: entry granted before own mutation served as fresh", i)
		}
	}
}

// TestRecallReset: falling behind the server's bounded log drops the whole
// cache and jumps the watermark.
func TestRecallReset(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.put("/a", freshInode(1), grant(1))
	c.putNeg("/n", grant(1))
	c.putList("/l", nil, grant(1))
	c.applyRecalls(99, true, nil)
	if c.size() != 0 {
		t.Fatalf("size = %d after reset", c.size())
	}
	if d := c.detail(); d.AppliedSeq != 99 || d.MaxSeq != 99 {
		t.Fatalf("watermarks after reset: %+v", d)
	}
	// Fresh grants at the new watermark cache normally again.
	c.put("/a", freshInode(2), grant(99))
	if _, ok := c.get("/a"); !ok {
		t.Error("cache dead after reset")
	}
}

// TestSelfApplyPublished: the mutating client's own drop accounts the
// published recalls as applied, so its cache stays coherent with zero
// recall fetches.
func TestSelfApplyPublished(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.putNeg("/d/x", grant(2))
	c.putList("/d", []DirEntry{{Name: "y"}}, grant(2))
	c.observe(2)
	c.applyRecalls(2, false, nil)

	// Own mkdir of /d/x published recall seq 3.
	c.selfCreated("/d/x", 3, 1)
	if c.negHit("/d/x") {
		t.Error("own create left its negative entry")
	}
	if _, ok := c.getList("/d"); ok {
		t.Error("own create left the parent listing")
	}
	if d := c.detail(); d.AppliedSeq != 3 || d.MaxSeq != 3 {
		t.Fatalf("self-apply did not advance watermarks: %+v", d)
	}
	if _, behind := c.behind(); behind {
		t.Error("cache behind after accounting its own publication")
	}
}

// TestSelfApplySuppressed: a fully suppressed own mutation (no published
// recall) still drops the local state unconditionally.
func TestSelfApplySuppressed(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.put("/d", freshInode(1), grant(4))
	c.putList("/d", nil, grant(4))
	c.observe(4)
	c.selfRemoved("/d", 0, 0) // suppressed: no recall published
	if _, ok := c.get("/d"); ok {
		t.Error("own remove left the inode entry")
	}
	if _, ok := c.getList("/d"); ok {
		t.Error("own remove left the listing")
	}
	if d := c.detail(); d.MaxSeq != 4 {
		t.Fatalf("suppressed self-apply moved maxSeq: %+v", d)
	}
}

// TestSelfRenamed drops both sides of the rename.
func TestSelfRenamed(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.put("/old", freshInode(1), grant(1))
	c.put("/old/sub", freshInode(2), grant(1))
	c.putNeg("/new", grant(1))
	c.applyRecalls(1, false, nil) // caught up through seq 1
	// Own rename published removed(/old)+created(/new) as seqs 2 and 3.
	c.selfRenamed("/old", "/new", 3, 2)
	if _, ok := c.get("/old"); ok {
		t.Error("rename source still cached")
	}
	if _, ok := c.get("/old/sub"); ok {
		t.Error("rename source subtree still cached")
	}
	if c.negHit("/new") {
		t.Error("rename destination still cached as absent")
	}
	if d := c.detail(); d.AppliedSeq != 3 {
		t.Fatalf("rename self-apply watermarks: %+v", d)
	}
}

// TestTTLModeIgnoresCoherence: with coherence off the cache never consults
// sequences — entries live for their TTL regardless of observed mutations,
// and negative/listing caching is disabled.
func TestTTLModeIgnoresCoherence(t *testing.T) {
	c := newDirCache(time.Hour, nil, 0, false, true, nil)
	if c.negatives {
		t.Fatal("negative caching enabled without coherence")
	}
	c.put("/a", freshInode(1), wire.LeaseGrant{})
	c.observe(100) // TTL mode: observe is never called by the client, but must be harmless
	if _, ok := c.get("/a"); !ok {
		t.Error("TTL entry invalidated by a sequence observation")
	}
	c.putNeg("/n", grant(1))
	if c.negHit("/n") {
		t.Error("negative entry cached in TTL mode")
	}
	c.putList("/l", nil, grant(1))
	if _, ok := c.getList("/l"); ok {
		t.Error("listing cached in TTL mode")
	}
	if _, behind := c.behind(); behind {
		t.Error("TTL cache claims to be behind")
	}
}

// TestHotEntryLeaseStretch: a path in the hot set gets its granted lease
// stretched by the configured factor, clamped to the server horizon bound.
func TestHotEntryLeaseStretch(t *testing.T) {
	c, ns := newCoherentCache(0)
	c.enableHot(4, 4)
	c.setHot(map[string]struct{}{"/hot": {}})

	g := wire.LeaseGrant{Seq: 1, DurMS: 1000} // 1s grant
	c.put("/hot", freshInode(1), g)
	c.put("/cold", freshInode(2), g)
	c.observe(1)

	ns.Store(int64(2 * time.Second)) // past the plain lease, inside the stretched one
	if _, ok := c.get("/hot"); !ok {
		t.Error("hot entry expired before its stretched lease")
	}
	if _, ok := c.get("/cold"); ok {
		t.Error("cold entry outlived its grant")
	}
	ns.Store(int64(5 * time.Second)) // past 4x stretch
	if _, ok := c.get("/hot"); ok {
		t.Error("hot entry outlived its stretched lease")
	}

	if got := c.hot.Top(1); len(got) == 0 || got[0].Key != "/hot" {
		t.Errorf("hot sketch top = %v", got)
	}
}

func TestHotFactorClamp(t *testing.T) {
	c, _ := newCoherentCache(0)
	c.enableHot(4, 100)
	if c.hotFactor != maxHotLeaseFactor {
		t.Errorf("hotFactor = %d, want clamp %d", c.hotFactor, maxHotLeaseFactor)
	}
}

// TestCoherentConcurrentPutRecallExpiry hammers put/get/negHit/recall/
// expiry concurrently; with -race this is the coherence-path counterpart of
// TestCacheStressOverlappingSubtrees. Afterwards a put granted at the
// applied watermark must be servable.
func TestCoherentConcurrentPutRecallExpiry(t *testing.T) {
	var ns atomic.Int64
	base := time.Unix(1000, 0)
	clock := func() time.Time { return base.Add(time.Duration(ns.Load())) }
	c := newDirCache(0, clock, 128, true, true, nil)

	var srvSeq atomic.Uint64
	paths := []string{"/s/a", "/s/b", "/s/a/x", "/s/c"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(i+w)%len(paths)]
				switch w % 5 {
				case 0: // lookup responses with current grants
					c.put(p, freshInode(uint32(w)), grant(srvSeq.Load()))
					c.putNeg(p+"/gone", grant(srvSeq.Load()))
				case 1: // reads
					c.get(p)
					c.negHit(p + "/gone")
					c.getList(p)
				case 2: // server-side mutations publishing recalls
					s := srvSeq.Add(1)
					c.observe(s)
					c.applyRecalls(s, false, []wire.Recall{{Seq: s, Kind: wire.RecallRemoved, Path: p}})
				case 3: // lease expiry pressure
					ns.Add(int64(DefaultLease) / 50)
					c.get(p)
				case 4: // own mutations, sometimes suppressed
					if i%2 == 0 {
						s := srvSeq.Add(1)
						c.observe(s)
						c.selfCreated(p, s, 1)
					} else {
						c.selfPatched(p, 0, 0)
					}
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	final := srvSeq.Load()
	c.applyRecalls(final, false, nil)
	c.put("/s/final", freshInode(7), grant(final))
	if _, ok := c.get("/s/final"); !ok {
		t.Fatal("entry granted at the applied watermark not served after stress")
	}
	if d := c.detail(); d.AppliedSeq > d.MaxSeq {
		t.Fatalf("appliedSeq %d ran ahead of maxSeq %d", d.AppliedSeq, d.MaxSeq)
	}
}

// TestCacheMetricsCounters: the Prometheus counters mirror the cache's
// internal tallies and unregister cleanly.
func TestCacheMetricsCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	label := telemetry.L("client", "test")
	met := newCacheMetrics(reg, label)
	var ns atomic.Int64
	clock := func() time.Time { return time.Unix(1000, 0).Add(time.Duration(ns.Load())) }
	c := newDirCache(0, clock, 2, true, true, met)

	c.get("/miss") // miss
	c.put("/a", freshInode(1), grant(1))
	c.get("/a") // hit
	c.putNeg("/n", grant(1))
	c.negHit("/n") // negative hit
	c.putList("/l", nil, grant(1))
	c.getList("/l") // listing hit
	c.put("/b", freshInode(2), grant(1))
	c.put("/c", freshInode(3), grant(1)) // cap 2: evicts
	c.observe(5)
	c.get("/c") // stale miss
	c.applyRecalls(5, false, []wire.Recall{{Seq: 5, Kind: wire.RecallPatched, Path: "/c"}})

	d := c.detail()
	checks := []struct {
		name string
		want uint64
	}{
		{MetricDirCacheHits, d.Hits},
		{MetricDirCacheMisses, d.Misses},
		{MetricDirCacheEvictions, d.Evictions},
		{MetricDirCacheNegHits, d.NegHits},
		{MetricDirCacheListHits, d.ListHits},
		{MetricDirCacheStale, d.StaleMisses},
		{MetricDirCacheRecalls, d.RecallsApplied},
	}
	for _, ck := range checks {
		if got := reg.Counter(ck.name, label).Load(); got != ck.want || ck.want == 0 {
			t.Errorf("%s = %d, want %d (nonzero)", ck.name, got, ck.want)
		}
	}
	met.unregister(reg, label)
	for _, ck := range checks {
		if got := reg.Counter(ck.name, label).Load(); got != 0 {
			t.Errorf("%s = %d after unregister", ck.name, got)
		}
	}
}
