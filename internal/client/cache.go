package client

import (
	"sync"
	"time"

	"locofs/internal/layout"
)

// dirCache is the client directory metadata cache (§3.2.2): it holds only
// directory inodes (never file inodes or dirents), each valid for a lease
// period (30 s by default). A hit saves the DMS round trip on every file
// operation in a cached directory.
//
// The cache is bounded: at most max entries live at once, and on overflow
// the oldest entries are evicted first. Because every entry gets the same
// lease, insertion order equals expiry order, so a simple FIFO of
// insertion records doubles as an expiry queue — no heap needed. Records
// whose entry was re-put or invalidated since are stale and skipped
// lazily.
type dirCache struct {
	mu      sync.RWMutex
	lease   time.Duration
	entries map[string]cacheEntry
	now     func() time.Time

	max  int       // entry cap; <= 0 means unbounded
	fifo []fifoRec // insertion order; stale records skipped lazily
	seq  uint64    // ties entries to their live fifo record

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	inode   layout.DirInode
	expires time.Time
	seq     uint64
}

type fifoRec struct {
	path string
	seq  uint64
}

// DefaultLease is the paper's default client-cache lease.
const DefaultLease = 30 * time.Second

// DefaultCacheEntries bounds the directory cache when the configuration
// leaves the cap zero: enough for a wide working set, small enough that a
// metadata-heavy client cannot grow without limit.
const DefaultCacheEntries = 64 << 10

// MetricDirCacheSize is the gauge reporting a client's live directory-cache
// entry count.
const MetricDirCacheSize = "locofs_client_dircache_entries"

func newDirCache(lease time.Duration, now func() time.Time, maxEntries int) *dirCache {
	if lease <= 0 {
		lease = DefaultLease
	}
	if now == nil {
		now = time.Now
	}
	if maxEntries == 0 {
		maxEntries = DefaultCacheEntries
	}
	return &dirCache{
		lease:   lease,
		entries: make(map[string]cacheEntry),
		now:     now,
		max:     maxEntries,
	}
}

// get returns the cached inode for path if its lease is still valid.
func (c *dirCache) get(path string) (layout.DirInode, bool) {
	c.mu.RLock()
	e, ok := c.entries[path]
	c.mu.RUnlock()
	if !ok || c.now().After(e.expires) {
		c.mu.Lock()
		c.misses++
		if ok { // expired: evict — but only the entry we actually saw.
			// Between dropping the read lock and taking the write lock a
			// concurrent put may have installed a fresh entry under the
			// same path; deleting blindly would evict it and turn a valid
			// lease into a spurious miss for every subsequent get. The seq
			// check deletes only the exact expired entry.
			if cur, still := c.entries[path]; still && cur.seq == e.seq {
				delete(c.entries, path)
			}
		}
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	return e.inode, true
}

// put caches an inode under path with a fresh lease, evicting the oldest
// entries if the cap is exceeded.
func (c *dirCache) put(path string, inode layout.DirInode) {
	c.mu.Lock()
	c.seq++
	c.entries[path] = cacheEntry{inode: inode.Clone(), expires: c.now().Add(c.lease), seq: c.seq}
	c.fifo = append(c.fifo, fifoRec{path: path, seq: c.seq})
	if c.max > 0 {
		for len(c.entries) > c.max && len(c.fifo) > 0 {
			rec := c.fifo[0]
			c.fifo = c.fifo[1:]
			if e, ok := c.entries[rec.path]; ok && e.seq == rec.seq {
				delete(c.entries, rec.path)
				c.evictions++
			}
		}
	}
	// Re-puts and invalidations strand stale fifo records; compact once
	// they dominate, so the queue stays proportional to the live set.
	if len(c.fifo) > 2*len(c.entries)+16 {
		live := c.fifo[:0]
		for _, rec := range c.fifo {
			if e, ok := c.entries[rec.path]; ok && e.seq == rec.seq {
				live = append(live, rec)
			}
		}
		c.fifo = live
	}
	c.mu.Unlock()
}

// invalidate drops path from the cache.
func (c *dirCache) invalidate(path string) {
	c.mu.Lock()
	delete(c.entries, path)
	c.mu.Unlock()
}

// invalidateSubtree drops path and everything beneath it (after a directory
// rename or removal).
func (c *dirCache) invalidateSubtree(path string) {
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	c.mu.Lock()
	for p := range c.entries {
		if p == path || (len(p) >= len(prefix) && p[:len(prefix)] == prefix) {
			delete(c.entries, p)
		}
	}
	c.mu.Unlock()
}

// stats returns hit/miss counts.
func (c *dirCache) stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// evicted returns the number of entries dropped by the size cap.
func (c *dirCache) evicted() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.evictions
}

// size returns the number of cached entries.
func (c *dirCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
