package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"locofs/internal/netsim"
)

func TestKVCostPrice(t *testing.T) {
	k := KVCost{
		Fixed:   10 * time.Microsecond,
		ReadOp:  4 * time.Microsecond,
		WriteOp: 3 * time.Microsecond,
		PatchOp: 1 * time.Microsecond,
		ScanRec: 500 * time.Nanosecond,
		PerKB:   8 * time.Microsecond,
	}
	got := k.Price(2, 1, 3, 4, 2048)
	want := 10*time.Microsecond + // fixed
		8*time.Microsecond + // 2 reads
		3*time.Microsecond + // 1 write
		3*time.Microsecond + // 3 patches
		2*time.Microsecond + // 4 scans
		16*time.Microsecond // 2 KB
	if got != want {
		t.Errorf("Price = %v, want %v", got, want)
	}
	if k.Price(0, 0, 0, 0, 0) != k.Fixed {
		t.Error("zero-activity price != Fixed")
	}
}

// TestCostModelServiceFlowsToClient verifies the full pipeline: KV activity
// on the server becomes ServiceNS, which becomes client virtual time.
func TestCostModelServiceFlowsToClient(t *testing.T) {
	cluster, err := Start(Options{FMSCount: 1, CostModel: &PaperKVCost})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c0 := cl.Cost()
	if err := cl.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	cost := cl.Cost() - c0
	// mkdir does at least: ancestor get + exists get + inode put + dirent
	// append, so its cost must exceed Fixed + 2 reads + 2 writes.
	min := PaperKVCost.Fixed + 2*PaperKVCost.ReadOp + 2*PaperKVCost.WriteOp
	if cost < min {
		t.Errorf("mkdir cost = %v, want >= %v", cost, min)
	}
	if cost > 10*min {
		t.Errorf("mkdir cost = %v — implausibly high for one request", cost)
	}
	// Server busy time must account for the same service.
	if busy := cluster.ServerBusy()[0]; busy < PaperKVCost.Fixed {
		t.Errorf("DMS busy = %v after one mkdir", busy)
	}
}

// TestCostModelDeterministicUnderConcurrency is the property that motivated
// the cost model: virtual costs must not drift when many clients hammer the
// servers concurrently (wall-clock measurement would).
func TestCostModelDeterministicUnderConcurrency(t *testing.T) {
	perOpCost := func(clients int) time.Duration {
		cluster, err := Start(Options{
			FMSCount:  2,
			Link:      netsim.Paper1GbE,
			CostModel: &PaperKVCost,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		setup, _ := cluster.NewClient(ClientConfig{})
		setup.Mkdir("/w", 0o777)
		setup.Close()
		var wg sync.WaitGroup
		costs := make([]time.Duration, clients)
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cl, err := cluster.NewClient(ClientConfig{})
				if err != nil {
					t.Error(err)
					return
				}
				defer cl.Close()
				cl.Create(fmt.Sprintf("/w/warm%d", w), 0o644) // warm cache
				c0 := cl.Cost()
				const ops = 30
				for i := 0; i < ops; i++ {
					if err := cl.Create(fmt.Sprintf("/w/c%d-f%d", w, i), 0o644); err != nil {
						t.Error(err)
						return
					}
				}
				costs[w] = (cl.Cost() - c0) / ops
			}(w)
		}
		wg.Wait()
		var sum time.Duration
		for _, c := range costs {
			sum += c
		}
		return sum / time.Duration(clients)
	}
	solo := perOpCost(1)
	loaded := perOpCost(16)
	// The modeled per-op cost must be stable within a tight band regardless
	// of concurrency (the fixed workload is identical per client).
	ratio := float64(loaded) / float64(solo)
	if ratio > 1.1 || ratio < 0.9 {
		t.Errorf("per-op modeled cost drifted under load: solo %v vs 16 clients %v (%.2fx)",
			solo, loaded, ratio)
	}
}

// TestClusterBlockSizeOption verifies the block-size plumbing used by the
// Fig 12 experiment.
func TestClusterBlockSizeOption(t *testing.T) {
	cluster, err := Start(Options{FMSCount: 1, BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, _ := cluster.NewClient(ClientConfig{})
	defer cl.Close()
	cl.Mkdir("/d", 0o755)
	cl.Create("/d/f", 0o644)
	a, err := cl.StatFile("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if a.BlockSize != 64<<10 {
		t.Errorf("BlockSize = %d, want 64KiB", a.BlockSize)
	}
}

// TestMetadataOpsServed verifies the aggregate op counter.
func TestMetadataOpsServed(t *testing.T) {
	cluster, err := Start(Options{FMSCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, _ := cluster.NewClient(ClientConfig{})
	defer cl.Close()
	cl.Mkdir("/d", 0o755)
	cl.Create("/d/f", 0o644)
	if got := cluster.MetadataOpsServed(); got < 2 {
		t.Errorf("MetadataOpsServed = %d, want >= 2", got)
	}
}
