// Package core assembles LocoFS deployments: a single Directory Metadata
// Server, a configurable number of File Metadata Servers, and object store
// servers, wired to clients over a simulated-latency fabric or real TCP.
// It is the top of the LocoFS stack and the entry point used by examples,
// experiments, and the command-line tools.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"locofs/internal/client"
	"locofs/internal/dms"
	"locofs/internal/dms/partition"
	"locofs/internal/flight"
	"locofs/internal/fms"
	"locofs/internal/fspath"
	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/rpc"
	"locofs/internal/slo"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
	"locofs/internal/wire"
)

// Options configures a cluster.
type Options struct {
	// FMSCount is the number of file metadata servers (>= 1). The paper
	// scales this from 1 to 16.
	FMSCount int
	// OSSCount is the number of object store servers (>= 1).
	OSSCount int
	// Link is the modeled network link (e.g. netsim.Paper1GbE), used for
	// virtual-time latency accounting on every client. The zero value
	// models a zero-latency loopback — the co-located setup of Fig 10.
	// The in-process transport itself always runs at loopback speed; see
	// rpc.Client.SetLink.
	Link netsim.LinkConfig
	// CoupledFileMetadata runs every FMS in coupled-inode mode (LocoFS-CF).
	CoupledFileMetadata bool
	// DMSOnHashStore runs the DMS on a hash store instead of the B+ tree
	// (the Fig 14 "hash" rename mode).
	DMSOnHashStore bool
	// DMSPartitions shards the directory namespace across this many DMS
	// partitions (DESIGN.md §16). Default/0/1 with DMSReplicas <= 1 keeps
	// the single unsharded DMS. Partition 0 is the residual partition
	// (it owns the root); partition i >= 1 owns the proper descendants of
	// DMSCuts[i-1].
	DMSPartitions int
	// DMSCuts lists the cut directories — at least one per partition
	// beyond the first (len >= DMSPartitions-1), assigned round-robin to
	// partitions 1..DMSPartitions-1 in order, so a partition may own
	// several subtrees. A cut directory's own inode stays with its
	// parent's partition; create it like any directory before using its
	// subtree.
	DMSCuts []string
	// DMSReplicas is the replica-group size of each DMS partition
	// (default 1). With more than one, each partition runs a leader and
	// followers behind a replicated op log and FailoverDMS can promote a
	// follower after killing the leader.
	DMSReplicas int
	// DMSLogCap bounds each partition's retained op log (and, through it,
	// the dedup-replay table): the leader prunes entries below the
	// group-wide applied watermark once more than this many are held.
	// 0 = partition.DefaultLogCap.
	DMSLogCap int
	// DMSRepTimeout bounds each replication RPC; a follower that cannot
	// ack within it is excluded from the live fan-out set and must catch
	// up to rejoin. 0 = partition.DefaultRepTimeout.
	DMSRepTimeout time.Duration
	// DMSCatchupEvery, when positive, has follower replicas periodically
	// probe their leader for missed log entries, so a replica excluded
	// while unreachable rejoins on its own. Zero leaves catch-up
	// on-demand (append gaps, map installs, Node.CatchUp).
	DMSCatchupEvery time.Duration
	// DMSDevice/FMSDevice charge virtual storage time per KV op (Fig 14's
	// HDD vs SSD). Zero means RAM (no charge).
	DMSDevice kv.DeviceModel
	// CheckPermissions enables the ancestor ACL walk (on in the paper; the
	// work Fig 13 measures).
	CheckPermissions bool
	// DisableClientCache turns new clients' directory caches off
	// (LocoFS-NC). Individual clients can override via ClientConfig.
	DisableClientCache bool
	// Lease is the client cache lease (default 30 s). It also sets the
	// DMS's granted lease duration, so coherent clients and the server's
	// suppression horizon agree.
	Lease time.Duration
	// DisableLeaseCoherence reverts new clients' directory caches to
	// TTL-only semantics (see client.Config.DisableLeaseCoherence).
	// Individual clients can override via ClientConfig.
	DisableLeaseCoherence bool
	// BlockSize is the object-store block size stamped on new files
	// (default fms.DefaultBlockSize).
	BlockSize uint32
	// CostModel, when non-nil, prices each request's service time from the
	// exact KV work it performed (see KVCost). Experiments pass
	// &PaperKVCost so LocoFS's server-side costs reflect the paper's
	// metadata nodes; when nil (tests), service time is wall-clock
	// measured and unused.
	CostModel *KVCost
	// Tracer receives every server's request spans. Because the cluster is
	// in-process, sharing the same tracer with clients (ClientConfig.Tracer)
	// yields complete client+server span trees in one ring. Nil disables
	// server-side tracing.
	Tracer *trace.Tracer
	// Window configures the rotating telemetry window on every server
	// registry (time-local quantiles, SLO burn). The zero value keeps the
	// telemetry package defaults (6 × 10 s).
	Window telemetry.WindowConfig
	// FlightBuf sizes the cluster's shared flight-recorder journal
	// (0 = flight.DefaultBufEvents). The journal is always on — every
	// server, and every client the cluster dials, emits into one timeline.
	FlightBuf int
	// FlightDir spools anomaly-triggered diagnostic bundles to disk
	// ("" = memory only).
	FlightDir string
	// FlightRules overrides the anomaly rule set (nil = flight.DefaultRules).
	FlightRules []flight.Rule
}

// KVCost prices Kyoto-Cabinet-style storage work on the paper's metadata
// nodes (8-core 2.5 GHz Opteron). A request's modeled service time is
//
//	Fixed + reads×ReadOp + writes×WriteOp + scans×ScanRec + KB-moved×PerKB
//
// computed from exact per-request deltas of the server's kv.Counters. The
// pricing is deterministic and immune to CPU contention on the
// reproduction machine, and it preserves the real cost structure the paper
// exploits: small fixed-length decoupled values cost less per update than
// large coupled ones.
type KVCost struct {
	// Fixed is the per-request protocol/dispatch overhead.
	Fixed time.Duration
	// ReadOp is the cost of one KV point read (the paper: "the latency of
	// a local get operation is 4 µs", §2.2.1).
	ReadOp time.Duration
	// WriteOp is the cost of one KV point write.
	WriteOp time.Duration
	// PatchOp is the cost of an in-place fixed-offset field write — the
	// serialization-free update of §3.3.3, cheaper than a full record
	// write because nothing is re-encoded or re-inserted.
	PatchOp time.Duration
	// ScanRec is the cost per record visited by an ordered scan.
	ScanRec time.Duration
	// PerKB is the (de)serialization/memory cost per KB moved.
	PerKB time.Duration
}

// PaperKVCost is the calibration used by the experiments. With it, one
// LocoFS metadata server saturates near the paper's ~100K create IOPS.
var PaperKVCost = KVCost{
	Fixed:   20 * time.Microsecond,
	ReadOp:  4 * time.Microsecond,
	WriteOp: 3 * time.Microsecond,
	PatchOp: 1500 * time.Nanosecond,
	ScanRec: time.Microsecond,
	PerKB:   10 * time.Microsecond,
}

// Price converts KV-activity deltas into a service time.
func (k KVCost) Price(reads, writes, patches, scans, bytes uint64) time.Duration {
	return k.Fixed +
		time.Duration(reads)*k.ReadOp +
		time.Duration(writes)*k.WriteOp +
		time.Duration(patches)*k.PatchOp +
		time.Duration(scans)*k.ScanRec +
		time.Duration(bytes)*k.PerKB/1024
}

// serviceFunc builds an rpc.ServiceFunc pricing requests against the given
// store's counters. Requests on the server are serialized so per-request
// deltas are exact — harmless, since throughput is modeled analytically.
func (k KVCost) serviceFunc(c *kv.Counters) rpc.ServiceFunc {
	var mu sync.Mutex
	return func(op wire.Op, run func()) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		before := c.Snapshot()
		run()
		after := c.Snapshot()
		return k.Price(after.Gets-before.Gets, after.Writes()-before.Writes(),
			after.Patches-before.Patches, after.Scans-before.Scans,
			after.Bytes()-before.Bytes())
	}
}

func (o Options) withDefaults() Options {
	if o.FMSCount <= 0 {
		o.FMSCount = 1
	}
	if o.OSSCount <= 0 {
		o.OSSCount = 1
	}
	if o.DMSPartitions <= 0 {
		o.DMSPartitions = 1
	}
	if o.DMSReplicas <= 0 {
		o.DMSReplicas = 1
	}
	return o
}

// Cluster is a running LocoFS deployment on an in-process network.
type Cluster struct {
	opts Options
	net  *netsim.Network

	// DMS and DMSStore are the directory metadata server and its store.
	// On a sharded cluster they alias the current leader of partition 0
	// (the residual partition) and are repointed by FailoverDMS.
	DMS      *dms.Server
	DMSStore *kv.Instrumented
	// DMSNodes, on a sharded cluster, holds each partition's live replica
	// nodes leader-first (mirroring the partition map's groups). Tests use
	// it to reach a leader's crash hooks; FailoverDMS trims it.
	DMSNodes [][]*partition.Node
	FMS      []*fms.Server
	OSS      []*objstore.Server

	// Metrics holds one telemetry registry per server (keyed by the
	// server's fabric address: "dms", "fms-0", ..., "oss-0", ...), each
	// base-labeled server=<addr>, recording per-op request counts and
	// service/queue latency histograms.
	Metrics map[string]*telemetry.Registry

	// Flight is the cluster's black-box recorder: one shared event journal
	// every server and cluster-dialed client emits into, plus the anomaly
	// engine and bundle capture over it. Always present; Start does not
	// launch background polling (call Flight.Start, or Flight.Poll from a
	// deterministic test loop).
	Flight *flight.Recorder

	rpcServers []*rpc.Server
	rsByAddr   map[string]*rpc.Server
	ossAddrs   []string

	// mu guards the mutable membership state below. members is the live
	// FMS set (stable ring IDs, never reused); nextFMSID is the next fresh
	// ID an AddFMS will assign. clientRegs tracks the registries of clients
	// this cluster dialed (deduped), so client-side telemetry — dircache
	// counters, breaker transitions, RTT windows — joins the cluster status
	// merge.
	mu         sync.Mutex
	fmsAddrs   []string
	members    []wire.Member
	nextFMSID  int32
	epoch      uint64
	clientRegs []*telemetry.Registry

	// Sharded-DMS state (DESIGN.md §16), guarded by mu after Start.
	// dmsGroups mirrors the current partition map's replica groups
	// (leader first); dmsStores parallels DMSNodes; dmsAllNodes keeps every
	// node ever started so Close can release peer connections of replaced
	// leaders too.
	sharded     bool
	dmsCuts     []wire.PartCut
	dmsGroups   [][]string
	dmsStores   [][]*kv.Instrumented
	dmsAllNodes []*partition.Node
	pmVer       uint64
}

// Start builds and starts a cluster.
func Start(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	c := &Cluster{
		opts:     opts,
		net:      netsim.NewNetwork(netsim.Loopback),
		Metrics:  make(map[string]*telemetry.Registry),
		rsByAddr: make(map[string]*rpc.Server),
	}

	// Black-box flight recorder: one journal shared by every server (and
	// every client this cluster dials), an anomaly engine fed from the
	// cluster-wide SLO merge, and bundle capture. Safe to build before the
	// servers — the SLO feed only runs when Poll/Start is invoked, and by
	// then the status sources exist.
	c.Flight = flight.New(flight.Config{
		Server:  "cluster",
		Journal: flight.NewJournal(opts.FlightBuf),
		Rules:   opts.FlightRules,
		Tracer:  opts.Tracer,
		SLO:     func() []slo.ClassStatus { return c.ClusterStatus().SLO },
		Extra: func() map[string]any {
			c.mu.Lock()
			defer c.mu.Unlock()
			return map[string]any{
				"epoch":   c.epoch,
				"members": append([]wire.Member{}, c.members...),
			}
		},
		Dir: opts.FlightDir,
	})

	// Directory metadata service: one unsharded server, or a partitioned,
	// replicated node set (DESIGN.md §16).
	newDMSStore := func() *kv.Instrumented {
		var base kv.Store
		if opts.DMSOnHashStore {
			base = kv.NewHashStore()
		} else {
			base = kv.NewBTreeStore()
		}
		return kv.Instrument(base, opts.DMSDevice)
	}
	c.sharded = opts.DMSPartitions > 1 || opts.DMSReplicas > 1
	if len(opts.DMSCuts) < opts.DMSPartitions-1 {
		return nil, fmt.Errorf("core: %d DMS partitions need at least %d cut directories, got %d",
			opts.DMSPartitions, opts.DMSPartitions-1, len(opts.DMSCuts))
	}
	if opts.DMSPartitions == 1 && len(opts.DMSCuts) > 0 {
		return nil, fmt.Errorf("core: DMS cuts given but only one partition configured")
	}
	if !c.sharded {
		c.DMSStore = newDMSStore()
		c.DMS = dms.New(dms.Options{
			Store:            c.DMSStore,
			CheckPermissions: opts.CheckPermissions,
			LeaseDur:         opts.Lease,
		})
		c.DMS.SetFlight(c.Flight.Journal(), "dms")
		if err := c.serve("dms", c.DMSStore, c.DMS.Attach); err != nil {
			return nil, err
		}
		c.DMS.RegisterMetrics(c.Metrics["dms"])
	} else {
		for i, d := range opts.DMSCuts {
			cd, err := fspath.Clean(d)
			if err != nil || cd == "/" {
				return nil, fmt.Errorf("core: invalid DMS cut %q", d)
			}
			for _, prev := range c.dmsCuts {
				if prev.Dir == cd {
					return nil, fmt.Errorf("core: duplicate DMS cut %q", cd)
				}
			}
			c.dmsCuts = append(c.dmsCuts, wire.PartCut{Dir: cd, PID: uint32(i%(opts.DMSPartitions-1)) + 1})
		}
		c.dmsGroups = make([][]string, opts.DMSPartitions)
		for pid := range c.dmsGroups {
			for rep := 0; rep < opts.DMSReplicas; rep++ {
				c.dmsGroups[pid] = append(c.dmsGroups[pid], dmsAddr(pid, rep))
			}
		}
		c.pmVer = 1
		pm := &wire.PartMap{Ver: c.pmVer, Cuts: c.dmsCuts, Groups: c.dmsGroups}
		c.DMSNodes = make([][]*partition.Node, opts.DMSPartitions)
		c.dmsStores = make([][]*kv.Instrumented, opts.DMSPartitions)
		for pid := 0; pid < opts.DMSPartitions; pid++ {
			for rep := 0; rep < opts.DMSReplicas; rep++ {
				addr := dmsAddr(pid, rep)
				store := newDMSStore()
				// Replicas of one partition share a ServerID: UUIDs are
				// drawn deterministically from it, so applying the same op
				// log yields byte-identical inodes on every replica. The
				// high bit keeps the IDs clear of the FMS range.
				ds := dms.New(dms.Options{
					Store:            store,
					CheckPermissions: opts.CheckPermissions,
					LeaseDur:         opts.Lease,
					ServerID:         0x80000000 | uint32(pid),
				})
				ds.SetFlight(c.Flight.Journal(), addr)
				node := partition.New(partition.Config{
					PID:          uint32(pid),
					Index:        rep,
					Self:         addr,
					Map:          pm,
					DMS:          ds,
					Dialer:       c.net,
					Journal:      c.Flight.Journal(),
					Source:       addr,
					LogCap:       opts.DMSLogCap,
					RepTimeout:   opts.DMSRepTimeout,
					CatchupEvery: opts.DMSCatchupEvery,
				})
				if err := c.serve(addr, store, node.Attach); err != nil {
					return nil, err
				}
				ds.RegisterMetrics(c.Metrics[addr])
				c.DMSNodes[pid] = append(c.DMSNodes[pid], node)
				c.dmsStores[pid] = append(c.dmsStores[pid], store)
				c.dmsAllNodes = append(c.dmsAllNodes, node)
			}
		}
		c.DMS = c.DMSNodes[0][0].DMS()
		c.DMSStore = c.dmsStores[0][0]
	}
	// The journal is cluster-wide, so its counters are exported exactly once
	// (through the bootstrap DMS registry) to keep SumCounter from
	// double-counting.
	c.Flight.RegisterMetrics(c.Metrics["dms"])

	// File metadata servers.
	for i := 0; i < opts.FMSCount; i++ {
		fstore := kv.Instrument(kv.NewHashStore(), kv.RAM)
		f := fms.New(fms.Options{
			Store:            fstore,
			ServerID:         uint32(i + 1),
			Coupled:          opts.CoupledFileMetadata,
			CheckPermissions: opts.CheckPermissions,
			BlockSize:        opts.BlockSize,
		})
		c.FMS = append(c.FMS, f)
		addr := fmt.Sprintf("fms-%d", i)
		f.SetFlight(c.Flight.Journal(), addr)
		c.fmsAddrs = append(c.fmsAddrs, addr)
		if err := c.serve(addr, fstore, f.Attach); err != nil {
			return nil, err
		}
	}

	// Object store servers.
	for i := 0; i < opts.OSSCount; i++ {
		ostore := kv.Instrument(kv.NewHashStore(), kv.RAM)
		o := objstore.New(ostore)
		c.OSS = append(c.OSS, o)
		addr := fmt.Sprintf("oss-%d", i)
		c.ossAddrs = append(c.ossAddrs, addr)
		if err := c.serve(addr, ostore, o.Attach); err != nil {
			return nil, err
		}
	}

	// Install the initial membership (epoch 1) on every server, making the
	// cluster elasticity-ready: servers stamp the epoch on responses and
	// AddFMS/RemoveFMS can install successors. Ring IDs start as the FMS
	// indices, matching the client's static-config ring exactly.
	for i := 0; i < opts.FMSCount; i++ {
		c.members = append(c.members, wire.Member{ID: int32(i), Addr: c.fmsAddrs[i]})
	}
	c.nextFMSID = int32(opts.FMSCount)
	c.epoch = 1
	m := &wire.Membership{Epoch: c.epoch, FMS: c.members}
	for addr, rs := range c.rsByAddr {
		self := -1
		for _, mm := range c.members {
			if mm.Addr == addr {
				self = int(mm.ID)
			}
		}
		rs.SetMembership(m, self)
	}
	return c, nil
}

// dmsAddr names DMS partition pid's replica rep on the fabric. Partition
// 0's leader keeps the address "dms": it is the bootstrap endpoint clients
// dial first, and the residual partition owning the root — exactly where an
// unsharded cluster's single DMS lives.
func dmsAddr(pid, rep int) string {
	if pid == 0 && rep == 0 {
		return "dms"
	}
	return fmt.Sprintf("dms-p%d-r%d", pid, rep)
}

// serve starts one rpc.Server for a component on the fabric.
func (c *Cluster) serve(addr string, store *kv.Instrumented, attach func(*rpc.Server)) error {
	rs := rpc.NewServer()
	if c.opts.CostModel != nil {
		rs.SetServiceFunc(c.opts.CostModel.serviceFunc(store.Counters()))
	}
	if c.opts.Tracer != nil {
		rs.SetTracer(c.opts.Tracer, addr)
	}
	reg := telemetry.NewRegistry(telemetry.L("server", addr))
	reg.SetWindow(c.opts.Window)
	telemetry.RegisterBuildInfo(reg)
	trace.RegisterMetrics(reg, c.opts.Tracer)
	rs.SetTelemetry(reg)
	rs.SetFlight(c.Flight.Journal(), addr)
	reg.SetRotateHook(flight.WindowRollEmitter(c.Flight.Journal(), addr, 0))
	attach(rs)
	l, err := c.net.Listen(addr)
	if err != nil {
		return fmt.Errorf("core: listen %s: %w", addr, err)
	}
	go rs.Serve(l)
	// AddFMS calls serve while status pollers may be reading these maps.
	c.mu.Lock()
	c.Metrics[addr] = reg
	c.rpcServers = append(c.rpcServers, rs)
	c.rsByAddr[addr] = rs
	c.mu.Unlock()
	return nil
}

// ClientConfig tweaks one client.
type ClientConfig struct {
	UID, GID     uint32
	DisableCache bool
	Lease        time.Duration
	// DisableLeaseCoherence reverts this client's directory cache to
	// TTL-only semantics (see client.Config.DisableLeaseCoherence).
	DisableLeaseCoherence bool
	// DisableNegativeCache turns off negative-entry (ENOENT) caching.
	DisableNegativeCache bool
	// HotEntries / HotLeaseFactor / HotRefreshInterval configure the
	// hot-entry tier (see client.Config); HotEntries 0 disables it.
	HotEntries         int
	HotLeaseFactor     int
	HotRefreshInterval time.Duration
	Now                func() time.Time
	// Metrics receives the client's per-op round-trip telemetry; nil means
	// a private registry (see client.Config.Metrics). A shared registry
	// aggregates a whole client fleet into one snapshot.
	Metrics *telemetry.Registry
	// SlowThreshold enables client-side slow-call logging.
	SlowThreshold time.Duration
	// SerialFanOut disables parallel multi-server fan-out (the benchmark
	// baseline; see client.Config.SerialFanOut).
	SerialFanOut bool
	// DisableBatchRPC disables wire-level request batching (wire.OpBatch).
	DisableBatchRPC bool
	// CacheEntries bounds the client directory cache (0 = default cap,
	// negative = unbounded; see client.Config.CacheEntries).
	CacheEntries int
	// Tracer receives the client's spans (see client.Config.Tracer). Pass
	// the cluster's tracer to get joined client+server trees.
	Tracer *trace.Tracer
	// OpTimeout bounds each RPC attempt (see client.Config.OpTimeout).
	OpTimeout time.Duration
	// Retry governs automatic retries (see client.RetryPolicy; the zero
	// value keeps the legacy one-immediate-retry behavior).
	Retry client.RetryPolicy
	// Breaker configures the per-endpoint circuit breaker (zero = disabled).
	Breaker client.BreakerConfig
}

// NewClient connects a LocoLib client to the cluster.
func (c *Cluster) NewClient(cfg ClientConfig) (*client.Client, error) {
	lease := cfg.Lease
	if lease == 0 {
		lease = c.opts.Lease
	}
	c.mu.Lock()
	fmsAddrs := append([]string{}, c.fmsAddrs...)
	fmsIDs := make([]int, len(c.members))
	for i, m := range c.members {
		fmsIDs[i] = int(m.ID)
	}
	c.mu.Unlock()
	cl, err := client.Dial(client.Config{
		Dialer:                c.net,
		Link:                  c.opts.Link,
		DMSAddr:               "dms",
		DMSSharded:            c.sharded,
		FMSAddrs:              fmsAddrs,
		FMSIDs:                fmsIDs,
		OSSAddrs:              c.ossAddrs,
		DisableCache:          cfg.DisableCache || c.opts.DisableClientCache,
		Lease:                 lease,
		DisableLeaseCoherence: cfg.DisableLeaseCoherence || c.opts.DisableLeaseCoherence,
		DisableNegativeCache:  cfg.DisableNegativeCache,
		HotEntries:            cfg.HotEntries,
		HotLeaseFactor:        cfg.HotLeaseFactor,
		HotRefreshInterval:    cfg.HotRefreshInterval,
		UID:                   cfg.UID,
		GID:                   cfg.GID,
		Now:                   cfg.Now,
		Metrics:               cfg.Metrics,
		SlowThreshold:         cfg.SlowThreshold,
		SerialFanOut:          cfg.SerialFanOut,
		DisableBatchRPC:       cfg.DisableBatchRPC,
		CacheEntries:          cfg.CacheEntries,
		Tracer:                cfg.Tracer,
		OpTimeout:             cfg.OpTimeout,
		Retry:                 cfg.Retry,
		Breaker:               cfg.Breaker,
		Flight:                c.Flight.Journal(),
	})
	if err != nil {
		return nil, err
	}
	// Track the client's registry (deduped — fleets may share one) so
	// dircache/breaker/RTT telemetry joins the cluster status merge.
	c.mu.Lock()
	reg := cl.Metrics()
	found := false
	for _, r := range c.clientRegs {
		if r == reg {
			found = true
			break
		}
	}
	if !found {
		c.clientRegs = append(c.clientRegs, reg)
	}
	c.mu.Unlock()
	return cl, nil
}

// AddFMS grows the cluster by one file metadata server while it serves
// traffic: it starts the server, installs the next membership epoch with
// the migration window open, relocates the ~1/n of keys the grown ring
// places on the newcomer, and closes the window. Clients notice the new
// epoch on their next response and re-route; the namespace stays fully
// readable throughout (dual-read). Returns the coordinator's report.
func (c *Cluster) AddFMS() (*client.RebalanceReport, error) {
	c.mu.Lock()
	id := c.nextFMSID
	c.nextFMSID++
	addr := fmt.Sprintf("fms-%d", id)
	c.mu.Unlock()

	fstore := kv.Instrument(kv.NewHashStore(), kv.RAM)
	f := fms.New(fms.Options{
		Store:            fstore,
		ServerID:         uint32(id + 1),
		Coupled:          c.opts.CoupledFileMetadata,
		CheckPermissions: c.opts.CheckPermissions,
		BlockSize:        c.opts.BlockSize,
	})
	f.SetFlight(c.Flight.Journal(), addr)
	if err := c.serve(addr, fstore, f.Attach); err != nil {
		return nil, err
	}

	admin, err := c.NewClient(ClientConfig{})
	if err != nil {
		return nil, err
	}
	defer admin.Close()
	rep, err := admin.AddFMS(id, addr)
	if err != nil {
		return rep, err
	}
	c.mu.Lock()
	c.FMS = append(c.FMS, f)
	c.fmsAddrs = append(c.fmsAddrs, addr)
	c.members = append(c.members, wire.Member{ID: id, Addr: addr})
	c.epoch = rep.ToEpoch
	c.mu.Unlock()
	return rep, nil
}

// RemoveFMS shrinks the cluster by the most recently listed file metadata
// server, draining every file it holds to the survivors before the window
// closes. The drained server keeps running — in-flight dual-reads may
// still land on it — but owns no keys afterwards.
func (c *Cluster) RemoveFMS() (*client.RebalanceReport, error) {
	c.mu.Lock()
	if len(c.members) <= 1 {
		c.mu.Unlock()
		return nil, fmt.Errorf("core: cannot remove the last FMS")
	}
	victim := c.members[len(c.members)-1]
	c.mu.Unlock()

	admin, err := c.NewClient(ClientConfig{})
	if err != nil {
		return nil, err
	}
	defer admin.Close()
	rep, err := admin.RemoveFMS(victim.ID)
	if err != nil {
		return rep, err
	}
	c.mu.Lock()
	c.members = c.members[:len(c.members)-1]
	for i, a := range c.fmsAddrs {
		if a == victim.Addr {
			c.fmsAddrs = append(c.fmsAddrs[:i], c.fmsAddrs[i+1:]...)
			c.FMS = append(c.FMS[:i], c.FMS[i+1:]...)
			break
		}
	}
	c.epoch = rep.ToEpoch
	c.mu.Unlock()
	return rep, nil
}

// FailoverDMS kills the current leader of DMS partition pid and promotes
// its first surviving follower: the leader's rpc server is shut down (its
// fabric address disappears, so in-flight client calls fail fast and
// re-route), a successor partition map with a bumped version is built, and
// the map is pushed to every live replica of every partition. The promoted
// follower recovers its partition state (replaying un-applied log entries
// and resolving in-flight cross-partition renames) synchronously inside the
// push, so when FailoverDMS returns the partition is serving again. Every
// mutation the dead leader acked survives — acked means logged on all
// non-excluded replicas.
func (c *Cluster) FailoverDMS(pid int) error {
	c.mu.Lock()
	if !c.sharded || pid < 0 || pid >= len(c.dmsGroups) {
		c.mu.Unlock()
		return fmt.Errorf("core: no such DMS partition %d", pid)
	}
	if len(c.dmsGroups[pid]) < 2 {
		c.mu.Unlock()
		return fmt.Errorf("core: DMS partition %d has no follower to promote", pid)
	}
	dead := c.dmsGroups[pid][0]
	deadRS := c.rsByAddr[dead]
	groups := make([][]string, len(c.dmsGroups))
	for i, g := range c.dmsGroups {
		groups[i] = append([]string{}, g...)
	}
	groups[pid] = groups[pid][1:]
	c.pmVer++
	pm := &wire.PartMap{Ver: c.pmVer, Cuts: c.dmsCuts, Groups: groups}
	c.dmsGroups = groups
	c.DMSNodes[pid] = c.DMSNodes[pid][1:]
	c.dmsStores[pid] = c.dmsStores[pid][1:]
	if pid == 0 {
		c.DMS = c.DMSNodes[0][0].DMS()
		c.DMSStore = c.dmsStores[0][0]
	}
	c.mu.Unlock()

	// Kill first: the address must be gone before the successor map is
	// live, or a slow client could keep talking to a deposed leader.
	if deadRS != nil {
		deadRS.Shutdown()
	}

	var firstErr error
	for p := range groups {
		for idx, addr := range groups[p] {
			cl, err := rpc.Dial(c.net, addr)
			if err == nil {
				var st wire.Status
				st, _, err = cl.Call(wire.OpSetPartMap, wire.EncodeSetPartMap(pm, uint32(p), idx))
				cl.Close()
				// ESTALE means the replica already holds this or a newer
				// map — fine.
				if err == nil && st != wire.StatusOK && st != wire.StatusStale {
					err = st.Err()
				}
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("core: push partition map to %s: %w", addr, err)
			}
		}
	}
	return firstErr
}

// Epoch returns the cluster's current membership epoch.
func (c *Cluster) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Network exposes the cluster's in-process fabric, mainly so tests and the
// fault-injection experiment can plant faults on server addresses (see
// netsim.Network.SetFault).
func (c *Cluster) Network() *netsim.Network { return c.net }

// MetadataOpsServed sums completed requests over every metadata server.
func (c *Cluster) MetadataOpsServed() uint64 {
	var n uint64
	for _, rs := range c.rpcServers {
		n += rs.Served.Load()
	}
	return n
}

// DMSOpsServed returns completed requests on the directory metadata service
// alone — the offered load client caching is supposed to shed. On a sharded
// cluster it sums every partition replica (including deposed leaders, whose
// pre-failover traffic still counts).
func (c *Cluster) DMSOpsServed() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for addr, rs := range c.rsByAddr {
		if addr == "dms" || strings.HasPrefix(addr, "dms-p") {
			n += rs.Served.Load()
		}
	}
	return n
}

// DMSBusy returns cumulative service time per DMS server — one entry per
// partition replica on a sharded cluster, in deterministic (address) order.
func (c *Cluster) DMSBusy() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, 4)
	for addr := range c.rsByAddr {
		if addr == "dms" || strings.HasPrefix(addr, "dms-p") {
			addrs = append(addrs, addr)
		}
	}
	sort.Strings(addrs)
	out := make([]time.Duration, 0, len(addrs))
	for _, a := range addrs {
		out = append(out, c.rsByAddr[a].Busy())
	}
	return out
}

// Link returns the modeled link configuration.
func (c *Cluster) Link() netsim.LinkConfig { return c.opts.Link }

// ServerBusy returns per-server cumulative service time, DMS first, then
// each FMS, then each OSS — the inputs to server-bound throughput modeling.
func (c *Cluster) ServerBusy() []time.Duration {
	out := make([]time.Duration, 0, len(c.rpcServers))
	for _, rs := range c.rpcServers {
		out = append(out, rs.Busy())
	}
	return out
}

// Close shuts the cluster down.
func (c *Cluster) Close() {
	c.Flight.Close()
	c.net.Close()
	for _, rs := range c.rpcServers {
		rs.Shutdown()
	}
	for _, n := range c.dmsAllNodes {
		n.Close()
	}
}
