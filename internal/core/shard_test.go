package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"locofs/internal/client"
	"locofs/internal/wire"
)

// startShardedCluster boots a sharded cluster (first cut at /shard) and one
// default client.
func startShardedCluster(t *testing.T, partitions, replicas int) (*Cluster, *client.Client) {
	t.Helper()
	cuts := make([]string, partitions-1)
	for i := range cuts {
		if i == 0 {
			cuts[i] = "/shard"
		} else {
			cuts[i] = fmt.Sprintf("/shard%d", i+1)
		}
	}
	c, err := Start(Options{DMSPartitions: partitions, DMSCuts: cuts, DMSReplicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	fs, err := c.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return c, fs
}

// TestShardedClusterEndToEnd: a 2-partition, 2-replica cluster serves the
// whole namespace — both sides of the cut, listings spanning it, and
// cross-partition directory renames.
func TestShardedClusterEndToEnd(t *testing.T) {
	c, err := Start(Options{DMSPartitions: 2, DMSCuts: []string{"/shard"}, DMSReplicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	if err := fs.Mkdir("/shard", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/local", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/shard/d%d", i), 0o755); err != nil {
			t.Fatalf("mkdir on cut partition: %v", err)
		}
		if err := fs.Create(fmt.Sprintf("/shard/d%d/f", i), 0o644); err != nil {
			t.Fatalf("create on cut partition: %v", err)
		}
	}
	ents, err := fs.Readdir("/shard")
	if err != nil || len(ents) != 8 {
		t.Fatalf("readdir across the cut: %d entries, %v", len(ents), err)
	}
	// The root listing includes the cut directory itself (inode on
	// partition 0, listing containing it too).
	ents, err = fs.Readdir("/")
	if err != nil || len(ents) != 2 {
		t.Fatalf("root readdir: %d entries, %v", len(ents), err)
	}
	// Both DMS partitions served traffic.
	if got := c.DMSOpsServed(); got == 0 {
		t.Fatal("no DMS ops recorded")
	}
	p1 := c.Metrics[dmsAddr(1, 0)]
	if p1 == nil {
		t.Fatal("no registry for partition 1 leader")
	}

	// Cross-partition rename: /local/src (partition 0) → /shard/dst
	// (partition 1), files riding along.
	if err := fs.Mkdir("/local/src", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/local/src/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if moved, err := fs.RenameDir("/local/src", "/shard/dst"); err != nil || moved != 1 {
		t.Fatalf("cross-partition rename: moved=%d err=%v", moved, err)
	}
	if _, err := fs.StatFile("/shard/dst/f"); err != nil {
		t.Fatalf("file after cross-partition rename: %v", err)
	}
	if _, err := fs.StatDir("/local/src"); err == nil {
		t.Fatal("source directory survived its rename")
	}
	// The cut directory is a fixture: removing or renaming it is refused.
	if err := fs.Rmdir("/shard"); err == nil {
		t.Fatal("rmdir of the cut directory succeeded")
	}
	if _, err := fs.RenameDir("/shard", "/elsewhere"); err == nil {
		t.Fatal("rename of the cut directory succeeded")
	}
}

// TestShardedFailoverNoAckedMutationLost kills partition 1's leader in the
// middle of a create workload. Every mutation the cluster acknowledged
// before, during, or after the failover must still be visible afterwards —
// acked means replicated — and the cluster must resume serving.
func TestShardedFailoverNoAckedMutationLost(t *testing.T) {
	c, fs := startShardedCluster(t, 2, 2)

	if err := fs.Mkdir("/shard", 0o755); err != nil {
		t.Fatal(err)
	}
	const total = 40
	var (
		mu    sync.Mutex
		acked []string
	)
	half := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			path := fmt.Sprintf("/shard/w%02d", i)
			if err := fs.Mkdir(path, 0o755); err == nil {
				mu.Lock()
				acked = append(acked, path)
				mu.Unlock()
			}
			if i == total/2 {
				close(half)
			}
		}
	}()
	<-half
	if err := c.FailoverDMS(1); err != nil {
		t.Fatalf("failover: %v", err)
	}
	<-done

	// The cluster must have resumed: new mutations and reads succeed.
	if err := fs.Mkdir("/shard/after", 0o755); err != nil {
		t.Fatalf("mkdir after failover: %v", err)
	}
	// Every acked mutation survived, observed through a fresh client with
	// a cold cache (no stale-view flattery).
	fresh, err := c.NewClient(ClientConfig{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(acked) < total/2 {
		t.Fatalf("only %d/%d creates acked — failover wedged the workload", len(acked), total)
	}
	for _, p := range acked {
		if _, err := fresh.StatDir(p); err != nil {
			t.Errorf("acked mkdir %s lost after failover: %v", p, err)
		}
	}
}

// TestCrossPartitionRenameCrashBeforePrepareDecision: the coordinator dies
// after logging intent on both partitions but before any decision. The
// promoted source leader presumes abort: the source subtree is intact, the
// destination clean and unfrozen, and the rename can simply be retried.
func TestCrossPartitionRenameCrashBeforePrepareDecision(t *testing.T) {
	c, fs := startShardedCluster(t, 2, 2)
	if err := fs.Mkdir("/shard", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/src", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/src/f", 0o644); err != nil {
		t.Fatal(err)
	}

	// /src lives on partition 0, so its leader coordinates.
	c.DMSNodes[0][0].CrashAfterPrepare.Store(true)
	if _, err := fs.RenameDir("/src", "/shard/dst"); err == nil {
		t.Fatal("rename succeeded through a crashing coordinator")
	}
	if err := c.FailoverDMS(0); err != nil {
		t.Fatalf("failover: %v", err)
	}

	// Recovery presumed abort: source intact (with its file), destination
	// absent, nothing orphaned or duplicated.
	if _, err := fs.StatDir("/src"); err != nil {
		t.Fatalf("source lost after aborted rename: %v", err)
	}
	if _, err := fs.StatFile("/src/f"); err != nil {
		t.Fatalf("source file lost after aborted rename: %v", err)
	}
	if _, err := fs.StatDir("/shard/dst"); err == nil {
		t.Fatal("aborted rename left a destination copy")
	}
	ents, err := fs.Readdir("/shard")
	if err != nil || len(ents) != 0 {
		t.Fatalf("destination partition not clean: %d entries, %v", len(ents), err)
	}

	// The subtree is unfrozen: the retried rename completes.
	if moved, err := fs.RenameDir("/src", "/shard/dst"); err != nil || moved != 1 {
		t.Fatalf("retried rename: moved=%d err=%v", moved, err)
	}
	if _, err := fs.StatFile("/shard/dst/f"); err != nil {
		t.Fatalf("file after retried rename: %v", err)
	}
	if _, err := fs.StatDir("/src"); err == nil {
		t.Fatal("retried rename left the source behind (duplicate subtree)")
	}
}

// TestCrossPartitionRenameCrashAfterCommit: the coordinator dies after the
// commit marker replicated on the source group but before telling the
// destination. The promoted source leader re-drives the commit, so the
// rename completes exactly once.
func TestCrossPartitionRenameCrashAfterCommit(t *testing.T) {
	c, fs := startShardedCluster(t, 2, 2)
	if err := fs.Mkdir("/shard", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/src", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/src/f", 0o644); err != nil {
		t.Fatal(err)
	}

	c.DMSNodes[0][0].CrashAfterCommit.Store(true)
	if _, err := fs.RenameDir("/src", "/shard/dst"); err == nil {
		t.Fatal("rename succeeded through a crashing coordinator")
	}
	if err := c.FailoverDMS(0); err != nil {
		t.Fatalf("failover: %v", err)
	}

	// The decision was commit: recovery finished the move. Exactly one
	// copy — destination present, source gone.
	if _, err := fs.StatDir("/shard/dst"); err != nil {
		t.Fatalf("committed rename lost after failover: %v", err)
	}
	if _, err := fs.StatFile("/shard/dst/f"); err != nil {
		t.Fatalf("file lost by re-driven commit: %v", err)
	}
	if _, err := fs.StatDir("/src"); err == nil {
		t.Fatal("committed rename left the source behind (duplicate subtree)")
	}
	ents, err := fs.Readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name == "src" {
			t.Fatal("orphaned source entry in root listing")
		}
	}

	// The destination subtree is unfrozen and writable again.
	if err := fs.Create("/shard/dst/g", 0o644); err != nil {
		t.Fatalf("create under recovered destination: %v", err)
	}
}

// TestShardedWrongPartitionSurfacesAsStale: when routing retries are
// exhausted the wrong-partition refusal surfaces matching ErrStale's class
// (wire.StatusStale under errors.Is) — checked here at the wire layer; the
// public sentinel alias is covered in the top-level errors test.
func TestShardedWrongPartitionSurfacesAsStale(t *testing.T) {
	if !errors.Is(wire.StatusWrongPartition.Err(), wire.StatusStale.Err()) {
		t.Fatal("EWRONGPART does not match ESTALE under errors.Is")
	}
}
