package wire

import "errors"

// OpBatch is a container request: its body is a packed sequence of (op,
// body) sub-requests that the server decodes, dispatches to its regular
// handlers across the worker pool, and answers with one response holding a
// (status, body) pair per sub-request, in sub-request order. Batching lets
// many small sub-requests of one logical operation (paged readdir
// prefetches, block deletes) share one framed message and one network round
// trip. Batches must not nest. The opcode sits in a reserved transport
// range (0xFFxx) well clear of every component's op space.
const OpBatch Op = 0xFF00

// MaxBatchSubs bounds the sub-requests of one batch, protecting servers
// from a tiny frame expanding into unbounded work.
const MaxBatchSubs = 4096

// ErrBatchTooLarge reports a batch exceeding MaxBatchSubs.
var ErrBatchTooLarge = errors.New("wire: batch exceeds maximum sub-requests")

// ErrBatchMalformed reports a batch body that does not decode.
var ErrBatchMalformed = errors.New("wire: malformed batch body")

// SubReq is one sub-request of an OpBatch message.
type SubReq struct {
	Op   Op
	Body []byte
}

// SubResp is one sub-request's outcome inside an OpBatch response. Statuses
// are per-sub-request: one failing sub-request does not disturb its
// siblings.
type SubResp struct {
	Status Status
	Body   []byte
}

// EncodeBatch packs sub-requests into an OpBatch request body:
//
//	U32 count | repeat: U16 op, U32 len, body
func EncodeBatch(subs []SubReq) ([]byte, error) {
	if len(subs) > MaxBatchSubs {
		return nil, ErrBatchTooLarge
	}
	n := 4
	for _, s := range subs {
		n += 2 + 4 + len(s.Body)
	}
	e := &Enc{b: make([]byte, 0, n)}
	e.U32(uint32(len(subs)))
	for _, s := range subs {
		e.U8(uint8(s.Op >> 8)).U8(uint8(s.Op)).Blob(s.Body)
	}
	return e.Bytes(), nil
}

// DecodeBatch unpacks an OpBatch request body.
func DecodeBatch(body []byte) ([]SubReq, error) {
	d := NewDec(body)
	n := d.U32()
	if d.Err() != nil || n > MaxBatchSubs {
		return nil, ErrBatchMalformed
	}
	subs := make([]SubReq, 0, n)
	for i := uint32(0); i < n; i++ {
		op := Op(d.U8())<<8 | Op(d.U8())
		b := d.Blob()
		if d.Err() != nil {
			return nil, ErrBatchMalformed
		}
		subs = append(subs, SubReq{Op: op, Body: b})
	}
	if d.Remaining() != 0 {
		return nil, ErrBatchMalformed
	}
	return subs, nil
}

// EncodeBatchResp packs per-sub-request outcomes into an OpBatch response
// body:
//
//	U32 count | repeat: U16 status, U32 len, body
func EncodeBatchResp(resps []SubResp) []byte {
	n := 4
	for _, r := range resps {
		n += 2 + 4 + len(r.Body)
	}
	e := &Enc{b: make([]byte, 0, n)}
	e.U32(uint32(len(resps)))
	for _, r := range resps {
		e.U8(uint8(r.Status >> 8)).U8(uint8(r.Status)).Blob(r.Body)
	}
	return e.Bytes()
}

// DecodeBatchResp unpacks an OpBatch response body.
func DecodeBatchResp(body []byte) ([]SubResp, error) {
	d := NewDec(body)
	n := d.U32()
	if d.Err() != nil || n > MaxBatchSubs {
		return nil, ErrBatchMalformed
	}
	resps := make([]SubResp, 0, n)
	for i := uint32(0); i < n; i++ {
		st := Status(d.U8())<<8 | Status(d.U8())
		b := d.Blob()
		if d.Err() != nil {
			return nil, ErrBatchMalformed
		}
		resps = append(resps, SubResp{Status: st, Body: b})
	}
	if d.Remaining() != 0 {
		return nil, ErrBatchMalformed
	}
	return resps, nil
}
