package client

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/wire"
)

// Metric names recorded by the client's fault-tolerance layer. Every series
// carries an op label (retry/deadline counters) or a state label (breaker
// transitions).
const (
	// MetricRetries counts retry attempts issued beyond each call's first
	// attempt.
	MetricRetries = "locofs_client_retries_total"
	// MetricDeadlines counts per-attempt deadline expiries.
	MetricDeadlines = "locofs_client_deadline_exceeded_total"
	// MetricBreaker counts circuit-breaker state transitions, labeled
	// state=open|half-open|closed.
	MetricBreaker = "locofs_client_breaker_transitions_total"
	// MetricFastFails counts calls refused immediately because the
	// endpoint's breaker was open.
	MetricFastFails = "locofs_client_breaker_fastfail_total"
)

// RetryPolicy bounds automatic retries of failed call attempts. A retry is
// issued only for attempt-level failures — transport errors, per-attempt
// deadline expiry, or an explicit wire.StatusUnavailable — never for
// application-level statuses like ENOENT. Idempotent operations (see
// wire.Op.Idempotent) are re-executed freely; non-idempotent mutations are
// retried under a per-call request id that the server's dedup window uses
// to suppress double execution, so retries are safe across the whole op
// matrix.
//
// The zero value means DefaultRetry (one immediate retry — the legacy
// transparent-reconnect behavior). Max < 0 disables retries entirely.
type RetryPolicy struct {
	// Max is the number of retry attempts after the first try.
	Max int
	// Base is the first retry's backoff; each subsequent retry doubles it,
	// with full jitter in [d/2, d]. Zero retries immediately.
	Base time.Duration
	// Cap bounds the exponential growth (0 = uncapped).
	Cap time.Duration
}

// DefaultRetry is the policy a zero RetryPolicy resolves to: one immediate
// retry, matching the endpoint's historical redial-once-per-call behavior.
var DefaultRetry = RetryPolicy{Max: 1}

// normalized resolves the zero value and clamps disabled policies.
func (p RetryPolicy) normalized() RetryPolicy {
	if p == (RetryPolicy{}) {
		return DefaultRetry
	}
	if p.Max < 0 {
		p.Max = 0
	}
	return p
}

// backoff returns the jittered delay before retry attempt n (1-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	d := p.Base << (n - 1)
	if d <= 0 || (p.Cap > 0 && d > p.Cap) { // <= 0 guards shift overflow
		d = p.Cap
		if d <= 0 {
			d = p.Base
		}
	}
	// Full jitter over the upper half keeps retry storms from
	// synchronizing while preserving the exponential envelope.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// BreakerConfig configures the per-endpoint circuit breaker. The zero value
// disables it.
type BreakerConfig struct {
	// Threshold is the number of consecutive attempt failures that trips
	// the breaker open. Zero (or negative) disables the breaker.
	Threshold int
	// Cooldown is how long an open breaker refuses calls before allowing a
	// half-open probe. Zero means DefaultBreakerCooldown.
	Cooldown time.Duration
}

// DefaultBreakerCooldown is used when BreakerConfig.Cooldown is zero.
const DefaultBreakerCooldown = time.Second

// breaker is one endpoint's health gate: closed (normal), open (fail fast
// until the cooldown expires), half-open (exactly one probe call in flight;
// its outcome closes or re-opens the circuit). now is injectable for tests.
type breaker struct {
	cfg          BreakerConfig
	now          func() time.Time
	onTransition func(state string) // telemetry hook, may be nil

	mu      sync.Mutex
	open    bool
	until   time.Time // when open, the earliest half-open probe time
	fails   int       // consecutive failures while closed
	probing bool      // a half-open probe is in flight
}

func newBreaker(cfg BreakerConfig, now func() time.Time, onTransition func(string)) *breaker {
	if cfg.Threshold > 0 && cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg, now: now, onTransition: onTransition}
}

func (b *breaker) transition(state string) {
	if b.onTransition != nil {
		b.onTransition(state)
	}
}

// allow reports whether a call may proceed. When the circuit is open and
// cooling down it returns a wire.StatusUnavailable error for the caller to
// fail fast with; when the cooldown has expired it admits a single probe
// (marking the circuit half-open) and keeps refusing everyone else until
// the probe reports.
func (b *breaker) allow() error {
	if b == nil || b.cfg.Threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if b.probing || b.now().Before(b.until) {
		return wire.StatusUnavailable.Err()
	}
	b.probing = true
	b.transition("half-open")
	return nil
}

// report records one attempt's outcome.
func (b *breaker) report(ok bool) {
	if b == nil || b.cfg.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	wasProbe := b.probing
	b.probing = false
	if ok {
		if b.open {
			b.transition("closed")
		}
		b.open = false
		b.fails = 0
		return
	}
	if b.open {
		// A failed half-open probe (or a straggler failure) restarts the
		// cooldown.
		if wasProbe {
			b.transition("open")
		}
		b.until = b.now().Add(b.cfg.Cooldown)
		return
	}
	b.fails++
	if b.fails >= b.cfg.Threshold {
		b.open = true
		b.until = b.now().Add(b.cfg.Cooldown)
		b.transition("open")
	}
}

// resilience is the per-client fault-tolerance configuration shared by
// every endpoint: the per-attempt deadline, the retry policy, the breaker
// configuration, and the mint for dedup request ids.
type resilience struct {
	timeout time.Duration
	retry   RetryPolicy
	breaker BreakerConfig
	now     func() time.Time // breaker clock (tests)

	reqBase uint64
	reqCtr  atomic.Uint64
}

func newResilience(timeout time.Duration, retry RetryPolicy, brk BreakerConfig, now func() time.Time) *resilience {
	base := rand.Uint64() << 24
	for base == 0 {
		base = rand.Uint64() << 24
	}
	return &resilience{
		timeout: timeout,
		retry:   retry.normalized(),
		breaker: brk,
		now:     now,
		reqBase: base,
	}
}

// nextReq mints a request id for one logical call: 40 random bits
// identifying this client (colliding clients would need matching ids inside
// one server's small dedup window) plus a 24-bit sequence. Never zero.
func (r *resilience) nextReq() uint64 {
	return r.reqBase | (r.reqCtr.Add(1) & (1<<24 - 1))
}
