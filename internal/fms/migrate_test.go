package fms

import (
	"fmt"
	"testing"

	"locofs/internal/chash"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

func testModes(t *testing.T, fn func(t *testing.T, coupled bool)) {
	t.Run("decoupled", func(t *testing.T) { fn(t, false) })
	t.Run("coupled", func(t *testing.T) { fn(t, true) })
}

// TestExportMoved: the scan returns exactly the files a grown ring places
// off this server, with metadata intact, and the unaffected files stay.
func TestExportMoved(t *testing.T) {
	testModes(t, func(t *testing.T, coupled bool) {
		s := New(Options{ServerID: 1, Coupled: coupled})
		dir := uuid.New(9, 1)
		// This server is ring id 0 of {0,1,2,3}; place only its share of
		// the keyspace here, as a correctly-routing client would.
		old := chash.NewRing(0, 0, 1, 2, 3)
		next := old.Clone()
		next.Add(4)
		const n = 2000
		placed, want := 0, 0
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("f%04d", i)
			key := FileKey(dir, name)
			if old.Locate(key) != 0 {
				continue
			}
			if _, st := s.Create(dir, name, 0o644, 0, 0); st != wire.StatusOK {
				t.Fatalf("create %d: %v", i, st)
			}
			placed++
			if next.Locate(key) != 0 {
				want++
			}
		}
		moved, total, more := s.ExportMoved(next, 0, 0)
		if total != placed {
			t.Errorf("total = %d, want %d", total, placed)
		}
		if more {
			t.Error("unlimited scan reported more")
		}
		if len(moved) != want {
			t.Errorf("moved %d files, want %d", len(moved), want)
		}
		// A grown ring moves roughly 1/5 of this server's keys; certainly
		// not more than half.
		if want == 0 || want > placed/2 {
			t.Fatalf("test setup degenerate: %d/%d keys moved", want, placed)
		}
		for _, f := range moved {
			if next.Locate(FileKey(f.Dir, f.Name)) == 0 {
				t.Fatalf("exported %q but new ring keeps it here", f.Name)
			}
			if f.Meta == nil || !f.Meta.Access.Valid() || !f.Meta.Content.Valid() {
				t.Fatalf("exported %q with invalid metadata", f.Name)
			}
		}
		// A limited scan pages and reports more.
		if want > 1 {
			part, total2, more2 := s.ExportMoved(next, 0, 1)
			if len(part) != 1 || !more2 || total2 != placed {
				t.Errorf("limited scan: %d files, more=%v, total=%d", len(part), more2, total2)
			}
		}
	})
}

// TestMigrateInstallAndDelete: a moved file installs at the new owner
// (listable there exactly once, even after a replayed install) and the
// conditional delete retires the source copy only while it is unmutated.
func TestMigrateInstallAndDelete(t *testing.T) {
	testModes(t, func(t *testing.T, coupled bool) {
		src := New(Options{ServerID: 1, Coupled: coupled})
		dst := New(Options{ServerID: 2, Coupled: coupled})
		dir := uuid.New(9, 1)
		u, st := src.Create(dir, "victim", 0o640, 7, 8)
		if st != wire.StatusOK {
			t.Fatal(st)
		}
		meta, st := src.Getattr(dir, "victim")
		if st != wire.StatusOK {
			t.Fatal(st)
		}

		if st := dst.MigrateInstall(dir, "victim", meta); st != wire.StatusOK {
			t.Fatalf("install: %v", st)
		}
		got, st := dst.Getattr(dir, "victim")
		if st != wire.StatusOK || got.UUID() != u || got.Access.Mode()&0o777 != 0o640 {
			t.Fatalf("installed meta = %+v st=%v", got, st)
		}
		// Replayed install must not duplicate the dirent.
		if st := dst.MigrateInstall(dir, "victim", meta); st != wire.StatusOK {
			t.Fatalf("re-install: %v", st)
		}
		ents, _, st := dst.ReaddirFiles(dir, "", 100)
		if st != wire.StatusOK || len(ents) != 1 || ents[0].Name != "victim" {
			t.Fatalf("dirents after replayed install = %v (%v)", ents, st)
		}

		// Delete with stale bytes (simulating a post-export mutation at the
		// source) must be refused.
		if st := src.Chmod(dir, "victim", 0o600, 7); st != wire.StatusOK {
			t.Fatal(st)
		}
		deleted, st := src.MigrateDelete(dir, "victim", meta.Access, meta.Content)
		if st != wire.StatusOK || deleted {
			t.Fatalf("stale delete: deleted=%v st=%v — mutation would be lost", deleted, st)
		}
		if _, st := src.Getattr(dir, "victim"); st != wire.StatusOK {
			t.Fatal("mutated source copy gone after refused delete")
		}

		// Re-export (next scan pass) and delete with current bytes.
		meta2, st := src.Getattr(dir, "victim")
		if st != wire.StatusOK {
			t.Fatal(st)
		}
		deleted, st = src.MigrateDelete(dir, "victim", meta2.Access, meta2.Content)
		if st != wire.StatusOK || !deleted {
			t.Fatalf("delete: deleted=%v st=%v", deleted, st)
		}
		if _, st := src.Getattr(dir, "victim"); st != wire.StatusNotFound {
			t.Fatal("source copy survives delete")
		}
		ents, _, st = src.ReaddirFiles(dir, "", 100)
		if st != wire.StatusOK || len(ents) != 0 {
			t.Fatalf("source dirents after delete = %v (%v)", ents, st)
		}
		// A retried delete converges: already gone, not an error.
		deleted, st = src.MigrateDelete(dir, "victim", meta2.Access, meta2.Content)
		if st != wire.StatusOK || deleted {
			t.Fatalf("retried delete: deleted=%v st=%v", deleted, st)
		}
	})
}

// TestMigrateInstallOverwrites: a second install with newer bytes replaces
// the copy (re-export after a source mutation must converge on the newest
// export).
func TestMigrateInstallOverwrites(t *testing.T) {
	testModes(t, func(t *testing.T, coupled bool) {
		src := New(Options{ServerID: 1, Coupled: coupled})
		dst := New(Options{ServerID: 2, Coupled: coupled})
		dir := uuid.New(9, 1)
		if _, st := src.Create(dir, "f", 0o644, 0, 0); st != wire.StatusOK {
			t.Fatal(st)
		}
		m1, _ := src.Getattr(dir, "f")
		if st := dst.MigrateInstall(dir, "f", m1); st != wire.StatusOK {
			t.Fatal(st)
		}
		src.Chmod(dir, "f", 0o755, 0)
		m2, _ := src.Getattr(dir, "f")
		if st := dst.MigrateInstall(dir, "f", m2); st != wire.StatusOK {
			t.Fatal(st)
		}
		got, st := dst.Getattr(dir, "f")
		if st != wire.StatusOK || got.Access.Mode()&0o777 != 0o755 {
			t.Fatalf("overwritten meta mode = %o st=%v", got.Access.Mode()&0o777, st)
		}
	})
}
