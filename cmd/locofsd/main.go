// Command locofsd runs LocoFS server components over real TCP, so an
// actual multi-process cluster can be deployed, plus a small client mode
// for poking at it.
//
// Server roles:
//
//	locofsd -role dms  -listen :7000
//	locofsd -role fms  -listen :7001 -id 1 [-coupled]
//	locofsd -role oss  -listen :7002
//
// Client:
//
//	locofsd -role client -dms host:7000 -fms host:7001,host:7003 -oss host:7002 \
//	        -cmd "mkdir /a; touch /a/f; ls /a; stat /a/f; write /a/f hello; read /a/f; rm /a/f"
//
// The client role also takes fault-tolerance flags: -op-timeout bounds each
// RPC attempt, -retries and -retry-backoff configure automatic retries
// (non-idempotent operations are deduplicated server-side, so retried
// mutations execute at most once), and -breaker-failures/-breaker-cooldown
// arm a per-server circuit breaker that fails calls fast while a server is
// down. For example:
//
//	locofsd -role client ... -op-timeout 200ms -retries 3 -retry-backoff 10ms \
//	        -breaker-failures 5 -breaker-cooldown 2s
//
// Metadata caching: clients keep a lease-coherent directory cache by
// default (positive, negative and readdir-listing entries, kept coherent
// by DMS-granted leases — see DESIGN.md). The DMS side takes -lease-dur to
// size the granted leases; the client side takes -no-coherent-cache to
// fall back to plain TTL caching, -lease to set the TTL for that fallback,
// -no-neg-cache to disable negative (ENOENT) entries, and
// -hot-entries/-hot-factor/-hot-refresh to keep the N hottest directories
// on stretched, background-refreshed leases:
//
//	locofsd -role dms -listen :7000 -lease-dur 30s
//	locofsd -role client ... -hot-entries 64 -hot-factor 4 -hot-refresh 5s
//
// Sharded DMS: the directory namespace can be split into replicated
// subtree partitions (DESIGN.md §16). Every DMS process gets the same
// -dms-groups (partition groups separated by ";", replica addresses
// comma-separated leader-first) and -dms-cuts (cut directories, assigned
// round-robin to partitions 1..N-1), plus its own -partition/-replica
// coordinates; clients add -dms-sharded and dial partition 0's leader as
// the bootstrap -dms. Note the wire-format flag day: sharded-era binaries
// carry a partition-map version in every message header, so servers and
// clients must be built from the same release.
//
// Replication-plane knobs: -dms-log-cap bounds each partition's retained
// op log (the leader truncates entries below the group-wide applied
// watermark once the cap is exceeded; default 4096), and -dms-catchup sets
// how often a follower probes its leader for missed entries, so a replica
// that was excluded after an unreachable spell catches up and rejoins the
// live fan-out set on its own (default 5s; 0 limits catch-up to the
// on-demand triggers: append gaps and partition-map installs).
//
//	locofsd -role dms -listen :7000 -partition 0 -replica 0 \
//	        -dms-groups "h0:7000,h0:7010;h1:7001,h1:7011" -dms-cuts /data
//	locofsd -role dms -listen :7010 -partition 0 -replica 1 -dms-groups ... -dms-cuts /data
//	locofsd -role dms -listen :7001 -partition 1 -replica 0 -dms-groups ... -dms-cuts /data
//	locofsd -role dms -listen :7011 -partition 1 -replica 1 -dms-groups ... -dms-cuts /data
//	locofsd -role client -dms h0:7000 -dms-sharded ...
//
// Online elasticity: the client role doubles as the membership-change
// coordinator. Start the new FMS process first, then grow the ring from
// any client (the namespace stays fully readable while keys migrate):
//
//	locofsd -role fms -listen :7005 -id 4       # new server, fresh ring ID
//	locofsd -role client ... -cmd "addfms 4 host:7005"
//	locofsd -role client ... -cmd "rmfms 4"     # drain it back out
//
// Every role accepts -metrics-addr to expose an admin HTTP endpoint with
// Prometheus-text /metrics (per-op request counts and latency histograms,
// KV engine activity), /debug/vars, /debug/pprof, /debug/traces (span-level
// trace trees, see internal/trace) and /debug/hot (top-K hot metadata keys),
// and -slow to log any request slower than the given threshold with its
// trace id. Span retention is off by default; enable it with
// -trace-sample (keep probability, 1 = every trace) and size the span ring
// with -trace-buf. Slow or failed requests are always retained once
// sampling is on.
//
// SLO monitoring: every role also serves /debug/slo (this process's
// windowed per-op quantiles, burn rates and error budgets, see
// internal/slo) and /debug/cluster (the same merged across this process
// plus every -peers admin endpoint). -window/-window-num size the rotating
// telemetry window behind the time-local quantiles. A standalone health
// check renders the merged table:
//
//	locofsd -role status -peers dms=host:9100,fms0=host:9101,fms1=host:9102
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"locofs/internal/client"
	"locofs/internal/core"
	"locofs/internal/dms"
	"locofs/internal/dms/partition"
	"locofs/internal/flight"
	"locofs/internal/fms"
	"locofs/internal/fspath"
	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/rpc"
	"locofs/internal/slo"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
	"locofs/internal/wire"
)

func main() {
	role := flag.String("role", "", "dms | fms | oss | client")
	listen := flag.String("listen", ":7000", "listen address (server roles)")
	id := flag.Int("id", 1, "server id (fms role; must be unique per FMS)")
	coupled := flag.Bool("coupled", false, "coupled file metadata (fms role)")
	dataDir := flag.String("data", "", "data directory for durable metadata (server roles; empty = in-memory)")
	dmsAddr := flag.String("dms", "", "DMS address (client role)")
	fmsAddrs := flag.String("fms", "", "comma-separated FMS addresses in server-id order (client role)")
	ossAddrs := flag.String("oss", "", "comma-separated OSS addresses (client role)")
	cmds := flag.String("cmd", "", "semicolon-separated commands (client role)")
	opTimeout := flag.Duration("op-timeout", 0, "per-attempt RPC deadline (client role; 0 = unbounded)")
	retries := flag.Int("retries", 0, "max automatic retries per call (client role; 0 = default one reconnect retry, negative = none)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base backoff before the first retry, doubling with jitter (client role)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive failures that trip the per-server circuit breaker (client role; 0 = breaker off)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long a tripped breaker fails fast before probing (client role; 0 = 1s)")
	leaseDur := flag.Duration("lease-dur", 0, "directory lease duration granted to clients (dms role; 0 = default 30s)")
	dmsGroups := flag.String("dms-groups", "", "sharded DMS deployment: semicolon-separated partition groups, each a comma-separated replica address list leader-first (dms role; empty = single unsharded DMS)")
	dmsCuts := flag.String("dms-cuts", "", "comma-separated namespace cut directories, assigned round-robin to partitions 1..N-1 (dms role with -dms-groups)")
	dmsPartition := flag.Int("partition", 0, "this node's partition id (dms role with -dms-groups)")
	dmsReplica := flag.Int("replica", 0, "this node's replica slot in its partition group, 0 = leader (dms role with -dms-groups)")
	dmsSharded := flag.Bool("dms-sharded", false, "route directory operations by partition map fetched from -dms (client role against a -dms-groups deployment)")
	dmsLogCap := flag.Int("dms-log-cap", 0, "retained op-log entries per DMS partition before the leader truncates below the group-wide applied watermark (dms role with -dms-groups; 0 = default 4096)")
	dmsCatchup := flag.Duration("dms-catchup", 5*time.Second, "how often a follower replica probes its leader for missed log entries so an excluded replica rejoins on its own (dms role with -dms-groups; 0 = on-demand only)")
	lease := flag.Duration("lease", 0, "directory cache lease for the TTL-only fallback (client role; 0 = default 30s)")
	noCoherent := flag.Bool("no-coherent-cache", false, "revert the directory cache to TTL-only semantics, no lease coherence (client role)")
	noNegCache := flag.Bool("no-neg-cache", false, "disable negative-entry (ENOENT) caching (client role)")
	hotEntriesN := flag.Int("hot-entries", 0, "hot-entry tier size: keep the top N resolved directories on stretched leases (client role; 0 = off)")
	hotFactor := flag.Int("hot-factor", 0, "lease stretch for hot entries (client role; 0 = default)")
	hotRefresh := flag.Duration("hot-refresh", 0, "hot-entry background refresh period (client role; 0 = default)")
	metricsAddr := flag.String("metrics-addr", "", "admin HTTP address serving /metrics, /debug/vars and /debug/pprof (empty = disabled)")
	slow := flag.Duration("slow", 0, "log requests slower than this threshold with their trace id (0 = disabled)")
	traceSample := flag.Float64("trace-sample", 0, "probability a trace's spans are retained for /debug/traces (0 = tracing off, 1 = all)")
	traceBuf := flag.Int("trace-buf", trace.DefaultBufSpans, "span ring capacity when tracing is on")
	window := flag.Duration("window", 0, "telemetry sub-window width for time-local quantiles and SLO burn (0 = default 10s)")
	windowNum := flag.Int("window-num", 0, "number of telemetry sub-windows merged per snapshot (0 = default 6)")
	peers := flag.String("peers", "", "comma-separated peer admin endpoints (name=http://host:port or bare URL) merged into /debug/cluster and the status role")
	flightBuf := flag.Int("flight-buf", flight.DefaultBufEvents, "flight-recorder event journal capacity (events; served at /debug/events)")
	flightDir := flag.String("flight-dir", "", "directory where anomaly-triggered diagnostic bundles are written (empty = memory only, latest at /debug/bundle)")
	anomalyPoll := flag.Duration("anomaly-poll", 0, "anomaly-engine poll interval (0 = default 2s)")
	flag.Parse()

	// With -data, metadata survives restarts: mutations are WAL-logged and
	// periodically snapshotted (see kv.Persistent).
	durable := func(name string, inner kv.Store) kv.Store {
		if *dataDir == "" {
			return inner
		}
		p, err := kv.OpenPersistent(filepath.Join(*dataDir, name), inner)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locofsd:", err)
			os.Exit(1)
		}
		p.SnapshotEvery = 100000
		return p
	}

	srv := serverFlags{
		metricsAddr: *metricsAddr,
		slow:        *slow,
		tracer:      trace.New(trace.Config{Sample: *traceSample, BufSpans: *traceBuf}),
		window:      telemetry.WindowConfig{Width: *window, Num: *windowNum},
		peers:       parsePeers(*peers),
		flightJ:     flight.NewJournal(*flightBuf),
		flightDir:   *flightDir,
		anomalyPoll: *anomalyPoll,
	}
	switch *role {
	case "dms":
		name := "dms"
		if *dmsGroups != "" {
			name = fmt.Sprintf("dms-p%d-r%d", *dmsPartition, *dmsReplica)
		}
		store := kv.Instrument(durable(name, kv.NewBTreeStore()), kv.RAM)
		opts := dms.Options{Store: store, CheckPermissions: true, LeaseDur: *leaseDur}
		if *dmsGroups != "" {
			// Replicas of one partition must produce byte-identical inodes
			// from log replay, so they share a deterministic ServerID (high
			// bit keeps it out of the FMS id range).
			opts.ServerID = 0x80000000 | uint32(*dmsPartition)
		}
		d := dms.New(opts)
		d.SetFlight(srv.flightJ, name)
		srv.hot = map[string]*trace.TopK{name: d.HotKeys()}
		srv.extraReg = d.RegisterMetrics
		attach := d.Attach
		if *dmsGroups != "" {
			pm, self, err := parsePartMap(*dmsGroups, *dmsCuts, *dmsPartition, *dmsReplica)
			if err != nil {
				fmt.Fprintln(os.Stderr, "locofsd:", err)
				os.Exit(2)
			}
			node := partition.New(partition.Config{
				PID:          uint32(*dmsPartition),
				Index:        *dmsReplica,
				Self:         self,
				Map:          pm,
				DMS:          d,
				Dialer:       netsim.TCPDialer{},
				Journal:      srv.flightJ,
				Source:       name,
				LogCap:       *dmsLogCap,
				CatchupEvery: *dmsCatchup,
			})
			attach = node.Attach
		}
		srv.serve(*listen, name, store, attach)
	case "fms":
		name := fmt.Sprintf("fms-%d", *id)
		store := kv.Instrument(durable(name, kv.NewHashStore()), kv.RAM)
		f := fms.New(fms.Options{Store: store, ServerID: uint32(*id), Coupled: *coupled, CheckPermissions: true})
		f.SetFlight(srv.flightJ, name)
		srv.hot = map[string]*trace.TopK{name: f.HotKeys()}
		srv.serve(*listen, name, store, f.Attach)
	case "oss":
		store := kv.Instrument(durable("oss", kv.NewHashStore()), kv.RAM)
		srv.serve(*listen, "oss", store, objstore.New(store).Attach)
	case "client":
		// Fault-tolerance policy, layered onto the dial as options.
		opts := []client.DialOption{
			client.WithOpTimeout(*opTimeout),
			client.WithRetry(client.RetryPolicy{Max: *retries, Base: *retryBackoff}),
			client.WithBreaker(client.BreakerConfig{Threshold: *breakerFailures, Cooldown: *breakerCooldown}),
		}
		cc := cacheFlags{
			lease:      *lease,
			noCoherent: *noCoherent,
			noNeg:      *noNegCache,
			hotEntries: *hotEntriesN,
			hotFactor:  *hotFactor,
			hotRefresh: *hotRefresh,
			sharded:    *dmsSharded,
		}
		runClient(*dmsAddr, *fmsAddrs, *ossAddrs, *cmds, srv, cc, opts)
	case "status":
		runStatus(srv.peers)
	default:
		fmt.Fprintln(os.Stderr, "locofsd: -role must be dms, fms, oss, client or status")
		flag.Usage()
		os.Exit(2)
	}
}

// serverFlags carries the observability options shared by every role.
type serverFlags struct {
	metricsAddr string
	slow        time.Duration
	tracer      *trace.Tracer          // nil when -trace-sample is 0
	hot         map[string]*trace.TopK // hot-key sketches for /debug/hot
	window      telemetry.WindowConfig
	peers       []peer
	flightJ     *flight.Journal // this process's flight-recorder journal (always on)
	flightDir   string          // where anomaly bundles are spooled ("" = memory only)
	anomalyPoll time.Duration   // anomaly-engine poll interval (0 = default)
	// extraReg, when set, registers role-specific gauges (e.g. DMS lease
	// counters) on the serve registry once it exists.
	extraReg func(*telemetry.Registry)
}

// parsePartMap builds the version-1 partition map every node of a sharded
// deployment starts from: groups is the -dms-groups spec (semicolon-
// separated partitions, comma-separated replica addresses leader-first),
// cuts the -dms-cuts list assigned round-robin to partitions 1..N-1 in
// order — the same convention as the in-process cluster. It returns the map
// and this node's own address (groups[pid][rep]).
func parsePartMap(groups, cuts string, pid, rep int) (*wire.PartMap, string, error) {
	pm := &wire.PartMap{Ver: 1}
	for _, g := range strings.Split(groups, ";") {
		var addrs []string
		for _, a := range strings.Split(g, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, "", fmt.Errorf("-dms-groups: empty partition group in %q", groups)
		}
		pm.Groups = append(pm.Groups, addrs)
	}
	parts := len(pm.Groups)
	var cutList []string
	for _, cd := range strings.Split(cuts, ",") {
		if cd = strings.TrimSpace(cd); cd != "" {
			cutList = append(cutList, cd)
		}
	}
	if parts > 1 && len(cutList) < parts-1 {
		return nil, "", fmt.Errorf("-dms-cuts: %d partitions need at least %d cut directories, got %d", parts, parts-1, len(cutList))
	}
	for i, cd := range cutList {
		clean, err := fspath.Clean(cd)
		if err != nil || clean == "/" {
			return nil, "", fmt.Errorf("-dms-cuts: bad cut directory %q", cd)
		}
		pm.Cuts = append(pm.Cuts, wire.PartCut{Dir: clean, PID: uint32(i%(parts-1)) + 1})
	}
	if pid < 0 || pid >= parts {
		return nil, "", fmt.Errorf("-partition %d out of range for %d groups", pid, parts)
	}
	if rep < 0 || rep >= len(pm.Groups[pid]) {
		return nil, "", fmt.Errorf("-replica %d out of range for partition %d's %d replicas", rep, pid, len(pm.Groups[pid]))
	}
	return pm, pm.Groups[pid][rep], nil
}

// peer is one -peers entry: a display name and its /debug/slo URL.
type peer struct {
	name, url string
}

// parsePeers parses the -peers flag: comma-separated "name=url" pairs or
// bare URLs (then the URL doubles as the name). A bare host:port gains
// http:// and URLs without a path gain /debug/slo.
func parsePeers(s string) []peer {
	var out []peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p := peer{name: part, url: part}
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			p = peer{name: name, url: url}
		}
		if !strings.Contains(p.url, "://") {
			p.url = "http://" + p.url
		}
		if !strings.Contains(strings.TrimPrefix(p.url, "http://"), "/") {
			p.url += "/debug/slo"
		}
		out = append(out, p)
	}
	return out
}

// peerSources converts the -peers list into HTTP status sources.
func (sf serverFlags) peerSources() []core.StatusSource {
	out := make([]core.StatusSource, 0, len(sf.peers))
	for _, p := range sf.peers {
		out = append(out, core.HTTPSource(p.name, p.url, 0))
	}
	return out
}

// hotEntries flattens the role's TopK sketches into status entries.
func hotEntries(hot map[string]*trace.TopK) []slo.HotEntry {
	var out []slo.HotEntry
	for src, tk := range hot {
		if tk == nil {
			continue
		}
		for _, hk := range tk.Top(5) {
			out = append(out, slo.HotEntry{Source: src, Key: hk.Key, Count: hk.Count})
		}
	}
	return out
}

// adminRoutes builds the extra admin endpoints mounted next to /metrics:
// span trees under /debug/traces, heavy-hitter keys under /debug/hot, this
// process's SLO evaluation under /debug/slo, the merged view of this
// process plus every -peers endpoint under /debug/cluster, and the flight
// recorder's /debug/events journal and /debug/bundle diagnostics. All
// endpoints exist even when their feed is empty, so operators can probe
// them to check whether a feature is enabled.
func (sf serverFlags) adminRoutes(local func() *slo.ServerStatus, rec *flight.Recorder) map[string]http.Handler {
	sources := func() []core.StatusSource {
		self := core.StatusSource{
			Name:  "self",
			Fetch: func() (*slo.ServerStatus, error) { return local(), nil },
		}
		return append([]core.StatusSource{self}, sf.peerSources()...)
	}
	routes := map[string]http.Handler{
		"/debug/traces/": trace.TracesHandler(sf.tracer),
		"/debug/hot":     trace.HotHandler(sf.hot),
		"/debug/slo":     slo.StatusHandler(func() any { return local() }),
		"/debug/cluster": slo.StatusHandler(func() any {
			a := &core.Aggregator{Sources: sources}
			if rec != nil {
				a.Anomalies = rec.AnomalyState
			}
			return a.Poll()
		}),
	}
	if rec != nil {
		for p, h := range rec.Routes() {
			routes[p] = h
		}
	}
	return routes
}

// registerKVGauges exports the store's live KV engine counters on reg as
// gauges sampled at scrape time.
func registerKVGauges(reg *telemetry.Registry, store *kv.Instrumented) {
	c := store.Counters()
	sample := func(get func(kv.CountersSnapshot) uint64) func() float64 {
		return func() float64 { return float64(get(c.Snapshot())) }
	}
	reg.GaugeFunc("locofs_kv_ops_total", sample(func(s kv.CountersSnapshot) uint64 { return s.Gets }), telemetry.L("op", "get"))
	reg.GaugeFunc("locofs_kv_ops_total", sample(func(s kv.CountersSnapshot) uint64 { return s.Puts }), telemetry.L("op", "put"))
	reg.GaugeFunc("locofs_kv_ops_total", sample(func(s kv.CountersSnapshot) uint64 { return s.Deletes }), telemetry.L("op", "delete"))
	reg.GaugeFunc("locofs_kv_ops_total", sample(func(s kv.CountersSnapshot) uint64 { return s.Patches }), telemetry.L("op", "patch"))
	reg.GaugeFunc("locofs_kv_ops_total", sample(func(s kv.CountersSnapshot) uint64 { return s.Appends }), telemetry.L("op", "append"))
	reg.GaugeFunc("locofs_kv_ops_total", sample(func(s kv.CountersSnapshot) uint64 { return s.Scans }), telemetry.L("op", "scan"))
	reg.GaugeFunc("locofs_kv_bytes_total", sample(func(s kv.CountersSnapshot) uint64 { return s.BytesRead }), telemetry.L("dir", "read"))
	reg.GaugeFunc("locofs_kv_bytes_total", sample(func(s kv.CountersSnapshot) uint64 { return s.BytesWritten }), telemetry.L("dir", "written"))
}

// serve runs one server role until interrupted.
func (sf serverFlags) serve(addr, name string, store *kv.Instrumented, attach func(*rpc.Server)) {
	l, err := netsim.ListenTCP(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locofsd:", err)
		os.Exit(1)
	}
	rs := rpc.NewServer()
	reg := telemetry.NewRegistry(telemetry.L("server", name))
	reg.SetWindow(sf.window)
	telemetry.RegisterBuildInfo(reg)
	trace.RegisterMetrics(reg, sf.tracer)
	rs.SetTelemetry(reg)
	if sf.slow > 0 {
		rs.SetSlowThreshold(sf.slow)
	}
	if sf.tracer != nil {
		rs.SetTracer(sf.tracer, name)
	}
	registerKVGauges(reg, store)
	if sf.extraReg != nil {
		sf.extraReg(reg)
	}
	slo.NewTracker(reg, slo.ServerObjectives()).Export(reg)
	var rec *flight.Recorder
	local := func() *slo.ServerStatus {
		opts := slo.CollectOptions{
			Server: name,
			Epoch:  rs.Epoch(),
			Hot:    hotEntries(sf.hot),
		}
		if rec != nil {
			opts.Anomalies = rec.AnomalyState()
		}
		return slo.Collect(reg, opts)
	}
	rec = flight.New(flight.Config{
		Server:       name,
		Journal:      sf.flightJ,
		Tracer:       sf.tracer,
		Status:       local,
		Dir:          sf.flightDir,
		PollInterval: sf.anomalyPoll,
	})
	rec.RegisterMetrics(reg)
	reg.SetRotateHook(flight.WindowRollEmitter(sf.flightJ, name, 0))
	rs.SetFlight(sf.flightJ, name)
	if sf.metricsAddr != "" {
		_, bound, err := telemetry.ServeWith(sf.metricsAddr, sf.adminRoutes(local, rec), reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locofsd: metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("locofsd: metrics on http://%s/metrics\n", bound)
	}
	attach(rs)
	go rs.Serve(l)
	rec.Start()
	fmt.Printf("locofsd: serving on %s\n", l.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("locofsd: shutting down")
	rec.Close()
	rs.Shutdown()
}

// runStatus scrapes every -peers endpoint, merges the statuses, and prints
// the cluster-health table — `locofsd -role status -peers dms=host:9100,...`.
func runStatus(peers []peer) {
	if len(peers) == 0 {
		fmt.Fprintln(os.Stderr, "locofsd status: -peers is required (comma-separated name=http://host:port admin endpoints)")
		os.Exit(2)
	}
	var sources []core.StatusSource
	for _, p := range peers {
		sources = append(sources, core.HTTPSource(p.name, p.url, 0))
	}
	cs := (&core.Aggregator{Sources: func() []core.StatusSource { return sources }}).Poll()
	cs.Format(os.Stdout)
	if len(cs.Unreachable) == len(peers) {
		os.Exit(1)
	}
}

// cacheFlags carries the client-role directory-cache knobs (see the flag
// block in main for their meaning).
type cacheFlags struct {
	lease      time.Duration
	noCoherent bool
	noNeg      bool
	hotEntries int
	hotFactor  int
	hotRefresh time.Duration
	sharded    bool // -dms-sharded: route directory ops by partition map
}

// runClient connects to a TCP cluster and executes simple commands.
func runClient(dmsAddr, fmsList, ossList, cmds string, sf serverFlags, cc cacheFlags, opts []client.DialOption) {
	if dmsAddr == "" || fmsList == "" || ossList == "" {
		fmt.Fprintln(os.Stderr, "locofsd client: -dms, -fms and -oss are required")
		os.Exit(2)
	}
	reg := telemetry.NewRegistry(telemetry.L("server", "client"))
	reg.SetWindow(sf.window)
	telemetry.RegisterBuildInfo(reg)
	trace.RegisterMetrics(reg, sf.tracer)
	slo.NewTracker(reg, slo.ClientObjectives()).Export(reg)
	var rec *flight.Recorder
	local := func() *slo.ServerStatus {
		opts := slo.CollectOptions{
			Server:     "client",
			Objectives: slo.ClientObjectives(),
		}
		if rec != nil {
			opts.Anomalies = rec.AnomalyState()
		}
		return slo.Collect(reg, opts)
	}
	rec = flight.New(flight.Config{
		Server:       "client",
		Journal:      sf.flightJ,
		Tracer:       sf.tracer,
		Status:       local,
		Dir:          sf.flightDir,
		PollInterval: sf.anomalyPoll,
	})
	rec.RegisterMetrics(reg)
	reg.SetRotateHook(flight.WindowRollEmitter(sf.flightJ, "client", 0))
	rec.Start()
	defer rec.Close()
	if sf.metricsAddr != "" {
		_, bound, err := telemetry.ServeWith(sf.metricsAddr, sf.adminRoutes(local, rec), reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locofsd client: metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("locofsd client: metrics on http://%s/metrics\n", bound)
	}
	cl, err := client.Dial(client.Config{
		Dialer:                netsim.TCPDialer{},
		DMSAddr:               dmsAddr,
		DMSSharded:            cc.sharded,
		FMSAddrs:              strings.Split(fmsList, ","),
		OSSAddrs:              strings.Split(ossList, ","),
		Metrics:               reg,
		SlowThreshold:         sf.slow,
		Tracer:                sf.tracer,
		Lease:                 cc.lease,
		DisableLeaseCoherence: cc.noCoherent,
		DisableNegativeCache:  cc.noNeg,
		HotEntries:            cc.hotEntries,
		HotLeaseFactor:        cc.hotFactor,
		HotRefreshInterval:    cc.hotRefresh,
		Flight:                sf.flightJ,
	}, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locofsd client:", err)
		os.Exit(1)
	}
	defer cl.Close()

	for _, raw := range strings.Split(cmds, ";") {
		fields := strings.Fields(strings.TrimSpace(raw))
		if len(fields) == 0 {
			continue
		}
		if err := execCmd(cl, fields); err != nil {
			fmt.Fprintf(os.Stderr, "locofsd client: %s: %v\n", strings.Join(fields, " "), err)
			os.Exit(1)
		}
	}
}

func execCmd(cl *client.Client, fields []string) error {
	cmd := fields[0]
	arg := func(i int) string {
		if i < len(fields) {
			return fields[i]
		}
		return ""
	}
	switch cmd {
	case "mkdir":
		return cl.Mkdir(arg(1), 0o755)
	case "rmdir":
		return cl.Rmdir(arg(1))
	case "touch":
		return cl.Create(arg(1), 0o644)
	case "rm":
		return cl.Remove(arg(1))
	case "ls":
		ents, err := cl.Readdir(arg(1))
		if err != nil {
			return err
		}
		for _, e := range ents {
			kind := "f"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %s\n", kind, e.Name)
		}
		return nil
	case "stat":
		a, err := cl.Stat(arg(1))
		if err != nil {
			return err
		}
		fmt.Printf("mode=%o uid=%d gid=%d size=%d uuid=%v dir=%v\n",
			a.Mode, a.UID, a.GID, a.Size, a.UUID, a.IsDir)
		return nil
	case "write":
		f, err := cl.Open(arg(1), true)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.WriteAt([]byte(strings.Join(fields[2:], " ")), 0)
		return err
	case "read":
		f, err := cl.Open(arg(1), false)
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, f.Size())
		n, err := f.ReadAt(buf, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", buf[:n])
		return nil
	case "mv":
		if err := cl.RenameFile(arg(1), arg(2)); err == nil {
			return nil
		}
		_, err := cl.RenameDir(arg(1), arg(2))
		return err
	case "addfms", "rmfms":
		id, err := strconv.Atoi(arg(1))
		if err != nil {
			return fmt.Errorf("%s: ring ID %q: %w", cmd, arg(1), err)
		}
		var rep *client.RebalanceReport
		if cmd == "addfms" {
			if arg(2) == "" {
				return fmt.Errorf("addfms: usage: addfms <ring-id> <addr>")
			}
			rep, err = cl.AddFMS(int32(id), arg(2))
		} else {
			rep, err = cl.RemoveFMS(int32(id))
		}
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d -> %d: moved %d/%d files in %d scan passes\n",
			rep.FromEpoch, rep.ToEpoch, rep.Moved, rep.Total, rep.Passes)
		return nil
	}
	return fmt.Errorf("unknown command %q (mkdir rmdir touch rm ls stat write read mv addfms rmfms)", cmd)
}
