package flight

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"locofs/internal/slo"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
)

func TestRecorderAnomalyTriggersBundle(t *testing.T) {
	clk := newFakeClock()
	j := NewJournal(128)
	j.SetNow(clk.nowNS)
	r := New(Config{
		Server:  "test",
		Journal: j,
		Now:     clk.now,
		Status: func() *slo.ServerStatus {
			return &slo.ServerStatus{Server: "test"}
		},
		Extra: func() map[string]any { return map[string]any{"note": "hello"} },
		Rules: []Rule{{
			Name: "breaker-flap", Kind: RuleEventRate, Event: KindBreaker,
			Count: 3, Window: 10 * time.Second, Cooldown: 30 * time.Second,
		}},
	})
	for i := 0; i < 3; i++ {
		j.Emit(KindBreaker, "client", "", 0, 0, "fms-0 open")
	}
	fired := r.Poll()
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want one", fired)
	}
	if r.Captures() != 1 {
		t.Fatalf("Captures = %d, want 1", r.Captures())
	}
	b := r.LastBundle()
	if b == nil {
		t.Fatal("no bundle after trigger")
	}
	if b.Reason != "breaker-flap" || b.Server != "test" {
		t.Errorf("bundle identity: reason %q server %q", b.Reason, b.Server)
	}
	if got := len(b.EventsOfKind(KindBreaker)); got != 3 {
		t.Errorf("bundle breaker events = %d, want 3", got)
	}
	if len(b.Anomalies) != 1 || b.Anomalies[0].Rule != "breaker-flap" {
		t.Errorf("bundle anomalies = %+v", b.Anomalies)
	}
	if b.Status == nil || b.Status.Server != "test" {
		t.Errorf("bundle status = %+v", b.Status)
	}
	if b.Extra["note"] != "hello" {
		t.Errorf("bundle extra = %+v", b.Extra)
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Error("bundle goroutine profile empty")
	}
	// The capture itself lands in the journal, correlated by kind.
	if j.KindCounts()["bundle"] != 1 || j.KindCounts()["anomaly"] != 1 {
		t.Errorf("journal counts = %v, want one bundle + one anomaly", j.KindCounts())
	}
}

func TestRecorderRateLimitsAnomalyCaptures(t *testing.T) {
	clk := newFakeClock()
	j := NewJournal(128)
	j.SetNow(clk.nowNS)
	// Two rules so the second trigger is not cooldown-suppressed — only the
	// bundle gap should hold it back.
	r := New(Config{
		Server:  "test",
		Journal: j,
		Now:     clk.now,
		Rules: []Rule{
			{Name: "a", Kind: RuleEventRate, Event: KindBreaker, Count: 1, Window: time.Hour},
			{Name: "b", Kind: RuleEventRate, Event: KindLeaseRecall, Count: 1, Window: time.Hour},
		},
		BundleGap: 10 * time.Second,
	})
	j.Emit(KindBreaker, "client", "", 0, 0, "open")
	r.Poll()
	if r.Captures() != 1 {
		t.Fatalf("Captures after first trigger = %d, want 1", r.Captures())
	}
	// Rule b fires 1s later: inside the gap, no second bundle.
	clk.advance(time.Second)
	j.Emit(KindLeaseRecall, "dms", "", 0, 1, "/d")
	fired := r.Poll()
	if len(fired) != 1 || fired[0].Rule != "b" {
		t.Fatalf("fired = %v, want rule b", fired)
	}
	if r.Captures() != 1 {
		t.Fatalf("Captures inside gap = %d, want still 1", r.Captures())
	}
	// Manual capture is never rate-limited.
	if b := r.Capture("operator"); b == nil || b.Reason != "operator" {
		t.Fatalf("manual capture = %+v", b)
	}
	if r.Captures() != 2 {
		t.Fatalf("Captures after manual = %d, want 2", r.Captures())
	}
}

func TestRecorderSpoolsBundlesToDisk(t *testing.T) {
	dir := t.TempDir()
	j := NewJournal(16)
	r := New(Config{Server: "test", Journal: j, Dir: dir})
	j.Emit(KindEpoch, "dms", "", 0, 2, "")
	b := r.Capture("manual")
	if b.File == "" {
		t.Fatal("bundle not spooled: File empty")
	}
	data, err := os.ReadFile(b.File)
	if err != nil {
		t.Fatal(err)
	}
	var round Bundle
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("spooled bundle not valid JSON: %v", err)
	}
	if round.Server != "test" || round.Reason != "manual" {
		t.Errorf("round-tripped bundle = %+v", round)
	}
	if filepath.Dir(b.File) != dir {
		t.Errorf("bundle spooled to %s, want under %s", b.File, dir)
	}
}

func TestRecorderBoundsBundleRetention(t *testing.T) {
	j := NewJournal(16)
	r := New(Config{Server: "test", Journal: j, MaxBundles: 2})
	for i := 0; i < 5; i++ {
		r.Capture("manual")
	}
	if got := len(r.Bundles()); got != 2 {
		t.Fatalf("retained bundles = %d, want 2", got)
	}
	if r.Captures() != 5 {
		t.Fatalf("Captures = %d, want 5", r.Captures())
	}
}

func TestRecorderBundleKeepsErrorSpans(t *testing.T) {
	tr := trace.New(trace.Config{Sample: 1, BufSpans: 32})
	sp := tr.StartSpan(1, 0, "stat", "client")
	sp.SetStatus("EIO")
	sp.Finish()
	ok := tr.StartSpan(2, 0, "stat", "client")
	ok.Finish()
	j := NewJournal(16)
	r := New(Config{Server: "test", Journal: j, Tracer: tr})
	b := r.Capture("manual")
	errSpans := b.ErrorSpans()
	if len(errSpans) != 1 || errSpans[0].Status != "EIO" {
		t.Fatalf("error spans = %+v, want the one EIO span", errSpans)
	}
	if len(b.Spans) < 2 {
		t.Fatalf("bundle spans = %d, want both", len(b.Spans))
	}
}

func TestRecorderRegisterMetrics(t *testing.T) {
	j := NewJournal(16)
	r := New(Config{Server: "test", Journal: j, Rules: []Rule{
		{Name: "a", Kind: RuleEventRate, Event: KindBreaker, Count: 1, Window: time.Hour},
	}})
	reg := telemetry.NewRegistry()
	r.RegisterMetrics(reg)
	j.Emit(KindBreaker, "client", "", 0, 0, "open")
	r.Poll()
	vals := map[string]float64{}
	for _, m := range reg.Snapshot().Metrics {
		if m.Labels == "" {
			vals[m.Name] = m.Value
		}
	}
	if vals[MetricAnomalies] != 1 {
		t.Errorf("%s = %v, want 1", MetricAnomalies, vals[MetricAnomalies])
	}
	if vals[MetricBundles] != 1 {
		t.Errorf("%s = %v, want 1", MetricBundles, vals[MetricBundles])
	}
}

func TestWindowRollEmitterCoalesces(t *testing.T) {
	j := NewJournal(16)
	hook := WindowRollEmitter(j, "dms", time.Hour)
	for i := 0; i < 10; i++ {
		hook("locofs_rpc_service_seconds", 1)
	}
	if got := j.KindCounts()["window_roll"]; got != 1 {
		t.Fatalf("window_roll events = %d, want 1 (coalesced)", got)
	}
}

func TestRecorderStartCloseIdempotent(t *testing.T) {
	r := New(Config{Server: "test", PollInterval: time.Millisecond})
	r.Start()
	r.Start()
	r.Close()
	r.Close()
}
