package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"locofs/internal/slo"
	"locofs/internal/trace"
)

// Bundle capture defaults.
const (
	DefaultBundleEvents = 512
	DefaultBundleSpans  = 256
)

// BundleSpan is one retained span in a bundle, a flattened copy of
// trace.Span with ids in 0x-hex (matching /debug/traces and the journal).
type BundleSpan struct {
	Trace       string   `json:"trace"`
	Span        string   `json:"span"`
	Parent      string   `json:"parent,omitempty"`
	Name        string   `json:"name"`
	Server      string   `json:"server,omitempty"`
	Status      string   `json:"status,omitempty"`
	Sub         int      `json:"sub,omitempty"`
	StartNS     int64    `json:"start_ns"`
	DurNS       int64    `json:"dur_ns"`
	Annotations []string `json:"annotations,omitempty"`
}

// Bundle is one one-shot diagnostic capture: everything an engineer (or a
// later control loop) needs to reconstruct what the process was doing when
// an anomaly fired, frozen at capture time.
type Bundle struct {
	Server       string             `json:"server"`
	Reason       string             `json:"reason"`
	CapturedAtNS int64              `json:"captured_at_ns"`
	JournalSeq   uint64             `json:"journal_seq"`
	Anomalies    []slo.AnomalyState `json:"anomalies,omitempty"`
	Events       []Event            `json:"events,omitempty"`
	Spans        []BundleSpan       `json:"spans,omitempty"`
	Status       *slo.ServerStatus  `json:"status,omitempty"`
	// Extra carries component-specific sections keyed by name (e.g. a
	// client's cache detail, the cluster's membership map).
	Extra      map[string]any `json:"extra,omitempty"`
	Goroutines string         `json:"goroutines,omitempty"` // text profile, debug=1
	Heap       string         `json:"heap,omitempty"`       // text profile, debug=1
	// File is where the bundle was spooled on disk ("" = memory only).
	File string `json:"file,omitempty"`
}

// CaptureConfig is everything Capture reads. All fields are optional; an
// empty config yields a bundle holding only profiles and timestamps.
type CaptureConfig struct {
	Server    string
	Journal   *Journal
	Tracer    *trace.Tracer
	Status    func() *slo.ServerStatus
	Anomalies func() []slo.AnomalyState
	Extra     func() map[string]any
	MaxEvents int // journal tail length (<= 0 = DefaultBundleEvents)
	MaxSpans  int // span budget (<= 0 = DefaultBundleSpans)
	NowNS     func() int64
}

// Capture freezes a diagnostic bundle. Cold path by design: it snapshots
// the journal and span ring, evaluates the status fetch, and renders the
// goroutine and heap profiles (text form, debug=1).
func Capture(cfg CaptureConfig, reason string) *Bundle {
	nowNS := cfg.NowNS
	if nowNS == nil {
		nowNS = func() int64 { return time.Now().UnixNano() }
	}
	maxEv := cfg.MaxEvents
	if maxEv <= 0 {
		maxEv = DefaultBundleEvents
	}
	maxSp := cfg.MaxSpans
	if maxSp <= 0 {
		maxSp = DefaultBundleSpans
	}
	b := &Bundle{
		Server:       cfg.Server,
		Reason:       reason,
		CapturedAtNS: nowNS(),
		JournalSeq:   cfg.Journal.Seq(),
		Events:       cfg.Journal.Recent(maxEv),
		Spans:        selectSpans(cfg.Tracer, maxSp),
	}
	if cfg.Status != nil {
		b.Status = cfg.Status()
	}
	if cfg.Anomalies != nil {
		b.Anomalies = cfg.Anomalies()
	}
	if cfg.Extra != nil {
		b.Extra = cfg.Extra()
	}
	var buf bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&buf, 1)
		b.Goroutines = buf.String()
	}
	buf.Reset()
	if p := pprof.Lookup("heap"); p != nil {
		_ = p.WriteTo(&buf, 1)
		b.Heap = buf.String()
	}
	return b
}

// selectSpans picks the bundle's span set from the ring: every errored
// (force-kept) span is guaranteed a slot first — those explain the failing
// ops — then the newest remaining spans fill the budget. Output is ordered
// by start time.
func selectSpans(t *trace.Tracer, max int) []BundleSpan {
	spans := t.Spans() // oldest first
	if len(spans) == 0 {
		return nil
	}
	picked := make([]*trace.Span, 0, max)
	for i := len(spans) - 1; i >= 0 && len(picked) < max; i-- {
		if spans[i].Status != "" {
			picked = append(picked, spans[i])
		}
	}
	for i := len(spans) - 1; i >= 0 && len(picked) < max; i-- {
		if spans[i].Status == "" {
			picked = append(picked, spans[i])
		}
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i].Start.Before(picked[j].Start) })
	out := make([]BundleSpan, 0, len(picked))
	for _, sp := range picked {
		bs := BundleSpan{
			Trace:       fmt.Sprintf("%#x", sp.TraceID),
			Span:        fmt.Sprintf("%#x", sp.SpanID),
			Name:        sp.Name,
			Server:      sp.Server,
			Status:      sp.Status,
			Sub:         sp.Sub,
			StartNS:     sp.Start.UnixNano(),
			DurNS:       int64(sp.Dur),
			Annotations: sp.Annotations,
		}
		if sp.Parent != 0 {
			bs.Parent = fmt.Sprintf("%#x", sp.Parent)
		}
		out = append(out, bs)
	}
	return out
}

// ErrorSpans returns the bundle's spans carrying a non-OK status.
func (b *Bundle) ErrorSpans() []BundleSpan {
	var out []BundleSpan
	for _, sp := range b.Spans {
		if sp.Status != "" {
			out = append(out, sp)
		}
	}
	return out
}

// EventsOfKind returns the bundle's events of one kind.
func (b *Bundle) EventsOfKind(k Kind) []Event {
	var out []Event
	for _, ev := range b.Events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// WriteFile spools the bundle as indented JSON under dir, creating the
// directory as needed, and records the path in b.File. The filename embeds
// the capture timestamp and reason: bundle-<unixnano>-<reason>.json.
func (b *Bundle) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("bundle-%d-%s.json", b.CapturedAtNS, sanitizeReason(b.Reason))
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	b.File = path
	return path, nil
}

// sanitizeReason maps a rule name / reason to a filename-safe slug.
func sanitizeReason(s string) string {
	if s == "" {
		return "manual"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}
