// Package lustrefs models Lustre 2.9 with DNE (Distributed NamespacE) as
// compared in the paper, in both configurations:
//
//   - DNE1 ("Lustre D1"): the namespace is divided manually — each
//     top-level subtree is pinned to one MDT. Operations inside a subtree
//     hit one MDT but pay Lustre's lock/lookup/execute round-trip pattern;
//     creating a remote directory (a top-level dir whose parent lives on
//     MDT0) is a cross-MDT transaction.
//   - DNE2 ("Lustre D2"): directories are striped — the files of one
//     directory are hashed across all MDTs. File creates touch both the
//     directory's master MDT and the stripe MDT; readdir/rmdir must visit
//     every stripe.
//
// Preserved behaviors: the multi-round-trip RPC pattern per operation
// (LDLM lock + intent + execute) giving the ~4-6x-of-LocoFS latency of
// Fig 6, good mkdir scaling with MDT count (each subtree/stripe is an
// independent server — the one axis where Lustre beats LocoFS, §4.2.2),
// and moderate per-request software cost (ldiskfs path, Fig 10).
package lustrefs

import (
	"time"

	"locofs/internal/baseline/common"
	"locofs/internal/fsapi"
	"locofs/internal/fspath"
	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// Profile is the Lustre MDT software model.
var Profile = common.Profile{
	Name:         "lustre",
	ReadService:  40 * time.Microsecond,
	WriteService: 90 * time.Microsecond,
	Workers:      8,
}

// Variant selects DNE1 or DNE2 behavior.
type Variant int

// The two DNE configurations evaluated in the paper.
const (
	DNE1 Variant = 1
	DNE2 Variant = 2
)

// Entry records, one per file/dir, on the owning MDT.
const kEntry = "E:"

// System is a running Lustre-model deployment.
type System struct {
	cluster *common.Cluster
	network *netsim.Network
	variant Variant
	link    netsim.LinkConfig
}

// Start launches n MDTs with the given DNE variant.
func Start(network *netsim.Network, n int, variant Variant, link netsim.LinkConfig) (*System, error) {
	profile := Profile
	if variant == DNE2 {
		profile.Name = "lustre2"
	}
	cl, err := common.StartCluster(network, n, profile, func() kv.Store {
		// Ordered store: real metadata servers index directory entries, so
		// a readdir/emptiness check costs O(result), not a full scan.
		return kv.NewBTreeStore()
	})
	if err != nil {
		return nil, err
	}
	return &System{cluster: cl, network: network, variant: variant, link: link}, nil
}

// Close shuts the system down.
func (s *System) Close() { s.cluster.Close() }

// Client is one Lustre client.
type Client struct {
	conn    *common.Conn
	n       int
	variant Variant
}

// NewClient connects a client.
func (s *System) NewClient() (*Client, error) {
	conn, err := common.DialCluster(s.network, s.cluster.Addrs, s.link)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, n: len(s.cluster.Addrs), variant: s.variant}, nil
}

// Trips returns total round trips issued.
func (c *Client) Trips() uint64 { return c.conn.Trips() }

// Cost returns the client's cumulative modeled time.
func (c *Client) Cost() time.Duration { return c.conn.Cost() }

// Cluster exposes the underlying servers (experiments read busy times).
func (s *System) Cluster() *common.Cluster { return s.cluster }

// Close implements fsapi.FS.
func (c *Client) Close() error { return c.conn.Close() }

// mdtOfDir returns the MDT owning directory p's contents. DNE1 divides the
// namespace manually — modeled as two-component subtree granularity. DNE2
// stripes directories themselves across MDTs by path hash. The root lives
// on MDT 0.
func (c *Client) mdtOfDir(p string) int {
	if p == "/" {
		return 0
	}
	if c.variant == DNE2 {
		return common.HashServer(p, c.n)
	}
	return common.HashServer(common.SubtreeKey(p, 2), c.n)
}

// mdtOfEntry returns the MDT holding the entry record for p: entries are
// contents of the parent directory.
func (c *Client) mdtOfEntry(p string) int {
	if c.variant == DNE2 {
		return common.HashServer(p, c.n)
	}
	parent, _ := fspath.Split(p)
	return c.mdtOfDir(parent)
}

// mdtOfFile returns the MDT holding a file's inode: with DNE1 it is the
// directory's MDT; with DNE2 files stripe across all MDTs by name hash.
func (c *Client) mdtOfFile(p string) int {
	if c.variant == DNE2 {
		return common.HashServer(p, c.n)
	}
	parent, _ := fspath.Split(p)
	return c.mdtOfDir(parent)
}

func entryKey(p string) []byte { return append([]byte(kEntry), p...) }

// lockLookup models the LDLM enqueue + intent lookup round trip that
// precedes every Lustre metadata mutation.
func (c *Client) lockLookup(mdt int, dir string) error {
	ok, err := c.conn.Exists(mdt, entryKey(dir))
	if err != nil {
		return err
	}
	if !ok && dir != "/" {
		return wire.StatusNotFound.Err()
	}
	return nil
}

// Mkdir implements fsapi.FS.
func (c *Client) Mkdir(path string, mode uint32) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, name := fspath.Split(p)
	if name == "" {
		return wire.StatusExist.Err()
	}
	entryMDT := c.mdtOfEntry(p)
	dirMDT := c.mdtOfDir(p)
	// Lock + lookup on the MDT holding the parent's entry.
	if err := c.lockLookup(c.mdtOfEntry(parent), parent); err != nil {
		return err
	}
	// Create the directory entry where the parent's contents live.
	st, err := c.conn.CreateX(entryMDT, entryKey(p), []byte{1})
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	// Cross-MDT ("remote") directory: the directory's contents will live on
	// another MDT, which records the link — the DNE remote-dir transaction.
	if entryMDT != dirMDT {
		if st, err := c.conn.Put(dirMDT, []byte("L:"+p), nil); err != nil || st != wire.StatusOK {
			if err != nil {
				return err
			}
			return st.Err()
		}
	}
	// Post-op attribute flush (the setattr piggyback).
	st, err = c.conn.Put(entryMDT, []byte("A:"+p), []byte{1})
	if err != nil {
		return err
	}
	return st.Err()
}

// Create implements fsapi.FS. DNE1: lock, create, layout set on the
// directory's MDT. DNE2: lock on the master MDT, create + layout on the
// stripe MDT.
func (c *Client) Create(path string, mode uint32) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, name := fspath.Split(p)
	if name == "" {
		return wire.StatusInval.Err()
	}
	masterMDT := c.mdtOfDir(parent)
	fileMDT := c.mdtOfFile(p)
	if err := c.lockLookup(c.mdtOfEntry(parent), parent); err != nil {
		return err
	}
	st, err := c.conn.CreateX(fileMDT, entryKey(p), []byte{0})
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	// Layout (LOV EA) write.
	if st, err := c.conn.Put(fileMDT, []byte("A:"+p), []byte{1}); err != nil || st != wire.StatusOK {
		if err != nil {
			return err
		}
		return st.Err()
	}
	// DNE2 cross-MDT creates also update the master's shard index.
	if c.variant == DNE2 && fileMDT != masterMDT {
		if st, err := c.conn.Put(masterMDT, []byte("S:"+p), nil); err != nil || st != wire.StatusOK {
			if err != nil {
				return err
			}
			return st.Err()
		}
	}
	return nil
}

// StatFile implements fsapi.FS: lock + getattr on the file's MDT.
func (c *Client) StatFile(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	mdt := c.mdtOfFile(p)
	ok, err := c.conn.Exists(mdt, entryKey(p))
	if err != nil {
		return err
	}
	if !ok {
		return wire.StatusNotFound.Err()
	}
	_, _, err = c.conn.Get(mdt, []byte("A:"+p))
	return err
}

// StatDir implements fsapi.FS.
func (c *Client) StatDir(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	if p == "/" {
		return nil
	}
	mdt := c.mdtOfEntry(p)
	ok, err := c.conn.Exists(mdt, entryKey(p))
	if err != nil {
		return err
	}
	if !ok {
		return wire.StatusNotFound.Err()
	}
	_, _, err = c.conn.Get(mdt, []byte("A:"+p))
	return err
}

// Remove implements fsapi.FS.
func (c *Client) Remove(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, _ := fspath.Split(p)
	masterMDT := c.mdtOfDir(parent)
	fileMDT := c.mdtOfFile(p)
	if err := c.lockLookup(c.mdtOfEntry(parent), parent); err != nil {
		return err
	}
	st, err := c.conn.Del(fileMDT, entryKey(p))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	c.conn.Del(fileMDT, []byte("A:"+p))
	if c.variant == DNE2 && fileMDT != masterMDT {
		c.conn.Del(masterMDT, []byte("S:"+p))
	}
	return nil
}

// Readdir implements fsapi.FS. DNE1: one MDT holds the whole directory.
// DNE2: entries stripe across every MDT.
func (c *Client) Readdir(path string) (int, error) {
	p, err := fspath.Clean(path)
	if err != nil {
		return 0, wire.StatusInval.Err()
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	count := func(mdt int) (int, error) {
		names, err := c.conn.ListPrefix(mdt, entryKey(prefix))
		if err != nil {
			return 0, err
		}
		n := 0
		for _, nm := range names {
			if fspath.ValidName(nm) {
				n++
			}
		}
		return n, nil
	}
	if c.variant == DNE1 && p != "/" {
		return count(c.mdtOfDir(p))
	}
	total := 0
	for i := 0; i < c.n; i++ {
		n, err := count(i)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Rmdir implements fsapi.FS.
func (c *Client) Rmdir(path string) error {
	p, err := fspath.Clean(path)
	if err != nil || p == "/" {
		return wire.StatusInval.Err()
	}
	mdts := []int{c.mdtOfDir(p)}
	if c.variant == DNE2 {
		mdts = mdts[:0]
		for i := 0; i < c.n; i++ {
			mdts = append(mdts, i)
		}
	}
	for _, m := range mdts {
		cnt, err := c.conn.CountPrefix(m, entryKey(p+"/"))
		if err != nil {
			return err
		}
		if cnt > 0 {
			return wire.StatusNotEmpty.Err()
		}
	}
	entryMDT := c.mdtOfEntry(p)
	st, err := c.conn.Del(entryMDT, entryKey(p))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	c.conn.Del(entryMDT, []byte("A:"+p))
	if dm := c.mdtOfDir(p); dm != entryMDT {
		c.conn.Del(dm, []byte("L:"+p))
	}
	return nil
}

// Chmod implements fsapi.ExtendedFS: lock + setattr RMW on the MDT.
func (c *Client) Chmod(path string, mode uint32) error { return c.rmwAttr(path) }

// Chown implements fsapi.ExtendedFS.
func (c *Client) Chown(path string, uid, gid uint32) error { return c.rmwAttr(path) }

// Truncate implements fsapi.ExtendedFS.
func (c *Client) Truncate(path string, size uint64) error { return c.rmwAttr(path) }

// Access implements fsapi.ExtendedFS.
func (c *Client) Access(path string) error { return c.StatFile(path) }

func (c *Client) rmwAttr(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	mdt := c.mdtOfFile(p)
	ok, err := c.conn.Exists(mdt, entryKey(p))
	if err != nil {
		return err
	}
	if !ok {
		return wire.StatusNotFound.Err()
	}
	if _, _, err := c.conn.Get(mdt, []byte("A:"+p)); err != nil {
		return err
	}
	st, err := c.conn.Put(mdt, []byte("A:"+p), []byte{2})
	if err != nil {
		return err
	}
	return st.Err()
}

var _ fsapi.ExtendedFS = (*Client)(nil)
