package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMsgRoundTrip(t *testing.T) {
	m := &Msg{ID: 42, IsResp: true, Op: OpCreateFile, Status: StatusExist,
		ServiceNS: 123456, Trace: 0xdeadbeef, Span: 0xfeedface, Epoch: 9,
		Lease: 17, Body: []byte("hello")}
	var buf bytes.Buffer
	if err := WriteMsg(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || !got.IsResp || got.Op != OpCreateFile || got.Status != StatusExist ||
		got.ServiceNS != 123456 || got.Trace != 0xdeadbeef || got.Span != 0xfeedface ||
		got.Epoch != 9 || got.Lease != 17 || string(got.Body) != "hello" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestMsgEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, &Msg{ID: 1, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Body) != 0 || got.Op != OpPing || got.IsResp {
		t.Errorf("got %+v", got)
	}
}

func TestMsgQuickRoundTrip(t *testing.T) {
	f := func(id uint64, isResp bool, op uint16, status uint16, service, trace, span, epoch, lease uint64, body []byte) bool {
		m := &Msg{ID: id, IsResp: isResp, Op: Op(op), Status: Status(status),
			ServiceNS: service, Trace: trace, Span: span, Epoch: epoch, Lease: lease, Body: body}
		var buf bytes.Buffer
		if err := WriteMsg(&buf, m); err != nil {
			return false
		}
		got, err := ReadMsg(&buf)
		if err != nil {
			return false
		}
		return got.ID == id && got.IsResp == isResp && got.Op == Op(op) &&
			got.Status == Status(status) && got.ServiceNS == service &&
			got.Trace == trace && got.Span == span && got.Epoch == epoch &&
			got.Lease == lease && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultipleMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteMsg(&buf, &Msg{ID: uint64(i), Op: OpPing, Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := ReadMsg(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.ID != uint64(i) || m.Body[0] != byte(i) {
			t.Errorf("message %d = %+v", i, m)
		}
	}
}

func TestReadMsgTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteMsg(&buf, &Msg{ID: 1, Op: OpPing, Body: []byte("abcdef")})
	raw := buf.Bytes()
	if _, err := ReadMsg(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Error("truncated frame read without error")
	}
	if _, err := ReadMsg(bytes.NewReader(raw[:2])); err == nil {
		t.Error("truncated length prefix read without error")
	}
}

func TestReadMsgOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMsg(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestWriteMsgOversizeRejected(t *testing.T) {
	m := &Msg{Body: make([]byte, MaxBody+1)}
	if err := WriteMsg(&bytes.Buffer{}, m); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestStatusErr(t *testing.T) {
	if StatusOK.Err() != nil {
		t.Error("StatusOK.Err() != nil")
	}
	err := StatusNotFound.Err()
	if err == nil || StatusOf(err) != StatusNotFound {
		t.Errorf("StatusOf(%v) = %v", err, StatusOf(err))
	}
	if StatusOf(nil) != StatusOK {
		t.Error("StatusOf(nil) != StatusOK")
	}
	if StatusOf(errors.New("misc")) != StatusIO {
		t.Error("StatusOf(foreign) != StatusIO")
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		StatusOK:       "OK",
		StatusNotFound: "ENOENT",
		StatusExist:    "EEXIST",
		StatusNotDir:   "ENOTDIR",
		StatusIsDir:    "EISDIR",
		StatusNotEmpty: "ENOTEMPTY",
		StatusPerm:     "EPERM",
		StatusInval:    "EINVAL",
		StatusStale:    "ESTALE",
		StatusIO:       "EIO",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Status(999).String() == "" {
		t.Error("unknown status has empty String()")
	}
}

func TestMembershipRoundTrip(t *testing.T) {
	m := &Membership{
		Epoch: 3,
		FMS:   []Member{{0, "fms-0"}, {1, "fms-1"}, {4, "fms-4"}},
		Prev:  []Member{{0, "fms-0"}, {1, "fms-1"}},
	}
	got, err := DecodeMembership(EncodeMembership(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || len(got.FMS) != 3 || len(got.Prev) != 2 ||
		got.FMS[2] != (Member{4, "fms-4"}) || got.Prev[1] != (Member{1, "fms-1"}) {
		t.Errorf("round trip = %+v", got)
	}
	if ids := got.IDs(); len(ids) != 3 || ids[0] != 0 || ids[2] != 4 {
		t.Errorf("IDs = %v", ids)
	}
	if ids := got.PrevIDs(); len(ids) != 2 || ids[1] != 1 {
		t.Errorf("PrevIDs = %v", ids)
	}

	// Empty Prev (closed window) must survive the trip too.
	m2 := &Membership{Epoch: 4, FMS: m.FMS}
	got2, err := DecodeMembership(EncodeMembership(m2))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Epoch != 4 || len(got2.Prev) != 0 || len(got2.FMS) != 3 {
		t.Errorf("round trip = %+v", got2)
	}

	if _, err := DecodeMembership([]byte{1, 2, 3}); err == nil {
		t.Error("truncated membership decoded without error")
	}
}

func TestSetMembershipRoundTrip(t *testing.T) {
	m := &Membership{Epoch: 2, FMS: []Member{{0, "fms-0"}, {1, "fms-1"}}}
	got, self, err := DecodeSetMembership(EncodeSetMembership(m, 1))
	if err != nil {
		t.Fatal(err)
	}
	if self != 1 || got.Epoch != 2 || len(got.FMS) != 2 {
		t.Errorf("self=%d membership=%+v", self, got)
	}
	_, self, err = DecodeSetMembership(EncodeSetMembership(m, -1))
	if err != nil || self != -1 {
		t.Errorf("self=%d err=%v, want -1 nil", self, err)
	}
}

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpMkdir:      "Mkdir",
		OpLookupDir:  "LookupDir",
		OpRenameDir:  "RenameDir",
		OpCreateFile: "CreateFile",
		OpStatFile:   "StatFile",
		OpAccessFile: "AccessFile",
		OpRenameFile: "RenameFile",
		OpPutBlock:   "PutBlock",
		OpPing:       "Ping",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint16(op), op.String(), want)
		}
	}
	if Op(0xffff).String() != "op(0xffff)" {
		t.Errorf("unknown op = %q", Op(0xffff).String())
	}
}
