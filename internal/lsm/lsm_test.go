package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// small returns a store with tiny thresholds so flush/compaction paths are
// exercised by modest workloads.
func small() *Store {
	return MustNew(&Options{MemtableBytes: 2 << 10, L0Runs: 3})
}

func TestBasicPutGetDelete(t *testing.T) {
	s := small()
	if _, ok := s.Get([]byte("x")); ok {
		t.Error("Get on empty store returned ok")
	}
	s.Put([]byte("x"), []byte("1"))
	if v, ok := s.Get([]byte("x")); !ok || string(v) != "1" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	s.Put([]byte("x"), []byte("2"))
	if v, _ := s.Get([]byte("x")); string(v) != "2" {
		t.Errorf("after overwrite Get = %q", v)
	}
	if !s.Delete([]byte("x")) {
		t.Error("Delete = false for existing key")
	}
	if _, ok := s.Get([]byte("x")); ok {
		t.Error("deleted key still visible")
	}
	if s.Delete([]byte("x")) {
		t.Error("Delete = true for missing key")
	}
}

func TestDeleteShadowsOlderRuns(t *testing.T) {
	s := small()
	s.Put([]byte("k"), []byte("old"))
	s.Compact() // k now lives in L1
	s.Delete([]byte("k"))
	if _, ok := s.Get([]byte("k")); ok {
		t.Error("tombstone in memtable did not shadow L1")
	}
	s.Compact() // tombstone dropped, key gone entirely
	if _, ok := s.Get([]byte("k")); ok {
		t.Error("key resurrected after compaction")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestFlushAndCompactionTriggered(t *testing.T) {
	s := small()
	for i := 0; i < 2000; i++ {
		s.Put([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte("v"), 32))
	}
	st := s.StatsSnapshot()
	if st.Flushes == 0 {
		t.Error("no flush despite exceeding memtable budget")
	}
	if st.Compactions == 0 {
		t.Error("no compaction despite exceeding L0 budget")
	}
	if st.RunBytesWritten <= st.UserBytesWritten {
		t.Error("no write amplification observed — runs not being rewritten?")
	}
	// All data still visible.
	for _, i := range []int{0, 999, 1999} {
		if _, ok := s.Get([]byte(fmt.Sprintf("key-%05d", i))); !ok {
			t.Errorf("key-%05d lost", i)
		}
	}
	if s.Len() != 2000 {
		t.Errorf("Len = %d, want 2000", s.Len())
	}
}

func TestAscendRangeMergesLevels(t *testing.T) {
	s := small()
	// Spread keys across L1, L0 and the memtable with overwrites.
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v-old"))
	}
	s.Compact()
	for i := 50; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v-new"))
	}
	s.Delete([]byte("k075"))
	var keys []string
	vals := map[string]string{}
	s.AscendRange([]byte("k040"), []byte("k090"), func(k, v []byte) bool {
		keys = append(keys, string(k))
		vals[string(k)] = string(v)
		return true
	})
	if len(keys) != 49 { // 50 keys in [40,90) minus deleted k075
		t.Fatalf("visited %d keys, want 49", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("unsorted: %q >= %q", keys[i-1], keys[i])
		}
	}
	if vals["k049"] != "v-old" || vals["k050"] != "v-new" {
		t.Errorf("merge picked wrong versions: k049=%q k050=%q", vals["k049"], vals["k050"])
	}
	if _, ok := vals["k075"]; ok {
		t.Error("deleted key visible in scan")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := small()
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	n := 0
	s.ForEach(func(k, v []byte) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("visited %d, want 7", n)
	}
}

func TestPatchInPlaceIsReadModifyWrite(t *testing.T) {
	s := small()
	s.Put([]byte("k"), []byte("0123456789"))
	before := s.StatsSnapshot().UserBytesWritten
	if !s.PatchInPlace([]byte("k"), 4, []byte("XY")) {
		t.Fatal("patch failed")
	}
	if v, _ := s.Get([]byte("k")); string(v) != "0123XY6789" {
		t.Errorf("after patch = %q", v)
	}
	after := s.StatsSnapshot().UserBytesWritten
	if after-before < 10 {
		t.Errorf("LSM patch wrote only %d bytes; expected a full value rewrite", after-before)
	}
	if s.PatchInPlace([]byte("k"), 9, []byte("XY")) {
		t.Error("out-of-range patch succeeded")
	}
	if s.PatchInPlace([]byte("zz"), 0, []byte("X")) {
		t.Error("patch of missing key succeeded")
	}
}

func TestReadAtAndAppendValue(t *testing.T) {
	s := small()
	s.AppendValue([]byte("k"), []byte("hello "))
	s.AppendValue([]byte("k"), []byte("world"))
	buf := make([]byte, 5)
	if !s.ReadAt([]byte("k"), 6, buf) || string(buf) != "world" {
		t.Errorf("ReadAt = %q", buf)
	}
	if s.ReadAt([]byte("k"), 20, buf) {
		t.Error("out-of-range ReadAt succeeded")
	}
}

func TestLenAcrossLevels(t *testing.T) {
	s := small()
	for i := 0; i < 300; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	for i := 0; i < 100; i++ {
		s.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	if s.Len() != 200 {
		t.Errorf("Len = %d, want 200", s.Len())
	}
	s.Compact()
	if s.Len() != 200 {
		t.Errorf("Len after compact = %d, want 200", s.Len())
	}
}

// TestModelQuick drives the LSM store against a map model.
func TestModelQuick(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val uint16
		Del bool
	}) bool {
		s := MustNew(&Options{MemtableBytes: 512, L0Runs: 2})
		model := map[string]string{}
		for _, op := range ops {
			k := fmt.Sprintf("key-%03d", op.Key)
			if op.Del {
				delete(model, k)
				s.Delete([]byte(k))
			} else {
				v := fmt.Sprintf("value-%05d", op.Val)
				model[k] = v
				s.Put([]byte(k), []byte(v))
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := s.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		n := 0
		good := true
		var prev []byte
		s.ForEach(func(k, v []byte) bool {
			if model[string(k)] != string(v) {
				good = false
				return false
			}
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				good = false
				return false
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		return good && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := MustNew(&Options{MemtableBytes: 4 << 10, L0Runs: 2})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("w%d-%d", w, i))
				s.Put(k, []byte("v"))
				if _, ok := s.Get(k); !ok {
					t.Errorf("lost own write %s", k)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.ForEach(func(k, v []byte) bool { return true })
		}
	}()
	wg.Wait()
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := New(&Options{MemtableBytes: 1 << 20, L0Runs: 4, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	s.Delete([]byte("a"))
	// Simulate a crash: do NOT flush or close cleanly; reopen from the WAL.
	s2, err := New(&Options{MemtableBytes: 1 << 20, L0Runs: 4, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get([]byte("a")); ok {
		t.Error("deleted key resurrected by recovery")
	}
	if v, ok := s2.Get([]byte("b")); !ok || string(v) != "2" {
		t.Errorf("recovered b = %q, %v", v, ok)
	}
	s.Close()
}

func TestWALTornRecordIgnored(t *testing.T) {
	recs := decodeWAL([]byte{200, 200}) // nonsense varint header
	if len(recs) != 0 {
		t.Errorf("decoded %d records from garbage", len(recs))
	}
}

func TestRandomizedVsModelLarge(t *testing.T) {
	s := MustNew(&Options{MemtableBytes: 8 << 10, L0Runs: 3})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(3000))
		switch rng.Intn(10) {
		case 0:
			delete(model, k)
			s.Delete([]byte(k))
		default:
			v := fmt.Sprintf("val-%d", i)
			model[k] = v
			s.Put([]byte(k), []byte(v))
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", s.Len(), len(model))
	}
	for k, v := range model {
		got, ok := s.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("key %q = %q/%v, want %q", k, got, ok, v)
		}
	}
}
