module locofs

go 1.22
