package wire

import (
	"bytes"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	subs := []SubReq{
		{Op: OpMkdir, Body: []byte("alpha")},
		{Op: OpPing, Body: nil},
		{Op: OpPutBlock, Body: bytes.Repeat([]byte{0x7}, 1000)},
		{Op: OpBatch, Body: []byte("nested bodies still encode")},
	}
	body, err := EncodeBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(subs) {
		t.Fatalf("decoded %d subs, want %d", len(got), len(subs))
	}
	for i := range subs {
		if got[i].Op != subs[i].Op || !bytes.Equal(got[i].Body, subs[i].Body) {
			t.Errorf("sub %d = {%v %q}, want {%v %q}",
				i, got[i].Op, got[i].Body, subs[i].Op, subs[i].Body)
		}
	}
}

func TestBatchRespRoundTrip(t *testing.T) {
	resps := []SubResp{
		{Status: StatusOK, Body: []byte("first")},
		{Status: StatusNotFound, Body: nil},
		{Status: StatusNotEmpty, Body: []byte{1}},
	}
	got, err := DecodeBatchResp(EncodeBatchResp(resps))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(resps) {
		t.Fatalf("decoded %d resps, want %d", len(got), len(resps))
	}
	for i := range resps {
		if got[i].Status != resps[i].Status || !bytes.Equal(got[i].Body, resps[i].Body) {
			t.Errorf("resp %d = {%v %q}, want {%v %q}",
				i, got[i].Status, got[i].Body, resps[i].Status, resps[i].Body)
		}
	}
}

func TestBatchEmptyRoundTrip(t *testing.T) {
	body, err := EncodeBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := DecodeBatch(body)
	if err != nil || len(subs) != 0 {
		t.Errorf("empty batch = %v subs, err %v", subs, err)
	}
}

func TestEncodeBatchTooLarge(t *testing.T) {
	subs := make([]SubReq, MaxBatchSubs+1)
	if _, err := EncodeBatch(subs); err != ErrBatchTooLarge {
		t.Errorf("err = %v, want ErrBatchTooLarge", err)
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	good, _ := EncodeBatch([]SubReq{{Op: OpPing, Body: []byte("x")}})
	cases := map[string][]byte{
		"empty":             {},
		"short count":       {0, 0},
		"huge count":        NewEnc().U32(MaxBatchSubs + 1).Bytes(),
		"truncated sub":     good[:len(good)-1],
		"trailing garbage":  append(append([]byte{}, good...), 0xEE),
		"count over bodies": NewEnc().U32(3).Bytes(),
	}
	for name, body := range cases {
		if _, err := DecodeBatch(body); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := DecodeBatchResp(good[:len(good)-1]); err == nil {
		t.Error("truncated resp body decoded without error")
	}
}
