package rpc

import (
	"sync/atomic"
	"testing"

	"locofs/internal/chash"
	"locofs/internal/netsim"
	"locofs/internal/wire"
)

func testMembership(epoch uint64) *wire.Membership {
	return &wire.Membership{
		Epoch: epoch,
		FMS:   []wire.Member{{ID: 0, Addr: "fms-0"}, {ID: 1, Addr: "fms-1"}},
	}
}

// TestSetMembershipEpochGuard: an install with an older epoch is refused,
// same-or-newer accepted, and Epoch tracks the installed membership.
func TestSetMembershipEpochGuard(t *testing.T) {
	s := NewServer()
	if s.Epoch() != 0 {
		t.Fatalf("fresh server epoch = %d", s.Epoch())
	}
	if m, self := s.Membership(); m != nil || self != -1 {
		t.Fatalf("fresh server membership = %v self=%d", m, self)
	}
	if !s.SetMembership(testMembership(3), 0) {
		t.Fatal("install epoch 3 refused")
	}
	if s.SetMembership(testMembership(2), 0) {
		t.Error("older epoch accepted")
	}
	if !s.SetMembership(testMembership(3), 0) {
		t.Error("equal epoch refused (re-push must be idempotent)")
	}
	if !s.SetMembership(testMembership(4), 1) {
		t.Error("newer epoch refused")
	}
	if s.Epoch() != 4 {
		t.Errorf("epoch = %d, want 4", s.Epoch())
	}
	if m, self := s.Membership(); m.Epoch != 4 || self != 1 {
		t.Errorf("membership = %+v self=%d", m, self)
	}
}

// TestOwnsKey: with a membership installed the server answers ownership
// exactly as the equivalent client-side ring would; without one (or as a
// non-FMS) ownership is unknowable.
func TestOwnsKey(t *testing.T) {
	s := NewServer()
	if _, known := s.OwnsKey([]byte("k")); known {
		t.Error("static topology reported known ownership")
	}
	s.SetMembership(testMembership(1), 1)
	ring := chash.NewRing(0, 0, 1)
	agree := 0
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		owns, known := s.OwnsKey([]byte(k))
		if !known {
			t.Fatalf("ownership unknown for %q", k)
		}
		if owns == (ring.Locate([]byte(k)) == 1) {
			agree++
		}
	}
	if agree != 8 {
		t.Errorf("OwnsKey disagrees with ring on %d/8 keys", 8-agree)
	}
	// A non-FMS participant (self=-1) tracks the epoch but not ownership.
	s2 := NewServer()
	s2.SetMembership(testMembership(2), -1)
	if _, known := s2.OwnsKey([]byte("k")); known {
		t.Error("self=-1 reported known ownership")
	}
	if s2.Epoch() != 2 {
		t.Errorf("non-FMS epoch = %d, want 2", s2.Epoch())
	}
}

// TestMembershipOverWire: OpSetMembership/OpGetMembership round trip over
// the transport, responses carry the installed epoch, and CallSpec.OnEpoch
// observes it.
func TestMembershipOverWire(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	s := NewServer()
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, err := Dial(n, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// No membership yet: get reports ENOENT, responses carry epoch 0.
	st, _, _, err := c.Do(CallSpec{Op: wire.OpGetMembership})
	if err != nil || st != wire.StatusNotFound {
		t.Fatalf("get before set = %v %v", st, err)
	}

	m := testMembership(5)
	st, _, _, err = c.Do(CallSpec{Op: wire.OpSetMembership, Body: wire.EncodeSetMembership(m, 0)})
	if err != nil || st != wire.StatusOK {
		t.Fatalf("set = %v %v", st, err)
	}
	// A stale push is refused with ESTALE.
	st, _, _, _ = c.Do(CallSpec{Op: wire.OpSetMembership, Body: wire.EncodeSetMembership(testMembership(4), 0)})
	if st != wire.StatusStale {
		t.Errorf("stale set = %v, want ESTALE", st)
	}

	var seen atomic.Uint64
	st, body, _, err := c.Do(CallSpec{Op: wire.OpGetMembership, OnEpoch: func(e uint64) { seen.Store(e) }})
	if err != nil || st != wire.StatusOK {
		t.Fatalf("get = %v %v", st, err)
	}
	got, err := wire.DecodeMembership(body)
	if err != nil || got.Epoch != 5 || len(got.FMS) != 2 {
		t.Errorf("membership = %+v err=%v", got, err)
	}
	if seen.Load() != 5 {
		t.Errorf("OnEpoch observed %d, want 5", seen.Load())
	}
}
