// Package cephfs models CephFS (Weil et al., OSDI'06) as compared in the
// paper: directory-based (subtree) metadata partitioning with a rich client
// inode cache and a heavyweight, journal-serialized MDS software path.
//
// Preserved behaviors:
//
//   - Subtree partitioning: all metadata under one top-level directory is
//     owned by a single MDS, so most operations are one request — but a
//     single hot subtree cannot use more than one server.
//   - Client caches BOTH directory and file inodes (unlike LocoFS, which
//     caches only d-inodes): repeated stats are served locally, giving Ceph
//     the lowest dir-stat/file-stat latency in Fig 7/8.
//   - MDS service time is large and journal-serialized: per-request latency
//     is dominated by software, which is why faster networks barely help
//     CephFS in the paper's co-located experiment (Fig 10, §4.2.4).
package cephfs

import (
	"sync/atomic"
	"time"

	"locofs/internal/baseline/common"
	"locofs/internal/fsapi"
	"locofs/internal/fspath"
	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// Profile is the CephFS MDS software model. The service times are
// calibrated so single-node latency and one-server IOPS land near the
// paper's measured ratios against LocoFS (Figs 8 and 10): a mutation
// traverses the journal plus the in-memory metadata tree under wide locks.
var Profile = common.Profile{
	Name:         "cephfs",
	ReadService:  250 * time.Microsecond,
	WriteService: 1100 * time.Microsecond,
	Workers:      2,
}

// Entry records: one per file or directory, on the subtree's MDS.
const kEntry = "E:"

// System is a running CephFS-model deployment.
type System struct {
	cluster *common.Cluster
	network *netsim.Network
	link    netsim.LinkConfig
}

// Start launches n MDS servers.
func Start(network *netsim.Network, n int, link netsim.LinkConfig) (*System, error) {
	cl, err := common.StartCluster(network, n, Profile, func() kv.Store {
		// Ordered store: real metadata servers index directory entries, so
		// a readdir/emptiness check costs O(result), not a full scan.
		return kv.NewBTreeStore()
	})
	if err != nil {
		return nil, err
	}
	return &System{cluster: cl, network: network, link: link}, nil
}

// Close shuts the system down.
func (s *System) Close() { s.cluster.Close() }

// Client is one CephFS client.
type Client struct {
	conn  *common.Conn
	n     int
	cache *common.LeaseCache // caches f-inodes AND d-inodes
	// localNS accrues the modeled client-side cost of cache hits: serving
	// a stat from the capability cache is cheap but not free.
	localNS atomic.Uint64
}

// cacheHitCost is the modeled client-side cost of serving an operation
// entirely from the inode/capability cache.
const cacheHitCost = 3 * time.Microsecond

// NewClient connects a client.
func (s *System) NewClient() (*Client, error) {
	conn, err := common.DialCluster(s.network, s.cluster.Addrs, s.link)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, n: len(s.cluster.Addrs), cache: common.NewLeaseCache(30 * time.Second)}, nil
}

// Trips returns total round trips issued.
func (c *Client) Trips() uint64 { return c.conn.Trips() }

// Cost returns the client's cumulative modeled time, including local
// cache-hit handling.
func (c *Client) Cost() time.Duration {
	return c.conn.Cost() + time.Duration(c.localNS.Load())
}

// Cluster exposes the underlying servers (experiments read busy times).
func (s *System) Cluster() *common.Cluster { return s.cluster }

// Close implements fsapi.FS.
func (c *Client) Close() error { return c.conn.Close() }

// srvSubtree returns the MDS owning directory dir's contents. Ceph's
// dynamic subtree partitioning migrates directories; we model the steady
// state as two-component subtree granularity. The root lives on MDS 0.
func (c *Client) srvSubtree(dir string) int {
	if dir == "/" {
		return 0
	}
	return common.HashServer(common.SubtreeKey(dir, 2), c.n)
}

// srvOf returns the MDS holding the entry for path p: an entry is content
// of its parent directory, so it lives on the parent's subtree MDS.
func (c *Client) srvOf(p string) int {
	parent, _ := fspath.Split(p)
	return c.srvSubtree(parent)
}

func entryKey(p string) []byte { return append([]byte(kEntry), p...) }

// fileRecord / dirRecord values: 1 byte kind + mode.
func record(isDir bool, mode uint32) []byte {
	kind := byte(0)
	if isDir {
		kind = 1
	}
	return []byte{kind, byte(mode), byte(mode >> 8), byte(mode >> 16), byte(mode >> 24)}
}

// ensureParent verifies the parent chain within the subtree, using the
// client cache; misses are resolved from the subtree's MDS.
func (c *Client) ensureParent(parent string) error {
	if parent == "/" {
		return nil
	}
	for _, p := range append(fspath.Ancestors(parent)[1:], parent) {
		if c.cache.Has(p) {
			continue
		}
		v, st, err := c.conn.Get(c.srvOf(p), entryKey(p))
		if err != nil {
			return err
		}
		if st != wire.StatusOK {
			return st.Err()
		}
		c.cache.Put(p, v)
	}
	return nil
}

// Mkdir implements fsapi.FS: one journaled request to the subtree MDS
// (plus a root-link update on MDS 0 for top-level directories).
func (c *Client) Mkdir(path string, mode uint32) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, name := fspath.Split(p)
	if name == "" {
		return wire.StatusExist.Err()
	}
	if err := c.ensureParent(parent); err != nil {
		return err
	}
	st, err := c.conn.CreateX(c.srvOf(p), entryKey(p), record(true, mode))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	// A directory whose contents land on a different MDS than its own
	// entry (a subtree cut point) needs the new authority initialized.
	if c.srvSubtree(p) != c.srvOf(p) {
		if st, err := c.conn.Put(c.srvSubtree(p), []byte("L:"+p), nil); err != nil || st != wire.StatusOK {
			if err != nil {
				return err
			}
			return st.Err()
		}
	}
	c.cache.Put(p, record(true, mode))
	return nil
}

// Create implements fsapi.FS; the created inode is cached client-side.
func (c *Client) Create(path string, mode uint32) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, name := fspath.Split(p)
	if name == "" {
		return wire.StatusInval.Err()
	}
	if err := c.ensureParent(parent); err != nil {
		return err
	}
	st, err := c.conn.CreateX(c.srvOf(p), entryKey(p), record(false, mode))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	c.cache.Put(p, record(false, mode))
	return nil
}

// stat serves from the client inode cache when possible (Ceph's edge in the
// paper's stat experiments), else one MDS request.
func (c *Client) stat(path string, wantDir bool) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	if p == "/" {
		if wantDir {
			return nil
		}
		return wire.StatusIsDir.Err()
	}
	v, ok := c.cache.Get(p)
	if ok {
		c.localNS.Add(uint64(cacheHitCost))
	} else {
		var st wire.Status
		v, st, err = c.conn.Get(c.srvOf(p), entryKey(p))
		if err != nil {
			return err
		}
		if st != wire.StatusOK {
			return st.Err()
		}
		c.cache.Put(p, v)
	}
	isDir := len(v) > 0 && v[0] == 1
	if isDir != wantDir {
		if wantDir {
			return wire.StatusNotDir.Err()
		}
		return wire.StatusIsDir.Err()
	}
	return nil
}

// StatFile implements fsapi.FS.
func (c *Client) StatFile(path string) error { return c.stat(path, false) }

// StatDir implements fsapi.FS.
func (c *Client) StatDir(path string) error { return c.stat(path, true) }

// Remove implements fsapi.FS.
func (c *Client) Remove(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	st, err := c.conn.Del(c.srvOf(p), entryKey(p))
	if err != nil {
		return err
	}
	c.cache.Drop(p)
	return st.Err()
}

// Readdir implements fsapi.FS: one request to the subtree MDS (the whole
// directory lives there).
func (c *Client) Readdir(path string) (int, error) {
	p, err := fspath.Clean(path)
	if err != nil {
		return 0, wire.StatusInval.Err()
	}
	if err := c.stat(p, true); err != nil {
		return 0, err
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	names, err := c.conn.ListPrefix(c.srvSubtree(p), entryKey(prefix))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, nm := range names {
		if fspath.ValidName(nm) {
			n++
		}
	}
	return n, nil
}

// Rmdir implements fsapi.FS.
func (c *Client) Rmdir(path string) error {
	p, err := fspath.Clean(path)
	if err != nil || p == "/" {
		return wire.StatusInval.Err()
	}
	cnt, err := c.conn.CountPrefix(c.srvSubtree(p), entryKey(p+"/"))
	if err != nil {
		return err
	}
	if cnt > 0 {
		return wire.StatusNotEmpty.Err()
	}
	st, err := c.conn.Del(c.srvOf(p), entryKey(p))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	if c.srvSubtree(p) != c.srvOf(p) {
		c.conn.Del(c.srvSubtree(p), []byte("L:"+p))
	}
	c.cache.Drop(p)
	return nil
}

// rmw is Ceph's coupled attribute update: journaled read-modify-write on
// the MDS (two requests from the client's perspective under cap recall).
func (c *Client) rmw(path string, mutate func([]byte) []byte) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	v, st, err := c.conn.Get(c.srvOf(p), entryKey(p))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	nv := mutate(v)
	st, err = c.conn.Put(c.srvOf(p), entryKey(p), nv)
	if err != nil {
		return err
	}
	c.cache.Put(p, nv)
	return st.Err()
}

// Chmod implements fsapi.ExtendedFS.
func (c *Client) Chmod(path string, mode uint32) error {
	return c.rmw(path, func(v []byte) []byte {
		if len(v) == 0 {
			return v
		}
		return record(v[0] == 1, mode)
	})
}

// Chown implements fsapi.ExtendedFS.
func (c *Client) Chown(path string, uid, gid uint32) error {
	return c.rmw(path, func(v []byte) []byte { return v })
}

// Truncate implements fsapi.ExtendedFS.
func (c *Client) Truncate(path string, size uint64) error {
	return c.rmw(path, func(v []byte) []byte { return v })
}

// Access implements fsapi.ExtendedFS (cache hit = free, like Ceph caps).
func (c *Client) Access(path string) error { return c.StatFile(path) }

var _ fsapi.ExtendedFS = (*Client)(nil)
