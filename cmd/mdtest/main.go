// Command mdtest runs the mdtest-style metadata workload against an
// in-process LocoFS cluster and prints per-phase throughput and latency —
// the reproduction's equivalent of the paper's mdtest+OpenMPI driver.
//
// Usage:
//
//	mdtest [-servers N] [-clients N] [-items N] [-depth N] [-nocache]
//	       [-coupled] [-rtt duration] [-phases list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"locofs/internal/core"
	"locofs/internal/fsapi"
	"locofs/internal/mdtest"
	"locofs/internal/netsim"
)

func main() {
	servers := flag.Int("servers", 4, "number of file metadata servers")
	clients := flag.Int("clients", 8, "number of concurrent workload clients")
	items := flag.Int("items", 1000, "files/dirs per client per phase")
	depth := flag.Int("depth", 1, "working-directory depth")
	nocache := flag.Bool("nocache", false, "disable the client directory cache (LocoFS-NC)")
	coupled := flag.Bool("coupled", false, "run FMSs in coupled-inode mode (LocoFS-CF)")
	rtt := flag.Duration("rtt", 174*time.Microsecond, "modeled network RTT")
	phasesFlag := flag.String("phases", strings.Join(mdtest.DefaultPhases, ","),
		"comma-separated phases to run")
	flag.Parse()

	cluster, err := core.Start(core.Options{
		FMSCount:            *servers,
		Link:                netsim.LinkConfig{RTT: *rtt, Bandwidth: 125e6},
		CostModel:           &core.PaperKVCost,
		DisableClientCache:  *nocache,
		CoupledFileMetadata: *coupled,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdtest:", err)
		os.Exit(1)
	}
	defer cluster.Close()

	rep, err := mdtest.Run(mdtest.Config{
		Clients:        *clients,
		ItemsPerClient: *items,
		Depth:          *depth,
		Phases:         strings.Split(*phasesFlag, ","),
	}, func() (fsapi.FS, error) {
		cl, err := cluster.NewClient(core.ClientConfig{})
		if err != nil {
			return nil, err
		}
		return fsapi.LocoFS{C: cl}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdtest:", err)
		os.Exit(1)
	}

	fmt.Printf("LocoFS mdtest: %d FMS, %d clients x %d items, depth %d, RTT %v\n",
		*servers, *clients, *items, *depth, *rtt)
	fmt.Printf("%-10s %10s %8s %14s %14s %14s\n",
		"phase", "ops", "errors", "mean-lat", "p99-lat", "wall-IOPS")
	for _, pr := range rep.Results {
		fmt.Printf("%-10s %10d %8d %14v %14v %14.0f\n",
			pr.Phase, pr.Ops, pr.Errors,
			pr.VirtLatency.Mean.Round(time.Microsecond),
			pr.VirtLatency.P99.Round(time.Microsecond),
			pr.IOPS())
	}
}
