package flight

import (
	"strings"
	"testing"
	"time"

	"locofs/internal/slo"
)

// fakeClock is a hand-advanced engine/journal clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) nowNS() int64            { return c.t.UnixNano() }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestEventRateRuleFiresAndCoolsDown(t *testing.T) {
	clk := newFakeClock()
	j := NewJournal(64)
	j.SetNow(clk.nowNS)
	e := NewEngine(EngineConfig{
		Journal: j,
		Source:  "test",
		Now:     clk.now,
		Rules: []Rule{{
			Name: "breaker-flap", Kind: RuleEventRate, Event: KindBreaker,
			Count: 3, Window: 10 * time.Second, Cooldown: 30 * time.Second,
		}},
	})

	// Two breaker events in the window: below threshold, no firing.
	j.Emit(KindBreaker, "client", "", 0, 0, "fms-0 open")
	j.Emit(KindBreaker, "client", "", 0, 0, "fms-0 half-open")
	if fired := e.Poll(); len(fired) != 0 {
		t.Fatalf("fired below threshold: %v", fired)
	}

	// Third event crosses it.
	j.Emit(KindBreaker, "client", "", 0, 0, "fms-0 open")
	fired := e.Poll()
	if len(fired) != 1 || fired[0].Rule != "breaker-flap" {
		t.Fatalf("fired = %v, want one breaker-flap", fired)
	}
	if fired[0].Seq == 0 || fired[0].AtNS != clk.nowNS() {
		t.Errorf("anomaly not stamped: %+v", fired[0])
	}
	// The firing itself is journaled.
	if got := j.KindCounts()["anomaly"]; got != 1 {
		t.Errorf("KindAnomaly events = %d, want 1", got)
	}

	// Within cooldown the rule stays silent even though the condition holds.
	clk.advance(5 * time.Second)
	j.Emit(KindBreaker, "client", "", 0, 0, "fms-0 open")
	if fired := e.Poll(); len(fired) != 0 {
		t.Fatalf("fired inside cooldown: %v", fired)
	}

	// Past cooldown, with fresh events inside the rate window, it refires.
	clk.advance(40 * time.Second)
	for i := 0; i < 3; i++ {
		j.Emit(KindBreaker, "client", "", 0, 0, "fms-1 open")
	}
	if fired := e.Poll(); len(fired) != 1 {
		t.Fatalf("did not refire after cooldown: %v", fired)
	}
	if e.Total() != 2 {
		t.Errorf("Total = %d, want 2", e.Total())
	}

	// State carries both firings of the one rule.
	st := e.State()
	if len(st) != 1 || st[0].Rule != "breaker-flap" || st[0].Count != 2 || st[0].Source != "test" {
		t.Fatalf("State = %+v", st)
	}
}

func TestEventRateRuleIgnoresEventsOutsideWindow(t *testing.T) {
	clk := newFakeClock()
	j := NewJournal(64)
	j.SetNow(clk.nowNS)
	e := NewEngine(EngineConfig{
		Journal: j,
		Now:     clk.now,
		Rules: []Rule{{
			Name: "storm", Kind: RuleEventRate, Event: KindLeaseRecall,
			Count: 3, Window: 10 * time.Second,
		}},
	})
	for i := 0; i < 5; i++ {
		j.Emit(KindLeaseRecall, "dms", "", 0, int64(i), "/d")
	}
	// All five recalls age out of the rate window.
	clk.advance(time.Minute)
	if fired := e.Poll(); len(fired) != 0 {
		t.Fatalf("stale events fired the rule: %v", fired)
	}
}

func TestBurnRateRule(t *testing.T) {
	clk := newFakeClock()
	j := NewJournal(16)
	burn := 0.5
	e := NewEngine(EngineConfig{
		Journal: j,
		Now:     clk.now,
		SLO: func() []slo.ClassStatus {
			return []slo.ClassStatus{{Class: "md_read", Metric: "m", WindowCount: 100, BurnRate: burn}}
		},
		Rules: []Rule{{Name: "burn-spike", Kind: RuleBurnRate, Threshold: 2, MinCount: 20}},
	})
	if fired := e.Poll(); len(fired) != 0 {
		t.Fatalf("fired at burn 0.5: %v", fired)
	}
	burn = 3
	fired := e.Poll()
	if len(fired) != 1 || !strings.Contains(fired[0].Detail, "md_read") {
		t.Fatalf("fired = %v, want md_read burn spike", fired)
	}
}

func TestBurnRateRuleRespectsMinCount(t *testing.T) {
	clk := newFakeClock()
	e := NewEngine(EngineConfig{
		Journal: NewJournal(16),
		Now:     clk.now,
		SLO: func() []slo.ClassStatus {
			// Burning hot but on 3 samples: too little traffic to trust.
			return []slo.ClassStatus{{Class: "md_read", WindowCount: 3, BurnRate: 100}}
		},
		Rules: []Rule{{Name: "burn-spike", Kind: RuleBurnRate, Threshold: 2, MinCount: 20}},
	})
	if fired := e.Poll(); len(fired) != 0 {
		t.Fatalf("fired below MinCount: %v", fired)
	}
}

func TestP99StepRule(t *testing.T) {
	clk := newFakeClock()
	j := NewJournal(16)
	p99 := 0.001
	e := NewEngine(EngineConfig{
		Journal: j,
		Now:     clk.now,
		SLO: func() []slo.ClassStatus {
			return []slo.ClassStatus{{
				Class: "md_read", Metric: "m", Percentile: 0.99,
				WindowCount: 100, WindowPSec: p99,
			}}
		},
		Rules: []Rule{{Name: "p99-step", Kind: RuleP99Step, Factor: 4, MinCount: 50, Cooldown: time.Minute}},
	})
	// Build a baseline: the step rule needs history before it can compare.
	for i := 0; i < 6; i++ {
		if fired := e.Poll(); len(fired) != 0 {
			t.Fatalf("fired while flat at poll %d: %v", i, fired)
		}
		clk.advance(2 * time.Second)
	}
	// 1 ms -> 10 ms: a 10x step over the baseline median.
	p99 = 0.010
	fired := e.Poll()
	if len(fired) != 1 || fired[0].Rule != "p99-step" {
		t.Fatalf("fired = %v, want one p99-step", fired)
	}
	if !strings.Contains(fired[0].Detail, "baseline") {
		t.Errorf("detail lacks baseline context: %q", fired[0].Detail)
	}
}

func TestP99StepNeedsBaselineHistory(t *testing.T) {
	clk := newFakeClock()
	p99 := 0.001
	e := NewEngine(EngineConfig{
		Journal: NewJournal(16),
		Now:     clk.now,
		SLO: func() []slo.ClassStatus {
			return []slo.ClassStatus{{Class: "c", Metric: "m", WindowCount: 100, WindowPSec: p99}}
		},
		Rules: []Rule{{Name: "p99-step", Kind: RuleP99Step, Factor: 4, MinCount: 50}},
	})
	e.Poll() // one poll of history — below p99BaselineMin
	p99 = 1.0
	if fired := e.Poll(); len(fired) != 0 {
		t.Fatalf("fired without enough baseline history: %v", fired)
	}
}

func TestOnTriggerRunsPerFiring(t *testing.T) {
	clk := newFakeClock()
	j := NewJournal(16)
	j.SetNow(clk.nowNS)
	var got []Anomaly
	e := NewEngine(EngineConfig{
		Journal:   j,
		Now:       clk.now,
		OnTrigger: func(a Anomaly) { got = append(got, a) },
		Rules: []Rule{{
			Name: "flap", Kind: RuleEventRate, Event: KindBreaker, Count: 1, Window: 10 * time.Second,
		}},
	})
	j.Emit(KindBreaker, "client", "", 0, 0, "open")
	e.Poll()
	if len(got) != 1 || got[0].Rule != "flap" {
		t.Fatalf("OnTrigger saw %v", got)
	}
	if recent := e.Recent(); len(recent) != 1 || recent[0].Rule != "flap" {
		t.Fatalf("Recent = %v", recent)
	}
}

func TestDefaultRulesCoverTentpoleConditions(t *testing.T) {
	names := map[string]bool{}
	for _, r := range DefaultRules() {
		names[r.Name] = true
	}
	for _, want := range []string{"breaker-flap", "recall-storm", "burn-spike", "p99-step"} {
		if !names[want] {
			t.Errorf("default rule %s missing", want)
		}
	}
}
