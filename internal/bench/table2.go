package bench

import (
	"fmt"

	"locofs/internal/core"
	"locofs/internal/netsim"
)

// Table2 reports the modeled experimental environment — the reproduction's
// counterpart of the paper's hardware table. The paper's clusters are
// replaced by deterministic models (DESIGN.md §2); this table states every
// constant those models use, so a result in any other table can be traced
// to its inputs.
func Table2(env Env) (*Table, error) {
	cost := core.PaperKVCost
	t := &Table{
		Title:   "Table 2: the modeled experimental environment",
		Note:    "paper hardware -> reproduction model; see DESIGN.md for the substitution rationale",
		Headers: []string{"aspect", "paper", "reproduction model"},
	}
	t.AddRow("metadata cluster", "16x Dell PowerEdge, 8-core 2.5GHz Opteron",
		fmt.Sprintf("up to %d in-process servers, %d-way request parallelism", env.MaxServers(), locoWorkers))
	t.AddRow("client cluster", "6x SuperMicro, 288 client processes",
		fmt.Sprintf("goroutine clients per Table 3 (x%.2f scale)", scaleOf(env)))
	t.AddRow("network", "1GbE, RTT 0.174ms",
		fmt.Sprintf("virtual link: RTT %v, %s bandwidth", env.Link.RTT, fmtBandwidth(env.Link)))
	t.AddRow("metadata store", "Kyoto Cabinet (TreeDB on DMS)",
		"kv.BTreeStore / kv.HashStore engines")
	t.AddRow("KV point read", "4us (paper §2.2.1)", fmt.Sprint(cost.ReadOp))
	t.AddRow("KV point write", "-", fmt.Sprint(cost.WriteOp))
	t.AddRow("KV in-place patch", "-", fmt.Sprint(cost.PatchOp))
	t.AddRow("KV scanned record", "-", fmt.Sprint(cost.ScanRec))
	t.AddRow("KV per-KB moved", "-", fmt.Sprint(cost.PerKB))
	t.AddRow("request overhead", "-", fmt.Sprint(cost.Fixed))
	t.AddRow("local fs / media", "btrfs on SAS/SATA; SSD+HDD for Fig 14",
		"kv device models (Fig 14): cached reads, buffered writes, streamed scans")
	t.AddRow("evaluated FS", "LocoFS, Lustre 2.9, CephFS 0.94, Gluster 3.7.8, IndexFS",
		"LocoFS (full) + architectural models of the four baselines")
	return t, nil
}

func scaleOf(env Env) float64 {
	if env.ClientScale <= 0 {
		return 1
	}
	return env.ClientScale
}

func fmtBandwidth(l netsim.LinkConfig) string {
	if l.Bandwidth <= 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%.0fMB/s", l.Bandwidth/1e6)
}
