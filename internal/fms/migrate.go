package fms

// Online membership-change support: the three server-side primitives the
// migration coordinator drives when an FMS joins or leaves the ring.
//
//   - ExportMoved scans this server's files and returns those a candidate
//     ring places on a different server — the ~1/n slice a membership
//     change relocates (§3.1).
//   - MigrateInstall imports one exported file at its new owner, with
//     overwrite semantics (a retried install, or a re-export after a
//     concurrent mutation at the source, must converge) and the dirent
//     fix-up: the per-(directory, FMS) dirent concatenation gains the
//     entry only when the file is new to this server, so replays do not
//     duplicate listings.
//   - MigrateDelete retires the source copy only if its bytes still equal
//     the export — a file mutated at the source after the export survives
//     and is re-exported by the coordinator's next scan pass, so the
//     mutation is never lost.

import (
	"bytes"

	"locofs/internal/chash"
	"locofs/internal/flight"
	"locofs/internal/layout"
	"locofs/internal/rpc"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// MovedFile is one file due to relocate: its placement key plus both
// metadata parts, normalized regardless of coupled/decoupled mode.
type MovedFile struct {
	Dir  uuid.UUID
	Name string
	Meta *FileMeta
}

// parseFileKey splits a prefixed store key into (dir, name).
func parseFileKey(k []byte) (uuid.UUID, string, bool) {
	if len(k) < 2+uuid.Size {
		return uuid.Nil, "", false
	}
	return uuid.MustFromBytes(k[2 : 2+uuid.Size]), string(k[2+uuid.Size:]), true
}

// ExportMoved returns up to limit files whose owner under next is not self
// (limit <= 0 means no bound), this server's total file count, and whether
// the limit cut the listing short. The scan collects keys under the read
// lock first and fetches metadata after, so it never nests store reads
// inside the store's own iteration.
func (s *Server) ExportMoved(next *chash.Ring, self, limit int) (moved []MovedFile, total int, more bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pfx := prefixAccess
	if s.coupled {
		pfx = prefixCoupled
	}
	type fileKey struct {
		dir  uuid.UUID
		name string
	}
	var keys []fileKey
	s.store.ForEach(func(k, v []byte) bool {
		if len(k) < 2 || string(k[:2]) != pfx {
			return true
		}
		dir, name, ok := parseFileKey(k)
		if !ok {
			return true
		}
		total++
		if next.Locate(FileKey(dir, name)) == self {
			return true
		}
		if limit > 0 && len(keys) >= limit {
			more = true
			return true // keep counting total
		}
		keys = append(keys, fileKey{dir, name})
		return true
	})
	moved = make([]MovedFile, 0, len(keys))
	for _, k := range keys {
		m, st := s.getMeta(k.dir, k.name)
		if st != wire.StatusOK {
			continue
		}
		moved = append(moved, MovedFile{Dir: k.dir, Name: k.name, Meta: m})
	}
	if len(moved) > 0 {
		if j := s.fl.Load(); j != nil {
			src := ""
			if p := s.flSource.Load(); p != nil {
				src = *p
			}
			j.Emit(flight.KindMigration, src, "export", 0, int64(len(moved)), "")
		}
	}
	return moved, total, more
}

// MigrateInstall imports one file at its new owner. Unlike CreateWithMeta
// it overwrites an existing copy (retries and post-mutation re-exports
// must converge on the latest export) and appends the dirent only when the
// file was absent, keeping the directory's concatenated entry list
// duplicate-free across replays.
func (s *Server) MigrateInstall(dir uuid.UUID, name string, meta *FileMeta) wire.Status {
	if name == "" || dir.IsNil() || !meta.Access.Valid() || !meta.Content.Valid() {
		return wire.StatusInval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	existed := s.exists(dir, name)
	if s.coupled {
		s.store.Put(coupledKey(dir, name), layout.JoinParts(meta.Access, meta.Content).Encode())
	} else {
		s.store.Put(accessKey(dir, name), meta.Access)
		s.store.Put(contentKey(dir, name), meta.Content)
	}
	if !existed {
		ent := layout.AppendDirent(nil, layout.Dirent{Name: name, UUID: meta.UUID()})
		s.store.AppendValue(direntsKey(dir), ent)
	}
	return wire.StatusOK
}

// MigrateDelete retires the source copy of a migrated file, but only if
// its stored bytes still equal the exported parts: a file mutated since
// the export is left in place (deleted=false) for the coordinator's next
// scan pass to re-export, so no update is lost to the migration race. A
// missing file reports deleted=false with StatusOK — the delete already
// happened (retry convergence).
func (s *Server) MigrateDelete(dir uuid.UUID, name string, access layout.FileAccess, content layout.FileContent) (deleted bool, st wire.Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, got := s.getMeta(dir, name)
	if got != wire.StatusOK {
		return false, wire.StatusOK
	}
	if !bytes.Equal(m.Access, access) || !bytes.Equal(m.Content, content) {
		return false, wire.StatusOK
	}
	if s.coupled {
		s.store.Delete(coupledKey(dir, name))
	} else {
		s.store.Delete(accessKey(dir, name))
		s.store.Delete(contentKey(dir, name))
	}
	s.removeDirent(dir, name)
	return true, wire.StatusOK
}

// attachMigration registers the migration handlers. Request layouts:
//
//	MigrateScan:    self i64, vnodes u32, n u32, n×(id i64), limit u32
//	MigrateInstall: dir uuid, name str, access blob, content blob
//	MigrateDelete:  dir uuid, name str, access blob, content blob
//
// Install and delete ride the wire.OpBatch path in practice — the
// coordinator packs one sub-request per file.
func (s *Server) attachMigration(rs *rpc.Server) {
	rs.Handle(wire.OpMigrateScan, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		self := int(d.I64())
		vnodes := int(d.U32())
		n := int(d.U32())
		ids := make([]int, 0, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			ids = append(ids, int(d.I64()))
		}
		limit := int(d.U32())
		if d.Err() != nil || len(ids) == 0 {
			return wire.StatusInval, nil
		}
		next := chash.NewRing(vnodes, ids...)
		moved, total, more := s.ExportMoved(next, self, limit)
		e := wire.NewEnc().U32(uint32(total)).U32(uint32(len(moved)))
		for _, f := range moved {
			e.UUID(f.Dir).Str(f.Name).Blob(f.Meta.Access).Blob(f.Meta.Content)
		}
		e.Bool(more)
		return wire.StatusOK, e.Bytes()
	})
	rs.Handle(wire.OpMigrateInstall, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		access, content := d.Blob(), d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		meta := &FileMeta{Access: layout.FileAccess(access), Content: layout.FileContent(content)}
		return s.MigrateInstall(dir, name, meta), nil
	})
	rs.Handle(wire.OpMigrateDelete, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		dir, name := d.UUID(), d.Str()
		access, content := d.Blob(), d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		deleted, st := s.MigrateDelete(dir, name, layout.FileAccess(access), layout.FileContent(content))
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, wire.NewEnc().Bool(deleted).Bytes()
	})
}
