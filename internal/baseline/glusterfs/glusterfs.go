// Package glusterfs models Gluster as compared in the paper: no metadata
// server at all — metadata is spread over the data servers by a distributed
// hash (DHT) on the path, and directories exist on *every* server.
//
// Preserved behaviors:
//
//   - mkdir is a synchronous broadcast: the directory must be created on
//     every brick, so its latency grows linearly with server count — the
//     paper's most dramatic baseline pathology (26x LocoFS, §4.2.1).
//   - File operations hash to one brick but pay extra xattr/layout round
//     trips (DHT lookup, layout set), giving the high touch latency of
//     Fig 6.
//   - readdir and dir-stat must aggregate every brick.
package glusterfs

import (
	"time"

	"locofs/internal/baseline/common"
	"locofs/internal/fsapi"
	"locofs/internal/fspath"
	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// Profile is the Gluster brick software model (a userspace translator stack
// over the local file system).
var Profile = common.Profile{
	Name:         "gluster",
	ReadService:  90 * time.Microsecond,
	WriteService: 150 * time.Microsecond,
	Workers:      8,
}

// Key prefixes: directories (replicated on every brick), file inodes and
// layout xattrs (on the hashed brick), dir entries (on the hashed brick).
const (
	kDir   = "D:"
	kFile  = "F:"
	kXattr = "X:"
	kEnt   = "E:"
)

// System is a running Gluster-model deployment.
type System struct {
	cluster *common.Cluster
	network *netsim.Network
	link    netsim.LinkConfig
}

// Start launches n bricks.
func Start(network *netsim.Network, n int, link netsim.LinkConfig) (*System, error) {
	cl, err := common.StartCluster(network, n, Profile, func() kv.Store {
		// Ordered store: real metadata servers index directory entries, so
		// a readdir/emptiness check costs O(result), not a full scan.
		return kv.NewBTreeStore()
	})
	if err != nil {
		return nil, err
	}
	// Every brick knows the root directory.
	for _, srv := range cl.Servers {
		srv.Store.Put([]byte(kDir+"/"), []byte{1})
	}
	return &System{cluster: cl, network: network, link: link}, nil
}

// Close shuts the system down.
func (s *System) Close() { s.cluster.Close() }

// Client is one Gluster client (libgfapi).
type Client struct {
	conn *common.Conn
	n    int
}

// NewClient connects a client.
func (s *System) NewClient() (*Client, error) {
	conn, err := common.DialCluster(s.network, s.cluster.Addrs, s.link)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, n: len(s.cluster.Addrs)}, nil
}

// Trips returns total round trips issued.
func (c *Client) Trips() uint64 { return c.conn.Trips() }

// Cost returns the client's cumulative modeled time.
func (c *Client) Cost() time.Duration { return c.conn.Cost() }

// Cluster exposes the underlying servers (experiments read busy times).
func (s *System) Cluster() *common.Cluster { return s.cluster }

// Close implements fsapi.FS.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) srvOf(p string) int { return common.HashServer(p, c.n) }

// Mkdir implements fsapi.FS: sequential lookup + create on every brick.
func (c *Client) Mkdir(path string, mode uint32) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, name := fspath.Split(p)
	if name == "" {
		return wire.StatusExist.Err()
	}
	for i := 0; i < c.n; i++ {
		ok, err := c.conn.Exists(i, []byte(kDir+parent))
		if err != nil {
			return err
		}
		if !ok {
			return wire.StatusNotFound.Err()
		}
		st, err := c.conn.CreateX(i, []byte(kDir+p), []byte{1})
		if err != nil {
			return err
		}
		if st != wire.StatusOK {
			return st.Err() // EEXIST surfaces from the first brick
		}
	}
	return nil
}

// Create implements fsapi.FS: DHT layout lookup, parent check, create, and
// layout-xattr set — four sequential requests to the hashed brick.
func (c *Client) Create(path string, mode uint32) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, name := fspath.Split(p)
	if name == "" {
		return wire.StatusInval.Err()
	}
	srv := c.srvOf(p)
	// DHT layout fetch for the parent directory.
	if _, err := c.conn.Exists(srv, []byte(kXattr+parent)); err != nil {
		return err
	}
	ok, err := c.conn.Exists(srv, []byte(kDir+parent))
	if err != nil {
		return err
	}
	if !ok {
		return wire.StatusNotFound.Err()
	}
	st, err := c.conn.CreateX(srv, []byte(kFile+p), []byte{0})
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	if st, err := c.conn.Put(srv, []byte(kEnt+parent+"/"+name), nil); err != nil || st != wire.StatusOK {
		if err != nil {
			return err
		}
		return st.Err()
	}
	st, err = c.conn.Put(srv, []byte(kXattr+p), []byte{1})
	if err != nil {
		return err
	}
	return st.Err()
}

// StatFile implements fsapi.FS: DHT lookup + getattr on the hashed brick.
func (c *Client) StatFile(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	srv := c.srvOf(p)
	ok, err := c.conn.Exists(srv, []byte(kFile+p))
	if err != nil {
		return err
	}
	if !ok {
		return wire.StatusNotFound.Err()
	}
	if _, _, err := c.conn.Get(srv, []byte(kXattr+p)); err != nil {
		return err
	}
	return nil
}

// StatDir implements fsapi.FS: a directory's attributes aggregate across
// all bricks, so every server is consulted.
func (c *Client) StatDir(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	for i := 0; i < c.n; i++ {
		ok, err := c.conn.Exists(i, []byte(kDir+p))
		if err != nil {
			return err
		}
		if !ok {
			return wire.StatusNotFound.Err()
		}
	}
	return nil
}

// Remove implements fsapi.FS.
func (c *Client) Remove(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, name := fspath.Split(p)
	srv := c.srvOf(p)
	st, err := c.conn.Del(srv, []byte(kFile+p))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	c.conn.Del(srv, []byte(kEnt+parent+"/"+name))
	c.conn.Del(srv, []byte(kXattr+p))
	return nil
}

// Readdir implements fsapi.FS: sequential aggregation over every brick.
func (c *Client) Readdir(path string) (int, error) {
	p, err := fspath.Clean(path)
	if err != nil {
		return 0, wire.StatusInval.Err()
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	total := 0
	for i := 0; i < c.n; i++ {
		// Files whose entries hash here.
		names, err := c.conn.ListPrefix(i, []byte(kEnt+prefix))
		if err != nil {
			return 0, err
		}
		for _, nm := range names {
			if fspath.ValidName(nm) {
				total++
			}
		}
	}
	// Subdirectories are replicated; count them once from brick 0.
	names, err := c.conn.ListPrefix(0, []byte(kDir+prefix))
	if err != nil {
		return 0, err
	}
	for _, nm := range names {
		if fspath.ValidName(nm) {
			total++
		}
	}
	return total, nil
}

// Rmdir implements fsapi.FS: emptiness check and removal on every brick.
func (c *Client) Rmdir(path string) error {
	p, err := fspath.Clean(path)
	if err != nil || p == "/" {
		return wire.StatusInval.Err()
	}
	for i := 0; i < c.n; i++ {
		cnt, err := c.conn.CountPrefix(i, []byte(kEnt+p+"/"))
		if err != nil {
			return err
		}
		if cnt > 0 {
			return wire.StatusNotEmpty.Err()
		}
	}
	if cnt, err := c.conn.CountPrefix(0, []byte(kDir+p+"/")); err != nil {
		return err
	} else if cnt > 0 {
		return wire.StatusNotEmpty.Err()
	}
	removed := false
	for i := 0; i < c.n; i++ {
		st, err := c.conn.Del(i, []byte(kDir+p))
		if err != nil {
			return err
		}
		if st == wire.StatusOK {
			removed = true
		}
	}
	if !removed {
		return wire.StatusNotFound.Err()
	}
	return nil
}

// Chmod implements fsapi.ExtendedFS: xattr read-modify-write on the brick.
func (c *Client) Chmod(path string, mode uint32) error { return c.rmwXattr(path) }

// Chown implements fsapi.ExtendedFS.
func (c *Client) Chown(path string, uid, gid uint32) error { return c.rmwXattr(path) }

// Truncate implements fsapi.ExtendedFS.
func (c *Client) Truncate(path string, size uint64) error { return c.rmwXattr(path) }

// Access implements fsapi.ExtendedFS.
func (c *Client) Access(path string) error { return c.StatFile(path) }

func (c *Client) rmwXattr(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	srv := c.srvOf(p)
	ok, err := c.conn.Exists(srv, []byte(kFile+p))
	if err != nil {
		return err
	}
	if !ok {
		return wire.StatusNotFound.Err()
	}
	if _, _, err := c.conn.Get(srv, []byte(kXattr+p)); err != nil {
		return err
	}
	st, err := c.conn.Put(srv, []byte(kXattr+p), []byte{2})
	if err != nil {
		return err
	}
	return st.Err()
}

var _ fsapi.ExtendedFS = (*Client)(nil)
