package core

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"locofs/internal/slo"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
)

// hotTopN bounds how many hot keys each server contributes to a status
// snapshot.
const hotTopN = 5

// StatusSource is one scrapable server: a name and a fetch that yields its
// current ServerStatus. Local sources close over a registry; remote ones
// wrap slo.FetchStatus over HTTP.
type StatusSource struct {
	Name  string
	Fetch func() (*slo.ServerStatus, error)
}

// LocalSource builds a StatusSource over an in-process server's registry.
// epoch (nil ok) supplies the server's live membership epoch and hot
// (nil ok) its heavy-hitter sketch.
func LocalSource(name string, reg *telemetry.Registry, epoch func() uint64, hot *trace.TopK, objs []slo.Objective) StatusSource {
	return StatusSource{
		Name: name,
		Fetch: func() (*slo.ServerStatus, error) {
			opts := slo.CollectOptions{Server: name, Objectives: objs}
			if epoch != nil {
				opts.Epoch = epoch()
			}
			if hot != nil {
				for _, hk := range hot.Top(hotTopN) {
					opts.Hot = append(opts.Hot, slo.HotEntry{Source: name, Key: hk.Key, Count: hk.Count})
				}
			}
			return slo.Collect(reg, opts), nil
		},
	}
}

// HTTPSource builds a StatusSource scraping a peer's /debug/slo endpoint.
func HTTPSource(name, url string, timeout time.Duration) StatusSource {
	client := &http.Client{Timeout: timeout}
	if timeout <= 0 {
		client.Timeout = slo.DefaultFetchTimeout
	}
	return StatusSource{
		Name:  name,
		Fetch: func() (*slo.ServerStatus, error) { return slo.FetchStatus(client, url) },
	}
}

// Aggregator polls a set of status sources and merges them into one
// cluster-wide snapshot. Sources is re-invoked on every poll, so a source
// list derived from live membership (Cluster.StatusSources) automatically
// follows AddFMS/RemoveFMS.
//
// A source whose fetch fails does not fail the poll: the merged snapshot
// simply lists it under Unreachable — a partially-scraped cluster view is
// exactly what an operator needs while a server is down.
type Aggregator struct {
	Sources func() []StatusSource

	// Anomalies, when set, contributes cluster-level anomaly state (e.g.
	// a flight recorder's engine via Recorder.AnomalyState) on top of
	// whatever the per-server statuses carried.
	Anomalies func() []slo.AnomalyState

	mu   sync.Mutex
	last *slo.ClusterStatus
}

// Poll scrapes every source concurrently and merges the results, caching
// and returning the snapshot.
func (a *Aggregator) Poll() *slo.ClusterStatus {
	srcs := a.Sources()
	statuses := make([]*slo.ServerStatus, len(srcs))
	errs := make([]error, len(srcs))
	var wg sync.WaitGroup
	for i, s := range srcs {
		wg.Add(1)
		go func(i int, s StatusSource) {
			defer wg.Done()
			statuses[i], errs[i] = s.Fetch()
		}(i, s)
	}
	wg.Wait()

	var ok []*slo.ServerStatus
	var unreachable []string
	for i, st := range statuses {
		if errs[i] != nil || st == nil {
			unreachable = append(unreachable, srcs[i].Name)
			continue
		}
		ok = append(ok, st)
	}
	cs := slo.MergeCluster(ok, unreachable)
	if a.Anomalies != nil {
		if extra := a.Anomalies(); len(extra) > 0 {
			cs.Anomalies = append(cs.Anomalies, extra...)
			sort.SliceStable(cs.Anomalies, func(i, j int) bool {
				return cs.Anomalies[i].LastNS > cs.Anomalies[j].LastNS
			})
		}
	}
	a.mu.Lock()
	a.last = cs
	a.mu.Unlock()
	return cs
}

// Last returns the most recent snapshot (nil before the first poll).
func (a *Aggregator) Last() *slo.ClusterStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last
}

// Run polls every interval until stop closes. Typical deployments instead
// poll lazily from the /debug/cluster handler; Run exists for dashboards
// that want a warm Last().
func (a *Aggregator) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			a.Poll()
		}
	}
}

// StatusSources returns one local source per live server — DMS, the
// current FMS set (membership-driven: servers added or removed online
// appear/disappear on the next poll), and every OSS — plus one source per
// tracked client registry, so client-side dircache/breaker/RTT telemetry
// (PR 7) joins the merge.
func (c *Cluster) StatusSources() []StatusSource {
	c.mu.Lock()
	addrs := append([]string{"dms"}, c.fmsAddrs...)
	addrs = append(addrs, c.ossAddrs...)
	hots := map[string]*trace.TopK{"dms": c.DMS.HotKeys()}
	for i, fa := range c.fmsAddrs {
		if i < len(c.FMS) {
			hots[fa] = c.FMS[i].HotKeys()
		}
	}
	regs := make(map[string]*telemetry.Registry, len(addrs))
	epochs := make(map[string]func() uint64, len(addrs))
	for _, addr := range addrs {
		if rs := c.rsByAddr[addr]; rs != nil {
			epochs[addr] = rs.Epoch
		}
		regs[addr] = c.Metrics[addr]
	}
	clientRegs := append([]*telemetry.Registry{}, c.clientRegs...)
	c.mu.Unlock()

	var out []StatusSource
	for _, addr := range addrs {
		if regs[addr] == nil || epochs[addr] == nil {
			continue
		}
		out = append(out, LocalSource(addr, regs[addr], epochs[addr], hots[addr], slo.ServerObjectives()))
	}
	for i, reg := range clientRegs {
		out = append(out, LocalSource(fmt.Sprintf("client-%d", i), reg, nil, nil, slo.ClientObjectives()))
	}
	return out
}

// ClusterStatus scrapes every live server and returns the merged
// cluster-health snapshot — the in-process equivalent of /debug/cluster —
// including the flight recorder's anomaly state.
func (c *Cluster) ClusterStatus() *slo.ClusterStatus {
	a := &Aggregator{Sources: c.StatusSources}
	if c.Flight != nil {
		a.Anomalies = c.Flight.AnomalyState
	}
	return a.Poll()
}
