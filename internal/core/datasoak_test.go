package core

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestDataPathSoak writes files of random sizes with random I/O patterns
// across several object store servers and verifies every byte by checksum —
// the end-to-end correctness of the uuid+blk_num data plane (§3.3.2).
func TestDataPathSoak(t *testing.T) {
	cluster, err := Start(Options{FMSCount: 2, OSSCount: 3, BlockSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const writers = 4
	const filesPerWriter = 12
	type fileSum struct {
		path string
		size int
		sum  [32]byte
	}
	sums := make([][]fileSum, writers)
	var wg sync.WaitGroup
	setup, _ := cluster.NewClient(ClientConfig{})
	setup.Mkdir("/soak", 0o777)
	setup.Close()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			cl, err := cluster.NewClient(ClientConfig{})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < filesPerWriter; i++ {
				p := fmt.Sprintf("/soak/w%d-f%d", w, i)
				if err := cl.Create(p, 0o644); err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
				f, err := cl.Open(p, true)
				if err != nil {
					t.Errorf("open %s: %v", p, err)
					return
				}
				// Random size up to ~5 blocks, written in random-order
				// random-size chunks (tests cross-block and in-block
				// offsets, overwrite, and holes filled later).
				size := 1 + rng.Intn(5*(1<<12))
				content := make([]byte, size)
				rng.Read(content)
				// Write in shuffled chunks.
				type chunk struct{ off, end int }
				var chunks []chunk
				for off := 0; off < size; {
					n := 1 + rng.Intn(3000)
					end := off + n
					if end > size {
						end = size
					}
					chunks = append(chunks, chunk{off, end})
					off = end
				}
				rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
				for _, c := range chunks {
					if _, err := f.WriteAt(content[c.off:c.end], uint64(c.off)); err != nil {
						t.Errorf("write %s: %v", p, err)
						return
					}
				}
				f.Close()
				sums[w] = append(sums[w], fileSum{path: p, size: size, sum: sha256.Sum256(content)})
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Verify with a fresh client.
	cl, err := cluster.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, list := range sums {
		for _, fsum := range list {
			a, err := cl.StatFile(fsum.path)
			if err != nil {
				t.Fatalf("stat %s: %v", fsum.path, err)
			}
			if a.Size != uint64(fsum.size) {
				t.Fatalf("%s size = %d, want %d", fsum.path, a.Size, fsum.size)
			}
			f, err := cl.Open(fsum.path, false)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, fsum.size)
			n, err := f.ReadAt(buf, 0)
			f.Close()
			if err != nil || n != fsum.size {
				t.Fatalf("read %s = %d, %v", fsum.path, n, err)
			}
			if got := sha256.Sum256(buf); !bytes.Equal(got[:], fsum.sum[:]) {
				t.Fatalf("%s checksum mismatch", fsum.path)
			}
		}
	}
	// Blocks are spread across all three object stores.
	used := 0
	for _, o := range cluster.OSS {
		if o.BlockCount() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d/3 object stores hold blocks — placement not spreading", used)
	}
}
