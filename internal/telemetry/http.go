package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// WriteJSONError writes a {"error": msg} JSON body with the given status
// code — the uniform error shape shared by every /debug endpoint (trace,
// slo, flight), so clients parse one format regardless of which handler
// rejected them.
func WriteJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// RequireGET rejects anything but GET/HEAD with a 405 JSON error, reporting
// whether the request may proceed. Every read-only admin endpoint starts
// with this check.
func RequireGET(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead || r.Method == "" {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	WriteJSONError(w, http.StatusMethodNotAllowed, "method "+r.Method+" not allowed")
	return false
}

// Handler builds the admin HTTP surface over the given registries:
//
//	/metrics     Prometheus text exposition (registries merged)
//	/debug/vars  expvar JSON (includes Go runtime memstats)
//	/debug/pprof profiling endpoints (index, profile, heap, trace, ...)
func Handler(regs ...*Registry) http.Handler {
	return HandlerWith(nil, regs...)
}

// HandlerWith is Handler plus extra routes mounted on the same mux — the
// hook the tracing/introspection endpoints (/debug/traces, /debug/hot) use
// to ride on the one admin port. A pattern ending in "/" also serves its
// subtree (net/http semantics); patterns must not collide with the built-in
// routes above.
func HandlerWith(extra map[string]http.Handler, regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !RequireGET(w, r) {
			return
		}
		snaps := make([]Snapshot, len(regs))
		for i, reg := range regs {
			snaps[i] = reg.Snapshot()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Merge(snaps...).WriteProm(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		if !RequireGET(w, r) {
			return
		}
		expvar.Handler().ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	seen := make(map[string]bool, len(extra))
	extras := make([]string, 0, len(extra))
	for pattern, h := range extra {
		mux.Handle(pattern, h)
		// A subtree pattern ("/x/") answers "/x" with a redirect; mounting
		// the bare path too spares clients (curl) the extra round trip.
		if bare := strings.TrimSuffix(pattern, "/"); bare != pattern && bare != "" {
			if _, taken := extra[bare]; !taken {
				mux.Handle(bare, h)
			}
		}
		if name := strings.TrimSuffix(pattern, "/"); !seen[name] {
			seen[name] = true
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	index := "locofs admin: /metrics /debug/vars /debug/pprof/"
	if len(extras) > 0 {
		index += " " + strings.Join(extras, " ")
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, index)
	})
	return mux
}

// Serve starts the admin surface on addr in a background goroutine and
// returns the server plus the bound address (useful with ":0").
func Serve(addr string, regs ...*Registry) (*http.Server, string, error) {
	return ServeWith(addr, nil, regs...)
}

// ServeWith is Serve with extra routes (see HandlerWith).
func ServeWith(addr string, extra map[string]http.Handler, regs ...*Registry) (*http.Server, string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: HandlerWith(extra, regs...)}
	go func() { _ = srv.Serve(l) }()
	return srv, l.Addr().String(), nil
}
