package client

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"locofs/internal/dms"
	"locofs/internal/fms"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/rpc"
	"locofs/internal/wire"
)

// testCluster wires a minimal DMS/FMS/OSS deployment directly (without the
// core package, which has its own tests) so the client package can be
// tested in isolation.
func testCluster(t *testing.T, fmsCount int) (*netsim.Network, Config) {
	t.Helper()
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	serve := func(addr string, attach func(*rpc.Server)) {
		rs := rpc.NewServer()
		attach(rs)
		l, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		go rs.Serve(l)
		t.Cleanup(rs.Shutdown)
	}
	serve("dms", dms.New(dms.Options{}).Attach)
	cfg := Config{Dialer: n, DMSAddr: "dms"}
	for i := 0; i < fmsCount; i++ {
		addr := fmt.Sprintf("fms-%d", i)
		serve(addr, fms.New(fms.Options{ServerID: uint32(i + 1)}).Attach)
		cfg.FMSAddrs = append(cfg.FMSAddrs, addr)
	}
	serve("oss", objstore.New(nil).Attach)
	cfg.OSSAddrs = []string{"oss"}
	return n, cfg
}

func dialTest(t *testing.T, cfg Config, opts ...DialOption) *Client {
	t.Helper()
	c, err := Dial(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(Config{}); err == nil {
		t.Error("Dial with nil dialer succeeded")
	}
	n := netsim.NewNetwork(netsim.Loopback)
	defer n.Close()
	if _, err := Dial(Config{Dialer: n}); err == nil {
		t.Error("Dial without FMS/OSS succeeded")
	}
	if _, err := Dial(Config{Dialer: n, DMSAddr: "nowhere",
		FMSAddrs: []string{"x"}, OSSAddrs: []string{"y"}}); err == nil {
		t.Error("Dial to missing servers succeeded")
	}
}

func TestInvalidPaths(t *testing.T) {
	_, cfg := testCluster(t, 1)
	c := dialTest(t, cfg)
	for _, op := range []struct {
		name string
		fn   func(p string) error
	}{
		{"mkdir", func(p string) error { return c.Mkdir(p, 0o755) }},
		{"create", func(p string) error { return c.Create(p, 0o644) }},
		{"remove", func(p string) error { return c.Remove(p) }},
		{"rmdir", func(p string) error { return c.Rmdir(p) }},
		{"chmod", func(p string) error { return c.Chmod(p, 0o600) }},
		{"statfile", func(p string) error { _, err := c.StatFile(p); return err }},
	} {
		for _, bad := range []string{"", "relative", "/.."} {
			if err := op.fn(bad); wire.StatusOf(err) != wire.StatusInval {
				t.Errorf("%s(%q) = %v, want EINVAL", op.name, bad, err)
			}
		}
	}
	// Operating on "/" as a file is invalid.
	if err := c.Create("/", 0o644); wire.StatusOf(err) != wire.StatusInval {
		t.Errorf("create(/) = %v, want EINVAL", err)
	}
}

func TestPathNormalizationAliases(t *testing.T) {
	_, cfg := testCluster(t, 2)
	c := dialTest(t, cfg)
	if err := c.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/a/f", 0o644); err != nil {
		t.Fatal(err)
	}
	// All spellings of the same path resolve identically.
	for _, alias := range []string{"/a/f", "//a//f", "/a/./f", "/a/b/../f"} {
		if _, err := c.StatFile(alias); err != nil {
			t.Errorf("StatFile(%q) = %v", alias, err)
		}
	}
	// And the aliased create is EEXIST, not a second file.
	if err := c.Create("/a//f", 0o644); wire.StatusOf(err) != wire.StatusExist {
		t.Errorf("aliased create = %v, want EEXIST", err)
	}
}

func TestFileHandleSemantics(t *testing.T) {
	_, cfg := testCluster(t, 1)
	c := dialTest(t, cfg)
	c.Mkdir("/d", 0o755)
	c.Create("/d/f", 0o644)

	ro, err := c.Open("/d/f", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.WriteAt([]byte("x"), 0); wire.StatusOf(err) != wire.StatusPerm {
		t.Errorf("write on read-only handle = %v, want EPERM", err)
	}
	ro.Close()
	if _, err := ro.ReadAt(make([]byte, 1), 0); wire.StatusOf(err) != wire.StatusInval {
		t.Errorf("read after close = %v, want EINVAL", err)
	}

	rw, err := c.Open("/d/f", true)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if n, err := rw.WriteAt(nil, 0); n != 0 || err != nil {
		t.Errorf("empty write = %d, %v", n, err)
	}
	data := []byte("abc")
	if _, err := rw.WriteAt(data, 5); err != nil {
		t.Fatal(err)
	}
	if rw.Size() != 8 {
		t.Errorf("Size = %d, want 8", rw.Size())
	}
	// Reads from offset 0 see the hole as zeros.
	buf := make([]byte, 8)
	if n, err := rw.ReadAt(buf, 0); err != nil || n != 8 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, []byte{0, 0, 0, 0, 0, 'a', 'b', 'c'}) {
		t.Errorf("buf = %v", buf)
	}
	if _, err := c.Open("/d/missing", false); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("open missing = %v, want ENOENT", err)
	}
}

func TestStatFallsBackToDir(t *testing.T) {
	_, cfg := testCluster(t, 2)
	c := dialTest(t, cfg)
	c.Mkdir("/onlydir", 0o755)
	a, err := c.Stat("/onlydir")
	if err != nil || !a.IsDir {
		t.Errorf("Stat(dir) = %+v, %v", a, err)
	}
	if _, err := c.Stat("/neither"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("Stat(missing) = %v, want ENOENT", err)
	}
	if a, err := c.Stat("/"); err != nil || !a.IsDir {
		t.Errorf("Stat(/) = %+v, %v", a, err)
	}
}

func TestRenameFileErrors(t *testing.T) {
	_, cfg := testCluster(t, 4)
	c := dialTest(t, cfg)
	c.Mkdir("/a", 0o755)
	c.Mkdir("/b", 0o755)
	c.Create("/a/f", 0o644)
	c.Create("/b/exists", 0o644)
	if err := c.RenameFile("/a/missing", "/b/x"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("rename missing = %v, want ENOENT", err)
	}
	if err := c.RenameFile("/a/f", "/b/exists"); wire.StatusOf(err) != wire.StatusExist {
		t.Errorf("rename onto existing = %v, want EEXIST", err)
	}
	// The failed rename must not have destroyed the source.
	if _, err := c.StatFile("/a/f"); err != nil {
		t.Errorf("source vanished after failed rename: %v", err)
	}
}

func TestChmodDirInvalidatesCache(t *testing.T) {
	_, cfg := testCluster(t, 1)
	c := dialTest(t, cfg)
	c.Mkdir("/d", 0o755)
	c.Create("/d/warm", 0o644) // caches /d
	if err := c.ChmodDir("/d", 0o700); err != nil {
		t.Fatal(err)
	}
	// Next op re-fetches the directory (fresh mode visible).
	a, err := c.StatDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if a.Mode&0o777 != 0o700 {
		t.Errorf("mode after ChmodDir = %o (stale cache?)", a.Mode&0o777)
	}
}

func TestCostMonotonic(t *testing.T) {
	_, cfg := testCluster(t, 1)
	cfg.Link = netsim.LinkConfig{RTT: time.Millisecond}
	c := dialTest(t, cfg)
	c0 := c.Cost()
	c.Mkdir("/x", 0o755)
	c1 := c.Cost()
	if c1 <= c0 {
		t.Errorf("Cost did not grow: %v -> %v", c0, c1)
	}
	if c1-c0 < time.Millisecond {
		t.Errorf("mkdir cost %v < 1 RTT", c1-c0)
	}
}

func TestReaddirEmptyAndRoot(t *testing.T) {
	_, cfg := testCluster(t, 2)
	c := dialTest(t, cfg)
	ents, err := c.Readdir("/")
	if err != nil || len(ents) != 0 {
		t.Errorf("Readdir(empty /) = %v, %v", ents, err)
	}
	c.Mkdir("/z", 0o755)
	ents, err = c.Readdir("/")
	if err != nil || len(ents) != 1 || ents[0].Name != "z" || !ents[0].IsDir {
		t.Errorf("Readdir(/) = %v, %v", ents, err)
	}
	ents, err = c.Readdir("/z")
	if err != nil || len(ents) != 0 {
		t.Errorf("Readdir(empty dir) = %v, %v", ents, err)
	}
}
