package client

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"locofs/internal/dms"
	"locofs/internal/fms"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/rpc"
)

// TestFullStackOverTCP runs the whole client/server stack over real TCP
// sockets — the deployment mode of cmd/locofsd.
func TestFullStackOverTCP(t *testing.T) {
	listen := func(attach func(*rpc.Server)) (string, *rpc.Server) {
		l, err := netsim.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rs := rpc.NewServer()
		attach(rs)
		go rs.Serve(l)
		t.Cleanup(rs.Shutdown)
		return l.Addr(), rs
	}
	dmsAddr, _ := listen(dms.New(dms.Options{}).Attach)
	fmsAddr1, _ := listen(fms.New(fms.Options{ServerID: 1}).Attach)
	fmsAddr2, _ := listen(fms.New(fms.Options{ServerID: 2}).Attach)
	ossAddr, _ := listen(objstore.New(nil).Attach)

	c, err := Dial(Config{
		Dialer:   netsim.TCPDialer{},
		DMSAddr:  dmsAddr,
		FMSAddrs: []string{fmsAddr1, fmsAddr2},
		OSSAddrs: []string{ossAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Mkdir("/tcp", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Create("/tcp/f"+string(rune('a'+i)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := c.Open("/tcp/fa", true)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("tcp"), 5000)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !bytes.Equal(buf, payload) {
		t.Error("tcp data round trip mismatch")
	}
	ents, err := c.Readdir("/tcp")
	if err != nil || len(ents) != 20 {
		t.Errorf("readdir over tcp = %d entries, %v", len(ents), err)
	}
	if _, err := c.RenameDir("/tcp", "/tcp2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StatFile("/tcp2/fa"); err != nil {
		t.Errorf("stat after rename over tcp: %v", err)
	}
}

// TestFMSCrashSurfacesErrors: when a metadata server dies, operations
// routed to it fail promptly with a transport error instead of hanging;
// operations routed to surviving servers keep working.
func TestFMSCrashSurfacesErrors(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	serve := func(addr string, attach func(*rpc.Server)) *rpc.Server {
		rs := rpc.NewServer()
		attach(rs)
		l, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		go rs.Serve(l)
		return rs
	}
	serve("dms", dms.New(dms.Options{}).Attach)
	fmsServers := []*rpc.Server{
		serve("fms-0", fms.New(fms.Options{ServerID: 1}).Attach),
		serve("fms-1", fms.New(fms.Options{ServerID: 2}).Attach),
	}
	serve("oss", objstore.New(nil).Attach)

	c, err := Dial(Config{
		Dialer:   n,
		DMSAddr:  "dms",
		FMSAddrs: []string{"fms-0", "fms-1"},
		OSSAddrs: []string{"oss"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Mkdir("/d", 0o755)

	// Find names landing on each FMS.
	parent, err := c.resolveDir("/d", opCtx{})
	if err != nil {
		t.Fatal(err)
	}
	var on0, on1 string
	for i := 0; on0 == "" || on1 == ""; i++ {
		name := fmt.Sprintf("probe%d", i)
		if c.view.Load().ring.Locate(fms.FileKey(parent.UUID(), name)) == 0 {
			if on0 == "" {
				on0 = name
			}
		} else if on1 == "" {
			on1 = name
		}
		if i > 200 {
			t.Fatal("could not find names for both servers")
		}
	}

	// Kill FMS 0. Its connection drops; calls to it must error out fast.
	fmsServers[0].Shutdown()
	// Give the client's reader a moment to observe the close.
	deadline := time.Now().Add(2 * time.Second)
	var errOn0 error
	for {
		errOn0 = c.Create("/d/"+on0, 0o644)
		if errOn0 != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if errOn0 == nil {
		t.Error("create on crashed FMS succeeded")
	}
	// The surviving FMS still serves.
	if err := c.Create("/d/"+on1, 0o644); err != nil {
		t.Errorf("create on surviving FMS failed: %v", err)
	}
	if _, err := c.StatFile("/d/" + on1); err != nil {
		t.Errorf("stat on surviving FMS failed: %v", err)
	}
	fmsServers[1].Shutdown()
}
