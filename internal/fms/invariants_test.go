package fms

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"locofs/internal/kv"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// TestInvariantDirentsMatchFiles (DESIGN.md invariant 4): after an arbitrary
// concurrent create/remove storm, the concatenated dirent list equals
// exactly the set of live files.
func TestInvariantDirentsMatchFiles(t *testing.T) {
	s := New(Options{ServerID: 1})
	dir := uuid.New(0, 7)
	const workers = 8
	const opsPerWorker = 300

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				name := fmt.Sprintf("w%d-f%d", w, rng.Intn(40))
				if rng.Intn(2) == 0 {
					s.Create(dir, name, 0o644, 1, 1)
				} else {
					s.Remove(dir, name, 1, 1)
				}
			}
		}(w)
	}
	wg.Wait()

	// The dirent list and the access-part keys must describe the same set.
	ents, _, st := s.ReaddirFiles(dir, "", 0)
	if st != wire.StatusOK {
		t.Fatal(st)
	}
	fromDirents := map[string]bool{}
	for _, e := range ents {
		if fromDirents[e.Name] {
			t.Errorf("duplicate dirent for %q", e.Name)
		}
		fromDirents[e.Name] = true
	}
	live := map[string]bool{}
	for name := range fromDirents {
		_ = name
	}
	for w := 0; w < workers; w++ {
		for f := 0; f < 40; f++ {
			name := fmt.Sprintf("w%d-f%d", w, f)
			if _, st := s.Getattr(dir, name); st == wire.StatusOK {
				live[name] = true
			}
		}
	}
	if len(live) != len(fromDirents) {
		t.Errorf("live files = %d, dirents = %d", len(live), len(fromDirents))
	}
	for name := range live {
		if !fromDirents[name] {
			t.Errorf("live file %q missing from dirents", name)
		}
	}
	for name := range fromDirents {
		if !live[name] {
			t.Errorf("dirent %q has no live file", name)
		}
	}
}

// TestInvariantNoOrphanParts (DESIGN.md invariant 2): in decoupled mode, a
// file's access part and content part exist or vanish together, even under
// concurrent create/remove of the same names.
func TestInvariantNoOrphanParts(t *testing.T) {
	store := kv.NewHashStore()
	s := New(Options{Store: store, ServerID: 1})
	dir := uuid.New(0, 9)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 400; i++ {
				name := fmt.Sprintf("f%d", rng.Intn(25)) // heavy name contention
				if rng.Intn(2) == 0 {
					s.Create(dir, name, 0o644, 1, 1)
				} else {
					s.Remove(dir, name, 1, 1)
				}
			}
		}(w)
	}
	wg.Wait()

	access := map[string]bool{}
	content := map[string]bool{}
	store.ForEach(func(k, v []byte) bool {
		if len(k) < 2 {
			return true
		}
		switch string(k[:2]) {
		case "A:":
			access[string(k[2:])] = true
		case "C:":
			content[string(k[2:])] = true
		}
		return true
	})
	for k := range access {
		if !content[k] {
			t.Errorf("access part without content part: %q", k)
		}
	}
	for k := range content {
		if !access[k] {
			t.Errorf("content part without access part: %q", k)
		}
	}
}

// TestInvariantUUIDStableAcrossMetaMoves: CreateWithMeta + Remove (the
// f-rename path) must preserve the UUID through arbitrarily many hops.
func TestInvariantUUIDStableAcrossMetaMoves(t *testing.T) {
	s := New(Options{ServerID: 1})
	dirs := []uuid.UUID{uuid.New(0, 1), uuid.New(0, 2), uuid.New(0, 3)}
	u, st := s.Create(dirs[0], "hop0", 0o644, 1, 1)
	if st != wire.StatusOK {
		t.Fatal(st)
	}
	cur := 0
	name := "hop0"
	for hop := 1; hop < 10; hop++ {
		m, st := s.Getattr(dirs[cur], name)
		if st != wire.StatusOK {
			t.Fatal(st)
		}
		next := (cur + 1) % len(dirs)
		newName := fmt.Sprintf("hop%d", hop)
		if st := s.CreateWithMeta(dirs[next], newName, m); st != wire.StatusOK {
			t.Fatal(st)
		}
		if _, st := s.Remove(dirs[cur], name, 1, 1); st != wire.StatusOK {
			t.Fatal(st)
		}
		cur, name = next, newName
	}
	m, st := s.Getattr(dirs[cur], name)
	if st != wire.StatusOK {
		t.Fatal(st)
	}
	if m.UUID() != u {
		t.Errorf("uuid changed across moves: %v -> %v", u, m.UUID())
	}
	if s.FileCount() != 1 {
		t.Errorf("FileCount = %d, want 1", s.FileCount())
	}
}
