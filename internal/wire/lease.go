package wire

// Lease-coherence codecs (see internal/dms lease table and DESIGN.md §14).
//
// A LeaseGrant rides as a fixed-size trailer at the end of DMS lookup and
// readdir response bodies — the same backward-compatible trailing-extension
// pattern the readdir remaining-count uses — and tells the client "you may
// cache this result for DurMS, and it was valid as of recall seq Seq".
// A Recall is one entry of the DMS's recall log, fetched via OpLeaseRecall
// when the response header's Lease field shows the client fell behind.

// RecallKind classifies what changed about a recalled directory, so the
// client can drop exactly the affected cache entries: a creation kills
// negative entries and the parent's listing, a removal kills the whole
// subtree, an attribute patch kills just the one inode entry.
type RecallKind uint8

const (
	// RecallCreated: a child was created under (or renamed to) Path's
	// parent; Path itself is the created directory. Invalidate negative
	// entries at/under Path and the parent directory's cached listing.
	RecallCreated RecallKind = iota
	// RecallRemoved: Path was removed (or renamed away). Invalidate cached
	// inodes, listings and negatives at/under Path, plus the parent listing.
	RecallRemoved
	// RecallPatched: Path's inode attributes changed in place (chmod/chown).
	// Invalidate the cached inode for Path only.
	RecallPatched
)

// String returns a short name for the recall kind.
func (k RecallKind) String() string {
	switch k {
	case RecallCreated:
		return "created"
	case RecallRemoved:
		return "removed"
	case RecallPatched:
		return "patched"
	}
	return "recall(?)"
}

// LeaseGrant is the cacheability trailer on DMS lookup/readdir responses.
// The zero value (DurMS == 0) means "not cacheable" — e.g. a truncated
// readdir page that doesn't represent the whole subdir listing.
type LeaseGrant struct {
	// Seq is the DMS recall sequence the grant was issued at. A grant is
	// fresh as long as the client has applied (or observed no recalls past)
	// this sequence.
	Seq uint64
	// DurMS is the lease duration in milliseconds from receipt.
	DurMS uint32
}

// Valid reports whether the grant permits caching at all.
func (g LeaseGrant) Valid() bool { return g.DurMS > 0 }

// AppendLeaseGrant appends g as a fixed 12-byte trailer.
func AppendLeaseGrant(e *Enc, g LeaseGrant) {
	e.U64(g.Seq).U32(g.DurMS)
}

// DecodeLeaseGrant consumes a trailing LeaseGrant if the decoder has one
// left, returning the zero (invalid) grant otherwise. Callers must have
// consumed everything that precedes the trailer first.
func DecodeLeaseGrant(d *Dec) LeaseGrant {
	if d.Remaining() < 12 {
		return LeaseGrant{}
	}
	return LeaseGrant{Seq: d.U64(), DurMS: d.U32()}
}

// Recall is one published lease-recall log entry.
type Recall struct {
	Seq  uint64
	Kind RecallKind
	Path string
}

// EncodeRecallReq encodes an OpLeaseRecall request: fetch entries with
// Seq > since.
func EncodeRecallReq(since uint64) []byte {
	e := NewEnc()
	defer e.Free()
	e.U64(since)
	return append([]byte(nil), e.Bytes()...)
}

// DecodeRecallReq decodes an OpLeaseRecall request body.
func DecodeRecallReq(body []byte) (since uint64, err error) {
	d := NewDec(body)
	since = d.U64()
	return since, d.Err()
}

// EncodeRecallResp encodes an OpLeaseRecall response: the server's current
// recall seq, a reset flag (true when the requested window predates the
// bounded log's retention, so the client must drop its whole cache), and
// the retained entries after `since` (empty when reset).
func EncodeRecallResp(cur uint64, reset bool, entries []Recall) []byte {
	e := NewEnc()
	defer e.Free()
	e.U64(cur).Bool(reset).U32(uint32(len(entries)))
	for _, r := range entries {
		e.U64(r.Seq).U8(uint8(r.Kind)).Str(r.Path)
	}
	return append([]byte(nil), e.Bytes()...)
}

// DecodeRecallResp decodes an OpLeaseRecall response body.
func DecodeRecallResp(body []byte) (cur uint64, reset bool, entries []Recall, err error) {
	d := NewDec(body)
	cur = d.U64()
	reset = d.Bool()
	n := d.U32()
	if err := d.Err(); err != nil {
		return 0, false, nil, err
	}
	entries = make([]Recall, 0, n)
	for i := uint32(0); i < n; i++ {
		r := Recall{Seq: d.U64(), Kind: RecallKind(d.U8()), Path: d.Str()}
		if err := d.Err(); err != nil {
			return 0, false, nil, err
		}
		entries = append(entries, r)
	}
	return cur, reset, entries, nil
}
