package bench

import (
	"locofs/internal/netsim"
)

// Env sets the scale of the experiments. Quick keeps unit tests fast;
// Paper approaches the paper's workload sizes for the CLI.
type Env struct {
	// Link is the modeled client-server network.
	Link netsim.LinkConfig
	// Servers is the metadata-server sweep (the paper uses 1..16).
	Servers []int
	// LatItems is the per-phase op count for single-client latency runs.
	LatItems int
	// TputItems is the per-client op count for throughput runs.
	TputItems int
	// Depths is the directory-depth sweep of Fig 13.
	Depths []int
	// RenameCounts is the renamed-directory sweep of Fig 14.
	RenameCounts []int
	// IOSizes is the I/O size sweep of Fig 12, in bytes.
	IOSizes []int
	// ClientScale scales the paper's Table 3 client counts for throughput
	// runs (1.0 = paper scale).
	ClientScale float64
}

// Clients returns the (scaled) client count for a throughput run.
func (e Env) Clients(sys string, servers int) int {
	scale := e.ClientScale
	if scale <= 0 {
		scale = 1
	}
	c := int(float64(PaperClients(sys, servers)) * scale)
	if c < 1 {
		c = 1
	}
	return c
}

// Quick is the scaled-down environment used by tests.
func Quick() Env {
	return Env{
		Link:         netsim.Paper1GbE,
		Servers:      []int{1, 4},
		LatItems:     60,
		TputItems:    40,
		Depths:       []int{1, 4, 16},
		RenameCounts: []int{100, 1000},
		IOSizes:      []int{512, 64 << 10, 1 << 20},
		ClientScale:  1,
	}
}

// Paper is the full-scale environment used by cmd/locofs-bench.
func Paper() Env {
	return Env{
		Link:         netsim.Paper1GbE,
		Servers:      []int{1, 2, 4, 8, 16},
		LatItems:     1000,
		TputItems:    500,
		Depths:       []int{1, 2, 4, 8, 16, 32},
		RenameCounts: []int{1000, 10000, 100000},
		IOSizes:      []int{512, 4 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20},
		ClientScale:  1,
	}
}

// MaxServers returns the largest server count in the sweep.
func (e Env) MaxServers() int {
	m := 1
	for _, s := range e.Servers {
		if s > m {
			m = s
		}
	}
	return m
}

// PaperClients returns the paper's Table 3 client counts for a system at a
// server count (interpolating for counts the paper does not list).
func PaperClients(sys string, servers int) int {
	type row struct{ c1, c2, c4, c8, c16 int }
	var r row
	switch sys {
	case SysLocoC, SysLocoNC, SysLocoCF, SysLocoDF:
		r = row{30, 50, 70, 120, 144}
	case SysCephFS, SysGluster, SysIndexFS:
		r = row{20, 30, 50, 70, 110}
	case SysLustreD1, SysLustreD2:
		r = row{40, 60, 90, 120, 192}
	default:
		r = row{30, 50, 70, 120, 144}
	}
	switch {
	case servers <= 1:
		return r.c1
	case servers <= 2:
		return r.c2
	case servers <= 4:
		return r.c4
	case servers <= 8:
		return r.c8
	default:
		return r.c16
	}
}
