// Package lsm implements a log-structured merge-tree key-value store — the
// role LevelDB plays inside IndexFS in the paper. Writes land in an in-memory
// skiplist memtable (optionally mirrored to a write-ahead log), memtables
// flush to immutable sorted runs, and runs are merge-compacted. The store
// also satisfies the kv.Store interface, but note that PatchInPlace and
// AppendValue are implemented as full read-modify-write cycles: an LSM store
// cannot update a value in place, which is exactly the large-value overhead
// the paper's decoupled metadata design avoids (§2.2.2).
package lsm

import (
	"bytes"
	"math/rand"
)

const (
	skipMaxLevel = 16
	skipP        = 4 // 1/4 promotion probability
)

type skipNode struct {
	key  []byte
	val  []byte
	tomb bool
	next [skipMaxLevel]*skipNode
}

// skiplist is a sorted in-memory map from byte-string keys to (value,
// tombstone) pairs. It is not safe for concurrent use; the Store serializes
// access.
type skiplist struct {
	head  *skipNode
	level int
	size  int // number of nodes
	bytes int // approximate memory footprint of keys+values
	rng   *rand.Rand
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:  &skipNode{},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) randomLevel() int {
	lvl := 1
	for lvl < skipMaxLevel && s.rng.Intn(skipP) == 0 {
		lvl++
	}
	return lvl
}

// findPrev fills prev[i] with the rightmost node at level i whose key is
// strictly less than key.
func (s *skiplist) findPrev(key []byte, prev *[skipMaxLevel]*skipNode) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		prev[i] = x
	}
}

// put inserts or replaces key with (val, tomb).
func (s *skiplist) put(key, val []byte, tomb bool) {
	var prev [skipMaxLevel]*skipNode
	s.findPrev(key, &prev)
	if n := prev[0].next[0]; n != nil && bytes.Equal(n.key, key) {
		s.bytes += len(val) - len(n.val)
		n.val = val
		n.tomb = tomb
		return
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			prev[i] = s.head
		}
		s.level = lvl
	}
	n := &skipNode{key: key, val: val, tomb: tomb}
	for i := 0; i < lvl; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	s.size++
	s.bytes += len(key) + len(val) + 64 // 64 ≈ node overhead
}

// get returns the value and tombstone flag for key.
func (s *skiplist) get(key []byte) (val []byte, tomb, ok bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	n := x.next[0]
	if n != nil && bytes.Equal(n.key, key) {
		return n.val, n.tomb, true
	}
	return nil, false, false
}

// seek returns the first node with key >= target (nil start = first node).
func (s *skiplist) seek(target []byte) *skipNode {
	if target == nil {
		return s.head.next[0]
	}
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, target) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}
