package bench

import (
	"fmt"
	"time"

	"locofs/internal/baseline/cephfs"
	"locofs/internal/baseline/common"
	"locofs/internal/baseline/glusterfs"
	"locofs/internal/baseline/indexfs"
	"locofs/internal/baseline/lustrefs"
	"locofs/internal/core"
	"locofs/internal/fsapi"
	"locofs/internal/netsim"
	"locofs/internal/telemetry"
)

// System identifiers used across experiments. The names match the paper's
// figure legends.
const (
	SysLocoC    = "LocoFS-C"  // client cache enabled
	SysLocoNC   = "LocoFS-NC" // client cache disabled
	SysLocoCF   = "LocoFS-CF" // coupled file metadata (ablation, Fig 11)
	SysLocoDF   = "LocoFS-DF" // decoupled file metadata (alias of LocoFS-C)
	SysIndexFS  = "IndexFS"
	SysCephFS   = "CephFS"
	SysGluster  = "Gluster"
	SysLustreD1 = "Lustre D1"
	SysLustreD2 = "Lustre D2"
)

// Fig6Systems is the lineup of the latency/throughput comparisons.
var Fig6Systems = []string{SysLocoC, SysLocoNC, SysLustreD1, SysLustreD2, SysCephFS, SysGluster}

// Fig10Systems adds IndexFS for the co-located study.
var Fig10Systems = []string{SysLocoC, SysIndexFS, SysLustreD1, SysLustreD2, SysCephFS, SysGluster}

// locoWorkers models the request parallelism of one LocoFS metadata server
// (the paper's nodes have 8 cores).
const locoWorkers = 8

// SUT is a started system under test: a client factory plus server-side
// accounting for throughput modeling.
type SUT struct {
	Name string
	// NewFS returns a fresh client.
	NewFS func() (fsapi.FS, error)
	// MetaBusy returns cumulative service time per *metadata* server.
	MetaBusy func() []time.Duration
	// Workers is the modeled request parallelism per metadata server.
	Workers int
	// Metrics aggregates per-op round-trip telemetry across every client
	// created by NewFS (LocoFS systems only; nil for baselines). Use
	// Metrics.Snapshot().OpTable(rpc.MetricRTT) for a per-op breakdown.
	Metrics *telemetry.Registry
	// Close shuts the system down.
	Close func()
}

// StartSystem launches the named system with n metadata servers and the
// given modeled link.
func StartSystem(name string, n int, link netsim.LinkConfig) (*SUT, error) {
	switch name {
	case SysLocoC, SysLocoNC, SysLocoCF, SysLocoDF:
		opts := core.Options{
			FMSCount:            n,
			Link:                link,
			CostModel:           &core.PaperKVCost,
			DisableClientCache:  name == SysLocoNC,
			CoupledFileMetadata: name == SysLocoCF,
		}
		cluster, err := core.Start(opts)
		if err != nil {
			return nil, err
		}
		reg := telemetry.NewRegistry()
		return &SUT{
			Name: name,
			NewFS: func() (fsapi.FS, error) {
				cl, err := cluster.NewClient(core.ClientConfig{Metrics: reg})
				if err != nil {
					return nil, err
				}
				return fsapi.LocoFS{C: cl}, nil
			},
			MetaBusy: func() []time.Duration {
				// DMS + FMSs only (the first 1+n rpc servers).
				return cluster.ServerBusy()[:1+n]
			},
			Workers: locoWorkers,
			Metrics: reg,
			Close:   cluster.Close,
		}, nil
	case SysIndexFS:
		network := netsim.NewNetwork(netsim.Loopback)
		sys, err := indexfs.Start(network, n, link)
		if err != nil {
			network.Close()
			return nil, err
		}
		return baselineSUT(name, network, sys.Cluster(), func() (fsapi.FS, error) { return sys.NewClient() }, func() { sys.Close(); network.Close() }), nil
	case SysCephFS:
		network := netsim.NewNetwork(netsim.Loopback)
		sys, err := cephfs.Start(network, n, link)
		if err != nil {
			network.Close()
			return nil, err
		}
		return baselineSUT(name, network, sys.Cluster(), func() (fsapi.FS, error) { return sys.NewClient() }, func() { sys.Close(); network.Close() }), nil
	case SysGluster:
		network := netsim.NewNetwork(netsim.Loopback)
		sys, err := glusterfs.Start(network, n, link)
		if err != nil {
			network.Close()
			return nil, err
		}
		return baselineSUT(name, network, sys.Cluster(), func() (fsapi.FS, error) { return sys.NewClient() }, func() { sys.Close(); network.Close() }), nil
	case SysLustreD1, SysLustreD2:
		variant := lustrefs.DNE1
		if name == SysLustreD2 {
			variant = lustrefs.DNE2
		}
		network := netsim.NewNetwork(netsim.Loopback)
		sys, err := lustrefs.Start(network, n, variant, link)
		if err != nil {
			network.Close()
			return nil, err
		}
		return baselineSUT(name, network, sys.Cluster(), func() (fsapi.FS, error) { return sys.NewClient() }, func() { sys.Close(); network.Close() }), nil
	}
	return nil, fmt.Errorf("bench: unknown system %q", name)
}

func baselineSUT(name string, network *netsim.Network, cl *common.Cluster, newFS func() (fsapi.FS, error), closeFn func()) *SUT {
	return &SUT{
		Name:  name,
		NewFS: newFS,
		MetaBusy: func() []time.Duration {
			out := make([]time.Duration, len(cl.Servers))
			for i, s := range cl.Servers {
				out[i] = s.RPC.Busy()
			}
			return out
		},
		Workers: cl.Profile.Workers,
		Close:   closeFn,
	}
}
