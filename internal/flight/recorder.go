package flight

import (
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/slo"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
)

// DefaultMaxBundles is the in-memory bundle retention when Config.MaxBundles
// is zero.
const DefaultMaxBundles = 4

// DefaultBundleGap rate-limits anomaly-triggered captures: at most one
// bundle per gap (manual captures are never limited).
const DefaultBundleGap = 10 * time.Second

// Config assembles a Recorder.
type Config struct {
	// Server names the process ("dms", "fms-1", "cluster", ...).
	Server string
	// Journal to record into; nil creates a fresh one of BufEvents capacity.
	Journal *Journal
	// BufEvents sizes a journal created here (<= 0 = DefaultBufEvents).
	BufEvents int
	// Rules for the anomaly engine (nil = DefaultRules).
	Rules []Rule
	// Tracer supplies force-kept spans for bundles (nil = none).
	Tracer *trace.Tracer
	// Status supplies the process status frozen into bundles and, unless
	// SLO is set, the class statuses the SLO rules evaluate.
	Status func() *slo.ServerStatus
	// SLO overrides the class-status feed for the anomaly rules.
	SLO func() []slo.ClassStatus
	// Extra supplies component-specific bundle sections (cache detail,
	// membership state, ...).
	Extra func() map[string]any
	// Dir spools captured bundles to disk ("" = memory only).
	Dir string
	// MaxBundles bounds in-memory bundle retention (<= 0 = DefaultMaxBundles).
	MaxBundles int
	// MaxEvents / MaxSpans bound each bundle (<= 0 = package defaults).
	MaxEvents, MaxSpans int
	// PollInterval paces the engine's Run loop (<= 0 = DefaultPollInterval).
	PollInterval time.Duration
	// BundleGap rate-limits anomaly captures (<= 0 = DefaultBundleGap;
	// negative to disable the limit is not supported — use manual reasons).
	BundleGap time.Duration
	// Now is the recorder clock (nil = time.Now).
	Now func() time.Time
	// OnBundle runs after every capture (e.g. logging the spool path).
	OnBundle func(*Bundle)
}

// Recorder bundles one process's (or one in-process cluster's) flight
// recorder: the journal, the anomaly engine driving it, and bundle capture
// with bounded retention. One Recorder per admin surface.
type Recorder struct {
	cfg      Config
	journal  *Journal
	engine   *Engine
	now      func() time.Time
	gap      time.Duration
	mu       sync.Mutex
	bundles  []*Bundle // newest last
	lastCap  time.Time // last anomaly-triggered capture (rate limit)
	captures atomic.Uint64
	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
}

// New assembles a Recorder from cfg (the engine is created but not started;
// call Start for background polling or Poll from your own loop).
func New(cfg Config) *Recorder {
	r := &Recorder{cfg: cfg, journal: cfg.Journal, now: cfg.Now, gap: cfg.BundleGap, stop: make(chan struct{})}
	if r.journal == nil {
		r.journal = NewJournal(cfg.BufEvents)
	}
	if r.now == nil {
		r.now = time.Now
	}
	if r.gap <= 0 {
		r.gap = DefaultBundleGap
	}
	sloFn := cfg.SLO
	if sloFn == nil && cfg.Status != nil {
		status := cfg.Status
		sloFn = func() []slo.ClassStatus {
			if st := status(); st != nil {
				return st.SLO
			}
			return nil
		}
	}
	r.engine = NewEngine(EngineConfig{
		Journal:   r.journal,
		Rules:     cfg.Rules,
		Source:    cfg.Server,
		SLO:       sloFn,
		Now:       r.now,
		OnTrigger: func(a Anomaly) { r.capture(a.Rule, false) },
	})
	return r
}

// Journal returns the recorder's journal (the handle emitters write to).
func (r *Recorder) Journal() *Journal { return r.journal }

// Engine returns the anomaly engine.
func (r *Recorder) Engine() *Engine { return r.engine }

// AnomalyState returns the engine's per-rule firing summary, the section a
// ServerStatus carries.
func (r *Recorder) AnomalyState() []slo.AnomalyState { return r.engine.State() }

// Poll runs one anomaly evaluation (bundles capture synchronously inside).
func (r *Recorder) Poll() []Anomaly { return r.engine.Poll() }

// Start launches the engine's polling loop. Safe to call once; Close stops
// it.
func (r *Recorder) Start() {
	if r.started.Swap(true) {
		return
	}
	go r.engine.Run(r.cfg.PollInterval, r.stop)
}

// Close stops the polling loop (idempotent).
func (r *Recorder) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
}

// Capture freezes a bundle on demand (never rate-limited), spools it when a
// Dir is configured, and retains it in memory.
func (r *Recorder) Capture(reason string) *Bundle {
	return r.capture(reason, true)
}

func (r *Recorder) capture(reason string, manual bool) *Bundle {
	now := r.now()
	if !manual {
		r.mu.Lock()
		if !r.lastCap.IsZero() && now.Sub(r.lastCap) < r.gap {
			last := r.lastBundleLocked()
			r.mu.Unlock()
			return last
		}
		r.lastCap = now
		r.mu.Unlock()
	}
	b := Capture(CaptureConfig{
		Server:    r.cfg.Server,
		Journal:   r.journal,
		Tracer:    r.cfg.Tracer,
		Status:    r.cfg.Status,
		Anomalies: r.engine.State,
		Extra:     r.cfg.Extra,
		MaxEvents: r.cfg.MaxEvents,
		MaxSpans:  r.cfg.MaxSpans,
		NowNS:     func() int64 { return now.UnixNano() },
	}, reason)
	if r.cfg.Dir != "" {
		_, _ = b.WriteFile(r.cfg.Dir) // best-effort spool; b.File stays "" on error
	}
	r.captures.Add(1)
	r.journal.Emit(KindBundle, r.cfg.Server, "", 0, int64(len(b.Events)), reason)
	r.mu.Lock()
	r.bundles = append(r.bundles, b)
	max := r.cfg.MaxBundles
	if max <= 0 {
		max = DefaultMaxBundles
	}
	if len(r.bundles) > max {
		r.bundles = append(r.bundles[:0], r.bundles[len(r.bundles)-max:]...)
	}
	r.mu.Unlock()
	if r.cfg.OnBundle != nil {
		r.cfg.OnBundle(b)
	}
	return b
}

// Captures returns the lifetime number of bundles captured.
func (r *Recorder) Captures() uint64 { return r.captures.Load() }

// Bundles returns the retained bundles, oldest first.
func (r *Recorder) Bundles() []*Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Bundle(nil), r.bundles...)
}

// LastBundle returns the most recent bundle (nil if none captured yet).
func (r *Recorder) LastBundle() *Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastBundleLocked()
}

func (r *Recorder) lastBundleLocked() *Bundle {
	if len(r.bundles) == 0 {
		return nil
	}
	return r.bundles[len(r.bundles)-1]
}

// RegisterMetrics exposes the journal's totals plus the recorder's
// anomaly/bundle counters on reg:
//
//	locofs_flight_events_total{kind=...}
//	locofs_flight_overwritten_total
//	locofs_flight_anomalies_total
//	locofs_flight_bundles_total
func (r *Recorder) RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	r.journal.RegisterMetrics(reg)
	reg.GaugeFunc(MetricAnomalies, func() float64 { return float64(r.engine.Total()) })
	reg.GaugeFunc(MetricBundles, func() float64 { return float64(r.Captures()) })
}
