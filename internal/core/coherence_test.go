package core

import (
	"fmt"
	"testing"

	"locofs/internal/wire"
)

// The end-to-end lease-coherence guarantee (DESIGN.md §14): once a client
// has observed the recall sequence of a mutation — stamped on every DMS
// response header — it never again serves cached state that mutation
// invalidated. These tests drive two clients against one cluster: a reader
// that caches, a writer that mutates, and an unrelated DMS round trip in
// between as the observation point.

func TestCoherenceNoStaleAttrAfterObservedBump(t *testing.T) {
	cl, err := Start(Options{FMSCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reader, err := cl.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	writer, err := cl.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	if err := writer.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writer.Mkdir("/obs", 0o755); err != nil {
		t.Fatal(err)
	}
	a, err := reader.StatDir("/d")
	if err != nil || a.Mode&0o777 != 0o755 {
		t.Fatalf("initial stat: %+v, %v", a, err)
	}
	// Cached: a repeat stat costs zero trips.
	trips := reader.Trips()
	if _, err := reader.StatDir("/d"); err != nil {
		t.Fatal(err)
	}
	if reader.Trips() != trips {
		t.Fatal("repeat stat was not served from cache")
	}

	// The writer changes the mode; the reader's grant is live, so the DMS
	// publishes a recall.
	if err := writer.ChmodDir("/d", 0o700); err != nil {
		t.Fatal(err)
	}
	// The reader observes the new sequence on an unrelated round trip.
	if _, err := reader.StatDir("/obs"); err != nil {
		t.Fatal(err)
	}
	// Acceptance: the next stat must see the new mode, never the cached old
	// one. (The stale entry degrades to a miss; the re-lookup piggybacks
	// the recall fetch.)
	a, err = reader.StatDir("/d")
	if err != nil || a.Mode&0o777 != 0o700 {
		t.Fatalf("stat after observed chmod = %+v, %v; stale read", a, err)
	}
	d := reader.CacheDetail()
	if d.StaleMisses == 0 {
		t.Error("no stale miss recorded — the freshness gate never fired")
	}
	if d.AppliedSeq != d.MaxSeq {
		t.Errorf("reader not caught up: applied %d, observed %d", d.AppliedSeq, d.MaxSeq)
	}
}

func TestCoherenceNegativeEntryDroppedOnCreate(t *testing.T) {
	cl, err := Start(Options{FMSCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reader, _ := cl.NewClient(ClientConfig{})
	defer reader.Close()
	writer, _ := cl.NewClient(ClientConfig{})
	defer writer.Close()

	if err := writer.Mkdir("/p", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writer.Mkdir("/obs", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.StatDir("/p/x"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Fatalf("want ENOENT, got %v", err)
	}
	// Negative entry: the repeat probe is free.
	trips := reader.Trips()
	if _, err := reader.StatDir("/p/x"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Fatalf("want cached ENOENT, got %v", err)
	}
	if reader.Trips() != trips {
		t.Fatal("repeat ENOENT was not served from cache")
	}

	if err := writer.Mkdir("/p/x", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.StatDir("/obs"); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.StatDir("/p/x"); err != nil {
		t.Fatalf("stale ENOENT served after observed create: %v", err)
	}
}

func TestCoherenceListingDroppedOnCreate(t *testing.T) {
	cl, err := Start(Options{FMSCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reader, _ := cl.NewClient(ClientConfig{})
	defer reader.Close()
	writer, _ := cl.NewClient(ClientConfig{})
	defer writer.Close()

	for _, p := range []string{"/p", "/p/a", "/obs"} {
		if err := writer.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := reader.Readdir("/p")
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir = %v, %v", ents, err)
	}
	if err := writer.Mkdir("/p/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.StatDir("/obs"); err != nil {
		t.Fatal(err)
	}
	ents, err = reader.Readdir("/p")
	if err != nil || len(ents) != 2 {
		t.Fatalf("readdir after observed create = %d entries, %v; stale listing", len(ents), err)
	}
}

// TestCoherenceRenameVisibility: a rename publishes unconditionally; a
// reader that observed it must resolve the new path and fail the old one.
func TestCoherenceRenameVisibility(t *testing.T) {
	cl, err := Start(Options{FMSCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reader, _ := cl.NewClient(ClientConfig{})
	defer reader.Close()
	writer, _ := cl.NewClient(ClientConfig{})
	defer writer.Close()

	if err := writer.Mkdir("/old", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writer.Mkdir("/obs", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.StatDir("/old"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.RenameDir("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.StatDir("/obs"); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.StatDir("/new"); err != nil {
		t.Fatalf("renamed dir not visible: %v", err)
	}
	if _, err := reader.StatDir("/old"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Fatalf("old name still resolves after observed rename: %v", err)
	}
}

// TestCoherenceSuppressionKeepsSeqStill: mutations of paths no client holds
// grants for publish nothing — a churn-heavy writer does not disturb the
// sequence other clients compare against.
func TestCoherenceSuppressionKeepsSeqStill(t *testing.T) {
	cl, err := Start(Options{FMSCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reader, _ := cl.NewClient(ClientConfig{})
	defer reader.Close()
	writer, _ := cl.NewClient(ClientConfig{})
	defer writer.Close()

	if err := writer.Mkdir("/hot", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.StatDir("/hot"); err != nil {
		t.Fatal(err)
	}
	before := reader.CacheDetail().MaxSeq
	// Churn on paths nobody ever looked up: all suppressed.
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("/churn%d", i)
		if err := writer.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := writer.Rmdir(p); err != nil {
			t.Fatal(err)
		}
	}
	// The reader keeps hitting its cache: the stamped sequence on any new
	// response would exceed maxSeq if the churn had published.
	if _, err := reader.StatDir("/hot"); err != nil {
		t.Fatal(err)
	}
	trips := reader.Trips()
	if _, err := reader.StatDir("/hot"); err != nil {
		t.Fatal(err)
	}
	if reader.Trips() != trips {
		t.Error("suppressed churn invalidated an unrelated cached entry")
	}
	if after := reader.CacheDetail().MaxSeq; after != before {
		t.Errorf("recall seq moved %d -> %d on fully-suppressed churn", before, after)
	}
}

// TestTTLOnlyModeStillCaches: the legacy mode keeps its paper semantics —
// entries served for the TTL with no coherence machinery.
func TestTTLOnlyModeStillCaches(t *testing.T) {
	cl, err := Start(Options{FMSCount: 2, DisableLeaseCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, _ := cl.NewClient(ClientConfig{})
	defer c.Close()
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StatDir("/d"); err != nil {
		t.Fatal(err)
	}
	trips := c.Trips()
	if _, err := c.StatDir("/d"); err != nil {
		t.Fatal(err)
	}
	if c.Trips() != trips {
		t.Error("TTL cache did not serve the repeat stat")
	}
	d := c.CacheDetail()
	if d.MaxSeq != 0 || d.AppliedSeq != 0 {
		t.Errorf("TTL-only client tracked coherence watermarks: %+v", d)
	}
	if d.Negatives != 0 || d.Listings != 0 {
		t.Errorf("TTL-only client cached negatives/listings: %+v", d)
	}
}
