package dms

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"locofs/internal/kv"
	"locofs/internal/layout"
	"locofs/internal/wire"
)

func newDMS(t *testing.T, opts Options) *Server {
	t.Helper()
	return New(opts)
}

func TestRootExists(t *testing.T) {
	s := newDMS(t, Options{})
	chain, st := s.Lookup("/", 1, 1)
	if st != wire.StatusOK || len(chain) != 1 || chain[0].Path != "/" {
		t.Fatalf("Lookup(/) = %v, %v", chain, st)
	}
	if chain[0].Inode.UUID().IsNil() {
		t.Error("root has nil uuid")
	}
}

func TestMkdirLookupChain(t *testing.T) {
	s := newDMS(t, Options{})
	if _, st := s.Mkdir("/a", 0o755, 1, 1); st != wire.StatusOK {
		t.Fatal(st)
	}
	if _, st := s.Mkdir("/a/b", 0o755, 1, 1); st != wire.StatusOK {
		t.Fatal(st)
	}
	chain, st := s.Lookup("/a/b", 1, 1)
	if st != wire.StatusOK {
		t.Fatal(st)
	}
	if len(chain) != 3 || chain[0].Path != "/" || chain[1].Path != "/a" || chain[2].Path != "/a/b" {
		t.Errorf("chain = %+v", pathsOf(chain))
	}
}

func pathsOf(chain []PathInode) []string {
	out := make([]string, len(chain))
	for i, pi := range chain {
		out[i] = pi.Path
	}
	return out
}

func TestMkdirUUIDsUnique(t *testing.T) {
	s := newDMS(t, Options{})
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		u, st := s.Mkdir(fmt.Sprintf("/d%d", i), 0o755, 1, 1)
		if st != wire.StatusOK {
			t.Fatal(st)
		}
		if seen[u.String()] {
			t.Fatalf("duplicate uuid %v", u)
		}
		seen[u.String()] = true
	}
}

func TestMkdirStatuses(t *testing.T) {
	s := newDMS(t, Options{})
	s.Mkdir("/a", 0o755, 1, 1)
	if _, st := s.Mkdir("/a", 0o755, 1, 1); st != wire.StatusExist {
		t.Errorf("dup mkdir = %v", st)
	}
	if _, st := s.Mkdir("/nope/x", 0o755, 1, 1); st != wire.StatusNotFound {
		t.Errorf("orphan mkdir = %v", st)
	}
	if _, st := s.Mkdir("bad", 0o755, 1, 1); st != wire.StatusInval {
		t.Errorf("relative mkdir = %v", st)
	}
	if _, st := s.Mkdir("/", 0o755, 1, 1); st != wire.StatusExist {
		t.Errorf("mkdir / = %v", st)
	}
}

func TestPermissionChecks(t *testing.T) {
	s := newDMS(t, Options{CheckPermissions: true})
	if _, st := s.Mkdir("/priv", 0o700, 10, 10); st != wire.StatusOK {
		t.Fatal(st)
	}
	// Another user cannot traverse or create inside.
	if _, st := s.Mkdir("/priv/x", 0o755, 20, 20); st != wire.StatusPerm {
		t.Errorf("mkdir under 0700 by other = %v", st)
	}
	if _, st := s.Lookup("/priv/x", 20, 20); st != wire.StatusPerm {
		t.Errorf("lookup under 0700 by other = %v", st)
	}
	// Parent writable but not by this user.
	if _, st := s.Mkdir("/priv/y", 0o755, 10, 10); st != wire.StatusOK {
		t.Errorf("owner mkdir = %v", st)
	}
	// Root bypasses.
	if _, st := s.Mkdir("/priv/z", 0o755, 0, 0); st != wire.StatusOK {
		t.Errorf("root mkdir = %v", st)
	}
}

func TestReaddirSubdirs(t *testing.T) {
	s := newDMS(t, Options{})
	s.Mkdir("/p", 0o755, 1, 1)
	for i := 0; i < 10; i++ {
		s.Mkdir(fmt.Sprintf("/p/s%d", i), 0o755, 1, 1)
	}
	ents, more, st := s.ReaddirSubdirs("/p", 1, 1, "", 0)
	if st != wire.StatusOK {
		t.Fatal(st)
	}
	if len(ents) != 10 || more {
		t.Errorf("got %d entries (more=%v), want 10", len(ents), more)
	}
	// Paging: 3 at a time, resuming via cursor.
	var paged []layout.Dirent
	cursor := ""
	for {
		page, m, st := s.ReaddirSubdirs("/p", 1, 1, cursor, 3)
		if st != wire.StatusOK {
			t.Fatal(st)
		}
		paged = append(paged, page...)
		if !m {
			break
		}
		cursor = page[len(page)-1].Name
	}
	if len(paged) != 10 {
		t.Errorf("paged read returned %d entries, want 10", len(paged))
	}
}

func TestRmdir(t *testing.T) {
	s := newDMS(t, Options{})
	s.Mkdir("/p", 0o755, 1, 1)
	s.Mkdir("/p/c", 0o755, 1, 1)
	if st := s.Rmdir("/p", 1, 1); st != wire.StatusNotEmpty {
		t.Errorf("rmdir non-empty = %v", st)
	}
	if st := s.Rmdir("/p/c", 1, 1); st != wire.StatusOK {
		t.Errorf("rmdir leaf = %v", st)
	}
	if st := s.Rmdir("/p", 1, 1); st != wire.StatusOK {
		t.Errorf("rmdir emptied = %v", st)
	}
	if st := s.Rmdir("/p", 1, 1); st != wire.StatusNotFound {
		t.Errorf("rmdir gone = %v", st)
	}
	if st := s.Rmdir("/", 1, 1); st != wire.StatusPerm {
		t.Errorf("rmdir / = %v", st)
	}
	// Parent dirent list must no longer contain the removed dir.
	rootEnts, _, _ := s.ReaddirSubdirs("/", 1, 1, "", 0)
	for _, e := range rootEnts {
		if e.Name == "p" {
			t.Error("removed dir still in parent dirents")
		}
	}
}

func TestChmodChown(t *testing.T) {
	s := newDMS(t, Options{CheckPermissions: true})
	s.Mkdir("/d", 0o755, 10, 10)
	if st := s.Chmod("/d", 0o700, 20, 20); st != wire.StatusPerm {
		t.Errorf("chmod by non-owner = %v", st)
	}
	if st := s.Chmod("/d", 0o700, 10, 10); st != wire.StatusOK {
		t.Errorf("chmod by owner = %v", st)
	}
	ino, _ := s.Stat("/d", 10, 10)
	if ino.Mode()&layout.PermMask != 0o700 {
		t.Errorf("mode = %o", ino.Mode())
	}
	if ino.Mode()&layout.ModeDir == 0 {
		t.Error("chmod dropped the directory type bit")
	}
	if st := s.Chown("/d", 20, 20, 10, 10); st != wire.StatusPerm {
		t.Errorf("chown by non-root = %v", st)
	}
	if st := s.Chown("/d", 20, 20, 0, 0); st != wire.StatusOK {
		t.Errorf("chown by root = %v", st)
	}
	ino, _ = s.Stat("/d", 0, 0)
	if ino.UID() != 20 || ino.GID() != 20 {
		t.Errorf("owner = %d/%d", ino.UID(), ino.GID())
	}
}

func TestRenameBasic(t *testing.T) {
	s := newDMS(t, Options{})
	s.Mkdir("/old", 0o755, 1, 1)
	s.Mkdir("/old/a", 0o755, 1, 1)
	s.Mkdir("/old/a/b", 0o755, 1, 1)
	uBefore, _ := s.Stat("/old", 1, 1)

	moved, st := s.Rename("/old", "/new", 1, 1)
	if st != wire.StatusOK || moved != 3 {
		t.Fatalf("Rename = %d, %v", moved, st)
	}
	uAfter, st := s.Stat("/new", 1, 1)
	if st != wire.StatusOK {
		t.Fatal(st)
	}
	if uBefore.UUID() != uAfter.UUID() {
		t.Error("rename changed the directory UUID")
	}
	if _, st := s.Stat("/old", 1, 1); st != wire.StatusNotFound {
		t.Errorf("old path survives: %v", st)
	}
	if _, st := s.Stat("/new/a/b", 1, 1); st != wire.StatusOK {
		t.Errorf("subtree lost: %v", st)
	}
	// Parent dirent list updated.
	rootEnts, _, _ := s.ReaddirSubdirs("/", 1, 1, "", 0)
	var names []string
	for _, e := range rootEnts {
		names = append(names, e.Name)
	}
	if len(names) != 1 || names[0] != "new" {
		t.Errorf("root dirents = %v", names)
	}
}

func TestRenameInvalid(t *testing.T) {
	s := newDMS(t, Options{})
	s.Mkdir("/a", 0o755, 1, 1)
	s.Mkdir("/b", 0o755, 1, 1)
	if _, st := s.Rename("/a", "/a/x", 1, 1); st != wire.StatusInval {
		t.Errorf("rename into self = %v", st)
	}
	if _, st := s.Rename("/a", "/b", 1, 1); st != wire.StatusExist {
		t.Errorf("rename onto existing = %v", st)
	}
	if _, st := s.Rename("/zz", "/y", 1, 1); st != wire.StatusNotFound {
		t.Errorf("rename missing = %v", st)
	}
	if _, st := s.Rename("/", "/y", 1, 1); st != wire.StatusInval {
		t.Errorf("rename root = %v", st)
	}
	if _, st := s.Rename("/a", "/a", 1, 1); st != wire.StatusInval {
		t.Errorf("rename to self = %v", st)
	}
}

func TestRenameSimilarPrefixNotMoved(t *testing.T) {
	s := newDMS(t, Options{})
	s.Mkdir("/ab", 0o755, 1, 1)
	s.Mkdir("/abc", 0o755, 1, 1) // shares byte prefix with /ab
	moved, st := s.Rename("/ab", "/xy", 1, 1)
	if st != wire.StatusOK || moved != 1 {
		t.Fatalf("Rename = %d, %v", moved, st)
	}
	if _, st := s.Stat("/abc", 1, 1); st != wire.StatusOK {
		t.Error("sibling /abc was dragged along by the prefix move")
	}
}

// TestRenameModelProperty compares rename behavior on tree- and hash-backed
// DMS instances against a simple path-set model, with random tree shapes.
func TestRenameModelProperty(t *testing.T) {
	for _, engine := range []string{"btree", "hash"} {
		t.Run(engine, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for round := 0; round < 20; round++ {
				var store kv.Store
				if engine == "hash" {
					store = kv.NewHashStore()
				} else {
					store = kv.NewBTreeStore()
				}
				s := New(Options{Store: store})
				model := map[string]bool{}
				// Build a random tree.
				paths := []string{"/"}
				for i := 0; i < 30; i++ {
					parent := paths[rng.Intn(len(paths))]
					p := parent + "/" + fmt.Sprintf("d%d", i)
					if parent == "/" {
						p = "/" + fmt.Sprintf("d%d", i)
					}
					if _, st := s.Mkdir(p, 0o755, 1, 1); st == wire.StatusOK {
						model[p] = true
						paths = append(paths, p)
					}
				}
				// Rename a random directory to a fresh root name.
				var victim string
				for p := range model {
					victim = p
					break
				}
				if victim == "" {
					continue
				}
				target := fmt.Sprintf("/renamed%d", round)
				moved, st := s.Rename(victim, target, 1, 1)
				if st != wire.StatusOK {
					t.Fatalf("rename %s -> %s: %v", victim, target, st)
				}
				// Apply to model.
				newModel := map[string]bool{}
				expectMoved := 0
				for p := range model {
					if p == victim || strings.HasPrefix(p, victim+"/") {
						newModel[target+p[len(victim):]] = true
						expectMoved++
					} else {
						newModel[p] = true
					}
				}
				if moved != expectMoved {
					t.Fatalf("moved %d, model says %d", moved, expectMoved)
				}
				for p := range newModel {
					if _, st := s.Stat(p, 1, 1); st != wire.StatusOK {
						t.Fatalf("model path %s missing after rename (%v)", p, st)
					}
				}
				if got := s.DirCount(); got != len(newModel)+1 { // +1 for root
					t.Fatalf("DirCount = %d, model = %d", got, len(newModel)+1)
				}
			}
		})
	}
}

func TestOrderedReportsEngine(t *testing.T) {
	if !New(Options{Store: kv.NewBTreeStore()}).Ordered() {
		t.Error("btree DMS not Ordered")
	}
	if New(Options{Store: kv.NewHashStore()}).Ordered() {
		t.Error("hash DMS claims Ordered")
	}
	if !New(Options{Store: kv.Instrument(kv.NewBTreeStore(), kv.RAM)}).Ordered() {
		t.Error("instrumented btree DMS not Ordered")
	}
	if New(Options{Store: kv.Instrument(kv.NewHashStore(), kv.RAM)}).Ordered() {
		t.Error("instrumented hash DMS claims Ordered")
	}
}

func TestDeterministicClock(t *testing.T) {
	var tick int64
	s := New(Options{Now: func() int64 { tick++; return tick }})
	s.Mkdir("/a", 0o755, 1, 1)
	ino, _ := s.Stat("/a", 1, 1)
	if ino.CTime() == 0 {
		t.Error("ctime not stamped from injected clock")
	}
}
