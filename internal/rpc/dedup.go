package rpc

import (
	"sync"

	"locofs/internal/wire"
)

// DedupWindow is how many recently-executed request ids a server remembers
// for at-most-once replay. A retried mutation whose first delivery executed
// is answered from this window instead of executing twice; a duplicate
// arriving after its entry was evicted re-executes (and then typically
// observes its own first execution as EEXIST/ENOENT — the same outcome the
// pre-dedup client always risked). The window only needs to outlive one
// client's retry horizon, not the full request history.
const DedupWindow = 1024

// dedupEntry records one request's outcome. done is closed once the first
// execution completes, releasing any duplicate deliveries waiting to replay
// the response.
type dedupEntry struct {
	done    chan struct{}
	status  wire.Status
	body    []byte
	service uint64
}

// dedupWindow is a bounded FIFO map of request id → outcome. The zero value
// is ready to use.
type dedupWindow struct {
	mu   sync.Mutex
	m    map[uint64]*dedupEntry
	fifo []uint64
}

// begin registers req. When req is new it returns (entry, false) and the
// caller must execute the request and complete the entry; when req was
// already seen it returns (entry, true) and the caller must wait on
// entry.done and replay the recorded response.
func (w *dedupWindow) begin(req uint64) (*dedupEntry, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.m == nil {
		w.m = make(map[uint64]*dedupEntry)
	}
	if e, ok := w.m[req]; ok {
		return e, true
	}
	e := &dedupEntry{done: make(chan struct{})}
	w.m[req] = e
	w.fifo = append(w.fifo, req)
	if len(w.fifo) > DedupWindow {
		evict := w.fifo[0]
		w.fifo = w.fifo[1:]
		delete(w.m, evict)
	}
	return e, false
}

// complete records the first execution's outcome and releases duplicates.
func (e *dedupEntry) complete(status wire.Status, body []byte, service uint64) {
	e.status = status
	e.body = body
	e.service = service
	close(e.done)
}
