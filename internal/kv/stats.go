package kv

import (
	"sync/atomic"
	"time"
)

// Counters accumulates operation counts and byte totals for a Store. All
// fields are updated atomically and may be read while the store is in use;
// readers wanting a coherent view should take a Snapshot rather than
// loading fields one by one.
type Counters struct {
	Gets         atomic.Uint64
	Puts         atomic.Uint64
	Deletes      atomic.Uint64
	Patches      atomic.Uint64
	Appends      atomic.Uint64
	Scans        atomic.Uint64 // ForEach / range visits
	BytesRead    atomic.Uint64
	BytesWritten atomic.Uint64
}

// CountersSnapshot is a plain-value copy of Counters.
type CountersSnapshot struct {
	Gets         uint64
	Puts         uint64
	Deletes      uint64
	Patches      uint64
	Appends      uint64
	Scans        uint64
	BytesRead    uint64
	BytesWritten uint64
}

// Snapshot copies every counter in one pass. The copy is not a single
// atomic cut across fields (no global lock is taken), but it gives callers
// one consistent value set to compute deltas and export from, instead of
// racing over the individual atomics at different times.
func (c *Counters) Snapshot() CountersSnapshot {
	return CountersSnapshot{
		Gets:         c.Gets.Load(),
		Puts:         c.Puts.Load(),
		Deletes:      c.Deletes.Load(),
		Patches:      c.Patches.Load(),
		Appends:      c.Appends.Load(),
		Scans:        c.Scans.Load(),
		BytesRead:    c.BytesRead.Load(),
		BytesWritten: c.BytesWritten.Load(),
	}
}

// Writes returns the total mutating point operations in the snapshot.
func (s CountersSnapshot) Writes() uint64 { return s.Puts + s.Deletes + s.Appends }

// Bytes returns the total bytes moved in the snapshot.
func (s CountersSnapshot) Bytes() uint64 { return s.BytesRead + s.BytesWritten }

// DeviceModel charges a virtual time cost per storage operation, modeling
// the random-access latency of the medium beneath the KV store. It is used
// by the Fig 14 rename-overhead experiment to contrast HDD and SSD without
// wall-clock sleeping: costs accumulate in a virtual-nanosecond counter.
type DeviceModel struct {
	// ReadCost and WriteCost are charged per point operation.
	ReadCost  time.Duration
	WriteCost time.Duration
	// ScanCost is charged per record visited by an ordered scan. Sorted
	// media reads are sequential, so this is typically far below ReadCost.
	ScanCost time.Duration
}

// Typical device models (order-of-magnitude figures for the paper's 2017
// hardware: SAS HDDs vs. SATA SSDs). Writes reflect Kyoto Cabinet's
// write-buffered behavior — mutations land in the page cache and flush
// sequentially — which is why the paper observes "no big difference between
// HDDs and SSDs for the rename operations" (§4.4.2): only uncached random
// *reads* pay the seek penalty.
var (
	// HDD: point reads mostly hit the page cache with an amortized seek,
	// writes are buffered, scans stream at ~3 µs per record.
	HDD = DeviceModel{ReadCost: 120 * time.Microsecond, WriteCost: 8 * time.Microsecond, ScanCost: 3 * time.Microsecond}
	// SSD: ~60 µs cached/flash read, ~4 µs buffered write, ~1 µs scanned
	// record.
	SSD = DeviceModel{ReadCost: 60 * time.Microsecond, WriteCost: 4 * time.Microsecond, ScanCost: time.Microsecond}
	// RAM: free; the engines' own CPU cost is the only cost.
	RAM = DeviceModel{}
)

// Instrumented wraps a Store (optionally an Ordered store), counting every
// operation and accruing virtual device time per the DeviceModel.
type Instrumented struct {
	inner   Store
	ordered Ordered // nil if inner is not ordered
	model   DeviceModel

	counters Counters
	virtualN atomic.Int64 // accumulated virtual nanoseconds
}

// Instrument wraps store with counting and the given device model.
func Instrument(store Store, model DeviceModel) *Instrumented {
	in := &Instrumented{inner: store, model: model}
	if o, ok := store.(Ordered); ok {
		in.ordered = o
	}
	return in
}

// Counters returns the live counter block.
func (s *Instrumented) Counters() *Counters { return &s.counters }

// VirtualTime returns the total virtual device time accrued so far.
func (s *Instrumented) VirtualTime() time.Duration {
	return time.Duration(s.virtualN.Load())
}

// ResetVirtualTime zeroes the virtual clock.
func (s *Instrumented) ResetVirtualTime() { s.virtualN.Store(0) }

func (s *Instrumented) charge(d time.Duration) {
	if d != 0 {
		s.virtualN.Add(int64(d))
	}
}

// Get implements Store.
func (s *Instrumented) Get(key []byte) ([]byte, bool) {
	s.counters.Gets.Add(1)
	s.charge(s.model.ReadCost)
	v, ok := s.inner.Get(key)
	if ok {
		s.counters.BytesRead.Add(uint64(len(v)))
	}
	return v, ok
}

// Put implements Store.
func (s *Instrumented) Put(key, value []byte) {
	s.counters.Puts.Add(1)
	s.counters.BytesWritten.Add(uint64(len(value)))
	s.charge(s.model.WriteCost)
	s.inner.Put(key, value)
}

// Delete implements Store.
func (s *Instrumented) Delete(key []byte) bool {
	s.counters.Deletes.Add(1)
	s.charge(s.model.WriteCost)
	return s.inner.Delete(key)
}

// PatchInPlace implements Store.
func (s *Instrumented) PatchInPlace(key []byte, off int, data []byte) bool {
	s.counters.Patches.Add(1)
	s.counters.BytesWritten.Add(uint64(len(data)))
	s.charge(s.model.WriteCost)
	return s.inner.PatchInPlace(key, off, data)
}

// ReadAt implements Store.
func (s *Instrumented) ReadAt(key []byte, off int, buf []byte) bool {
	s.counters.Gets.Add(1)
	s.counters.BytesRead.Add(uint64(len(buf)))
	s.charge(s.model.ReadCost)
	return s.inner.ReadAt(key, off, buf)
}

// AppendValue implements Store.
func (s *Instrumented) AppendValue(key, data []byte) {
	s.counters.Appends.Add(1)
	s.counters.BytesWritten.Add(uint64(len(data)))
	s.charge(s.model.WriteCost)
	s.inner.AppendValue(key, data)
}

// Len implements Store.
func (s *Instrumented) Len() int { return s.inner.Len() }

// ForEach implements Store, charging ScanCost per visited record.
func (s *Instrumented) ForEach(fn func(key, value []byte) bool) {
	s.inner.ForEach(func(k, v []byte) bool {
		s.counters.Scans.Add(1)
		s.charge(s.model.ScanCost)
		return fn(k, v)
	})
}

// AscendRange implements Ordered when the wrapped store is ordered.
func (s *Instrumented) AscendRange(start, end []byte, fn func(key, value []byte) bool) {
	s.ordered.AscendRange(start, end, func(k, v []byte) bool {
		s.counters.Scans.Add(1)
		s.charge(s.model.ScanCost)
		return fn(k, v)
	})
}

// AscendPrefix implements Ordered when the wrapped store is ordered.
func (s *Instrumented) AscendPrefix(prefix []byte, fn func(key, value []byte) bool) {
	s.AscendRange(prefix, PrefixSuccessor(prefix), fn)
}

// MovePrefix implements Ordered when the wrapped store is ordered. Each
// moved record costs one sequential read plus one write.
func (s *Instrumented) MovePrefix(oldPrefix, newPrefix []byte) int {
	n := s.ordered.MovePrefix(oldPrefix, newPrefix)
	s.counters.Scans.Add(uint64(n))
	s.counters.Puts.Add(uint64(n))
	s.counters.Deletes.Add(uint64(n))
	s.charge(time.Duration(n) * (s.model.ScanCost + s.model.WriteCost))
	return n
}

// IsOrdered reports whether the wrapped store supports ordered operations.
func (s *Instrumented) IsOrdered() bool { return s.ordered != nil }

var _ Store = (*Instrumented)(nil)
