// Package fsapi defines the file-system client interface the workload
// generator drives, so LocoFS and every baseline system (IndexFS, CephFS,
// Gluster, Lustre) can be benchmarked by identical code.
package fsapi

import (
	"errors"
	"time"

	"locofs/internal/client"
	"locofs/internal/wire"
)

// FS is the metadata surface exercised by the mdtest-style workloads.
type FS interface {
	// Mkdir creates a directory.
	Mkdir(path string, mode uint32) error
	// Rmdir removes an empty directory.
	Rmdir(path string) error
	// Create makes an empty file (mdtest "touch").
	Create(path string, mode uint32) error
	// Remove deletes a file.
	Remove(path string) error
	// StatFile stats a file.
	StatFile(path string) error
	// StatDir stats a directory.
	StatDir(path string) error
	// Readdir lists a directory, returning the entry count.
	Readdir(path string) (int, error)
	// Close releases client resources.
	Close() error
}

// ExtendedFS adds the file-metadata operations of the paper's Fig 11
// (decoupled-file-metadata study): chmod, chown, truncate and access.
type ExtendedFS interface {
	FS
	Chmod(path string, mode uint32) error
	Chown(path string, uid, gid uint32) error
	Truncate(path string, size uint64) error
	Access(path string) error
}

// Optional interfaces. Not every system implements every capability, so
// workloads type-assert for these on the FS they were handed and skip (or
// fall back) when the assertion fails — the same pattern net/http uses for
// http.Flusher/http.Hijacker. Keep capability extensions here rather than
// widening FS, so baselines without them keep compiling.

// Coster is implemented by clients that track modeled (virtual) time: the
// cumulative link delays plus server service times of every call issued.
// Experiments measure per-operation latency as the delta of Cost around the
// operation, which is immune to OS timer granularity.
type Coster interface {
	Cost() time.Duration
}

// Renamer is implemented by systems supporting directory rename. moved is
// the number of relocated directory inodes — the paper's rename-cost metric
// (§3.4.2).
type Renamer interface {
	RenameDir(oldPath, newPath string) (moved int, err error)
}

// FileRenamer is implemented by systems supporting file rename.
type FileRenamer interface {
	RenameFile(oldPath, newPath string) error
}

// Unavailable reports whether err means the operation failed because a
// server was unreachable rather than because of the operation itself: a
// per-attempt deadline expired after retries, or the client's circuit
// breaker failed the call fast. Workloads use it to separate
// availability-induced errors (worth waiting out or recording as downtime)
// from genuine application errors like "not found".
func Unavailable(err error) bool {
	return errors.Is(err, wire.StatusUnavailable.Err()) ||
		errors.Is(err, wire.StatusDeadline.Err())
}

// LocoFS adapts a LocoLib client to the FS interface.
type LocoFS struct {
	C *client.Client
}

// Mkdir implements FS.
func (l LocoFS) Mkdir(path string, mode uint32) error { return l.C.Mkdir(path, mode) }

// Rmdir implements FS.
func (l LocoFS) Rmdir(path string) error { return l.C.Rmdir(path) }

// Create implements FS.
func (l LocoFS) Create(path string, mode uint32) error { return l.C.Create(path, mode) }

// Remove implements FS.
func (l LocoFS) Remove(path string) error { return l.C.Remove(path) }

// StatFile implements FS.
func (l LocoFS) StatFile(path string) error {
	_, err := l.C.StatFile(path)
	return err
}

// StatDir implements FS.
func (l LocoFS) StatDir(path string) error {
	_, err := l.C.StatDir(path)
	return err
}

// Readdir implements FS.
func (l LocoFS) Readdir(path string) (int, error) {
	ents, err := l.C.Readdir(path)
	return len(ents), err
}

// Close implements FS.
func (l LocoFS) Close() error { return l.C.Close() }

// Chmod implements ExtendedFS.
func (l LocoFS) Chmod(path string, mode uint32) error { return l.C.Chmod(path, mode) }

// Chown implements ExtendedFS.
func (l LocoFS) Chown(path string, uid, gid uint32) error { return l.C.Chown(path, uid, gid) }

// Truncate implements ExtendedFS.
func (l LocoFS) Truncate(path string, size uint64) error { return l.C.Truncate(path, size) }

// Access implements ExtendedFS.
func (l LocoFS) Access(path string) error { return l.C.Access(path, false) }

// RenameDir implements Renamer.
func (l LocoFS) RenameDir(oldPath, newPath string) (int, error) {
	return l.C.RenameDir(oldPath, newPath)
}

// RenameFile implements FileRenamer.
func (l LocoFS) RenameFile(oldPath, newPath string) error {
	return l.C.RenameFile(oldPath, newPath)
}

// Cost implements Coster.
func (l LocoFS) Cost() time.Duration { return l.C.Cost() }

var (
	_ ExtendedFS  = LocoFS{}
	_ Renamer     = LocoFS{}
	_ FileRenamer = LocoFS{}
	_ Coster      = LocoFS{}
)
