// Package rpc is the small request/response layer LocoFS servers and
// clients speak over a netsim transport: numbered requests multiplexed over
// a connection, dispatched to per-op handlers on the server side.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/chash"
	"locofs/internal/flight"
	"locofs/internal/netsim"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
	"locofs/internal/wire"
)

// Metric names recorded by instrumented servers and clients. Histograms
// observe seconds (Prometheus convention) bucketed logarithmically; every
// series carries an op label with the wire.Op name.
const (
	MetricRequests = "locofs_rpc_requests_total"  // server: completed requests
	MetricErrors   = "locofs_rpc_errors_total"    // server: non-OK responses
	MetricService  = "locofs_rpc_service_seconds" // server: handler service time (measured + modeled)
	MetricQueue    = "locofs_rpc_queue_seconds"   // server: receipt -> handler start (worker queue wait)
	MetricRTT      = "locofs_client_rtt_seconds"  // client: wall-clock round trip
	MetricCalls    = "locofs_client_calls_total"  // client: calls issued
	MetricDedup    = "locofs_rpc_dedup_hits_total" // server: duplicate requests answered from the dedup window
	// MetricDedupInflightSkips counts dedup-window evictions skipped because
	// the entry's first delivery was still executing — evicting it would
	// have let a retry re-execute the mutation.
	MetricDedupInflightSkips = "locofs_rpc_dedup_inflight_skips_total"
)

// opMetrics caches one op's instrument handles so the hot path does not
// take the registry lock per request. Service and queue time record through
// rotating-window histograms, so the same observation stream yields both
// lifetime aggregates (/metrics histogram families, unchanged) and
// time-local quantiles/rates (the _window gauge families and the SLO layer).
type opMetrics struct {
	reqs    *telemetry.Counter
	errs    *telemetry.Counter
	dedup   *telemetry.Counter
	service *telemetry.Windowed
	queue   *telemetry.Windowed
}

// serverTelem is a server's telemetry sink plus its per-op handle cache.
type serverTelem struct {
	reg  *telemetry.Registry
	byOp sync.Map // wire.Op -> *opMetrics
}

func (t *serverTelem) forOp(op wire.Op) *opMetrics {
	if m, ok := t.byOp.Load(op); ok {
		return m.(*opMetrics)
	}
	label := telemetry.L("op", op.String())
	m := &opMetrics{
		reqs:    t.reg.Counter(MetricRequests, label),
		errs:    t.reg.Counter(MetricErrors, label),
		dedup:   t.reg.Counter(MetricDedup, label),
		service: t.reg.Windowed(MetricService, label),
		queue:   t.reg.Windowed(MetricQueue, label),
	}
	actual, _ := t.byOp.LoadOrStore(op, m)
	return actual.(*opMetrics)
}

// HandlerFunc serves one request body and returns a status and response
// body. Handlers run concurrently; they must be safe for concurrent use.
type HandlerFunc func(body []byte) (wire.Status, []byte)

// MsgHandlerFunc is a HandlerFunc that also receives the request's dedup id
// (wire.Msg.Req; 0 when the client sent none). The sharded DMS registers
// these for mutations: the id keys the replicated op log and doubles as the
// cross-partition transaction id, so it must survive past this server's own
// dedup window (which a leader failover discards).
type MsgHandlerFunc func(req uint64, body []byte) (wire.Status, []byte)

// Server dispatches requests to registered handlers.
type Server struct {
	mu          sync.RWMutex
	handlers    map[wire.Op]HandlerFunc
	msgHandlers map[wire.Op]MsgHandlerFunc
	virtual     map[wire.Op]time.Duration

	wg        sync.WaitGroup
	closed    atomic.Bool
	listener  netsim.Listener
	workers   chan struct{} // nil = unlimited concurrency
	workerCap int
	serviceFn ServiceFunc

	connMu sync.Mutex
	conns  map[netsim.Conn]struct{}

	telem     atomic.Pointer[serverTelem]
	tracer    atomic.Pointer[serverTracer]
	flightRef atomic.Pointer[serverFlight]
	slowNS    atomic.Int64 // slow-request log threshold (0 = disabled)
	dedup     dedupWindow  // at-most-once replay cache for retried mutations

	// member holds the installed FMS membership (nil on a static
	// topology); epoch mirrors member's epoch for lock-free stamping on
	// every response header. memberMu serializes installs (a cold path).
	memberMu sync.Mutex
	member   atomic.Pointer[memberState]
	epoch    atomic.Uint64

	// leaseFn, when set (DMS only), supplies the current lease-recall
	// sequence stamped on every response header's Lease field, the same
	// piggyback channel epoch uses for membership staleness.
	leaseFn atomic.Pointer[func() uint64]

	// pmapFn, when set (sharded DMS only), supplies the current partition-
	// map version stamped on every response header's PMap field — the third
	// piggyback channel, for partition-routing staleness.
	pmapFn atomic.Pointer[func() uint64]

	// Served counts completed requests, for load accounting in experiments.
	Served atomic.Uint64
	// busyNS accumulates total service time (measured + modeled) across
	// all requests; experiments derive server-bound throughput from it.
	busyNS atomic.Uint64
}

// NewServer returns a Server with a default Ping handler registered and no
// concurrency limit.
func NewServer() *Server {
	return NewServerWithWorkers(0)
}

// NewServerWithWorkers returns a Server that executes at most workers
// handlers concurrently (0 = unlimited). The limit models the CPU capacity
// of a metadata server: with per-request service times, throughput caps at
// workers/serviceTime, which is how the experiments saturate servers.
func NewServerWithWorkers(workers int) *Server {
	s := &Server{
		handlers:    make(map[wire.Op]HandlerFunc),
		msgHandlers: make(map[wire.Op]MsgHandlerFunc),
		virtual:     make(map[wire.Op]time.Duration),
		workerCap:   workers,
		conns:       make(map[netsim.Conn]struct{}),
	}
	if workers > 0 {
		s.workers = make(chan struct{}, workers)
	}
	s.Handle(wire.OpPing, func(body []byte) (wire.Status, []byte) {
		return wire.StatusOK, body
	})
	s.Handle(wire.OpGetMembership, func(body []byte) (wire.Status, []byte) {
		ms := s.member.Load()
		if ms == nil {
			return wire.StatusNotFound, nil
		}
		return wire.StatusOK, wire.EncodeMembership(ms.m)
	})
	s.Handle(wire.OpSetMembership, func(body []byte) (wire.Status, []byte) {
		m, self, err := wire.DecodeSetMembership(body)
		if err != nil {
			return wire.StatusInval, []byte(err.Error())
		}
		if !s.SetMembership(m, self) {
			return wire.StatusStale, nil
		}
		return wire.StatusOK, nil
	})
	return s
}

// memberState couples an installed membership with this server's own ring
// ID inside it (-1 for servers off the FMS ring) and the ring built from
// the membership's current FMS set, cached for OwnsKey.
type memberState struct {
	m    *wire.Membership
	self int
	ring *chash.Ring
}

// SetMembership installs m if its epoch is not older than the currently
// installed one, reporting whether it was accepted. self is this server's
// ring ID within m (-1 when the server is not an FMS — it then tracks the
// epoch but OwnsKey stays unknowable). Subsequent responses carry m.Epoch
// in their headers, which is how clients discover a membership change.
func (s *Server) SetMembership(m *wire.Membership, self int) bool {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	if cur := s.member.Load(); cur != nil && m.Epoch < cur.m.Epoch {
		return false
	}
	ms := &memberState{m: m, self: self}
	if self >= 0 && len(m.FMS) > 0 {
		ms.ring = chash.NewRing(0, m.IDs()...)
		ms.ring.SetEpoch(m.Epoch)
	}
	s.member.Store(ms)
	s.epoch.Store(m.Epoch)
	if f := s.flightRef.Load(); f != nil {
		f.j.Emit(flight.KindEpoch, f.source, "", 0, int64(m.Epoch), "membership installed")
	}
	return true
}

// Membership returns the installed membership and this server's ring ID in
// it, or (nil, -1) on a static topology.
func (s *Server) Membership() (*wire.Membership, int) {
	ms := s.member.Load()
	if ms == nil {
		return nil, -1
	}
	return ms.m, ms.self
}

// Epoch returns the installed membership epoch (0 = static topology).
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// SetLeaseFunc installs the source of the lease-recall sequence stamped on
// every response (see wire.Msg.Lease). fn must be safe for concurrent use
// and cheap — it runs on every response send. The DMS installs its lease
// table's published sequence here during Attach.
func (s *Server) SetLeaseFunc(fn func() uint64) { s.leaseFn.Store(&fn) }

// leaseSeq returns the current lease-recall sequence, 0 when no source is
// installed (FMS/OSS servers, tests).
func (s *Server) leaseSeq() uint64 {
	if fn := s.leaseFn.Load(); fn != nil {
		return (*fn)()
	}
	return 0
}

// SetPMapFunc installs the source of the partition-map version stamped on
// every response (see wire.Msg.PMap). fn must be safe for concurrent use
// and cheap — it runs on every response send. Sharded DMS nodes install
// their partition node's map version here.
func (s *Server) SetPMapFunc(fn func() uint64) { s.pmapFn.Store(&fn) }

// pmapVer returns the current partition-map version, 0 when no source is
// installed (unsharded DMS, FMS/OSS servers, tests).
func (s *Server) pmapVer() uint64 {
	if fn := s.pmapFn.Load(); fn != nil {
		return (*fn)()
	}
	return 0
}

// OwnsKey reports whether this server owns key under the installed
// membership's current ring. known is false when no membership is
// installed or the server is not an FMS — callers must then skip the
// check (static topologies keep working unguarded).
func (s *Server) OwnsKey(key []byte) (owns, known bool) {
	ms := s.member.Load()
	if ms == nil || ms.ring == nil {
		return false, false
	}
	return ms.ring.Locate(key) == ms.self, true
}

// DedupInflightSkips returns how many dedup-window evictions were skipped
// because the entry's request was still executing.
func (s *Server) DedupInflightSkips() uint64 { return s.dedup.InflightSkips() }

// Handle registers fn for op, replacing any previous handler.
func (s *Server) Handle(op wire.Op, fn HandlerFunc) {
	s.mu.Lock()
	s.handlers[op] = fn
	delete(s.msgHandlers, op)
	s.mu.Unlock()
}

// HandleMsg registers a dedup-id-aware handler for op, replacing any
// previous handler (of either kind).
func (s *Server) HandleMsg(op wire.Op, fn MsgHandlerFunc) {
	s.mu.Lock()
	s.msgHandlers[op] = fn
	delete(s.handlers, op)
	s.mu.Unlock()
}

// SetVirtualCost declares a modeled software cost for op, added to the
// measured handler time in every response's ServiceNS. Baseline systems use
// this to model their (calibrated) metadata-path service times without
// wall-clock sleeping.
func (s *Server) SetVirtualCost(op wire.Op, d time.Duration) {
	s.mu.Lock()
	s.virtual[op] = d
	s.mu.Unlock()
}

// ServiceFunc executes run (which invokes the handler) and returns the
// request's modeled service time. Implementations may serialize requests to
// read per-request deltas from shared counters; the per-op virtual cost, if
// any, is added on top of the returned duration.
type ServiceFunc func(op wire.Op, run func()) time.Duration

// SetServiceFunc installs a modeled service-time calculator, replacing the
// default wall-clock measurement (which is meaningless under CPU contention
// on small machines). Experiments use cost models derived from the exact KV
// work each request performs.
func (s *Server) SetServiceFunc(fn ServiceFunc) {
	s.mu.Lock()
	s.serviceFn = fn
	s.mu.Unlock()
}

// SetTelemetry installs a metrics registry: every subsequent request
// records per-op request/error counts, service-time and queue-wait
// histograms into it (see the Metric* names). Safe to call while serving.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.telem.Store(nil)
		return
	}
	reg.GaugeFunc(MetricDedupInflightSkips, func() float64 {
		return float64(s.dedup.InflightSkips())
	})
	s.telem.Store(&serverTelem{reg: reg})
}

// SetSlowThreshold enables slow-request logging: any request whose service
// time meets or exceeds d is logged with its trace ID, op, status, service
// and queue time, so one logical operation can be followed across servers.
// Zero disables logging.
func (s *Server) SetSlowThreshold(d time.Duration) { s.slowNS.Store(int64(d)) }

// serverFlight couples a flight journal with the source name stamped on
// every event this server emits.
type serverFlight struct {
	j      *flight.Journal
	source string
}

// SetFlight installs the flight-recorder journal this server emits into:
// dedup replays, slow requests, and membership epoch installs become typed
// events carrying the request's trace id. name labels the events (e.g.
// "fms-1"). A nil journal disables emission. Safe to call while serving.
func (s *Server) SetFlight(j *flight.Journal, name string) {
	if j == nil {
		s.flightRef.Store(nil)
		return
	}
	s.flightRef.Store(&serverFlight{j: j, source: name})
}

// serverTracer couples a span tracer with the server name stamped on every
// span it opens.
type serverTracer struct {
	t    *trace.Tracer
	name string
}

// SetTracer installs span-level tracing: every subsequent request opens a
// server-side child span under the wire header's parent-span ID — and every
// sub-request of a wire.OpBatch envelope opens its own child span under the
// envelope's span, stamped with its sub-request index — completing into the
// tracer's ring per its sampling policy. name labels the spans (e.g.
// "fms-1"). A nil tracer disables tracing. Safe to call while serving.
func (s *Server) SetTracer(t *trace.Tracer, name string) {
	if t == nil {
		s.tracer.Store(nil)
		return
	}
	s.tracer.Store(&serverTracer{t: t, name: name})
}

// startSpan opens the server-side span for one request (nil when tracing is
// off; all span methods are nil-safe). sub is the batch sub-request index,
// -1 outside a batch.
func (s *Server) startSpan(traceID, parent uint64, op wire.Op, sub int) *trace.Span {
	st := s.tracer.Load()
	if st == nil {
		return nil
	}
	sp := st.t.StartSpan(traceID, parent, op.String(), st.name)
	if sub >= 0 {
		sp.SetSub(sub)
	}
	return sp
}

// Busy returns the cumulative service time across all requests served.
func (s *Server) Busy() time.Duration { return time.Duration(s.busyNS.Load()) }

// Workers returns the configured concurrency cap (0 = unlimited).
func (s *Server) Workers() int { return s.workerCap }

// Serve accepts connections from l until l is closed. It blocks; run it in
// a goroutine. Each connection's requests are served concurrently.
func (s *Server) Serve(l netsim.Listener) {
	s.connMu.Lock()
	s.listener = l
	closed := s.closed.Load()
	s.connMu.Unlock()
	if closed {
		l.Close()
		return
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.connMu.Lock()
		if s.closed.Load() {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		// Add under connMu: Shutdown flips closed before acquiring connMu,
		// so every Add either precedes its Wait or is refused above.
		s.wg.Add(1)
		s.connMu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn netsim.Conn) {
	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		if req.IsResp {
			continue // protocol violation; ignore
		}
		recvT := time.Now()
		s.wg.Add(1)
		go func(req *wire.Msg) {
			defer s.wg.Done()
			if req.Op == wire.OpBatch {
				// The batch envelope is pure framing: it takes no worker
				// slot itself — each sub-request competes for one — so a
				// batch can never deadlock a 1-worker server.
				s.serveBatch(conn, req, recvT)
				return
			}
			// At-most-once: a request carrying a dedup id either registers
			// as the first delivery (and records its outcome below) or is a
			// retried duplicate, answered by replaying the first execution's
			// response — after waiting for it if it is still running. The
			// duplicate path takes no worker slot: it performs no service
			// work.
			var ent *dedupEntry
			if req.Req != 0 {
				var dup bool
				if ent, dup = s.dedup.begin(req.Req); dup {
					<-ent.done
					if t := s.telem.Load(); t != nil {
						t.forOp(req.Op).dedup.Inc()
					}
					if f := s.flightRef.Load(); f != nil {
						f.j.Emit(flight.KindDedupReplay, f.source, req.Op.String(), req.Trace, 0, "")
					}
					resp := &wire.Msg{ID: req.ID, IsResp: true, Op: req.Op,
						Status: ent.status, ServiceNS: ent.service, Trace: req.Trace, Span: req.Span,
						Epoch: s.epoch.Load(), Lease: s.leaseSeq(), PMap: s.pmapVer(), Body: ent.body}
					_ = conn.Send(resp)
					return
				}
			}
			if s.workers != nil {
				s.workers <- struct{}{}
				defer func() { <-s.workers }()
			}
			// Queue wait: receipt to handler start. With unlimited workers
			// this is just goroutine scheduling; with a worker cap it is the
			// time spent waiting for a CPU slot — the server-side queueing
			// the paper's saturation experiments exercise.
			status, body, service := s.execute(req.Op, req.Body, req.Req, req.Trace, req.Span, -1, time.Since(recvT))
			if ent != nil {
				ent.complete(status, body, uint64(service))
			}
			resp := &wire.Msg{ID: req.ID, IsResp: true, Op: req.Op,
				Status: status, ServiceNS: uint64(service), Trace: req.Trace, Span: req.Span,
				Epoch: s.epoch.Load(), Lease: s.leaseSeq(), PMap: s.pmapVer(), Body: body}
			_ = conn.Send(resp)
		}(req)
	}
}

// execute runs one request (or one batched sub-request) through the full
// service pipeline: a server-side child span under parentSpan, modeled/
// measured service time, busy and served accounting, per-op telemetry, and
// slow-request logging stamped with the request's trace id. sub is the
// sub-request index inside a wire.OpBatch envelope (-1 outside a batch); it
// appears on the span and in the slow-request log line, so a slow batched
// sub-op is attributable to its position and opcode, not just the parent
// trace.
func (s *Server) execute(op wire.Op, reqBody []byte, req, trace, parentSpan uint64, sub int, queueWait time.Duration) (wire.Status, []byte, time.Duration) {
	var status wire.Status
	var body []byte
	sp := s.startSpan(trace, parentSpan, op, sub)
	s.mu.RLock()
	fn := s.serviceFn
	virtual := s.virtual[op]
	s.mu.RUnlock()
	var service time.Duration
	if fn != nil {
		service = fn(op, func() {
			status, body = s.dispatch(op, reqBody, req)
		})
	} else {
		t0 := time.Now()
		status, body = s.dispatch(op, reqBody, req)
		service = time.Since(t0)
	}
	service += virtual
	s.busyNS.Add(uint64(service))
	s.Served.Add(1)
	if status != wire.StatusOK {
		sp.SetStatus(status.String())
	}
	sp.Finish()
	if t := s.telem.Load(); t != nil {
		m := t.forOp(op)
		m.reqs.Inc()
		if status != wire.StatusOK {
			m.errs.Inc()
		}
		m.service.Record(service)
		m.queue.Record(queueWait)
	}
	if slow := time.Duration(s.slowNS.Load()); slow > 0 && service >= slow {
		if f := s.flightRef.Load(); f != nil {
			f.j.Emit(flight.KindSlowRequest, f.source, op.String(), trace, int64(service), status.String())
		}
		if sub >= 0 {
			log.Printf("rpc: slow request trace=%#x op=Batch[%d]=%s status=%s service=%v queue=%v",
				trace, sub, op, status, service, queueWait)
		} else {
			log.Printf("rpc: slow request trace=%#x op=%s status=%s service=%v queue=%v",
				trace, op, status, service, queueWait)
		}
	}
	return status, body, service
}

// serveBatch answers one wire.OpBatch request: every sub-request is
// dispatched to its registered handler across the server's worker pool
// (concurrently, each acquiring its own worker slot), and the one response
// carries a (status, body) pair per sub-request in sub-request order — a
// failing sub-request never disturbs its siblings. Each sub-request runs
// the full service pipeline under the envelope's trace id, so batched
// sub-ops appear individually in telemetry and slow-request logs, and the
// envelope's ServiceNS is the sum of sub-request service times (the
// server's CPU serializes the work even though one message carried it).
// Nested batches are rejected per-sub-request via the normal unknown-op
// path, since OpBatch never reaches the handler table.
func (s *Server) serveBatch(conn netsim.Conn, req *wire.Msg, recvT time.Time) {
	reply := func(st wire.Status, body []byte, service time.Duration) {
		resp := &wire.Msg{ID: req.ID, IsResp: true, Op: wire.OpBatch,
			Status: st, ServiceNS: uint64(service), Trace: req.Trace, Span: req.Span,
			Epoch: s.epoch.Load(), Lease: s.leaseSeq(), PMap: s.pmapVer(), Body: body}
		_ = conn.Send(resp)
	}
	// The envelope gets its own server-side span under the client's span;
	// each sub-request's span hangs off the envelope span with its index.
	esp := s.startSpan(req.Trace, req.Span, wire.OpBatch, -1)
	subs, err := wire.DecodeBatch(req.Body)
	if err != nil {
		esp.SetStatus(wire.StatusInval.String())
		esp.Finish()
		reply(wire.StatusInval, []byte(err.Error()), 0)
		return
	}
	resps := make([]wire.SubResp, len(subs))
	services := make([]time.Duration, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if s.workers != nil {
				s.workers <- struct{}{}
				defer func() { <-s.workers }()
			}
			st, body, service := s.execute(subs[i].Op, subs[i].Body, 0, req.Trace, esp.ID(), i, time.Since(recvT))
			resps[i] = wire.SubResp{Status: st, Body: body}
			services[i] = service
		}(i)
	}
	wg.Wait()
	var total time.Duration
	for _, d := range services {
		total += d
	}
	esp.Finish()
	reply(wire.StatusOK, wire.EncodeBatchResp(resps), total)
}

func (s *Server) dispatch(op wire.Op, body []byte, req uint64) (wire.Status, []byte) {
	s.mu.RLock()
	mfn, mok := s.msgHandlers[op]
	fn, ok := s.handlers[op]
	s.mu.RUnlock()
	if mok {
		return mfn(req, body)
	}
	if !ok {
		return wire.StatusInval, []byte(fmt.Sprintf("unknown op %#x", uint16(op)))
	}
	return fn(body)
}

// Shutdown closes the listener and every established connection, then waits
// for in-flight requests to finish. Clients observe transport errors on
// outstanding and subsequent calls.
func (s *Server) Shutdown() {
	if s.closed.Swap(true) {
		return
	}
	s.connMu.Lock()
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("rpc: client closed")

// Client issues calls over one connection. Calls may be made concurrently;
// responses are matched to requests by id. Every Call is exactly one network
// round trip, and the client counts them — the paper reports metadata
// latency in round trips, so this counter is the measurement hook.
type Client struct {
	conn    netsim.Conn
	nextID  atomic.Uint64
	trips   atomic.Uint64
	virtNS  atomic.Uint64
	linkVal atomic.Pointer[netsim.LinkConfig]

	mu      sync.Mutex
	pending map[uint64]chan *wire.Msg
	err     error

	closeOnce sync.Once
}

// NewClient wraps an established connection and starts its response reader.
func NewClient(conn netsim.Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan *wire.Msg)}
	go c.readLoop()
	return c
}

// Dial connects to addr via d and returns a ready client.
func Dial(d netsim.Dialer, addr string) (*Client, error) {
	conn, err := d.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// SetLink installs the modeled network link for virtual-time accounting:
// each Call's virtual cost is the link's request+response delay plus the
// server-reported service time. The transport itself stays at loopback
// speed — the virtual clock is how experiments measure latency without
// depending on OS timer granularity.
func (c *Client) SetLink(link netsim.LinkConfig) {
	c.linkVal.Store(&link)
}

// VirtualTime returns the cumulative modeled time of all calls so far.
func (c *Client) VirtualTime() time.Duration {
	return time.Duration(c.virtNS.Load())
}

func (c *Client) readLoop() {
	for {
		m, err := c.conn.Recv()
		if err != nil {
			c.failAll(err)
			return
		}
		if !m.IsResp {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

// Call sends one request and blocks for its response. The returned error
// covers transport failures only; application-level failures arrive as a
// non-OK status.
func (c *Client) Call(op wire.Op, body []byte) (wire.Status, []byte, error) {
	return c.CallTraced(op, body, 0)
}

// CallTraced is Call with an explicit trace ID stamped on the wire header,
// so every RPC of one logical operation can be correlated in server-side
// slow-request logs. Trace 0 means untraced.
func (c *Client) CallTraced(op wire.Op, body []byte, trace uint64) (wire.Status, []byte, error) {
	st, resp, _, err := c.CallTracedV(op, body, trace)
	return st, resp, err
}

// CallTracedV is CallTraced that additionally returns this call's modeled
// (virtual) time — link delays plus server-reported service time — so
// callers that overlap several calls can account the group's latency as the
// slowest branch instead of the serial sum. The per-call cost is also
// accumulated into VirtualTime as before.
func (c *Client) CallTracedV(op wire.Op, body []byte, trace uint64) (wire.Status, []byte, time.Duration, error) {
	return c.CallSpanV(op, body, trace, 0)
}

// CallSpanV is CallTracedV with the caller's span ID stamped on the wire
// header's parent-span field, so the server opens its child span under the
// caller's — the link that joins client-side and server-side span trees.
// Span 0 means no parent span.
func (c *Client) CallSpanV(op wire.Op, body []byte, trace, span uint64) (wire.Status, []byte, time.Duration, error) {
	return c.Do(CallSpec{Op: op, Body: body, Trace: trace, Span: span})
}

// CallSpec fully describes one RPC: the operation and body plus the wire
// header's correlation fields and the call's resilience bounds. The zero
// value of every optional field means "off" (untraced, no dedup id, no
// deadline).
type CallSpec struct {
	Op   wire.Op
	Body []byte
	// Ctx, if non-nil, bounds the call: when it is cancelled or its
	// deadline expires before a response arrives, Do returns early (a
	// deadline maps to the same wire.StatusDeadline error as Timeout; a
	// bare cancellation returns the context's error). It composes with
	// Timeout — whichever bound trips first wins. The request itself is
	// not revoked server-side; mutations stay protected by Req dedup.
	Ctx context.Context
	// Trace and Span are the correlation ids stamped on the wire header
	// (see wire.Msg).
	Trace, Span uint64
	// Req is the client-unique request id for server-side duplicate
	// suppression of retried non-idempotent requests (see wire.Msg.Req).
	Req uint64
	// Timeout bounds this attempt: if no response arrives in time the call
	// returns a wire.StatusDeadline error and the (possibly still
	// in-flight) response is discarded on arrival. On transports with
	// bounded sends (netsim.DeadlineSender, i.e. real TCP) the socket
	// write is bounded by the same timeout. Zero means wait forever.
	Timeout time.Duration
	// OnEpoch, if set, is invoked with the response header's membership
	// epoch when it is non-zero — the hook the client library uses to
	// notice, on ordinary traffic, that the cluster installed a newer FMS
	// membership than the one its ring was built from.
	OnEpoch func(epoch uint64)
	// OnLease, if set, is invoked with the response header's lease-recall
	// sequence when it is non-zero — the hook the client cache uses to
	// notice, on ordinary traffic, that the DMS recalled directory leases
	// it may still be caching (see internal/client lease coherence).
	OnLease func(seq uint64)
	// OnPMap, if set, is invoked with the response header's partition-map
	// version when it is non-zero — the hook the client router uses to
	// notice, on ordinary traffic, that the DMS partition map changed.
	OnPMap func(ver uint64)
}

// Do issues the call described by spec and blocks for its response (or
// spec.Timeout). The returned error covers transport failures and deadline
// expiry — the latter distinguishable as wire.StatusOf(err) ==
// wire.StatusDeadline; application-level failures arrive as a non-OK
// status with a nil error.
func (c *Client) Do(spec CallSpec) (wire.Status, []byte, time.Duration, error) {
	if spec.Ctx != nil {
		if err := spec.Ctx.Err(); err != nil {
			return ctxStatus(err), nil, 0, ctxErr(err)
		}
	}
	id := c.nextID.Add(1)
	ch := make(chan *wire.Msg, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return wire.StatusIO, nil, 0, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	req := &wire.Msg{ID: id, Op: spec.Op, Trace: spec.Trace, Span: spec.Span, Req: spec.Req, Body: spec.Body}
	var sendErr error
	if ds, ok := c.conn.(netsim.DeadlineSender); ok && spec.Timeout > 0 {
		sendErr = ds.SendDeadline(req, spec.Timeout)
	} else {
		sendErr = c.conn.Send(req)
	}
	if sendErr != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.StatusIO, nil, 0, sendErr
	}
	c.trips.Add(1)

	var timeout <-chan time.Time
	if spec.Timeout > 0 {
		t := time.NewTimer(spec.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	var ctxDone <-chan struct{}
	if spec.Ctx != nil {
		ctxDone = spec.Ctx.Done()
	}
	var resp *wire.Msg
	var ok bool
	select {
	case resp, ok = <-ch:
	case <-timeout:
		// Forget the pending call; a late response is dropped by readLoop.
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.StatusDeadline, nil, 0, wire.StatusDeadline.Err()
	case <-ctxDone:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		err := spec.Ctx.Err()
		return ctxStatus(err), nil, 0, ctxErr(err)
	}
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return wire.StatusIO, nil, 0, err
	}
	var virt time.Duration
	if lp := c.linkVal.Load(); lp != nil {
		virt += lp.Delay(req.WireSize()) + lp.Delay(resp.WireSize())
	}
	virt += time.Duration(resp.ServiceNS)
	c.virtNS.Add(uint64(virt))
	if resp.Epoch != 0 && spec.OnEpoch != nil {
		spec.OnEpoch(resp.Epoch)
	}
	if resp.Lease != 0 && spec.OnLease != nil {
		spec.OnLease(resp.Lease)
	}
	if resp.PMap != 0 && spec.OnPMap != nil {
		spec.OnPMap(resp.PMap)
	}
	return resp.Status, resp.Body, virt, nil
}

// ctxStatus maps a context error to the wire status Do reports: an expired
// deadline is indistinguishable from a per-attempt timeout, while a bare
// cancellation is not a server condition at all and surfaces as StatusIO
// with the context's own error.
func ctxStatus(err error) wire.Status {
	if errors.Is(err, context.DeadlineExceeded) {
		return wire.StatusDeadline
	}
	return wire.StatusIO
}

// ctxErr converts a context error to the error Do returns: deadline expiry
// becomes the StatusDeadline error (which errors.Is-matches
// context.DeadlineExceeded), cancellation passes through untouched so
// callers can recognize context.Canceled.
func ctxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return wire.StatusDeadline.Err()
	}
	return err
}

// Trips returns the number of round trips issued so far. Callers snapshot it
// around an operation to count that operation's network cost.
func (c *Client) Trips() uint64 { return c.trips.Load() }

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() {
		err = c.conn.Close()
		c.failAll(ErrClientClosed)
	})
	return err
}
