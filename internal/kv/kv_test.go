package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// stores under test, by constructor.
func allStores() map[string]func() Store {
	return map[string]func() Store{
		"hash":  func() Store { return NewHashStore() },
		"btree": func() Store { return NewBTreeStore() },
	}
}

func TestStoreBasicOps(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if _, ok := s.Get([]byte("missing")); ok {
				t.Error("Get on empty store returned ok")
			}
			s.Put([]byte("k1"), []byte("v1"))
			s.Put([]byte("k2"), []byte("v2"))
			if v, ok := s.Get([]byte("k1")); !ok || string(v) != "v1" {
				t.Errorf("Get(k1) = %q, %v", v, ok)
			}
			s.Put([]byte("k1"), []byte("v1b")) // replace
			if v, _ := s.Get([]byte("k1")); string(v) != "v1b" {
				t.Errorf("after replace Get(k1) = %q", v)
			}
			if s.Len() != 2 {
				t.Errorf("Len = %d, want 2", s.Len())
			}
			if !s.Delete([]byte("k1")) {
				t.Error("Delete(k1) = false")
			}
			if s.Delete([]byte("k1")) {
				t.Error("second Delete(k1) = true")
			}
			if s.Len() != 1 {
				t.Errorf("Len after delete = %d, want 1", s.Len())
			}
		})
	}
}

func TestStoreGetReturnsCopy(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Put([]byte("k"), []byte("abc"))
			v, _ := s.Get([]byte("k"))
			v[0] = 'X'
			if w, _ := s.Get([]byte("k")); string(w) != "abc" {
				t.Error("Get exposed internal storage")
			}
		})
	}
}

func TestStorePutCopiesInput(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			key := []byte("k")
			val := []byte("abc")
			s.Put(key, val)
			val[0] = 'X'
			key[0] = 'Y'
			if w, ok := s.Get([]byte("k")); !ok || string(w) != "abc" {
				t.Error("store retained caller slices")
			}
		})
	}
}

func TestPatchInPlace(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Put([]byte("k"), []byte("0123456789"))
			if !s.PatchInPlace([]byte("k"), 2, []byte("AB")) {
				t.Fatal("patch failed")
			}
			if v, _ := s.Get([]byte("k")); string(v) != "01AB456789" {
				t.Errorf("after patch = %q", v)
			}
			if s.PatchInPlace([]byte("k"), 9, []byte("XY")) {
				t.Error("overlong patch succeeded")
			}
			if s.PatchInPlace([]byte("nope"), 0, []byte("A")) {
				t.Error("patch on missing key succeeded")
			}
		})
	}
}

func TestReadAt(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Put([]byte("k"), []byte("hello world"))
			buf := make([]byte, 5)
			if !s.ReadAt([]byte("k"), 6, buf) || string(buf) != "world" {
				t.Errorf("ReadAt = %q", buf)
			}
			if s.ReadAt([]byte("k"), 8, buf) {
				t.Error("out-of-range ReadAt succeeded")
			}
			if s.ReadAt([]byte("nope"), 0, buf) {
				t.Error("ReadAt on missing key succeeded")
			}
		})
	}
}

func TestAppendValue(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.AppendValue([]byte("k"), []byte("ab")) // creates
			s.AppendValue([]byte("k"), []byte("cd"))
			if v, _ := s.Get([]byte("k")); string(v) != "abcd" {
				t.Errorf("after appends = %q", v)
			}
			if s.Len() != 1 {
				t.Errorf("Len = %d", s.Len())
			}
		})
	}
}

func TestForEachVisitsAll(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			want := map[string]string{}
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%03d", i)
				v := fmt.Sprintf("val-%d", i)
				want[k] = v
				s.Put([]byte(k), []byte(v))
			}
			got := map[string]string{}
			s.ForEach(func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("visited %d records, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Errorf("got[%q] = %q, want %q", k, got[k], v)
				}
			}
		})
	}
}

func TestForEachEarlyStop(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			for i := 0; i < 100; i++ {
				s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
			}
			n := 0
			s.ForEach(func(k, v []byte) bool {
				n++
				return n < 10
			})
			if n != 10 {
				t.Errorf("visited %d, want 10", n)
			}
		})
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	for name, mk := range allStores() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						k := []byte(fmt.Sprintf("w%d-k%d", w, i))
						s.Put(k, []byte("v"))
						if _, ok := s.Get(k); !ok {
							t.Errorf("lost own write %s", k)
							return
						}
						if i%3 == 0 {
							s.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestBTreeAscendOrder checks sorted iteration against sort.Strings.
func TestBTreeAscendOrder(t *testing.T) {
	s := NewBTreeStore()
	rng := rand.New(rand.NewSource(1))
	var keys []string
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k-%08x", rng.Uint32())
		keys = append(keys, k)
		s.Put([]byte(k), []byte("v"))
	}
	sort.Strings(keys)
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			uniq = append(uniq, k)
		}
	}
	var got []string
	s.ForEach(func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(uniq) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(uniq))
	}
	for i := range got {
		if got[i] != uniq[i] {
			t.Fatalf("order mismatch at %d: %q vs %q", i, got[i], uniq[i])
		}
	}
}

func TestBTreeAscendRange(t *testing.T) {
	s := NewBTreeStore()
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	var got []string
	s.AscendRange([]byte("k10"), []byte("k20"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 || got[0] != "k10" || got[9] != "k19" {
		t.Errorf("range [k10,k20) = %v", got)
	}
}

func TestBTreeAscendPrefix(t *testing.T) {
	s := NewBTreeStore()
	s.Put([]byte("/a/x"), []byte("1"))
	s.Put([]byte("/a/y"), []byte("2"))
	s.Put([]byte("/ab"), []byte("3"))
	s.Put([]byte("/b/z"), []byte("4"))
	var got []string
	s.AscendPrefix([]byte("/a/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "/a/x" || got[1] != "/a/y" {
		t.Errorf("prefix scan = %v", got)
	}
}

func TestBTreeMovePrefix(t *testing.T) {
	s := NewBTreeStore()
	s.Put([]byte("/old/a"), []byte("1"))
	s.Put([]byte("/old/b/c"), []byte("2"))
	s.Put([]byte("/older"), []byte("3")) // shares bytes but not the prefix "/old/"
	s.Put([]byte("/other"), []byte("4"))
	n := s.MovePrefix([]byte("/old/"), []byte("/new/"))
	if n != 2 {
		t.Fatalf("moved %d, want 2", n)
	}
	if _, ok := s.Get([]byte("/old/a")); ok {
		t.Error("old key survived move")
	}
	if v, ok := s.Get([]byte("/new/b/c")); !ok || string(v) != "2" {
		t.Errorf("moved key = %q, %v", v, ok)
	}
	if _, ok := s.Get([]byte("/older")); !ok {
		t.Error("unrelated key /older vanished")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}

func TestBTreeMovePrefixOverlap(t *testing.T) {
	// Moving /a/ -> /a/b/ nests the old range inside the new one.
	s := NewBTreeStore()
	s.Put([]byte("/a/x"), []byte("1"))
	s.Put([]byte("/a/y"), []byte("2"))
	n := s.MovePrefix([]byte("/a/"), []byte("/a/b/"))
	if n != 2 {
		t.Fatalf("moved %d, want 2", n)
	}
	if v, ok := s.Get([]byte("/a/b/x")); !ok || string(v) != "1" {
		t.Errorf("nested move lost /a/b/x: %q %v", v, ok)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc", "abd"},
		{"a\xff", "b"},
		{"/dir/", "/dir0"},
	}
	for _, c := range cases {
		got := PrefixSuccessor([]byte(c.in))
		if string(got) != c.want {
			t.Errorf("PrefixSuccessor(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if PrefixSuccessor([]byte{0xff, 0xff}) != nil {
		t.Error("PrefixSuccessor(all-FF) != nil")
	}
}

// TestBTreeModelQuick drives the B+ tree against a map model with random
// put/delete sequences, then verifies contents and iteration order.
func TestBTreeModelQuick(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val uint16
		Del bool
	}) bool {
		s := NewBTreeStore()
		model := map[string]string{}
		for _, op := range ops {
			k := fmt.Sprintf("key-%03d", op.Key)
			if op.Del {
				delete(model, k)
				s.Delete([]byte(k))
			} else {
				v := fmt.Sprintf("v%d", op.Val)
				model[k] = v
				s.Put([]byte(k), []byte(v))
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := s.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		var prev []byte
		ordered := true
		s.ForEach(func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				ordered = false
				return false
			}
			prev = append(prev[:0], k...)
			return true
		})
		return ordered
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestBTreeDeleteHeavy forces many splits and merges: insert a large sorted
// range, delete most of it in a shuffled order, verify the rest.
func TestBTreeDeleteHeavy(t *testing.T) {
	s := NewBTreeStore()
	const n = 5000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for _, i := range perm[:n*9/10] {
		if !s.Delete([]byte(fmt.Sprintf("k%06d", i))) {
			t.Fatalf("delete k%06d failed", i)
		}
	}
	kept := map[int]bool{}
	for _, i := range perm[n*9/10:] {
		kept[i] = true
	}
	if s.Len() != len(kept) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(kept))
	}
	for i := range kept {
		v, ok := s.Get([]byte(fmt.Sprintf("k%06d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("survivor k%06d = %q, %v", i, v, ok)
		}
	}
	// Iteration must still be sorted and complete.
	count := 0
	var prev []byte
	s.ForEach(func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("unsorted after deletes at %q", k)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if count != len(kept) {
		t.Fatalf("iterated %d, want %d", count, len(kept))
	}
}

func TestInstrumentedCountsAndVirtualTime(t *testing.T) {
	s := Instrument(NewBTreeStore(), SSD)
	s.Put([]byte("a"), []byte("1"))
	s.Get([]byte("a"))
	s.Get([]byte("b"))
	s.Delete([]byte("a"))
	c := s.Counters()
	if c.Puts.Load() != 1 || c.Gets.Load() != 2 || c.Deletes.Load() != 1 {
		t.Errorf("counters: puts=%d gets=%d dels=%d", c.Puts.Load(), c.Gets.Load(), c.Deletes.Load())
	}
	want := SSD.WriteCost*2 + SSD.ReadCost*2
	if got := s.VirtualTime(); got != want {
		t.Errorf("VirtualTime = %v, want %v", got, want)
	}
	s.ResetVirtualTime()
	if s.VirtualTime() != 0 {
		t.Error("ResetVirtualTime did not zero the clock")
	}
}

func TestInstrumentedOrderedOps(t *testing.T) {
	s := Instrument(NewBTreeStore(), RAM)
	if !s.IsOrdered() {
		t.Fatal("btree-backed Instrumented not ordered")
	}
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("p/k%d", i)), []byte("v"))
	}
	n := 0
	s.AscendPrefix([]byte("p/"), func(k, v []byte) bool { n++; return true })
	if n != 10 {
		t.Errorf("prefix scan visited %d", n)
	}
	moved := s.MovePrefix([]byte("p/"), []byte("q/"))
	if moved != 10 {
		t.Errorf("MovePrefix = %d", moved)
	}
	if s.Counters().Scans.Load() < 10 {
		t.Error("scan counter not advanced")
	}
	hs := Instrument(NewHashStore(), RAM)
	if hs.IsOrdered() {
		t.Error("hash-backed Instrumented claims ordered")
	}
}

func TestCountersSnapshot(t *testing.T) {
	s := Instrument(NewBTreeStore(), RAM)
	s.Put([]byte("a"), []byte("12345"))
	s.Put([]byte("b"), []byte("xy"))
	s.Get([]byte("a"))
	s.PatchInPlace([]byte("a"), 1, []byte("AB"))
	s.AppendValue([]byte("b"), []byte("z"))
	s.Delete([]byte("b"))
	n := 0
	s.ForEach(func(k, v []byte) bool { n++; return true })

	snap := s.Counters().Snapshot()
	if snap.Puts != 2 || snap.Gets != 1 || snap.Deletes != 1 ||
		snap.Patches != 1 || snap.Appends != 1 || snap.Scans != uint64(n) {
		t.Errorf("snapshot = %+v (scans want %d)", snap, n)
	}
	if got, want := snap.Writes(), uint64(2+1+1); got != want {
		t.Errorf("Writes() = %d, want %d", got, want)
	}
	if snap.BytesWritten != 5+2+2+1 {
		t.Errorf("BytesWritten = %d, want 10", snap.BytesWritten)
	}
	if got := snap.Bytes(); got != snap.BytesRead+snap.BytesWritten {
		t.Errorf("Bytes() = %d", got)
	}
	// A snapshot is a value copy: later store activity must not move it.
	s.Put([]byte("c"), []byte("v"))
	if snap.Puts != 2 {
		t.Error("snapshot mutated by later store activity")
	}
}
