package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{-5, 0}, // clamped via Record, but bucketOf itself also maps <=0 to 0
		{1, 1},  // [1,2) ns
		{2, 2},  // [2,4) ns
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{time.Microsecond, 10}, // 1000 ns -> bits.Len64 = 10
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.bucket {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.bucket)
		}
	}
	for i := 1; i < 63; i++ {
		upper := BucketUpper(i)
		if bucketOf(upper-1) != i {
			t.Errorf("upper-1 of bucket %d classified as %d", i, bucketOf(upper-1))
		}
		if bucketOf(upper) != i+1 {
			t.Errorf("upper of bucket %d classified as %d, want %d", i, bucketOf(upper), i+1)
		}
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations spread over two decades: 1..100 µs.
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Max != 100*time.Microsecond {
		t.Errorf("max = %v, want 100µs", s.Max)
	}
	wantMean := 50500 * time.Nanosecond
	if s.Mean() != wantMean {
		t.Errorf("mean = %v, want %v", s.Mean(), wantMean)
	}
	// Log-bucket quantiles are estimates; assert the right bucket (factor
	// of 2) rather than exact values.
	p50 := s.Quantile(0.50)
	if p50 < 32*time.Microsecond || p50 > 128*time.Microsecond {
		t.Errorf("p50 = %v, not within the [32µs,128µs) bucket range", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 64*time.Microsecond || p99 > 100*time.Microsecond {
		t.Errorf("p99 = %v, want within [64µs, max]", p99)
	}
	if q := s.Quantile(1.0); q != s.Max {
		t.Errorf("p100 = %v, want max %v", q, s.Max)
	}
	var empty Histogram
	if empty.Snapshot().Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

func TestHistogramConcurrentRecording(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(i%1000+1) * time.Microsecond)
			}
		}(w)
	}
	// Concurrent snapshotting must be safe too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.Max != 1000*time.Microsecond {
		t.Errorf("max = %v, want 1ms", s.Max)
	}
}

func TestRegistryIdentityAndBaseLabels(t *testing.T) {
	r := NewRegistry(L("server", "dms"))
	c1 := r.Counter("reqs", L("op", "Mkdir"))
	c2 := r.Counter("reqs", L("op", "Mkdir"))
	if c1 != c2 {
		t.Error("same name+labels returned distinct counters")
	}
	c1.Add(3)
	r.Counter("reqs", L("op", "Rmdir")).Inc()
	r.Histogram("lat", L("op", "Mkdir")).Record(time.Millisecond)
	r.GaugeFunc("depth", func() float64 { return 7 })

	s := r.Snapshot()
	byKey := map[string]Metric{}
	for _, m := range s.Metrics {
		byKey[m.Name+m.Labels] = m
	}
	mk := byKey[`reqs{op="Mkdir",server="dms"}`]
	if mk.Value != 3 {
		t.Errorf("Mkdir counter = %v, want 3", mk.Value)
	}
	if g := byKey[`depth{server="dms"}`]; g.Value != 7 || g.Kind != KindGauge {
		t.Errorf("gauge = %+v", g)
	}
	h := byKey[`lat{op="Mkdir",server="dms"}`]
	if h.Kind != KindHistogram || h.Hist.Count != 1 {
		t.Errorf("histogram = %+v", h)
	}
}

func TestSnapshotPromAndOpTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("locofs_rpc_requests_total", L("op", "Mkdir")).Add(2)
	h := r.Histogram("locofs_client_rtt_seconds", L("op", "Mkdir"))
	h.Record(10 * time.Microsecond)
	h.Record(20 * time.Microsecond)

	var sb strings.Builder
	if err := r.Snapshot().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE locofs_rpc_requests_total counter",
		`locofs_rpc_requests_total{op="Mkdir"} 2`,
		"# TYPE locofs_client_rtt_seconds histogram",
		`locofs_client_rtt_seconds_count{op="Mkdir"} 2`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}

	rows := r.Snapshot().OpTable("locofs_client_rtt_seconds")
	if len(rows) != 1 || rows[0].Op != "Mkdir" || rows[0].Count != 2 {
		t.Fatalf("OpTable = %+v", rows)
	}
	if rows[0].Max != 20*time.Microsecond {
		t.Errorf("row max = %v", rows[0].Max)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry(L("server", "test"))
	r.Counter("locofs_rpc_requests_total", L("op", "Ping")).Inc()
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, `locofs_rpc_requests_total{op="Ping",server="test"} 1`) {
		t.Errorf("metrics output:\n%s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Error("pprof index missing goroutine profile")
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Error("expvar output missing memstats")
	}
}
