package wire

import "strings"

// DMS partition map and replication codecs (DESIGN.md §16).
//
// The sharded DMS splits the path-keyed directory namespace into subtree
// range partitions. A partition is declared by a *cut* at a directory d: the
// cut partition owns every proper descendant of d — the contiguous key range
// [d+"/", d+"0") of the B+-tree, since '/' is the only byte in ['/','0') —
// while d's own inode stays with its parent's partition. Partition 0 is the
// residual: it owns everything no cut covers, including the root. The map is
// versioned; the version rides in every response header (Msg.PMap) exactly
// the way the FMS membership epoch does, and a newer version on the wire
// tells the client to refetch the map via OpGetPartMap.

// PartCut declares one subtree cut: every proper descendant of Dir belongs
// to partition PID.
type PartCut struct {
	Dir string
	PID uint32
}

// PartMap is the versioned range→replica-group map of a sharded DMS.
// Groups[pid] lists the replica addresses of partition pid with the leader
// first; len(Groups) is the partition count. Partition 0 owns the residual
// namespace (everything under no cut), so every valid map has at least one
// group and the root always resolves to partition 0.
type PartMap struct {
	Ver    uint64
	Cuts   []PartCut
	Groups [][]string
}

// Locate returns the partition owning the metadata of cleaned path p: the
// partition of the deepest cut whose directory is a proper ancestor of p,
// or partition 0 when no cut covers p. Locating the owner of a directory's
// *listing* (its S: dirent list, which moves with the cut) is done by
// locating p+"/" instead — see LocateList.
func (pm *PartMap) Locate(p string) uint32 {
	best, bestLen := uint32(0), -1
	for _, c := range pm.Cuts {
		if isAncestorOrRoot(c.Dir, p) && len(c.Dir) > bestLen {
			best, bestLen = c.PID, len(c.Dir)
		}
	}
	return best
}

// LocateList returns the partition owning p's subdir listing and the
// children operations under p. A cut directory's own inode lives with its
// parent partition, but its listing moves with the subtree.
func (pm *PartMap) LocateList(p string) uint32 {
	if p == "/" {
		return pm.Locate("/x")
	}
	return pm.Locate(p + "/x")
}

// CutWithin reports whether some cut lies at or below p — i.e. whether the
// subtree rooted at p straddles a partition boundary. Directory renames
// whose source or destination straddles a boundary are refused (the cut is
// a mount-point-like fixture; re-cut the namespace first).
func (pm *PartMap) CutWithin(p string) bool {
	for _, c := range pm.Cuts {
		if c.Dir == p || isAncestorOrRoot(p, c.Dir) {
			return true
		}
	}
	return false
}

// SeedTargets returns the partitions (other than from) that hold a seeded
// ancestor copy of path p's inode: every cut partition whose cut directory
// is p itself or a descendant of p. A mutation of p at its owning partition
// must push the new inode state to each of them (OpSeedUpdate).
func (pm *PartMap) SeedTargets(p string, from uint32) []uint32 {
	var out []uint32
	seen := make(map[uint32]bool)
	for _, c := range pm.Cuts {
		if c.PID != from && !seen[c.PID] && (c.Dir == p || isAncestorOrRoot(p, c.Dir)) {
			seen[c.PID] = true
			out = append(out, c.PID)
		}
	}
	return out
}

// Leader returns the leader address of partition pid ("" if out of range or
// the group is empty).
func (pm *PartMap) Leader(pid uint32) string {
	if int(pid) >= len(pm.Groups) || len(pm.Groups[pid]) == 0 {
		return ""
	}
	return pm.Groups[pid][0]
}

// isAncestorOrRoot reports whether cleaned path a is a proper ancestor of
// cleaned path b.
func isAncestorOrRoot(a, b string) bool {
	if a == "/" {
		return len(b) > 1
	}
	return len(b) > len(a)+1 && b[len(a)] == '/' && strings.HasPrefix(b, a)
}

// EncodePartMap serializes a partition map.
// Layout: ver u64, c u32, c×(dir str, pid u32), g u32, g×(r u32, r×addr str).
func EncodePartMap(pm *PartMap) []byte {
	e := NewEnc().U64(pm.Ver).U32(uint32(len(pm.Cuts)))
	for _, c := range pm.Cuts {
		e.Str(c.Dir).U32(c.PID)
	}
	e.U32(uint32(len(pm.Groups)))
	for _, g := range pm.Groups {
		e.U32(uint32(len(g)))
		for _, a := range g {
			e.Str(a)
		}
	}
	return e.Bytes()
}

// DecodePartMap parses an EncodePartMap body.
func DecodePartMap(body []byte) (*PartMap, error) {
	d := NewDec(body)
	pm := &PartMap{Ver: d.U64()}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		pm.Cuts = append(pm.Cuts, PartCut{Dir: d.Str(), PID: d.U32()})
	}
	g := d.U32()
	for i := uint32(0); i < g && d.Err() == nil; i++ {
		r := d.U32()
		grp := make([]string, 0, r)
		for j := uint32(0); j < r && d.Err() == nil; j++ {
			grp = append(grp, d.Str())
		}
		pm.Groups = append(pm.Groups, grp)
	}
	return pm, d.Err()
}

// EncodeSetPartMap builds an OpSetPartMap request: the map plus the
// receiver's own partition id and replica index within it (the coordinator
// customizes both per destination; a failover changes a follower's index to
// 0, which is how it learns it was promoted).
func EncodeSetPartMap(pm *PartMap, pid uint32, idx int) []byte {
	return NewEnc().U32(pid).I64(int64(idx)).Blob(EncodePartMap(pm)).Bytes()
}

// DecodeSetPartMap parses an OpSetPartMap request.
func DecodeSetPartMap(body []byte) (pm *PartMap, pid uint32, idx int, err error) {
	d := NewDec(body)
	pid = d.U32()
	idx = int(d.I64())
	blob := d.Blob()
	if err := d.Err(); err != nil {
		return nil, 0, 0, err
	}
	pm, err = DecodePartMap(blob)
	return pm, pid, idx, err
}

// LogEntry is one entry of a partition's replicated op log: the mutation's
// opcode and request body, the client dedup id it executed under, and the
// leader-pinned timestamp every replica applies it with (determinism — all
// replicas produce byte-identical inodes).
type LogEntry struct {
	Index uint64
	Req   uint64
	TS    int64
	Op    Op
	Body  []byte
}

// EncodeLogEntry serializes one op-log entry (the OpLogAppend body).
func EncodeLogEntry(le *LogEntry) []byte {
	return NewEnc().U64(le.Index).U64(le.Req).I64(le.TS).U32(uint32(le.Op)).Blob(le.Body).Bytes()
}

// DecodeLogEntry parses an EncodeLogEntry body.
func DecodeLogEntry(body []byte) (*LogEntry, error) {
	d := NewDec(body)
	le := &LogEntry{Index: d.U64(), Req: d.U64(), TS: d.I64(), Op: Op(d.U32()), Body: d.Blob()}
	return le, d.Err()
}

// EncodeLogAppend builds an OpLogAppend request: the leader's retained-log
// floor — followers prune their own log and dedup records below it, so the
// whole group truncates identically — plus one log entry.
func EncodeLogAppend(floor uint64, le *LogEntry) []byte {
	return NewEnc().U64(floor).Blob(EncodeLogEntry(le)).Bytes()
}

// DecodeLogAppend parses an EncodeLogAppend body.
func DecodeLogAppend(body []byte) (floor uint64, le *LogEntry, err error) {
	d := NewDec(body)
	floor = d.U64()
	blob := d.Blob()
	if err := d.Err(); err != nil {
		return 0, nil, err
	}
	le, err = DecodeLogEntry(blob)
	return floor, le, err
}

// EncodeLogAck builds an OpLogAppend OK-response body: the follower's
// applied watermark (its next log index — every entry below it is applied).
// The leader keeps the maximum seen per follower; the group-wide minimum
// over live followers bounds log truncation.
func EncodeLogAck(watermark uint64) []byte {
	return NewEnc().U64(watermark).Bytes()
}

// DecodeLogAck parses an EncodeLogAck body.
func DecodeLogAck(body []byte) (watermark uint64, err error) {
	d := NewDec(body)
	watermark = d.U64()
	return watermark, d.Err()
}

// EncodeLogFetch builds an OpLogFetch request: the fetching replica's own
// address (the leader keys its catch-up session and rejoin decision on it),
// the first index it is missing, and the maximum entries to return.
func EncodeLogFetch(self string, from uint64, max uint32) []byte {
	return NewEnc().Str(self).U64(from).U32(max).Bytes()
}

// DecodeLogFetch parses an EncodeLogFetch body.
func DecodeLogFetch(body []byte) (self string, from uint64, max uint32, err error) {
	d := NewDec(body)
	self, from, max = d.Str(), d.U64(), d.U32()
	return self, from, max, d.Err()
}

// LogFetchResp is the OpLogFetch response: a contiguous run of log entries
// starting at the requested index, the leader's log tip (nextIndex) and
// retained floor (the fetcher prunes to it), and the rejoined flag — set
// when the fetcher had reached the tip and the leader re-admitted it to the
// live fan-out set, ending catch-up.
type LogFetchResp struct {
	Tip      uint64
	Floor    uint64
	Rejoined bool
	Entries  []*LogEntry
}

// EncodeLogFetchResp serializes an OpLogFetch response.
func EncodeLogFetchResp(r *LogFetchResp) []byte {
	e := NewEnc().U64(r.Tip).U64(r.Floor).Bool(r.Rejoined).U32(uint32(len(r.Entries)))
	for _, le := range r.Entries {
		e.Blob(EncodeLogEntry(le))
	}
	return e.Bytes()
}

// DecodeLogFetchResp parses an EncodeLogFetchResp body.
func DecodeLogFetchResp(body []byte) (*LogFetchResp, error) {
	d := NewDec(body)
	r := &LogFetchResp{Tip: d.U64(), Floor: d.U64(), Rejoined: d.Bool()}
	n := d.U32()
	for i := uint32(0); i < n; i++ {
		blob := d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		le, err := DecodeLogEntry(blob)
		if err != nil {
			return nil, err
		}
		r.Entries = append(r.Entries, le)
	}
	return r, d.Err()
}

// EncodeSeedUpdate builds an OpSeedUpdate body: absolute state of one
// seeded ancestor inode — present with the given bytes, or absent.
func EncodeSeedUpdate(path string, present bool, inode []byte) []byte {
	return NewEnc().Str(path).Bool(present).Blob(inode).Bytes()
}

// DecodeSeedUpdate parses an OpSeedUpdate body.
func DecodeSeedUpdate(body []byte) (path string, present bool, inode []byte, err error) {
	d := NewDec(body)
	path, present, inode = d.Str(), d.Bool(), d.Blob()
	return path, present, inode, d.Err()
}

// KVRec is one exported store record of a cross-partition rename: a raw
// key/value pair, already re-keyed to the destination prefix by the source.
type KVRec struct {
	Key, Val []byte
}

// RenamePrepare is the payload of the cross-partition rename's first phase:
// the transaction id (the client's dedup id — unique and stable across
// coordinator retries), both cleaned paths, the caller's credentials for
// destination-side validation, and the exported subtree records.
type RenamePrepare struct {
	TxID     uint64
	OldPath  string
	NewPath  string
	UID, GID uint32
	Recs     []KVRec
}

// EncodeRenamePrepare serializes an OpRenamePrepare body.
func EncodeRenamePrepare(rp *RenamePrepare) []byte {
	e := NewEnc().U64(rp.TxID).Str(rp.OldPath).Str(rp.NewPath).U32(rp.UID).U32(rp.GID)
	e.U32(uint32(len(rp.Recs)))
	for _, r := range rp.Recs {
		e.Blob(r.Key).Blob(r.Val)
	}
	return e.Bytes()
}

// DecodeRenamePrepare parses an OpRenamePrepare body.
func DecodeRenamePrepare(body []byte) (*RenamePrepare, error) {
	d := NewDec(body)
	rp := &RenamePrepare{TxID: d.U64(), OldPath: d.Str(), NewPath: d.Str(), UID: d.U32(), GID: d.U32()}
	n := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	rp.Recs = make([]KVRec, 0, n)
	for i := uint32(0); i < n; i++ {
		r := KVRec{Key: d.Blob(), Val: d.Blob()}
		if err := d.Err(); err != nil {
			return nil, err
		}
		rp.Recs = append(rp.Recs, r)
	}
	return rp, nil
}

// SrcPrepare is the coordinator-side op-log marker of a cross-partition
// rename (an OpRenameSrcPrepare log entry): enough state for any source
// replica to re-drive or abort the transaction after a leader failover.
type SrcPrepare struct {
	TxID     uint64
	OldPath  string
	NewPath  string
	UID, GID uint32
	DestPID  uint32
}

// EncodeSrcPrepare serializes an OpRenameSrcPrepare log-entry body.
func EncodeSrcPrepare(sp *SrcPrepare) []byte {
	return NewEnc().U64(sp.TxID).Str(sp.OldPath).Str(sp.NewPath).
		U32(sp.UID).U32(sp.GID).U32(sp.DestPID).Bytes()
}

// DecodeSrcPrepare parses an OpRenameSrcPrepare log-entry body.
func DecodeSrcPrepare(body []byte) (*SrcPrepare, error) {
	d := NewDec(body)
	sp := &SrcPrepare{TxID: d.U64(), OldPath: d.Str(), NewPath: d.Str(),
		UID: d.U32(), GID: d.U32(), DestPID: d.U32()}
	return sp, d.Err()
}

// EncodeRenameDecision builds an OpRenameCommit / OpRenameAbort body.
func EncodeRenameDecision(txid uint64) []byte {
	return NewEnc().U64(txid).Bytes()
}

// DecodeRenameDecision parses an OpRenameCommit / OpRenameAbort body.
func DecodeRenameDecision(body []byte) (txid uint64, err error) {
	d := NewDec(body)
	txid = d.U64()
	return txid, d.Err()
}
