package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"locofs/internal/telemetry"
)

// jsonSpan is the wire form of a Span on the admin surface. IDs render as
// 0x-prefixed hex strings: uint64 values exceed JavaScript's safe-integer
// range, and hex is what the slow-request log lines print, so the two can be
// grepped against each other.
type jsonSpan struct {
	Trace       string   `json:"trace"`
	ID          string   `json:"id"`
	Parent      string   `json:"parent,omitempty"`
	Name        string   `json:"name"`
	Server      string   `json:"server"`
	Status      string   `json:"status,omitempty"`
	Sub         *int     `json:"sub,omitempty"`
	Start       string   `json:"start"`
	DurNS       int64    `json:"dur_ns"`
	Dur         string   `json:"dur"`
	Annotations []string `json:"annotations,omitempty"`
}

// jsonNode is one vertex of the span-tree JSON.
type jsonNode struct {
	jsonSpan
	Children []jsonNode `json:"children,omitempty"`
}

func hexID(v uint64) string { return fmt.Sprintf("%#x", v) }

func toJSONSpan(sp *Span) jsonSpan {
	js := jsonSpan{
		Trace:       hexID(sp.TraceID),
		ID:          hexID(sp.SpanID),
		Name:        sp.Name,
		Server:      sp.Server,
		Status:      sp.Status,
		Start:       sp.Start.Format(time.RFC3339Nano),
		DurNS:       int64(sp.Dur),
		Dur:         sp.Dur.String(),
		Annotations: sp.Annotations,
	}
	if sp.Parent != 0 {
		js.Parent = hexID(sp.Parent)
	}
	if sp.Sub >= 0 {
		sub := sp.Sub
		js.Sub = &sub
	}
	return js
}

func toJSONNodes(nodes []*Node) []jsonNode {
	out := make([]jsonNode, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, jsonNode{jsonSpan: toJSONSpan(n.Span), Children: toJSONNodes(n.Children)})
	}
	return out
}

// parseTraceID accepts 0x-prefixed hex, bare hex, or decimal trace IDs.
func parseTraceID(s string) (uint64, error) {
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return v, nil
	}
	return strconv.ParseUint(s, 16, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// TracesHandler serves the trace introspection endpoints over the given
// tracers (nil tracers are skipped; several tracers — e.g. every server of
// an in-process cluster sharing one admin port — are merged):
//
//	GET /debug/traces            JSON list of retained traces, newest first
//	                             (?limit=N, default 100)
//	GET /debug/traces/<traceID>  JSON span tree(s) for one trace; spans whose
//	                             parent lives in another process's ring
//	                             surface as additional roots
func TracesHandler(tracers ...*Tracer) http.Handler {
	live := make([]*Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !telemetry.RequireGET(w, r) {
			return
		}
		rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/traces"), "/")
		if rest == "" {
			limit := 100
			if q := r.URL.Query().Get("limit"); q != "" {
				v, err := strconv.Atoi(q)
				if err != nil || v <= 0 {
					telemetry.WriteJSONError(w, http.StatusBadRequest, "bad limit "+strconv.Quote(q))
					return
				}
				limit = v
			}
			type jsonSummary struct {
				Trace  string `json:"trace"`
				Root   string `json:"root,omitempty"`
				Server string `json:"server,omitempty"`
				Spans  int    `json:"spans"`
				Errors int    `json:"errors,omitempty"`
				Start  string `json:"start"`
				Dur    string `json:"dur"`
			}
			merged := make(map[uint64]Summary)
			for _, t := range live {
				for _, s := range t.Summaries(0) {
					m, ok := merged[s.TraceID]
					if !ok {
						merged[s.TraceID] = s
						continue
					}
					m.Spans += s.Spans
					m.Errors += s.Errors
					if s.Start.Before(m.Start) {
						m.Start = s.Start
					}
					if m.Root == "" {
						m.Root, m.Server, m.Dur = s.Root, s.Server, s.Dur
					}
					merged[s.TraceID] = m
				}
			}
			sums := make([]Summary, 0, len(merged))
			for _, s := range merged {
				sums = append(sums, s)
			}
			sort.Slice(sums, func(i, j int) bool { return sums[i].Start.After(sums[j].Start) })
			if len(sums) > limit {
				sums = sums[:limit]
			}
			out := make([]jsonSummary, 0, len(sums))
			for _, s := range sums {
				out = append(out, jsonSummary{
					Trace:  hexID(s.TraceID),
					Root:   s.Root,
					Server: s.Server,
					Spans:  s.Spans,
					Errors: s.Errors,
					Start:  s.Start.Format(time.RFC3339Nano),
					Dur:    s.Dur.String(),
				})
			}
			writeJSON(w, out)
			return
		}
		id, err := parseTraceID(rest)
		if err != nil {
			telemetry.WriteJSONError(w, http.StatusBadRequest, "bad trace id "+strconv.Quote(rest))
			return
		}
		var spans []*Span
		for _, t := range live {
			spans = append(spans, t.Trace(id)...)
		}
		if len(spans) == 0 {
			telemetry.WriteJSONError(w, http.StatusNotFound, "no spans retained for "+hexID(id))
			return
		}
		writeJSON(w, struct {
			Trace string     `json:"trace"`
			Spans int        `json:"spans"`
			Tree  []jsonNode `json:"tree"`
		}{hexID(id), len(spans), toJSONNodes(BuildTree(spans))})
	})
}

// HotHandler serves GET /debug/hot: per-source top-K heavy hitters as JSON,
// each source being one server's sketch (e.g. "dms" → hot directory paths,
// "fms-1" → hot file keys). ?n=K bounds entries per source (default 10).
// Nil sketches are skipped.
func HotHandler(sources map[string]*TopK) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !telemetry.RequireGET(w, r) {
			return
		}
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				telemetry.WriteJSONError(w, http.StatusBadRequest, "bad n "+strconv.Quote(q))
				return
			}
			n = v
		}
		type jsonSource struct {
			Source string   `json:"source"`
			Total  uint64   `json:"total"`
			Top    []HotKey `json:"top"`
		}
		names := make([]string, 0, len(sources))
		for name, tk := range sources {
			if tk != nil {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		out := make([]jsonSource, 0, len(names))
		for _, name := range names {
			tk := sources[name]
			out = append(out, jsonSource{Source: name, Total: tk.Total(), Top: tk.Top(n)})
		}
		writeJSON(w, out)
	})
}
