// renametree demonstrates the paper's rename design (§3.4): renaming a
// directory relocates only the directory inodes of its subtree — a single
// contiguous prefix move on the DMS's B+-tree store — while files keep
// their placement (indexed by the parent's immutable UUID) and data blocks
// keep theirs (indexed by the file's immutable UUID). It also contrasts
// the tree-store rename with the hash-store fallback that must scan every
// record (Figure 14).
package main

import (
	"fmt"
	"log"
	"time"

	"locofs"
)

func main() {
	for _, hashMode := range []bool{false, true} {
		engine := "B+ tree"
		if hashMode {
			engine = "hash"
		}
		cluster, err := locofs.Start(locofs.Options{FMSCount: 4, DMSOnHashStore: hashMode})
		if err != nil {
			log.Fatal(err)
		}
		fs, err := cluster.NewClient(locofs.ClientConfig{})
		if err != nil {
			log.Fatal(err)
		}

		// Build a project tree: 50 subdirectories, each with 10 files.
		must(fs.Mkdir("/proj", 0o755))
		for d := 0; d < 50; d++ {
			dir := fmt.Sprintf("/proj/mod%02d", d)
			must(fs.Mkdir(dir, 0o755))
			for f := 0; f < 10; f++ {
				must(fs.Create(fmt.Sprintf("%s/src%d.go", dir, f), 0o644))
			}
		}
		// Park some content in one file to prove data survives.
		f, err := fs.Open("/proj/mod00/src0.go", true)
		if err != nil {
			log.Fatal(err)
		}
		f.WriteAt([]byte("package mod00"), 0)
		uuidBefore := f.UUID()
		f.Close()

		t0 := time.Now()
		moved, err := fs.RenameDir("/proj", "/project-v2")
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)

		// Everything is reachable under the new name; the file's UUID (and
		// therefore its data blocks) did not move.
		g, err := fs.Open("/project-v2/mod00/src0.go", false)
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, 13)
		g.ReadAt(buf, 0)
		uuidAfter := g.UUID()
		g.Close()

		fmt.Printf("[%s DMS] renamed /proj -> /project-v2: %d d-inodes relocated in %v\n",
			engine, moved, wall.Round(time.Microsecond))
		fmt.Printf("  file content after rename: %q (uuid stable: %v)\n",
			buf, uuidBefore == uuidAfter)
		ents, err := fs.Readdir("/project-v2/mod49")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  readdir /project-v2/mod49: %d entries — file dirents never moved\n", len(ents))

		fs.Close()
		cluster.Close()
	}
	fmt.Println("\nOnly the 51 directory inodes moved; 500 file inodes and all data")
	fmt.Println("blocks stayed put, because they are indexed by immutable UUIDs.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
