package client

import (
	"sync"
	"time"

	"locofs/internal/netsim"
	"locofs/internal/rpc"
	"locofs/internal/wire"
)

// endpoint is one server connection with transparent re-dial: a call that
// fails at the transport layer redials the address once and retries, so a
// server restarted on durable state (locofsd -data) resumes serving
// existing clients. Application-level statuses are never retried.
//
// Trip and virtual-time counters aggregate across connection generations,
// so measurement hooks see one continuous stream.
type endpoint struct {
	dialer netsim.Dialer
	addr   string
	link   netsim.LinkConfig

	mu        sync.Mutex
	cl        *rpc.Client
	baseTrips uint64
	baseVirt  time.Duration
	closed    bool
}

// dialEndpoint connects the first generation.
func dialEndpoint(d netsim.Dialer, addr string, link netsim.LinkConfig) (*endpoint, error) {
	e := &endpoint{dialer: d, addr: addr, link: link}
	cl, err := rpc.Dial(d, addr)
	if err != nil {
		return nil, err
	}
	cl.SetLink(link)
	e.cl = cl
	return e, nil
}

// current returns the live connection, redialing if the previous one died.
func (e *endpoint) current() (*rpc.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, rpc.ErrClientClosed
	}
	if e.cl != nil {
		return e.cl, nil
	}
	cl, err := rpc.Dial(e.dialer, e.addr)
	if err != nil {
		return nil, err
	}
	cl.SetLink(e.link)
	e.cl = cl
	return cl, nil
}

// retire discards cl if it is still the active generation, folding its
// counters into the endpoint's running totals.
func (e *endpoint) retire(cl *rpc.Client) {
	e.mu.Lock()
	if e.cl == cl {
		e.baseTrips += cl.Trips()
		e.baseVirt += cl.VirtualTime()
		e.cl = nil
		cl.Close()
	}
	e.mu.Unlock()
}

// Call issues one request, retrying exactly once through a fresh connection
// on transport failure.
func (e *endpoint) Call(op wire.Op, body []byte) (wire.Status, []byte, error) {
	cl, err := e.current()
	if err != nil {
		return wire.StatusIO, nil, err
	}
	st, resp, callErr := cl.Call(op, body)
	if callErr == nil {
		return st, resp, nil
	}
	e.retire(cl)
	cl, err = e.current()
	if err != nil {
		return wire.StatusIO, nil, callErr
	}
	return cl.Call(op, body)
}

// Trips returns cumulative round trips across all generations.
func (e *endpoint) Trips() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.baseTrips
	if e.cl != nil {
		n += e.cl.Trips()
	}
	return n
}

// VirtualTime returns cumulative modeled time across all generations.
func (e *endpoint) VirtualTime() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.baseVirt
	if e.cl != nil {
		d += e.cl.VirtualTime()
	}
	return d
}

// Close tears the endpoint down permanently.
func (e *endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	if e.cl != nil {
		e.cl.Close()
		e.cl = nil
	}
	return nil
}
