package flight

import (
	"encoding/json"
	"net/http"
	"strconv"

	"locofs/internal/telemetry"
)

// Event-paging defaults for /debug/events.
const (
	defaultPageEvents = 256
	maxPageEvents     = 4096
)

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// EventsHandler serves GET /debug/events over the journal:
//
//	?since=N  return events with seq > N (0 = from the oldest retained)
//	?max=N    page size (default 256, capped at 4096)
//
// The body carries the paging state a tailing consumer needs:
//
//	{"cur": <newest seq>, "next": <cursor for the next call>,
//	 "reset": <true when events between since and the oldest retained
//	           were overwritten>, "events": [...]}
func EventsHandler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !telemetry.RequireGET(w, r) {
			return
		}
		var since uint64
		if q := r.URL.Query().Get("since"); q != "" {
			v, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				telemetry.WriteJSONError(w, http.StatusBadRequest, "bad since "+strconv.Quote(q))
				return
			}
			since = v
		}
		max := defaultPageEvents
		if q := r.URL.Query().Get("max"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				telemetry.WriteJSONError(w, http.StatusBadRequest, "bad max "+strconv.Quote(q))
				return
			}
			max = v
		}
		if max > maxPageEvents {
			max = maxPageEvents
		}
		events, next, reset := j.Since(since, max)
		if events == nil {
			events = []Event{}
		}
		writeJSON(w, struct {
			Cur    uint64  `json:"cur"`
			Next   uint64  `json:"next"`
			Reset  bool    `json:"reset"`
			Events []Event `json:"events"`
		}{j.Seq(), next, reset, events})
	})
}

// BundleHandler serves GET /debug/bundle over the recorder:
//
//	GET /debug/bundle         capture a fresh bundle now (reason "manual")
//	GET /debug/bundle?last=1  return the most recent captured bundle
//	                          (404 when none has been captured yet)
func BundleHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if !telemetry.RequireGET(w, req) {
			return
		}
		if q := req.URL.Query().Get("last"); q != "" {
			v, err := strconv.ParseBool(q)
			if err != nil {
				telemetry.WriteJSONError(w, http.StatusBadRequest, "bad last "+strconv.Quote(q))
				return
			}
			if v {
				b := r.LastBundle()
				if b == nil {
					telemetry.WriteJSONError(w, http.StatusNotFound, "no bundle captured yet")
					return
				}
				writeJSON(w, b)
				return
			}
		}
		writeJSON(w, r.Capture("manual"))
	})
}

// Routes returns the recorder's admin endpoints, ready for
// telemetry.HandlerWith.
func (r *Recorder) Routes() map[string]http.Handler {
	return map[string]http.Handler{
		"/debug/events": EventsHandler(r.Journal()),
		"/debug/bundle": BundleHandler(r),
	}
}
