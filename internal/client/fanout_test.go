package client

import (
	"errors"
	"fmt"
	"sync"

	"locofs/internal/netsim"
	"testing"
	"time"

	"locofs/internal/wire"
)

// TestFanOutRunsAllBranches: every branch runs exactly once and the group's
// virtual savings (sum - max) land in parSavedNS.
func TestFanOutRunsAllBranches(t *testing.T) {
	_, cfg := testCluster(t, 1)
	c := dialTest(t, cfg)
	var mu sync.Mutex
	ran := make(map[int]int)
	err := c.fanOut(opCtx{}, "test", 40, func(_ opCtx, i int) (time.Duration, error) {
		mu.Lock()
		ran[i]++
		mu.Unlock()
		return time.Millisecond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if ran[i] != 1 {
			t.Errorf("branch %d ran %d times", i, ran[i])
		}
	}
	// 40 branches x 1ms, slowest 1ms: 39ms saved.
	if saved := time.Duration(c.parSavedNS.Load()); saved != 39*time.Millisecond {
		t.Errorf("parSaved = %v, want 39ms", saved)
	}
}

// TestFanOutFirstErrorCancels: a failing branch stops unstarted branches and
// its error is returned.
func TestFanOutFirstErrorCancels(t *testing.T) {
	_, cfg := testCluster(t, 1)
	cfg.SerialFanOut = false
	c := dialTest(t, cfg)
	boom := errors.New("boom")
	var started sync.Map
	err := c.fanOut(opCtx{}, "test", 1000, func(_ opCtx, i int) (time.Duration, error) {
		started.Store(i, true)
		if i < fanOutLimit {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	n := 0
	started.Range(func(_, _ any) bool { n++; return true })
	if n == 1000 {
		t.Error("error did not cancel any unstarted branches")
	}
}

// TestFanOutSerialMode: SerialFanOut visits branches in order, stops at the
// first error, and records no parallel savings.
func TestFanOutSerialMode(t *testing.T) {
	_, cfg := testCluster(t, 1)
	cfg.SerialFanOut = true
	c := dialTest(t, cfg)
	var order []int
	boom := errors.New("boom")
	err := c.fanOut(opCtx{}, "test", 8, func(_ opCtx, i int) (time.Duration, error) {
		order = append(order, i)
		if i == 3 {
			return time.Millisecond, boom
		}
		return time.Millisecond, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
	if saved := c.parSavedNS.Load(); saved != 0 {
		t.Errorf("serial mode recorded %v parallel savings", time.Duration(saved))
	}
}

// fillDir creates dirs/files for the listing tests: width files spread
// across the FMSes plus a few subdirectories.
func fillDir(t *testing.T, c *Client, dir string, files, subdirs int) {
	t.Helper()
	if err := c.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < subdirs; i++ {
		if err := c.Mkdir(fmt.Sprintf("%s/sub-%03d", dir, i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < files; i++ {
		if err := c.Create(fmt.Sprintf("%s/file-%05d", dir, i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReaddirParityAcrossModes: parallel+batched, parallel-only, and serial
// clients must all return the identical sorted listing, including one wider
// than several pages.
func TestReaddirParityAcrossModes(t *testing.T) {
	_, cfg := testCluster(t, 4)
	seed := dialTest(t, cfg)
	width := 3*ReaddirPageSize + 57
	fillDir(t, seed, "/wide", width, 5)

	modes := map[string]Config{
		"parallel+batch": cfg,
		"parallel-only":  func() Config { c := cfg; c.DisableBatchRPC = true; return c }(),
		"serial":         func() Config { c := cfg; c.SerialFanOut = true; c.DisableBatchRPC = true; return c }(),
	}
	var reference []DirEntry
	for name, mcfg := range modes {
		c := dialTest(t, mcfg)
		ents, err := c.Readdir("/wide")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ents) != width+5 {
			t.Fatalf("%s: %d entries, want %d", name, len(ents), width+5)
		}
		for i := 1; i < len(ents); i++ {
			if ents[i-1].Name >= ents[i].Name {
				t.Fatalf("%s: entries not sorted at %d: %q >= %q",
					name, i, ents[i-1].Name, ents[i].Name)
			}
		}
		if reference == nil {
			reference = ents
			continue
		}
		for i := range ents {
			if ents[i] != reference[i] {
				t.Fatalf("%s: entry %d = %+v, differs from reference %+v",
					name, i, ents[i], reference[i])
			}
		}
	}
}

// TestReaddirBatchedPagingSavesTrips: with batching on, a multi-page listing
// must cost fewer round trips than one per page.
func TestReaddirBatchedPagingSavesTrips(t *testing.T) {
	_, cfg := testCluster(t, 1)
	seed := dialTest(t, cfg)
	pages := 6
	fillDir(t, seed, "/paged", pages*ReaddirPageSize, 0)

	serialCfg := cfg
	serialCfg.DisableBatchRPC = true
	serialCfg.SerialFanOut = true
	serial := dialTest(t, serialCfg)
	t0 := serial.Trips()
	if _, err := serial.Readdir("/paged"); err != nil {
		t.Fatal(err)
	}
	serialTrips := serial.Trips() - t0

	batched := dialTest(t, cfg)
	t0 = batched.Trips()
	if _, err := batched.Readdir("/paged"); err != nil {
		t.Fatal(err)
	}
	batchedTrips := batched.Trips() - t0

	if batchedTrips >= serialTrips {
		t.Errorf("batched readdir cost %d trips, serial cost %d — batching saved nothing",
			batchedTrips, serialTrips)
	}
}

// TestRmdirParallelProbes: rmdir succeeds on an empty dir and refuses a
// non-empty one with ENOTEMPTY under parallel probing.
func TestRmdirParallelProbes(t *testing.T) {
	_, cfg := testCluster(t, 4)
	c := dialTest(t, cfg)
	fillDir(t, c, "/busy", 12, 0)
	if err := c.Rmdir("/busy"); wire.StatusOf(err) != wire.StatusNotEmpty {
		t.Errorf("rmdir non-empty = %v, want ENOTEMPTY", err)
	}
	if err := c.Mkdir("/hollow", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/hollow"); err != nil {
		t.Errorf("rmdir empty = %v", err)
	}
}

// TestParallelCostBelowSerial: the virtual-time model must show the fan-out
// win — the same rmdir probe sweep and readdir cost less on a parallel
// client than a serial one (acceptance criterion's mechanism).
func TestParallelCostBelowSerial(t *testing.T) {
	_, cfg := testCluster(t, 8)
	// A non-trivial modeled link so per-call virtual time is nonzero.
	cfg.Link = netsim.Paper1GbE

	seed := dialTest(t, cfg)
	fillDir(t, seed, "/d", 64, 3)

	serialCfg := cfg
	serialCfg.SerialFanOut = true
	serialCfg.DisableBatchRPC = true
	serial := dialTest(t, serialCfg)
	par := dialTest(t, cfg)

	measure := func(c *Client, op func() error) time.Duration {
		before := c.Cost()
		if err := op(); err != nil {
			t.Fatal(err)
		}
		return c.Cost() - before
	}
	serialReaddir := measure(serial, func() error { _, err := serial.Readdir("/d"); return err })
	parReaddir := measure(par, func() error { _, err := par.Readdir("/d"); return err })
	if parReaddir >= serialReaddir {
		t.Errorf("parallel readdir virt %v >= serial %v", parReaddir, serialReaddir)
	}

	serialRmdir := measure(serial, func() error {
		if err := serial.Mkdir("/gone-s", 0o755); err != nil {
			return err
		}
		return serial.Rmdir("/gone-s")
	})
	parRmdir := measure(par, func() error {
		if err := par.Mkdir("/gone-p", 0o755); err != nil {
			return err
		}
		return par.Rmdir("/gone-p")
	})
	if parRmdir >= serialRmdir {
		t.Errorf("parallel rmdir virt %v >= serial %v", parRmdir, serialRmdir)
	}
}

// TestConcurrentFanOutRace drives concurrent Readdir/Rmdir against Create
// and Remove mutators — the go test -race workload for the fan-out paths.
func TestConcurrentFanOutRace(t *testing.T) {
	_, cfg := testCluster(t, 4)
	seed := dialTest(t, cfg)
	fillDir(t, seed, "/race", 40, 2)

	c := dialTest(t, cfg)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch w % 4 {
				case 0:
					c.Readdir("/race")
				case 1:
					c.Rmdir("/race") // always ENOTEMPTY; exercises probes
				case 2:
					p := fmt.Sprintf("/race/tmp-%d-%d", w, i)
					c.Create(p, 0o644)
					c.Remove(p)
				case 3:
					c.StatDir("/race")
				}
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
