package dms

// Sharded-DMS support (DESIGN.md §16). The partition node
// (internal/dms/partition) drives replication and two-partition renames;
// this file holds the storage-level primitives it needs from the DMS
// proper: a pinnable clock for deterministic log replay, seed-inode
// installation, subtree export/install/delete for splits, and the
// source/destination halves of a cross-partition rename.
//
// Seeds: a partition cut at directory d owns every proper descendant of d,
// but operations there still walk the full ancestor chain ("/", ..., d).
// Those ancestor inodes are *seeded* into the cut partition's store as
// ordinary "P:" records — read-only copies kept in sync by OpSeedUpdate
// pushes from their owning partition — so checkAncestors works unmodified.

import (
	"locofs/internal/acl"
	"locofs/internal/fspath"
	"locofs/internal/layout"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// PinClock pins the server's clock to ts: every timestamp taken until
// UnpinClock returns ts. The sharded DMS pins the leader-assigned log-entry
// timestamp around each Dispatch of a replicated mutation, so leader and
// followers stamp byte-identical ctimes (apply is serialized by the
// partition node; concurrent reads observing the pinned value only shift
// lease horizons by the clock skew, which is harmless).
func (s *Server) PinClock(ts int64) {
	s.pin.Store(ts)
	s.pinOn.Store(true)
}

// UnpinClock releases a PinClock.
func (s *Server) UnpinClock() { s.pinOn.Store(false) }

// CurrentInode returns the stored inode bytes for cleaned path (a copy),
// or false when absent. The partition node reads it after a mutation to
// push fresh seed state to partitions below the path.
func (s *Server) CurrentInode(cleaned string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ino, ok := s.getInode(cleaned)
	return ino, ok
}

// InstallSeed installs absolute seed state for cleaned path: the inode
// bytes when present, removal when not. It publishes the same lease
// recalls the original mutation would have, because clients may hold
// grants on the seeded path from *this* partition (lookup chains include
// seeded ancestors).
func (s *Server) InstallSeed(path string, present bool, inode []byte) wire.Status {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval
	}
	if present && len(inode) != layout.DirInodeSize {
		return wire.StatusInval
	}
	parentPath, _ := fspath.Split(cleaned)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, existed := s.getInode(cleaned)
	switch {
	case present && existed:
		s.store.Put(pathKey(cleaned), inode)
		s.leases.bumpPatched(cleaned)
	case present:
		s.store.Put(pathKey(cleaned), inode)
		s.leases.bumpCreated(cleaned, parentPath)
	case existed:
		s.store.Delete(pathKey(cleaned))
		s.leases.bumpRemoved(cleaned, parentPath)
	}
	return wire.StatusOK
}

// subtreeVisit calls fn for every stored record whose key starts with
// prefix, using the ordered engine's range scan when available. Caller
// holds s.mu.
func (s *Server) subtreeVisit(prefix []byte, fn func(k, v []byte)) {
	if s.ordered != nil {
		end := append(append([]byte(nil), prefix[:len(prefix)-1]...), prefix[len(prefix)-1]+1)
		s.ordered.AscendRange(prefix, end, func(k, v []byte) bool {
			fn(k, v)
			return true
		})
		return
	}
	s.store.ForEach(func(k, v []byte) bool {
		if len(k) >= len(prefix) && string(k[:len(prefix)]) == string(prefix) {
			fn(k, v)
		}
		return true
	})
}

// ValidateRenameSource checks the source half of a cross-partition rename
// under the read lock: the moved directory exists, its ancestors are
// traversable, and the caller may write the old parent.
func (s *Server) ValidateRenameSource(oldC string, uid, gid uint32) wire.Status {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain, st := s.checkAncestors(oldC, uid, gid)
	if st != wire.StatusOK {
		return st
	}
	if _, ok := s.getInode(oldC); !ok {
		return wire.StatusNotFound
	}
	parent := chain[len(chain)-1].Inode
	if s.checkPerm && !acl.CanWrite(parent.Mode(), parent.UID(), parent.GID(), uid, gid) {
		return wire.StatusPerm
	}
	return wire.StatusOK
}

// ValidateRenameDest checks the destination half of a cross-partition
// rename under the read lock: the target's ancestors exist and are
// traversable, the caller may write the new parent, and the target itself
// is absent.
func (s *Server) ValidateRenameDest(newC string, uid, gid uint32) wire.Status {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain, st := s.checkAncestors(newC, uid, gid)
	if st != wire.StatusOK {
		return st
	}
	parent := chain[len(chain)-1].Inode
	if s.checkPerm && !acl.CanWrite(parent.Mode(), parent.UID(), parent.GID(), uid, gid) {
		return wire.StatusPerm
	}
	if _, exists := s.getInode(newC); exists {
		return wire.StatusExist
	}
	return wire.StatusOK
}

// ExportRename exports the records a cross-partition rename moves: the
// directory's own inode re-keyed from oldC to newC, every subtree inode
// re-keyed likewise, and the (UUID-keyed, key-stable) subdir lists of
// every exported directory. Returned values are copies; the source store
// is untouched until ApplyRenameSrcCommit.
func (s *Server) ExportRename(oldC, newC string) ([]wire.KVRec, wire.Status) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ino, ok := s.getInode(oldC)
	if !ok {
		return nil, wire.StatusNotFound
	}
	recs := []wire.KVRec{{Key: pathKey(newC), Val: ino.Clone()}}
	uuids := []uuid.UUID{ino.UUID()}
	oldPrefix := pathKey(oldC + "/")
	newPrefix := pathKey(newC + "/")
	s.subtreeVisit(oldPrefix, func(k, v []byte) {
		nk := append(append([]byte(nil), newPrefix...), k[len(oldPrefix):]...)
		recs = append(recs, wire.KVRec{Key: nk, Val: append([]byte(nil), v...)})
		if len(v) == layout.DirInodeSize {
			uuids = append(uuids, layout.DirInode(v).UUID())
		}
	})
	for _, u := range uuids {
		if list, ok := s.store.Get(subdirsKey(u)); ok {
			recs = append(recs, wire.KVRec{Key: subdirsKey(u), Val: list})
		}
	}
	return recs, wire.StatusOK
}

// ApplyRenameSrcCommit applies the source side of a committed cross-
// partition rename: it deletes the moved directory, its subtree, and
// their subdir lists, removes the old parent's dirent, and publishes the
// removal recall. Deterministic — replicas apply it from the op log.
// It returns the client-facing OpRenameDir response body (move count plus
// recall trailer, same layout Dispatch produces for a local rename).
func (s *Server) ApplyRenameSrcCommit(oldC string) ([]byte, wire.Status) {
	parentPath, _ := fspath.Split(oldC)
	s.mu.Lock()
	defer s.mu.Unlock()
	ino, ok := s.getInode(oldC)
	if !ok {
		// Replay of the idempotent commit: already applied.
		return appendPub(wire.NewEnc().U64(0), pubResult{}).Bytes(), wire.StatusOK
	}
	parent, pok := s.getInode(parentPath)
	var keys [][]byte
	uuids := []uuid.UUID{ino.UUID()}
	oldPrefix := pathKey(oldC + "/")
	s.subtreeVisit(oldPrefix, func(k, v []byte) {
		keys = append(keys, append([]byte(nil), k...))
		if len(v) == layout.DirInodeSize {
			uuids = append(uuids, layout.DirInode(v).UUID())
		}
	})
	moved := 1 + len(keys)
	s.store.Delete(pathKey(oldC))
	for _, k := range keys {
		s.store.Delete(k)
	}
	for _, u := range uuids {
		s.store.Delete(subdirsKey(u))
	}
	if pok {
		s.removeParentDirent(parent.UUID(), oldC)
	}
	pr := s.leases.bumpRemoved(oldC, parentPath)
	return appendPub(wire.NewEnc().U64(uint64(moved)), pr).Bytes(), wire.StatusOK
}

// ApplyRenameDestCommit applies the destination side of a committed
// cross-partition rename: it installs the exported records, appends the
// new parent's dirent, and publishes the creation recall. Idempotent per
// newC (a resent commit after coordinator recovery re-puts identical
// bytes; the dirent append is guarded by a presence check).
func (s *Server) ApplyRenameDestCommit(newC string, recs []wire.KVRec) wire.Status {
	parentPath, name := fspath.Split(newC)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, existed := s.getInode(newC)
	for _, r := range recs {
		s.store.Put(r.Key, r.Val)
	}
	ino, ok := s.getInode(newC)
	if !ok {
		return wire.StatusInval
	}
	if !existed {
		if parent, pok := s.getInode(parentPath); pok {
			ent := layout.AppendDirent(nil, layout.Dirent{Name: name, UUID: ino.UUID()})
			s.store.AppendValue(subdirsKey(parent.UUID()), ent)
		}
	}
	s.leases.bumpCreated(newC, parentPath)
	return wire.StatusOK
}

// SeedRec is one seeded ancestor record of a subtree export: absolute
// present/absent state of an ancestor path's inode.
type SeedRec struct {
	Path    string
	Present bool
	Inode   []byte
}

// ExportSubtree exports everything a new partition cut at cutDir needs:
// the proper-descendant records (inodes re-keyed nowhere — the range keeps
// its keys — plus their subdir lists and cutDir's own subdir list), and
// the seed chain ("/", ..., cutDir) with each ancestor's current state.
func (s *Server) ExportSubtree(cutDir string) (recs []wire.KVRec, seeds []SeedRec, st wire.Status) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var uuids []uuid.UUID
	if ino, ok := s.getInode(cutDir); ok {
		uuids = append(uuids, ino.UUID())
	}
	prefix := pathKey(cutDir + "/")
	s.subtreeVisit(prefix, func(k, v []byte) {
		recs = append(recs, wire.KVRec{Key: append([]byte(nil), k...), Val: append([]byte(nil), v...)})
		if len(v) == layout.DirInodeSize {
			uuids = append(uuids, layout.DirInode(v).UUID())
		}
	})
	for _, u := range uuids {
		if list, ok := s.store.Get(subdirsKey(u)); ok {
			recs = append(recs, wire.KVRec{Key: subdirsKey(u), Val: list})
		}
	}
	for _, a := range append(fspath.Ancestors(cutDir), cutDir) {
		ino, ok := s.getInode(a)
		sr := SeedRec{Path: a, Present: ok}
		if ok {
			sr.Inode = ino.Clone()
		}
		seeds = append(seeds, sr)
	}
	return recs, seeds, wire.StatusOK
}

// InstallRecords puts raw records into the store (split bootstrap of a
// fresh partition; no lease traffic — nobody holds grants from it yet).
func (s *Server) InstallRecords(recs []wire.KVRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		s.store.Put(r.Key, r.Val)
	}
}

// DeleteSubtree removes the proper descendants of cutDir (and their subdir
// lists, and cutDir's own list) after a split handed them to a new
// partition. cutDir's inode stays — the parent partition still owns it.
// A removal recall for cutDir is published so clients re-resolve the
// handed-off subtree instead of serving entries this partition no longer
// backs.
func (s *Server) DeleteSubtree(cutDir string) int {
	parentPath, _ := fspath.Split(cutDir)
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys [][]byte
	var uuids []uuid.UUID
	if ino, ok := s.getInode(cutDir); ok {
		uuids = append(uuids, ino.UUID())
	}
	prefix := pathKey(cutDir + "/")
	s.subtreeVisit(prefix, func(k, v []byte) {
		keys = append(keys, append([]byte(nil), k...))
		if len(v) == layout.DirInodeSize {
			uuids = append(uuids, layout.DirInode(v).UUID())
		}
	})
	for _, k := range keys {
		s.store.Delete(k)
	}
	for _, u := range uuids {
		s.store.Delete(subdirsKey(u))
	}
	s.leases.bumpRemoved(cutDir, parentPath)
	return len(keys)
}

// RequestPaths extracts the cleaned path(s) a client-facing DMS request
// operates on — the partition node's routing key. p2 is non-empty only for
// OpRenameDir. hasPath is false for path-free ops (OpLeaseRecall), which
// any replica answers locally.
func RequestPaths(op wire.Op, body []byte) (p1, p2 string, hasPath bool, err error) {
	switch op {
	case wire.OpLeaseRecall:
		return "", "", false, nil
	case wire.OpRenameDir:
		d := wire.NewDec(body)
		rawOld, rawNew := d.Str(), d.Str()
		if e := d.Err(); e != nil {
			return "", "", false, e
		}
		oldC, e1 := fspath.Clean(rawOld)
		newC, e2 := fspath.Clean(rawNew)
		if e1 != nil {
			return "", "", false, e1
		}
		if e2 != nil {
			return "", "", false, e2
		}
		return oldC, newC, true, nil
	default:
		d := wire.NewDec(body)
		raw := d.Str()
		if e := d.Err(); e != nil {
			return "", "", false, e
		}
		cleaned, e := fspath.Clean(raw)
		if e != nil {
			return "", "", false, e
		}
		return cleaned, "", true, nil
	}
}
