package bench

import (
	"fmt"

	"locofs/internal/core"
	"locofs/internal/rpc"
	"locofs/internal/telemetry"
)

// OpBreakdown renders a telemetry snapshot's per-op latency histograms
// (those of the named metric) as a result table: one row per operation with
// count, mean, and tail quantiles. It is the bridge between the telemetry
// layer and the bench/report formats.
func OpBreakdown(snap telemetry.Snapshot, metric, title, note string) *Table {
	t := &Table{
		Title:   title,
		Note:    note,
		Headers: []string{"op", "count", "mean", "p50", "p90", "p99", "max"},
	}
	for _, r := range snap.OpTable(metric) {
		t.AddRow(r.Op, fmt.Sprintf("%d", r.Count),
			fmtUS(r.Mean), fmtUS(r.P50), fmtUS(r.P90), fmtUS(r.P99), fmtUS(r.Max))
	}
	return t
}

// OpStats runs a mixed metadata workload against LocoFS and reports the
// client-observed per-op round-trip latency breakdown from the telemetry
// histograms. Unlike the paper figures (virtual-time modeled latency), this
// reports measured wall-clock round trips over the in-process fabric — the
// view an operator would get from a real deployment's /metrics endpoint.
func OpStats(env Env) (*Table, error) {
	cluster, err := core.Start(core.Options{FMSCount: 4})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	// Cache disabled so directory lookups hit the DMS and LookupDir shows
	// up in the breakdown alongside the FMS ops.
	reg := telemetry.NewRegistry()
	cl, err := cluster.NewClient(core.ClientConfig{Metrics: reg, DisableCache: true})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	n := env.LatItems
	if err := cl.Mkdir("/ops", 0o755); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		d := fmt.Sprintf("/ops/d%d", i)
		f := fmt.Sprintf("/ops/f%d", i)
		steps := []func() error{
			func() error { return cl.Mkdir(d, 0o755) },
			func() error { _, err := cl.StatDir(d); return err },
			func() error { return cl.Create(f, 0o644) },
			func() error { _, err := cl.StatFile(f); return err },
			func() error { return cl.Access(f, false) },
			func() error { return cl.Chmod(f, 0o600) },
			func() error { return cl.RenameFile(f, f+"r") },
			func() error { _, err := cl.RenameDir(d, d+"r"); return err },
			func() error { _, err := cl.Readdir("/ops"); return err },
			func() error { return cl.Remove(f + "r") },
			func() error { return cl.Rmdir(d + "r") },
		}
		for _, step := range steps {
			if err := step(); err != nil {
				return nil, fmt.Errorf("bench: opstats workload: %w", err)
			}
		}
	}
	return OpBreakdown(reg.Snapshot(), rpc.MetricRTT,
		"Per-op client round-trip latency (LocoFS, measured)",
		fmt.Sprintf("%d iterations of a mixed metadata workload, wall-clock RTTs from the client telemetry histograms.", n)), nil
}
