package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Windowed-histogram defaults: six 10-second windows give a one-minute
// time-local view, the horizon SLO burn rates are usually judged over.
const (
	DefaultWindowWidth = 10 * time.Second
	DefaultWindowNum   = 6
)

// WindowConfig sizes a rotating-window histogram: Num sub-windows of Width
// each, so a merged snapshot spans the most recent Num×Width of wall time.
// The zero value means DefaultWindowWidth × DefaultWindowNum.
type WindowConfig struct {
	Width time.Duration
	Num   int
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.Width <= 0 {
		c.Width = DefaultWindowWidth
	}
	if c.Num <= 1 {
		c.Num = DefaultWindowNum
	}
	return c
}

// Windowed adds a rotating time window to a cumulative Histogram, so the
// same stream of observations yields both lifetime aggregates (the wrapped
// histogram, unchanged) and time-local quantiles/rates that age out.
//
// Implementation: rather than resetting sub-histograms under concurrent
// recording (which loses observations), rotation checkpoints the cumulative
// histogram's snapshot on a coarse tick; a closed window is the bucket-wise
// difference of two consecutive checkpoints, which conserves counts exactly
// no matter how Record races with rotation. The only windowed state written
// on the hot path is a per-window max (the cumulative max is monotone since
// boot — stamping a per-window max lets slow-outlier spikes age out instead
// of pinning the reported max forever); an observation racing rotation may
// attribute its max to the neighboring window, never lose it.
//
// Rotation is lazy — driven by whoever calls Record or Snapshot past the
// window boundary — so idle processes pay nothing and no background
// goroutine is needed.
type Windowed struct {
	h       *Histogram
	width   time.Duration
	num     int
	nowFn   atomic.Pointer[func() time.Time] // injectable clock (tests)
	liveMax atomic.Uint64                    // max observed in the live window
	nextNS  atomic.Int64                     // next rotation deadline (unix ns)

	mu     sync.Mutex // guards base/baseAt/closed (rotation + snapshot: cold)
	base   HistSnapshot
	baseAt time.Time
	closed []WindowSnapshot // oldest first; len <= num-1

	// onRotate, when set, observes window closures (n = windows closed by
	// one rotation). Invoked outside mu so observers may snapshot freely;
	// never invoked on the Record fast path unless a boundary was crossed.
	onRotate atomic.Pointer[func(n int)]
}

// NewWindowed wraps h with a rotating window per cfg. The wrapped histogram
// keeps accumulating lifetime totals; Record on the Windowed feeds both.
func NewWindowed(h *Histogram, cfg WindowConfig) *Windowed {
	cfg = cfg.withDefaults()
	w := &Windowed{h: h, width: cfg.Width, num: cfg.Num}
	now := time.Now
	w.nowFn.Store(&now)
	w.mu.Lock()
	w.resetTo(time.Now())
	w.mu.Unlock()
	return w
}

// SetNow injects the clock used for rotation (tests). Must be safe for
// concurrent use by recorders.
func (w *Windowed) SetNow(now func() time.Time) {
	w.mu.Lock()
	w.nowFn.Store(&now)
	w.resetTo(now())
	w.mu.Unlock()
}

func (w *Windowed) now() time.Time { return (*w.nowFn.Load())() }

// SetOnRotate installs fn as the rotation observer (nil clears it). The
// hook runs outside the window lock, at most once per boundary crossing,
// from whichever goroutine drove the rotation — it must be cheap and
// non-blocking (the flight recorder's coalesced SLO-rollover events).
func (w *Windowed) SetOnRotate(fn func(n int)) {
	if fn == nil {
		w.onRotate.Store(nil)
		return
	}
	w.onRotate.Store(&fn)
}

// notifyRotate fires the rotation observer (caller must NOT hold mu).
func (w *Windowed) notifyRotate(n int) {
	if n <= 0 {
		return
	}
	if fn := w.onRotate.Load(); fn != nil {
		(*fn)(n)
	}
}

// resetTo restarts the window sequence at t (caller holds mu).
func (w *Windowed) resetTo(t time.Time) {
	w.base = w.h.Snapshot()
	w.baseAt = t
	w.closed = nil
	w.liveMax.Store(0)
	w.nextNS.Store(t.Add(w.width).UnixNano())
}

// Record adds one observation to the wrapped histogram and the live window.
// Rotation happens first so an observation arriving after a window boundary
// lands in the window it belongs to, not the one being closed.
func (w *Windowed) Record(d time.Duration) {
	w.maybeRotate()
	w.h.Record(d)
	if d < 0 {
		d = 0
	}
	for {
		cur := w.liveMax.Load()
		if uint64(d) <= cur || w.liveMax.CompareAndSwap(cur, uint64(d)) {
			break
		}
	}
}

// Hist returns the wrapped cumulative histogram.
func (w *Windowed) Hist() *Histogram { return w.h }

// maybeRotate closes every window boundary the clock has passed. The fast
// path is one atomic load and a compare.
func (w *Windowed) maybeRotate() {
	nowT := w.now()
	if nowT.UnixNano() < w.nextNS.Load() {
		return
	}
	w.mu.Lock()
	n := w.rotateLocked(nowT)
	w.mu.Unlock()
	w.notifyRotate(n)
}

// rotateLocked closes every window boundary the clock has passed, returning
// how many windows were closed (an idle-gap reset counts as one).
func (w *Windowed) rotateLocked(nowT time.Time) int {
	nowNS := nowT.UnixNano()
	if nowNS < w.nextNS.Load() {
		return 0 // another rotator won the race
	}
	// After an idle gap longer than the whole window span, every retained
	// window would be empty anyway: restart aligned at now instead of
	// closing them one by one.
	if nowT.Sub(w.baseAt) >= w.width*time.Duration(w.num+1) {
		w.resetTo(nowT)
		return 1
	}
	rotated := 0
	for end := w.baseAt.Add(w.width); end.UnixNano() <= nowNS; end = w.baseAt.Add(w.width) {
		cur := w.h.Snapshot()
		delta := subSnapshot(cur, w.base)
		delta.Max = time.Duration(w.liveMax.Swap(0))
		w.closed = append(w.closed, WindowSnapshot{Start: w.baseAt, Width: w.width, Hist: delta})
		if len(w.closed) > w.num-1 {
			w.closed = append(w.closed[:0], w.closed[1:]...)
		}
		w.base = cur
		w.baseAt = end
		rotated++
	}
	w.nextNS.Store(w.baseAt.Add(w.width).UnixNano())
	return rotated
}

// WindowSnapshot is one closed (or, at the tail of a windowed snapshot, the
// still-filling live) sub-window: the observations that landed in
// [Start, Start+Width), with Hist.Max stamped per-window.
type WindowSnapshot struct {
	Start time.Time
	Width time.Duration
	Hist  HistSnapshot
}

// WindowedSnapshot is a point-in-time view of the rotating window.
type WindowedSnapshot struct {
	// Merged is the bucket-wise sum of every retained sub-window — the
	// time-local distribution over the last Covered of wall time. Its Max is
	// the max across retained windows, so a spike ages out with its window.
	Merged HistSnapshot
	// Covered is the wall time Merged spans (closed windows plus the live
	// window's elapsed fraction).
	Covered time.Duration
	// Windows lists the sub-windows oldest first; the final entry is the
	// live, still-filling window.
	Windows []WindowSnapshot
}

// Rate returns the merged observation rate in events per second.
func (s WindowedSnapshot) Rate() float64 {
	if s.Covered <= 0 {
		return 0
	}
	return float64(s.Merged.Count) / s.Covered.Seconds()
}

// Snapshot captures the retained sub-windows and their merge.
func (w *Windowed) Snapshot() WindowedSnapshot {
	nowT := w.now()
	w.mu.Lock()
	rotated := 0
	if nowT.UnixNano() >= w.nextNS.Load() {
		rotated = w.rotateLocked(nowT)
	}
	defer func() {
		w.mu.Unlock()
		w.notifyRotate(rotated)
	}()
	cur := w.h.Snapshot()
	live := subSnapshot(cur, w.base)
	live.Max = time.Duration(w.liveMax.Load())
	var s WindowedSnapshot
	s.Windows = make([]WindowSnapshot, 0, len(w.closed)+1)
	s.Windows = append(s.Windows, w.closed...)
	liveFor := nowT.Sub(w.baseAt)
	if liveFor < 0 {
		liveFor = 0
	}
	s.Windows = append(s.Windows, WindowSnapshot{Start: w.baseAt, Width: liveFor, Hist: live})
	for _, ws := range s.Windows {
		s.Merged = addSnapshot(s.Merged, ws.Hist)
		s.Covered += ws.Width
	}
	return s
}

// subSnapshot returns the bucket-wise difference cur−base of two snapshots
// of one monotone histogram. Max is left zero for the caller to stamp.
func subSnapshot(cur, base HistSnapshot) HistSnapshot {
	var d HistSnapshot
	var n uint64
	for i := range cur.Buckets {
		if cur.Buckets[i] > base.Buckets[i] {
			d.Buckets[i] = cur.Buckets[i] - base.Buckets[i]
		}
		n += d.Buckets[i]
	}
	d.Count = n
	if cur.Sum > base.Sum {
		d.Sum = cur.Sum - base.Sum
	}
	return d
}

// addSnapshot merges two disjoint distributions bucket-wise.
func addSnapshot(a, b HistSnapshot) HistSnapshot {
	var s HistSnapshot
	var n uint64
	for i := range a.Buckets {
		s.Buckets[i] = a.Buckets[i] + b.Buckets[i]
		n += s.Buckets[i]
	}
	s.Count = n
	s.Sum = a.Sum + b.Sum
	s.Max = a.Max
	if b.Max > s.Max {
		s.Max = b.Max
	}
	return s
}
