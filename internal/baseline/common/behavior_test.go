package common_test

import (
	"fmt"
	"testing"

	"locofs/internal/baseline/cephfs"
	"locofs/internal/baseline/common"
	"locofs/internal/baseline/glusterfs"
	"locofs/internal/baseline/indexfs"
	"locofs/internal/baseline/lustrefs"
	"locofs/internal/netsim"
)

// TestSubtreeKey checks the subtree-granularity helper.
func TestSubtreeKey(t *testing.T) {
	cases := []struct {
		p     string
		depth int
		want  string
	}{
		{"/", 2, "/"},
		{"/a", 2, "/a"},
		{"/a/b", 2, "/a/b"},
		{"/a/b/c", 2, "/a/b"},
		{"/a/b/c/d", 2, "/a/b"},
		{"/a/b/c", 1, "/a"},
		{"/a", 0, "/"},
	}
	for _, c := range cases {
		if got := common.SubtreeKey(c.p, c.depth); got != c.want {
			t.Errorf("SubtreeKey(%q, %d) = %q, want %q", c.p, c.depth, got, c.want)
		}
	}
}

// TestGlusterMkdirBroadcast verifies the defining Gluster pathology: mkdir
// issues requests to every brick, so its trip count grows linearly with the
// brick count (the paper's 26x mkdir latency at 16 servers).
func TestGlusterMkdirBroadcast(t *testing.T) {
	trips := map[int]uint64{}
	for _, n := range []int{2, 8} {
		net := netsim.NewNetwork(netsim.Loopback)
		sys, err := glusterfs.Start(net, n, netsim.Loopback)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := sys.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		before := cl.Trips()
		if err := cl.Mkdir("/d", 0o755); err != nil {
			t.Fatal(err)
		}
		trips[n] = cl.Trips() - before
		cl.Close()
		sys.Close()
		net.Close()
	}
	if trips[8] < 3*trips[2] {
		t.Errorf("gluster mkdir trips: 2 bricks = %d, 8 bricks = %d; want ~4x growth", trips[2], trips[8])
	}
}

// TestIndexFSLookupCache verifies the stateless-client lookup cache: the
// first deep create walks the partitions; repeats in the same directory
// skip the walk.
func TestIndexFSLookupCache(t *testing.T) {
	net := netsim.NewNetwork(netsim.Loopback)
	defer net.Close()
	sys, err := indexfs.Start(net, 4, netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	setup, err := sys.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := setup.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()
	// A fresh client has a cold lookup cache.
	cl, err := sys.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	t0 := cl.Trips()
	if err := cl.Create("/a/b/c/f1", 0o644); err != nil {
		t.Fatal(err)
	}
	cold := cl.Trips() - t0
	t0 = cl.Trips()
	if err := cl.Create("/a/b/c/f2", 0o644); err != nil {
		t.Fatal(err)
	}
	warm := cl.Trips() - t0
	if warm != 1 {
		t.Errorf("warm indexfs create = %d trips, want 1 (cached resolution)", warm)
	}
	if cold <= warm {
		t.Errorf("cold create (%d trips) not above warm (%d)", cold, warm)
	}
}

// TestCephStatServedFromCache verifies CephFS's client inode cache: a stat
// of a just-created file takes zero round trips.
func TestCephStatServedFromCache(t *testing.T) {
	net := netsim.NewNetwork(netsim.Loopback)
	defer net.Close()
	sys, err := cephfs.Start(net, 4, netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cl, err := sys.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Mkdir("/d", 0o755)
	cl.Create("/d/f", 0o644)
	t0 := cl.Trips()
	c0 := cl.Cost()
	if err := cl.StatFile("/d/f"); err != nil {
		t.Fatal(err)
	}
	if got := cl.Trips() - t0; got != 0 {
		t.Errorf("cached ceph stat took %d trips, want 0", got)
	}
	if cl.Cost() == c0 {
		t.Error("cache hit charged no client-side cost at all")
	}
}

// TestLustreVariantsPlaceFilesDifferently: DNE1 keeps a directory's files
// on one MDT; DNE2 stripes them across MDTs.
func TestLustreVariantsPlaceFilesDifferently(t *testing.T) {
	countServersWithEntries := func(variant lustrefs.Variant) int {
		net := netsim.NewNetwork(netsim.Loopback)
		defer net.Close()
		sys, err := lustrefs.Start(net, 4, variant, netsim.Loopback)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		cl, err := sys.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		cl.Mkdir("/dir", 0o755)
		for i := 0; i < 40; i++ {
			if err := cl.Create(fmt.Sprintf("/dir/f%d", i), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		used := 0
		for _, srv := range sys.Cluster().Servers {
			n := 0
			srv.Store.ForEach(func(k, v []byte) bool {
				if len(k) > 2 && string(k[:2]) == "E:" {
					n++
				}
				return true
			})
			if n > 0 {
				used++
			}
		}
		return used
	}
	if used := countServersWithEntries(lustrefs.DNE1); used != 1 {
		t.Errorf("DNE1 spread one directory's entries over %d MDTs, want 1", used)
	}
	if used := countServersWithEntries(lustrefs.DNE2); used < 3 {
		t.Errorf("DNE2 used %d MDTs for 40 files, want >= 3 (striped)", used)
	}
}

// TestBaselineProfilesOrdered sanity-checks the calibrated software costs:
// Ceph is the heaviest path, Lustre the lightest of the journal-full
// systems, IndexFS serialized but LSM-fast per op.
func TestBaselineProfilesOrdered(t *testing.T) {
	if cephfs.Profile.WriteService <= glusterfs.Profile.WriteService {
		t.Error("CephFS mutation path should cost more than Gluster's")
	}
	if glusterfs.Profile.WriteService <= lustrefs.Profile.WriteService {
		t.Error("Gluster brick path should cost more than Lustre's MDT path")
	}
	if indexfs.Profile.Workers != 1 {
		t.Error("IndexFS mutations serialize through the LSM writer (workers=1)")
	}
}
