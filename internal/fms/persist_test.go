package fms

import (
	"fmt"
	"testing"

	"locofs/internal/kv"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// TestFMSRestartOnPersistentStore: an FMS restarted over a kv.Persistent
// store recovers file metadata (both parts, and dirent logs) and never
// re-issues a UUID.
func TestFMSRestartOnPersistentStore(t *testing.T) {
	for _, coupled := range []bool{false, true} {
		name := "decoupled"
		if coupled {
			name = "coupled"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := kv.OpenPersistent(dir, kv.NewHashStore())
			if err != nil {
				t.Fatal(err)
			}
			s := New(Options{Store: store, ServerID: 3, Coupled: coupled})
			parent := uuid.New(0, 42)
			seen := map[string]bool{}
			for i := 0; i < 15; i++ {
				u, st := s.Create(parent, fmt.Sprintf("f%d", i), 0o640, 7, 7)
				if st != wire.StatusOK {
					t.Fatal(st)
				}
				seen[u.String()] = true
			}
			if st := s.Chmod(parent, "f0", 0o600, 7); st != wire.StatusOK {
				t.Fatal(st)
			}
			if st := s.UpdateSize(parent, "f1", 12345); st != wire.StatusOK {
				t.Fatal(st)
			}
			if _, st := s.Remove(parent, "f2", 7, 7); st != wire.StatusOK {
				t.Fatal(st)
			}

			// Crash + restart.
			store2, err := kv.OpenPersistent(dir, kv.NewHashStore())
			if err != nil {
				t.Fatal(err)
			}
			defer store2.Close()
			s2 := New(Options{Store: store2, ServerID: 3, Coupled: coupled})

			m, st := s2.Getattr(parent, "f0")
			if st != wire.StatusOK {
				t.Fatalf("f0 lost: %v", st)
			}
			if m.Access.Mode()&0o777 != 0o600 {
				t.Errorf("chmod lost: mode %o", m.Access.Mode())
			}
			m, _ = s2.Getattr(parent, "f1")
			if m == nil || m.Content.Size() != 12345 {
				t.Error("size update lost")
			}
			if _, st := s2.Getattr(parent, "f2"); st != wire.StatusNotFound {
				t.Errorf("removed file resurrected: %v", st)
			}
			if s2.FileCount() != 14 {
				t.Errorf("FileCount = %d, want 14", s2.FileCount())
			}
			if !s2.DirHasFiles(parent) {
				t.Error("dirents lost")
			}
			// UUID generator restored past the recovered maximum.
			u, st := s2.Create(parent, "post", 0o644, 7, 7)
			if st != wire.StatusOK {
				t.Fatal(st)
			}
			if seen[u.String()] {
				t.Errorf("restarted FMS re-issued uuid %v", u)
			}
			if u.SID() != 3 {
				t.Errorf("sid = %d", u.SID())
			}
			store.Close()
		})
	}
}
