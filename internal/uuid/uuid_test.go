package uuid

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewRoundTrip(t *testing.T) {
	u := New(7, 42)
	if u.SID() != 7 {
		t.Errorf("SID = %d, want 7", u.SID())
	}
	if u.FID() != 42 {
		t.Errorf("FID = %d, want 42", u.FID())
	}
	if u.IsNil() {
		t.Error("New(7,42).IsNil() = true")
	}
}

func TestNilAndRoot(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if Root.IsNil() {
		t.Error("Root.IsNil() = true")
	}
	if Root == Nil {
		t.Error("Root == Nil")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	u := New(3, 99)
	got, err := FromBytes(u.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Errorf("FromBytes(Bytes()) = %v, want %v", got, u)
	}
}

func TestFromBytesBadLength(t *testing.T) {
	if _, err := FromBytes(make([]byte, 5)); err != ErrBadUUID {
		t.Errorf("FromBytes(5 bytes) err = %v, want ErrBadUUID", err)
	}
	if _, err := FromBytes(make([]byte, 17)); err != ErrBadUUID {
		t.Errorf("FromBytes(17 bytes) err = %v, want ErrBadUUID", err)
	}
}

func TestMustFromBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFromBytes did not panic on short input")
		}
	}()
	MustFromBytes([]byte{1, 2, 3})
}

func TestStringIsHex(t *testing.T) {
	u := New(0xDEADBEEF, 0x0102030405060708)
	s := u.String()
	if len(s) != 32 {
		t.Fatalf("String() length = %d, want 32", len(s))
	}
	if s[:8] != "deadbeef" {
		t.Errorf("String() prefix = %q, want deadbeef", s[:8])
	}
}

func TestAppendTo(t *testing.T) {
	u := New(1, 2)
	got := u.AppendTo([]byte("k:"))
	if len(got) != 2+Size {
		t.Fatalf("AppendTo length = %d, want %d", len(got), 2+Size)
	}
	if string(got[:2]) != "k:" {
		t.Errorf("prefix clobbered: %q", got[:2])
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(sid uint32, fid uint64) bool {
		u := New(sid, fid)
		v, err := FromBytes(u.Bytes())
		return err == nil && v == u && u.SID() == sid && u.FID() == fid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator(5)
	const n = 1000
	const workers = 8
	var mu sync.Mutex
	seen := make(map[UUID]bool, n*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]UUID, 0, n)
			for i := 0; i < n; i++ {
				local = append(local, g.Next())
			}
			mu.Lock()
			for _, u := range local {
				if seen[u] {
					t.Errorf("duplicate uuid %v", u)
				}
				seen[u] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(seen) != n*workers {
		t.Errorf("got %d unique uuids, want %d", len(seen), n*workers)
	}
	for u := range seen {
		if u.SID() != 5 {
			t.Fatalf("uuid with wrong sid: %v", u)
		}
		if u.IsNil() {
			t.Fatal("generator produced the nil uuid")
		}
	}
}

func TestGeneratorRestore(t *testing.T) {
	g := NewGenerator(1)
	g.Restore(100)
	if u := g.Next(); u.FID() != 101 {
		t.Errorf("after Restore(100), Next().FID() = %d, want 101", u.FID())
	}
	g.Restore(50) // must not go backwards
	if u := g.Next(); u.FID() != 102 {
		t.Errorf("after Restore(50), Next().FID() = %d, want 102", u.FID())
	}
}
