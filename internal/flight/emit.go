package flight

import (
	"sync/atomic"
	"time"

	"locofs/internal/telemetry"
)

// WindowRollEmitter adapts the journal to telemetry.Registry.SetRotateHook:
// it turns window rotations into KindWindowRoll events, coalesced to at
// most one event per minGap (<= 0 = the default window width) — one
// registry rotating a dozen per-op histograms at the same boundary yields
// one SLO-rollover signal, not a dozen.
func WindowRollEmitter(j *Journal, source string, minGap time.Duration) func(name string, n int) {
	if minGap <= 0 {
		minGap = telemetry.DefaultWindowWidth
	}
	var last atomic.Int64
	return func(name string, n int) {
		now := time.Now().UnixNano()
		for {
			prev := last.Load()
			if now-prev < int64(minGap) {
				return
			}
			if last.CompareAndSwap(prev, now) {
				j.Emit(KindWindowRoll, source, name, 0, int64(n), "")
				return
			}
		}
	}
}
