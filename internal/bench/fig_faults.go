package bench

import (
	"fmt"
	"strings"
	"time"

	"locofs/internal/client"
	"locofs/internal/core"
	"locofs/internal/netsim"
	"locofs/internal/telemetry"
	"locofs/internal/wire"
)

// FigFaults exercises the client's fault-tolerance layer against injected
// network faults on one FMS of a three-FMS cluster (beyond the paper: the
// paper's evaluation assumes healthy servers). Each row is one scenario:
//
//   - healthy: baseline — no fault, default policy.
//   - blackhole: fms-1 silently eats every message; the client has a
//     per-attempt deadline and retries disabled, so the fanned-out readdir
//     must fail within the deadline instead of hanging (the acceptance
//     bound for the resilience layer).
//   - flaky+retry: the link to fms-1 drops every 4th message; with retries
//     enabled every operation still succeeds, at the price of the retry
//     attempts and deadline expiries the table reports.
//   - blackhole+breaker: the first call burns one deadline and trips the
//     breaker; subsequent calls fail fast without waiting, so the mean
//     latency of the follow-up calls collapses from the deadline to ~zero.
func FigFaults(env Env) (*Table, error) {
	const (
		opTimeout = 75 * time.Millisecond
		followUps = 5 // calls issued after the breaker has tripped
	)
	cluster, err := core.Start(core.Options{FMSCount: 3, Link: env.Link})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	seed, err := cluster.NewClient(core.ClientConfig{})
	if err != nil {
		return nil, err
	}
	if err := seed.Mkdir("/dir", 0o755); err != nil {
		return nil, err
	}
	const files = 30
	for i := 0; i < files; i++ {
		if err := seed.Create(fmt.Sprintf("/dir/f-%02d", i), 0o644); err != nil {
			return nil, err
		}
	}
	seed.Close()

	t := &Table{
		Title: "Faults: client resilience under injected faults on fms-1 (3 FMS)",
		Note: fmt.Sprintf("per-attempt deadline %v where armed; wall latency per readdir; link RTT = %v",
			opTimeout, env.Link.RTT),
		Headers: []string{"scenario", "outcome", "mean wall", "retries", "deadlines", "fastfails"},
	}

	scenarios := []struct {
		name  string
		fault netsim.FaultConfig
		cfg   core.ClientConfig
		calls int
	}{
		{"healthy", netsim.FaultConfig{}, core.ClientConfig{}, 3},
		{"blackhole", netsim.FaultConfig{Blackhole: true},
			core.ClientConfig{OpTimeout: opTimeout, Retry: client.RetryPolicy{Max: -1}}, 3},
		{"flaky+retry", netsim.FaultConfig{DropEveryN: 4},
			core.ClientConfig{OpTimeout: opTimeout,
				Retry: client.RetryPolicy{Max: 4, Base: time.Millisecond}}, 5},
		{"blackhole+breaker", netsim.FaultConfig{Blackhole: true},
			core.ClientConfig{OpTimeout: opTimeout, Retry: client.RetryPolicy{Max: -1},
				Breaker: client.BreakerConfig{Threshold: 1, Cooldown: time.Minute}}, 1 + followUps},
	}
	for _, sc := range scenarios {
		cluster.Network().SetFault("fms-1", sc.fault)
		reg := telemetry.NewRegistry()
		sc.cfg.Metrics = reg
		sc.cfg.DisableCache = false
		c, err := cluster.NewClient(sc.cfg)
		if err != nil {
			return nil, err
		}
		ok, failed := 0, 0
		var wall time.Duration
		for i := 0; i < sc.calls; i++ {
			t0 := time.Now()
			_, err := c.Readdir("/dir")
			d := time.Since(t0)
			if err != nil {
				failed++
				// The whole point: even failures must come back within the
				// configured bound, never hang.
				if sc.cfg.OpTimeout > 0 && d > 20*sc.cfg.OpTimeout {
					c.Close()
					return nil, fmt.Errorf("faults: %s readdir took %v, deadline not enforced", sc.name, d)
				}
			} else {
				ok++
			}
			// The breaker row reports the mean of the post-trip calls only,
			// to show the fail-fast collapse.
			if sc.name != "blackhole+breaker" || i > 0 {
				wall += d
			}
		}
		n := sc.calls
		if sc.name == "blackhole+breaker" {
			n = followUps
		}
		outcome := fmt.Sprintf("%d/%d ok", ok, sc.calls)
		if failed > 0 {
			outcome += " (" + wire.StatusDeadline.String() + "/" + wire.StatusUnavailable.String() + ")"
		}
		t.AddRow(sc.name, outcome,
			fmt.Sprintf("%v", (wall / time.Duration(n)).Round(10*time.Microsecond)),
			fmt.Sprint(counterTotal(reg, client.MetricRetries)),
			fmt.Sprint(counterTotal(reg, client.MetricDeadlines)),
			fmt.Sprint(counterTotal(reg, client.MetricFastFails)))
		c.Close()
		cluster.Network().ClearFault("fms-1")
	}
	return t, nil
}

// counterTotal sums a counter metric across all of its label combinations.
func counterTotal(reg *telemetry.Registry, name string) uint64 {
	var n uint64
	for _, m := range reg.Snapshot().Metrics {
		if m.Kind == telemetry.KindCounter && strings.HasPrefix(m.Name, name) {
			n += uint64(m.Value)
		}
	}
	return n
}
