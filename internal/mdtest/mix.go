package mdtest

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"locofs/internal/fsapi"
)

// OpMix gives relative weights for a mixed metadata workload, in the spirit
// of the file-system traces the paper analyzes (§3.4.1): the Sunway
// TaihuLight trace contains no renames at all, and the BSC GPFS study
// measured d-rename at 1e-7 of all operations. RunMix replays a synthetic
// trace drawn from these weights and reports per-op-class costs, which is
// how the repository quantifies the paper's claim that hash-based
// placement's rename penalty is negligible in practice.
type OpMix struct {
	Create     float64
	Stat       float64
	Remove     float64
	Readdir    float64
	Mkdir      float64
	FileRename float64
	DirRename  float64
}

// TaihuLightMix approximates the paper's §3.4.1 observation: a
// metadata-intensive HPC mix with *zero* renames (create/stat dominated,
// per Leung et al. and Roselli et al. as cited in §1).
var TaihuLightMix = OpMix{Create: 30, Stat: 55, Remove: 10, Readdir: 4, Mkdir: 1}

// WithRenameRatio returns the mix with the given fraction of operations
// converted into renames (split 10:1 between file and directory renames).
func (m OpMix) WithRenameRatio(ratio float64) OpMix {
	total := m.total()
	extra := total * ratio / (1 - ratio)
	m.FileRename = extra * 10 / 11
	m.DirRename = extra * 1 / 11
	return m
}

func (m OpMix) total() float64 {
	return m.Create + m.Stat + m.Remove + m.Readdir + m.Mkdir + m.FileRename + m.DirRename
}

// MixConfig configures a mixed-workload run.
type MixConfig struct {
	// Ops is the total number of operations to replay.
	Ops int
	// Mix gives the op-class weights; default TaihuLightMix.
	Mix OpMix
	// Dirs is the number of working directories files spread over.
	Dirs int
	// Seed makes the trace reproducible.
	Seed int64
	// Root is the namespace root; default "/mix".
	Root string
}

// MixClassResult aggregates one op class.
type MixClassResult struct {
	Ops  int
	Errs int
	Cost time.Duration // total modeled time
}

// Mean returns the class's mean modeled latency.
func (r MixClassResult) Mean() time.Duration {
	if r.Ops == 0 {
		return 0
	}
	return r.Cost / time.Duration(r.Ops)
}

// MixReport is the outcome of a mixed run.
type MixReport struct {
	Classes   map[string]MixClassResult
	TotalOps  int
	TotalCost time.Duration
}

// MeanLatency returns the overall mean modeled latency per operation.
func (r *MixReport) MeanLatency() time.Duration {
	if r.TotalOps == 0 {
		return 0
	}
	return r.TotalCost / time.Duration(r.TotalOps)
}

// RunMix replays a synthetic operation trace against one FS client.
func RunMix(cfg MixConfig, newFS func() (fsapi.FS, error)) (*MixReport, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 1000
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = TaihuLightMix
	}
	if cfg.Dirs <= 0 {
		cfg.Dirs = 8
	}
	if cfg.Root == "" {
		cfg.Root = "/mix"
	}
	fs, err := newFS()
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	coster, _ := fs.(fsapi.Coster)
	fileRenamer, _ := fs.(fsapi.FileRenamer)
	dirRenamer, _ := fs.(fsapi.Renamer)

	if err := fs.Mkdir(cfg.Root, 0o777); err != nil {
		return nil, fmt.Errorf("mdtest: mix setup: %w", err)
	}
	dirs := make([]string, cfg.Dirs)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("%s/d%03d", cfg.Root, i)
		if err := fs.Mkdir(dirs[i], 0o777); err != nil {
			return nil, fmt.Errorf("mdtest: mix setup: %w", err)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	type classDef struct {
		name   string
		weight float64
	}
	classes := []classDef{
		{"create", cfg.Mix.Create},
		{"stat", cfg.Mix.Stat},
		{"remove", cfg.Mix.Remove},
		{"readdir", cfg.Mix.Readdir},
		{"mkdir", cfg.Mix.Mkdir},
		{"file-rename", cfg.Mix.FileRename},
		{"dir-rename", cfg.Mix.DirRename},
	}
	cum := make([]float64, len(classes))
	sum := 0.0
	for i, c := range classes {
		sum += c.weight
		cum[i] = sum
	}
	pick := func() string {
		x := rng.Float64() * sum
		i := sort.SearchFloat64s(cum, x)
		if i >= len(classes) {
			i = len(classes) - 1
		}
		return classes[i].name
	}

	// Live-file pool so stats/removes hit existing files.
	var files []string
	addFile := func(p string) { files = append(files, p) }
	takeFile := func() (string, bool) {
		if len(files) == 0 {
			return "", false
		}
		i := rng.Intn(len(files))
		p := files[i]
		files[i] = files[len(files)-1]
		files = files[:len(files)-1]
		return p, true
	}
	peekFile := func() (string, bool) {
		if len(files) == 0 {
			return "", false
		}
		return files[rng.Intn(len(files))], true
	}

	report := &MixReport{Classes: map[string]MixClassResult{}}
	seq := 0
	mkdirSeq := 0
	renSeq := 0
	cost := func() time.Duration {
		if coster == nil {
			return 0
		}
		return coster.Cost()
	}
	for op := 0; op < cfg.Ops; op++ {
		class := pick()
		c0 := cost()
		var err error
		switch class {
		case "create":
			p := fmt.Sprintf("%s/f%06d", dirs[rng.Intn(len(dirs))], seq)
			seq++
			if err = fs.Create(p, 0o644); err == nil {
				addFile(p)
			}
		case "stat":
			if p, ok := peekFile(); ok {
				err = fs.StatFile(p)
			} else {
				err = fs.StatDir(dirs[rng.Intn(len(dirs))])
			}
		case "remove":
			if p, ok := takeFile(); ok {
				err = fs.Remove(p)
			} else {
				class = "stat"
				err = fs.StatDir(dirs[rng.Intn(len(dirs))])
			}
		case "readdir":
			_, err = fs.Readdir(dirs[rng.Intn(len(dirs))])
		case "mkdir":
			p := fmt.Sprintf("%s/sub%06d", dirs[rng.Intn(len(dirs))], mkdirSeq)
			mkdirSeq++
			err = fs.Mkdir(p, 0o755)
		case "file-rename":
			if p, ok := takeFile(); ok && fileRenamer != nil {
				np := fmt.Sprintf("%s.r%d", p, renSeq)
				renSeq++
				if err = fileRenamer.RenameFile(p, np); err == nil {
					addFile(np)
				}
			} else {
				class = "stat"
				err = fs.StatDir(dirs[0])
			}
		case "dir-rename":
			if dirRenamer != nil {
				i := rng.Intn(len(dirs))
				old := dirs[i]
				np := fmt.Sprintf("%s.r%d", old, renSeq)
				renSeq++
				if _, err = dirRenamer.RenameDir(old, np); err == nil {
					dirs[i] = np
					// Files under the renamed directory keep working via
					// their new paths; update the live pool.
					prefix := old + "/"
					for j, f := range files {
						if len(f) > len(prefix) && f[:len(prefix)] == prefix {
							files[j] = np + "/" + f[len(prefix):]
						}
					}
				}
			} else {
				class = "stat"
				err = fs.StatDir(dirs[0])
			}
		}
		d := cost() - c0
		cr := report.Classes[class]
		cr.Ops++
		cr.Cost += d
		if err != nil {
			cr.Errs++
		}
		report.Classes[class] = cr
		report.TotalOps++
		report.TotalCost += d
	}
	return report, nil
}
