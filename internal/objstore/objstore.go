// Package objstore implements the LocoFS object store: file data is chopped
// into fixed-size blocks addressed by uuid + blk_num (§3.3.2). Because the
// address is computable from the file UUID and offset, file metadata carries
// no block index at all, and data blocks never move on rename (the UUID is
// stable).
package objstore

import (
	"encoding/binary"
	"sync"

	"locofs/internal/kv"
	"locofs/internal/rpc"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// Server is one object store server. Blocks are stored in a KV store under
// the 24-byte key uuid ‖ blk_num.
type Server struct {
	mu    sync.RWMutex
	store kv.Store
}

// New returns an object store backed by st (default: a fresh HashStore).
func New(st kv.Store) *Server {
	if st == nil {
		st = kv.NewHashStore()
	}
	return &Server{store: st}
}

// BlockKey is the paper's uuid+blk_num data address.
func BlockKey(u uuid.UUID, blk uint64) []byte {
	k := make([]byte, uuid.Size+8)
	copy(k, u[:])
	binary.BigEndian.PutUint64(k[uuid.Size:], blk)
	return k
}

// WriteBlock stores data at (u, blk) with the given intra-block offset.
// A partial write into an existing block is merged read-modify-write; the
// block grows as needed up to blockSize.
func (s *Server) WriteBlock(u uuid.UUID, blk uint64, off uint32, data []byte, blockSize uint32) wire.Status {
	if uint64(off)+uint64(len(data)) > uint64(blockSize) {
		return wire.StatusInval
	}
	key := BlockKey(u, blk)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.store.Get(key)
	need := int(off) + len(data)
	if !ok {
		cur = make([]byte, need)
	} else if len(cur) < need {
		cur = append(cur, make([]byte, need-len(cur))...)
	}
	copy(cur[off:], data)
	s.store.Put(key, cur)
	return wire.StatusOK
}

// ReadBlock returns up to length bytes of block blk starting at off. Reads
// past the block's written extent return what exists (possibly empty).
func (s *Server) ReadBlock(u uuid.UUID, blk uint64, off uint32, length uint32) ([]byte, wire.Status) {
	key := BlockKey(u, blk)
	s.mu.RLock()
	defer s.mu.RUnlock()
	cur, ok := s.store.Get(key)
	if !ok || int(off) >= len(cur) {
		return nil, wire.StatusOK
	}
	end := int(off) + int(length)
	if end > len(cur) {
		end = len(cur)
	}
	return cur[off:end], wire.StatusOK
}

// DeleteFrom removes every block of u with blk_num >= fromBlk, up to
// maxProbe consecutive missing blocks past the last hit (blocks are dense
// from 0, so the probe terminates quickly). It returns the number deleted.
func (s *Server) DeleteFrom(u uuid.UUID, fromBlk uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	deleted := 0
	misses := 0
	const maxProbe = 8
	for blk := fromBlk; misses < maxProbe; blk++ {
		if s.store.Delete(BlockKey(u, blk)) {
			deleted++
			misses = 0
		} else {
			misses++
		}
	}
	return deleted
}

// BlockCount returns the number of stored blocks (tests/experiments).
func (s *Server) BlockCount() int { return s.store.Len() }

// Attach registers the object store handlers on an rpc.Server.
func (s *Server) Attach(rs *rpc.Server) {
	rs.Handle(wire.OpPutBlock, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		u := d.UUID()
		blk, off, bsize := d.U64(), d.U32(), d.U32()
		data := d.Blob()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		return s.WriteBlock(u, blk, off, data, bsize), nil
	})
	rs.Handle(wire.OpGetBlock, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		u := d.UUID()
		blk, off, length := d.U64(), d.U32(), d.U32()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		data, st := s.ReadBlock(u, blk, off, length)
		if st != wire.StatusOK {
			return st, nil
		}
		return wire.StatusOK, wire.NewEnc().Blob(data).Bytes()
	})
	rs.Handle(wire.OpDeleteBlocks, func(body []byte) (wire.Status, []byte) {
		d := wire.NewDec(body)
		u := d.UUID()
		from := d.U64()
		if d.Err() != nil {
			return wire.StatusInval, nil
		}
		n := s.DeleteFrom(u, from)
		return wire.StatusOK, wire.NewEnc().U32(uint32(n)).Bytes()
	})
}
