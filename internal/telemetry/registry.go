package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value metric dimension (e.g. op="Mkdir").
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Kind discriminates snapshot entries.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// metricKey is the registry identity of a metric: name plus canonical
// (sorted) label rendering.
type metricKey struct {
	name   string
	labels string
}

type gaugeFunc func() float64

// Registry holds named metrics. All registration methods are get-or-create
// and safe for concurrent use; base labels set at construction are stamped
// on every metric (e.g. server="fms-0").
type Registry struct {
	base []Label

	mu       sync.RWMutex
	counters map[metricKey]*Counter
	hists    map[metricKey]*Histogram
	gauges   map[metricKey]gaugeFunc
	windows  map[metricKey]*Windowed
	winCfg   WindowConfig
	rotHook  func(name string, n int) // stamped on every Windowed (see SetRotateHook)
}

// NewRegistry returns an empty registry with the given base labels.
func NewRegistry(base ...Label) *Registry {
	return &Registry{
		base:     base,
		counters: make(map[metricKey]*Counter),
		hists:    make(map[metricKey]*Histogram),
		gauges:   make(map[metricKey]gaugeFunc),
		windows:  make(map[metricKey]*Windowed),
	}
}

// SetWindow configures the rotating window applied to histograms created by
// Windowed from now on (already-created windows keep their geometry). The
// zero config means the package defaults.
func (r *Registry) SetWindow(cfg WindowConfig) {
	r.mu.Lock()
	r.winCfg = cfg
	r.mu.Unlock()
}

// Window returns the registry's effective window configuration.
func (r *Registry) Window() WindowConfig {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.winCfg.withDefaults()
}

// SetRotateHook installs fn as the rotation observer of every windowed
// histogram in the registry, present and future: fn(name, n) runs after a
// window of the named metric closes (n = windows closed at once), outside
// any lock. One hook per registry (later calls replace it); nil clears.
// This is how the flight recorder turns SLO window rollovers into journal
// events without telemetry importing anything.
func (r *Registry) SetRotateHook(fn func(name string, n int)) {
	r.mu.Lock()
	r.rotHook = fn
	type winEntry struct {
		name string
		w    *Windowed
	}
	wins := make([]winEntry, 0, len(r.windows))
	for k, w := range r.windows {
		wins = append(wins, winEntry{k.name, w})
	}
	r.mu.Unlock()
	for _, e := range wins {
		if fn == nil {
			e.w.SetOnRotate(nil)
			continue
		}
		name := e.name
		e.w.SetOnRotate(func(n int) { fn(name, n) })
	}
}

// canonLabels renders labels sorted by key into the {k="v",...} form used
// both as map identity and in the Prometheus exposition.
func canonLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

func (r *Registry) key(name string, labels []Label) metricKey {
	all := make([]Label, 0, len(r.base)+len(labels))
	all = append(all, r.base...)
	all = append(all, labels...)
	return metricKey{name: name, labels: canonLabels(all)}
}

// Counter returns the counter for name+labels, creating it if needed.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	k := r.key(name, labels)
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Histogram returns the histogram for name+labels, creating it if needed.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	k := r.key(name, labels)
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// Windowed returns the rotating-window view of the histogram registered
// under name+labels, creating both if needed. Recording through the
// returned Windowed feeds the cumulative histogram (so /metrics and
// lifetime aggregates are unchanged) and the time-local window.
func (r *Registry) Windowed(name string, labels ...Label) *Windowed {
	h := r.Histogram(name, labels...)
	k := r.key(name, labels)
	r.mu.RLock()
	w := r.windows[k]
	r.mu.RUnlock()
	if w != nil {
		return w
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w = r.windows[k]; w == nil {
		w = NewWindowed(h, r.winCfg)
		if hook := r.rotHook; hook != nil {
			name := k.name
			w.SetOnRotate(func(n int) { hook(name, n) })
		}
		r.windows[k] = w
	}
	return w
}

// GaugeFunc registers fn as a gauge sampled at snapshot time, replacing any
// previous registration under the same name+labels.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	k := r.key(name, labels)
	r.mu.Lock()
	r.gauges[k] = fn
	r.mu.Unlock()
}

// Unregister removes the metric registered under name+labels — whatever its
// kind — reporting whether anything was removed. Components that register
// gauges against a shared registry (e.g. a client's in-flight gauge keyed by
// client ID) must unregister them on teardown, or snapshots accumulate dead
// series across instances — the cross-test label leakage this exists to
// stop.
func (r *Registry) Unregister(name string, labels ...Label) bool {
	k := r.key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := false
	if _, ok := r.counters[k]; ok {
		delete(r.counters, k)
		removed = true
	}
	if _, ok := r.hists[k]; ok {
		delete(r.hists, k)
		removed = true
	}
	if _, ok := r.gauges[k]; ok {
		delete(r.gauges, k)
		removed = true
	}
	if _, ok := r.windows[k]; ok {
		delete(r.windows, k)
		removed = true
	}
	return removed
}

// Reset removes every metric, returning the registry to its freshly
// constructed state (base labels kept). Intended for tests sharing one
// registry across cases.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.counters = make(map[metricKey]*Counter)
	r.hists = make(map[metricKey]*Histogram)
	r.gauges = make(map[metricKey]gaugeFunc)
	r.windows = make(map[metricKey]*Windowed)
	r.mu.Unlock()
}

// Metric is one snapshot entry. For histograms, Hist is set and Value is
// the observation count.
type Metric struct {
	Name   string
	Labels string // canonical {k="v",...} form, "" when unlabeled
	Kind   Kind
	Value  float64
	Hist   HistSnapshot
}

// Snapshot is a stable point-in-time view of a registry (or several merged
// ones), sorted by name then labels.
type Snapshot struct {
	Metrics []Metric
}

// Snapshot captures every metric. Gauge functions are invoked here.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	type histEntry struct {
		k metricKey
		h *Histogram
	}
	counters := make(map[metricKey]uint64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Load()
	}
	hists := make([]histEntry, 0, len(r.hists))
	for k, h := range r.hists {
		hists = append(hists, histEntry{k, h})
	}
	gauges := make(map[metricKey]gaugeFunc, len(r.gauges))
	for k, fn := range r.gauges {
		gauges[k] = fn
	}
	type winEntry struct {
		k metricKey
		w *Windowed
	}
	windows := make([]winEntry, 0, len(r.windows))
	for k, w := range r.windows {
		windows = append(windows, winEntry{k, w})
	}
	r.mu.RUnlock()

	var s Snapshot
	// Windowed histograms surface as synthetic gauge families next to their
	// cumulative parents: time-local quantiles, the per-window max (which
	// ages out, unlike the lifetime max), and the observation rate.
	for _, e := range windows {
		ws := e.w.Snapshot()
		for _, q := range [...]struct {
			label string
			v     float64
		}{
			{`q="0.5"`, ws.Merged.Quantile(0.50).Seconds()},
			{`q="0.95"`, ws.Merged.Quantile(0.95).Seconds()},
			{`q="0.99"`, ws.Merged.Quantile(0.99).Seconds()},
		} {
			s.Metrics = append(s.Metrics, Metric{Name: e.k.name + "_window", Labels: labelsWith(e.k.labels, q.label), Kind: KindGauge, Value: q.v})
		}
		s.Metrics = append(s.Metrics, Metric{Name: e.k.name + "_window_max", Labels: e.k.labels, Kind: KindGauge, Value: ws.Merged.Max.Seconds()})
		s.Metrics = append(s.Metrics, Metric{Name: e.k.name + "_window_rate", Labels: e.k.labels, Kind: KindGauge, Value: ws.Rate()})
	}
	for k, v := range counters {
		s.Metrics = append(s.Metrics, Metric{Name: k.name, Labels: k.labels, Kind: KindCounter, Value: float64(v)})
	}
	for k, fn := range gauges {
		s.Metrics = append(s.Metrics, Metric{Name: k.name, Labels: k.labels, Kind: KindGauge, Value: fn()})
	}
	for _, e := range hists {
		hs := e.h.Snapshot()
		s.Metrics = append(s.Metrics, Metric{Name: e.k.name, Labels: e.k.labels, Kind: KindHistogram, Value: float64(hs.Count), Hist: hs})
	}
	sort.Slice(s.Metrics, func(i, j int) bool {
		if s.Metrics[i].Name != s.Metrics[j].Name {
			return s.Metrics[i].Name < s.Metrics[j].Name
		}
		return s.Metrics[i].Labels < s.Metrics[j].Labels
	})
	return s
}

// Merge combines snapshots from several registries into one sorted view.
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		out.Metrics = append(out.Metrics, s.Metrics...)
	}
	sort.Slice(out.Metrics, func(i, j int) bool {
		if out.Metrics[i].Name != out.Metrics[j].Name {
			return out.Metrics[i].Name < out.Metrics[j].Name
		}
		return out.Metrics[i].Labels < out.Metrics[j].Labels
	})
	return out
}

// labelsWith splices extra k="v" pairs into a canonical label string.
func labelsWith(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WriteProm renders the snapshot in the Prometheus text exposition format.
// Histograms emit cumulative le buckets (log-spaced, in seconds) up to the
// highest populated bucket, plus _sum and _count. Snapshots are sorted by
// name, so the TYPE header is emitted once per metric family.
func (s Snapshot) WriteProm(w io.Writer) error {
	typeNames := map[Kind]string{KindCounter: "counter", KindGauge: "gauge", KindHistogram: "histogram"}
	lastHeader := ""
	for _, m := range s.Metrics {
		if m.Name != lastHeader {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, typeNames[m.Kind]); err != nil {
				return err
			}
			lastHeader = m.Name
		}
		switch m.Kind {
		case KindCounter, KindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %v\n", m.Name, m.Labels, m.Value); err != nil {
				return err
			}
		case KindHistogram:
			top := 0
			for i, c := range m.Hist.Buckets {
				if c > 0 {
					top = i
				}
			}
			var cum uint64
			for i := 0; i <= top; i++ {
				cum += m.Hist.Buckets[i]
				le := fmt.Sprintf("le=%q", fmt.Sprintf("%g", BucketUpper(i).Seconds()))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labelsWith(m.Labels, le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labelsWith(m.Labels, `le="+Inf"`), m.Hist.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
				m.Name, m.Labels, m.Hist.Sum.Seconds(), m.Name, m.Labels, m.Hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// OpRow is one per-op latency summary extracted from a snapshot.
type OpRow struct {
	Op    string
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// OpTable extracts the histograms named metric from the snapshot, keyed by
// their op label, sorted by op name — the per-op latency breakdown the
// paper-figure runs and examples/opstats print.
func (s Snapshot) OpTable(metric string) []OpRow {
	var rows []OpRow
	for _, m := range s.Metrics {
		if m.Kind != KindHistogram || m.Name != metric || m.Hist.Count == 0 {
			continue
		}
		rows = append(rows, OpRow{
			Op:    labelValue(m.Labels, "op"),
			Count: m.Hist.Count,
			Mean:  m.Hist.Mean(),
			P50:   m.Hist.Quantile(0.50),
			P90:   m.Hist.Quantile(0.90),
			P99:   m.Hist.Quantile(0.99),
			Max:   m.Hist.Max,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Op < rows[j].Op })
	return rows
}

// HistogramMetrics captures only the cumulative histograms, sorted by name
// then labels. Unlike Snapshot it does NOT invoke gauge functions, so it is
// safe to call from inside a gauge callback (e.g. the SLO tracker's
// exported burn rate evaluates histograms of the very registry it is
// registered on — going through Snapshot there would recurse forever).
func (r *Registry) HistogramMetrics() []Metric {
	type histEntry struct {
		k metricKey
		h *Histogram
	}
	r.mu.RLock()
	hists := make([]histEntry, 0, len(r.hists))
	for k, h := range r.hists {
		hists = append(hists, histEntry{k, h})
	}
	r.mu.RUnlock()
	out := make([]Metric, 0, len(hists))
	for _, e := range hists {
		hs := e.h.Snapshot()
		out = append(out, Metric{Name: e.k.name, Labels: e.k.labels, Kind: KindHistogram, Value: float64(hs.Count), Hist: hs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// WindowMetric is one windowed histogram's structured snapshot, for
// consumers (the SLO tracker, the cluster aggregator) that need bucket-level
// data rather than the pre-rendered gauges.
type WindowMetric struct {
	Name   string
	Labels string // canonical {k="v",...} form
	Win    WindowedSnapshot
}

// WindowMetrics captures every windowed histogram, sorted by name then
// labels.
func (r *Registry) WindowMetrics() []WindowMetric {
	type winEntry struct {
		k metricKey
		w *Windowed
	}
	r.mu.RLock()
	windows := make([]winEntry, 0, len(r.windows))
	for k, w := range r.windows {
		windows = append(windows, winEntry{k, w})
	}
	r.mu.RUnlock()
	out := make([]WindowMetric, 0, len(windows))
	for _, e := range windows {
		out = append(out, WindowMetric{Name: e.k.name, Labels: e.k.labels, Win: e.w.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// LabelValue extracts one label's value from a canonical {k="v",...} label
// string ("" when absent).
func LabelValue(labels, key string) string { return labelValue(labels, key) }

// labelValue extracts one label's value from a canonical label string.
func labelValue(labels, key string) string {
	rest := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, part := range strings.Split(rest, ",") {
		if k, v, ok := strings.Cut(part, "="); ok && k == key {
			if uq, err := unquote(v); err == nil {
				return uq
			}
			return v
		}
	}
	return ""
}

func unquote(s string) (string, error) {
	var out string
	_, err := fmt.Sscanf(s, "%q", &out)
	return out, err
}
