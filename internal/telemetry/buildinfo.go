package telemetry

import (
	"runtime"
	"time"
)

// Version identifies the build in the locofs_build_info gauge. Override at
// link time (go build -ldflags "-X locofs/internal/telemetry.Version=v1.2")
// so aggregated cluster snapshots can distinguish server generations during
// a rolling change; "dev" otherwise.
var Version = "dev"

// processStart anchors the uptime gauge; one value per process, shared by
// every registry.
var processStart = time.Now()

// Uptime returns how long this process has been running.
func Uptime() time.Duration { return time.Since(processStart) }

// RegisterBuildInfo exports the build-identity gauges on r:
//
//	locofs_build_info{version=...,go=...} 1
//	locofs_uptime_seconds                 <seconds since process start>
//
// The registry's base labels (server=...) distinguish processes when
// several registries are merged, and the aggregator uses both to tell
// server generations apart across a rolling restart.
func RegisterBuildInfo(r *Registry) {
	r.GaugeFunc("locofs_build_info", func() float64 { return 1 },
		L("version", Version), L("go", runtime.Version()))
	r.GaugeFunc("locofs_uptime_seconds", func() float64 { return Uptime().Seconds() })
}
