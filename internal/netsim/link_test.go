package netsim

import (
	"testing"
	"time"

	"locofs/internal/wire"
)

func TestLinkDelayRTTOnly(t *testing.T) {
	l := LinkConfig{RTT: 200 * time.Microsecond}
	if got := l.Delay(0); got != 100*time.Microsecond {
		t.Errorf("Delay(0) = %v, want RTT/2", got)
	}
	if got := l.Delay(1 << 20); got != 100*time.Microsecond {
		t.Errorf("Delay with no bandwidth term = %v, want RTT/2", got)
	}
}

func TestLinkDelayBandwidthTerm(t *testing.T) {
	l := LinkConfig{RTT: 0, Bandwidth: 1e6} // 1 MB/s
	got := l.Delay(1_000_000)
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Errorf("Delay(1MB at 1MB/s) = %v, want ~1s", got)
	}
	// Combined: RTT/2 + serialization.
	l = Paper1GbE
	small := l.Delay(100)
	large := l.Delay(1 << 20)
	if small < l.RTT/2 {
		t.Errorf("small delay %v below propagation", small)
	}
	if large <= small {
		t.Errorf("bandwidth term missing: %v vs %v", large, small)
	}
	// 1 MiB at 125 MB/s ≈ 8.4 ms on top of 87 µs.
	if large < 8*time.Millisecond || large > 10*time.Millisecond {
		t.Errorf("1MiB on 1GbE = %v, want ~8.5ms", large)
	}
}

func TestWireSizeMatchesFraming(t *testing.T) {
	m := &wire.Msg{ID: 1, Op: wire.OpPing, Body: make([]byte, 123)}
	want := m.WireSize()
	// The framed encoding must be exactly WireSize bytes.
	var count countingWriter
	if err := wire.WriteMsg(&count, m); err != nil {
		t.Fatal(err)
	}
	if int(count) != want {
		t.Errorf("framed size = %d, WireSize = %d", count, want)
	}
}

type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
