package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"locofs/internal/telemetry"
)

// StatusHandler serves the JSON of fetch() — a *ServerStatus for
// /debug/slo, a *ClusterStatus for /debug/cluster. fetch runs per request,
// so the body is always a fresh evaluation.
func StatusHandler(fetch func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !telemetry.RequireGET(w, r) {
			return
		}
		// Marshal before writing so an encoding failure can still produce a
		// clean 500 in the shared JSON error shape (once the body has begun
		// streaming the status code is committed).
		body, err := json.MarshalIndent(fetch(), "", "  ")
		if err != nil {
			telemetry.WriteJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(body, '\n'))
	})
}

// DefaultFetchTimeout bounds one status scrape when the caller passes a nil
// http.Client.
const DefaultFetchTimeout = 2 * time.Second

// FetchStatus scrapes one peer's /debug/slo endpoint. url must be the full
// endpoint URL (e.g. "http://127.0.0.1:9101/debug/slo").
func FetchStatus(client *http.Client, url string) (*ServerStatus, error) {
	if client == nil {
		client = &http.Client{Timeout: DefaultFetchTimeout}
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	var st ServerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return &st, nil
}
