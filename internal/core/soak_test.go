package core

import (
	"fmt"
	"sync"
	"testing"

	"locofs/internal/wire"
)

// TestSoakLargeNamespace pushes a moderately large namespace through the
// full stack — tens of thousands of files across hundreds of directories,
// from concurrent clients — and then audits the namespace exhaustively.
// Skipped with -short.
func TestSoakLargeNamespace(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	const (
		clients     = 8
		dirsPerCli  = 25
		filesPerDir = 40 // 8 * 25 * 40 = 8000 files, 200 dirs
	)
	cluster, err := Start(Options{FMSCount: 8, OSSCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := cluster.NewClient(ClientConfig{})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for d := 0; d < dirsPerCli; d++ {
				dir := fmt.Sprintf("/c%d-d%d", w, d)
				if err := cl.Mkdir(dir, 0o755); err != nil {
					errs <- fmt.Errorf("mkdir %s: %w", dir, err)
					return
				}
				for f := 0; f < filesPerDir; f++ {
					p := fmt.Sprintf("%s/f%d", dir, f)
					if err := cl.Create(p, 0o644); err != nil {
						errs <- fmt.Errorf("create %s: %w", p, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Audit with a fresh client: every directory has exactly filesPerDir
	// entries; every file stats; spot-renames and deletions behave.
	audit, err := cluster.NewClient(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer audit.Close()
	rootEnts, err := audit.Readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rootEnts) != clients*dirsPerCli {
		t.Fatalf("root has %d dirs, want %d", len(rootEnts), clients*dirsPerCli)
	}
	for w := 0; w < clients; w++ {
		for d := 0; d < dirsPerCli; d++ {
			dir := fmt.Sprintf("/c%d-d%d", w, d)
			ents, err := audit.Readdir(dir)
			if err != nil {
				t.Fatalf("readdir %s: %v", dir, err)
			}
			if len(ents) != filesPerDir {
				t.Fatalf("%s has %d entries, want %d", dir, len(ents), filesPerDir)
			}
		}
	}
	// Spot checks across the namespace.
	for _, p := range []string{"/c0-d0/f0", "/c7-d24/f39", "/c3-d12/f20"} {
		if _, err := audit.StatFile(p); err != nil {
			t.Errorf("stat %s: %v", p, err)
		}
	}
	// Rename a loaded directory and verify reachability flips atomically
	// from the client's perspective.
	moved, err := audit.RenameDir("/c0-d0", "/renamed-soak")
	if err != nil || moved != 1 {
		t.Fatalf("RenameDir = %d, %v", moved, err)
	}
	if _, err := audit.StatFile("/renamed-soak/f39"); err != nil {
		t.Errorf("file lost by rename: %v", err)
	}
	if _, err := audit.StatFile("/c0-d0/f39"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Errorf("old path alive: %v", err)
	}
	// Drain one directory and remove it.
	for f := 0; f < filesPerDir; f++ {
		if err := audit.Remove(fmt.Sprintf("/c1-d1/f%d", f)); err != nil {
			t.Fatalf("remove: %v", err)
		}
	}
	if err := audit.Rmdir("/c1-d1"); err != nil {
		t.Fatalf("rmdir drained dir: %v", err)
	}
	// Per-server file counts must sum to the survivors.
	total := 0
	for _, f := range cluster.FMS {
		total += f.FileCount()
	}
	want := clients*dirsPerCli*filesPerDir - filesPerDir
	if total != want {
		t.Errorf("FMS file counts sum to %d, want %d", total, want)
	}
}
