package client

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locofs/internal/layout"
	"locofs/internal/wire"
)

func freshInode(uidTag uint32) layout.DirInode {
	ino := layout.NewDirInode()
	ino.SetUID(uidTag)
	return ino
}

func TestCachePutGet(t *testing.T) {
	now := time.Now()
	c := newDirCache(30*time.Second, func() time.Time { return now }, 0, false, false, nil)
	c.put("/a", freshInode(1), wire.LeaseGrant{})
	got, ok := c.get("/a")
	if !ok || got.UID() != 1 {
		t.Fatalf("get = %v, %v", got, ok)
	}
	if _, ok := c.get("/b"); ok {
		t.Error("got missing entry")
	}
	hits, misses := c.stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestCacheLeaseExpiry(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := newDirCache(30*time.Second, clock, 0, false, false, nil)
	c.put("/a", freshInode(1), wire.LeaseGrant{})
	now = now.Add(29 * time.Second)
	if _, ok := c.get("/a"); !ok {
		t.Error("entry expired before lease")
	}
	now = now.Add(2 * time.Second) // lease was refreshed by put only, not get
	if _, ok := c.get("/a"); ok {
		t.Error("entry alive past lease")
	}
	if c.size() != 0 {
		t.Error("expired entry not evicted")
	}
}

func TestCachePutRefreshesLease(t *testing.T) {
	now := time.Now()
	c := newDirCache(30*time.Second, func() time.Time { return now }, 0, false, false, nil)
	c.put("/a", freshInode(1), wire.LeaseGrant{})
	now = now.Add(20 * time.Second)
	c.put("/a", freshInode(2), wire.LeaseGrant{})
	now = now.Add(20 * time.Second) // 40s since first put, 20s since refresh
	got, ok := c.get("/a")
	if !ok || got.UID() != 2 {
		t.Errorf("refreshed entry = %v, %v", got, ok)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newDirCache(time.Hour, nil, 0, false, false, nil)
	c.put("/a", freshInode(1), wire.LeaseGrant{})
	c.invalidate("/a")
	if _, ok := c.get("/a"); ok {
		t.Error("invalidated entry still visible")
	}
}

func TestCacheInvalidateSubtree(t *testing.T) {
	c := newDirCache(time.Hour, nil, 0, false, false, nil)
	for _, p := range []string{"/a", "/a/b", "/a/b/c", "/ab", "/z"} {
		c.put(p, freshInode(1), wire.LeaseGrant{})
	}
	c.invalidateSubtree("/a")
	for _, gone := range []string{"/a", "/a/b", "/a/b/c"} {
		if _, ok := c.get(gone); ok {
			t.Errorf("%s survived subtree invalidation", gone)
		}
	}
	for _, kept := range []string{"/ab", "/z"} {
		if _, ok := c.get(kept); !ok {
			t.Errorf("%s wrongly invalidated", kept)
		}
	}
}

func TestCacheInvalidateSubtreeRoot(t *testing.T) {
	c := newDirCache(time.Hour, nil, 0, false, false, nil)
	c.put("/", freshInode(1), wire.LeaseGrant{})
	c.put("/x", freshInode(1), wire.LeaseGrant{})
	c.invalidateSubtree("/")
	if c.size() != 0 {
		t.Errorf("size = %d after invalidating /", c.size())
	}
}

func TestCacheStoresCopy(t *testing.T) {
	c := newDirCache(time.Hour, nil, 0, false, false, nil)
	ino := freshInode(1)
	c.put("/a", ino, wire.LeaseGrant{})
	ino.SetUID(99) // mutate caller's copy
	got, _ := c.get("/a")
	if got.UID() != 1 {
		t.Error("cache shares storage with caller")
	}
}

func TestCacheDefaultLease(t *testing.T) {
	c := newDirCache(0, nil, 0, false, false, nil)
	if c.lease != DefaultLease {
		t.Errorf("lease = %v, want %v", c.lease, DefaultLease)
	}
}

func TestCacheCapEvictsOldest(t *testing.T) {
	c := newDirCache(time.Hour, nil, 4, false, false, nil)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("/d%d", i), freshInode(uint32(i)), wire.LeaseGrant{})
	}
	if got := c.size(); got != 4 {
		t.Fatalf("size = %d, want cap 4", got)
	}
	if got := c.evicted(); got != 6 {
		t.Errorf("evicted = %d, want 6", got)
	}
	for i := 0; i < 6; i++ {
		if _, ok := c.get(fmt.Sprintf("/d%d", i)); ok {
			t.Errorf("oldest entry /d%d survived eviction", i)
		}
	}
	for i := 6; i < 10; i++ {
		if got, ok := c.get(fmt.Sprintf("/d%d", i)); !ok || got.UID() != uint32(i) {
			t.Errorf("newest entry /d%d missing", i)
		}
	}
}

func TestCacheRePutKeepsSiblings(t *testing.T) {
	c := newDirCache(time.Hour, nil, 3, false, false, nil)
	c.put("/a", freshInode(1), wire.LeaseGrant{})
	c.put("/b", freshInode(2), wire.LeaseGrant{})
	// Refreshing one path many times must not push siblings out.
	for i := 0; i < 50; i++ {
		c.put("/a", freshInode(uint32(100+i)), wire.LeaseGrant{})
	}
	if _, ok := c.get("/b"); !ok {
		t.Error("re-puts of /a evicted sibling /b")
	}
	if got := c.size(); got != 2 {
		t.Errorf("size = %d, want 2", got)
	}
	if got := c.evicted(); got != 0 {
		t.Errorf("evicted = %d, want 0", got)
	}
}

func TestCacheUnboundedWhenNegative(t *testing.T) {
	c := newDirCache(time.Hour, nil, -1, false, false, nil)
	for i := 0; i < DefaultCacheEntries/8; i++ {
		c.put(fmt.Sprintf("/u%d", i), freshInode(1), wire.LeaseGrant{})
	}
	if got := c.size(); got != DefaultCacheEntries/8 {
		t.Errorf("size = %d, want %d (unbounded)", got, DefaultCacheEntries/8)
	}
}

func TestCacheFifoCompaction(t *testing.T) {
	c := newDirCache(time.Hour, nil, 1000, false, false, nil)
	// Many invalidated puts must not grow the fifo without bound.
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("/t%d", i%7)
		c.put(p, freshInode(1), wire.LeaseGrant{})
		c.invalidate(p)
	}
	c.mu.Lock()
	fifoLen := len(c.fifo)
	c.mu.Unlock()
	if fifoLen > 2*7+16+1 {
		t.Errorf("fifo holds %d records for %d live entries", fifoLen, c.size())
	}
}

// TestCacheExpiryRePutRace: an expired-entry eviction inside get must not
// delete a fresh entry a concurrent put installed under the same path
// between get's read-lock probe and its write-lock cleanup. The clock is
// driven from an atomic so expiry flips while getters are in that window;
// with the blind delete this loses fresh leases (and the final re-put +
// get assertion flushes the loss out deterministically).
func TestCacheExpiryRePutRace(t *testing.T) {
	var nowNS atomic.Int64
	base := time.Unix(1000, 0)
	nowNS.Store(0)
	clock := func() time.Time { return base.Add(time.Duration(nowNS.Load())) }
	c := newDirCache(time.Millisecond, clock, 0, false, false, nil)

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := fmt.Sprintf("/race/%d", i%3)
				switch w % 3 {
				case 0:
					c.put(p, freshInode(uint32(w)), wire.LeaseGrant{})
				case 1:
					c.get(p)
				case 2:
					nowNS.Add(int64(time.Millisecond) / 4) // expire entries mid-flight
					c.get(p)
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// A put must always be visible for its full lease afterwards.
	c.put("/race/0", freshInode(9), wire.LeaseGrant{})
	if got, ok := c.get("/race/0"); !ok || got.UID() != 9 {
		t.Fatalf("fresh put invisible after stress: %v %v", got, ok)
	}
}

// TestCacheStressOverlappingSubtrees hammers get/put/invalidateSubtree on
// overlapping paths; run with -race this is the regression net for the
// cache's lock discipline.
func TestCacheStressOverlappingSubtrees(t *testing.T) {
	c := newDirCache(5*time.Millisecond, nil, 64, false, false, nil)
	paths := []string{"/a", "/a/b", "/a/b/c", "/a/b/c/d", "/a/x", "/z"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 9; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(i+w)%len(paths)]
				switch w % 3 {
				case 0:
					c.put(p, freshInode(uint32(i)), wire.LeaseGrant{})
				case 1:
					c.get(p)
				case 2:
					c.invalidateSubtree(paths[w%2]) // "/a" and "/a/b"
				}
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	if c.size() > 64 {
		t.Errorf("size %d exceeds cap", c.size())
	}
}
