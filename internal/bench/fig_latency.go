package bench

import (
	"fmt"
	"time"

	"locofs/internal/mdtest"
	"locofs/internal/netsim"
)

// Fig6 reproduces "Latency Comparison for touch and mkdir operations":
// single-client mean latency, normalized to the link RTT, for every system
// as the metadata-server count grows.
//
// Paper shape to look for: LocoFS-C touch ~1-3 RTT and mkdir ~1.1 RTT at
// every scale; Lustre ~4-6x, CephFS ~8x of LocoFS; Gluster's mkdir latency
// grows linearly with servers (directory broadcast).
func Fig6(env Env) (*Table, error) {
	t := &Table{
		Title:   "Figure 6: touch/mkdir latency vs #metadata servers (normalized to RTT)",
		Note:    fmt.Sprintf("modeled link RTT = %v; single client; mean of %d ops", env.Link.RTT, env.LatItems),
		Headers: []string{"servers", "op"},
	}
	t.Headers = append(t.Headers, Fig6Systems...)
	phases := []string{mdtest.PhaseMkdir, mdtest.PhaseTouch}
	for _, n := range env.Servers {
		perSys := map[string]map[string]time.Duration{}
		for _, sys := range Fig6Systems {
			sut, err := StartSystem(sys, n, env.Link)
			if err != nil {
				return nil, err
			}
			lat, err := latencies(sut, env.LatItems, 1, phases)
			sut.Close()
			if err != nil {
				return nil, err
			}
			perSys[sys] = lat
		}
		for _, op := range []string{mdtest.PhaseTouch, mdtest.PhaseMkdir} {
			row := []string{fmt.Sprint(n), op}
			for _, sys := range Fig6Systems {
				row = append(row, fmtRTT(perSys[sys][op], env.Link.RTT))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// fig7Phases are the operations of Figure 7, in paper order.
var fig7Phases = []string{
	mdtest.PhaseReaddir, mdtest.PhaseRmdir, mdtest.PhaseRemove,
	mdtest.PhaseDirStat, mdtest.PhaseFileStat,
}

// Fig7 reproduces "Latency Comparison for readdir, rmdir, rm, dir-stat and
// file-stat with 16 Metadata Servers", normalized to LocoFS-C.
//
// Paper shape: LocoFS's readdir/rmdir are comparable to Lustre/Gluster (it
// must consult every FMS); rm and the stats are lower than Lustre/Gluster;
// CephFS wins the stats outright thanks to its client inode cache.
func Fig7(env Env) (*Table, error) {
	n := env.MaxServers()
	t := &Table{
		Title:   fmt.Sprintf("Figure 7: op latency with %d metadata servers (normalized to LocoFS-C)", n),
		Note:    "single client; readdir scans a directory populated with the workload's files",
		Headers: append([]string{"op"}, Fig6Systems...),
	}
	all := []string{mdtest.PhaseMkdir, mdtest.PhaseTouch, mdtest.PhaseFileStat,
		mdtest.PhaseDirStat, mdtest.PhaseReaddir, mdtest.PhaseRemove, mdtest.PhaseRmdir}
	perSys := map[string]map[string]time.Duration{}
	for _, sys := range Fig6Systems {
		sut, err := StartSystem(sys, n, env.Link)
		if err != nil {
			return nil, err
		}
		lat, err := latencies(sut, env.LatItems, 1, all)
		sut.Close()
		if err != nil {
			return nil, err
		}
		perSys[sys] = lat
	}
	for _, op := range fig7Phases {
		base := perSys[SysLocoC][op]
		row := []string{op}
		for _, sys := range Fig6Systems {
			if base <= 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmtRatio(float64(perSys[sys][op])/float64(base)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig10 reproduces "Effects of Flattened Directory Tree": every system
// co-located with its client (zero network latency), isolating software
// path cost. IndexFS joins the lineup here, as in the paper.
//
// Paper shape: LocoFS lowest for mkdir/rmdir/touch/rm; IndexFS beats
// CephFS/Gluster (KV storage helps) but stays above LocoFS; the
// LocoFS-to-CephFS gap is wider than in Fig 6 (≈1/27 vs ≈1/6) because
// removing the network exposes software cost.
func Fig10(env Env) (*Table, error) {
	t := &Table{
		Title:   "Figure 10: co-located (no network) latency, single server",
		Note:    "zero-RTT link; mean modeled service latency per op",
		Headers: append([]string{"op"}, Fig10Systems...),
	}
	phases := []string{mdtest.PhaseMkdir, mdtest.PhaseTouch, mdtest.PhaseRemove, mdtest.PhaseRmdir}
	perSys := map[string]map[string]time.Duration{}
	for _, sys := range Fig10Systems {
		sut, err := StartSystem(sys, 1, netsim.Loopback)
		if err != nil {
			return nil, err
		}
		lat, err := latencies(sut, env.LatItems, 1, phases)
		sut.Close()
		if err != nil {
			return nil, err
		}
		perSys[sys] = lat
	}
	for _, op := range phases {
		row := []string{op}
		for _, sys := range Fig10Systems {
			row = append(row, fmtUS(perSys[sys][op]))
		}
		t.AddRow(row...)
	}
	return t, nil
}
