// hpcio reproduces the workload the paper's introduction motivates: an HPC
// application (think checkpoint/restart) where many ranks create and write
// files into a shared set of directories. It shows why the client
// directory-metadata cache matters — after one DMS lookup, every rank's
// creates go straight to the file metadata servers (one round trip each) —
// and how file creates scale across FMSs while the single DMS stays cold.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"locofs"
)

const (
	ranks         = 16
	filesPerRank  = 200
	checkpointDir = "/scratch/run42/ckpt"
)

func main() {
	cluster, err := locofs.Start(locofs.Options{
		FMSCount:  8,
		Link:      locofs.Paper1GbE,
		CostModel: &locofs.PaperKVCost,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Job setup: one rank lays out the checkpoint directory tree.
	setup, err := cluster.NewClient(locofs.ClientConfig{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"/scratch", "/scratch/run42", checkpointDir} {
		if err := setup.Mkdir(p, 0o777); err != nil {
			log.Fatal(err)
		}
	}
	setup.Close()

	// Each rank is an independent client writing its checkpoint shards.
	var wg sync.WaitGroup
	type rankStats struct {
		trips  uint64
		cost   time.Duration
		hits   uint64
		misses uint64
	}
	stats := make([]rankStats, ranks)
	start := time.Now()
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fs, err := cluster.NewClient(locofs.ClientConfig{UID: uint32(1000 + rank)})
			if err != nil {
				log.Fatal(err)
			}
			defer fs.Close()
			payload := make([]byte, 4096)
			for i := 0; i < filesPerRank; i++ {
				p := fmt.Sprintf("%s/rank%03d.shard%04d", checkpointDir, rank, i)
				if err := fs.Create(p, 0o644); err != nil {
					log.Fatalf("rank %d create: %v", rank, err)
				}
				f, err := fs.Open(p, true)
				if err != nil {
					log.Fatalf("rank %d open: %v", rank, err)
				}
				if _, err := f.WriteAt(payload, 0); err != nil {
					log.Fatalf("rank %d write: %v", rank, err)
				}
				f.Close()
			}
			hits, misses := fs.CacheStats()
			stats[rank] = rankStats{trips: fs.Trips(), cost: fs.Cost(), hits: hits, misses: misses}
		}(r)
	}
	wg.Wait()

	totalFiles := ranks * filesPerRank
	var trips, hits, misses uint64
	var cost time.Duration
	for _, s := range stats {
		trips += s.trips
		hits += s.hits
		misses += s.misses
		cost += s.cost
	}
	fmt.Printf("checkpoint: %d ranks x %d files = %d files in %v wall\n",
		ranks, filesPerRank, totalFiles, time.Since(start).Round(time.Millisecond))
	fmt.Printf("network round trips: %d total = %.2f per file (create+open+write+size)\n",
		trips, float64(trips)/float64(totalFiles))
	fmt.Printf("dir-cache: %d hits, %d misses — the checkpoint dir is resolved once per rank\n",
		hits, misses)
	fmt.Printf("modeled time per rank: %v (RTT %v link)\n",
		(cost / ranks).Round(time.Microsecond), locofs.Paper1GbE.RTT)

	// The single DMS served only the handful of lookups; file metadata
	// spread over all 8 FMSs.
	busy := cluster.ServerBusy()
	fmt.Printf("DMS busy: %v; busiest FMS: %v — the flat namespace keeps the DMS cold\n",
		busy[0].Round(time.Microsecond), maxOf(busy[1:9]).Round(time.Microsecond))
}

func maxOf(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
