// Package slo turns the windowed telemetry of a LocoFS process into
// service-level-objective tracking: each operation class declares a latency
// objective (a target at a percentile plus an error budget — the allowed
// fraction of events over the target), and the rotating-window histograms
// already recorded by the RPC and client layers yield per-window good/bad
// event counts, a burn rate ("at this rate, how fast is the budget being
// consumed?") and the remaining lifetime error budget.
//
// The package is deliberately read-only over internal/telemetry: nothing on
// a hot path records into it. Evaluation walks registry snapshots on
// demand (admin scrape, /debug/slo, the cluster aggregator), so the cost of
// SLO tracking is paid by the observer, not the serving path.
package slo

import (
	"time"

	"locofs/internal/telemetry"
)

// Metric families the default objectives watch. They mirror the constants
// in internal/rpc (not imported, to keep slo's dependency surface at
// telemetry only).
const (
	MetricService = "locofs_rpc_service_seconds"
	MetricQueue   = "locofs_rpc_queue_seconds"
	MetricRTT     = "locofs_client_rtt_seconds"
)

// Objective is one op class's latency target: at most Budget of events may
// exceed Target, judged at Percentile for the headline latency number.
type Objective struct {
	// Class names the objective (e.g. "md_read").
	Class string `json:"class"`
	// Metric is the histogram family watched (MetricService on servers,
	// MetricRTT on clients).
	Metric string `json:"metric"`
	// Target is the latency objective: events slower than this are "bad".
	Target time.Duration `json:"target_ns"`
	// Percentile is the headline quantile reported against Target (e.g.
	// 0.95 → "p95 must be under Target").
	Percentile float64 `json:"percentile"`
	// Budget is the allowed bad-event fraction (e.g. 0.01 → 99% of events
	// within Target).
	Budget float64 `json:"budget"`
	// Ops restricts the objective to these op labels; empty means every op
	// the classifier maps to Class (see ClassOf), and nil Ops with an
	// unknown Class means every op in the family.
	Ops []string `json:"ops,omitempty"`
}

// covers reports whether the objective includes op.
func (o Objective) covers(op string) bool {
	if len(o.Ops) > 0 {
		for _, x := range o.Ops {
			if x == op {
				return true
			}
		}
		return false
	}
	if c := ClassOf(op); c != classOther {
		return c == o.Class
	}
	return false
}

// Operation classes: metadata reads, metadata mutations, data-path ops, and
// everything else (control plane, migration, batching).
const (
	ClassMDRead   = "md_read"
	ClassMDMutate = "md_mutate"
	ClassData     = "data"
	classOther    = "other"
)

// ClassOf maps a wire op name to its SLO class.
func ClassOf(op string) string {
	switch op {
	case "StatDir", "ReaddirSubdirs", "LookupDir", "StatFile", "OpenFile",
		"ReaddirFiles", "DirHasFiles", "AccessFile":
		return ClassMDRead
	case "Mkdir", "Rmdir", "RenameDir", "ChmodDir", "ChownDir",
		"CreateFile", "RemoveFile", "CloseFile", "ChmodFile", "ChownFile",
		"UtimensFile", "TruncateFile", "UpdateSize", "RenameFile",
		"RemoveDirFiles":
		return ClassMDMutate
	case "PutBlock", "GetBlock", "DeleteBlocks":
		return ClassData
	default:
		return classOther
	}
}

// ServerObjectives is the default objective set for a metadata/data server,
// judged on handler service time: metadata reads p95 ≤ 1 ms, metadata
// mutations p95 ≤ 5 ms, data ops p95 ≤ 20 ms, each with a 1% error budget.
// (The paper's metadata path runs in tens of microseconds; the targets
// leave headroom for queueing before the budget burns.)
func ServerObjectives() []Objective {
	return []Objective{
		{Class: ClassMDRead, Metric: MetricService, Target: time.Millisecond, Percentile: 0.95, Budget: 0.01},
		{Class: ClassMDMutate, Metric: MetricService, Target: 5 * time.Millisecond, Percentile: 0.95, Budget: 0.01},
		{Class: ClassData, Metric: MetricService, Target: 20 * time.Millisecond, Percentile: 0.95, Budget: 0.01},
	}
}

// ClientObjectives is the default objective set for a client, judged on
// wall-clock round trips (link + queue + service + retries).
func ClientObjectives() []Objective {
	return []Objective{
		{Class: ClassMDRead, Metric: MetricRTT, Target: 5 * time.Millisecond, Percentile: 0.95, Budget: 0.01},
		{Class: ClassMDMutate, Metric: MetricRTT, Target: 10 * time.Millisecond, Percentile: 0.95, Budget: 0.01},
		{Class: ClassData, Metric: MetricRTT, Target: 50 * time.Millisecond, Percentile: 0.95, Budget: 0.01},
	}
}

// ClassStatus is one objective's evaluation: the time-local window view
// (burn rate) plus the lifetime budget position. Latencies are float
// seconds for JSON readability; Buckets carries the windowed log-bucket
// counts so cluster-level merges recompute quantiles exactly rather than
// averaging percentiles.
type ClassStatus struct {
	Class      string  `json:"class"`
	Metric     string  `json:"metric"`
	TargetSec  float64 `json:"target_s"`
	Percentile float64 `json:"percentile"`
	Budget     float64 `json:"budget"`

	// Windowed (time-local) view.
	WindowCount uint64   `json:"window_count"`
	WindowBad   uint64   `json:"window_bad"`
	WindowPSec  float64  `json:"window_p_s"` // measured latency at Percentile
	RatePerSec  float64  `json:"rate_per_sec"`
	CoveredSec  float64  `json:"covered_s"`
	BurnRate    float64  `json:"burn_rate"` // bad-fraction / budget; 1.0 = burning exactly at budget
	Met         bool     `json:"met"`
	Buckets     []uint64 `json:"buckets,omitempty"`
	SumSec      float64  `json:"sum_s"`
	MaxSec      float64  `json:"max_s"`

	// Lifetime view.
	TotalCount      uint64  `json:"total_count"`
	TotalBad        uint64  `json:"total_bad"`
	BudgetRemaining float64 `json:"budget_remaining"` // 1 = untouched, 0 = exhausted, <0 = overspent
}

// Tracker evaluates a set of objectives against one registry.
type Tracker struct {
	reg  *telemetry.Registry
	objs []Objective
}

// NewTracker builds a tracker over reg. A nil/empty objective set means
// ServerObjectives.
func NewTracker(reg *telemetry.Registry, objs []Objective) *Tracker {
	if len(objs) == 0 {
		objs = ServerObjectives()
	}
	return &Tracker{reg: reg, objs: objs}
}

// Objectives returns the tracked objective set.
func (t *Tracker) Objectives() []Objective { return t.objs }

// Eval computes every objective's current status from the registry's
// windowed and cumulative histograms.
func (t *Tracker) Eval() []ClassStatus {
	wins := t.reg.WindowMetrics()
	// HistogramMetrics, not Snapshot: Eval runs inside the gauge callbacks
	// Export registers, and Snapshot invokes gauges — recursion otherwise.
	cums := t.reg.HistogramMetrics()
	out := make([]ClassStatus, 0, len(t.objs))
	for _, o := range t.objs {
		var wm telemetry.HistSnapshot
		var covered time.Duration
		for _, w := range wins {
			if w.Name != o.Metric || !o.covers(telemetry.LabelValue(w.Labels, "op")) {
				continue
			}
			wm = mergeHist(wm, w.Win.Merged)
			if w.Win.Covered > covered {
				covered = w.Win.Covered
			}
		}
		var tm telemetry.HistSnapshot
		for _, m := range cums {
			if m.Name != o.Metric || !o.covers(telemetry.LabelValue(m.Labels, "op")) {
				continue
			}
			tm = mergeHist(tm, m.Hist)
		}
		out = append(out, evalClass(o, wm, covered, tm))
	}
	return out
}

// evalClass scores one objective from its merged windowed and lifetime
// distributions.
func evalClass(o Objective, win telemetry.HistSnapshot, covered time.Duration, life telemetry.HistSnapshot) ClassStatus {
	cs := ClassStatus{
		Class:      o.Class,
		Metric:     o.Metric,
		TargetSec:  o.Target.Seconds(),
		Percentile: o.Percentile,
		Budget:     o.Budget,
		Met:        true,
	}
	cs.WindowCount = win.Count
	cs.WindowBad = win.Count - win.CountAtMost(o.Target)
	cs.WindowPSec = win.Quantile(o.Percentile).Seconds()
	cs.CoveredSec = covered.Seconds()
	cs.SumSec = win.Sum.Seconds()
	cs.MaxSec = win.Max.Seconds()
	cs.Buckets = TrimBuckets(win.Buckets[:])
	if covered > 0 {
		cs.RatePerSec = float64(win.Count) / covered.Seconds()
	}
	if win.Count > 0 && o.Budget > 0 {
		cs.BurnRate = (float64(cs.WindowBad) / float64(win.Count)) / o.Budget
		cs.Met = cs.BurnRate <= 1
	}
	cs.TotalCount = life.Count
	cs.TotalBad = life.Count - life.CountAtMost(o.Target)
	cs.BudgetRemaining = 1
	if life.Count > 0 && o.Budget > 0 {
		cs.BudgetRemaining = 1 - (float64(cs.TotalBad)/float64(life.Count))/o.Budget
	}
	return cs
}

// MergeClassStatuses combines the same objective evaluated on several
// servers into one cluster-level status: event counts add, the headline
// percentile is recomputed from the summed log buckets, and burn/budget are
// re-derived from the totals.
func MergeClassStatuses(statuses []ClassStatus) ClassStatus {
	if len(statuses) == 0 {
		return ClassStatus{Met: true, BudgetRemaining: 1}
	}
	out := statuses[0]
	win := HistFromBuckets(statuses[0].Buckets, statuses[0].SumSec, statuses[0].MaxSec)
	for _, cs := range statuses[1:] {
		out.WindowCount += cs.WindowCount
		out.WindowBad += cs.WindowBad
		out.TotalCount += cs.TotalCount
		out.TotalBad += cs.TotalBad
		if cs.CoveredSec > out.CoveredSec {
			out.CoveredSec = cs.CoveredSec
		}
		win = mergeHist(win, HistFromBuckets(cs.Buckets, cs.SumSec, cs.MaxSec))
	}
	out.WindowPSec = win.Quantile(out.Percentile).Seconds()
	out.SumSec = win.Sum.Seconds()
	out.MaxSec = win.Max.Seconds()
	out.Buckets = TrimBuckets(win.Buckets[:])
	out.RatePerSec = 0
	if out.CoveredSec > 0 {
		out.RatePerSec = float64(out.WindowCount) / out.CoveredSec
	}
	out.BurnRate = 0
	out.Met = true
	if out.WindowCount > 0 && out.Budget > 0 {
		out.BurnRate = (float64(out.WindowBad) / float64(out.WindowCount)) / out.Budget
		out.Met = out.BurnRate <= 1
	}
	out.BudgetRemaining = 1
	if out.TotalCount > 0 && out.Budget > 0 {
		out.BudgetRemaining = 1 - (float64(out.TotalBad)/float64(out.TotalCount))/out.Budget
	}
	return out
}

// Export registers the tracker's headline numbers as gauges on reg, sampled
// at scrape time:
//
//	locofs_slo_burn_rate{class=...}
//	locofs_slo_budget_remaining{class=...}
//	locofs_slo_window_p_seconds{class=...}
func (t *Tracker) Export(reg *telemetry.Registry) {
	for _, o := range t.objs {
		o := o
		label := telemetry.L("class", o.Class)
		pick := func(get func(ClassStatus) float64) func() float64 {
			return func() float64 {
				for _, cs := range t.Eval() {
					if cs.Class == o.Class && cs.Metric == o.Metric {
						return get(cs)
					}
				}
				return 0
			}
		}
		reg.GaugeFunc("locofs_slo_burn_rate", pick(func(cs ClassStatus) float64 { return cs.BurnRate }), label)
		reg.GaugeFunc("locofs_slo_budget_remaining", pick(func(cs ClassStatus) float64 { return cs.BudgetRemaining }), label)
		reg.GaugeFunc("locofs_slo_window_p_seconds", pick(func(cs ClassStatus) float64 { return cs.WindowPSec }), label)
	}
}

// mergeHist adds two distributions bucket-wise.
func mergeHist(a, b telemetry.HistSnapshot) telemetry.HistSnapshot {
	var s telemetry.HistSnapshot
	var n uint64
	for i := range a.Buckets {
		s.Buckets[i] = a.Buckets[i] + b.Buckets[i]
		n += s.Buckets[i]
	}
	s.Count = n
	s.Sum = a.Sum + b.Sum
	s.Max = a.Max
	if b.Max > s.Max {
		s.Max = b.Max
	}
	return s
}

// TrimBuckets drops trailing zero buckets so JSON stays compact; missing
// tail buckets read as zero on the way back in.
func TrimBuckets(b []uint64) []uint64 {
	top := -1
	for i, c := range b {
		if c > 0 {
			top = i
		}
	}
	if top < 0 {
		return nil
	}
	out := make([]uint64, top+1)
	copy(out, b[:top+1])
	return out
}

// HistFromBuckets reconstructs a distribution from trimmed log buckets plus
// its sum and max (in seconds) — the inverse of the OpWindow/ClassStatus
// wire form, used for exact cross-server quantile merging.
func HistFromBuckets(buckets []uint64, sumSec, maxSec float64) telemetry.HistSnapshot {
	var s telemetry.HistSnapshot
	var n uint64
	for i, c := range buckets {
		if i >= telemetry.NumBuckets {
			break
		}
		s.Buckets[i] = c
		n += c
	}
	s.Count = n
	s.Sum = time.Duration(sumSec * float64(time.Second))
	s.Max = time.Duration(maxSec * float64(time.Second))
	return s
}
