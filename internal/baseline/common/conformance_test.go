package common_test

import (
	"fmt"
	"testing"
	"time"

	"locofs/internal/baseline/cephfs"
	"locofs/internal/baseline/common"
	"locofs/internal/baseline/glusterfs"
	"locofs/internal/baseline/indexfs"
	"locofs/internal/baseline/lustrefs"
	"locofs/internal/core"
	"locofs/internal/fsapi"
	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// fastProfileNet returns a zero-latency fabric so conformance tests run at
// full speed. Baseline service sleeps still apply but the workloads are
// small.
func fastNet() *netsim.Network { return netsim.NewNetwork(netsim.Loopback) }

// eachSystem runs fn once per system under test with a fresh 4-server
// deployment and one client.
func eachSystem(t *testing.T, fn func(t *testing.T, fs fsapi.ExtendedFS)) {
	t.Helper()
	systems := []struct {
		name  string
		build func(t *testing.T) fsapi.ExtendedFS
	}{
		{"locofs", func(t *testing.T) fsapi.ExtendedFS {
			cluster, err := core.Start(core.Options{FMSCount: 4})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cluster.Close)
			cl, err := cluster.NewClient(core.ClientConfig{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			return fsapi.LocoFS{C: cl}
		}},
		{"indexfs", func(t *testing.T) fsapi.ExtendedFS {
			n := fastNet()
			t.Cleanup(func() { n.Close() })
			sys, err := indexfs.Start(n, 4, netsim.Loopback)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sys.Close)
			cl, err := sys.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			return cl
		}},
		{"cephfs", func(t *testing.T) fsapi.ExtendedFS {
			n := fastNet()
			t.Cleanup(func() { n.Close() })
			sys, err := cephfs.Start(n, 4, netsim.Loopback)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sys.Close)
			cl, err := sys.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			return cl
		}},
		{"gluster", func(t *testing.T) fsapi.ExtendedFS {
			n := fastNet()
			t.Cleanup(func() { n.Close() })
			sys, err := glusterfs.Start(n, 4, netsim.Loopback)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sys.Close)
			cl, err := sys.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			return cl
		}},
		{"lustre-d1", func(t *testing.T) fsapi.ExtendedFS {
			n := fastNet()
			t.Cleanup(func() { n.Close() })
			sys, err := lustrefs.Start(n, 4, lustrefs.DNE1, netsim.Loopback)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sys.Close)
			cl, err := sys.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			return cl
		}},
		{"lustre-d2", func(t *testing.T) fsapi.ExtendedFS {
			n := fastNet()
			t.Cleanup(func() { n.Close() })
			sys, err := lustrefs.Start(n, 4, lustrefs.DNE2, netsim.Loopback)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sys.Close)
			cl, err := sys.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			return cl
		}},
	}
	for _, sys := range systems {
		t.Run(sys.name, func(t *testing.T) {
			fn(t, sys.build(t))
		})
	}
}

// TestConformanceBasicTree: every system must pass the same create/stat/
// readdir/remove scenario the workloads rely on.
func TestConformanceBasicTree(t *testing.T) {
	eachSystem(t, func(t *testing.T, fs fsapi.ExtendedFS) {
		if err := fs.Mkdir("/work", 0o755); err != nil {
			t.Fatalf("mkdir /work: %v", err)
		}
		if err := fs.Mkdir("/work/sub", 0o755); err != nil {
			t.Fatalf("mkdir /work/sub: %v", err)
		}
		for i := 0; i < 10; i++ {
			if err := fs.Create(fmt.Sprintf("/work/f%d", i), 0o644); err != nil {
				t.Fatalf("create f%d: %v", i, err)
			}
		}
		if err := fs.StatDir("/work"); err != nil {
			t.Errorf("statdir /work: %v", err)
		}
		if err := fs.StatFile("/work/f3"); err != nil {
			t.Errorf("statfile f3: %v", err)
		}
		if err := fs.StatFile("/work/missing"); wire.StatusOf(err) != wire.StatusNotFound {
			t.Errorf("statfile missing = %v, want ENOENT", err)
		}
		n, err := fs.Readdir("/work")
		if err != nil {
			t.Fatalf("readdir: %v", err)
		}
		if n != 11 { // 10 files + 1 subdir
			t.Errorf("readdir count = %d, want 11", n)
		}
		for i := 0; i < 10; i++ {
			if err := fs.Remove(fmt.Sprintf("/work/f%d", i)); err != nil {
				t.Fatalf("remove f%d: %v", i, err)
			}
		}
		if err := fs.Rmdir("/work"); wire.StatusOf(err) != wire.StatusNotEmpty {
			t.Errorf("rmdir with subdir = %v, want ENOTEMPTY", err)
		}
		if err := fs.Rmdir("/work/sub"); err != nil {
			t.Fatalf("rmdir sub: %v", err)
		}
		if err := fs.Rmdir("/work"); err != nil {
			t.Fatalf("rmdir work: %v", err)
		}
	})
}

func TestConformanceErrors(t *testing.T) {
	eachSystem(t, func(t *testing.T, fs fsapi.ExtendedFS) {
		if err := fs.Mkdir("/d", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fs.Mkdir("/d", 0o755); wire.StatusOf(err) != wire.StatusExist {
			t.Errorf("dup mkdir = %v, want EEXIST", err)
		}
		if err := fs.Create("/nodir/f", 0o644); wire.StatusOf(err) != wire.StatusNotFound {
			t.Errorf("create in missing dir = %v, want ENOENT", err)
		}
		if err := fs.Create("/d/f", 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fs.Create("/d/f", 0o644); wire.StatusOf(err) != wire.StatusExist {
			t.Errorf("dup create = %v, want EEXIST", err)
		}
		if err := fs.Rmdir("/d"); wire.StatusOf(err) != wire.StatusNotEmpty {
			t.Errorf("rmdir non-empty = %v, want ENOTEMPTY", err)
		}
	})
}

func TestConformanceExtendedOps(t *testing.T) {
	eachSystem(t, func(t *testing.T, fs fsapi.ExtendedFS) {
		fs.Mkdir("/x", 0o755)
		fs.Create("/x/f", 0o644)
		if err := fs.Chmod("/x/f", 0o600); err != nil {
			t.Errorf("chmod: %v", err)
		}
		if err := fs.Chown("/x/f", 5, 5); err != nil {
			t.Errorf("chown: %v", err)
		}
		if err := fs.Truncate("/x/f", 4096); err != nil {
			t.Errorf("truncate: %v", err)
		}
		if err := fs.Access("/x/f"); err != nil {
			t.Errorf("access: %v", err)
		}
		if err := fs.Chmod("/x/missing", 0o600); wire.StatusOf(err) != wire.StatusNotFound {
			t.Errorf("chmod missing = %v, want ENOENT", err)
		}
	})
}

func TestConformanceDeepPaths(t *testing.T) {
	eachSystem(t, func(t *testing.T, fs fsapi.ExtendedFS) {
		p := ""
		for d := 0; d < 8; d++ {
			p = fmt.Sprintf("%s/d%d", p, d)
			if err := fs.Mkdir(p, 0o755); err != nil {
				t.Fatalf("mkdir %s: %v", p, err)
			}
		}
		leaf := p + "/leaf.txt"
		if err := fs.Create(leaf, 0o644); err != nil {
			t.Fatalf("create %s: %v", leaf, err)
		}
		if err := fs.StatFile(leaf); err != nil {
			t.Errorf("stat deep file: %v", err)
		}
		if n, err := fs.Readdir(p); err != nil || n != 1 {
			t.Errorf("readdir deep dir = %d, %v", n, err)
		}
	})
}

// TestGenericServerOps exercises the shared baseline server ops directly.
func TestGenericServerOps(t *testing.T) {
	n := fastNet()
	defer n.Close()
	cluster, err := common.StartCluster(n, 2, common.Profile{Name: "plain"}, func() kv.Store {
		return kv.NewHashStore()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	conn, err := common.DialCluster(n, cluster.Addrs, netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if st, err := conn.Put(0, []byte("k"), []byte("v")); err != nil || st != wire.StatusOK {
		t.Fatalf("Put = %v, %v", st, err)
	}
	v, st, err := conn.Get(0, []byte("k"))
	if err != nil || st != wire.StatusOK || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, st, err)
	}
	if _, st, _ := conn.Get(1, []byte("k")); st != wire.StatusNotFound {
		t.Errorf("Get on other server = %v, want ENOENT (servers must be independent)", st)
	}
	if st, _ := conn.CreateX(0, []byte("k"), []byte("w")); st != wire.StatusExist {
		t.Errorf("CreateX existing = %v, want EEXIST", st)
	}
	if st, _ := conn.CreateX(0, []byte("k2"), []byte("w")); st != wire.StatusOK {
		t.Errorf("CreateX fresh = %v", st)
	}
	ok, err := conn.Exists(0, []byte("k2"))
	if err != nil || !ok {
		t.Errorf("Exists = %v, %v", ok, err)
	}
	conn.Put(0, []byte("p/a"), nil)
	conn.Put(0, []byte("p/b"), nil)
	names, err := conn.ListPrefix(0, []byte("p/"))
	if err != nil || len(names) != 2 {
		t.Errorf("ListPrefix = %v, %v", names, err)
	}
	cnt, err := conn.CountPrefix(0, []byte("p/"))
	if err != nil || cnt != 2 {
		t.Errorf("CountPrefix = %d, %v", cnt, err)
	}
	del, err := conn.DelPrefix(0, []byte("p/"))
	if err != nil || del != 2 {
		t.Errorf("DelPrefix = %d, %v", del, err)
	}
	if st, _ := conn.Del(0, []byte("k")); st != wire.StatusOK {
		t.Errorf("Del = %v", st)
	}
	if st, _ := conn.Del(0, []byte("k")); st != wire.StatusNotFound {
		t.Errorf("Del missing = %v, want ENOENT", st)
	}
	if conn.N() != 2 {
		t.Errorf("N = %d", conn.N())
	}
	if conn.Trips() == 0 {
		t.Error("Trips not counted")
	}
}

func TestHashServerStableAndInRange(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for _, k := range []string{"/", "/a", "/a/b", "deep/path/name"} {
			got := common.HashServer(k, n)
			if got < 0 || got >= n {
				t.Fatalf("HashServer(%q, %d) = %d out of range", k, n, got)
			}
			if got != common.HashServer(k, n) {
				t.Fatal("HashServer not deterministic")
			}
		}
	}
}

func TestLeaseCache(t *testing.T) {
	c := common.NewLeaseCache(time.Hour)
	c.Put("/a", []byte("v"))
	if v, ok := c.Get("/a"); !ok || string(v) != "v" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if !c.Has("/a") || c.Has("/b") {
		t.Error("Has misbehaves")
	}
	c.Drop("/a")
	if c.Has("/a") {
		t.Error("Drop did not remove entry")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}
