package wire

import (
	"testing"

	"locofs/internal/uuid"
)

// encodeTypical builds a body shaped like the metadata hot path's (a create:
// uuid, name, three u32s, bool).
func encodeTypical(e *Enc) []byte {
	return e.UUID(uuid.UUID{1, 2, 3}).Str("file-name-0001").
		U32(0o644).U32(1000).U32(1000).Bool(false).Bytes()
}

// TestPooledEncReusesBuffer guards the sync.Pool satellite: once the pool is
// warm, a Get/encode/Free cycle must not allocate a fresh buffer per
// request.
func TestPooledEncReusesBuffer(t *testing.T) {
	for i := 0; i < 8; i++ { // warm the pool
		e := GetEnc()
		encodeTypical(e)
		e.Free()
	}
	allocs := testing.AllocsPerRun(200, func() {
		e := GetEnc()
		encodeTypical(e)
		e.Free()
	})
	if allocs >= 1 {
		t.Errorf("pooled encode allocates %.1f objects per op, want < 1", allocs)
	}
}

// TestEncFreeDropsHugeBuffers: encoders grown past maxPooledCap must not be
// retained (they would pin large buffers forever).
func TestEncFreeDropsHugeBuffers(t *testing.T) {
	e := GetEnc()
	e.Blob(make([]byte, maxPooledCap+1))
	e.Free()
	got := GetEnc()
	defer got.Free()
	if cap(got.b) > maxPooledCap {
		t.Errorf("pool retained a %d-byte buffer, cap is %d", cap(got.b), maxPooledCap)
	}
}

func BenchmarkEncFresh(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		encodeTypical(NewEnc())
	}
}

func BenchmarkEncPooled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEnc()
		encodeTypical(e)
		e.Free()
	}
}
