package telemetry

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a goroutine-safe injectable clock for deterministic rotation.
type fakeClock struct{ ns atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ns.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	return c
}
func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

func TestWindowedRotationAndMerge(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowed(&Histogram{}, WindowConfig{Width: time.Second, Num: 3})
	w.SetNow(clk.Now)

	// Window 0: 10 fast observations.
	for i := 0; i < 10; i++ {
		w.Record(100 * time.Microsecond)
	}
	clk.Advance(time.Second)
	// Window 1: 5 slow observations.
	for i := 0; i < 5; i++ {
		w.Record(50 * time.Millisecond)
	}
	s := w.Snapshot()
	if s.Merged.Count != 15 {
		t.Fatalf("merged count = %d, want 15", s.Merged.Count)
	}
	if len(s.Windows) != 2 {
		t.Fatalf("windows = %d, want 2 (one closed + live)", len(s.Windows))
	}
	if c := s.Windows[0].Hist.Count; c != 10 {
		t.Errorf("closed window count = %d, want 10", c)
	}
	if c := s.Windows[1].Hist.Count; c != 5 {
		t.Errorf("live window count = %d, want 5", c)
	}
	if m := s.Windows[0].Hist.Max; m >= time.Millisecond {
		t.Errorf("closed window max = %v, want the fast window's ~100µs", m)
	}

	// Advance until the slow window ages out of the 3-window ring: the
	// merged max must drop back — the monotone lifetime max must not pin it.
	clk.Advance(4 * time.Second)
	w.Record(200 * time.Microsecond)
	s = w.Snapshot()
	if s.Merged.Count != 1 {
		t.Fatalf("after aging, merged count = %d, want 1", s.Merged.Count)
	}
	if s.Merged.Max >= time.Millisecond {
		t.Errorf("after aging, merged max = %v; slow spike should have aged out", s.Merged.Max)
	}
	if lt := w.Hist().Snapshot(); lt.Count != 16 || lt.Max < 50*time.Millisecond {
		t.Errorf("lifetime histogram disturbed: count=%d max=%v", lt.Count, lt.Max)
	}
}

// TestWindowedConservation hammers Record concurrently with rotation and
// asserts no observation is ever lost or double-counted: with a ring wide
// enough that nothing ages out, the merged windowed count must equal the
// cumulative histogram's exactly.
func TestWindowedConservation(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowed(&Histogram{}, WindowConfig{Width: 10 * time.Millisecond, Num: 10000})
	w.SetNow(clk.Now)

	const writers = 8
	const perWriter = 5000
	var writeWG, rotWG sync.WaitGroup
	stop := make(chan struct{})
	// Rotator: advance the clock continuously so rotations race the writers.
	rotWG.Add(1)
	go func() {
		defer rotWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(3 * time.Millisecond)
				w.Snapshot()
			}
		}
	}()
	for g := 0; g < writers; g++ {
		writeWG.Add(1)
		go func(g int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				w.Record(time.Duration(g*1000+i) * time.Nanosecond)
			}
		}(g)
	}
	writeWG.Wait()
	close(stop)
	rotWG.Wait()

	s := w.Snapshot()
	want := uint64(writers * perWriter)
	if s.Merged.Count != want {
		t.Fatalf("merged count = %d, want %d (counts must be conserved across rotation)", s.Merged.Count, want)
	}
	var sum uint64
	for _, ws := range s.Windows {
		sum += ws.Hist.Count
	}
	if sum != want {
		t.Fatalf("sum of window counts = %d, want %d", sum, want)
	}
}

func TestWindowedIdleGapResets(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowed(&Histogram{}, WindowConfig{Width: time.Second, Num: 4})
	w.SetNow(clk.Now)
	w.Record(time.Millisecond)
	// Idle far longer than the whole span: the ring restarts empty rather
	// than looping per elapsed window.
	clk.Advance(time.Hour)
	s := w.Snapshot()
	if s.Merged.Count != 0 {
		t.Fatalf("after idle gap, merged count = %d, want 0", s.Merged.Count)
	}
	if w.Hist().Count() != 1 {
		t.Fatalf("lifetime count = %d, want 1", w.Hist().Count())
	}
}

func TestWindowedRate(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowed(&Histogram{}, WindowConfig{Width: time.Second, Num: 3})
	w.SetNow(clk.Now)
	for i := 0; i < 100; i++ {
		w.Record(time.Microsecond)
	}
	clk.Advance(time.Second) // one full closed window, empty live window
	s := w.Snapshot()
	rate := s.Rate()
	if rate < 90 || rate > 110 {
		t.Fatalf("rate = %v ev/s, want ~100", rate)
	}
}

func TestRegistryWindowGauges(t *testing.T) {
	r := NewRegistry(L("server", "fms-0"))
	r.SetWindow(WindowConfig{Width: time.Minute, Num: 2})
	w := r.Windowed("locofs_rpc_service_seconds", L("op", "Mkdir"))
	for i := 0; i < 50; i++ {
		w.Record(2 * time.Millisecond)
	}
	// Same key returns the same window, and the cumulative histogram is the
	// registry's.
	if r.Windowed("locofs_rpc_service_seconds", L("op", "Mkdir")) != w {
		t.Fatal("Windowed not idempotent per key")
	}
	if r.Histogram("locofs_rpc_service_seconds", L("op", "Mkdir")) != w.Hist() {
		t.Fatal("Windowed does not wrap the registered histogram")
	}

	var sb strings.Builder
	if err := r.Snapshot().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`locofs_rpc_service_seconds_window{op="Mkdir",server="fms-0",q="0.95"}`,
		`locofs_rpc_service_seconds_window_rate{op="Mkdir",server="fms-0"}`,
		`locofs_rpc_service_seconds_window_max{op="Mkdir",server="fms-0"}`,
		`locofs_rpc_service_seconds_count{op="Mkdir",server="fms-0"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}

	wm := r.WindowMetrics()
	if len(wm) != 1 || wm[0].Name != "locofs_rpc_service_seconds" || wm[0].Win.Merged.Count != 50 {
		t.Fatalf("WindowMetrics = %+v, want one entry with 50 observations", wm)
	}
	if op := LabelValue(wm[0].Labels, "op"); op != "Mkdir" {
		t.Fatalf("LabelValue(op) = %q", op)
	}

	if !r.Unregister("locofs_rpc_service_seconds", L("op", "Mkdir")) {
		t.Fatal("Unregister found nothing")
	}
	if len(r.WindowMetrics()) != 0 {
		t.Fatal("window survived Unregister")
	}
}

func TestCountAtMost(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Record(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(80 * time.Millisecond)
	}
	s := h.Snapshot()
	if n := s.CountAtMost(time.Millisecond); n < 85 || n > 95 {
		t.Errorf("CountAtMost(1ms) = %d, want ~90", n)
	}
	if n := s.CountAtMost(time.Second); n != 100 {
		t.Errorf("CountAtMost(1s) = %d, want 100", n)
	}
	if n := s.CountAtMost(0); n != 0 {
		t.Errorf("CountAtMost(0) = %d, want 0", n)
	}
}

func TestBuildInfoGauges(t *testing.T) {
	r := NewRegistry(L("server", "dms"))
	RegisterBuildInfo(r)
	var sb strings.Builder
	if err := r.Snapshot().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `locofs_build_info{go="`) || !strings.Contains(out, `version="dev"`) {
		t.Errorf("missing build info gauge:\n%s", out)
	}
	if !strings.Contains(out, "locofs_uptime_seconds") {
		t.Errorf("missing uptime gauge:\n%s", out)
	}
}
