package client

import (
	"testing"
	"time"

	"locofs/internal/dms"
	"locofs/internal/fms"
	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/rpc"
	"locofs/internal/telemetry"
)

// TestClientSurvivesServerRestart: an FMS is shut down and restarted (on
// the same durable store, as locofsd -data would); the client's next
// operation transparently reconnects and succeeds.
func TestClientSurvivesServerRestart(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })

	serve := func(addr string, attach func(*rpc.Server)) *rpc.Server {
		rs := rpc.NewServer()
		attach(rs)
		l, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		go rs.Serve(l)
		return rs
	}
	serve("dms", dms.New(dms.Options{}).Attach)
	fmsStore := kv.NewHashStore() // shared "durable" state across restarts
	fmsServer := serve("fms-0", fms.New(fms.Options{Store: fmsStore, ServerID: 1}).Attach)
	serve("oss", objstore.New(nil).Attach)

	c, err := Dial(Config{
		Dialer:   n,
		DMSAddr:  "dms",
		FMSAddrs: []string{"fms-0"},
		OSSAddrs: []string{"oss"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/d/before", 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart the FMS on the same address and store.
	fmsServer.Shutdown()
	serve("fms-0", fms.New(fms.Options{Store: fmsStore, ServerID: 1}).Attach)

	// The client's first call may race the connection teardown; the
	// endpoint retries once per call, so within a couple of attempts the
	// new server must be reachable — and the old state visible.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = c.StatFile("/d/before")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after restart: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Create("/d/after", 0o644); err != nil {
		t.Fatalf("create after restart: %v", err)
	}
	if _, err := c.StatFile("/d/after"); err != nil {
		t.Fatalf("stat after restart: %v", err)
	}
	// Counters survived the generation change.
	if c.Trips() == 0 {
		t.Error("trip counter lost across reconnect")
	}
}

// TestEndpointRetryPreservesCounters unit-tests the endpoint generation
// accounting.
func TestEndpointRetryPreservesCounters(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	t.Cleanup(func() { n.Close() })
	rs1 := rpc.NewServer()
	l, _ := n.Listen("srv")
	go rs1.Serve(l)

	e, err := dialEndpoint(n, "srv", netsim.LinkConfig{RTT: time.Millisecond},
		&clientTelem{reg: telemetry.NewRegistry()},
		newResilience(0, RetryPolicy{}, BreakerConfig{}, nil), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 5; i++ {
		if _, _, err := e.Call(1, nil); err != nil { // OpPing
			t.Fatal(err)
		}
	}
	t1 := e.Trips()
	v1 := e.VirtualTime()
	if t1 != 5 || v1 < 5*time.Millisecond {
		t.Fatalf("pre-restart counters: trips=%d virt=%v", t1, v1)
	}
	rs1.Shutdown()
	rs2 := rpc.NewServer()
	l2, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go rs2.Serve(l2)
	defer rs2.Shutdown()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := e.Call(1, nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("endpoint never reconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if e.Trips() <= t1 {
		t.Errorf("trips not cumulative: %d then %d", t1, e.Trips())
	}
	if e.VirtualTime() <= v1 {
		t.Errorf("virtual time not cumulative: %v then %v", v1, e.VirtualTime())
	}
	// A closed endpoint refuses calls.
	e.Close()
	if _, _, err := e.Call(1, nil); err == nil {
		t.Error("call on closed endpoint succeeded")
	}
}
