package bench

import (
	"fmt"
	"time"

	"locofs/internal/core"
	"locofs/internal/mdtest"
)

// fig8Phases are the operations of Figure 8.
var fig8Phases = []string{
	mdtest.PhaseMkdir, mdtest.PhaseTouch, mdtest.PhaseFileStat,
	mdtest.PhaseDirStat, mdtest.PhaseRemove, mdtest.PhaseRmdir,
}

// Fig8 reproduces "Throughput Comparison of touch, mkdir, rm, rmdir,
// file-stat and dir-stat": modeled IOPS per system as metadata servers
// scale from 1 to 16, using (scaled) Table 3 client counts.
//
// Paper shape: LocoFS leads touch/rm at every scale and mkdir/rmdir at one
// server (~100K create IOPS); Lustre's mkdir scales better than LocoFS's
// (one DMS vs many MDTs); LocoFS's rmdir scales poorly (it must probe every
// FMS); CephFS wins the stats via its client cache.
func Fig8(env Env) (*Table, error) {
	t := &Table{
		Title:   "Figure 8: metadata throughput vs #metadata servers (modeled IOPS)",
		Note:    "closed-loop clients per Table 3 (scaled); bound-based throughput model",
		Headers: append([]string{"servers", "op"}, Fig6Systems...),
	}
	for _, n := range env.Servers {
		perSys := map[string]Throughputs{}
		for _, sys := range Fig6Systems {
			sut, err := StartSystem(sys, n, env.Link)
			if err != nil {
				return nil, err
			}
			tp, _, err := throughputs(sut, env.Clients(sys, n), env.TputItems, 1, fig8Phases)
			sut.Close()
			if err != nil {
				return nil, err
			}
			perSys[sys] = tp
		}
		for _, op := range fig8Phases {
			row := []string{fmt.Sprint(n), op}
			for _, sys := range Fig6Systems {
				row = append(row, fmtKIOPS(perSys[sys][op]))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// RawKVThroughput models the single-node key-value store baseline the
// paper compares file systems against (Kyoto Cabinet / LevelDB): random
// puts and gets of file-inode-sized values, priced with the same KV cost
// model used for LocoFS's servers (minus the RPC overhead a standalone KV
// store does not pay).
func RawKVThroughput() (putIOPS, getIOPS float64) {
	const valueBytes = 64 // an access+content-part-sized record
	cost := core.PaperKVCost
	put := cost.WriteOp + time.Duration(valueBytes)*cost.PerKB/1024
	get := cost.ReadOp + time.Duration(valueBytes)*cost.PerKB/1024
	return 1 / put.Seconds(), 1 / get.Seconds()
}

// Fig9 reproduces "Bridging the Performance Gap Between File System
// Metadata and Raw Key-value Store": LocoFS file-create throughput at 1..16
// metadata servers as a fraction of a single-node raw KV store.
//
// Paper shape: one LocoFS server reaches ~38% of the raw KV store; around
// 16 servers LocoFS matches or exceeds the single-node KV store.
func Fig9(env Env) (*Table, error) {
	kvPut, _ := RawKVThroughput()
	t := &Table{
		Title:   "Figure 9: LocoFS create throughput vs single-node raw KV store",
		Note:    fmt.Sprintf("raw KV (B+ tree engine, modeled hardware) put throughput = %s IOPS", fmtKIOPS(kvPut)),
		Headers: []string{"servers", "LocoFS-C IOPS", "raw-KV IOPS", "fraction of KV"},
	}
	for _, n := range env.Servers {
		sut, err := StartSystem(SysLocoC, n, env.Link)
		if err != nil {
			return nil, err
		}
		tp, _, err := throughputs(sut, env.Clients(SysLocoC, n), env.TputItems, 1,
			[]string{mdtest.PhaseTouch})
		sut.Close()
		if err != nil {
			return nil, err
		}
		loco := tp[mdtest.PhaseTouch]
		t.AddRow(fmt.Sprint(n), fmtKIOPS(loco), fmtKIOPS(kvPut), fmtRatio(loco/kvPut))
	}
	return t, nil
}

// Fig1 reproduces "Performance Gap between File System Metadata and KV
// Stores": file-create throughput of the distributed file systems as a
// fraction of the single-node raw KV store, across server counts.
//
// Paper shape: conventional DFSs sit at a few percent of the KV store even
// with many servers (IndexFS ~1.6% at one server); the gap shrinks only
// slowly with scale.
func Fig1(env Env) (*Table, error) {
	kvPut, _ := RawKVThroughput()
	systems := []string{SysIndexFS, SysCephFS, SysLustreD1, SysGluster, SysLocoC}
	t := &Table{
		Title:   "Figure 1: FS metadata vs raw KV store (create throughput, fraction of single-node KV)",
		Note:    fmt.Sprintf("raw KV put = %s IOPS (single node, modeled hardware)", fmtKIOPS(kvPut)),
		Headers: append([]string{"servers"}, systems...),
	}
	for _, n := range env.Servers {
		row := []string{fmt.Sprint(n)}
		for _, sys := range systems {
			sut, err := StartSystem(sys, n, env.Link)
			if err != nil {
				return nil, err
			}
			tp, _, err := throughputs(sut, env.Clients(sys, n), env.TputItems, 1,
				[]string{mdtest.PhaseTouch})
			sut.Close()
			if err != nil {
				return nil, err
			}
			row = append(row, fmtRatio(tp[mdtest.PhaseTouch]/kvPut))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table3 reproduces "The Number of Clients in Each Test": for each system
// and server count, the client count at which modeled create throughput
// saturates. In the bound model, throughput rises linearly with clients
// until the busiest server's capacity is reached; the saturation point is
// (per-op latency × workers) / per-op service time.
func Table3(env Env) (*Table, error) {
	t := &Table{
		Title:   "Table 3: clients needed to saturate the metadata service (create workload)",
		Note:    "derived from measured per-op latency and per-op service time",
		Headers: append([]string{"system"}, intsToStrings(env.Servers)...),
	}
	for _, sys := range Fig6Systems {
		row := []string{sys}
		for _, n := range env.Servers {
			sut, err := StartSystem(sys, n, env.Link)
			if err != nil {
				return nil, err
			}
			// Measure with a couple of clients so per-op latency and busy
			// time are populated.
			busy0 := maxBusy(sut.MetaBusy())
			rep, err := mdtest.Run(mdtest.Config{
				Clients:        2,
				ItemsPerClient: env.TputItems,
				Phases:         []string{mdtest.PhaseTouch},
			}, sut.NewFS)
			if err != nil {
				sut.Close()
				return nil, err
			}
			pr, _ := rep.Result(mdtest.PhaseTouch)
			busyPerOp := (maxBusy(sut.MetaBusy()) - busy0) / time.Duration(max(pr.Ops, 1))
			sut.Close()
			opLat := pr.VirtLatency.Mean
			if busyPerOp <= 0 {
				row = append(row, "-")
				continue
			}
			saturation := int(float64(opLat) * float64(sut.Workers) / float64(busyPerOp))
			if saturation < 1 {
				saturation = 1
			}
			row = append(row, fmt.Sprint(saturation))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func maxBusy(b []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range b {
		if d > m {
			m = d
		}
	}
	return m
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
