package client

// Epoch-versioned FMS routing (§3.1 placement under online membership
// change). The client's picture of the FMS fleet is an immutable fmsView
// swapped atomically when a newer membership epoch is learned, so the hot
// path routes with one pointer load and no locks.
//
// How a client learns about a change: every server response carries the
// server's current membership epoch in the wire header, and the endpoint
// layer funnels it into observeEpoch. An epoch newer than the installed
// view triggers a membership fetch from the DMS (asynchronously on
// observation, synchronously when an operation actually trips over the
// change via ESTALE or a suspicious ENOENT), and the fetched membership is
// installed as a fresh view.
//
// While the coordinator's migration window is open the membership carries
// the outgoing set in Prev and the view routes with dual-read semantics:
// the new owner is asked first, and on ENOENT the previous owner is asked
// with the same request — a key that has not migrated yet is still served,
// so no existing file ever reads as missing during the window. Mutations
// follow the same path: applied at the previous owner they are carried
// forward by the coordinator's conditional-delete/re-export loop (see
// internal/fms MigrateDelete).

import (
	"fmt"

	"locofs/internal/chash"
	"locofs/internal/fms"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// fmsMember is one FMS in a view: its stable ring ID and live endpoint.
type fmsMember struct {
	id int32
	ep *endpoint
}

// fmsView is one immutable routing epoch: the current FMS set with its
// ring, plus — while a migration window is open — the previous set and
// ring for dual-read fallback.
type fmsView struct {
	epoch    uint64
	cur      []fmsMember
	ring     *chash.Ring
	prev     []fmsMember // non-empty only while the migration window is open
	prevRing *chash.Ring
}

// window reports whether the migration window is open in this view.
func (v *fmsView) window() bool { return len(v.prev) > 0 }

// byID returns the member with ring ID id from ms, or nil.
func byID(ms []fmsMember, id int) *endpoint {
	for i := range ms {
		if int(ms[i].id) == id {
			return ms[i].ep
		}
	}
	return nil
}

// owner returns the endpoint the current ring places key on.
func (v *fmsView) owner(key []byte) *endpoint {
	return byID(v.cur, v.ring.Locate(key))
}

// prevOwner returns the previous ring's owner of key, or nil when no
// window is open.
func (v *fmsView) prevOwner(key []byte) *endpoint {
	if v.prevRing == nil {
		return nil
	}
	return byID(v.prev, v.prevRing.Locate(key))
}

// endpoints returns the union of current and previous endpoints, deduped —
// the fan-out set for operations that must see every server possibly
// holding files (readdir, rmdir probes) during a migration window.
func (v *fmsView) endpoints() []*endpoint {
	out := make([]*endpoint, 0, len(v.cur)+len(v.prev))
	for _, m := range v.cur {
		out = append(out, m.ep)
	}
	for _, m := range v.prev {
		dup := false
		for _, e := range out {
			if e == m.ep {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, m.ep)
		}
	}
	return out
}

// fmsEndpoint returns the connection to addr, dialing it on first use. The
// registry is keyed by address so a server appearing in several epochs (or
// in both the current and previous set) shares one connection; endpoints
// are closed only by Client.Close, because a server leaving the ring still
// serves dual-reads until its window closes.
func (c *Client) fmsEndpoint(addr string) (*endpoint, error) {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	if e, ok := c.eps[addr]; ok {
		return e, nil
	}
	e, err := c.dialFMS(addr)
	if err != nil {
		return nil, err
	}
	c.eps[addr] = e
	return e, nil
}

// fmsEndpoints snapshots every FMS connection ever dialed (for Close,
// Trips, Cost).
func (c *Client) fmsEndpoints() []*endpoint {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	out := make([]*endpoint, 0, len(c.eps))
	for _, e := range c.eps {
		out = append(out, e)
	}
	return out
}

// observeEpoch is called by the endpoint layer for every response carrying
// a non-zero membership epoch. It keeps maxEpoch at the highest epoch seen
// and kicks off one asynchronous membership refresh when the installed
// view has fallen behind — so clients converge on a new membership within
// roughly one round trip of its installation, without any push channel.
func (c *Client) observeEpoch(e uint64) {
	for {
		cur := c.maxEpoch.Load()
		if e <= cur {
			break
		}
		if c.maxEpoch.CompareAndSwap(cur, e) {
			break
		}
	}
	if v := c.view.Load(); v != nil && e > v.epoch && c.refreshing.CompareAndSwap(false, true) {
		go func() {
			defer c.refreshing.Store(false)
			c.refreshView(opCtx{})
		}()
	}
}

// refreshView fetches the cluster membership from the DMS and installs it.
// A cluster with no membership pushed (static topology) reports ENOENT;
// that is not an error, there is simply nothing to install.
func (c *Client) refreshView(oc opCtx) error {
	// Mark the refresh in flight for its whole duration (unless a caller
	// already did): the fetch's own response carries the new epoch before
	// the view is installed, and without the flag observeEpoch would spawn
	// a second, redundant background refresh.
	if c.refreshing.CompareAndSwap(false, true) {
		defer c.refreshing.Store(false)
	}
	// Membership lives on partition 0 (the residual partition, which owns
	// the root); route there so the fetch survives a bootstrap-leader
	// failover. Unsharded clients route straight to the bootstrap DMS.
	e := c.dms
	if c.pmap.Load() != nil {
		if ep, _, rerr := c.routeDMS("/", false); rerr == nil {
			e = ep
		}
	}
	st, resp, err := e.CallT(oc, wire.OpGetMembership, nil)
	if err != nil {
		return err
	}
	if st == wire.StatusNotFound {
		return nil
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	m, err := wire.DecodeMembership(resp)
	if err != nil {
		return err
	}
	return c.installView(m)
}

// installView swaps in a view built from m, unless an equal-or-newer view
// is already installed. Installs are serialized so two concurrent
// refreshes cannot regress the view.
func (c *Client) installView(m *wire.Membership) error {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	if cur := c.view.Load(); cur != nil && m.Epoch <= cur.epoch {
		return nil
	}
	build := func(members []wire.Member) ([]fmsMember, *chash.Ring, error) {
		if len(members) == 0 {
			return nil, nil, nil
		}
		ms := make([]fmsMember, 0, len(members))
		ids := make([]int, 0, len(members))
		for _, mm := range members {
			ep, err := c.fmsEndpoint(mm.Addr)
			if err != nil {
				return nil, nil, fmt.Errorf("client: dial FMS %s: %w", mm.Addr, err)
			}
			ms = append(ms, fmsMember{id: mm.ID, ep: ep})
			ids = append(ids, int(mm.ID))
		}
		ring := chash.NewRing(0, ids...)
		return ms, ring, nil
	}
	cur, ring, err := build(m.FMS)
	if err != nil {
		return err
	}
	if ring == nil {
		return wire.StatusInval.Err()
	}
	ring.SetEpoch(m.Epoch)
	prev, prevRing, err := build(m.Prev)
	if err != nil {
		return err
	}
	c.view.Store(&fmsView{epoch: m.Epoch, cur: cur, ring: ring, prev: prev, prevRing: prevRing})
	return nil
}

// fmsCallAttempts bounds the route-refresh-retry loop in fmsCall: first
// try, one retry after a dual-read fallback refresh, one after an ESTALE
// refresh.
const fmsCallAttempts = 3

// fmsCall issues one per-file FMS request for (dir, name) under the
// elasticity protocol:
//
//   - The current view's owner is asked first — on a static topology this
//     is exactly the old fmsFor routing, zero extra cost.
//   - ENOENT with a migration window open falls back to the previous
//     owner: a key that has not migrated yet is still fully served
//     (reads and mutations alike — a mutation landing at the old owner is
//     carried forward by the coordinator's conditional-delete/re-export
//     loop, so it is never lost).
//   - ENOENT while a newer epoch than the view's has been observed on the
//     wire triggers a synchronous membership refresh and a retry: the
//     file may live on a server this view does not know about yet.
//   - ESTALE (the server's ownership guard refusing a misrouted create)
//     triggers the same refresh-and-retry.
//
// The loop is bounded; when retries are exhausted the last status stands.
func (c *Client) fmsCall(oc opCtx, dir uuid.UUID, name string, op wire.Op, body []byte) (wire.Status, []byte, error) {
	key := fms.FileKey(dir, name)
	var st wire.Status
	var resp []byte
	var err error
	for attempt := 0; attempt < fmsCallAttempts; attempt++ {
		v := c.view.Load()
		st, resp, err = v.owner(key).CallT(oc, op, body)
		if err != nil {
			return st, resp, err
		}
		switch st {
		case wire.StatusNotFound:
			if pe := v.prevOwner(key); pe != nil && pe != v.owner(key) {
				pst, presp, perr := pe.CallT(oc, op, body)
				if perr != nil {
					return pst, presp, perr
				}
				if pst != wire.StatusNotFound {
					return pst, presp, nil
				}
				// Double miss with the window open: the key may have
				// completed its move between the two reads (installed at
				// the new owner after we asked it, then retired at the
				// source before we asked there). A copy always exists at
				// one of the two — install strictly precedes the source
				// delete — so re-asking the primary resolves it. Loop; a
				// genuinely missing file just burns the bounded attempts.
				continue
			}
			// Neither owner has it. If the wire has shown us a newer epoch
			// than this view's, our routing may simply be stale — refresh
			// and re-route before believing the ENOENT.
			if c.maxEpoch.Load() > v.epoch {
				if c.refreshView(oc) == nil && c.view.Load().epoch > v.epoch {
					continue
				}
			}
			return st, resp, nil
		case wire.StatusStale:
			if c.refreshView(oc) != nil || c.view.Load().epoch == v.epoch {
				return st, resp, nil // refresh failed or made no progress
			}
			continue
		}
		return st, resp, nil
	}
	return st, resp, err
}
