package bench

import (
	"fmt"
	"time"

	"locofs/internal/core"
	"locofs/internal/netsim"
)

// FigDMSCatchup measures the replication plane's operability properties
// (DESIGN.md §16 follow-on): what one dark follower costs the partition's
// mutation throughput, what a concurrent follower catch-up costs, and that
// the bounded op log holds its cap under sustained load. Three mutation
// bursts run against a 3-replica partition — steady state; with one
// follower blackholed (it is excluded after one replication timeout, so
// the burst absorbs exactly one timeout); and with the healed follower
// replaying its missed range while the burst runs (catch-up fetches serve
// from the leader's log under the partition lock, contending with live
// appends). The log rows report the leader's retained log and dedup-replay
// table against the configured cap after every burst — the memory bound
// the truncation protocol promises.
func FigDMSCatchup(env Env) (*Table, error) {
	const logCap = 1024
	repTimeout := 150 * time.Millisecond
	n := env.TputItems * 4
	if n < 100 {
		n = 100
	}

	cluster, err := core.Start(core.Options{
		DMSReplicas:   3,
		DMSLogCap:     logCap,
		DMSRepTimeout: repTimeout,
		Link:          env.Link,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(core.ClientConfig{})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	leader := cluster.DMSNodes[0][0]
	straggler := cluster.DMSNodes[0][2]
	stragglerAddr := straggler.Map().Groups[0][2]

	burst := func(tag string, count int) (float64, error) {
		start := time.Now()
		for i := 0; i < count; i++ {
			if err := cl.Mkdir(fmt.Sprintf("/%s%06d", tag, i), 0o755); err != nil {
				return 0, fmt.Errorf("bench: dmscatchup %s mkdir %d: %w", tag, i, err)
			}
		}
		return float64(count) / time.Since(start).Seconds(), nil
	}

	tbl := &Table{
		Title: "dmscatchup: mutation throughput around follower catch-up, log bound",
		Note: fmt.Sprintf("3 replicas, log cap %d entries, replication timeout %v; wall-clock\n"+
			"mkdir throughput on one partition. \"dark follower\" absorbs the one\n"+
			"replication timeout that excludes it; \"during catch-up\" runs while the\n"+
			"healed follower replays its missed range from the leader's log.",
			logCap, repTimeout),
		Headers: []string{"phase", "kIOPS", "catch-up", "log retained", "dedup entries"},
	}
	logRow := func() (string, string) {
		return fmt.Sprintf("%d/%d", leader.LogRetained(), logCap), fmt.Sprint(leader.DedupLen())
	}

	steady, err := burst("s", n)
	if err != nil {
		return nil, err
	}
	lr, de := logRow()
	tbl.AddRow("steady state", fmtKIOPS(steady), "", lr, de)

	// One follower goes dark: the first append to it eats the replication
	// timeout, then it is excluded and the burst runs at two-replica speed.
	cluster.Network().SetFault(stragglerAddr, netsim.FaultConfig{Blackhole: true})
	dark, err := burst("d", n)
	if err != nil {
		return nil, err
	}
	lr, de = logRow()
	tbl.AddRow("one follower dark", fmtKIOPS(dark), "", lr, de)

	// Heal and catch up while a fresh burst runs: the follower replays
	// roughly n missed entries (bounded below the cap by truncation).
	cluster.Network().SetFault(stragglerAddr, netsim.FaultConfig{})
	cuStart := time.Now()
	cuDone := make(chan error, 1)
	go func() { cuDone <- straggler.CatchUp() }()
	during, err := burst("c", n)
	if err != nil {
		return nil, err
	}
	if err := <-cuDone; err != nil {
		return nil, fmt.Errorf("bench: dmscatchup catch-up: %w", err)
	}
	cuDur := time.Since(cuStart)
	lr, de = logRow()
	tbl.AddRow("during catch-up", fmtKIOPS(during), cuDur.Round(time.Millisecond).String(), lr, de)

	if exc := leader.Excluded(); len(exc) != 0 {
		return nil, fmt.Errorf("bench: dmscatchup follower still excluded after catch-up: %v", exc)
	}
	if got := leader.LogRetained(); got > logCap+1 {
		return nil, fmt.Errorf("bench: dmscatchup retained log %d exceeds cap %d", got, logCap)
	}
	return tbl, nil
}
