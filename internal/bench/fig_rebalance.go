package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"locofs/internal/client"
	"locofs/internal/core"
	"locofs/internal/wire"
)

// FigRebalance measures online FMS elasticity (beyond the paper: LocoFS's
// evaluation uses a fixed server set). A 4-FMS cluster is populated, then
// grown to 5 and shrunk back to 4 while a stat workload runs against the
// pre-existing files. Each row is one membership change and reports how
// many file keys the coordinator migrated against the consistent-hash
// ideal (1/n of the namespace for a grow to n servers), how many scan
// passes the drain took, and — the availability criterion — how many
// operations the background workload completed versus how many existing
// files ever read as missing (which must be zero).
func FigRebalance(env Env) (*Table, error) {
	files := env.TputItems * 10
	if files < 200 {
		files = 200
	}
	const fromFMS = 4

	cluster, err := core.Start(core.Options{FMSCount: fromFMS, Link: env.Link})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	seed, err := cluster.NewClient(core.ClientConfig{})
	if err != nil {
		return nil, err
	}
	defer seed.Close()
	if err := seed.Mkdir("/reb", 0o755); err != nil {
		return nil, err
	}
	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("f%05d", i)
		if err := seed.Create("/reb/"+names[i], 0o644); err != nil {
			return nil, err
		}
	}

	// Background workload over the whole change sequence: every file it
	// touches exists for the entire run, so any ENOENT is a violation of
	// the migration window's dual-read guarantee.
	stop := make(chan struct{})
	var ops, violations atomic.Int64
	var wg sync.WaitGroup
	var workErr error
	var workErrOnce sync.Once
	for w := 0; w < 2; w++ {
		wcl, err := cluster.NewClient(core.ClientConfig{})
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(w int, wcl *client.Client) {
			defer wg.Done()
			defer wcl.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(i*13+w*401)%files]
				if _, err := wcl.StatFile("/reb/" + name); err != nil {
					if wire.StatusOf(err) == wire.StatusNotFound {
						violations.Add(1)
					} else {
						workErrOnce.Do(func() {
							workErr = fmt.Errorf("rebalance workload: stat %s: %w", name, err)
						})
					}
				} else {
					ops.Add(1)
				}
			}
		}(w, wcl)
	}

	t := &Table{
		Title: "Rebalance: online FMS membership change with key migration",
		Note: fmt.Sprintf("%d files; stat workload running throughout; moved vs the 1/n consistent-hash ideal; link RTT = %v",
			files, env.Link.RTT),
		Headers: []string{"change", "epochs", "files", "moved", "frac", "ideal", "passes", "bg ops", "ENOENT"},
	}
	addRow := func(change string, rep *client.RebalanceReport, n int) {
		frac := float64(rep.Moved) / float64(rep.Total)
		t.AddRow(change,
			fmt.Sprintf("%d->%d", rep.FromEpoch, rep.ToEpoch),
			fmt.Sprint(rep.Total),
			fmt.Sprint(rep.Moved),
			fmt.Sprintf("%.3f", frac),
			fmt.Sprintf("%.3f", 1/float64(n)),
			fmt.Sprint(rep.Passes),
			fmt.Sprint(ops.Load()),
			fmt.Sprint(violations.Load()))
	}

	rep, err := cluster.AddFMS()
	if err != nil {
		return nil, fmt.Errorf("rebalance: add FMS: %w", err)
	}
	addRow(fmt.Sprintf("grow %d->%d", fromFMS, fromFMS+1), rep, fromFMS+1)

	rep2, err := cluster.RemoveFMS()
	if err != nil {
		return nil, fmt.Errorf("rebalance: remove FMS: %w", err)
	}
	addRow(fmt.Sprintf("shrink %d->%d", fromFMS+1, fromFMS), rep2, fromFMS+1)

	close(stop)
	wg.Wait()
	if workErr != nil {
		return nil, workErr
	}
	if v := violations.Load(); v != 0 {
		return nil, fmt.Errorf("rebalance: %d availability violations (ENOENT for existing files)", v)
	}
	return t, nil
}
