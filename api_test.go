package locofs_test

import (
	"bytes"
	"fmt"
	"testing"

	"locofs"
)

// TestPublicAPIInProcess exercises the public surface a downstream user
// would import: in-process cluster, client, directories, files, data.
func TestPublicAPIInProcess(t *testing.T) {
	cluster, err := locofs.Start(locofs.Options{FMSCount: 4, CheckPermissions: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.NewClient(locofs.ClientConfig{UID: 1000, GID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	if err := fs.Mkdir("/pub", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fs.Create(fmt.Sprintf("/pub/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.Open("/pub/f0", true)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("public api data")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !bytes.Equal(got, data) {
		t.Error("data round trip failed")
	}
	ents, err := fs.Readdir("/pub")
	if err != nil || len(ents) != 10 {
		t.Errorf("Readdir = %d entries, %v", len(ents), err)
	}
	var a *locofs.Attr
	if a, err = fs.StatFile("/pub/f0"); err != nil || a.Size != uint64(len(data)) {
		t.Errorf("StatFile = %+v, %v", a, err)
	}
	if moved, err := fs.RenameDir("/pub", "/pub2"); err != nil || moved != 1 {
		t.Errorf("RenameDir = %d, %v", moved, err)
	}
	if _, err := fs.StatFile("/pub2/f0"); err != nil {
		t.Errorf("stat after rename: %v", err)
	}
}

// TestPublicAPIStandaloneServers wires the standalone server constructors
// over TCP, as cmd/locofsd does.
func TestPublicAPIStandaloneServers(t *testing.T) {
	start := func(attach func(*locofs.RPCServer)) string {
		l, err := locofs.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rs := locofs.NewRPCServer()
		attach(rs)
		go rs.Serve(l)
		t.Cleanup(rs.Shutdown)
		return l.Addr()
	}
	dmsAddr := start(locofs.NewDMS(locofs.DMSOptions{}).Attach)
	fmsAddr := start(locofs.NewFMS(locofs.FMSOptions{ServerID: 1}).Attach)
	ossAddr := start(locofs.NewObjectStore().Attach)

	fs, err := locofs.Dial(locofs.DialConfig{
		Dialer:   locofs.TCPDialer{},
		DMSAddr:  dmsAddr,
		FMSAddrs: []string{fmsAddr},
		OSSAddrs: []string{ossAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.Mkdir("/tcp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/tcp/f", 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := fs.StatFile("/tcp/f")
	if err != nil {
		t.Fatal(err)
	}
	var u locofs.UUID = a.UUID
	if u.IsNil() {
		t.Error("file has nil UUID")
	}
}
