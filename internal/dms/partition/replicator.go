package partition

import (
	"sync"

	"locofs/internal/wire"
)

// replicator is one follower's ordered append stream. The leader's
// appendLocked enqueues each log entry (already encoded) under n.mu —
// preserving log order per follower — and a dedicated goroutine performs
// the sends outside the lock, each bounded by the replication timeout. One
// slow or blackholed follower therefore costs exactly one timed-out send,
// after which it is excluded from the live set and its queued tickets are
// released; the partition keeps serving.
//
// Lock order: n.mu → r.mu only (enqueue and stop are called under n.mu);
// run never takes n.mu while holding r.mu.
type replicator struct {
	n    *Node
	addr string

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []repItem
	stopped bool
}

// repItem is one queued append: the encoded OpLogAppend body, the entry's
// index (for diagnostics), and the fan-out ticket to release when the send
// concludes — by ack, by exclusion, or by the replicator stopping.
type repItem struct {
	enc []byte
	idx uint64
	wg  *sync.WaitGroup
}

func newReplicator(n *Node, addr string) *replicator {
	r := &replicator{n: n, addr: addr}
	r.cond = sync.NewCond(&r.mu)
	go r.run()
	return r
}

// enqueue adds one append to the stream. Called under n.mu (which is what
// serializes enqueues into log order). If the replicator already stopped —
// excluded concurrently, demoted, or closing — the ticket is released
// immediately; the exclusion path has already accounted for this follower.
func (r *replicator) enqueue(enc []byte, idx uint64, wg *sync.WaitGroup) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		wg.Done()
		return
	}
	r.queue = append(r.queue, repItem{enc: enc, idx: idx, wg: wg})
	r.cond.Signal()
	r.mu.Unlock()
}

// stop shuts the stream down without excluding the follower (demotion, map
// change, node close), releasing every queued ticket. Safe to call under
// n.mu and more than once.
func (r *replicator) stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	q := r.queue
	r.queue = nil
	r.cond.Signal()
	r.mu.Unlock()
	for _, it := range q {
		it.wg.Done()
	}
}

func (r *replicator) run() {
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.stopped {
			r.cond.Wait()
		}
		if r.stopped && len(r.queue) == 0 {
			r.mu.Unlock()
			return
		}
		it := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()

		st, resp, err := r.n.callPeerT(r.addr, wire.OpLogAppend, it.enc, r.n.repTimeout)
		if err != nil || st != wire.StatusOK {
			// The follower missed this entry: exclude it before releasing
			// the ticket, so the leader never acks a mutation that a
			// non-excluded replica lacks. (A gap response means the
			// follower is already starting catch-up on its own.)
			detail := st.String()
			if err != nil {
				detail = err.Error()
			}
			r.n.excludeFollower(r.addr, it.idx, detail)
			it.wg.Done()
			r.fail()
			return
		}
		if mark, derr := wire.DecodeLogAck(resp); derr == nil {
			r.n.noteAck(r.addr, mark)
		}
		it.wg.Done()
	}
}

// fail drains the queue after an exclusion: every still-queued append's
// ticket is released (the follower is excluded, so those entries no longer
// wait on it) and the goroutine exits.
func (r *replicator) fail() {
	r.mu.Lock()
	r.stopped = true
	q := r.queue
	r.queue = nil
	r.mu.Unlock()
	for _, it := range q {
		it.wg.Done()
	}
}
