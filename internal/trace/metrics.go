package trace

import "locofs/internal/telemetry"

// Metric names for span-ring accounting. Without these, sampling loss is
// silent: a ring too small (evictions) or a sample rate too low (drops)
// simply makes traces vanish with no signal in /metrics.
const (
	// MetricSpansDropped counts finished spans not retained because their
	// trace lost the sampling draw.
	MetricSpansDropped = "locofs_trace_dropped_spans_total"
	// MetricSpansEvicted counts retained spans overwritten by ring wrap.
	MetricSpansEvicted = "locofs_trace_evicted_spans_total"
	// MetricSpansRetained counts spans ever retained in the ring.
	MetricSpansRetained = "locofs_trace_retained_spans_total"
)

// RegisterMetrics exports t's span-ring accounting on reg, sampled at
// scrape time. Nil-safe: a nil tracer exports zeros, so the series exist
// (and read as "tracing off") on every process.
func RegisterMetrics(reg *telemetry.Registry, t *Tracer) {
	reg.GaugeFunc(MetricSpansDropped, func() float64 { return float64(t.Dropped()) })
	reg.GaugeFunc(MetricSpansEvicted, func() float64 { return float64(t.Evicted()) })
	reg.GaugeFunc(MetricSpansRetained, func() float64 { return float64(t.Recorded()) })
}
