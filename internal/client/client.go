// Package client implements LocoLib, the LocoFS client library (§3.1).
//
// LocoLib routes directory operations to the single Directory Metadata
// Server, file metadata operations to the File Metadata Server chosen by
// consistent-hashing directory_uuid + file_name, and data operations
// straight to the object store — so the common path of every operation is
// one or two round trips. A client-side directory inode cache with leases
// (§3.2.2) removes the DMS hop from repeated operations in the same
// directory.
package client

import (
	"fmt"
	"sync/atomic"
	"time"

	"locofs/internal/chash"
	"locofs/internal/fms"
	"locofs/internal/fspath"
	"locofs/internal/layout"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/telemetry"
	"locofs/internal/uuid"
	"locofs/internal/wire"
)

// Config describes the cluster a client connects to and the client's
// identity and caching behavior.
type Config struct {
	// Dialer connects to the addresses below (simulated or TCP).
	Dialer netsim.Dialer
	// Link is the modeled network link used for virtual-time accounting
	// (see rpc.Client.SetLink). Zero models a co-located deployment.
	Link netsim.LinkConfig
	// DMSAddr is the directory metadata server address.
	DMSAddr string
	// FMSAddrs lists file metadata servers; the slice index is the server
	// ID used by the consistent-hash ring.
	FMSAddrs []string
	// OSSAddrs lists object store servers (at least one).
	OSSAddrs []string
	// DisableCache turns off the client directory cache (LocoFS-NC).
	DisableCache bool
	// Lease overrides the default 30 s cache lease.
	Lease time.Duration
	// UID and GID are the credentials stamped on operations.
	UID, GID uint32
	// Now overrides the clock (tests).
	Now func() time.Time
	// Metrics receives the client's per-op telemetry (round-trip
	// histograms and call counters). Nil means a private registry,
	// reachable via Client.Metrics; passing a shared registry aggregates
	// several clients into one view (e.g. a benchmark fleet).
	Metrics *telemetry.Registry
	// SlowThreshold enables slow-call logging: any RPC whose wall-clock
	// round trip meets or exceeds it is logged with its trace ID and
	// server address. Zero disables logging.
	SlowThreshold time.Duration
}

// Client is one LocoLib instance. It is safe for concurrent use.
type Client struct {
	dms   *endpoint
	fms   []*endpoint
	oss   []*endpoint
	ring  *chash.Ring
	oring *chash.Ring
	cache *dirCache // nil when disabled
	uid   uint32
	gid   uint32

	telem     *clientTelem
	traceBase uint64        // client id in the top 16 bits of every trace
	traceCtr  atomic.Uint64 // per-operation sequence in the low 48 bits
}

// nextClientID distinguishes trace IDs of clients within one process.
var nextClientID atomic.Uint64

// newTrace mints the trace ID for one logical file-system operation; every
// RPC the operation issues carries it, so slow-request logs on different
// servers can be correlated.
func (c *Client) newTrace() uint64 {
	return c.traceBase | (c.traceCtr.Add(1) & (1<<48 - 1))
}

// Metrics returns the registry holding this client's per-op round-trip
// histograms and call counters (see rpc.MetricRTT, rpc.MetricCalls).
func (c *Client) Metrics() *telemetry.Registry { return c.telem.reg }

// Dial connects to every server in cfg and returns a ready client.
func Dial(cfg Config) (*Client, error) {
	if cfg.Dialer == nil {
		return nil, fmt.Errorf("client: nil dialer")
	}
	if len(cfg.FMSAddrs) == 0 || len(cfg.OSSAddrs) == 0 {
		return nil, fmt.Errorf("client: need at least one FMS and one OSS")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Client{
		uid:       cfg.UID,
		gid:       cfg.GID,
		telem:     &clientTelem{reg: reg, slow: cfg.SlowThreshold},
		traceBase: (nextClientID.Add(1) & 0xffff) << 48,
	}
	dial := func(addr string) (*endpoint, error) {
		return dialEndpoint(cfg.Dialer, addr, cfg.Link, c.telem)
	}
	var err error
	if c.dms, err = dial(cfg.DMSAddr); err != nil {
		return nil, fmt.Errorf("client: dial DMS: %w", err)
	}
	for _, a := range cfg.FMSAddrs {
		cl, err := dial(a)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: dial FMS %s: %w", a, err)
		}
		c.fms = append(c.fms, cl)
	}
	for _, a := range cfg.OSSAddrs {
		cl, err := dial(a)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: dial OSS %s: %w", a, err)
		}
		c.oss = append(c.oss, cl)
	}
	ids := make([]int, len(c.fms))
	for i := range ids {
		ids[i] = i
	}
	c.ring = chash.NewRing(0, ids...)
	oids := make([]int, len(c.oss))
	for i := range oids {
		oids[i] = i
	}
	c.oring = chash.NewRing(0, oids...)
	if !cfg.DisableCache {
		c.cache = newDirCache(cfg.Lease, cfg.Now)
	}
	return c, nil
}

// Close tears down every connection.
func (c *Client) Close() error {
	if c.dms != nil {
		c.dms.Close()
	}
	for _, cl := range c.fms {
		cl.Close()
	}
	for _, cl := range c.oss {
		cl.Close()
	}
	return nil
}

// Trips returns the total network round trips issued by this client, the
// unit the paper's latency figures are normalized in.
func (c *Client) Trips() uint64 {
	n := c.dms.Trips()
	for _, cl := range c.fms {
		n += cl.Trips()
	}
	for _, cl := range c.oss {
		n += cl.Trips()
	}
	return n
}

// Cost returns the client's cumulative modeled time across every call:
// link delays plus server-reported service times. Per-operation virtual
// latency is the delta of Cost around the operation.
func (c *Client) Cost() time.Duration {
	d := c.dms.VirtualTime()
	for _, cl := range c.fms {
		d += cl.VirtualTime()
	}
	for _, cl := range c.oss {
		d += cl.VirtualTime()
	}
	return d
}

// CacheStats returns directory-cache hits and misses (zero when disabled).
func (c *Client) CacheStats() (hits, misses uint64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.stats()
}

// FMSCount returns the number of file metadata servers.
func (c *Client) FMSCount() int { return len(c.fms) }

// fmsFor returns the FMS endpoint owning (dir, name).
func (c *Client) fmsFor(dir uuid.UUID, name string) *endpoint {
	return c.fms[c.ring.Locate(fms.FileKey(dir, name))]
}

// ossFor returns the object store endpoint owning block blk of u.
func (c *Client) ossFor(u uuid.UUID, blk uint64) *endpoint {
	return c.oss[c.oring.Locate(objstore.BlockKey(u, blk))]
}

// resolveDir returns the d-inode of a cleaned directory path, from cache if
// possible, otherwise via one DMS lookup (which returns the whole ancestor
// chain; every link is cached). tid is the logical operation's trace ID.
func (c *Client) resolveDir(cleaned string, tid uint64) (layout.DirInode, error) {
	if c.cache != nil {
		if ino, ok := c.cache.get(cleaned); ok {
			return ino, nil
		}
	}
	body := wire.NewEnc().Str(cleaned).U32(c.uid).U32(c.gid).Bytes()
	st, resp, err := c.dms.CallT(tid, wire.OpLookupDir, body)
	if err != nil {
		return nil, err
	}
	if st != wire.StatusOK {
		return nil, st.Err()
	}
	d := wire.NewDec(resp)
	n := d.U32()
	var target layout.DirInode
	for i := uint32(0); i < n; i++ {
		p := d.Str()
		ino := layout.DirInode(d.Blob())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if c.cache != nil {
			c.cache.put(p, ino)
		}
		if p == cleaned {
			target = ino
		}
	}
	if target == nil {
		return nil, wire.StatusIO.Err()
	}
	return target, nil
}

// splitPath cleans path and resolves its parent directory.
func (c *Client) splitPath(path string, tid uint64) (parent layout.DirInode, cleaned, name string, err error) {
	cleaned, err = fspath.Clean(path)
	if err != nil {
		return nil, "", "", wire.StatusInval.Err()
	}
	dir, name := fspath.Split(cleaned)
	if name == "" {
		return nil, "", "", wire.StatusInval.Err()
	}
	parent, err = c.resolveDir(dir, tid)
	return parent, cleaned, name, err
}

// Attr is the stat result for a file or directory.
type Attr struct {
	IsDir     bool
	Mode      uint32
	UID, GID  uint32
	Size      uint64
	BlockSize uint32
	CTime     int64
	MTime     int64
	ATime     int64
	UUID      uuid.UUID
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string, mode uint32) error {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	body := wire.NewEnc().Str(cleaned).U32(mode).U32(c.uid).U32(c.gid).Bytes()
	st, _, err := c.dms.CallT(c.newTrace(), wire.OpMkdir, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// Rmdir removes an empty directory. LocoFS cannot know from the DMS alone
// whether any FMS still holds files of the directory, so the client probes
// every FMS first — the fan-out the paper charges rmdir with (§4.2.1).
func (c *Client) Rmdir(path string) error {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	tid := c.newTrace()
	ino, err := c.resolveDir(cleaned, tid)
	if err != nil {
		return err
	}
	probe := wire.NewEnc().UUID(ino.UUID()).Bytes()
	for _, f := range c.fms {
		st, resp, err := f.CallT(tid, wire.OpDirHasFiles, probe)
		if err != nil {
			return err
		}
		if st != wire.StatusOK {
			return st.Err()
		}
		if wire.NewDec(resp).Bool() {
			return wire.StatusNotEmpty.Err()
		}
	}
	body := wire.NewEnc().Str(cleaned).U32(c.uid).U32(c.gid).Bytes()
	st, _, err := c.dms.CallT(tid, wire.OpRmdir, body)
	if err != nil {
		return err
	}
	if st == wire.StatusOK && c.cache != nil {
		c.cache.invalidateSubtree(cleaned)
	}
	return st.Err()
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name  string
	IsDir bool
	UUID  uuid.UUID
}

// ReaddirPageSize is the number of entries fetched per server round trip
// when listing a directory; it bounds response sizes for huge directories.
const ReaddirPageSize = 1024

// decodeEntryPage parses a paged readdir response.
func decodeEntryPage(resp []byte, isDir bool) (ents []DirEntry, more bool, err error) {
	d := wire.NewDec(resp)
	n := d.U32()
	more = d.Bool()
	ents = make([]DirEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		name := d.Str()
		u := d.UUID()
		if d.Err() != nil {
			return nil, false, d.Err()
		}
		ents = append(ents, DirEntry{Name: name, IsDir: isDir, UUID: u})
	}
	return ents, more, nil
}

// readAllPages drains a paged readdir op via repeated calls.
func readAllPages(call func(cursor string) (wire.Status, []byte, error), isDir bool) ([]DirEntry, error) {
	var out []DirEntry
	cursor := ""
	for {
		st, resp, err := call(cursor)
		if err != nil {
			return nil, err
		}
		if st != wire.StatusOK {
			return nil, st.Err()
		}
		ents, more, err := decodeEntryPage(resp, isDir)
		if err != nil {
			return nil, err
		}
		out = append(out, ents...)
		if !more || len(ents) == 0 {
			return out, nil
		}
		cursor = ents[len(ents)-1].Name
	}
}

// Readdir lists a directory: subdirectory entries from the DMS plus file
// entries from every FMS, fetched in size-bounded pages, merged and
// name-sorted.
func (c *Client) Readdir(path string) ([]DirEntry, error) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, wire.StatusInval.Err()
	}
	tid := c.newTrace()
	out, err := readAllPages(func(cursor string) (wire.Status, []byte, error) {
		body := wire.NewEnc().Str(cleaned).U32(c.uid).U32(c.gid).
			Str(cursor).U32(ReaddirPageSize).Bytes()
		return c.dms.CallT(tid, wire.OpReaddirSubdirs, body)
	}, true)
	if err != nil {
		return nil, err
	}
	ino, err := c.resolveDir(cleaned, tid)
	if err != nil {
		return nil, err
	}
	for _, f := range c.fms {
		f := f
		files, err := readAllPages(func(cursor string) (wire.Status, []byte, error) {
			body := wire.NewEnc().UUID(ino.UUID()).Str(cursor).U32(ReaddirPageSize).Bytes()
			return f.CallT(tid, wire.OpReaddirFiles, body)
		}, false)
		if err != nil {
			return nil, err
		}
		out = append(out, files...)
	}
	ents := make([]layout.Dirent, len(out))
	for i, e := range out {
		ents[i] = layout.Dirent{Name: e.Name, UUID: e.UUID}
	}
	layout.SortDirents(ents)
	sorted := make([]DirEntry, len(out))
	byName := make(map[string]DirEntry, len(out))
	for _, e := range out {
		byName[e.Name] = e
	}
	for i, e := range ents {
		sorted[i] = byName[e.Name]
	}
	return sorted, nil
}

// StatDir stats a directory (one DMS round trip, or zero on a cache hit).
func (c *Client) StatDir(path string) (*Attr, error) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, wire.StatusInval.Err()
	}
	ino, err := c.resolveDir(cleaned, c.newTrace())
	if err != nil {
		return nil, err
	}
	return &Attr{
		IsDir: true,
		Mode:  ino.Mode(),
		UID:   ino.UID(), GID: ino.GID(),
		CTime: ino.CTime(),
		UUID:  ino.UUID(),
	}, nil
}

// Create makes an empty file (the mdtest "touch"): resolve the parent
// directory (cached: zero trips) and issue one FMS create.
func (c *Client) Create(path string, mode uint32) error {
	tid := c.newTrace()
	parent, _, name, err := c.splitPath(path, tid)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).
		U32(mode).U32(c.uid).U32(c.gid).Bool(false).Bytes()
	st, _, err := c.fmsFor(parent.UUID(), name).CallT(tid, wire.OpCreateFile, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// StatFile stats a file: one round trip to its FMS.
func (c *Client) StatFile(path string) (*Attr, error) {
	tid := c.newTrace()
	parent, _, name, err := c.splitPath(path, tid)
	if err != nil {
		return nil, err
	}
	m, err := c.statOn(parent.UUID(), name, tid)
	if err != nil {
		return nil, err
	}
	return metaToAttr(m), nil
}

func (c *Client) statOn(dir uuid.UUID, name string, tid uint64) (*fms.FileMeta, error) {
	body := wire.NewEnc().UUID(dir).Str(name).Bytes()
	st, resp, err := c.fmsFor(dir, name).CallT(tid, wire.OpStatFile, body)
	if err != nil {
		return nil, err
	}
	if st != wire.StatusOK {
		return nil, st.Err()
	}
	d := wire.NewDec(resp)
	a, ct := d.Blob(), d.Blob()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return &fms.FileMeta{Access: layout.FileAccess(a), Content: layout.FileContent(ct)}, nil
}

func metaToAttr(m *fms.FileMeta) *Attr {
	return &Attr{
		Mode: m.Access.Mode(),
		UID:  m.Access.UID(), GID: m.Access.GID(),
		Size:      m.Content.Size(),
		BlockSize: m.Content.BlockSize(),
		CTime:     m.Access.CTime(),
		MTime:     m.Content.MTime(),
		ATime:     m.Content.ATime(),
		UUID:      m.Content.UUID(),
	}
}

// Stat stats a path of unknown kind: it asks the file's FMS first (files
// dominate) and falls back to the DMS for directories.
func (c *Client) Stat(path string) (*Attr, error) {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return nil, wire.StatusInval.Err()
	}
	if cleaned == "/" {
		return c.StatDir(cleaned)
	}
	a, err := c.StatFile(cleaned)
	if err == nil {
		return a, nil
	}
	if wire.StatusOf(err) != wire.StatusNotFound {
		return nil, err
	}
	return c.StatDir(cleaned)
}

// Remove deletes a file and its data blocks.
func (c *Client) Remove(path string) error {
	tid := c.newTrace()
	parent, _, name, err := c.splitPath(path, tid)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U32(c.uid).U32(c.gid).Bytes()
	st, resp, err := c.fmsFor(parent.UUID(), name).CallT(tid, wire.OpRemoveFile, body)
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	u := wire.NewDec(resp).UUID()
	c.deleteBlocks(u, 0, tid)
	return nil
}

// deleteBlocks reclaims blocks of u on every object store server.
func (c *Client) deleteBlocks(u uuid.UUID, fromBlk uint64, tid uint64) {
	body := wire.NewEnc().UUID(u).U64(fromBlk).Bytes()
	for _, o := range c.oss {
		o.CallT(tid, wire.OpDeleteBlocks, body)
	}
}

// Chmod changes a file's permission bits (access part only, Table 1).
func (c *Client) Chmod(path string, mode uint32) error {
	tid := c.newTrace()
	parent, _, name, err := c.splitPath(path, tid)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U32(mode).U32(c.uid).Bytes()
	st, _, err := c.fmsFor(parent.UUID(), name).CallT(tid, wire.OpChmodFile, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// Chown changes a file's owner (access part only).
func (c *Client) Chown(path string, uid, gid uint32) error {
	tid := c.newTrace()
	parent, _, name, err := c.splitPath(path, tid)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U32(uid).U32(gid).U32(c.uid).Bytes()
	st, _, err := c.fmsFor(parent.UUID(), name).CallT(tid, wire.OpChownFile, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// Access checks permissions on a file (reads the access part only).
func (c *Client) Access(path string, wantWrite bool) error {
	tid := c.newTrace()
	parent, _, name, err := c.splitPath(path, tid)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U32(c.uid).U32(c.gid).Bool(wantWrite).Bytes()
	st, _, err := c.fmsFor(parent.UUID(), name).CallT(tid, wire.OpAccessFile, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// Utimens sets a file's atime/mtime (content part only).
func (c *Client) Utimens(path string, atime, mtime int64) error {
	tid := c.newTrace()
	parent, _, name, err := c.splitPath(path, tid)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).I64(atime).I64(mtime).Bytes()
	st, _, err := c.fmsFor(parent.UUID(), name).CallT(tid, wire.OpUtimensFile, body)
	if err != nil {
		return err
	}
	return st.Err()
}

// Truncate sets a file's size and trims its data blocks.
func (c *Client) Truncate(path string, size uint64) error {
	tid := c.newTrace()
	parent, _, name, err := c.splitPath(path, tid)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(parent.UUID()).Str(name).U64(size).Bytes()
	st, resp, err := c.fmsFor(parent.UUID(), name).CallT(tid, wire.OpTruncateFile, body)
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	d := wire.NewDec(resp)
	u, oldSize, bs := d.UUID(), d.U64(), d.U32()
	if d.Err() == nil && size < oldSize && bs > 0 {
		from := (size + uint64(bs) - 1) / uint64(bs)
		c.deleteBlocks(u, from, tid)
	}
	return nil
}

// ChmodDir changes a directory's permission bits on the DMS.
func (c *Client) ChmodDir(path string, mode uint32) error {
	cleaned, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	body := wire.NewEnc().Str(cleaned).U32(mode).U32(c.uid).U32(c.gid).Bytes()
	st, _, err := c.dms.CallT(c.newTrace(), wire.OpChmodDir, body)
	if err != nil {
		return err
	}
	if st == wire.StatusOK && c.cache != nil {
		c.cache.invalidate(cleaned)
	}
	return st.Err()
}

// RenameDir renames a directory; the DMS relocates the subtree's d-inodes
// (a prefix move on the tree store) while files and data stay put (§3.4.2).
// It returns the number of relocated directory inodes.
func (c *Client) RenameDir(oldPath, newPath string) (int, error) {
	oldC, err := fspath.Clean(oldPath)
	if err != nil {
		return 0, wire.StatusInval.Err()
	}
	newC, err := fspath.Clean(newPath)
	if err != nil {
		return 0, wire.StatusInval.Err()
	}
	body := wire.NewEnc().Str(oldC).Str(newC).U32(c.uid).U32(c.gid).Bytes()
	st, resp, err := c.dms.CallT(c.newTrace(), wire.OpRenameDir, body)
	if err != nil {
		return 0, err
	}
	if st != wire.StatusOK {
		return 0, st.Err()
	}
	if c.cache != nil {
		c.cache.invalidateSubtree(oldC)
		c.cache.invalidateSubtree(newC)
	}
	return int(wire.NewDec(resp).U64()), nil
}

// RenameFile renames a file. Only the metadata object moves (its placement
// key directory_uuid + file_name changed); data blocks are addressed by the
// stable file UUID and never move (§3.4.2).
func (c *Client) RenameFile(oldPath, newPath string) error {
	tid := c.newTrace()
	oldParent, _, oldName, err := c.splitPath(oldPath, tid)
	if err != nil {
		return err
	}
	newParent, _, newName, err := c.splitPath(newPath, tid)
	if err != nil {
		return err
	}
	m, err := c.statOn(oldParent.UUID(), oldName, tid)
	if err != nil {
		return err
	}
	body := wire.NewEnc().UUID(newParent.UUID()).Str(newName).
		U32(0).U32(0).U32(0).Bool(true).
		Blob(m.Access).Blob(m.Content).Bytes()
	st, _, err := c.fmsFor(newParent.UUID(), newName).CallT(tid, wire.OpCreateFile, body)
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	rm := wire.NewEnc().UUID(oldParent.UUID()).Str(oldName).U32(c.uid).U32(c.gid).Bytes()
	st, _, err = c.fmsFor(oldParent.UUID(), oldName).CallT(tid, wire.OpRemoveFile, rm)
	if err != nil {
		return err
	}
	return st.Err()
}
