package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the admin HTTP surface over the given registries:
//
//	/metrics     Prometheus text exposition (registries merged)
//	/debug/vars  expvar JSON (includes Go runtime memstats)
//	/debug/pprof profiling endpoints (index, profile, heap, trace, ...)
func Handler(regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snaps := make([]Snapshot, len(regs))
		for i, reg := range regs {
			snaps[i] = reg.Snapshot()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Merge(snaps...).WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "locofs admin: /metrics /debug/vars /debug/pprof/")
	})
	return mux
}

// Serve starts the admin surface on addr in a background goroutine and
// returns the server plus the bound address (useful with ":0").
func Serve(addr string, regs ...*Registry) (*http.Server, string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(regs...)}
	go func() { _ = srv.Serve(l) }()
	return srv, l.Addr().String(), nil
}
