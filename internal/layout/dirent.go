package layout

import (
	"encoding/binary"
	"errors"
	"sort"

	"locofs/internal/uuid"
)

// Dirent is one backward directory entry: the name of a child plus the
// child's UUID. In the flattened directory tree (§3.2.1) dirents are not
// stored inside their parent directory's data blocks; instead all children
// of a directory that land on the same metadata server have their dirents
// concatenated into a single KV value keyed by the parent's uuid.
//
// The concatenated value is an append-only log: an insertion appends a live
// entry, a removal appends a *tombstone* for the name. This keeps both
// create and remove O(appended bytes) regardless of directory width —
// matching the append-friendly behavior of the log-structured KV stores the
// design targets — at the cost of periodic compaction (CompactDirents),
// which servers amortize over removals.
//
// Entry encoding: uvarint header = nameLen<<1 | tombstoneBit, name bytes,
// and (live entries only) the 16-byte UUID.
type Dirent struct {
	Name string
	UUID uuid.UUID
}

// ErrCorruptDirentList reports a malformed concatenated dirent value.
var ErrCorruptDirentList = errors.New("layout: corrupt dirent list")

// AppendDirent appends one live dirent to a concatenated dirent value.
func AppendDirent(list []byte, e Dirent) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(e.Name))<<1)
	list = append(list, lenBuf[:n]...)
	list = append(list, e.Name...)
	return append(list, e.UUID[:]...)
}

// AppendDirentTombstone appends a removal marker for name.
func AppendDirentTombstone(list []byte, name string) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(name))<<1|1)
	list = append(list, lenBuf[:n]...)
	return append(list, name...)
}

// walkDirents replays the log in order, calling fn for every record. A
// tombstone record has tomb == true and a zero UUID.
func walkDirents(list []byte, fn func(name []byte, u []byte, tomb bool) bool) error {
	for len(list) > 0 {
		hdr, n := binary.Uvarint(list)
		if n <= 0 {
			return ErrCorruptDirentList
		}
		list = list[n:]
		nameLen := hdr >> 1
		tomb := hdr&1 == 1
		need := nameLen
		if !tomb {
			need += uuid.Size
		}
		if uint64(len(list)) < need {
			return ErrCorruptDirentList
		}
		name := list[:nameLen]
		list = list[nameLen:]
		var u []byte
		if !tomb {
			u = list[:uuid.Size]
			list = list[uuid.Size:]
		}
		if !fn(name, u, tomb) {
			return nil
		}
	}
	return nil
}

// DecodeDirents replays a concatenated dirent value into its live entries,
// in first-insertion order.
func DecodeDirents(list []byte) ([]Dirent, error) {
	var order []string
	ordered := map[string]bool{}
	live := map[string]uuid.UUID{}
	err := walkDirents(list, func(name, u []byte, tomb bool) bool {
		key := string(name)
		if tomb {
			delete(live, key)
			return true
		}
		if !ordered[key] {
			ordered[key] = true
			order = append(order, key)
		}
		live[key] = uuid.MustFromBytes(u)
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]Dirent, 0, len(live))
	for _, name := range order {
		if u, ok := live[name]; ok {
			out = append(out, Dirent{Name: name, UUID: u})
		}
	}
	return out, nil
}

// FindDirent replays the list and reports the final state of name.
func FindDirent(list []byte, name string) (Dirent, bool, error) {
	var found bool
	var u uuid.UUID
	err := walkDirents(list, func(ename, eu []byte, tomb bool) bool {
		if string(ename) != name {
			return true
		}
		if tomb {
			found = false
			return true
		}
		found = true
		u = uuid.MustFromBytes(eu)
		return true
	})
	if err != nil {
		return Dirent{}, false, err
	}
	if !found {
		return Dirent{}, false, nil
	}
	return Dirent{Name: name, UUID: u}, true, nil
}

// CountDirents returns the number of live entries in the list.
func CountDirents(list []byte) (int, error) {
	ents, err := DecodeDirents(list)
	if err != nil {
		return 0, err
	}
	return len(ents), nil
}

// CompactDirents rewrites the log with tombstones (and the records they
// killed) dropped, returning the compacted value and the live entry count.
func CompactDirents(list []byte) ([]byte, int, error) {
	ents, err := DecodeDirents(list)
	if err != nil {
		return nil, 0, err
	}
	out := make([]byte, 0, len(list))
	for _, e := range ents {
		out = AppendDirent(out, e)
	}
	return out, len(ents), nil
}

// DirentPage decodes the log and returns up to limit live entries in name
// order, strictly after cursor (empty cursor = from the start). more
// reports whether entries remain beyond the page. limit <= 0 means no
// bound. Servers use it to answer readdir in size-bounded pages.
func DirentPage(list []byte, cursor string, limit int) (ents []Dirent, more bool, err error) {
	ents, remaining, err := DirentPageAt(list, cursor, 0, limit)
	return ents, remaining > 0, err
}

// DirentPageAt is DirentPage with a page offset: it returns the skip-th
// page of size limit after cursor. skip > 0 lets a client prefetch several
// consecutive pages with one cursor — e.g. a batch of sub-requests sharing
// a cursor with skip 0..k-1 fetches k pages in one round trip. skip is
// ignored when limit <= 0 (unbounded page). remaining is the exact number
// of live entries beyond the returned page, letting clients size their
// prefetch batches with no speculative over-fetch.
func DirentPageAt(list []byte, cursor string, skip, limit int) (ents []Dirent, remaining int, err error) {
	all, err := DecodeDirents(list)
	if err != nil {
		return nil, 0, err
	}
	SortDirents(all)
	start := 0
	if cursor != "" {
		start = sort.Search(len(all), func(i int) bool { return all[i].Name > cursor })
	}
	all = all[start:]
	if limit > 0 && skip > 0 {
		off := skip * limit
		if off >= len(all) {
			return nil, 0, nil
		}
		all = all[off:]
	}
	if limit > 0 && len(all) > limit {
		return all[:limit], len(all) - limit, nil
	}
	return all, 0, nil
}

// DirentRecords returns the total record count (live + tombstones), which
// servers use to decide when to compact.
func DirentRecords(list []byte) (int, error) {
	n := 0
	err := walkDirents(list, func(name, u []byte, tomb bool) bool {
		n++
		return true
	})
	return n, err
}

// SortDirents orders entries by name, the order readdir presents them in.
func SortDirents(ents []Dirent) {
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
}
