package client

import (
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/wire"
)

// fanOutLimit bounds the branches one logical operation keeps in flight at
// once. Excess branches queue and start as slots free up, so a client
// talking to very many servers cannot flood its own links.
const fanOutLimit = 16

// batchPageDepth caps how many listing pages a paged readdir requests per
// wire.OpBatch message, bounding each batched response's size. When the
// server reports an exact remaining-entry count the batch is sized to it
// (up to this cap); without one a single follow-up page is fetched per
// round trip, since every page request re-reads the server's dirent log —
// a speculative empty page would cost a full list scan, not just wire
// bytes.
const batchPageDepth = 4

// fanOut runs fn(0..n-1) — each branch typically one or more RPCs to a
// distinct server — and returns the first branch error (nil if none).
//
// In the default parallel mode branches run concurrently, at most
// fanOutLimit in flight; the first failing branch cancels every branch not
// yet started (in-flight branches are drained), which is both the
// first-error bail-out and rmdir's early exit on the first non-empty
// probe. Each branch reports its modeled (virtual) time, and the group is
// accounted at the cost of its slowest branch: the per-call accumulation
// inside the endpoints sums serially, so the difference (sum - max) is
// recorded as parallel savings and subtracted by Client.Cost.
//
// When oc carries a span, every branch runs under its own child span named
// label (with the branch index as its Sub), so traces show the fan-out
// width and per-branch timing. fn receives the branch's opCtx and must pass
// it to the RPCs it issues.
//
// With Config.SerialFanOut the branches run one at a time in order,
// stopping at the first error — the pre-parallel client, kept as the
// benchmark baseline.
func (c *Client) fanOut(oc opCtx, label string, n int, fn func(boc opCtx, i int) (time.Duration, error)) error {
	if n == 0 {
		return nil
	}
	if c.serialFanOut || n == 1 {
		for i := 0; i < n; i++ {
			boc := oc.branch(label, i)
			_, err := fn(boc, i)
			boc.finish(err)
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64 // next branch index to claim
		cancel   atomic.Bool  // set on first error: unstarted branches skip
		errOnce  sync.Once
		firstErr error
		virtMu   sync.Mutex
		virtSum  time.Duration
		virtMax  time.Duration
		wg       sync.WaitGroup
	)
	workers := n
	if workers > fanOutLimit {
		workers = fanOutLimit
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cancel.Load() {
					return
				}
				boc := oc.branch(label, i)
				virt, err := fn(boc, i)
				boc.finish(err)
				virtMu.Lock()
				virtSum += virt
				if virt > virtMax {
					virtMax = virt
				}
				virtMu.Unlock()
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if saved := virtSum - virtMax; saved > 0 {
		c.parSavedNS.Add(int64(saved))
	}
	return firstErr
}

// readPages drains one server's paged directory listing. The first page is
// a single request; when the server reports remaining entries, the
// follow-up pages are fetched as one wire.OpBatch message per
// batchPageDepth pages (sub-request i carries the same cursor and skip=i,
// addressing page i after the cursor), sized from the server's exact
// remaining-entry count, so a large listing costs one round trip per
// batchPageDepth pages instead of one per page. mkBody builds the request
// body for a (cursor, skip) page. Returns the entries and the branch's
// summed virtual time.
func (c *Client) readPages(e *endpoint, oc opCtx, op wire.Op, mkBody func(cursor string, skip uint32) []byte, isDir bool) ([]DirEntry, time.Duration, error) {
	st, resp, virt, err := e.CallV(oc, op, mkBody("", 0))
	if err != nil {
		return nil, virt, err
	}
	if st != wire.StatusOK {
		return nil, virt, st.Err()
	}
	ents, more, remaining, _, err := decodeEntryPage(resp, isDir)
	if err != nil {
		return nil, virt, err
	}
	out, vrest, err := c.readMorePages(e, oc, op, mkBody, isDir, ents, more, remaining)
	return out, virt + vrest, err
}

// readSubdirPages drains the DMS subdirectory listing for a directory
// whose inode was cached but whose listing was not. e is the endpoint
// owning the listing (the routed partition leader, or the bootstrap DMS
// when unsharded) and src its partition. It is readPages with one
// addition: when the first page is the complete listing and carries a
// listing lease, it is installed in the directory cache, so the next
// readdir's DMS branch costs zero trips (the cold-miss path does the same
// inside resolveForReaddir).
func (c *Client) readSubdirPages(e *endpoint, src uint32, cleaned string, oc opCtx, mkBody func(cursor string, skip uint32) []byte) ([]DirEntry, time.Duration, error) {
	st, resp, virt, err := e.CallV(oc, wire.OpReaddirSubdirs, mkBody("", 0))
	if err != nil {
		return nil, virt, err
	}
	if st != wire.StatusOK {
		return nil, virt, st.Err()
	}
	ents, more, remaining, g, err := decodeEntryPage(resp, true)
	if err != nil {
		return nil, virt, err
	}
	if c.cache != nil && g.Valid() && !more {
		c.cache.putListFrom(src, cleaned, ents, g)
	}
	out, vrest, err := c.readMorePages(e, oc, wire.OpReaddirSubdirs, mkBody, true, ents, more, remaining)
	return out, virt + vrest, err
}

// readMorePages continues a paged listing whose first page (first, more,
// remaining) was already fetched — by readPages, or prefetched inside a
// batched DMS lookup (see resolveForReaddir).
func (c *Client) readMorePages(e *endpoint, oc opCtx, op wire.Op, mkBody func(cursor string, skip uint32) []byte, isDir bool, first []DirEntry, more bool, remaining int) ([]DirEntry, time.Duration, error) {
	out := first
	var vtotal time.Duration
	for more && len(out) > 0 {
		cursor := out[len(out)-1].Name
		// Size the batch from the server's exact remaining count; with
		// none reported, fall back to one page per round trip (an empty
		// speculative page would still cost a full dirent-log scan
		// server-side).
		pages := 1
		if !c.disableBatch && remaining > 0 {
			pages = (remaining + ReaddirPageSize - 1) / ReaddirPageSize
			if pages > batchPageDepth {
				pages = batchPageDepth
			}
		}
		if pages == 1 {
			st, resp, virt, err := e.CallV(oc, op, mkBody(cursor, 0))
			vtotal += virt
			if err != nil {
				return nil, vtotal, err
			}
			if st != wire.StatusOK {
				return nil, vtotal, st.Err()
			}
			ents, m, rem, _, err := decodeEntryPage(resp, isDir)
			if err != nil {
				return nil, vtotal, err
			}
			out = append(out, ents...)
			more = m && len(ents) > 0
			remaining = rem
			continue
		}
		subs := make([]wire.SubReq, pages)
		for i := range subs {
			subs[i] = wire.SubReq{Op: op, Body: mkBody(cursor, uint32(i))}
		}
		resps, virt, err := e.CallBatch(oc, subs)
		vtotal += virt
		if err != nil {
			return nil, vtotal, err
		}
		more = false
		for _, r := range resps {
			if r.Status != wire.StatusOK {
				return nil, vtotal, r.Status.Err()
			}
			ents, m, rem, _, err := decodeEntryPage(r.Body, isDir)
			if err != nil {
				return nil, vtotal, err
			}
			out = append(out, ents...)
			if len(ents) == 0 {
				more = false
				break
			}
			more = m
			remaining = rem
		}
	}
	return out, vtotal, nil
}
