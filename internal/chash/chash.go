// Package chash implements the consistent-hash ring LocoFS uses to place
// file metadata on File Metadata Servers (§3.1): the key
// directory_uuid + file_name is hashed onto a ring of virtual nodes, so a
// file's FMS is computable by any client with no directory-tree traversal,
// and adding or removing a server relocates only ~1/n of the keys.
package chash

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the number of ring points per server. More points
// smooth the load distribution at the cost of a larger ring.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring mapping byte-string keys to integer server
// IDs. It is safe for concurrent use; lookups take a read lock only.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	epoch  uint64
	points []point // sorted by hash
	ids    map[int]struct{}
}

type point struct {
	hash uint64
	id   int
}

// NewRing returns a ring with vnodes virtual nodes per server (or
// DefaultVirtualNodes if vnodes <= 0) containing the given server IDs.
func NewRing(vnodes int, serverIDs ...int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes, ids: make(map[int]struct{})}
	for _, id := range serverIDs {
		r.Add(id)
	}
	return r
}

func hashKey(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV alone distributes similar short
// strings (like the vnode labels) poorly around the ring; the finalizer
// provides full avalanche so arcs are near-uniform. The function is fixed —
// placement must be stable across process restarts.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a server's virtual nodes into the ring. Adding an existing
// server is a no-op.
func (r *Ring) Add(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ids[id]; ok {
		return
	}
	r.ids[id] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		h := hashKey([]byte(fmt.Sprintf("srv-%d-vn-%d", id, v)))
		r.points = append(r.points, point{hash: h, id: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a server's virtual nodes from the ring.
func (r *Ring) Remove(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ids[id]; !ok {
		return
	}
	delete(r.ids, id)
	out := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			out = append(out, p)
		}
	}
	r.points = out
}

// Locate returns the server ID owning key. It panics if the ring is empty —
// a configuration error, not a runtime condition.
func (r *Ring) Locate(key []byte) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		panic("chash: locate on empty ring")
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// Servers returns the current server IDs in ascending order.
func (r *Ring) Servers() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.ids))
	for id := range r.ids {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of servers on the ring.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ids)
}

// Epoch returns the ring's membership epoch. Epochs are assigned by the
// membership-change coordinator; a ring built statically has epoch 0.
func (r *Ring) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// SetEpoch stamps the ring with a membership epoch.
func (r *Ring) SetEpoch(e uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch = e
}

// Clone returns an independent copy of the ring (same vnode count, servers
// and epoch). The copy shares no state with the original, so one side can be
// mutated to model a membership change while the other keeps serving.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Ring{vnodes: r.vnodes, epoch: r.epoch, ids: make(map[int]struct{}, len(r.ids))}
	for id := range r.ids {
		c.ids[id] = struct{}{}
	}
	c.points = append([]point(nil), r.points...)
	return c
}

// Moved reports whether key is owned by different servers on the two rings —
// i.e. whether a membership change from old to next relocates it. Both rings
// must be non-empty.
func Moved(old, next *Ring, key []byte) bool {
	return old.Locate(key) != next.Locate(key)
}

// MovedKeys filters keys down to those whose owner differs between old and
// next — the ~1/n slice a membership change actually migrates. The returned
// indices refer to positions in keys.
func MovedKeys(old, next *Ring, keys [][]byte) []int {
	var out []int
	for i, k := range keys {
		if Moved(old, next, k) {
			out = append(out, i)
		}
	}
	return out
}
