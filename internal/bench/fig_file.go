package bench

import (
	"fmt"
	"time"

	"locofs/internal/core"
	"locofs/internal/mdtest"
)

// fig11Phases are the attribute operations of Figure 11.
var fig11Phases = []string{
	mdtest.PhaseChmod, mdtest.PhaseChown, mdtest.PhaseTruncate, mdtest.PhaseAccess,
}

// fig11Systems is the Figure 11 lineup: the LocoFS coupled/decoupled
// ablation plus the baselines.
var fig11Systems = []string{SysLocoDF, SysLocoCF, SysIndexFS, SysLustreD1, SysCephFS, SysGluster}

// Fig11 reproduces "Effects of Decoupled File Metadata": throughput of
// chmod, chown, truncate and access with the paper's 16 metadata servers,
// comparing LocoFS with decoupled file metadata (DF) against the coupled
// ablation (CF) and the baselines.
//
// Paper shape: LocoFS-DF beats LocoFS-CF on every operation (small
// fixed-offset patches vs whole-value (de)serialization), and both beat the
// baselines.
func Fig11(env Env) (*Table, error) {
	n := env.MaxServers()
	t := &Table{
		Title:   fmt.Sprintf("Figure 11: decoupled vs coupled file metadata, %d metadata servers (modeled IOPS)", n),
		Note:    "DF = decoupled (LocoFS), CF = coupled ablation; saturated (server-bound) throughput",
		Headers: append([]string{"op"}, fig11Systems...),
	}
	phases := append([]string{mdtest.PhaseTouch}, fig11Phases...)
	perSys := map[string]Throughputs{}
	for _, sys := range fig11Systems {
		sut, err := StartSystem(sys, n, env.Link)
		if err != nil {
			return nil, err
		}
		// Report saturated (server-bound) throughput: the decoupling effect
		// is a server-side cost difference, visible at saturation.
		_, capacity, err := throughputs(sut, env.Clients(sys, n), env.TputItems, 1, phases)
		sut.Close()
		if err != nil {
			return nil, err
		}
		perSys[sys] = capacity
	}
	for _, op := range fig11Phases {
		row := []string{op}
		for _, sys := range fig11Systems {
			v := perSys[sys][op]
			if v <= 0 {
				// Entirely client-cached operation: no server bound exists.
				row = append(row, "cache")
				continue
			}
			row = append(row, fmtKIOPS(v))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// fig12Block is the object-store block size used in the full-system I/O
// experiment (the data plane transfers in these units).
const fig12Block = 1 << 20

// Fig12 reproduces "The Write and Read Performance": full-system latency of
// a create+write+close (resp. open+read+close) cycle across I/O sizes.
//
// All systems share the LocoFS object store as their data plane (the paper's
// systems likewise separate data from metadata); what differs is each
// system's metadata cost per cycle. Paper shape: for small I/O LocoFS wins
// by the metadata margin (1/2 of Lustre, 1/5 of CephFS at 512 B); past
// ~1 MB data transfer dominates and the systems converge.
func Fig12(env Env) (*Table, error) {
	n := env.MaxServers()
	systems := []string{SysLocoC, SysLustreD1, SysCephFS, SysGluster}
	t := &Table{
		Title: "Figure 12: full-system write/read latency vs I/O size",
		Note: fmt.Sprintf("create+write+close / open+read+close cycles; shared object store, %s blocks, %v RTT link",
			fmtBytes(fig12Block), env.Link.RTT),
		Headers: append([]string{"size", "op"}, systems...),
	}

	// Measure LocoFS end-to-end cycles and its pure-metadata cycle; the
	// difference is the data-plane cost, which is identical for every
	// system.
	cluster, err := core.Start(core.Options{
		FMSCount:  n,
		Link:      env.Link,
		CostModel: &core.PaperKVCost,
		BlockSize: fig12Block,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	cl, err := cluster.NewClient(core.ClientConfig{})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.Mkdir("/io", 0o755); err != nil {
		return nil, err
	}

	files := env.LatItems / 4
	if files < 8 {
		files = 8
	}
	buf := make([]byte, env.IOSizes[len(env.IOSizes)-1])
	writeCycle := func(size, round int) (time.Duration, error) {
		c0 := cl.Cost()
		for i := 0; i < files; i++ {
			p := fmt.Sprintf("/io/w%d-%d-%d", size, round, i)
			if err := cl.Create(p, 0o644); err != nil {
				return 0, err
			}
			f, err := cl.Open(p, true)
			if err != nil {
				return 0, err
			}
			if size > 0 {
				if _, err := f.WriteAt(buf[:size], 0); err != nil {
					return 0, err
				}
			}
			f.Close()
		}
		return (cl.Cost() - c0) / time.Duration(files), nil
	}
	readCycle := func(size, round int) (time.Duration, error) {
		c0 := cl.Cost()
		for i := 0; i < files; i++ {
			p := fmt.Sprintf("/io/w%d-%d-%d", size, round, i)
			f, err := cl.Open(p, false)
			if err != nil {
				return 0, err
			}
			if size > 0 {
				if _, err := f.ReadAt(buf[:size], 0); err != nil {
					return 0, err
				}
			}
			f.Close()
		}
		return (cl.Cost() - c0) / time.Duration(files), nil
	}

	// Pure metadata cycles (no data transferred).
	metaWriteLoco, err := writeCycle(0, 0)
	if err != nil {
		return nil, err
	}
	metaReadLoco, err := readCycle(0, 0)
	if err != nil {
		return nil, err
	}

	// Per-system metadata cycle costs: create + open for write cycles,
	// open (stat) for read cycles.
	metaWrite := map[string]time.Duration{SysLocoC: metaWriteLoco}
	metaRead := map[string]time.Duration{SysLocoC: metaReadLoco}
	for _, sys := range systems[1:] {
		sut, err := StartSystem(sys, n, env.Link)
		if err != nil {
			return nil, err
		}
		lat, err := latencies(sut, env.LatItems/2, 1,
			[]string{mdtest.PhaseTouch, mdtest.PhaseFileStat})
		sut.Close()
		if err != nil {
			return nil, err
		}
		metaWrite[sys] = lat[mdtest.PhaseTouch] + lat[mdtest.PhaseFileStat]
		metaRead[sys] = lat[mdtest.PhaseFileStat]
	}

	for round, size := range env.IOSizes {
		w, err := writeCycle(size, round+1)
		if err != nil {
			return nil, err
		}
		r, err := readCycle(size, round+1)
		if err != nil {
			return nil, err
		}
		dataW := w - metaWriteLoco
		dataR := r - metaReadLoco
		if dataW < 0 {
			dataW = 0
		}
		if dataR < 0 {
			dataR = 0
		}
		wRow := []string{fmtBytes(size), "write"}
		rRow := []string{fmtBytes(size), "read"}
		for _, sys := range systems {
			wRow = append(wRow, fmtUS(metaWrite[sys]+dataW))
			rRow = append(rRow, fmtUS(metaRead[sys]+dataR))
		}
		t.AddRow(wRow...)
		t.AddRow(rRow...)
	}
	return t, nil
}

// fmtBytes renders a byte count compactly.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
