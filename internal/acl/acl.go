// Package acl implements the POSIX-style permission checks LocoFS performs
// on directory ancestors. Because every directory inode lives on the single
// DMS, the whole ancestor chain is checked server-side in one request
// (§3.1) — this package is the per-inode predicate that check applies.
package acl

// Permission bit groups within a mode word.
const (
	bitRead  = 0o4
	bitWrite = 0o2
	bitExec  = 0o1
)

// check tests one permission bit against the owner/group/other classes.
func check(mode, fuid, fgid, uid, gid uint32, bit uint32) bool {
	if uid == 0 { // root bypasses permission checks
		return true
	}
	var shift uint
	switch {
	case uid == fuid:
		shift = 6
	case gid == fgid:
		shift = 3
	default:
		shift = 0
	}
	return mode>>shift&bit != 0
}

// CanRead reports whether (uid, gid) may read an object with the given
// mode/owner.
func CanRead(mode, fuid, fgid, uid, gid uint32) bool {
	return check(mode, fuid, fgid, uid, gid, bitRead)
}

// CanWrite reports whether (uid, gid) may write the object.
func CanWrite(mode, fuid, fgid, uid, gid uint32) bool {
	return check(mode, fuid, fgid, uid, gid, bitWrite)
}

// CanExec reports whether (uid, gid) may execute/traverse the object.
func CanExec(mode, fuid, fgid, uid, gid uint32) bool {
	return check(mode, fuid, fgid, uid, gid, bitExec)
}

// IsOwner reports whether uid owns the object (or is root).
func IsOwner(fuid, uid uint32) bool { return uid == 0 || uid == fuid }
