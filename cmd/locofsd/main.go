// Command locofsd runs LocoFS server components over real TCP, so an
// actual multi-process cluster can be deployed, plus a small client mode
// for poking at it.
//
// Server roles:
//
//	locofsd -role dms  -listen :7000
//	locofsd -role fms  -listen :7001 -id 1 [-coupled]
//	locofsd -role oss  -listen :7002
//
// Client:
//
//	locofsd -role client -dms host:7000 -fms host:7001,host:7003 -oss host:7002 \
//	        -cmd "mkdir /a; touch /a/f; ls /a; stat /a/f; write /a/f hello; read /a/f; rm /a/f"
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"locofs/internal/client"
	"locofs/internal/dms"
	"locofs/internal/fms"
	"locofs/internal/kv"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/rpc"
)

func main() {
	role := flag.String("role", "", "dms | fms | oss | client")
	listen := flag.String("listen", ":7000", "listen address (server roles)")
	id := flag.Int("id", 1, "server id (fms role; must be unique per FMS)")
	coupled := flag.Bool("coupled", false, "coupled file metadata (fms role)")
	dataDir := flag.String("data", "", "data directory for durable metadata (server roles; empty = in-memory)")
	dmsAddr := flag.String("dms", "", "DMS address (client role)")
	fmsAddrs := flag.String("fms", "", "comma-separated FMS addresses in server-id order (client role)")
	ossAddrs := flag.String("oss", "", "comma-separated OSS addresses (client role)")
	cmds := flag.String("cmd", "", "semicolon-separated commands (client role)")
	flag.Parse()

	// With -data, metadata survives restarts: mutations are WAL-logged and
	// periodically snapshotted (see kv.Persistent).
	durable := func(name string, inner kv.Store) kv.Store {
		if *dataDir == "" {
			return inner
		}
		p, err := kv.OpenPersistent(filepath.Join(*dataDir, name), inner)
		if err != nil {
			fmt.Fprintln(os.Stderr, "locofsd:", err)
			os.Exit(1)
		}
		p.SnapshotEvery = 100000
		return p
	}

	switch *role {
	case "dms":
		store := durable("dms", kv.NewBTreeStore())
		serve(*listen, dms.New(dms.Options{Store: store, CheckPermissions: true}).Attach)
	case "fms":
		store := durable(fmt.Sprintf("fms-%d", *id), kv.NewHashStore())
		f := fms.New(fms.Options{Store: store, ServerID: uint32(*id), Coupled: *coupled, CheckPermissions: true})
		serve(*listen, f.Attach)
	case "oss":
		serve(*listen, objstore.New(durable("oss", kv.NewHashStore())).Attach)
	case "client":
		runClient(*dmsAddr, *fmsAddrs, *ossAddrs, *cmds)
	default:
		fmt.Fprintln(os.Stderr, "locofsd: -role must be dms, fms, oss or client")
		flag.Usage()
		os.Exit(2)
	}
}

// serve runs one server role until interrupted.
func serve(addr string, attach func(*rpc.Server)) {
	l, err := netsim.ListenTCP(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locofsd:", err)
		os.Exit(1)
	}
	rs := rpc.NewServer()
	attach(rs)
	go rs.Serve(l)
	fmt.Printf("locofsd: serving on %s\n", l.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("locofsd: shutting down")
	rs.Shutdown()
}

// runClient connects to a TCP cluster and executes simple commands.
func runClient(dmsAddr, fmsList, ossList, cmds string) {
	if dmsAddr == "" || fmsList == "" || ossList == "" {
		fmt.Fprintln(os.Stderr, "locofsd client: -dms, -fms and -oss are required")
		os.Exit(2)
	}
	cl, err := client.Dial(client.Config{
		Dialer:   netsim.TCPDialer{},
		DMSAddr:  dmsAddr,
		FMSAddrs: strings.Split(fmsList, ","),
		OSSAddrs: strings.Split(ossList, ","),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "locofsd client:", err)
		os.Exit(1)
	}
	defer cl.Close()

	for _, raw := range strings.Split(cmds, ";") {
		fields := strings.Fields(strings.TrimSpace(raw))
		if len(fields) == 0 {
			continue
		}
		if err := execCmd(cl, fields); err != nil {
			fmt.Fprintf(os.Stderr, "locofsd client: %s: %v\n", strings.Join(fields, " "), err)
			os.Exit(1)
		}
	}
}

func execCmd(cl *client.Client, fields []string) error {
	cmd := fields[0]
	arg := func(i int) string {
		if i < len(fields) {
			return fields[i]
		}
		return ""
	}
	switch cmd {
	case "mkdir":
		return cl.Mkdir(arg(1), 0o755)
	case "rmdir":
		return cl.Rmdir(arg(1))
	case "touch":
		return cl.Create(arg(1), 0o644)
	case "rm":
		return cl.Remove(arg(1))
	case "ls":
		ents, err := cl.Readdir(arg(1))
		if err != nil {
			return err
		}
		for _, e := range ents {
			kind := "f"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %s\n", kind, e.Name)
		}
		return nil
	case "stat":
		a, err := cl.Stat(arg(1))
		if err != nil {
			return err
		}
		fmt.Printf("mode=%o uid=%d gid=%d size=%d uuid=%v dir=%v\n",
			a.Mode, a.UID, a.GID, a.Size, a.UUID, a.IsDir)
		return nil
	case "write":
		f, err := cl.Open(arg(1), true)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.WriteAt([]byte(strings.Join(fields[2:], " ")), 0)
		return err
	case "read":
		f, err := cl.Open(arg(1), false)
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, f.Size())
		n, err := f.ReadAt(buf, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", buf[:n])
		return nil
	case "mv":
		if err := cl.RenameFile(arg(1), arg(2)); err == nil {
			return nil
		}
		_, err := cl.RenameDir(arg(1), arg(2))
		return err
	}
	return fmt.Errorf("unknown command %q (mkdir rmdir touch rm ls stat write read mv)", cmd)
}
