package client

import (
	"testing"
	"time"

	"locofs/internal/dms"
	"locofs/internal/fms"
	"locofs/internal/netsim"
	"locofs/internal/objstore"
	"locofs/internal/rpc"
	"locofs/internal/wire"
)

// TestLeaseCoherenceOverTCP runs the stale-lease detection flow over real
// TCP sockets — the deployment mode of cmd/locofsd: a reader caches
// directory state, a writer mutates it, the reader observes the bumped
// recall sequence stamped on an unrelated response header, and its next
// access must re-resolve instead of serving the stale entry. The no-batch
// variant covers the standalone OpLeaseRecall fallback: without batching
// the recall fetch cannot ride along with a lookup, but the reader must
// still catch its applied watermark up instead of degrading every cached
// entry forever.
func TestLeaseCoherenceOverTCP(t *testing.T) {
	t.Run("batched", func(t *testing.T) { testLeaseCoherenceOverTCP(t, false) })
	t.Run("no-batch", func(t *testing.T) { testLeaseCoherenceOverTCP(t, true) })
}

func testLeaseCoherenceOverTCP(t *testing.T, disableBatch bool) {
	listen := func(attach func(*rpc.Server)) string {
		l, err := netsim.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rs := rpc.NewServer()
		attach(rs)
		go rs.Serve(l)
		t.Cleanup(rs.Shutdown)
		return l.Addr()
	}
	dmsAddr := listen(dms.New(dms.Options{}).Attach)
	fmsAddr := listen(fms.New(fms.Options{ServerID: 1}).Attach)
	ossAddr := listen(objstore.New(nil).Attach)

	dial := func() *Client {
		c, err := Dial(Config{
			Dialer:          netsim.TCPDialer{},
			DMSAddr:         dmsAddr,
			FMSAddrs:        []string{fmsAddr},
			OSSAddrs:        []string{ossAddr},
			DisableBatchRPC: disableBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	reader, writer := dial(), dial()

	for _, p := range []string{"/d", "/obs"} {
		if err := writer.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
	}

	// Reader caches the attr and a negative entry, both over TCP.
	if a, err := reader.StatDir("/d"); err != nil || a.Mode&0o777 != 0o755 {
		t.Fatalf("stat over tcp: %+v, %v", a, err)
	}
	if _, err := reader.StatDir("/d/x"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Fatalf("want ENOENT over tcp, got %v", err)
	}
	trips := reader.Trips()
	if _, err := reader.StatDir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.StatDir("/d/x"); wire.StatusOf(err) != wire.StatusNotFound {
		t.Fatalf("want cached ENOENT, got %v", err)
	}
	if reader.Trips() != trips {
		t.Fatal("repeat accesses not served from cache over tcp")
	}

	// Writer invalidates both; its grants are live so the DMS publishes.
	if err := writer.ChmodDir("/d", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := writer.Mkdir("/d/x", 0o755); err != nil {
		t.Fatal(err)
	}

	// The reader sees the new sequence stamped on an unrelated response's
	// 61-byte header, detects its entries as possibly stale, and
	// re-resolves both on next access.
	if _, err := reader.StatDir("/obs"); err != nil {
		t.Fatal(err)
	}
	if a, err := reader.StatDir("/d"); err != nil || a.Mode&0o777 != 0o700 {
		t.Fatalf("stale attr over tcp: %+v, %v", a, err)
	}
	if _, err := reader.StatDir("/d/x"); err != nil {
		t.Fatalf("stale ENOENT over tcp: %v", err)
	}
	d := reader.CacheDetail()
	if d.StaleMisses == 0 {
		t.Error("freshness gate never fired over tcp")
	}
	if d.AppliedSeq != d.MaxSeq {
		t.Errorf("reader not caught up over tcp: applied %d, observed %d", d.AppliedSeq, d.MaxSeq)
	}
}

// TestHotTierRefreshOverTCP exercises the hot-entry tier end to end: a
// client with HotEntries keeps re-resolving its top directories in the
// background, so a hot entry stays servable past the plain lease without a
// foreground miss.
func TestHotTierRefreshOverTCP(t *testing.T) {
	l, err := netsim.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := rpc.NewServer()
	dms.New(dms.Options{LeaseDur: 50 * time.Millisecond}).Attach(rs)
	go rs.Serve(l)
	t.Cleanup(rs.Shutdown)
	fl, err := netsim.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	frs := rpc.NewServer()
	fms.New(fms.Options{ServerID: 1}).Attach(frs)
	go frs.Serve(fl)
	t.Cleanup(frs.Shutdown)

	c, err := Dial(Config{
		Dialer:             netsim.TCPDialer{},
		DMSAddr:            l.Addr(),
		FMSAddrs:           []string{fl.Addr()},
		OSSAddrs:           []string{fl.Addr()}, // unused
		HotEntries:         4,
		HotRefreshInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Mkdir("/hot", 0o755); err != nil {
		t.Fatal(err)
	}
	// Touch it enough to rank in the TopK, and give the refresher a few
	// ticks to install the hot set and start re-resolving.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.StatDir("/hot"); err != nil {
			t.Fatal(err)
		}
		if c.cache.isHot("/hot") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !c.cache.isHot("/hot") {
		t.Fatal("hot set never installed")
	}
	// Wait past several plain lease durations; the refresher must keep the
	// entry warm, so a stat is a cache hit (zero trips).
	time.Sleep(150 * time.Millisecond)
	trips := c.Trips()
	if _, err := c.StatDir("/hot"); err != nil {
		t.Fatal(err)
	}
	if c.Trips() != trips {
		t.Error("hot entry was not kept warm by the background refresher")
	}
}
