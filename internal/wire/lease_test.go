package wire

import "testing"

func TestLeaseGrantTrailerRoundTrip(t *testing.T) {
	// A grant appended after arbitrary payload decodes once the payload is
	// consumed — the trailing-extension pattern readdir's remaining count uses.
	e := NewEnc()
	e.U32(2).Str("a").Str("b")
	AppendLeaseGrant(e, LeaseGrant{Seq: 7, DurMS: 30_000})
	d := NewDec(e.Bytes())
	if n := d.U32(); n != 2 {
		t.Fatalf("payload count = %d", n)
	}
	if d.Str() != "a" || d.Str() != "b" {
		t.Fatal("payload strings mangled")
	}
	g := DecodeLeaseGrant(d)
	if !g.Valid() || g.Seq != 7 || g.DurMS != 30_000 {
		t.Errorf("grant = %+v", g)
	}
	if d.Remaining() != 0 {
		t.Errorf("leftover bytes: %d", d.Remaining())
	}
}

func TestLeaseGrantAbsent(t *testing.T) {
	// An old-format body without the trailer yields the zero (invalid) grant.
	e := NewEnc()
	e.U32(1).Str("only")
	d := NewDec(e.Bytes())
	d.U32()
	d.Str()
	if g := DecodeLeaseGrant(d); g.Valid() {
		t.Errorf("grant from trailerless body = %+v", g)
	}
	var zero LeaseGrant
	if zero.Valid() {
		t.Error("zero grant must be invalid")
	}
}

func TestRecallReqRoundTrip(t *testing.T) {
	body := EncodeRecallReq(41)
	since, err := DecodeRecallReq(body)
	if err != nil || since != 41 {
		t.Errorf("since = %d, err = %v", since, err)
	}
}

func TestRecallRespRoundTrip(t *testing.T) {
	in := []Recall{
		{Seq: 5, Kind: RecallCreated, Path: "/a/b"},
		{Seq: 6, Kind: RecallRemoved, Path: "/a"},
		{Seq: 7, Kind: RecallPatched, Path: "/c"},
	}
	body := EncodeRecallResp(7, false, in)
	cur, reset, got, err := DecodeRecallResp(body)
	if err != nil {
		t.Fatal(err)
	}
	if cur != 7 || reset {
		t.Errorf("cur=%d reset=%v", cur, reset)
	}
	if len(got) != len(in) {
		t.Fatalf("entries = %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestRecallRespReset(t *testing.T) {
	body := EncodeRecallResp(99, true, nil)
	cur, reset, entries, err := DecodeRecallResp(body)
	if err != nil || cur != 99 || !reset || len(entries) != 0 {
		t.Errorf("cur=%d reset=%v entries=%v err=%v", cur, reset, entries, err)
	}
}

func TestRecallRespTruncated(t *testing.T) {
	body := EncodeRecallResp(3, false, []Recall{{Seq: 3, Kind: RecallCreated, Path: "/x"}})
	if _, _, _, err := DecodeRecallResp(body[:len(body)-2]); err == nil {
		t.Error("truncated recall response decoded without error")
	}
}

func TestLeaseRecallOpProperties(t *testing.T) {
	if !OpLeaseRecall.Idempotent() {
		t.Error("OpLeaseRecall must be idempotent (pure read of the recall log)")
	}
	if OpLeaseRecall.String() != "LeaseRecall" {
		t.Errorf("String() = %q", OpLeaseRecall.String())
	}
	kinds := map[RecallKind]string{RecallCreated: "created", RecallRemoved: "removed", RecallPatched: "patched"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d String() = %q, want %q", k, k.String(), want)
		}
	}
}
