package lsm

import (
	"fmt"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	const n = 10000
	b := newBloom(n)
	for i := 0; i < n; i++ {
		b.add([]byte(fmt.Sprintf("present-%d", i)))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if b.mayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key, 4 hashes → ~2%; allow generous slack.
	if rate > 0.08 {
		t.Errorf("false positive rate = %.3f, want < 0.08", rate)
	}
}

func TestBloomEmptyAndTiny(t *testing.T) {
	b := newBloom(0)
	if b.mayContain([]byte("anything")) {
		t.Error("empty filter claims containment")
	}
	b.add([]byte("x"))
	if !b.mayContain([]byte("x")) {
		t.Error("tiny filter lost its key")
	}
}

// TestRunFilterSkipsAbsentKeys exercises the filter through the run API.
func TestRunFilterSkipsAbsentKeys(t *testing.T) {
	s := newSkiplist(1)
	for i := 0; i < 500; i++ {
		s.put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"), false)
	}
	r := runFromSkiplist(s)
	if r.filter == nil {
		t.Fatal("run has no filter")
	}
	if _, _, ok := r.get([]byte("k0123")); !ok {
		t.Error("present key rejected")
	}
	miss := 0
	for i := 0; i < 1000; i++ {
		if r.filter.mayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			miss++
		}
	}
	if miss > 100 {
		t.Errorf("filter passes %d/1000 absent keys", miss)
	}
}

// BenchmarkGetAbsentWithBloom quantifies the filter's benefit: point reads
// of absent keys across several runs.
func BenchmarkGetAbsentWithBloom(b *testing.B) {
	s := MustNew(&Options{MemtableBytes: 16 << 10, L0Runs: 100}) // many L0 runs
	for i := 0; i < 20000; i++ {
		s.Put([]byte(fmt.Sprintf("key-%08d", i)), make([]byte, 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("absent-%08d", i)))
	}
}
