// Package netsim provides the message transports LocoFS runs on.
//
// The paper's evaluation is dominated by network round trips: its clusters
// are connected by 1 GbE with a measured RTT of 0.174 ms, and metadata
// latencies are reported normalized to that RTT. To reproduce those
// experiments deterministically on one machine, netsim offers an in-process
// transport that injects a configurable one-way delay (plus an optional
// bandwidth term) into every message, alongside a real TCP transport with
// identical semantics for actual deployments.
package netsim

import (
	"errors"
	"sync"
	"time"

	"locofs/internal/wire"
)

// Conn is a bidirectional, ordered message pipe. Send may be called
// concurrently; Recv must be called from a single goroutine at a time.
type Conn interface {
	Send(m *wire.Msg) error
	Recv() (*wire.Msg, error)
	Close() error
}

// Listener accepts server-side Conns.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// Dialer opens client-side Conns to named endpoints.
type Dialer interface {
	Dial(addr string) (Conn, error)
}

// ErrClosed is returned by operations on a closed Conn, Listener or Network.
var ErrClosed = errors.New("netsim: closed")

// LinkConfig models one network link.
type LinkConfig struct {
	// RTT is the round-trip time; each message is delayed RTT/2 one way.
	RTT time.Duration
	// Bandwidth in bytes/second adds a size-proportional serialization
	// delay. Zero means infinite bandwidth.
	Bandwidth float64
}

// Paper1GbE is the link measured in the paper: 0.174 ms RTT, 1 Gbps.
var Paper1GbE = LinkConfig{RTT: 174 * time.Microsecond, Bandwidth: 125e6}

// Loopback is a zero-latency, infinite-bandwidth link, used for the
// co-located experiments (Fig 10).
var Loopback = LinkConfig{}

// Delay returns the one-way delay for a message of size bytes.
func (lc LinkConfig) Delay(size int) time.Duration {
	d := lc.RTT / 2
	if lc.Bandwidth > 0 {
		d += time.Duration(float64(size) / lc.Bandwidth * float64(time.Second))
	}
	return d
}

// Network is an in-process fabric of named endpoints joined by simulated
// links. It is safe for concurrent use.
type Network struct {
	link LinkConfig

	mu        sync.Mutex
	listeners map[string]*simListener
	conns     []*pipeEnd
	faults    map[string]*faultState // per-address injected faults
	closed    bool
}

// NewNetwork returns a fabric whose links all share the given configuration.
func NewNetwork(link LinkConfig) *Network {
	return &Network{link: link, listeners: make(map[string]*simListener)}
}

// Link returns the fabric's link configuration.
func (n *Network) Link() LinkConfig { return n.link }

// Listen registers addr and returns its listener. Listening twice on one
// address is an error.
func (n *Network) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, errors.New("netsim: address in use: " + addr)
	}
	l := &simListener{net: n, addr: addr, backlog: make(chan Conn, 128)}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to addr, returning the client half of a fresh pipe.
func (n *Network) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, errors.New("netsim: no listener at " + addr)
	}
	client, server := newPipePair(n.link)
	client.fault, server.fault = n.fault(addr), n.fault(addr)
	select {
	case l.backlog <- server:
		n.mu.Lock()
		n.conns = append(n.conns, client, server)
		// Long-lived fabrics accumulate many short-lived connections
		// (e.g. workload clients); prune the already-closed ones so the
		// tracking list stays proportional to live connections.
		if len(n.conns) >= 4096 {
			live := n.conns[:0]
			for _, c := range n.conns {
				select {
				case <-c.closed:
				default:
					live = append(live, c)
				}
			}
			n.conns = live
		}
		n.mu.Unlock()
		return client, nil
	case <-l.done():
		return nil, ErrClosed
	}
}

// Close tears down the fabric: all listeners and every open connection, so
// server loops blocked in Recv unwind and Shutdown can complete.
func (n *Network) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	for _, l := range n.listeners {
		l.shutdown()
	}
	n.listeners = nil
	for _, c := range n.conns {
		c.Close()
	}
	n.conns = nil
	return nil
}

type simListener struct {
	net     *Network
	addr    string
	backlog chan Conn

	once   sync.Once
	doneCh chan struct{}
	closed bool
	mu     sync.Mutex
}

func (l *simListener) done() chan struct{} {
	l.once.Do(func() { l.doneCh = make(chan struct{}) })
	return l.doneCh
}

// Accept returns the next inbound connection.
func (l *simListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done():
		return nil, ErrClosed
	}
}

// Close unregisters the listener.
func (l *simListener) Close() error {
	l.net.mu.Lock()
	if l.net.listeners != nil {
		delete(l.net.listeners, l.addr)
	}
	l.net.mu.Unlock()
	l.shutdown()
	return nil
}

// shutdown marks the listener closed and releases blocked Accepts.
func (l *simListener) shutdown() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.done())
	}
}

// Addr returns the listen address.
func (l *simListener) Addr() string { return l.addr }

// timedMsg is a message annotated with its earliest delivery time.
type timedMsg struct {
	m  *wire.Msg
	at time.Time
}

// pipeEnd is one half of a bidirectional simulated pipe. Messages become
// visible to the peer only after the link delay elapses, modeling
// propagation + serialization latency while preserving FIFO order.
type pipeEnd struct {
	link     LinkConfig
	out      chan timedMsg // messages we send
	in       chan timedMsg // messages we receive
	closed   chan struct{}
	peer     *pipeEnd
	once     sync.Once
	fault    *faultState // shared per-address fault filter (nil = none)
	toServer bool        // true on the client end: our sends travel client→server
}

func newPipePair(link LinkConfig) (client, server *pipeEnd) {
	ab := make(chan timedMsg, 1024)
	ba := make(chan timedMsg, 1024)
	a := &pipeEnd{link: link, out: ab, in: ba, closed: make(chan struct{}), toServer: true}
	b := &pipeEnd{link: link, out: ba, in: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send enqueues m for delivery after the link delay, subject to any fault
// injected on the address (see Network.SetFault): dropped messages vanish
// with Send still reporting success — exactly what a peer that stopped
// answering looks like — while an injected disconnect closes both pipe ends
// like a connection reset.
func (p *pipeEnd) Send(m *wire.Msg) error {
	verdict, extra := p.fault.filter(p.toServer)
	switch verdict {
	case faultDrop:
		return nil
	case faultDisconnect:
		p.Close()
		p.peer.Close()
		return ErrClosed
	}
	// Check closure before racing it against the (usually ready) buffered
	// channel, so sends on a closed pipe fail deterministically.
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	default:
	}
	tm := timedMsg{m: m, at: time.Now().Add(p.link.Delay(m.WireSize()) + extra)}
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	case p.out <- tm:
		return nil
	}
}

// Recv blocks until the next message has both arrived and matured.
func (p *pipeEnd) Recv() (*wire.Msg, error) {
	select {
	case tm := <-p.in:
		if d := time.Until(tm.at); d > 0 {
			time.Sleep(d)
		}
		return tm.m, nil
	case <-p.closed:
		return nil, ErrClosed
	case <-p.peer.closed:
		// Drain anything already in flight before reporting closure.
		select {
		case tm := <-p.in:
			if d := time.Until(tm.at); d > 0 {
				time.Sleep(d)
			}
			return tm.m, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Close shuts down this end; the peer's Recv drains then fails.
func (p *pipeEnd) Close() error {
	p.once.Do(func() { close(p.closed) })
	return nil
}

var (
	_ Conn     = (*pipeEnd)(nil)
	_ Dialer   = (*Network)(nil)
	_ Listener = (*simListener)(nil)
)
