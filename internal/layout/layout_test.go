package layout

import (
	"fmt"
	"testing"
	"testing/quick"

	"locofs/internal/uuid"
)

func TestDirInodeFields(t *testing.T) {
	d := NewDirInode()
	if !d.Valid() {
		t.Fatalf("NewDirInode length = %d, want %d", len(d), DirInodeSize)
	}
	if d.Mode()&ModeDir == 0 {
		t.Error("new dir inode lacks ModeDir bit")
	}
	u := uuid.New(2, 7)
	d.SetCTime(123456789)
	d.SetMode(ModeDir | 0o700)
	d.SetUID(1000)
	d.SetGID(2000)
	d.SetUUID(u)
	if d.CTime() != 123456789 {
		t.Errorf("CTime = %d", d.CTime())
	}
	if d.Mode() != ModeDir|0o700 {
		t.Errorf("Mode = %o", d.Mode())
	}
	if d.UID() != 1000 || d.GID() != 2000 {
		t.Errorf("UID/GID = %d/%d", d.UID(), d.GID())
	}
	if d.UUID() != u {
		t.Errorf("UUID = %v, want %v", d.UUID(), u)
	}
}

func TestDirInodeCloneIndependent(t *testing.T) {
	d := NewDirInode()
	d.SetUID(1)
	c := d.Clone()
	c.SetUID(2)
	if d.UID() != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestFileAccessFields(t *testing.T) {
	a := NewFileAccess()
	if !a.Valid() {
		t.Fatalf("length = %d, want %d", len(a), FileAccessSize)
	}
	if a.Mode()&ModeFile == 0 {
		t.Error("new access part lacks ModeFile bit")
	}
	a.SetCTime(-5) // negative times must round-trip
	a.SetMode(ModeFile | 0o600)
	a.SetUID(10)
	a.SetGID(20)
	if a.CTime() != -5 || a.Mode() != ModeFile|0o600 || a.UID() != 10 || a.GID() != 20 {
		t.Errorf("fields = %d %o %d %d", a.CTime(), a.Mode(), a.UID(), a.GID())
	}
}

func TestFileContentFields(t *testing.T) {
	c := NewFileContent(4096)
	if !c.Valid() {
		t.Fatalf("length = %d, want %d", len(c), FileContentSize)
	}
	if c.BlockSize() != 4096 {
		t.Errorf("BlockSize = %d", c.BlockSize())
	}
	u := uuid.New(9, 9)
	c.SetMTime(1)
	c.SetATime(2)
	c.SetSize(1 << 40)
	c.SetUUID(u)
	if c.MTime() != 1 || c.ATime() != 2 || c.Size() != 1<<40 || c.UUID() != u {
		t.Errorf("fields = %d %d %d %v", c.MTime(), c.ATime(), c.Size(), c.UUID())
	}
}

func TestFieldPatchApply(t *testing.T) {
	a := NewFileAccess()
	for _, p := range PatchAccessMode(0o777, 42) {
		if err := p.Apply(a); err != nil {
			t.Fatal(err)
		}
	}
	if a.Mode() != 0o777 || a.CTime() != 42 {
		t.Errorf("after patch: mode=%o ctime=%d", a.Mode(), a.CTime())
	}
}

func TestFieldPatchOutOfRange(t *testing.T) {
	p := FieldPatch{Off: 100, Data: make([]byte, 8)}
	if err := p.Apply(make([]byte, 20)); err == nil {
		t.Error("out-of-range patch did not error")
	}
	p = FieldPatch{Off: -1, Data: []byte{1}}
	if err := p.Apply(make([]byte, 20)); err == nil {
		t.Error("negative-offset patch did not error")
	}
}

func TestPatchAccessOwner(t *testing.T) {
	a := NewFileAccess()
	for _, p := range PatchAccessOwner(111, 222, 7) {
		if err := p.Apply(a); err != nil {
			t.Fatal(err)
		}
	}
	if a.UID() != 111 || a.GID() != 222 || a.CTime() != 7 {
		t.Errorf("after chown patch: uid=%d gid=%d ctime=%d", a.UID(), a.GID(), a.CTime())
	}
}

func TestPatchContentSize(t *testing.T) {
	c := NewFileContent(512)
	for _, p := range PatchContentSize(9999, 88) {
		if err := p.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	if c.Size() != 9999 || c.MTime() != 88 {
		t.Errorf("after size patch: size=%d mtime=%d", c.Size(), c.MTime())
	}
	if c.BlockSize() != 512 {
		t.Error("size patch clobbered block size")
	}
}

func TestDirentAppendDecode(t *testing.T) {
	var list []byte
	want := []Dirent{
		{Name: "a", UUID: uuid.New(1, 1)},
		{Name: "subdir-with-longer-name", UUID: uuid.New(1, 2)},
		{Name: "文件", UUID: uuid.New(2, 3)},
	}
	for _, e := range want {
		list = AppendDirent(list, e)
	}
	got, err := DecodeDirents(list)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDirentEmptyName(t *testing.T) {
	list := AppendDirent(nil, Dirent{Name: "", UUID: uuid.New(1, 1)})
	got, err := DecodeDirents(list)
	if err != nil || len(got) != 1 || got[0].Name != "" {
		t.Errorf("empty-name dirent: %v %v", got, err)
	}
}

func TestDirentTombstone(t *testing.T) {
	var list []byte
	for _, n := range []string{"a", "b", "c"} {
		list = AppendDirent(list, Dirent{Name: n, UUID: uuid.New(1, 1)})
	}
	list = AppendDirentTombstone(list, "b")
	ents, err := DecodeDirents(list)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "a" || ents[1].Name != "c" {
		t.Errorf("after tombstone: %+v", ents)
	}
	// Tombstoning a missing name is harmless.
	list = AppendDirentTombstone(list, "zzz")
	if n, _ := CountDirents(list); n != 2 {
		t.Errorf("count after no-op tombstone = %d", n)
	}
	// Re-adding after a tombstone resurrects the name with the new UUID.
	list = AppendDirent(list, Dirent{Name: "b", UUID: uuid.New(2, 2)})
	e, ok, err := FindDirent(list, "b")
	if err != nil || !ok || e.UUID != uuid.New(2, 2) {
		t.Errorf("resurrected b = %+v %v %v", e, ok, err)
	}
	ents, _ = DecodeDirents(list)
	names := map[string]int{}
	for _, e := range ents {
		names[e.Name]++
	}
	for n, c := range names {
		if c != 1 {
			t.Errorf("name %q appears %d times", n, c)
		}
	}
}

func TestCompactDirents(t *testing.T) {
	var list []byte
	for i := 0; i < 10; i++ {
		list = AppendDirent(list, Dirent{Name: fmt.Sprintf("f%d", i), UUID: uuid.New(1, uint64(i+1))})
	}
	for i := 0; i < 8; i++ {
		list = AppendDirentTombstone(list, fmt.Sprintf("f%d", i))
	}
	recs, err := DirentRecords(list)
	if err != nil || recs != 18 {
		t.Fatalf("DirentRecords = %d, %v", recs, err)
	}
	out, live, err := CompactDirents(list)
	if err != nil || live != 2 {
		t.Fatalf("CompactDirents live = %d, %v", live, err)
	}
	if len(out) >= len(list) {
		t.Errorf("compaction did not shrink: %d -> %d bytes", len(list), len(out))
	}
	ents, _ := DecodeDirents(out)
	if len(ents) != 2 || ents[0].Name != "f8" || ents[1].Name != "f9" {
		t.Errorf("compacted = %+v", ents)
	}
	if recs, _ := DirentRecords(out); recs != 2 {
		t.Errorf("records after compaction = %d", recs)
	}
}

func TestFindDirent(t *testing.T) {
	var list []byte
	for i, n := range []string{"x", "y", "z"} {
		list = AppendDirent(list, Dirent{Name: n, UUID: uuid.New(0, uint64(i+1))})
	}
	e, ok, err := FindDirent(list, "y")
	if err != nil || !ok || e.UUID.FID() != 2 {
		t.Errorf("FindDirent(y) = %+v %v %v", e, ok, err)
	}
	_, ok, err = FindDirent(list, "nope")
	if err != nil || ok {
		t.Errorf("FindDirent(nope) ok=%v err=%v", ok, err)
	}
}

func TestCountDirents(t *testing.T) {
	var list []byte
	for i := 0; i < 37; i++ {
		list = AppendDirent(list, Dirent{Name: fmt.Sprintf("f%d", i), UUID: uuid.New(1, uint64(i+1))})
	}
	n, err := CountDirents(list)
	if err != nil || n != 37 {
		t.Errorf("CountDirents = %d, %v", n, err)
	}
	// Re-inserting an existing name does not grow the live count.
	list = AppendDirent(list, Dirent{Name: "f0", UUID: uuid.New(2, 1)})
	if n, _ := CountDirents(list); n != 37 {
		t.Errorf("CountDirents after re-insert = %d, want 37", n)
	}
}

func TestDecodeDirentsCorrupt(t *testing.T) {
	list := AppendDirent(nil, Dirent{Name: "abc", UUID: uuid.New(1, 1)})
	if _, err := DecodeDirents(list[:len(list)-3]); err == nil {
		t.Error("truncated list decoded without error")
	}
	if _, _, err := FindDirent(list[:len(list)-3], "abc"); err == nil {
		t.Error("truncated list searched without error")
	}
	if _, err := CountDirents(list[:len(list)-3]); err == nil {
		t.Error("truncated list counted without error")
	}
}

func TestQuickDirentRoundTrip(t *testing.T) {
	f := func(names []string, fid uint64) bool {
		var list []byte
		for i, n := range names {
			list = AppendDirent(list, Dirent{Name: n, UUID: uuid.New(1, fid+uint64(i))})
		}
		got, err := DecodeDirents(list)
		if err != nil {
			return false
		}
		// Replay semantics: per-name last write wins, first-insertion order.
		var wantOrder []string
		seen := map[string]uint64{}
		for i, n := range names {
			if _, ok := seen[n]; !ok {
				wantOrder = append(wantOrder, n)
			}
			seen[n] = fid + uint64(i)
		}
		if len(got) != len(wantOrder) {
			return false
		}
		for i, n := range wantOrder {
			if got[i].Name != n || got[i].UUID != uuid.New(1, seen[n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickDirentTombstoneReplay: arbitrary interleavings of inserts and
// tombstones agree with a map model, and compaction preserves the result.
func TestQuickDirentTombstoneReplay(t *testing.T) {
	f := func(ops []struct {
		Name byte
		Del  bool
	}) bool {
		var list []byte
		model := map[string]bool{}
		for i, op := range ops {
			name := fmt.Sprintf("n%d", op.Name%16)
			if op.Del {
				list = AppendDirentTombstone(list, name)
				delete(model, name)
			} else {
				list = AppendDirent(list, Dirent{Name: name, UUID: uuid.New(1, uint64(i+1))})
				model[name] = true
			}
		}
		ents, err := DecodeDirents(list)
		if err != nil || len(ents) != len(model) {
			return false
		}
		for _, e := range ents {
			if !model[e.Name] {
				return false
			}
		}
		compacted, live, err := CompactDirents(list)
		if err != nil || live != len(model) {
			return false
		}
		ents2, err := DecodeDirents(compacted)
		if err != nil || len(ents2) != len(ents) {
			return false
		}
		for i := range ents {
			if ents[i] != ents2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCoupledInodeRoundTrip(t *testing.T) {
	ci := &CoupledInode{
		CTime: 1, MTime: 2, ATime: 3,
		Mode: ModeFile | 0o644, UID: 4, GID: 5,
		Size: 6, BlockSize: 4096, UUID: uuid.New(7, 8),
		Blocks: []uint64{10, 20, 30},
	}
	got, err := DecodeCoupledInode(ci.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.CTime != 1 || got.MTime != 2 || got.ATime != 3 || got.Mode != ModeFile|0o644 ||
		got.UID != 4 || got.GID != 5 || got.Size != 6 || got.BlockSize != 4096 ||
		got.UUID != ci.UUID || len(got.Blocks) != 3 || got.Blocks[2] != 30 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestDecodeCoupledInodeCorrupt(t *testing.T) {
	ci := &CoupledInode{UUID: uuid.New(1, 1)}
	enc := ci.Encode()
	cases := [][]byte{nil, {0x00}, enc[:len(enc)-1], append(append([]byte(nil), enc...), 9)}
	for i, c := range cases {
		if _, err := DecodeCoupledInode(c); err == nil {
			t.Errorf("case %d: corrupt inode decoded without error", i)
		}
	}
}

func TestSplitJoinCoupled(t *testing.T) {
	ci := &CoupledInode{
		CTime: 11, MTime: 22, ATime: 33,
		Mode: ModeFile | 0o755, UID: 1, GID: 2,
		Size: 777, BlockSize: 1024, UUID: uuid.New(3, 4),
	}
	a, c := SplitCoupled(ci)
	back := JoinParts(a, c)
	if back.CTime != ci.CTime || back.MTime != ci.MTime || back.ATime != ci.ATime ||
		back.Mode != ci.Mode || back.UID != ci.UID || back.GID != ci.GID ||
		back.Size != ci.Size || back.BlockSize != ci.BlockSize || back.UUID != ci.UUID {
		t.Errorf("JoinParts(SplitCoupled(ci)) = %+v, want %+v", back, ci)
	}
}

func TestQuickCoupledRoundTrip(t *testing.T) {
	f := func(ct, mt int64, mode, uid, gid uint32, size uint64, blocks []uint64) bool {
		ci := &CoupledInode{CTime: ct, MTime: mt, Mode: mode, UID: uid, GID: gid,
			Size: size, UUID: uuid.New(1, 2), Blocks: blocks}
		got, err := DecodeCoupledInode(ci.Encode())
		if err != nil {
			return false
		}
		if got.CTime != ct || got.Mode != mode || got.Size != size || len(got.Blocks) != len(blocks) {
			return false
		}
		for i := range blocks {
			if got.Blocks[i] != blocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortDirents(t *testing.T) {
	ents := []Dirent{{Name: "c"}, {Name: "a"}, {Name: "b"}}
	SortDirents(ents)
	if ents[0].Name != "a" || ents[2].Name != "c" {
		t.Errorf("sorted = %+v", ents)
	}
}
