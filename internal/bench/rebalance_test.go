package bench

import (
	"strconv"
	"testing"
)

// TestFigRebalanceShape runs the elasticity experiment at Quick scale and
// asserts its invariants: both membership changes move the same key set
// (grow places ~1/5 of the namespace on the new server, shrink drains it
// back), every file is scanned, and the background workload sees zero
// ENOENTs for existing files (FigRebalance itself errors otherwise).
func TestFigRebalanceShape(t *testing.T) {
	env := Quick()
	tbl, err := FigRebalance(env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(tbl)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (grow + shrink)", len(tbl.Rows))
	}
	movedCol := col(t, tbl, "moved")
	fracCol := col(t, tbl, "frac")
	enoentCol := col(t, tbl, "ENOENT")
	grow, shrink := tbl.Rows[0], tbl.Rows[1]
	if grow[movedCol] != shrink[movedCol] {
		t.Errorf("grow moved %s keys but shrink moved %s — the same set must drain back",
			grow[movedCol], shrink[movedCol])
	}
	for _, row := range tbl.Rows {
		frac, err := strconv.ParseFloat(row[fracCol], 64)
		if err != nil {
			t.Fatalf("bad frac cell %q: %v", row[fracCol], err)
		}
		if frac <= 0 || frac > 0.40 {
			t.Errorf("%s: moved fraction %.3f implausible for 1/5 ideal", row[0], frac)
		}
		if row[enoentCol] != "0" {
			t.Errorf("%s: %s availability violations", row[0], row[enoentCol])
		}
	}
}
