// Package trace is the span-level distributed tracing layer of the
// reproduction. One logical file-system operation — already stamped with a
// 64-bit trace ID on every wire message — now also carries an 8-byte parent
// span ID, so the client's operation root, its fan-out branches, every RPC,
// and each server-side handler (including every sub-op of a wire.OpBatch)
// form a parent/child span tree that explains *where* a request's time went
// across the DMS and many FMS.
//
// Completed spans land in a lock-cheap per-process ring buffer. Retention is
// sampled: spans of slow or failed work are always kept; otherwise a trace
// is kept with the configured probability, decided by hashing the trace ID —
// so every process (client and servers) independently reaches the same
// keep/drop decision for a given trace without coordination, and sampled
// trees arrive complete.
//
// A nil *Tracer is valid and free: every method is nil-safe and the span
// constructors return nil without allocating, so tracing disabled
// (Sample <= 0) adds no allocation to the hot path (guarded by
// TestDisabledTracerAllocs).
package trace

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultBufSpans is the ring capacity used when Config.BufSpans is zero.
const DefaultBufSpans = 4096

// DefaultSlow is the always-keep latency threshold used when Config.Slow is
// zero: any span at least this slow is retained regardless of the sampling
// probability. Negative Config.Slow disables the slow force-keep.
const DefaultSlow = 10 * time.Millisecond

// Config configures a Tracer.
type Config struct {
	// Sample is the probability (0,1] that a trace's spans are retained in
	// the ring. <= 0 disables tracing entirely (New returns nil).
	Sample float64
	// BufSpans is the ring capacity in spans (default DefaultBufSpans).
	// Older spans are overwritten once the ring wraps.
	BufSpans int
	// Slow is the always-keep threshold: spans at least this slow are
	// retained even when their trace lost the sampling draw. Zero means
	// DefaultSlow; negative disables the slow force-keep.
	Slow time.Duration
}

// Tracer mints spans and retains completed ones in a fixed-size ring.
// A nil Tracer is a valid, fully disabled tracer.
type Tracer struct {
	threshold uint64 // keep trace when mix(traceID) <= threshold
	slowNS    int64  // 0 = slow force-keep disabled
	ring      []atomic.Pointer[Span]
	pos       atomic.Uint64 // next ring slot (monotonic; wraps via modulo)
	spanIDs   atomic.Uint64 // process-local span ID allocator (IDs start at 1)
	dropped   atomic.Uint64 // finished spans not retained (lost the sampling draw)
	evicted   atomic.Uint64 // retained spans overwritten by ring wrap-around
}

// New returns a Tracer for cfg, or nil when cfg.Sample <= 0 (tracing
// disabled; a nil Tracer is safe to use everywhere).
func New(cfg Config) *Tracer {
	if cfg.Sample <= 0 {
		return nil
	}
	buf := cfg.BufSpans
	if buf <= 0 {
		buf = DefaultBufSpans
	}
	slow := cfg.Slow
	if slow == 0 {
		slow = DefaultSlow
	}
	if slow < 0 {
		slow = 0
	}
	t := &Tracer{
		slowNS: int64(slow),
		ring:   make([]atomic.Pointer[Span], buf),
	}
	if cfg.Sample >= 1 {
		t.threshold = math.MaxUint64
	} else {
		t.threshold = uint64(cfg.Sample * float64(math.MaxUint64))
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// mix is splitmix64's finalizer: the trace-ID hash behind the deterministic
// sampling decision shared by every process observing a trace.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// sampled reports whether traceID won the probabilistic retention draw.
func (t *Tracer) sampled(traceID uint64) bool {
	return mix(traceID) <= t.threshold
}

// Span is one timed node of a trace tree. Fields are set between StartSpan
// and Finish by the single goroutine driving the span; after Finish the span
// is immutable and may be read concurrently from the ring.
type Span struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64 // 0 = root
	Name    string // operation (wire.Op name or logical client op)
	Server  string // process/component that recorded the span (e.g. "client", "fms-1")
	Status  string // "" = OK; otherwise the wire status or transport error
	// Sub is the sub-request index inside a wire.OpBatch envelope, or the
	// branch index of a client fan-out group; -1 when neither.
	Sub         int
	Start       time.Time
	Dur         time.Duration
	Annotations []string // "k=v" notes: cache=hit, retry=1, addr=...

	tracer *Tracer
}

// StartSpan opens a span on trace traceID under parent (0 = root), recording
// op name and the observing server. Nil-safe: a nil tracer returns a nil
// span, and every Span method accepts a nil receiver, so call sites need no
// enabled-checks (but should guard any allocation done only to build
// arguments).
func (t *Tracer) StartSpan(traceID, parent uint64, name, server string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		TraceID: traceID,
		SpanID:  t.spanIDs.Add(1),
		Parent:  parent,
		Name:    name,
		Server:  server,
		Sub:     -1,
		Start:   time.Now(),
		tracer:  t,
	}
}

// StartChild opens a child span under s with the same trace, tracer and
// server. Nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	sp := s.tracer.StartSpan(s.TraceID, s.SpanID, name, s.Server)
	return sp
}

// ID returns the span's ID (0 for nil): the value to stamp as the wire
// header's parent-span field on outgoing requests.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.SpanID
}

// SetStatus records a non-OK outcome ("" means OK). Spans with a status are
// always retained. Nil-safe.
func (s *Span) SetStatus(status string) {
	if s != nil {
		s.Status = status
	}
}

// SetSub records the span's sub-request index inside a batch envelope or
// fan-out group. Nil-safe.
func (s *Span) SetSub(i int) {
	if s != nil {
		s.Sub = i
	}
}

// Annotate appends one "k=v" note. Must only be called by the goroutine
// driving the span, before Finish. Nil-safe.
func (s *Span) Annotate(note string) {
	if s != nil {
		s.Annotations = append(s.Annotations, note)
	}
}

// Finish stamps the duration and retains the span in the tracer's ring when
// the trace won the sampling draw, the span failed, or it was slow. Nil-safe;
// must be called exactly once per span.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.Dur = time.Since(s.Start)
	t := s.tracer
	keep := s.Status != "" ||
		(t.slowNS > 0 && int64(s.Dur) >= t.slowNS) ||
		t.sampled(s.TraceID)
	if keep {
		i := t.pos.Add(1) - 1
		if old := t.ring[i%uint64(len(t.ring))].Swap(s); old != nil {
			t.evicted.Add(1)
		}
	} else {
		t.dropped.Add(1)
	}
}

// Dropped returns how many finished spans were not retained because their
// trace lost the sampling draw (and they were neither slow nor failed) —
// the sampling loss that would otherwise be invisible. Nil-safe.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Evicted returns how many retained spans the ring has overwritten — the
// signal that the span buffer is too small for the retention rate. Nil-safe.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	return t.evicted.Load()
}

// Recorded returns the number of spans retained so far (including ones the
// ring has since overwritten).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.pos.Load()
}

// Spans returns a point-in-time copy of the ring's retained spans, oldest
// first (ordering is approximate under concurrent recording).
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	out := make([]*Span, 0, len(t.ring))
	pos := t.pos.Load()
	n := uint64(len(t.ring))
	start := uint64(0)
	if pos > n {
		start = pos - n
	}
	for i := start; i < pos; i++ {
		if sp := t.ring[i%n].Load(); sp != nil {
			out = append(out, sp)
		}
	}
	return out
}

// Trace returns every retained span of one trace, parents before children
// where possible (sorted by start time).
func (t *Tracer) Trace(id uint64) []*Span {
	var out []*Span
	for _, sp := range t.Spans() {
		if sp.TraceID == id {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Summary describes one trace present in the ring.
type Summary struct {
	TraceID uint64
	Root    string // root span's name ("" when the root was overwritten)
	Server  string // root span's server
	Spans   int
	Errors  int
	Start   time.Time
	Dur     time.Duration // root span duration, or max span duration without a root
}

// Summaries groups the ring's spans by trace, newest first, returning at
// most limit entries (0 = all).
func (t *Tracer) Summaries(limit int) []Summary {
	byTrace := make(map[uint64]*Summary)
	for _, sp := range t.Spans() {
		s := byTrace[sp.TraceID]
		if s == nil {
			s = &Summary{TraceID: sp.TraceID, Start: sp.Start}
			byTrace[sp.TraceID] = s
		}
		s.Spans++
		if sp.Status != "" {
			s.Errors++
		}
		if sp.Start.Before(s.Start) {
			s.Start = sp.Start
		}
		if sp.Parent == 0 {
			s.Root = sp.Name
			s.Server = sp.Server
			s.Dur = sp.Dur
		} else if s.Root == "" && sp.Dur > s.Dur {
			s.Dur = sp.Dur
		}
	}
	out := make([]Summary, 0, len(byTrace))
	for _, s := range byTrace {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Node is one vertex of an assembled span tree.
type Node struct {
	Span     *Span
	Children []*Node
}

// BuildTree links spans into trees by parent span ID, returning the roots:
// spans whose parent is 0 or absent from the set (e.g. the client-side
// parent of a server span, when the two processes keep separate rings).
// Children are ordered by start time.
func BuildTree(spans []*Span) []*Node {
	nodes := make(map[uint64]*Node, len(spans))
	for _, sp := range spans {
		nodes[sp.SpanID] = &Node{Span: sp}
	}
	var roots []*Node
	for _, sp := range spans {
		n := nodes[sp.SpanID]
		if p, ok := nodes[sp.Parent]; ok && sp.Parent != 0 && sp.Parent != sp.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
	}
	for _, n := range nodes {
		byStart(n.Children)
	}
	byStart(roots)
	return roots
}

// Tree assembles one trace's retained spans into trees (see BuildTree).
func (t *Tracer) Tree(id uint64) []*Node {
	return BuildTree(t.Trace(id))
}
