// Package mdtest is the metadata workload generator used throughout the
// evaluation — a Go analog of the mdtest benchmark the paper drives with
// OpenMPI (§4.1.2). N concurrent clients each build a private directory
// subtree of configurable depth, then run phases (mkdir, touch, stat,
// readdir, remove, rmdir, plus the Fig 11 attribute operations) with a
// barrier between phases, collecting per-operation latency and per-phase
// throughput.
package mdtest

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"locofs/internal/fsapi"
)

// Phase names.
const (
	PhaseMkdir    = "mkdir"
	PhaseTouch    = "touch"
	PhaseFileStat = "file-stat"
	PhaseDirStat  = "dir-stat"
	PhaseReaddir  = "readdir"
	PhaseRemove   = "rm"
	PhaseRmdir    = "rmdir"
	PhaseChmod    = "chmod"
	PhaseChown    = "chown"
	PhaseTruncate = "truncate"
	PhaseAccess   = "access"
)

// DefaultPhases is the paper's main metadata sequence (Fig 6–8).
var DefaultPhases = []string{
	PhaseMkdir, PhaseTouch, PhaseFileStat, PhaseDirStat,
	PhaseReaddir, PhaseRemove, PhaseRmdir,
}

// AttrPhases is the Fig 11 sequence (decoupled-file-metadata study).
var AttrPhases = []string{
	PhaseTouch, PhaseChmod, PhaseChown, PhaseTruncate, PhaseAccess, PhaseRemove,
}

// Config describes one workload run.
type Config struct {
	// Clients is the number of concurrent workload clients.
	Clients int
	// ItemsPerClient is the number of files (and directories, for the
	// mkdir/rmdir phases) each client creates.
	ItemsPerClient int
	// Depth places each client's working directory this many levels below
	// its private root (Fig 13 varies this from 1 to 32).
	Depth int
	// Phases to run, in order; default DefaultPhases.
	Phases []string
	// Root is the namespace root for the run; default "/mdtest".
	Root string
	// PhaseHook, if set, is called after each phase completes (with every
	// client quiescent). Experiments use it to snapshot server-side
	// counters between phases.
	PhaseHook func(phase string)
	// SetupHook, if set, is called after tree setup and before the first
	// phase, so experiments can exclude setup work from phase accounting.
	SetupHook func()
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.ItemsPerClient <= 0 {
		c.ItemsPerClient = 100
	}
	if c.Depth < 0 {
		c.Depth = 0
	}
	if len(c.Phases) == 0 {
		c.Phases = DefaultPhases
	}
	if c.Root == "" {
		c.Root = "/mdtest"
	}
	return c
}

// LatencyStats summarizes a latency distribution.
type LatencyStats struct {
	Mean time.Duration
	P50  time.Duration
	P90  time.Duration
	P99  time.Duration
	Max  time.Duration
}

// PhaseResult reports one phase's aggregate outcome.
type PhaseResult struct {
	Phase   string
	Ops     int
	Errors  int
	Elapsed time.Duration // wall time of the slowest client in the phase
	Latency LatencyStats  // wall-clock per-op latency

	// Virtual-time metrics, populated when the FS implements fsapi.Coster:
	// per-op modeled latency and the largest per-client total (the
	// client-bound virtual duration of the phase).
	VirtLatency   LatencyStats
	ClientCostMax time.Duration
}

// IOPS returns the phase throughput in operations per second (wall clock).
func (r PhaseResult) IOPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Report is a full run's outcome, phase by phase.
type Report struct {
	Config  Config
	Results []PhaseResult
}

// Result returns the named phase's result.
func (r *Report) Result(phase string) (PhaseResult, bool) {
	for _, pr := range r.Results {
		if pr.Phase == phase {
			return pr, true
		}
	}
	return PhaseResult{}, false
}

// summarize computes latency statistics from raw samples.
func summarize(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	pick := func(q float64) time.Duration {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return LatencyStats{
		Mean: sum / time.Duration(len(samples)),
		P50:  pick(0.50),
		P90:  pick(0.90),
		P99:  pick(0.99),
		Max:  samples[len(samples)-1],
	}
}

// worker is one client's state.
type worker struct {
	fs      fsapi.FS
	workDir string // leaf directory this client operates in
}

// Run executes the configured workload, building one FS client per workload
// client via newFS. The returned report contains one result per phase.
func Run(cfg Config, newFS func() (fsapi.FS, error)) (*Report, error) {
	cfg = cfg.withDefaults()
	setup, err := newFS()
	if err != nil {
		return nil, err
	}
	// Build the shared root and per-client working trees. Tree setup is
	// not measured (mdtest measures phases only).
	var workers []*worker
	closeAll := func() {
		setup.Close()
		for _, w := range workers {
			w.fs.Close()
		}
	}
	if err := setup.Mkdir(cfg.Root, 0o777); err != nil {
		closeAll()
		return nil, fmt.Errorf("mdtest: setup root: %w", err)
	}
	for i := 0; i < cfg.Clients; i++ {
		fs, err := newFS()
		if err != nil {
			closeAll()
			return nil, err
		}
		dir := fmt.Sprintf("%s/c%d", cfg.Root, i)
		workers = append(workers, &worker{fs: fs})
		if err := setup.Mkdir(dir, 0o777); err != nil {
			closeAll()
			return nil, fmt.Errorf("mdtest: setup client dir: %w", err)
		}
		for d := 0; d < cfg.Depth; d++ {
			dir = fmt.Sprintf("%s/d%d", dir, d)
			if err := setup.Mkdir(dir, 0o777); err != nil {
				closeAll()
				return nil, fmt.Errorf("mdtest: setup depth chain: %w", err)
			}
		}
		workers[i].workDir = dir
	}
	defer closeAll()
	if cfg.SetupHook != nil {
		cfg.SetupHook()
	}
	report := &Report{Config: cfg}
	for _, phase := range cfg.Phases {
		pr, err := runPhase(cfg, phase, workers)
		if err != nil {
			return report, err
		}
		report.Results = append(report.Results, pr)
		if cfg.PhaseHook != nil {
			cfg.PhaseHook(phase)
		}
	}
	return report, nil
}

// opFunc performs item i for a worker and returns its error.
type opFunc func(w *worker, i int) error

// phaseOp returns the operation a phase applies per item.
func phaseOp(phase string) (opFunc, error) {
	switch phase {
	case PhaseMkdir:
		return func(w *worker, i int) error {
			return w.fs.Mkdir(fmt.Sprintf("%s/dir.%d", w.workDir, i), 0o755)
		}, nil
	case PhaseTouch:
		return func(w *worker, i int) error {
			return w.fs.Create(fmt.Sprintf("%s/file.%d", w.workDir, i), 0o644)
		}, nil
	case PhaseFileStat:
		return func(w *worker, i int) error {
			return w.fs.StatFile(fmt.Sprintf("%s/file.%d", w.workDir, i))
		}, nil
	case PhaseDirStat:
		return func(w *worker, i int) error {
			return w.fs.StatDir(fmt.Sprintf("%s/dir.%d", w.workDir, i))
		}, nil
	case PhaseReaddir:
		return func(w *worker, i int) error {
			_, err := w.fs.Readdir(w.workDir)
			return err
		}, nil
	case PhaseRemove:
		return func(w *worker, i int) error {
			return w.fs.Remove(fmt.Sprintf("%s/file.%d", w.workDir, i))
		}, nil
	case PhaseRmdir:
		return func(w *worker, i int) error {
			return w.fs.Rmdir(fmt.Sprintf("%s/dir.%d", w.workDir, i))
		}, nil
	case PhaseChmod, PhaseChown, PhaseTruncate, PhaseAccess:
		return func(w *worker, i int) error {
			x, ok := w.fs.(fsapi.ExtendedFS)
			if !ok {
				return fmt.Errorf("mdtest: %T does not support attribute phases", w.fs)
			}
			p := fmt.Sprintf("%s/file.%d", w.workDir, i)
			switch phase {
			case PhaseChmod:
				return x.Chmod(p, 0o600)
			case PhaseChown:
				return x.Chown(p, 1000, 1000)
			case PhaseTruncate:
				return x.Truncate(p, uint64(i%8192))
			default:
				return x.Access(p)
			}
		}, nil
	}
	return nil, fmt.Errorf("mdtest: unknown phase %q", phase)
}

// runPhase runs one phase across all workers with a start barrier.
func runPhase(cfg Config, phase string, workers []*worker) (PhaseResult, error) {
	op, err := phaseOp(phase)
	if err != nil {
		return PhaseResult{}, err
	}
	items := cfg.ItemsPerClient
	if phase == PhaseReaddir {
		// readdir is one scan of the (large) working dir per iteration; a
		// handful of iterations keeps the phase comparable in duration.
		items = min(items, 10)
	}

	type clientOut struct {
		lat     []time.Duration
		vlat    []time.Duration
		vtotal  time.Duration
		errs    int
		elapsed time.Duration
	}
	outs := make([]clientOut, len(workers))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *worker) {
			defer wg.Done()
			coster, _ := w.fs.(fsapi.Coster)
			lat := make([]time.Duration, 0, items)
			var vlat []time.Duration
			if coster != nil {
				vlat = make([]time.Duration, 0, items)
			}
			errs := 0
			<-start
			t0 := time.Now()
			var v0 time.Duration
			if coster != nil {
				v0 = coster.Cost()
			}
			for i := 0; i < items; i++ {
				o0 := time.Now()
				var c0 time.Duration
				if coster != nil {
					c0 = coster.Cost()
				}
				if err := op(w, i); err != nil {
					errs++
				}
				lat = append(lat, time.Since(o0))
				if coster != nil {
					vlat = append(vlat, coster.Cost()-c0)
				}
			}
			out := clientOut{lat: lat, vlat: vlat, errs: errs, elapsed: time.Since(t0)}
			if coster != nil {
				out.vtotal = coster.Cost() - v0
			}
			outs[wi] = out
		}(wi, w)
	}
	close(start)
	wg.Wait()

	var all, vall []time.Duration
	pr := PhaseResult{Phase: phase}
	for _, o := range outs {
		all = append(all, o.lat...)
		vall = append(vall, o.vlat...)
		pr.Ops += len(o.lat)
		pr.Errors += o.errs
		if o.elapsed > pr.Elapsed {
			pr.Elapsed = o.elapsed
		}
		if o.vtotal > pr.ClientCostMax {
			pr.ClientCostMax = o.vtotal
		}
	}
	pr.Latency = summarize(all)
	pr.VirtLatency = summarize(vall)
	return pr, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
