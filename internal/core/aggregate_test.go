package core

import (
	"errors"
	"strings"
	"testing"

	"locofs/internal/slo"
)

// driveOps issues a small mixed metadata workload so every server has
// windowed telemetry to report.
func driveOps(t *testing.T, c *Cluster) {
	t.Helper()
	cl := newClient(t, c, ClientConfig{})
	if err := cl.Mkdir("/agg", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"/agg/a", "/agg/b", "/agg/c"} {
		if err := cl.Create(name, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.StatFile(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Readdir("/agg"); err != nil {
		t.Fatal(err)
	}
}

func TestClusterStatusMergesAllServers(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 4})
	driveOps(t, c)

	cs := c.ClusterStatus()
	if len(cs.Servers) != 7 { // dms + 4 fms + 1 oss + driveOps's client
		t.Fatalf("servers = %d, want 7", len(cs.Servers))
	}
	seen := map[string]bool{}
	for _, st := range cs.Servers {
		seen[st.Server] = true
		if st.Version == "" || st.GoVersion == "" {
			t.Errorf("%s: build identity missing", st.Server)
		}
		if st.WindowWidthSec <= 0 || st.WindowNum <= 0 {
			t.Errorf("%s: window geometry missing", st.Server)
		}
	}
	for _, want := range []string{"dms", "fms-0", "fms-3", "oss-0", "client-0"} {
		if !seen[want] {
			t.Errorf("server %s missing from cluster status", want)
		}
	}
	if len(cs.Unreachable) != 0 {
		t.Errorf("unreachable = %v, want none", cs.Unreachable)
	}
	if cs.Epoch != 1 || !cs.EpochAgreement {
		t.Errorf("epoch/agreement = %d/%v, want 1/true", cs.Epoch, cs.EpochAgreement)
	}
	if len(cs.Service) == 0 {
		t.Fatal("no merged service windows after traffic")
	}
	var total uint64
	for _, ow := range cs.Service {
		total += ow.Count
	}
	if total == 0 {
		t.Error("merged service windows hold no events")
	}
	if len(cs.SLO) == 0 {
		t.Fatal("no merged SLO classes")
	}
	for _, cl := range cs.SLO {
		if cl.Class == slo.ClassMDMutate && cl.WindowCount == 0 {
			t.Error("md_mutate class saw no events despite creates")
		}
	}
	if len(cs.Hot) == 0 {
		t.Error("no hot keys surfaced from the DMS/FMS sketches")
	}
}

func TestAggregatorToleratesDeadSource(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 2})
	driveOps(t, c)

	dead := StatusSource{
		Name:  "fms-9",
		Fetch: func() (*slo.ServerStatus, error) { return nil, errors.New("connection refused") },
	}
	// An unreachable HTTP peer behaves the same way as a failing fetch.
	deadHTTP := HTTPSource("oss-9", "http://127.0.0.1:1/debug/slo", 0)

	agg := &Aggregator{Sources: func() []StatusSource {
		return append(c.StatusSources(), dead, deadHTTP)
	}}
	cs := agg.Poll()
	if cs == nil {
		t.Fatal("poll with dead sources returned nil")
	}
	if len(cs.Servers) != 5 { // dms + 2 fms + oss + driveOps's client
		t.Fatalf("live servers = %d, want 5", len(cs.Servers))
	}
	if len(cs.Unreachable) != 2 {
		t.Fatalf("unreachable = %v, want [fms-9 oss-9]", cs.Unreachable)
	}
	if got := strings.Join(cs.Unreachable, ","); !strings.Contains(got, "fms-9") || !strings.Contains(got, "oss-9") {
		t.Errorf("unreachable = %v", cs.Unreachable)
	}
	if agg.Last() != cs {
		t.Error("Last() does not return the cached snapshot")
	}

	// The human-readable table renders the partial view.
	var sb strings.Builder
	cs.Format(&sb)
	if !strings.Contains(sb.String(), "fms-9") {
		t.Error("status table does not mention the unreachable server")
	}
}

func TestClusterStatusFollowsMembership(t *testing.T) {
	c := startCluster(t, Options{FMSCount: 2})
	driveOps(t, c)
	if _, err := c.AddFMS(); err != nil {
		t.Fatal(err)
	}
	cs := c.ClusterStatus()
	found := false
	for _, st := range cs.Servers {
		if st.Server == "fms-2" {
			found = true
		}
	}
	if !found {
		t.Fatal("freshly added fms-2 missing from cluster status")
	}
	if cs.Epoch < 2 {
		t.Errorf("epoch = %d, want >= 2 after AddFMS", cs.Epoch)
	}
	if !cs.EpochAgreement {
		t.Error("epoch disagreement after completed AddFMS")
	}
}
