package mdtest

import (
	"testing"

	"locofs/internal/core"
	"locofs/internal/fsapi"
	"locofs/internal/netsim"
)

func mixFactory(t *testing.T) func() (fsapi.FS, error) {
	t.Helper()
	cluster, err := core.Start(core.Options{
		FMSCount:  2,
		Link:      netsim.Paper1GbE,
		CostModel: &core.PaperKVCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return func() (fsapi.FS, error) {
		cl, err := cluster.NewClient(core.ClientConfig{})
		if err != nil {
			return nil, err
		}
		return fsapi.LocoFS{C: cl}, nil
	}
}

func TestRunMixTaihuLight(t *testing.T) {
	rep, err := RunMix(MixConfig{Ops: 2000, Seed: 1}, mixFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps != 2000 {
		t.Fatalf("TotalOps = %d", rep.TotalOps)
	}
	for class, r := range rep.Classes {
		if r.Errs > 0 {
			t.Errorf("%s: %d errors", class, r.Errs)
		}
	}
	// The default mix contains no renames at all (§3.4.1).
	if rep.Classes["file-rename"].Ops != 0 || rep.Classes["dir-rename"].Ops != 0 {
		t.Errorf("TaihuLight mix produced renames: %+v", rep.Classes)
	}
	// Stats dominate creates (55 vs 30 weights), loosely.
	if rep.Classes["stat"].Ops < rep.Classes["create"].Ops {
		t.Errorf("stat ops (%d) < create ops (%d)",
			rep.Classes["stat"].Ops, rep.Classes["create"].Ops)
	}
	if rep.MeanLatency() <= 0 {
		t.Error("zero mean latency")
	}
}

func TestRunMixWithRenames(t *testing.T) {
	mix := TaihuLightMix.WithRenameRatio(0.05) // absurdly high, to force hits
	rep, err := RunMix(MixConfig{Ops: 3000, Mix: mix, Seed: 7}, mixFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	renames := rep.Classes["file-rename"].Ops + rep.Classes["dir-rename"].Ops
	if renames == 0 {
		t.Fatal("rename ratio 5% produced no renames")
	}
	frac := float64(renames) / float64(rep.TotalOps)
	if frac < 0.01 || frac > 0.12 {
		t.Errorf("rename fraction = %.3f, want ~0.05", frac)
	}
	for class, r := range rep.Classes {
		if r.Errs > 0 {
			t.Errorf("%s: %d errors", class, r.Errs)
		}
	}
	// Renamed directories/files must remain usable: mean latencies exist.
	if rep.Classes["file-rename"].Ops > 0 && rep.Classes["file-rename"].Mean() <= 0 {
		t.Error("file-rename mean latency not recorded")
	}
}

func TestRunMixDeterministic(t *testing.T) {
	a, err := RunMix(MixConfig{Ops: 500, Seed: 42}, mixFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(MixConfig{Ops: 500, Seed: 42, Root: "/mix2"}, mixFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	for class := range a.Classes {
		if a.Classes[class].Ops != b.Classes[class].Ops {
			t.Errorf("%s: op counts differ across identical seeds: %d vs %d",
				class, a.Classes[class].Ops, b.Classes[class].Ops)
		}
	}
}

func TestWithRenameRatioMath(t *testing.T) {
	m := TaihuLightMix.WithRenameRatio(0.1)
	total := m.total()
	renWeight := m.FileRename + m.DirRename
	if frac := renWeight / total; frac < 0.09 || frac > 0.11 {
		t.Errorf("rename weight fraction = %.3f, want 0.10", frac)
	}
	if m.FileRename <= m.DirRename {
		t.Error("file renames should outweigh dir renames")
	}
}
