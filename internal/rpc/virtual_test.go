package rpc

import (
	"testing"
	"time"

	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// TestVirtualTimeAccumulation checks Call's modeled-time arithmetic:
// per-call virtual time = request delay + response delay + ServiceNS.
func TestVirtualTimeAccumulation(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	defer n.Close()
	s := NewServer()
	const svc = 50 * time.Microsecond
	s.Handle(wire.Op(1), func(body []byte) (wire.Status, []byte) {
		return wire.StatusOK, nil
	})
	s.SetVirtualCost(wire.Op(1), svc)
	// Suppress wall-clock measurement so the expectation is exact.
	s.SetServiceFunc(func(op wire.Op, run func()) time.Duration {
		run()
		return 0
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)

	c, err := Dial(n, "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	link := netsim.LinkConfig{RTT: 200 * time.Microsecond}
	c.SetLink(link)

	const calls = 10
	for i := 0; i < calls; i++ {
		if _, _, err := c.Call(wire.Op(1), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := c.VirtualTime()
	want := calls * (link.RTT + svc) // zero-size adjustments are in Delay()
	// Allow for the small per-message framing bytes (no bandwidth term, so
	// exactly RTT + svc per call).
	if got != want {
		t.Errorf("VirtualTime = %v, want %v", got, want)
	}
	if s.Busy() != calls*svc {
		t.Errorf("server Busy = %v, want %v", s.Busy(), calls*svc)
	}
}

// TestVirtualTimeIncludesMeasuredService: without a ServiceFunc, the
// measured handler time flows into ServiceNS.
func TestVirtualTimeIncludesMeasuredService(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	defer n.Close()
	s := NewServer()
	s.Handle(wire.Op(1), func(body []byte) (wire.Status, []byte) {
		time.Sleep(2 * time.Millisecond)
		return wire.StatusOK, nil
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, _ := Dial(n, "srv")
	defer c.Close()
	c.SetLink(netsim.Loopback)
	c.Call(wire.Op(1), nil)
	if c.VirtualTime() < 2*time.Millisecond {
		t.Errorf("VirtualTime = %v, want >= 2ms of measured service", c.VirtualTime())
	}
}

// TestServiceFuncSerializes checks that a cost-model ServiceFunc observes
// the handler's effects (run() really runs inside it).
func TestServiceFuncRuns(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	defer n.Close()
	s := NewServer()
	ran := false
	s.Handle(wire.Op(1), func(body []byte) (wire.Status, []byte) {
		ran = true
		return wire.StatusOK, []byte("out")
	})
	s.SetServiceFunc(func(op wire.Op, run func()) time.Duration {
		run()
		return 7 * time.Microsecond
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, _ := Dial(n, "srv")
	defer c.Close()
	c.SetLink(netsim.Loopback)
	st, body, err := c.Call(wire.Op(1), nil)
	if err != nil || st != wire.StatusOK || string(body) != "out" {
		t.Fatalf("call = %v %q %v", st, body, err)
	}
	if !ran {
		t.Error("handler did not run inside ServiceFunc")
	}
	if c.VirtualTime() != 7*time.Microsecond {
		t.Errorf("VirtualTime = %v, want 7us", c.VirtualTime())
	}
}

// TestBandwidthTermInVirtualTime checks the size-dependent link cost.
func TestBandwidthTermInVirtualTime(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	defer n.Close()
	s := NewServer()
	s.SetServiceFunc(func(op wire.Op, run func()) time.Duration { run(); return 0 })
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, _ := Dial(n, "srv")
	defer c.Close()
	c.SetLink(netsim.LinkConfig{Bandwidth: 1e6}) // 1 MB/s
	body := make([]byte, 100_000)
	c.Call(wire.OpPing, body) // ping echoes the body: ~100KB each way
	if got := c.VirtualTime(); got < 150*time.Millisecond {
		t.Errorf("VirtualTime = %v, want >= ~200ms for 200KB at 1MB/s", got)
	}
}

// TestWorkersLimitConcurrency verifies the worker cap truly bounds
// concurrent handler execution.
func TestWorkersLimitConcurrency(t *testing.T) {
	n := netsim.NewNetwork(netsim.Loopback)
	defer n.Close()
	s := NewServerWithWorkers(2)
	if s.Workers() != 2 {
		t.Fatalf("Workers = %d", s.Workers())
	}
	inFlight := make(chan int, 64)
	cur := make(chan struct{}, 64)
	s.Handle(wire.Op(1), func(body []byte) (wire.Status, []byte) {
		cur <- struct{}{}
		inFlight <- len(cur)
		time.Sleep(5 * time.Millisecond)
		<-cur
		return wire.StatusOK, nil
	})
	l, _ := n.Listen("srv")
	go s.Serve(l)
	c, _ := Dial(n, "srv")
	defer c.Close()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			c.Call(wire.Op(1), nil)
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	close(inFlight)
	for v := range inFlight {
		if v > 2 {
			t.Fatalf("observed %d concurrent handlers; cap is 2", v)
		}
	}
}
