// Package indexfs models IndexFS (Ren et al., SC'14), the paper's primary
// point of comparison: file-system metadata stored as whole-inode values in
// an LSM store (LevelDB there, internal/lsm here), with the namespace
// partitioned per directory across metadata servers and a stateless client
// lookup cache with leases.
//
// The behaviors that matter to the paper's experiments are preserved:
//
//   - Coupled inode values: every attribute update is a full-value
//     read-modify-write through (de)serialization (§2.2.2).
//   - Per-directory partitioning: a directory's entries all live on the
//     server owning that directory; path resolution walks servers component
//     by component on cache misses (the Fig 2 locating-latency problem).
//   - mkdir touches two servers: the parent's (to insert the entry) and the
//     new directory's (to install its partition).
package indexfs

import (
	"time"

	"locofs/internal/baseline/common"
	"locofs/internal/fsapi"
	"locofs/internal/fspath"
	"locofs/internal/kv"
	"locofs/internal/layout"
	"locofs/internal/lsm"
	"locofs/internal/netsim"
	"locofs/internal/wire"
)

// Profile is the IndexFS server software model. Reads are lease-checked
// LevelDB gets; mutations serialize through the LSM writer and the
// per-directory lease manager, so usable parallelism is ~1 — which is what
// holds a node to the paper's ~6K creates/s (1.7% of raw LevelDB, §1).
var Profile = common.Profile{
	Name:         "indexfs",
	ReadService:  60 * time.Microsecond,
	WriteService: 150 * time.Microsecond,
	Workers:      1,
}

// Key prefixes: entry records (stored on the parent directory's server) and
// directory partition markers (stored on the directory's own server).
const (
	kEntry     = "E:"
	kPartition = "M:"
)

// System is a running IndexFS deployment.
type System struct {
	cluster *common.Cluster
	network *netsim.Network
	link    netsim.LinkConfig
}

// Start launches n IndexFS metadata servers on the fabric; link is the
// modeled network for virtual-time accounting.
func Start(network *netsim.Network, n int, link netsim.LinkConfig) (*System, error) {
	cl, err := common.StartCluster(network, n, Profile, func() kv.Store {
		return lsm.MustNew(nil)
	})
	if err != nil {
		return nil, err
	}
	return &System{cluster: cl, network: network, link: link}, nil
}

// Cluster exposes the underlying servers (experiments read busy times).
func (s *System) Cluster() *common.Cluster { return s.cluster }

// Close shuts the system down.
func (s *System) Close() { s.cluster.Close() }

// Client is one IndexFS client.
type Client struct {
	conn  *common.Conn
	n     int
	cache *common.LeaseCache
}

// NewClient connects a client with the default 30 s lookup-cache lease.
func (s *System) NewClient() (*Client, error) {
	conn, err := common.DialCluster(s.network, s.cluster.Addrs, s.link)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, n: len(s.cluster.Addrs), cache: common.NewLeaseCache(30 * time.Second)}, nil
}

// Trips returns total round trips issued.
func (c *Client) Trips() uint64 { return c.conn.Trips() }

// Cost returns the client's cumulative modeled time.
func (c *Client) Cost() time.Duration { return c.conn.Cost() }

// Close implements fsapi.FS.
func (c *Client) Close() error { return c.conn.Close() }

// srvOf returns the server owning directory path's partition.
func (c *Client) srvOf(dirPath string) int { return common.HashServer(dirPath, c.n) }

func entryKey(path string) []byte     { return append([]byte(kEntry), path...) }
func partitionKey(path string) []byte { return append([]byte(kPartition), path...) }

// record is the coupled on-server value: 1 flag byte + coupled inode.
func encodeRecord(isDir bool, mode uint32) []byte {
	ci := &layout.CoupledInode{Mode: mode, BlockSize: 4096}
	flag := byte(0)
	if isDir {
		flag = 1
	}
	return append([]byte{flag}, ci.Encode()...)
}

func decodeRecord(v []byte) (isDir bool, ci *layout.CoupledInode, err error) {
	if len(v) < 1 {
		return false, nil, layout.ErrCorruptInode
	}
	ci, err = layout.DecodeCoupledInode(v[1:])
	return v[0] == 1, ci, err
}

// resolveDir verifies every component of dirPath exists, walking the
// per-directory partitions server by server on cache misses.
func (c *Client) resolveDir(dirPath string) error {
	if dirPath == "/" {
		return nil
	}
	comps := append(fspath.Ancestors(dirPath)[1:], dirPath) // skip "/"
	for _, p := range comps {
		if c.cache.Has(p) {
			continue
		}
		ok, err := c.conn.Exists(c.srvOf(p), partitionKey(p))
		if err != nil {
			return err
		}
		if !ok {
			return wire.StatusNotFound.Err()
		}
		c.cache.Put(p, nil)
	}
	return nil
}

// Mkdir implements fsapi.FS: entry insert on the parent's server plus
// partition install on the new directory's server.
func (c *Client) Mkdir(path string, mode uint32) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, name := fspath.Split(p)
	if name == "" {
		return wire.StatusExist.Err()
	}
	if err := c.resolveDir(parent); err != nil {
		return err
	}
	st, err := c.conn.CreateX(c.srvOf(parent), entryKey(p), encodeRecord(true, mode))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	if st, err := c.conn.Put(c.srvOf(p), partitionKey(p), []byte{1}); err != nil || st != wire.StatusOK {
		if err != nil {
			return err
		}
		return st.Err()
	}
	c.cache.Put(p, nil)
	return nil
}

// Create implements fsapi.FS.
func (c *Client) Create(path string, mode uint32) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, name := fspath.Split(p)
	if name == "" {
		return wire.StatusInval.Err()
	}
	if err := c.resolveDir(parent); err != nil {
		return err
	}
	st, err := c.conn.CreateX(c.srvOf(parent), entryKey(p), encodeRecord(false, mode))
	if err != nil {
		return err
	}
	return st.Err()
}

// statEntry fetches and fully deserializes an entry record.
func (c *Client) statEntry(p string, wantDir bool) error {
	parent, name := fspath.Split(p)
	if name == "" { // root
		if wantDir {
			return nil
		}
		return wire.StatusIsDir.Err()
	}
	if err := c.resolveDir(parent); err != nil {
		return err
	}
	v, st, err := c.conn.Get(c.srvOf(parent), entryKey(p))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	isDir, _, err := decodeRecord(v)
	if err != nil {
		return err
	}
	if isDir != wantDir {
		if wantDir {
			return wire.StatusNotDir.Err()
		}
		return wire.StatusIsDir.Err()
	}
	return nil
}

// StatFile implements fsapi.FS.
func (c *Client) StatFile(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	return c.statEntry(p, false)
}

// StatDir implements fsapi.FS.
func (c *Client) StatDir(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	return c.statEntry(p, true)
}

// Remove implements fsapi.FS.
func (c *Client) Remove(path string) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, _ := fspath.Split(p)
	if err := c.resolveDir(parent); err != nil {
		return err
	}
	st, err := c.conn.Del(c.srvOf(parent), entryKey(p))
	if err != nil {
		return err
	}
	return st.Err()
}

// Readdir implements fsapi.FS: one request to the directory's server, which
// holds every child entry.
func (c *Client) Readdir(path string) (int, error) {
	p, err := fspath.Clean(path)
	if err != nil {
		return 0, wire.StatusInval.Err()
	}
	if err := c.resolveDir(p); err != nil {
		return 0, err
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	names, err := c.conn.ListPrefix(c.srvOf(p), entryKey(prefix))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, nm := range names {
		if fspath.ValidName(nm) { // direct children only
			n++
		}
	}
	return n, nil
}

// Rmdir implements fsapi.FS.
func (c *Client) Rmdir(path string) error {
	p, err := fspath.Clean(path)
	if err != nil || p == "/" {
		return wire.StatusInval.Err()
	}
	if err := c.resolveDir(p); err != nil {
		return err
	}
	cnt, err := c.conn.CountPrefix(c.srvOf(p), entryKey(p+"/"))
	if err != nil {
		return err
	}
	if cnt > 0 {
		return wire.StatusNotEmpty.Err()
	}
	parent, _ := fspath.Split(p)
	if st, err := c.conn.Del(c.srvOf(parent), entryKey(p)); err != nil || st != wire.StatusOK {
		if err != nil {
			return err
		}
		return st.Err()
	}
	c.conn.Del(c.srvOf(p), partitionKey(p))
	c.cache.Drop(p)
	return nil
}

// rmwEntry is the coupled-inode update cycle: fetch the whole value,
// deserialize, mutate, re-serialize, write the whole value back.
func (c *Client) rmwEntry(path string, fn func(*layout.CoupledInode)) error {
	p, err := fspath.Clean(path)
	if err != nil {
		return wire.StatusInval.Err()
	}
	parent, _ := fspath.Split(p)
	if err := c.resolveDir(parent); err != nil {
		return err
	}
	srv := c.srvOf(parent)
	v, st, err := c.conn.Get(srv, entryKey(p))
	if err != nil {
		return err
	}
	if st != wire.StatusOK {
		return st.Err()
	}
	isDir, ci, err := decodeRecord(v)
	if err != nil {
		return err
	}
	fn(ci)
	flag := byte(0)
	if isDir {
		flag = 1
	}
	st, err = c.conn.Put(srv, entryKey(p), append([]byte{flag}, ci.Encode()...))
	if err != nil {
		return err
	}
	return st.Err()
}

// Chmod implements fsapi.ExtendedFS.
func (c *Client) Chmod(path string, mode uint32) error {
	return c.rmwEntry(path, func(ci *layout.CoupledInode) { ci.Mode = mode })
}

// Chown implements fsapi.ExtendedFS.
func (c *Client) Chown(path string, uid, gid uint32) error {
	return c.rmwEntry(path, func(ci *layout.CoupledInode) { ci.UID, ci.GID = uid, gid })
}

// Truncate implements fsapi.ExtendedFS.
func (c *Client) Truncate(path string, size uint64) error {
	return c.rmwEntry(path, func(ci *layout.CoupledInode) { ci.Size = size })
}

// Access implements fsapi.ExtendedFS (a full stat in IndexFS: the access
// fields cannot be read without deserializing the whole value).
func (c *Client) Access(path string) error { return c.StatFile(path) }

var _ fsapi.ExtendedFS = (*Client)(nil)
