package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"locofs/internal/client"
	"locofs/internal/core"
	"locofs/internal/slo"
	"locofs/internal/telemetry"
)

// FigSLOStorm drives a zipfian mixed metadata workload (stat-heavy with a
// create/remove and readdir component, hot keys skewed onto a few
// directories) against a 1-DMS/4-FMS cluster configured with short
// telemetry windows, then samples the cluster-health aggregator once per
// window and reports SLO adherence over time: per-window event counts,
// time-local p95 versus the class target, burn rate and remaining error
// budget. This is the observability pipeline end-to-end — windowed
// histograms → per-server SLO evaluation → cluster merge — under load,
// not a paper figure.
func FigSLOStorm(env Env) (*Table, error) {
	width := 250 * time.Millisecond
	samples := 8
	workers := 4
	if env.LatItems < 200 { // quick environment
		width = 150 * time.Millisecond
		samples = 4
		workers = 2
	}
	files := env.TputItems * 5
	if files < 100 {
		files = 100
	}

	cluster, err := core.Start(core.Options{
		FMSCount: 4,
		Link:     env.Link,
		Window:   telemetry.WindowConfig{Width: width, Num: samples + 2},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	seed, err := cluster.NewClient(core.ClientConfig{})
	if err != nil {
		return nil, err
	}
	defer seed.Close()
	if err := seed.Mkdir("/storm", 0o755); err != nil {
		return nil, err
	}
	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("/storm/f%05d", i)
		if err := seed.Create(names[i], 0o644); err != nil {
			return nil, err
		}
	}

	// Zipfian mixed workload: mostly stats of skewed-hot files, plus
	// readdirs of the shared directory and create/remove churn.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var workErr error
	var workErrOnce sync.Once
	for w := 0; w < workers; w++ {
		wcl, err := cluster.NewClient(core.ClientConfig{})
		if err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
		wg.Add(1)
		go func(w int, wcl *client.Client) {
			defer wg.Done()
			defer wcl.Close()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(files-1))
			fail := func(err error) {
				workErrOnce.Do(func() { workErr = fmt.Errorf("slostorm worker %d: %w", w, err) })
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[zipf.Uint64()]
				switch i % 10 {
				case 0: // churn: create a private file, then remove it
					tmp := fmt.Sprintf("/storm/w%d-%d", w, i)
					if err := wcl.Create(tmp, 0o644); err != nil {
						fail(err)
						return
					}
					if err := wcl.Remove(tmp); err != nil {
						fail(err)
						return
					}
				case 1: // list the shared directory
					if _, err := wcl.Readdir("/storm"); err != nil {
						fail(err)
						return
					}
				default: // stat the zipfian-hot file
					if _, err := wcl.StatFile(name); err != nil {
						fail(err)
						return
					}
				}
			}
		}(w, wcl)
	}

	t := &Table{
		Title: "SLO storm: windowed quantiles, burn rate and error budget under zipfian load",
		Note: fmt.Sprintf("1 DMS + 4 FMS, %d workers over %d files (zipf s=1.3); %v windows sampled via the cluster aggregator; link RTT = %v",
			workers, files, width, env.Link.RTT),
		Headers: []string{"t", "class", "ops(win)", "rate/s", "p50", "p95", "p99", "target", "burn", "budget", "met"},
	}
	fmtS := func(sec float64) string {
		if sec <= 0 {
			return "-"
		}
		return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
	}

	start := time.Now()
	var lastHot string
	for s := 1; s <= samples; s++ {
		time.Sleep(width)
		cs := cluster.ClusterStatus()
		if len(cs.Servers) != 6 {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("slostorm: cluster status has %d servers, want 6", len(cs.Servers))
		}
		if !cs.EpochAgreement {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("slostorm: epoch disagreement in a static cluster")
		}
		at := time.Since(start).Round(10 * time.Millisecond)
		for _, c := range cs.SLO {
			if c.Class == slo.ClassData && c.WindowCount == 0 {
				continue // metadata-only workload
			}
			met := "yes"
			if !c.Met {
				met = "NO"
			}
			h := slo.HistFromBuckets(c.Buckets, c.SumSec, c.MaxSec)
			t.AddRow(at.String(), c.Class,
				fmt.Sprint(c.WindowCount),
				fmt.Sprintf("%.0f", c.RatePerSec),
				fmtS(h.Quantile(0.50).Seconds()),
				fmtS(c.WindowPSec),
				fmtS(h.Quantile(0.99).Seconds()),
				fmtS(c.TargetSec),
				fmt.Sprintf("%.2f", c.BurnRate),
				fmt.Sprintf("%.3f", c.BudgetRemaining),
				met)
		}
		if len(cs.Hot) > 0 {
			lastHot = fmt.Sprintf("%s (%d hits, via %s)", cs.Hot[0].Key, cs.Hot[0].Count, cs.Hot[0].Source)
		}
	}
	close(stop)
	wg.Wait()
	if workErr != nil {
		return nil, workErr
	}
	if lastHot != "" {
		t.Note += "; hottest key: " + lastHot
	}
	return t, nil
}
