// Quickstart: bring up an in-process LocoFS cluster (one directory metadata
// server, four file metadata servers, one object store), mount a client,
// and exercise the basic file-system API.
package main

import (
	"fmt"
	"log"

	"locofs"
)

func main() {
	// A LocoFS deployment: 1 DMS + 4 FMS + 1 object store, wired over the
	// in-process fabric.
	cluster, err := locofs.Start(locofs.Options{FMSCount: 4, CheckPermissions: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A LocoLib client with the directory metadata cache enabled.
	fs, err := cluster.NewClient(locofs.ClientConfig{UID: 1000, GID: 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	// Directories live on the DMS; one RPC each.
	must(fs.Mkdir("/home", 0o755))
	must(fs.Mkdir("/home/alice", 0o755))

	// Files live on the FMS chosen by hashing directory_uuid + name.
	must(fs.Create("/home/alice/notes.txt", 0o644))

	// Data goes straight to the object store, addressed by uuid + block.
	f, err := fs.Open("/home/alice/notes.txt", true)
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("hello from a loosely-coupled metadata service")
	if _, err := f.WriteAt(msg, 0); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := f.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("read back: %s\n", buf)

	// Stat shows the decoupled metadata parts merged into one view.
	attr, err := fs.StatFile("/home/alice/notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("notes.txt: mode=%o uid=%d size=%d uuid=%s\n",
		attr.Mode&0o777, attr.UID, attr.Size, attr.UUID)

	// Readdir merges subdirectory entries (DMS) with file entries (FMSs).
	must(fs.Mkdir("/home/alice/projects", 0o755))
	ents, err := fs.Readdir("/home/alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ls /home/alice:")
	for _, e := range ents {
		kind := "file"
		if e.IsDir {
			kind = "dir "
		}
		fmt.Printf("  %s %s\n", kind, e.Name)
	}

	// The client counts network round trips — the currency of the paper.
	hits, misses := fs.CacheStats()
	fmt.Printf("round trips: %d, dir-cache hits/misses: %d/%d\n",
		fs.Trips(), hits, misses)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
