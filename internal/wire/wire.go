// Package wire defines the message format spoken between LocoFS clients and
// metadata/data servers: a binary header (request id, op code, status) plus
// an opaque body, with a length-prefixed framing for byte-stream transports.
package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op identifies a remote procedure.
type Op uint16

// Operations served by the directory metadata server (DMS).
const (
	OpMkdir Op = 0x0100 + iota
	OpRmdir
	OpStatDir
	OpReaddirSubdirs
	OpLookupDir // resolve path -> d-inode with full ancestor ACL check
	OpRenameDir // directory rename (prefix move)
	OpChmodDir
	OpChownDir
	// OpLeaseRecall fetches the DMS lease-recall log entries published after
	// a client-supplied sequence number, so a client whose cached lease seq
	// fell behind (detected via the response header's Lease field) can drop
	// exactly the directories that changed instead of its whole cache.
	OpLeaseRecall
)

// Operations served by the file metadata servers (FMS).
const (
	OpCreateFile Op = 0x0200 + iota
	OpRemoveFile
	OpStatFile
	OpOpenFile
	OpCloseFile
	OpChmodFile
	OpChownFile
	OpAccessFile
	OpUtimensFile
	OpTruncateFile
	OpUpdateSize // content-part size+mtime update after a data write
	OpReaddirFiles
	OpRenameFile
	OpDirHasFiles // rmdir support: does this FMS hold files of dir uuid?
	OpRemoveDirFiles
	// Migration operations for online membership changes: a scan that
	// exports the keys a new ring would place elsewhere, an install that
	// imports one file's metadata at its new owner, and a conditional
	// delete that retires the source copy once the install landed.
	OpMigrateScan
	OpMigrateInstall
	OpMigrateDelete
)

// Operations served by the object store servers (OSS).
const (
	OpPutBlock Op = 0x0300 + iota
	OpGetBlock
	OpDeleteBlocks
)

// Generic/administrative operations.
const (
	OpPing Op = 0x0001
	// OpGetMembership returns the server's current encoded Membership
	// (StatusNotFound if none was ever installed — a static topology).
	OpGetMembership Op = 0x0002
	// OpSetMembership installs a Membership on the server if its epoch is
	// not older than the installed one (StatusStale otherwise).
	OpSetMembership Op = 0x0003
	// OpGetPartMap returns the server's current encoded PartMap
	// (StatusNotFound if none was ever installed — an unsharded DMS).
	OpGetPartMap Op = 0x0004
	// OpSetPartMap installs a PartMap on a DMS node if its version is not
	// older than the installed one (StatusStale otherwise).
	OpSetPartMap Op = 0x0005
)

// Operations of the sharded DMS replication/partition plane (0x0400 range).
// These are spoken between DMS replicas (leader -> follower) and between
// partition leaders (two-partition rename commit), never by clients.
const (
	// OpLogAppend replicates one op-log entry from a partition leader to a
	// follower, which appends, applies, and acks. The body is an encoded
	// LogAppend (the leader's retained-log floor plus one LogEntry); the OK
	// response body carries the follower's applied watermark (EncodeLogAck),
	// which the leader folds into the group-wide truncation minimum. The
	// follower rejects index gaps with StatusInval (and starts catching up)
	// and acks older indexes with StatusOK (already applied — ack replay).
	OpLogAppend Op = 0x0400 + iota
	// OpSeedUpdate pushes an ancestor-inode seed copy (or its removal) from
	// the partition owning a path to a partition whose range lies below it.
	OpSeedUpdate
	// OpRenamePrepare asks the destination partition of a cross-partition
	// directory rename to validate, persist the exported subtree records in
	// its replicated log, and freeze the destination range.
	OpRenamePrepare
	// OpRenameCommit makes a prepared cross-partition rename visible at the
	// destination. Idempotent per transaction id: a recovered coordinator
	// may resend it.
	OpRenameCommit
	// OpRenameAbort discards a prepared cross-partition rename at the
	// destination. Unknown transaction ids ack OK (presumed abort).
	OpRenameAbort
	// The OpRenameSrc* ops never travel as standalone RPCs: they are the
	// coordinator-side (source partition) op-log markers of a cross-
	// partition rename, replicated inside OpLogAppend entries so that every
	// source replica can reconstruct the transaction's state — and a
	// promoted follower can finish or abort it — from its log alone.
	OpRenameSrcPrepare
	OpRenameSrcCommit
	OpRenameSrcAbort
	OpRenameSrcComplete
	// OpLogFetch serves a range of op-log entries from a partition leader
	// to a replica replaying missed appends (catch-up). The request names
	// the fetching replica and its next index; the response returns entries
	// from that index (bounded by the request's batch limit), the leader's
	// log tip and retained floor, and — when the replica has reached the
	// tip — the rejoined flag, meaning the leader has re-admitted it to the
	// live fan-out set. A request below the leader's retained floor fails
	// with StatusExpired: log replay cannot rebuild that replica.
	OpLogFetch
)

// String returns the operation's symbolic name, used as the op label on
// telemetry metrics and in slow-request trace logs.
func (o Op) String() string {
	switch o {
	case OpMkdir:
		return "Mkdir"
	case OpRmdir:
		return "Rmdir"
	case OpStatDir:
		return "StatDir"
	case OpReaddirSubdirs:
		return "ReaddirSubdirs"
	case OpLookupDir:
		return "LookupDir"
	case OpRenameDir:
		return "RenameDir"
	case OpChmodDir:
		return "ChmodDir"
	case OpChownDir:
		return "ChownDir"
	case OpLeaseRecall:
		return "LeaseRecall"
	case OpCreateFile:
		return "CreateFile"
	case OpRemoveFile:
		return "RemoveFile"
	case OpStatFile:
		return "StatFile"
	case OpOpenFile:
		return "OpenFile"
	case OpCloseFile:
		return "CloseFile"
	case OpChmodFile:
		return "ChmodFile"
	case OpChownFile:
		return "ChownFile"
	case OpAccessFile:
		return "AccessFile"
	case OpUtimensFile:
		return "UtimensFile"
	case OpTruncateFile:
		return "TruncateFile"
	case OpUpdateSize:
		return "UpdateSize"
	case OpReaddirFiles:
		return "ReaddirFiles"
	case OpRenameFile:
		return "RenameFile"
	case OpDirHasFiles:
		return "DirHasFiles"
	case OpRemoveDirFiles:
		return "RemoveDirFiles"
	case OpMigrateScan:
		return "MigrateScan"
	case OpMigrateInstall:
		return "MigrateInstall"
	case OpMigrateDelete:
		return "MigrateDelete"
	case OpPutBlock:
		return "PutBlock"
	case OpGetBlock:
		return "GetBlock"
	case OpDeleteBlocks:
		return "DeleteBlocks"
	case OpPing:
		return "Ping"
	case OpGetMembership:
		return "GetMembership"
	case OpSetMembership:
		return "SetMembership"
	case OpGetPartMap:
		return "GetPartMap"
	case OpSetPartMap:
		return "SetPartMap"
	case OpLogAppend:
		return "LogAppend"
	case OpSeedUpdate:
		return "SeedUpdate"
	case OpRenamePrepare:
		return "RenamePrepare"
	case OpRenameCommit:
		return "RenameCommit"
	case OpRenameAbort:
		return "RenameAbort"
	case OpRenameSrcPrepare:
		return "RenameSrcPrepare"
	case OpRenameSrcCommit:
		return "RenameSrcCommit"
	case OpRenameSrcAbort:
		return "RenameSrcAbort"
	case OpRenameSrcComplete:
		return "RenameSrcComplete"
	case OpLogFetch:
		return "LogFetch"
	case OpBatch:
		return "Batch"
	}
	return fmt.Sprintf("op(0x%04x)", uint16(o))
}

// Idempotent reports whether re-executing the operation with an identical
// body is safe — the retry matrix the client's fault-tolerance layer keys
// off (see DESIGN.md §11). Two classes qualify:
//
//   - pure reads: stat, lookup, readdir pages, access checks, open, the
//     rmdir emptiness probe, block reads, ping;
//   - absolute-state mutations, where a duplicate execution converges to
//     the same state and status: chmod/chown (set exact bits/owner),
//     utimens (set exact times), size updates, block put (same bytes) and
//     block delete (already-gone is fine).
//
// The migration/membership ops are all retry-safe too: scan and
// get-membership are reads, install overwrites with absolute state,
// delete is conditional on the stored bytes, and set-membership installs
// an absolute epoch-guarded state.
//
// The partition-plane ops are designed idempotent: get/set-part-map follow
// the membership pattern (read / version-guarded absolute state), a log
// append at an already-applied index replays its ack, a seed update
// installs absolute bytes, and the two-partition rename messages are
// deduplicated by transaction id at the destination (a re-prepare,
// re-commit, or re-abort of a known transaction acks without re-executing).
//
// Everything else — create, remove, mkdir, rmdir, renames, truncate,
// subtree file removal, and the OpBatch envelope — reports false: a replay
// observes the first execution's effects (EEXIST, ENOENT, an empty removal
// list), so retries must instead be deduplicated server-side via Msg.Req.
func (o Op) Idempotent() bool {
	switch o {
	case OpPing, OpStatDir, OpStatFile, OpLookupDir, OpReaddirSubdirs,
		OpLeaseRecall,
		OpReaddirFiles, OpAccessFile, OpOpenFile, OpDirHasFiles, OpGetBlock,
		OpChmodFile, OpChownFile, OpChmodDir, OpChownDir, OpUtimensFile,
		OpUpdateSize, OpPutBlock, OpDeleteBlocks,
		OpMigrateScan, OpMigrateInstall, OpMigrateDelete,
		OpGetMembership, OpSetMembership,
		OpGetPartMap, OpSetPartMap, OpLogAppend, OpSeedUpdate, OpLogFetch,
		OpRenamePrepare, OpRenameCommit, OpRenameAbort:
		return true
	}
	return false
}

// Status is the result code of a request.
type Status uint16

// Status codes. StatusOK must be zero.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusExist
	StatusNotDir
	StatusIsDir
	StatusNotEmpty
	StatusPerm
	StatusInval
	StatusStale // lease/cache epoch mismatch
	StatusIO
	// StatusUnavailable reports that the server (or the path to it) is
	// known-bad right now: the client's circuit breaker is open, or the
	// server sheds load. Unlike StatusIO it is explicitly retryable after a
	// backoff.
	StatusUnavailable
	// StatusDeadline reports that a call's per-operation deadline expired
	// before a response arrived. The request may or may not have executed;
	// mutations are protected by the request-id dedup window (see Msg.Req).
	StatusDeadline
	// StatusWrongPartition reports that the addressed DMS node does not own
	// the request's path under its installed partition map — the client
	// routed with a stale map. Like StatusStale it signals routing
	// staleness, not failure: the client refreshes its partition map and
	// retries against the correct owner. StatusError.Is treats it as
	// matching StatusStale so callers can test both with one sentinel.
	StatusWrongPartition
	// StatusExpired reports that the request's dedup horizon has passed:
	// the server pruned the replay record the request id would have been
	// checked against (log truncation below the group watermark), so it can
	// no longer tell a fresh request from a retry of one it already
	// executed. Refusing is the safe side of at-most-once — the request is
	// NOT executed. It also rejects a catch-up fetch below a leader's
	// retained-log floor (the range needed for replay has been truncated).
	StatusExpired
)

// String returns a short human-readable form of the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "ENOENT"
	case StatusExist:
		return "EEXIST"
	case StatusNotDir:
		return "ENOTDIR"
	case StatusIsDir:
		return "EISDIR"
	case StatusNotEmpty:
		return "ENOTEMPTY"
	case StatusPerm:
		return "EPERM"
	case StatusInval:
		return "EINVAL"
	case StatusStale:
		return "ESTALE"
	case StatusIO:
		return "EIO"
	case StatusUnavailable:
		return "EUNAVAIL"
	case StatusDeadline:
		return "ETIMEDOUT"
	case StatusWrongPartition:
		return "EWRONGPART"
	case StatusExpired:
		return "EEXPIRED"
	}
	return fmt.Sprintf("status(%d)", uint16(s))
}

// Err converts a non-OK status into an error (nil for StatusOK).
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return &StatusError{Status: s}
}

// StatusError is the error form of a non-OK Status.
type StatusError struct{ Status Status }

// Error implements error.
func (e *StatusError) Error() string { return "locofs: " + e.Status.String() }

// Is makes every StatusError of one status match every other via errors.Is,
// so the public package can export sentinel values (locofs.ErrNotFound etc.)
// that match errors produced anywhere in the stack. A StatusDeadline error
// additionally matches context.DeadlineExceeded, the standard-library
// convention for expired deadlines, and a StatusWrongPartition error
// matches a StatusStale target — both report routing staleness, so the
// public locofs.ErrStale sentinel covers them together.
func (e *StatusError) Is(target error) bool {
	if se, ok := target.(*StatusError); ok {
		if se.Status == e.Status {
			return true
		}
		return e.Status == StatusWrongPartition && se.Status == StatusStale
	}
	if e.Status == StatusDeadline && target == context.DeadlineExceeded {
		return true
	}
	return false
}

// StatusOf extracts the Status from an error produced by Status.Err,
// returning StatusIO for foreign errors and StatusOK for nil.
func StatusOf(err error) Status {
	if err == nil {
		return StatusOK
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status
	}
	return StatusIO
}

// Msg is one framed message.
type Msg struct {
	ID     uint64 // request id, echoed by the response
	IsResp bool
	Op     Op
	Status Status // meaningful on responses
	// ServiceNS reports, on responses, the server-side processing time of
	// the request in nanoseconds: measured handler time plus any modeled
	// software cost. Clients use it for virtual-time latency accounting.
	ServiceNS uint64
	// Trace is a client-generated request identifier carried end to end:
	// every RPC a single logical file-system operation issues (e.g. the
	// three calls of a file rename) shares one trace ID, and servers echo
	// it, so slow-request logs on the DMS, an FMS, and the client can be
	// correlated. Zero means untraced.
	Trace uint64
	// Span is the sender's span ID — the parent under which the receiver
	// opens its own child span, linking client-side and server-side spans
	// of one trace into a single tree (see internal/trace). Servers echo
	// it on responses. Zero means no parent span.
	Span uint64
	// Req is a client-unique request identifier stamped on non-idempotent
	// requests (see Op.Idempotent). It is stable across retry attempts of
	// one logical call — unlike ID, which is per-connection — so a server
	// that already executed the request recognizes a retried duplicate in
	// its dedup window and replays the recorded response instead of
	// executing twice (at-most-once semantics). Zero means no dedup.
	Req uint64
	// Epoch is the sender's FMS-membership epoch. Servers stamp their
	// current epoch on every response so clients piggyback staleness
	// detection on ordinary traffic: a response epoch newer than the
	// client's ring triggers an asynchronous membership refresh. Zero
	// means "no membership installed" (static topology) and is ignored.
	Epoch uint64
	// Lease is the DMS's lease-recall sequence number, stamped on every DMS
	// response the same way Epoch piggybacks membership staleness: a value
	// newer than what the client has applied means some cached directory
	// lease was recalled, and the client must treat unverified cache entries
	// as stale until it catches up (see internal/dms lease table). Zero
	// means "nothing ever recalled" and is ignored.
	Lease uint64
	// PMap is the DMS partition-map version, stamped on every DMS response
	// exactly as Epoch piggybacks FMS membership: a value newer than the
	// client's routing map means partitions split, merged, or failed over,
	// and the client refreshes via OpGetPartMap before its routing goes
	// stale enough to draw StatusWrongPartition. Zero means "no partition
	// map installed" (single unsharded DMS) and is ignored.
	PMap uint64
	Body []byte
}

// header: id(8) flags(1) op(2) status(2) service(8) trace(8) span(8)
// req(8) epoch(8) lease(8) pmap(8)
const headerSize = 69

// MaxBody bounds a single message body (64 MiB), protecting servers from
// malformed frames.
const MaxBody = 64 << 20

// ErrFrameTooLarge reports a frame exceeding MaxBody.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// WriteMsg writes one length-prefixed message to w.
func WriteMsg(w io.Writer, m *Msg) error {
	if len(m.Body) > MaxBody {
		return ErrFrameTooLarge
	}
	var hdr [4 + headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(headerSize+len(m.Body)))
	binary.BigEndian.PutUint64(hdr[4:], m.ID)
	if m.IsResp {
		hdr[12] = 1
	}
	binary.BigEndian.PutUint16(hdr[13:], uint16(m.Op))
	binary.BigEndian.PutUint16(hdr[15:], uint16(m.Status))
	binary.BigEndian.PutUint64(hdr[17:], m.ServiceNS)
	binary.BigEndian.PutUint64(hdr[25:], m.Trace)
	binary.BigEndian.PutUint64(hdr[33:], m.Span)
	binary.BigEndian.PutUint64(hdr[41:], m.Req)
	binary.BigEndian.PutUint64(hdr[49:], m.Epoch)
	binary.BigEndian.PutUint64(hdr[57:], m.Lease)
	binary.BigEndian.PutUint64(hdr[65:], m.PMap)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Body)
	return err
}

// ReadMsg reads one length-prefixed message from r.
func ReadMsg(r io.Reader) (*Msg, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerSize || n > headerSize+MaxBody {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	m := &Msg{
		ID:        binary.BigEndian.Uint64(payload[0:]),
		IsResp:    payload[8] == 1,
		Op:        Op(binary.BigEndian.Uint16(payload[9:])),
		Status:    Status(binary.BigEndian.Uint16(payload[11:])),
		ServiceNS: binary.BigEndian.Uint64(payload[13:]),
		Trace:     binary.BigEndian.Uint64(payload[21:]),
		Span:      binary.BigEndian.Uint64(payload[29:]),
		Req:       binary.BigEndian.Uint64(payload[37:]),
		Epoch:     binary.BigEndian.Uint64(payload[45:]),
		Lease:     binary.BigEndian.Uint64(payload[53:]),
		PMap:      binary.BigEndian.Uint64(payload[61:]),
		Body:      payload[headerSize:],
	}
	return m, nil
}

// WireSize returns the on-the-wire size of the message in bytes, used by the
// simulated network's bandwidth model.
func (m *Msg) WireSize() int { return 4 + headerSize + len(m.Body) }
