// Package layout defines the fixed-offset binary layouts of LocoFS metadata
// values.
//
// The paper's "decoupled file metadata" design (§3.3) splits a file inode
// into an access part and a content part, removes variable-length indexing
// metadata, and — because every remaining field is fixed length — eliminates
// (de)serialization entirely: a field is read or written at a constant byte
// offset inside the stored value string (§3.3.3).
//
// This package is that idea made concrete. Each metadata kind is a thin
// wrapper over a []byte of exactly its Size; accessors encode/decode single
// fields in place with no intermediate struct, no allocation, and no parsing
// pass. Servers can hand these byte slices straight to the KV store.
package layout

import (
	"encoding/binary"
	"fmt"

	"locofs/internal/uuid"
)

// Byte order used for every fixed-width field.
var bo = binary.LittleEndian

// Sizes of the fixed-length metadata values.
const (
	// DirInodeSize is the allocation for a directory inode. The paper
	// allocates 256 bytes per d-inode (§3.2.2); the trailing bytes beyond
	// the defined fields are reserved padding.
	DirInodeSize = 256

	// FileAccessSize is the size of the access part of a file inode:
	// ctime, mode, uid, gid (§3.3.1, Table 1).
	FileAccessSize = 8 + 4 + 4 + 4 // = 20

	// FileContentSize is the size of the content part of a file inode:
	// mtime, atime, size, block size, and the file uuid (suuid+sid)
	// (§3.3.1, Table 1).
	FileContentSize = 8 + 8 + 8 + 4 + uuid.Size // = 44
)

// Field offsets inside a directory inode value.
const (
	dirCTimeOff = 0
	dirModeOff  = 8
	dirUIDOff   = 12
	dirGIDOff   = 16
	dirUUIDOff  = 20
)

// Field offsets inside a file access-part value.
const (
	accCTimeOff = 0
	accModeOff  = 8
	accUIDOff   = 12
	accGIDOff   = 16
)

// Field offsets inside a file content-part value. Exported consumers should
// use the accessor methods; these are kept unexported to preserve freedom to
// repack (the KV values are not an on-disk interchange format).
const (
	cntMTimeOff = 0
	cntATimeOff = 8
	cntSizeOff  = 16
	cntBSizeOff = 24
	cntUUIDOff  = 28
)

// Exported field offsets for serialization-free partial reads: a server can
// fetch a single field of a stored value via kv.Store.ReadAt without
// materializing the rest (§3.3.3).
const (
	OffAccessMode   = accModeOff
	OffContentSize  = cntSizeOff
	OffContentMTime = cntMTimeOff
	OffContentATime = cntATimeOff
)

// Mode bits, a minimal POSIX-flavoured subset.
const (
	ModeDir  uint32 = 0o040000
	ModeFile uint32 = 0o100000
	// PermMask selects the permission bits of a mode.
	PermMask uint32 = 0o7777
)

// DirInode is a view over a directory inode value.
type DirInode []byte

// NewDirInode allocates a zeroed directory inode value and stamps the
// directory bit into its mode.
func NewDirInode() DirInode {
	d := make(DirInode, DirInodeSize)
	d.SetMode(ModeDir | 0o755)
	return d
}

// Valid reports whether the underlying slice has the exact inode size.
func (d DirInode) Valid() bool { return len(d) == DirInodeSize }

// CTime returns the inode change time in nanoseconds.
func (d DirInode) CTime() int64 { return int64(bo.Uint64(d[dirCTimeOff:])) }

// SetCTime stores the inode change time in nanoseconds.
func (d DirInode) SetCTime(ns int64) { bo.PutUint64(d[dirCTimeOff:], uint64(ns)) }

// Mode returns the mode word (type bits | permissions).
func (d DirInode) Mode() uint32 { return bo.Uint32(d[dirModeOff:]) }

// SetMode stores the mode word.
func (d DirInode) SetMode(m uint32) { bo.PutUint32(d[dirModeOff:], m) }

// UID returns the owning user id.
func (d DirInode) UID() uint32 { return bo.Uint32(d[dirUIDOff:]) }

// SetUID stores the owning user id.
func (d DirInode) SetUID(v uint32) { bo.PutUint32(d[dirUIDOff:], v) }

// GID returns the owning group id.
func (d DirInode) GID() uint32 { return bo.Uint32(d[dirGIDOff:]) }

// SetGID stores the owning group id.
func (d DirInode) SetGID(v uint32) { bo.PutUint32(d[dirGIDOff:], v) }

// UUID returns the directory's universally unique identifier.
func (d DirInode) UUID() uuid.UUID { return uuid.MustFromBytes(d[dirUUIDOff : dirUUIDOff+uuid.Size]) }

// SetUUID stores the directory's UUID.
func (d DirInode) SetUUID(u uuid.UUID) { copy(d[dirUUIDOff:], u[:]) }

// Clone returns an independent copy of the inode value.
func (d DirInode) Clone() DirInode { return append(DirInode(nil), d...) }

// FileAccess is a view over the access part of a file inode.
type FileAccess []byte

// NewFileAccess allocates a zeroed access part with the regular-file bit set.
func NewFileAccess() FileAccess {
	a := make(FileAccess, FileAccessSize)
	a.SetMode(ModeFile | 0o644)
	return a
}

// Valid reports whether the underlying slice has the exact part size.
func (a FileAccess) Valid() bool { return len(a) == FileAccessSize }

// CTime returns the inode change time in nanoseconds.
func (a FileAccess) CTime() int64 { return int64(bo.Uint64(a[accCTimeOff:])) }

// SetCTime stores the inode change time in nanoseconds.
func (a FileAccess) SetCTime(ns int64) { bo.PutUint64(a[accCTimeOff:], uint64(ns)) }

// Mode returns the mode word.
func (a FileAccess) Mode() uint32 { return bo.Uint32(a[accModeOff:]) }

// SetMode stores the mode word.
func (a FileAccess) SetMode(m uint32) { bo.PutUint32(a[accModeOff:], m) }

// UID returns the owning user id.
func (a FileAccess) UID() uint32 { return bo.Uint32(a[accUIDOff:]) }

// SetUID stores the owning user id.
func (a FileAccess) SetUID(v uint32) { bo.PutUint32(a[accUIDOff:], v) }

// GID returns the owning group id.
func (a FileAccess) GID() uint32 { return bo.Uint32(a[accGIDOff:]) }

// SetGID stores the owning group id.
func (a FileAccess) SetGID(v uint32) { bo.PutUint32(a[accGIDOff:], v) }

// Clone returns an independent copy.
func (a FileAccess) Clone() FileAccess { return append(FileAccess(nil), a...) }

// FileContent is a view over the content part of a file inode.
type FileContent []byte

// NewFileContent allocates a zeroed content part with the given block size.
func NewFileContent(blockSize uint32) FileContent {
	c := make(FileContent, FileContentSize)
	c.SetBlockSize(blockSize)
	return c
}

// Valid reports whether the underlying slice has the exact part size.
func (c FileContent) Valid() bool { return len(c) == FileContentSize }

// MTime returns the data modification time in nanoseconds.
func (c FileContent) MTime() int64 { return int64(bo.Uint64(c[cntMTimeOff:])) }

// SetMTime stores the data modification time in nanoseconds.
func (c FileContent) SetMTime(ns int64) { bo.PutUint64(c[cntMTimeOff:], uint64(ns)) }

// ATime returns the access time in nanoseconds.
func (c FileContent) ATime() int64 { return int64(bo.Uint64(c[cntATimeOff:])) }

// SetATime stores the access time in nanoseconds.
func (c FileContent) SetATime(ns int64) { bo.PutUint64(c[cntATimeOff:], uint64(ns)) }

// Size returns the file length in bytes.
func (c FileContent) Size() uint64 { return bo.Uint64(c[cntSizeOff:]) }

// SetSize stores the file length in bytes.
func (c FileContent) SetSize(n uint64) { bo.PutUint64(c[cntSizeOff:], n) }

// BlockSize returns the data block size used to index the object store.
func (c FileContent) BlockSize() uint32 { return bo.Uint32(c[cntBSizeOff:]) }

// SetBlockSize stores the data block size.
func (c FileContent) SetBlockSize(n uint32) { bo.PutUint32(c[cntBSizeOff:], n) }

// UUID returns the file's UUID (the paper's suuid+sid pair).
func (c FileContent) UUID() uuid.UUID {
	return uuid.MustFromBytes(c[cntUUIDOff : cntUUIDOff+uuid.Size])
}

// SetUUID stores the file's UUID.
func (c FileContent) SetUUID(u uuid.UUID) { copy(c[cntUUIDOff:], u[:]) }

// Clone returns an independent copy.
func (c FileContent) Clone() FileContent { return append(FileContent(nil), c...) }

// FieldPatch describes an in-place single-field update: len(Data) bytes at
// byte offset Off of a stored value. It is the unit of the paper's
// serialization-free writes — a server applies it directly to the value
// bytes held by the KV store.
type FieldPatch struct {
	Off  int
	Data []byte
}

// Apply writes the patch into value, which must be large enough.
func (p FieldPatch) Apply(value []byte) error {
	if p.Off < 0 || p.Off+len(p.Data) > len(value) {
		return fmt.Errorf("layout: patch [%d,%d) out of range for %d-byte value",
			p.Off, p.Off+len(p.Data), len(value))
	}
	copy(value[p.Off:], p.Data)
	return nil
}

// PatchDirMode builds patches that update mode and ctime of a directory
// inode in place (chmod on a directory).
func PatchDirMode(mode uint32, ctime int64) []FieldPatch {
	m := make([]byte, 4)
	bo.PutUint32(m, mode)
	t := make([]byte, 8)
	bo.PutUint64(t, uint64(ctime))
	return []FieldPatch{{Off: dirModeOff, Data: m}, {Off: dirCTimeOff, Data: t}}
}

// PatchDirOwner builds patches for chown on a directory inode.
func PatchDirOwner(uid, gid uint32, ctime int64) []FieldPatch {
	u := make([]byte, 4)
	bo.PutUint32(u, uid)
	g := make([]byte, 4)
	bo.PutUint32(g, gid)
	t := make([]byte, 8)
	bo.PutUint64(t, uint64(ctime))
	return []FieldPatch{{Off: dirUIDOff, Data: u}, {Off: dirGIDOff, Data: g}, {Off: dirCTimeOff, Data: t}}
}

// PatchAccessMode builds patches that update mode and ctime of an access
// part, the exact byte footprint of chmod in the decoupled design.
func PatchAccessMode(mode uint32, ctime int64) []FieldPatch {
	m := make([]byte, 4)
	bo.PutUint32(m, mode)
	t := make([]byte, 8)
	bo.PutUint64(t, uint64(ctime))
	return []FieldPatch{{Off: accModeOff, Data: m}, {Off: accCTimeOff, Data: t}}
}

// PatchAccessOwner builds patches for chown (uid, gid, ctime).
func PatchAccessOwner(uid, gid uint32, ctime int64) []FieldPatch {
	u := make([]byte, 4)
	bo.PutUint32(u, uid)
	g := make([]byte, 4)
	bo.PutUint32(g, gid)
	t := make([]byte, 8)
	bo.PutUint64(t, uint64(ctime))
	return []FieldPatch{{Off: accUIDOff, Data: u}, {Off: accGIDOff, Data: g}, {Off: accCTimeOff, Data: t}}
}

// PatchContentTimes builds patches for utimens (atime + mtime).
func PatchContentTimes(atime, mtime int64) []FieldPatch {
	a := make([]byte, 8)
	bo.PutUint64(a, uint64(atime))
	m := make([]byte, 8)
	bo.PutUint64(m, uint64(mtime))
	return []FieldPatch{{Off: cntATimeOff, Data: a}, {Off: cntMTimeOff, Data: m}}
}

// PatchContentSize builds patches for a write/truncate that moves the file
// size and mtime (the content-part footprint of write, Table 1).
func PatchContentSize(size uint64, mtime int64) []FieldPatch {
	s := make([]byte, 8)
	bo.PutUint64(s, size)
	t := make([]byte, 8)
	bo.PutUint64(t, uint64(mtime))
	return []FieldPatch{{Off: cntSizeOff, Data: s}, {Off: cntMTimeOff, Data: t}}
}
