package locofs_test

import (
	"fmt"
	"log"

	"locofs"
)

// Example shows the minimal lifecycle: start an in-process cluster, connect
// a client, and use the file system.
func Example() {
	cluster, err := locofs.Start(locofs.Options{FMSCount: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fs, err := cluster.NewClient(locofs.ClientConfig{UID: 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	if err := fs.Mkdir("/data", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := fs.Create("/data/hello.txt", 0o644); err != nil {
		log.Fatal(err)
	}
	f, err := fs.Open("/data/hello.txt", true)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("loosely coupled"), 0); err != nil {
		log.Fatal(err)
	}
	f.Close()

	attr, err := fs.StatFile("/data/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	// 8 round trips: one membership fetch at dial, then mkdir 1, create 2,
	// open 1, write 2 (update-size + block), stat 1 — the paper's one-or-two
	// trips per metadata operation.
	fmt.Printf("size=%d trips=%d\n", attr.Size, fs.Trips())
	// Output: size=15 trips=8
}
