// Package bench regenerates every table and figure of the paper's
// evaluation (§4). Each Fig*/Table* function runs the corresponding
// experiment against the reproduced systems and returns a formatted result
// table whose rows/series mirror what the paper reports.
//
// Measurement model: all systems run their real code paths over the
// in-process fabric, but latency and throughput are reported in *virtual
// time* — per-call link delays (the paper's 0.174 ms 1 GbE RTT) plus
// server-side service times (measured handler work mapped onto the paper's
// hardware via core.PaperService, or the baselines' calibrated profiles).
// This keeps results deterministic and immune to OS timer granularity while
// preserving exactly what the paper's experiments compare: round-trip
// counts per operation and software path costs. See EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result grid.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Cell returns the cell at (row, col) or "" if out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}
