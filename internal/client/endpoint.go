package client

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/flight"
	"locofs/internal/netsim"
	"locofs/internal/rpc"
	"locofs/internal/telemetry"
	"locofs/internal/trace"
	"locofs/internal/wire"
)

// clientTelem is the telemetry sink shared by every endpoint of one client:
// per-op round-trip histograms and call counters, plus the slow-call log
// threshold. The per-op handle cache keeps the hot path off the registry
// lock.
type clientTelem struct {
	reg  *telemetry.Registry
	slow time.Duration   // 0 = slow-call logging disabled
	fl   *flight.Journal // nil = flight-recorder emission disabled
	byOp sync.Map        // wire.Op -> *clientOpMetrics

	// inflight counts RPCs currently on the wire across every endpoint of
	// the client, exported as the locofs_client_inflight_rpcs gauge. Fan-out
	// operations push it to the width of their parallel burst.
	inflight atomic.Int64

	ffOnce sync.Once
	ff     *telemetry.Counter
}

// fastFails returns the breaker fast-fail counter, created on first use.
func (t *clientTelem) fastFails() *telemetry.Counter {
	t.ffOnce.Do(func() { t.ff = t.reg.Counter(MetricFastFails) })
	return t.ff
}

// MetricInflight is the gauge reporting a client's RPCs currently on the
// wire (sampled at scrape time).
const MetricInflight = "locofs_client_inflight_rpcs"

// clientOpMetrics caches one op's instrument handles. RTT records through a
// rotating-window histogram so the client exposes time-local p50/p95/p99
// and rate alongside the lifetime distribution.
type clientOpMetrics struct {
	rtt       *telemetry.Windowed
	calls     *telemetry.Counter
	retries   *telemetry.Counter
	deadlines *telemetry.Counter
}

func (t *clientTelem) forOp(op wire.Op) *clientOpMetrics {
	if m, ok := t.byOp.Load(op); ok {
		return m.(*clientOpMetrics)
	}
	label := telemetry.L("op", op.String())
	m := &clientOpMetrics{
		rtt:       t.reg.Windowed(rpc.MetricRTT, label),
		calls:     t.reg.Counter(rpc.MetricCalls, label),
		retries:   t.reg.Counter(MetricRetries, label),
		deadlines: t.reg.Counter(MetricDeadlines, label),
	}
	actual, _ := t.byOp.LoadOrStore(op, m)
	return actual.(*clientOpMetrics)
}

// endpoint is one server connection with transparent re-dial and the
// client's fault-tolerance policy applied per call: a bounded number of
// retry attempts with jittered exponential backoff on attempt-level
// failures (transport errors, per-attempt deadline expiry, explicit
// EUNAVAIL), a per-attempt deadline from the resilience configuration, and
// a circuit breaker that fails calls fast while the server is known-dead.
// Application-level statuses are never retried. Non-idempotent requests
// carry a dedup id so a retried mutation executes at most once server-side
// (see wire.Msg.Req).
//
// Trip and virtual-time counters aggregate across connection generations,
// so measurement hooks see one continuous stream.
type endpoint struct {
	dialer netsim.Dialer
	addr   string
	link   netsim.LinkConfig
	telem  *clientTelem // never nil
	res    *resilience  // never nil
	brk    *breaker     // never nil (may be disabled)

	// onEpoch, when set, receives the membership epoch stamped on every
	// response (see wire.Msg.Epoch) — the client's passive channel for
	// noticing an FMS membership change without any push protocol.
	onEpoch func(epoch uint64)

	// onLease, when set, receives the recall sequence stamped on every
	// response (see wire.Msg.Lease) — the same passive channel, for
	// noticing directory mutations that may invalidate cached leases.
	// For DMS partition endpoints the hook is bound to the endpoint's
	// partition id, so sequences from different lease tables never mix.
	onLease func(seq uint64)

	// onPMap, when set, receives the partition-map version stamped on
	// every response (see wire.Msg.PMap) — the passive channel for
	// noticing that the DMS partition map changed (a failover or re-split)
	// without any push protocol.
	onPMap func(ver uint64)

	mu        sync.Mutex
	cl        *rpc.Client
	baseTrips uint64
	baseVirt  time.Duration
	closed    bool
}

// dialEndpoint connects the first generation.
func dialEndpoint(d netsim.Dialer, addr string, link netsim.LinkConfig, telem *clientTelem, res *resilience, onEpoch, onLease, onPMap func(uint64)) (*endpoint, error) {
	e := &endpoint{dialer: d, addr: addr, link: link, telem: telem, res: res, onEpoch: onEpoch, onLease: onLease, onPMap: onPMap}
	e.brk = newBreaker(res.breaker, res.now, func(state string) {
		telem.reg.Counter(MetricBreaker,
			telemetry.L("addr", addr), telemetry.L("state", state)).Inc()
		telem.fl.Emit(flight.KindBreaker, "client", "", 0, 0, addr+" "+state)
	})
	cl, err := rpc.Dial(d, addr)
	if err != nil {
		return nil, err
	}
	cl.SetLink(link)
	e.cl = cl
	return e, nil
}

// current returns the live connection, redialing if the previous one died.
func (e *endpoint) current() (*rpc.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, rpc.ErrClientClosed
	}
	if e.cl != nil {
		return e.cl, nil
	}
	cl, err := rpc.Dial(e.dialer, e.addr)
	if err != nil {
		return nil, err
	}
	cl.SetLink(e.link)
	e.cl = cl
	return cl, nil
}

// retire discards cl if it is still the active generation, folding its
// counters into the endpoint's running totals.
func (e *endpoint) retire(cl *rpc.Client) {
	e.mu.Lock()
	if e.cl == cl {
		e.baseTrips += cl.Trips()
		e.baseVirt += cl.VirtualTime()
		e.cl = nil
		cl.Close()
	}
	e.mu.Unlock()
}

// Call issues one untraced request; see CallT.
func (e *endpoint) Call(op wire.Op, body []byte) (wire.Status, []byte, error) {
	return e.CallT(opCtx{}, op, body)
}

// CallT issues one request in the context of operation oc; see CallV.
func (e *endpoint) CallT(oc opCtx, op wire.Op, body []byte) (wire.Status, []byte, error) {
	st, resp, _, err := e.CallV(oc, op, body)
	return st, resp, err
}

// CallTR is CallT with an explicit dedup request id. A non-zero req pins
// the id across callers' own higher-level retries — the partition router
// uses it so a mutation re-sent to a promoted leader after a failover
// replays from the replicated applied table instead of executing twice.
// req == 0 behaves exactly like CallT (the endpoint mints one per call for
// non-idempotent ops).
func (e *endpoint) CallTR(oc opCtx, op wire.Op, body []byte, req uint64) (wire.Status, []byte, error) {
	st, resp, _, err := e.callV(oc, op, body, req)
	return st, resp, err
}

// CallV issues one request stamped with oc's trace ID under the client's
// fault-tolerance policy (per-attempt deadline, bounded retries through
// fresh connections, circuit breaker — see callAttempts), and returns the
// call's modeled (virtual) time alongside the response. The wall-clock
// round trip is recorded in the client's per-op telemetry, the in-flight
// gauge covers the call while it is on the wire, and calls slower than the
// configured threshold are logged with the trace ID and server address so
// they can be matched against server-side slow-request logs. When the
// operation carries a span, the RPC gets its own child span (annotated with
// the server address, each retry and any breaker fast-fail) whose ID rides
// the wire header as the parent of the server-side span.
func (e *endpoint) CallV(oc opCtx, op wire.Op, body []byte) (wire.Status, []byte, time.Duration, error) {
	return e.callV(oc, op, body, 0)
}

func (e *endpoint) callV(oc opCtx, op wire.Op, body []byte, req uint64) (wire.Status, []byte, time.Duration, error) {
	sp := oc.sp.StartChild("rpc:" + op.String())
	if sp != nil {
		sp.Annotate("addr=" + e.addr)
	}
	t0 := time.Now()
	e.telem.inflight.Add(1)
	st, resp, virt, err := e.callAttempts(oc, sp, op, body, req)
	e.telem.inflight.Add(-1)
	rtt := time.Since(t0)
	m := e.telem.forOp(op)
	m.calls.Inc()
	m.rtt.Record(rtt)
	if e.telem.slow > 0 && rtt >= e.telem.slow {
		log.Printf("client: slow call trace=%#x op=%s addr=%s rtt=%v status=%s err=%v",
			oc.tid, op, e.addr, rtt, st, err)
	}
	if sp != nil {
		if err != nil {
			sp.SetStatus(wire.StatusOf(err).String())
		} else if st != wire.StatusOK {
			sp.SetStatus(st.String())
		}
		sp.Finish()
	}
	return st, resp, virt, err
}

// pendingCall is the future returned by CallAsync.
type pendingCall struct {
	done chan struct{}
	st   wire.Status
	resp []byte
	virt time.Duration
	err  error
}

// Wait blocks for the call's completion and returns its outcome, including
// the call's modeled (virtual) time.
func (p *pendingCall) Wait() (wire.Status, []byte, time.Duration, error) {
	<-p.done
	return p.st, p.resp, p.virt, p.err
}

// CallAsync issues the request without blocking and returns a future. The
// underlying rpc.Client multiplexes concurrent in-flight calls over one
// connection, matching responses by request id, so many CallAsync calls on
// one endpoint overlap on the wire; each is covered by the client's
// in-flight gauge and per-op telemetry exactly like CallV.
func (e *endpoint) CallAsync(oc opCtx, op wire.Op, body []byte) *pendingCall {
	p := &pendingCall{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.st, p.resp, p.virt, p.err = e.CallV(oc, op, body)
	}()
	return p
}

// CallBatch packs subs into one wire.OpBatch message, sends it as a single
// framed request, and unpacks the per-sub-request outcomes (in sub-request
// order). The returned virtual time is the whole batch's: one round of link
// delays plus the server's summed sub-request service time. The batch RPC's
// client span becomes the parent of the server-side envelope span, under
// which the server opens one child span per sub-request.
func (e *endpoint) CallBatch(oc opCtx, subs []wire.SubReq) ([]wire.SubResp, time.Duration, error) {
	body, err := wire.EncodeBatch(subs)
	if err != nil {
		return nil, 0, err
	}
	st, resp, virt, err := e.CallV(oc, wire.OpBatch, body)
	if err != nil {
		return nil, virt, err
	}
	if st != wire.StatusOK {
		// Envelope-level failure (malformed batch); sub-request failures
		// arrive as per-sub statuses instead.
		return nil, virt, st.Err()
	}
	resps, err := wire.DecodeBatchResp(resp)
	if err != nil {
		return nil, virt, err
	}
	if len(resps) != len(subs) {
		return nil, virt, wire.StatusIO.Err()
	}
	return resps, virt, nil
}

// callAttempts runs the per-call resilience loop: up to 1+Retry.Max
// attempts, each gated by the endpoint's circuit breaker and bounded by the
// per-attempt deadline. An attempt fails at the attempt level on a
// transport error, a deadline expiry, or an explicit EUNAVAIL status —
// anything else (including application errors like ENOENT) returns
// immediately. Failed attempts retire the connection so the next attempt
// redials; retries back off with jitter and are annotated on the call's
// span and counted in telemetry. Non-idempotent operations carry one dedup
// request id across every attempt, so the server executes them at most
// once no matter how deliveries are duplicated (wire.Op.Idempotent is the
// retry matrix; OpBatch envelopes are retried freely because the client
// only batches idempotent sub-ops: readdir pages and block deletes).
func (e *endpoint) callAttempts(oc opCtx, sp *trace.Span, op wire.Op, body []byte, req uint64) (wire.Status, []byte, time.Duration, error) {
	if req == 0 && !op.Idempotent() && op != wire.OpBatch {
		req = e.res.nextReq()
	}
	m := e.telem.forOp(op)
	var st wire.Status
	var resp []byte
	var virt time.Duration
	var err error
	for attempt := 0; attempt <= e.res.retry.Max; attempt++ {
		if attempt > 0 {
			d := e.res.retry.backoff(attempt)
			m.retries.Inc()
			e.telem.fl.Emit(flight.KindRetry, "client", op.String(), oc.tid, int64(attempt), e.addr)
			if sp != nil {
				sp.Annotate(fmt.Sprintf("retry=%d backoff=%v", attempt, d))
			}
			if d > 0 {
				// Backoff waits honor the operation's context: a cancelled
				// caller stops retrying immediately instead of sleeping out
				// the full schedule first.
				if oc.ctx != nil {
					t := time.NewTimer(d)
					select {
					case <-oc.ctx.Done():
						t.Stop()
						return st, resp, virt, ctxAttemptErr(oc.ctx.Err())
					case <-t.C:
					}
				} else {
					time.Sleep(d)
				}
			}
		}
		if berr := e.brk.allow(); berr != nil {
			// Open circuit: fail fast instead of burning a timeout on a
			// server already known to be down.
			if sp != nil {
				sp.Annotate("breaker=fastfail")
			}
			e.telem.fastFails().Inc()
			return wire.StatusUnavailable, nil, virt, berr
		}
		st, resp, virt, err = e.callOnce(oc, sp, op, body, req)
		failed := err != nil || st == wire.StatusUnavailable
		e.brk.report(!failed)
		if !failed {
			return st, resp, virt, nil
		}
		if wire.StatusOf(err) == wire.StatusDeadline {
			m.deadlines.Inc()
		}
		// A cancelled or expired operation context ends the whole call —
		// retrying on the caller's behalf after it gave up would only burn
		// backoff time (its per-attempt deadline may still retry above).
		if oc.ctx != nil && oc.ctx.Err() != nil {
			return st, resp, virt, err
		}
	}
	return st, resp, virt, err
}

// ctxAttemptErr maps an operation context's termination to the call error:
// an expired deadline becomes the same wire.StatusDeadline error a
// per-attempt timeout produces (it also matches context.DeadlineExceeded
// under errors.Is), a bare cancellation surfaces as the context's error.
func ctxAttemptErr(err error) error {
	if err == context.DeadlineExceeded {
		return wire.StatusDeadline.Err()
	}
	return err
}

// callOnce performs a single attempt on the current connection generation,
// retiring it on any transport- or deadline-level failure so the next
// attempt (or call) starts from a fresh dial.
func (e *endpoint) callOnce(oc opCtx, sp *trace.Span, op wire.Op, body []byte, req uint64) (wire.Status, []byte, time.Duration, error) {
	cl, err := e.current()
	if err != nil {
		return wire.StatusIO, nil, 0, err
	}
	st, resp, virt, err := cl.Do(rpc.CallSpec{
		Op: op, Body: body, Ctx: oc.ctx,
		Trace: oc.tid, Span: sp.ID(), Req: req,
		Timeout: e.res.timeout,
		OnEpoch: e.onEpoch,
		OnLease: e.onLease,
		OnPMap:  e.onPMap,
	})
	if err != nil {
		// The connection is unusable (died) or suspect (a response may
		// arrive arbitrarily late after a deadline miss); replace it.
		e.retire(cl)
	}
	return st, resp, virt, err
}

// Trips returns cumulative round trips across all generations.
func (e *endpoint) Trips() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.baseTrips
	if e.cl != nil {
		n += e.cl.Trips()
	}
	return n
}

// VirtualTime returns cumulative modeled time across all generations.
func (e *endpoint) VirtualTime() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.baseVirt
	if e.cl != nil {
		d += e.cl.VirtualTime()
	}
	return d
}

// Close tears the endpoint down permanently.
func (e *endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	if e.cl != nil {
		e.cl.Close()
		e.cl = nil
	}
	return nil
}
