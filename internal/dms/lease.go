package dms

import (
	"sync"
	"sync/atomic"
	"time"

	"locofs/internal/flight"
	"locofs/internal/wire"
)

// Lease coherence (DESIGN.md §14). The DMS grants a read lease alongside
// every lookup/readdir response: "cache this for DurMS; it was valid as of
// recall sequence Seq". The lease table remembers which paths have a
// possibly-live grant outstanding, and when a mutation touches such a path
// it *publishes* a recall — an entry in a bounded log plus a bump of the
// recall sequence that rides in every response header (wire.Msg.Lease).
// Clients compare the stamped sequence against what they have applied and,
// when behind, fetch the missed entries with OpLeaseRecall (piggybacked on
// their next lookup batch) to drop exactly the directories that changed.
//
// The crucial property is *suppression*: a mutation of a path nobody holds
// a grant for publishes nothing and leaves the sequence untouched, so a
// create-heavy workload over uncached paths causes zero cache churn across
// the client population. Suppression is a few map lookups under the table
// lock, taken only inside mutations (which already hold the server's write
// lock). When the grants map would exceed its bound the table enters
// overflow mode — publish everything, suppress nothing — until a full
// grant horizon passes with room to spare: strictly more recalls than
// necessary, never fewer.

// DefaultLeaseDur is the lease granted to clients when Options.LeaseDur is
// zero — the paper's §3.2.2 30-second client cache lease, now coherent.
const DefaultLeaseDur = 30 * time.Second

// maxHotFactor bounds how far a client may stretch a granted lease for its
// hot-entry tier (client HotLeaseFactor is clamped to this). The server
// assumes any grant can be live for dur×maxHotFactor plus one dur of slack,
// and keeps suppression records at least that long.
const maxHotFactor = 8

// defaultMaxGrants bounds the grants map; defaultRecallLog bounds the
// recall log (clients further behind get a reset instead of a diff).
const (
	defaultMaxGrants = 64 << 10
	defaultRecallLog = 1024
)

// pubResult describes what a mutation published: the last sequence it
// produced and how many entries (0 = fully suppressed). Mutation responses
// carry it so the mutating client — which already invalidates its own
// cache locally — can account for its own recalls without a fetch.
type pubResult struct {
	Last uint64
	N    uint32
}

// grantRec records, per path, until when some client may hold a lease on
// the path's inode, on its absence (negative entry), or on its subdir
// listing. Zero means never granted.
type grantRec struct {
	inode int64
	neg   int64
	list  int64
}

type leaseTable struct {
	dur     time.Duration // client-visible lease duration
	horizon time.Duration // how long a grant is assumed live (hot tier + slack)
	now     func() int64

	mu            sync.Mutex
	grants        map[string]*grantRec
	maxGrants     int
	overflowUntil int64 // while now < this, publish everything
	seq           uint64
	log           []wire.Recall // contiguous seqs, bounded to logCap
	logCap        int
	suppressed    uint64 // mutations that published nothing (introspection)
	granted       uint64 // lease grants recorded (inode + neg + list)

	// fl, when set, receives flight-recorder events: one KindLeaseRecall
	// per published recall and one KindLeaseOverflow per overflow-mode
	// entry. The journal's append lock is a leaf, so emitting under lt.mu
	// (itself under the server's write lock) cannot deadlock.
	fl       *flight.Journal
	flSource string

	pub atomic.Uint64 // mirror of seq for lock-free response stamping
}

func newLeaseTable(dur time.Duration, now func() int64) *leaseTable {
	if dur <= 0 {
		dur = DefaultLeaseDur
	}
	return &leaseTable{
		dur:       dur,
		horizon:   dur * (maxHotFactor + 1),
		now:       now,
		grants:    make(map[string]*grantRec),
		maxGrants: defaultMaxGrants,
		logCap:    defaultRecallLog,
	}
}

// Seq returns the published recall sequence — the value stamped on every
// response header via rpc.Server.SetLeaseFunc.
func (lt *leaseTable) Seq() uint64 { return lt.pub.Load() }

func (lt *leaseTable) durMS() uint32 {
	ms := lt.dur.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return uint32(ms)
}

// rec returns the record for path, creating it if needed. Caller holds
// lt.mu. In overflow mode nothing is recorded (everything publishes anyway)
// but the overflow window is pushed out past the new grant's horizon.
func (lt *leaseTable) rec(path string, t int64) *grantRec {
	if lt.overflowUntil > t {
		if until := t + int64(lt.horizon); until > lt.overflowUntil {
			lt.overflowUntil = until
		}
		return nil
	}
	g, ok := lt.grants[path]
	if !ok {
		if len(lt.grants) >= lt.maxGrants {
			lt.sweep(t)
		}
		if len(lt.grants) >= lt.maxGrants {
			// Still over bound after dropping expired records: give up on
			// per-path tracking for one horizon and publish everything.
			lt.grants = make(map[string]*grantRec)
			lt.overflowUntil = t + int64(lt.horizon)
			lt.fl.Emit(flight.KindLeaseOverflow, lt.flSource, "", 0, int64(lt.maxGrants), "grants map over bound; suppression off for one horizon")
			return nil
		}
		g = &grantRec{}
		lt.grants[path] = g
	}
	return g
}

// sweep drops records whose every horizon passed. Caller holds lt.mu.
func (lt *leaseTable) sweep(t int64) {
	for p, g := range lt.grants {
		if g.inode <= t && g.neg <= t && g.list <= t {
			delete(lt.grants, p)
		}
	}
}

// grantChain records inode grants for every path of a lookup chain and
// returns the grant trailer for the response. Must be called while holding
// the server's read lock, so the recorded grant and the returned data are
// atomic with respect to mutations (which hold the write lock).
func (lt *leaseTable) grantChain(paths []PathInode) wire.LeaseGrant {
	t := lt.now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for i := range paths {
		if g := lt.rec(paths[i].Path, t); g != nil {
			g.inode = t + int64(lt.horizon)
		}
		lt.granted++
	}
	return wire.LeaseGrant{Seq: lt.seq, DurMS: lt.durMS()}
}

// grantNeg records a negative-entry grant for a path that resolved ENOENT.
func (lt *leaseTable) grantNeg(path string) wire.LeaseGrant {
	t := lt.now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if g := lt.rec(path, t); g != nil {
		g.neg = t + int64(lt.horizon)
	}
	lt.granted++
	return wire.LeaseGrant{Seq: lt.seq, DurMS: lt.durMS()}
}

// grantList records a subdir-listing grant for path (the listing was
// returned whole, so the client may cache it).
func (lt *leaseTable) grantList(path string) wire.LeaseGrant {
	t := lt.now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if g := lt.rec(path, t); g != nil {
		g.list = t + int64(lt.horizon)
	}
	lt.granted++
	return wire.LeaseGrant{Seq: lt.seq, DurMS: lt.durMS()}
}

// live* report whether a grant of the given flavor may still be held.
// Caller holds lt.mu.
func (lt *leaseTable) liveInode(path string, t int64) bool {
	g := lt.grants[path]
	return g != nil && g.inode > t
}

func (lt *leaseTable) liveNeg(path string, t int64) bool {
	g := lt.grants[path]
	return g != nil && g.neg > t
}

func (lt *leaseTable) liveList(path string, t int64) bool {
	g := lt.grants[path]
	return g != nil && g.list > t
}

// publish appends one recall entry. Caller holds lt.mu.
func (lt *leaseTable) publish(kind wire.RecallKind, path string) {
	lt.seq++
	lt.log = append(lt.log, wire.Recall{Seq: lt.seq, Kind: kind, Path: path})
	if len(lt.log) > lt.logCap {
		lt.log = append(lt.log[:0], lt.log[len(lt.log)-lt.logCap:]...)
	}
	lt.pub.Store(lt.seq)
	lt.fl.Emit(flight.KindLeaseRecall, lt.flSource, "", 0, int64(lt.seq), path)
}

// bumpCreated handles a directory creation: clients may hold a negative
// entry for the exact path or the parent's listing; nothing else changes.
func (lt *leaseTable) bumpCreated(path, parent string) pubResult {
	t := lt.now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.overflowUntil > t || lt.liveNeg(path, t) || lt.liveList(parent, t) {
		lt.publish(wire.RecallCreated, path)
		return pubResult{Last: lt.seq, N: 1}
	}
	lt.suppressed++
	return pubResult{}
}

// bumpRemoved handles a directory removal: clients may hold the path's
// inode, the path's own (empty) listing, or the parent's listing.
// Negative entries stay correct (the path is even more absent now).
func (lt *leaseTable) bumpRemoved(path, parent string) pubResult {
	t := lt.now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.overflowUntil > t || lt.liveInode(path, t) || lt.liveList(path, t) || lt.liveList(parent, t) {
		lt.publish(wire.RecallRemoved, path)
		return pubResult{Last: lt.seq, N: 1}
	}
	lt.suppressed++
	return pubResult{}
}

// bumpPatched handles an in-place attribute change: only the exact inode
// entry can be stale.
func (lt *leaseTable) bumpPatched(path string) pubResult {
	t := lt.now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.overflowUntil > t || lt.liveInode(path, t) {
		lt.publish(wire.RecallPatched, path)
		return pubResult{Last: lt.seq, N: 1}
	}
	lt.suppressed++
	return pubResult{}
}

// bumpRenamed handles a directory rename: the whole subtree moved, so both
// sides publish unconditionally — a per-path liveness check would need a
// prefix scan over the grants map, and renames are already the expensive
// prefix-move operation.
func (lt *leaseTable) bumpRenamed(oldPath, newPath string) pubResult {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.publish(wire.RecallRemoved, oldPath)
	lt.publish(wire.RecallCreated, newPath)
	return pubResult{Last: lt.seq, N: 2}
}

// entriesSince returns the published entries after since, or reset=true
// when since predates the bounded log's retention (the client must drop its
// whole cache and jump to cur).
func (lt *leaseTable) entriesSince(since uint64) (cur uint64, reset bool, out []wire.Recall) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	cur = lt.seq
	if since >= cur {
		return cur, false, nil
	}
	if len(lt.log) == 0 || since+1 < lt.log[0].Seq {
		return cur, true, nil
	}
	idx := int(since + 1 - lt.log[0].Seq)
	out = append(out, lt.log[idx:]...)
	return cur, false, out
}

// Suppressed returns how many mutations published no recall (all grants
// for the touched paths had expired or never existed) — the suppression
// win, for tests and introspection.
func (lt *leaseTable) Suppressed() uint64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.suppressed
}

// Granted returns how many lease grants (inode, negative and listing) have
// been recorded on responses.
func (lt *leaseTable) Granted() uint64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.granted
}

// setFlight installs the flight journal recall/overflow events are emitted
// to (nil disables emission).
func (lt *leaseTable) setFlight(j *flight.Journal, source string) {
	lt.mu.Lock()
	lt.fl = j
	lt.flSource = source
	lt.mu.Unlock()
}
