package fspath

import (
	"testing"
	"testing/quick"
)

func TestClean(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"/", "/", true},
		{"//", "/", true},
		{"/a", "/a", true},
		{"/a/", "/a", true},
		{"/a//b", "/a/b", true},
		{"/a/./b", "/a/b", true},
		{"/a/b/..", "/a", true},
		{"/a/../b", "/b", true},
		{"/..", "", false},
		{"/a/../../b", "", false},
		{"", "", false},
		{"relative", "", false},
		{"/a/b/c/", "/a/b/c", true},
	}
	for _, c := range cases {
		got, err := Clean(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Clean(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Clean(%q) = %q, want error", c.in, got)
		}
	}
}

func TestCleanIdempotent(t *testing.T) {
	f := func(segs []string) bool {
		p := "/"
		for _, s := range segs {
			p += s + "/"
		}
		c1, err := Clean(p)
		if err != nil {
			return true // invalid inputs are fine
		}
		c2, err := Clean(c1)
		return err == nil && c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ in, dir, base string }{
		{"/", "/", ""},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, c := range cases {
		dir, base := Split(c.in)
		if dir != c.dir || base != c.base {
			t.Errorf("Split(%q) = %q, %q; want %q, %q", c.in, dir, base, c.dir, c.base)
		}
	}
}

func TestAncestors(t *testing.T) {
	if got := Ancestors("/"); got != nil {
		t.Errorf("Ancestors(/) = %v", got)
	}
	got := Ancestors("/a/b/c")
	want := []string{"/", "/a", "/a/b"}
	if len(got) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ancestors[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDepth(t *testing.T) {
	cases := map[string]int{"/": 0, "/a": 1, "/a/b": 2, "/a/b/c": 3}
	for p, d := range cases {
		if got := Depth(p); got != d {
			t.Errorf("Depth(%q) = %d, want %d", p, got, d)
		}
	}
}

func TestIsAncestorOf(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"/", "/a", true},
		{"/", "/", false},
		{"/a", "/a", false},
		{"/a", "/a/b", true},
		{"/a", "/ab", false},
		{"/a/b", "/a", false},
	}
	for _, c := range cases {
		if got := IsAncestorOf(c.a, c.b); got != c.want {
			t.Errorf("IsAncestorOf(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	if got := Join("/", "a"); got != "/a" {
		t.Errorf("Join(/, a) = %q", got)
	}
	if got := Join("/a", "b"); got != "/a/b" {
		t.Errorf("Join(/a, b) = %q", got)
	}
}

func TestValidName(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "a/b"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
	for _, good := range []string{"a", "file.txt", "..."} {
		if !ValidName(good) {
			t.Errorf("ValidName(%q) = false", good)
		}
	}
}

func TestAncestorsConsistentWithSplit(t *testing.T) {
	f := func(depthSeed uint8) bool {
		p := "/"
		depth := int(depthSeed%6) + 1
		for i := 0; i < depth; i++ {
			p = Join(p, "d")
		}
		anc := Ancestors(p)
		if len(anc) != depth {
			return false
		}
		dir, _ := Split(p)
		return anc[len(anc)-1] == dir
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
